
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/codec.cc" "src/isa/CMakeFiles/hipstr_isa.dir/codec.cc.o" "gcc" "src/isa/CMakeFiles/hipstr_isa.dir/codec.cc.o.d"
  "/root/repo/src/isa/encoding_cisc.cc" "src/isa/CMakeFiles/hipstr_isa.dir/encoding_cisc.cc.o" "gcc" "src/isa/CMakeFiles/hipstr_isa.dir/encoding_cisc.cc.o.d"
  "/root/repo/src/isa/encoding_risc.cc" "src/isa/CMakeFiles/hipstr_isa.dir/encoding_risc.cc.o" "gcc" "src/isa/CMakeFiles/hipstr_isa.dir/encoding_risc.cc.o.d"
  "/root/repo/src/isa/guest_os.cc" "src/isa/CMakeFiles/hipstr_isa.dir/guest_os.cc.o" "gcc" "src/isa/CMakeFiles/hipstr_isa.dir/guest_os.cc.o.d"
  "/root/repo/src/isa/instruction.cc" "src/isa/CMakeFiles/hipstr_isa.dir/instruction.cc.o" "gcc" "src/isa/CMakeFiles/hipstr_isa.dir/instruction.cc.o.d"
  "/root/repo/src/isa/interp.cc" "src/isa/CMakeFiles/hipstr_isa.dir/interp.cc.o" "gcc" "src/isa/CMakeFiles/hipstr_isa.dir/interp.cc.o.d"
  "/root/repo/src/isa/isa.cc" "src/isa/CMakeFiles/hipstr_isa.dir/isa.cc.o" "gcc" "src/isa/CMakeFiles/hipstr_isa.dir/isa.cc.o.d"
  "/root/repo/src/isa/memory.cc" "src/isa/CMakeFiles/hipstr_isa.dir/memory.cc.o" "gcc" "src/isa/CMakeFiles/hipstr_isa.dir/memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/hipstr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
