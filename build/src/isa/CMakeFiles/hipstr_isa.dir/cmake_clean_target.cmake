file(REMOVE_RECURSE
  "libhipstr_isa.a"
)
