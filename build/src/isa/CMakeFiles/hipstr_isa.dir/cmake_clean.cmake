file(REMOVE_RECURSE
  "CMakeFiles/hipstr_isa.dir/codec.cc.o"
  "CMakeFiles/hipstr_isa.dir/codec.cc.o.d"
  "CMakeFiles/hipstr_isa.dir/encoding_cisc.cc.o"
  "CMakeFiles/hipstr_isa.dir/encoding_cisc.cc.o.d"
  "CMakeFiles/hipstr_isa.dir/encoding_risc.cc.o"
  "CMakeFiles/hipstr_isa.dir/encoding_risc.cc.o.d"
  "CMakeFiles/hipstr_isa.dir/guest_os.cc.o"
  "CMakeFiles/hipstr_isa.dir/guest_os.cc.o.d"
  "CMakeFiles/hipstr_isa.dir/instruction.cc.o"
  "CMakeFiles/hipstr_isa.dir/instruction.cc.o.d"
  "CMakeFiles/hipstr_isa.dir/interp.cc.o"
  "CMakeFiles/hipstr_isa.dir/interp.cc.o.d"
  "CMakeFiles/hipstr_isa.dir/isa.cc.o"
  "CMakeFiles/hipstr_isa.dir/isa.cc.o.d"
  "CMakeFiles/hipstr_isa.dir/memory.cc.o"
  "CMakeFiles/hipstr_isa.dir/memory.cc.o.d"
  "libhipstr_isa.a"
  "libhipstr_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipstr_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
