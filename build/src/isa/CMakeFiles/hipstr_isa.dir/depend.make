# Empty dependencies file for hipstr_isa.
# This may be replaced when dependencies are built.
