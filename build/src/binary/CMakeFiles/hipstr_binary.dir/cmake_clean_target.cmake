file(REMOVE_RECURSE
  "libhipstr_binary.a"
)
