# Empty compiler generated dependencies file for hipstr_binary.
# This may be replaced when dependencies are built.
