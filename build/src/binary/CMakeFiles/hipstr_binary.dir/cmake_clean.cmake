file(REMOVE_RECURSE
  "CMakeFiles/hipstr_binary.dir/fatbin.cc.o"
  "CMakeFiles/hipstr_binary.dir/fatbin.cc.o.d"
  "CMakeFiles/hipstr_binary.dir/loader.cc.o"
  "CMakeFiles/hipstr_binary.dir/loader.cc.o.d"
  "libhipstr_binary.a"
  "libhipstr_binary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipstr_binary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
