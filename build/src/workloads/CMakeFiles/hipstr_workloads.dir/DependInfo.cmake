
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/wl_bzip2.cc" "src/workloads/CMakeFiles/hipstr_workloads.dir/wl_bzip2.cc.o" "gcc" "src/workloads/CMakeFiles/hipstr_workloads.dir/wl_bzip2.cc.o.d"
  "/root/repo/src/workloads/wl_gobmk.cc" "src/workloads/CMakeFiles/hipstr_workloads.dir/wl_gobmk.cc.o" "gcc" "src/workloads/CMakeFiles/hipstr_workloads.dir/wl_gobmk.cc.o.d"
  "/root/repo/src/workloads/wl_hmmer.cc" "src/workloads/CMakeFiles/hipstr_workloads.dir/wl_hmmer.cc.o" "gcc" "src/workloads/CMakeFiles/hipstr_workloads.dir/wl_hmmer.cc.o.d"
  "/root/repo/src/workloads/wl_httpd.cc" "src/workloads/CMakeFiles/hipstr_workloads.dir/wl_httpd.cc.o" "gcc" "src/workloads/CMakeFiles/hipstr_workloads.dir/wl_httpd.cc.o.d"
  "/root/repo/src/workloads/wl_lbm.cc" "src/workloads/CMakeFiles/hipstr_workloads.dir/wl_lbm.cc.o" "gcc" "src/workloads/CMakeFiles/hipstr_workloads.dir/wl_lbm.cc.o.d"
  "/root/repo/src/workloads/wl_libquantum.cc" "src/workloads/CMakeFiles/hipstr_workloads.dir/wl_libquantum.cc.o" "gcc" "src/workloads/CMakeFiles/hipstr_workloads.dir/wl_libquantum.cc.o.d"
  "/root/repo/src/workloads/wl_mcf.cc" "src/workloads/CMakeFiles/hipstr_workloads.dir/wl_mcf.cc.o" "gcc" "src/workloads/CMakeFiles/hipstr_workloads.dir/wl_mcf.cc.o.d"
  "/root/repo/src/workloads/wl_milc.cc" "src/workloads/CMakeFiles/hipstr_workloads.dir/wl_milc.cc.o" "gcc" "src/workloads/CMakeFiles/hipstr_workloads.dir/wl_milc.cc.o.d"
  "/root/repo/src/workloads/wl_sphinx3.cc" "src/workloads/CMakeFiles/hipstr_workloads.dir/wl_sphinx3.cc.o" "gcc" "src/workloads/CMakeFiles/hipstr_workloads.dir/wl_sphinx3.cc.o.d"
  "/root/repo/src/workloads/workloads.cc" "src/workloads/CMakeFiles/hipstr_workloads.dir/workloads.cc.o" "gcc" "src/workloads/CMakeFiles/hipstr_workloads.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/hipstr_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/hipstr_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hipstr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
