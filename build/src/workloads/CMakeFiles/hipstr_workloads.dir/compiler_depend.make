# Empty compiler generated dependencies file for hipstr_workloads.
# This may be replaced when dependencies are built.
