file(REMOVE_RECURSE
  "CMakeFiles/hipstr_workloads.dir/wl_bzip2.cc.o"
  "CMakeFiles/hipstr_workloads.dir/wl_bzip2.cc.o.d"
  "CMakeFiles/hipstr_workloads.dir/wl_gobmk.cc.o"
  "CMakeFiles/hipstr_workloads.dir/wl_gobmk.cc.o.d"
  "CMakeFiles/hipstr_workloads.dir/wl_hmmer.cc.o"
  "CMakeFiles/hipstr_workloads.dir/wl_hmmer.cc.o.d"
  "CMakeFiles/hipstr_workloads.dir/wl_httpd.cc.o"
  "CMakeFiles/hipstr_workloads.dir/wl_httpd.cc.o.d"
  "CMakeFiles/hipstr_workloads.dir/wl_lbm.cc.o"
  "CMakeFiles/hipstr_workloads.dir/wl_lbm.cc.o.d"
  "CMakeFiles/hipstr_workloads.dir/wl_libquantum.cc.o"
  "CMakeFiles/hipstr_workloads.dir/wl_libquantum.cc.o.d"
  "CMakeFiles/hipstr_workloads.dir/wl_mcf.cc.o"
  "CMakeFiles/hipstr_workloads.dir/wl_mcf.cc.o.d"
  "CMakeFiles/hipstr_workloads.dir/wl_milc.cc.o"
  "CMakeFiles/hipstr_workloads.dir/wl_milc.cc.o.d"
  "CMakeFiles/hipstr_workloads.dir/wl_sphinx3.cc.o"
  "CMakeFiles/hipstr_workloads.dir/wl_sphinx3.cc.o.d"
  "CMakeFiles/hipstr_workloads.dir/workloads.cc.o"
  "CMakeFiles/hipstr_workloads.dir/workloads.cc.o.d"
  "libhipstr_workloads.a"
  "libhipstr_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipstr_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
