file(REMOVE_RECURSE
  "libhipstr_workloads.a"
)
