# Empty compiler generated dependencies file for hipstr_compiler.
# This may be replaced when dependencies are built.
