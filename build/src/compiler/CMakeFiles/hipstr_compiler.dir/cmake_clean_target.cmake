file(REMOVE_RECURSE
  "libhipstr_compiler.a"
)
