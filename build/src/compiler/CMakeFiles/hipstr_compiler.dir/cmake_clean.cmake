file(REMOVE_RECURSE
  "CMakeFiles/hipstr_compiler.dir/compile.cc.o"
  "CMakeFiles/hipstr_compiler.dir/compile.cc.o.d"
  "CMakeFiles/hipstr_compiler.dir/frame.cc.o"
  "CMakeFiles/hipstr_compiler.dir/frame.cc.o.d"
  "CMakeFiles/hipstr_compiler.dir/isel.cc.o"
  "CMakeFiles/hipstr_compiler.dir/isel.cc.o.d"
  "CMakeFiles/hipstr_compiler.dir/regalloc.cc.o"
  "CMakeFiles/hipstr_compiler.dir/regalloc.cc.o.d"
  "libhipstr_compiler.a"
  "libhipstr_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipstr_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
