file(REMOVE_RECURSE
  "CMakeFiles/hipstr_ir.dir/builder.cc.o"
  "CMakeFiles/hipstr_ir.dir/builder.cc.o.d"
  "CMakeFiles/hipstr_ir.dir/ir.cc.o"
  "CMakeFiles/hipstr_ir.dir/ir.cc.o.d"
  "CMakeFiles/hipstr_ir.dir/liveness.cc.o"
  "CMakeFiles/hipstr_ir.dir/liveness.cc.o.d"
  "libhipstr_ir.a"
  "libhipstr_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipstr_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
