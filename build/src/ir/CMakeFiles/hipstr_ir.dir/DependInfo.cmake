
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/builder.cc" "src/ir/CMakeFiles/hipstr_ir.dir/builder.cc.o" "gcc" "src/ir/CMakeFiles/hipstr_ir.dir/builder.cc.o.d"
  "/root/repo/src/ir/ir.cc" "src/ir/CMakeFiles/hipstr_ir.dir/ir.cc.o" "gcc" "src/ir/CMakeFiles/hipstr_ir.dir/ir.cc.o.d"
  "/root/repo/src/ir/liveness.cc" "src/ir/CMakeFiles/hipstr_ir.dir/liveness.cc.o" "gcc" "src/ir/CMakeFiles/hipstr_ir.dir/liveness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/hipstr_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hipstr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
