file(REMOVE_RECURSE
  "libhipstr_ir.a"
)
