# Empty compiler generated dependencies file for hipstr_ir.
# This may be replaced when dependencies are built.
