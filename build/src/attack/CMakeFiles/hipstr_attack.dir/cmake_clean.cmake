file(REMOVE_RECURSE
  "CMakeFiles/hipstr_attack.dir/brute_force.cc.o"
  "CMakeFiles/hipstr_attack.dir/brute_force.cc.o.d"
  "CMakeFiles/hipstr_attack.dir/classifier.cc.o"
  "CMakeFiles/hipstr_attack.dir/classifier.cc.o.d"
  "CMakeFiles/hipstr_attack.dir/galileo.cc.o"
  "CMakeFiles/hipstr_attack.dir/galileo.cc.o.d"
  "CMakeFiles/hipstr_attack.dir/jitrop.cc.o"
  "CMakeFiles/hipstr_attack.dir/jitrop.cc.o.d"
  "CMakeFiles/hipstr_attack.dir/tailored.cc.o"
  "CMakeFiles/hipstr_attack.dir/tailored.cc.o.d"
  "libhipstr_attack.a"
  "libhipstr_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipstr_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
