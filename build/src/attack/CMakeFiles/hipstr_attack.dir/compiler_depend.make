# Empty compiler generated dependencies file for hipstr_attack.
# This may be replaced when dependencies are built.
