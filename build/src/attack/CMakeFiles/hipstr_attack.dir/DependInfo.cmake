
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/brute_force.cc" "src/attack/CMakeFiles/hipstr_attack.dir/brute_force.cc.o" "gcc" "src/attack/CMakeFiles/hipstr_attack.dir/brute_force.cc.o.d"
  "/root/repo/src/attack/classifier.cc" "src/attack/CMakeFiles/hipstr_attack.dir/classifier.cc.o" "gcc" "src/attack/CMakeFiles/hipstr_attack.dir/classifier.cc.o.d"
  "/root/repo/src/attack/galileo.cc" "src/attack/CMakeFiles/hipstr_attack.dir/galileo.cc.o" "gcc" "src/attack/CMakeFiles/hipstr_attack.dir/galileo.cc.o.d"
  "/root/repo/src/attack/jitrop.cc" "src/attack/CMakeFiles/hipstr_attack.dir/jitrop.cc.o" "gcc" "src/attack/CMakeFiles/hipstr_attack.dir/jitrop.cc.o.d"
  "/root/repo/src/attack/tailored.cc" "src/attack/CMakeFiles/hipstr_attack.dir/tailored.cc.o" "gcc" "src/attack/CMakeFiles/hipstr_attack.dir/tailored.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hipstr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/hipstr_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/migration/CMakeFiles/hipstr_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hipstr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/binary/CMakeFiles/hipstr_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/hipstr_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/hipstr_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hipstr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
