file(REMOVE_RECURSE
  "libhipstr_attack.a"
)
