file(REMOVE_RECURSE
  "libhipstr_vm.a"
)
