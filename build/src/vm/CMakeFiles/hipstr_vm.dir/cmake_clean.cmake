file(REMOVE_RECURSE
  "CMakeFiles/hipstr_vm.dir/code_cache.cc.o"
  "CMakeFiles/hipstr_vm.dir/code_cache.cc.o.d"
  "CMakeFiles/hipstr_vm.dir/psr_vm.cc.o"
  "CMakeFiles/hipstr_vm.dir/psr_vm.cc.o.d"
  "libhipstr_vm.a"
  "libhipstr_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipstr_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
