# Empty dependencies file for hipstr_vm.
# This may be replaced when dependencies are built.
