file(REMOVE_RECURSE
  "libhipstr_core.a"
)
