file(REMOVE_RECURSE
  "CMakeFiles/hipstr_core.dir/relocation.cc.o"
  "CMakeFiles/hipstr_core.dir/relocation.cc.o.d"
  "CMakeFiles/hipstr_core.dir/translator.cc.o"
  "CMakeFiles/hipstr_core.dir/translator.cc.o.d"
  "libhipstr_core.a"
  "libhipstr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipstr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
