# Empty dependencies file for hipstr_core.
# This may be replaced when dependencies are built.
