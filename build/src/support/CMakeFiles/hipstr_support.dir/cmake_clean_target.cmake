file(REMOVE_RECURSE
  "libhipstr_support.a"
)
