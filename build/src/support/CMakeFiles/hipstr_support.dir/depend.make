# Empty dependencies file for hipstr_support.
# This may be replaced when dependencies are built.
