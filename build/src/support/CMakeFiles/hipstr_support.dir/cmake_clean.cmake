file(REMOVE_RECURSE
  "CMakeFiles/hipstr_support.dir/logging.cc.o"
  "CMakeFiles/hipstr_support.dir/logging.cc.o.d"
  "CMakeFiles/hipstr_support.dir/random.cc.o"
  "CMakeFiles/hipstr_support.dir/random.cc.o.d"
  "CMakeFiles/hipstr_support.dir/stats.cc.o"
  "CMakeFiles/hipstr_support.dir/stats.cc.o.d"
  "libhipstr_support.a"
  "libhipstr_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipstr_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
