# Empty dependencies file for hipstr_migration.
# This may be replaced when dependencies are built.
