file(REMOVE_RECURSE
  "CMakeFiles/hipstr_migration.dir/safety.cc.o"
  "CMakeFiles/hipstr_migration.dir/safety.cc.o.d"
  "CMakeFiles/hipstr_migration.dir/transform.cc.o"
  "CMakeFiles/hipstr_migration.dir/transform.cc.o.d"
  "libhipstr_migration.a"
  "libhipstr_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipstr_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
