file(REMOVE_RECURSE
  "libhipstr_migration.a"
)
