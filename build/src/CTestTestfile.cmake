# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("isa")
subdirs("ir")
subdirs("compiler")
subdirs("binary")
subdirs("sim")
subdirs("vm")
subdirs("core")
subdirs("migration")
subdirs("hipstr")
subdirs("attack")
subdirs("workloads")
