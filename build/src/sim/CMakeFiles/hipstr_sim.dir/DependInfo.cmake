
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/hipstr_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/hipstr_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/core_config.cc" "src/sim/CMakeFiles/hipstr_sim.dir/core_config.cc.o" "gcc" "src/sim/CMakeFiles/hipstr_sim.dir/core_config.cc.o.d"
  "/root/repo/src/sim/rat.cc" "src/sim/CMakeFiles/hipstr_sim.dir/rat.cc.o" "gcc" "src/sim/CMakeFiles/hipstr_sim.dir/rat.cc.o.d"
  "/root/repo/src/sim/timing.cc" "src/sim/CMakeFiles/hipstr_sim.dir/timing.cc.o" "gcc" "src/sim/CMakeFiles/hipstr_sim.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/hipstr_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hipstr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
