file(REMOVE_RECURSE
  "CMakeFiles/hipstr_sim.dir/cache.cc.o"
  "CMakeFiles/hipstr_sim.dir/cache.cc.o.d"
  "CMakeFiles/hipstr_sim.dir/core_config.cc.o"
  "CMakeFiles/hipstr_sim.dir/core_config.cc.o.d"
  "CMakeFiles/hipstr_sim.dir/rat.cc.o"
  "CMakeFiles/hipstr_sim.dir/rat.cc.o.d"
  "CMakeFiles/hipstr_sim.dir/timing.cc.o"
  "CMakeFiles/hipstr_sim.dir/timing.cc.o.d"
  "libhipstr_sim.a"
  "libhipstr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipstr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
