file(REMOVE_RECURSE
  "libhipstr_sim.a"
)
