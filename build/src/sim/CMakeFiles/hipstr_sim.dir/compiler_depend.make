# Empty compiler generated dependencies file for hipstr_sim.
# This may be replaced when dependencies are built.
