file(REMOVE_RECURSE
  "CMakeFiles/hipstr_runtime.dir/runtime.cc.o"
  "CMakeFiles/hipstr_runtime.dir/runtime.cc.o.d"
  "libhipstr_runtime.a"
  "libhipstr_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipstr_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
