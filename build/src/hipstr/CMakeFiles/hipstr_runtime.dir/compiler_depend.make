# Empty compiler generated dependencies file for hipstr_runtime.
# This may be replaced when dependencies are built.
