file(REMOVE_RECURSE
  "libhipstr_runtime.a"
)
