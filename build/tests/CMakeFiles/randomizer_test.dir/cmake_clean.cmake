file(REMOVE_RECURSE
  "CMakeFiles/randomizer_test.dir/randomizer_test.cc.o"
  "CMakeFiles/randomizer_test.dir/randomizer_test.cc.o.d"
  "randomizer_test"
  "randomizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randomizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
