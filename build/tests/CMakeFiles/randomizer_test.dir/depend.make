# Empty dependencies file for randomizer_test.
# This may be replaced when dependencies are built.
