# Empty dependencies file for translator_test.
# This may be replaced when dependencies are built.
