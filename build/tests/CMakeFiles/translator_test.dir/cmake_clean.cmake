file(REMOVE_RECURSE
  "CMakeFiles/translator_test.dir/translator_test.cc.o"
  "CMakeFiles/translator_test.dir/translator_test.cc.o.d"
  "translator_test"
  "translator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
