file(REMOVE_RECURSE
  "CMakeFiles/setjmp_test.dir/setjmp_test.cc.o"
  "CMakeFiles/setjmp_test.dir/setjmp_test.cc.o.d"
  "setjmp_test"
  "setjmp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setjmp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
