# Empty dependencies file for setjmp_test.
# This may be replaced when dependencies are built.
