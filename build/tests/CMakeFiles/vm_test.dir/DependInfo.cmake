
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vm_test.cc" "tests/CMakeFiles/vm_test.dir/vm_test.cc.o" "gcc" "tests/CMakeFiles/vm_test.dir/vm_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/hipstr_support.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/hipstr_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/hipstr_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/hipstr_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/binary/CMakeFiles/hipstr_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/hipstr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/hipstr_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hipstr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hipstr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
