file(REMOVE_RECURSE
  "CMakeFiles/compiler_internals_test.dir/compiler_internals_test.cc.o"
  "CMakeFiles/compiler_internals_test.dir/compiler_internals_test.cc.o.d"
  "compiler_internals_test"
  "compiler_internals_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
