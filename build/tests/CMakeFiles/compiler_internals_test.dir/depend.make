# Empty dependencies file for compiler_internals_test.
# This may be replaced when dependencies are built.
