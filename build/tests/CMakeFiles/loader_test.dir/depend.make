# Empty dependencies file for loader_test.
# This may be replaced when dependencies are built.
