file(REMOVE_RECURSE
  "CMakeFiles/loader_test.dir/loader_test.cc.o"
  "CMakeFiles/loader_test.dir/loader_test.cc.o.d"
  "loader_test"
  "loader_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
