file(REMOVE_RECURSE
  "CMakeFiles/attack_test.dir/attack_test.cc.o"
  "CMakeFiles/attack_test.dir/attack_test.cc.o.d"
  "attack_test"
  "attack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
