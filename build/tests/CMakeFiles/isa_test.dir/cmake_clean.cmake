file(REMOVE_RECURSE
  "CMakeFiles/isa_test.dir/isa_test.cc.o"
  "CMakeFiles/isa_test.dir/isa_test.cc.o.d"
  "isa_test"
  "isa_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
