# Empty compiler generated dependencies file for bench_fig9_performance.
# This may be replaced when dependencies are built.
