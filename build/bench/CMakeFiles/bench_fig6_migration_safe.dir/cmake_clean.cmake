file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_migration_safe.dir/bench_fig6_migration_safe.cc.o"
  "CMakeFiles/bench_fig6_migration_safe.dir/bench_fig6_migration_safe.cc.o.d"
  "bench_fig6_migration_safe"
  "bench_fig6_migration_safe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_migration_safe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
