# Empty compiler generated dependencies file for bench_fig6_migration_safe.
# This may be replaced when dependencies are built.
