file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_isomeron.dir/bench_fig14_isomeron.cc.o"
  "CMakeFiles/bench_fig14_isomeron.dir/bench_fig14_isomeron.cc.o.d"
  "bench_fig14_isomeron"
  "bench_fig14_isomeron.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_isomeron.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
