# Empty compiler generated dependencies file for bench_fig14_isomeron.
# This may be replaced when dependencies are built.
