file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_jitrop.dir/bench_fig5_jitrop.cc.o"
  "CMakeFiles/bench_fig5_jitrop.dir/bench_fig5_jitrop.cc.o.d"
  "bench_fig5_jitrop"
  "bench_fig5_jitrop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_jitrop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
