# Empty dependencies file for bench_fig11_rat_size.
# This may be replaced when dependencies are built.
