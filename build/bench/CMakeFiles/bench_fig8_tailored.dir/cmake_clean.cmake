file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_tailored.dir/bench_fig8_tailored.cc.o"
  "CMakeFiles/bench_fig8_tailored.dir/bench_fig8_tailored.cc.o.d"
  "bench_fig8_tailored"
  "bench_fig8_tailored.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_tailored.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
