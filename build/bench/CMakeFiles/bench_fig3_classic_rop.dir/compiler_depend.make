# Empty compiler generated dependencies file for bench_fig3_classic_rop.
# This may be replaced when dependencies are built.
