file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_classic_rop.dir/bench_fig3_classic_rop.cc.o"
  "CMakeFiles/bench_fig3_classic_rop.dir/bench_fig3_classic_rop.cc.o.d"
  "bench_fig3_classic_rop"
  "bench_fig3_classic_rop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_classic_rop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
