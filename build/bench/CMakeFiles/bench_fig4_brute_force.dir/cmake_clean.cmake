file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_brute_force.dir/bench_fig4_brute_force.cc.o"
  "CMakeFiles/bench_fig4_brute_force.dir/bench_fig4_brute_force.cc.o.d"
  "bench_fig4_brute_force"
  "bench_fig4_brute_force.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_brute_force.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
