# Empty dependencies file for bench_fig4_brute_force.
# This may be replaced when dependencies are built.
