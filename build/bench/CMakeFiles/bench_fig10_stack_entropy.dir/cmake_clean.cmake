file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_stack_entropy.dir/bench_fig10_stack_entropy.cc.o"
  "CMakeFiles/bench_fig10_stack_entropy.dir/bench_fig10_stack_entropy.cc.o.d"
  "bench_fig10_stack_entropy"
  "bench_fig10_stack_entropy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_stack_entropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
