# Empty compiler generated dependencies file for bench_fig10_stack_entropy.
# This may be replaced when dependencies are built.
