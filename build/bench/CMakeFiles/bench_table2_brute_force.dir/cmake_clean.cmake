file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_brute_force.dir/bench_table2_brute_force.cc.o"
  "CMakeFiles/bench_table2_brute_force.dir/bench_table2_brute_force.cc.o.d"
  "bench_table2_brute_force"
  "bench_table2_brute_force.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_brute_force.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
