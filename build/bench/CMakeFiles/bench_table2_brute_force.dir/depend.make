# Empty dependencies file for bench_table2_brute_force.
# This may be replaced when dependencies are built.
