# Empty compiler generated dependencies file for bench_fig13_code_cache.
# This may be replaced when dependencies are built.
