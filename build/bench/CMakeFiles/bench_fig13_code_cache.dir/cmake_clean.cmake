file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_code_cache.dir/bench_fig13_code_cache.cc.o"
  "CMakeFiles/bench_fig13_code_cache.dir/bench_fig13_code_cache.cc.o.d"
  "bench_fig13_code_cache"
  "bench_fig13_code_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_code_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
