file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_migration.dir/bench_fig12_migration.cc.o"
  "CMakeFiles/bench_fig12_migration.dir/bench_fig12_migration.cc.o.d"
  "bench_fig12_migration"
  "bench_fig12_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
