file(REMOVE_RECURSE
  "CMakeFiles/hipstr_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/hipstr_bench_util.dir/bench_util.cc.o.d"
  "libhipstr_bench_util.a"
  "libhipstr_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipstr_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
