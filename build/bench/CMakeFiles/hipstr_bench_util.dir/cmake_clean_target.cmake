file(REMOVE_RECURSE
  "libhipstr_bench_util.a"
)
