# Empty compiler generated dependencies file for hipstr_bench_util.
# This may be replaced when dependencies are built.
