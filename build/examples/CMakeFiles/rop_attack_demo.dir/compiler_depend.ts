# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for rop_attack_demo.
