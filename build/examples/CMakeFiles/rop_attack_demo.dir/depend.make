# Empty dependencies file for rop_attack_demo.
# This may be replaced when dependencies are built.
