file(REMOVE_RECURSE
  "CMakeFiles/rop_attack_demo.dir/rop_attack_demo.cpp.o"
  "CMakeFiles/rop_attack_demo.dir/rop_attack_demo.cpp.o.d"
  "rop_attack_demo"
  "rop_attack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rop_attack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
