
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/protected_server.cpp" "examples/CMakeFiles/protected_server.dir/protected_server.cpp.o" "gcc" "examples/CMakeFiles/protected_server.dir/protected_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/hipstr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/hipstr_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/hipstr/CMakeFiles/hipstr_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/hipstr_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/migration/CMakeFiles/hipstr_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/hipstr_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hipstr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hipstr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/binary/CMakeFiles/hipstr_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/hipstr_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/hipstr_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hipstr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
