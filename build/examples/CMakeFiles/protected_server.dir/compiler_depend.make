# Empty compiler generated dependencies file for protected_server.
# This may be replaced when dependencies are built.
