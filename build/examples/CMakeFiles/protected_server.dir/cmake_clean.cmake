file(REMOVE_RECURSE
  "CMakeFiles/protected_server.dir/protected_server.cpp.o"
  "CMakeFiles/protected_server.dir/protected_server.cpp.o.d"
  "protected_server"
  "protected_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protected_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
