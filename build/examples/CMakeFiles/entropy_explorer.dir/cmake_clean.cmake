file(REMOVE_RECURSE
  "CMakeFiles/entropy_explorer.dir/entropy_explorer.cpp.o"
  "CMakeFiles/entropy_explorer.dir/entropy_explorer.cpp.o.d"
  "entropy_explorer"
  "entropy_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entropy_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
