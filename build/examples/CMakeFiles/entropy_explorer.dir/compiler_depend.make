# Empty compiler generated dependencies file for entropy_explorer.
# This may be replaced when dependencies are built.
