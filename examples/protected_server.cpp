/**
 * @file
 * Protected-server scenario on the heterogeneous-CMP subsystem: a
 * pool of httpd-style worker processes served by the quantum
 * scheduler on a 2 Risc + 2 Cisc machine (Section 3.5 / 5.3).
 * Demonstrates:
 *
 *  - multi-tenant service under PSR with per-process randomization,
 *  - attack requests raising security events that migrate the worker
 *    to a core of the other ISA mid-request,
 *  - malformed requests crashing workers, which the scheduler
 *    respawns with fresh relocation maps on both ISAs,
 *  - the defense's bookkeeping: latency, throughput in modeled time,
 *    migrations, crashes, respawn generations.
 *
 *   ./examples/protected_server
 *   ./examples/protected_server --trace server_trace.json
 *
 * With --trace, the run records a structured event trace (scheduler
 * quanta, request lifecycles, VM translations, cross-ISA migrations)
 * and writes it in Chrome trace_event format — open the file in
 * chrome://tracing or https://ui.perfetto.dev. EXPERIMENTS.md has the
 * full recipe.
 */

#include <cstdio>
#include <cstring>
#include <fstream>

#include "compiler/compile.hh"
#include "server/protected_server.hh"
#include "workloads/workloads.hh"

using namespace hipstr;

int
main(int argc, char **argv)
{
    const char *trace_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0) {
            trace_path = (i + 1 < argc) ? argv[++i]
                                        : "server_trace.json";
        } else {
            std::fprintf(stderr,
                         "usage: %s [--trace [file.json]]\n", argv[0]);
            return 2;
        }
    }

    WorkloadConfig wcfg;
    wcfg.scale = 2;
    FatBinary bin = compileModule(buildWorkload("httpd", wcfg));

    ServerConfig cfg;
    cfg.workers = 8;
    cfg.requestCount = 400;
    cfg.mix.attackFrac = 0.05;    // ~5% exploit attempts
    cfg.mix.malformedFrac = 0.05; // ~5% worker-killing garbage
    cfg.hipstr.diversificationProbability = 1.0;

    telemetry::TraceBuffer trace(1 << 18);
    if (trace_path != nullptr) {
        trace.setMask(telemetry::kAllTraceCategories);
        cfg.trace = &trace;
    }

    std::printf("protected server: %u workers on %s, %llu requests "
                "(5%% attacks, 5%% malformed)\n",
                cfg.workers, CmpModel(cfg.cmp).describe().c_str(),
                static_cast<unsigned long long>(cfg.requestCount));

    ProtectedServer server(bin, cfg);
    ServerReport r = server.run();

    std::printf(
        "served %llu/%llu requests in %llu rounds "
        "(%.1f req/modeled-second)\n",
        static_cast<unsigned long long>(r.requestsServed),
        static_cast<unsigned long long>(cfg.requestCount),
        static_cast<unsigned long long>(r.rounds),
        r.requestsPerModeledSecond);
    std::printf("  latency: mean %.1f rounds, p50 %llu, p95 %llu, "
                "max %llu\n",
                r.latency.meanRounds,
                static_cast<unsigned long long>(r.latency.p50Rounds),
                static_cast<unsigned long long>(r.latency.p95Rounds),
                static_cast<unsigned long long>(r.latency.maxRounds));
    std::printf(
        "  defense: %llu security events -> %u migrations "
        "(%u routed to other-ISA cores), %u denied\n",
        static_cast<unsigned long long>(r.securityEvents),
        r.migrations, r.migrationsRouted, r.migrationsDenied);
    std::printf("  crashes: %u, respawns with fresh randomization: "
                "%u (Section 5.3)\n",
                r.crashes, r.respawns);
    std::printf("  integrity: %u program completions verified, %u "
                "checksum mismatches\n",
                r.programsCompleted, r.checksumMismatches);

    std::printf("per-worker generations after the run:\n");
    for (const auto &w : server.workers()) {
        std::printf(
            "  pid %-2u %-8s isa=%-4s respawns=%u gen(risc/cisc)="
            "%llu/%llu insts=%llu\n",
            w->pid(), procStateName(w->state()), isaName(w->isa()),
            w->respawnCount(),
            static_cast<unsigned long long>(
                w->runtime().vm(IsaKind::Risc).randomizer()
                    .generation()),
            static_cast<unsigned long long>(
                w->runtime().vm(IsaKind::Cisc).randomizer()
                    .generation()),
            static_cast<unsigned long long>(w->stats().guestInsts));
    }

    std::printf("runtime phase profile (modeled microseconds, summed "
                "over workers):\n");
    for (size_t i = 0;
         i < static_cast<size_t>(telemetry::Phase::kNum); ++i) {
        const telemetry::Phase ph = static_cast<telemetry::Phase>(i);
        const telemetry::PhaseStats &ps = r.phases[ph];
        std::printf("  %-19s %6llu invocations  %12.1f us\n",
                    telemetry::phaseName(ph),
                    static_cast<unsigned long long>(ps.invocations),
                    ps.modeledMicros);
    }

    if (trace_path != nullptr) {
        std::ofstream os(trace_path);
        trace.exportChrome(os);
        std::printf("wrote %zu trace events (%llu dropped) to %s -- "
                    "load in chrome://tracing or ui.perfetto.dev\n",
                    trace.size(),
                    static_cast<unsigned long long>(trace.dropped()),
                    trace_path);
    }

    std::printf("done: every crash handed the attacker a "
                "re-randomized worker; every security event moved "
                "the victim across the ISA boundary\n");
    return 0;
}
