/**
 * @file
 * Protected-server scenario: the httpd-like daemon running under the
 * full HIPStR runtime with the respawn-on-crash behaviour real
 * servers exhibit (Section 5.3). Demonstrates:
 *
 *  - steady-state service under PSR with migration enabled,
 *  - a crash (as a brute-force attacker would induce) followed by a
 *    respawn with fresh randomization on both ISAs,
 *  - the defense's bookkeeping: relocation-map generations, security
 *    events, migration counts and modeled migration cost.
 *
 *   ./examples/protected_server
 */

#include <cstdio>

#include "binary/loader.hh"
#include "compiler/compile.hh"
#include "hipstr/runtime.hh"
#include "workloads/workloads.hh"

using namespace hipstr;

int
main()
{
    WorkloadConfig wcfg;
    wcfg.scale = 2;
    FatBinary bin = compileModule(buildWorkload("httpd", wcfg));

    Memory mem;
    loadFatBinary(bin, mem);
    GuestOs os;

    HipstrConfig cfg;
    cfg.diversificationProbability = 1.0;
    cfg.phaseIntervalInsts = 50'000; // energy/perf-driven switches
    HipstrRuntime server(bin, mem, os, cfg);

    std::printf("serving requests under HIPStR "
                "(phase migrations every %llu insts)...\n",
                static_cast<unsigned long long>(
                    cfg.phaseIntervalInsts));

    for (unsigned respawn = 0; respawn < 3; ++respawn) {
        os.reset();
        server.reset();
        HipstrRunSummary s = server.run(100'000'000);

        std::printf(
            "worker %u: %s after %llu insts, exit=%u\n", respawn,
            vmStopName(s.reason),
            static_cast<unsigned long long>(s.totalGuestInsts),
            os.exitCode());
        std::printf(
            "  migrations: %u (modeled cost %.1f us total), "
            "risc/cisc split %llu/%llu\n",
            s.migrations, s.migrationMicroseconds,
            static_cast<unsigned long long>(s.guestInstsPerIsa[0]),
            static_cast<unsigned long long>(s.guestInstsPerIsa[1]));
        for (IsaKind isa : kAllIsas) {
            const VmStats &st = server.vm(isa).stats;
            std::printf(
                "  %-4s vm: gen %llu, %llu translations, %llu "
                "security events, RAT %llu/%llu hit/miss\n",
                isaName(isa),
                static_cast<unsigned long long>(
                    server.vm(isa).randomizer().generation()),
                static_cast<unsigned long long>(st.translations),
                static_cast<unsigned long long>(st.securityEvents),
                static_cast<unsigned long long>(st.ratHits),
                static_cast<unsigned long long>(st.ratMisses));
        }

        // Simulate the crash a brute-force probe causes; the parent
        // respawns the worker, and the PSR VMs re-randomize — every
        // attempt faces fresh relocation maps on both ISAs.
        std::printf("  [attacker probe crashes the worker; parent "
                    "respawns it with fresh randomization]\n");
        for (IsaKind isa : kAllIsas)
            server.vm(isa).reRandomize();
    }

    std::printf("done: three generations served; each respawn "
                "presented the attacker with a re-randomized code "
                "cache on both ISAs (Section 5.3)\n");
    return 0;
}
