/**
 * @file
 * Protected-server scenario on the heterogeneous-CMP subsystem: a
 * pool of httpd-style worker processes served by the quantum
 * scheduler on a 2 Risc + 2 Cisc machine (Section 3.5 / 5.3).
 * Demonstrates:
 *
 *  - multi-tenant service under PSR with per-process randomization,
 *  - attack requests raising security events that migrate the worker
 *    to a core of the other ISA mid-request,
 *  - malformed requests crashing workers, which the scheduler
 *    respawns with fresh relocation maps on both ISAs,
 *  - the defense's bookkeeping: latency, throughput in modeled time,
 *    migrations, crashes, respawn generations.
 *
 *   ./examples/protected_server
 *   ./examples/protected_server --trace server_trace.json
 *   ./examples/protected_server --chaos
 *   ./examples/protected_server --fleet 4 --chaos
 *   ./examples/protected_server --campaign brute
 *   ./examples/protected_server --fleet 4 --campaign crossguest
 *
 * With --campaign <oneshot|brute|isomeron|respawn|crossguest>, an
 * adaptive adversary campaign (src/attack/campaign.hh) owns a share
 * of the request stream: it rewrites drawn requests into probes,
 * observes only what an external client could (responses, connection
 * resets, latency), and steers its next probes from the belief it
 * builds. The run prints the attacker's scorecard next to the
 * defender's. Campaign runs record and replay like any other — the
 * journal carries the rewritten probes, so HIPSTR_REPLAY re-drives
 * the hostile run bit-exactly with no engine attached.
 *
 * With --fleet K, the run scales out to K sharded servers behind the
 * deterministic load balancer (src/fleet): consistent-hash session
 * pinning, bounded admission queues, SLO shedding, and cross-shard
 * work stealing during respawn storms. The record/replay knobs below
 * work for fleet runs too (fleet journals share the format).
 *
 * With --trace, the run records a structured event trace (scheduler
 * quanta, request lifecycles, VM translations, cross-ISA migrations)
 * and writes it in Chrome trace_event format — open the file in
 * chrome://tracing or https://ui.perfetto.dev. EXPERIMENTS.md has the
 * full recipe.
 *
 * With --chaos, a seeded fault plan (src/fault) injects transient
 * guest faults, random core outages, and one scripted full-ISA
 * blackout; the supervisor rides it out with backoff, quarantine,
 * rerouting, and degraded single-ISA mode, and the run prints the
 * fault/recovery bookkeeping plus the final telemetry gauges.
 *
 * Record/replay (src/replay) wires in through two environment knobs:
 *
 *   HIPSTR_RECORD=run.hjl ./examples/protected_server --chaos
 *   HIPSTR_REPLAY=run.hjl ./examples/protected_server --chaos
 *
 * Recording journals every nondeterministic input (request draws,
 * fault firings, migration coin flips) plus periodic checkpoints
 * without perturbing the run; replaying re-drives the identical run
 * bit-exactly, verifying every round's sync signature. EXPERIMENTS.md
 * has the crash-triage recipe built on these.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>

#include "attack/campaign.hh"
#include "compiler/compile.hh"
#include "fleet/fleet.hh"
#include "replay/fleet_replay.hh"
#include "replay/record_replay.hh"
#include "server/protected_server.hh"
#include "support/env.hh"
#include "vm/jit/engine.hh"
#include "workloads/workloads.hh"

using namespace hipstr;

int
main(int argc, char **argv)
{
    const char *trace_path = nullptr;
    bool chaos = false;
    unsigned fleetShards = 0;
    bool haveCampaign = false;
    attack::CampaignStrategy strategy =
        attack::CampaignStrategy::OneShot;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0) {
            trace_path = (i + 1 < argc) ? argv[++i]
                                        : "server_trace.json";
        } else if (std::strcmp(argv[i], "--chaos") == 0) {
            chaos = true;
        } else if (std::strcmp(argv[i], "--fleet") == 0 &&
                   i + 1 < argc) {
            fleetShards = unsigned(std::atoi(argv[++i]));
            if (fleetShards == 0 || fleetShards > 64) {
                std::fprintf(stderr, "--fleet wants 1..64 shards\n");
                return 2;
            }
        } else if (std::strcmp(argv[i], "--campaign") == 0 &&
                   i + 1 < argc) {
            if (!attack::campaignStrategyFromName(argv[++i],
                                                  strategy)) {
                std::fprintf(stderr,
                             "--campaign wants one of: oneshot brute "
                             "isomeron respawn crossguest\n");
                return 2;
            }
            haveCampaign = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--trace [file.json]] [--chaos] "
                         "[--fleet K] [--campaign <strategy>]\n",
                         argv[0]);
            return 2;
        }
    }

    WorkloadConfig wcfg;
    wcfg.scale = 2;
    FatBinary bin = compileModule(buildWorkload("httpd", wcfg));

    ServerConfig cfg;
    cfg.workers = 8;
    cfg.requestCount = 400;
    cfg.mix.attackFrac = 0.05;    // ~5% exploit attempts
    cfg.mix.malformedFrac = 0.05; // ~5% worker-killing garbage
    cfg.hipstr.diversificationProbability = 1.0;

    telemetry::TraceBuffer trace(1 << 18);
    if (trace_path != nullptr) {
        trace.setMask(telemetry::kAllTraceCategories);
        cfg.trace = &trace;
    }

    telemetry::MetricRegistry metrics;
    if (chaos) {
        cfg.faults.enabled = true;
        cfg.faults.quantumFaultRate = 0.01;
        cfg.faults.coreFailRate = 0.002;
        cfg.faults.scriptedOutageIsa = IsaKind::Risc;
        cfg.faults.scriptedOutageRound = 20;
        cfg.faults.scriptedOutageRounds = 25;
        cfg.watchdogQuanta = 3;
        cfg.sched.supervisor.backoffBaseRounds = 1;
        cfg.sched.supervisor.backoffCapRounds = 8;
        cfg.sched.supervisor.quarantineAfter = 4;
        cfg.sched.supervisor.quarantineRounds = 16;
        cfg.metrics = &metrics;
    }

    // Every worker VM honours HIPSTR_JIT through PsrConfig's default
    // JitMode::FromEnv; surface the effective engine choice up front
    // so a surprising perf profile is explainable from the banner.
    const char *jit_reason = nullptr;
    const bool jit_host_ok = jit::TraceJit::hostSupported(&jit_reason);
    const bool jit_on = jit_host_ok && envFlag("HIPSTR_JIT", true) &&
        envFlag("HIPSTR_TRACE", true);
    std::printf("protected server: %u workers on %s, %llu requests "
                "(5%% attacks, 5%% malformed)%s, trace jit %s%s%s\n",
                cfg.workers, CmpModel(cfg.cmp).describe().c_str(),
                static_cast<unsigned long long>(cfg.requestCount),
                chaos ? " + seeded chaos plan" : "",
                jit_on ? "on" : "off",
                !jit_host_ok ? ": " : "",
                !jit_host_ok ? jit_reason : "");

    const std::string recordPath = envString("HIPSTR_RECORD");
    const std::string replayPath = envString("HIPSTR_REPLAY");
    if (!recordPath.empty() && !replayPath.empty()) {
        std::fprintf(stderr, "set HIPSTR_RECORD or HIPSTR_REPLAY, "
                             "not both\n");
        return 2;
    }

    // A live campaign makes no sense during replay: the journal
    // already carries every rewritten probe, and the drivers null the
    // engine anyway.
    std::unique_ptr<attack::CampaignEngine> campaign;
    auto makeCampaign = [&](uint64_t defenseSeed, unsigned shards) {
        attack::CampaignConfig ccfg = attack::campaignConfigFor(
            strategy, /*attackerSeed=*/0xa77ac4, defenseSeed,
            cfg.hipstr.psr.randSpaceBytes,
            cfg.hipstr.diversificationProbability, shards);
        ccfg.probeFrac = 0.25; // hostile tenant owns 25% of traffic
        if (trace_path != nullptr)
            ccfg.trace = &trace;
        campaign = std::make_unique<attack::CampaignEngine>(ccfg);
        std::printf("campaign: %s strategy, 25%% hostile tenancy, "
                    "secret space %u\n",
                    attack::campaignStrategyName(strategy),
                    campaign->config().secretSpace);
    };
    auto printCampaign = [&] {
        if (campaign == nullptr)
            return;
        if (!replayPath.empty()) {
            std::printf("  campaign: replayed from journal (no live "
                        "engine)\n");
            return;
        }
        const attack::CampaignReport cr = campaign->report();
        std::printf(
            "  campaign: %llu probes (%llu attack, %llu crash), "
            "%llu responses, %llu crashes seen, %llu silences\n",
            static_cast<unsigned long long>(cr.probesSent),
            static_cast<unsigned long long>(cr.attackProbes),
            static_cast<unsigned long long>(cr.crashProbes),
            static_cast<unsigned long long>(cr.responses),
            static_cast<unsigned long long>(cr.crashesObserved),
            static_cast<unsigned long long>(cr.silences));
        if (cr.compromises > 0) {
            std::printf("  campaign: %llu compromises, first after "
                        "%llu probes (round %llu)\n",
                        static_cast<unsigned long long>(
                            cr.compromises),
                        static_cast<unsigned long long>(
                            cr.firstCompromiseProbe),
                        static_cast<unsigned long long>(
                            cr.firstCompromiseRound));
        } else {
            std::printf("  campaign: no payload landed — the defense "
                        "held for the whole run\n");
        }
        std::printf(
            "  belief: %llu exclusions learned, %llu dropped to "
            "crash resets, %llu ISA leaks folded, %llu respawn gaps "
            "timed\n",
            static_cast<unsigned long long>(
                cr.belief.exclusionsLearned),
            static_cast<unsigned long long>(cr.belief.epochResets),
            static_cast<unsigned long long>(cr.belief.isaLeaksSeen),
            static_cast<unsigned long long>(cr.belief.gapsLearned));
    };

    if (fleetShards != 0) {
        FleetConfig fcfg;
        fcfg.shards = fleetShards;
        fcfg.server = cfg;
        fcfg.requestCount = cfg.requestCount * fleetShards;
        fcfg.mix = cfg.mix;
        fcfg.sloRounds = 128;
        fcfg.batchSize = 4 * fleetShards;
        fcfg.trace = cfg.trace;
        fcfg.metrics = cfg.metrics;
        if (haveCampaign) {
            makeCampaign(fcfg.seed, fcfg.shards);
            fcfg.campaign = campaign.get();
        }

        std::printf("fleet mode: %u shards x %u workers, %llu "
                    "requests across %llu sessions\n",
                    fcfg.shards, cfg.workers,
                    static_cast<unsigned long long>(
                        fcfg.requestCount),
                    static_cast<unsigned long long>(fcfg.sessions));

        FleetReport fr;
        if (!replayPath.empty()) {
            replay::FleetReplayResult rr =
                replay::replayFleetRun(bin, fcfg, replayPath);
            fr = rr.report;
            std::printf("replayed %s bit-exactly: %llu fleet rounds, "
                        "%llu sync points verified\n",
                        replayPath.c_str(),
                        static_cast<unsigned long long>(rr.rounds),
                        static_cast<unsigned long long>(
                            rr.syncChecks));
        } else if (!recordPath.empty()) {
            replay::FleetRecordResult rc =
                replay::recordFleetRun(bin, fcfg, recordPath);
            fr = rc.report;
            std::printf("recorded %llu fleet rounds to %s (%llu "
                        "journal bytes)\n",
                        static_cast<unsigned long long>(rc.rounds),
                        recordPath.c_str(),
                        static_cast<unsigned long long>(
                            rc.journalBytes));
        } else {
            ProtectedFleet fleet(bin, fcfg);
            fr = fleet.run();
        }

        std::printf(
            "fleet served %llu/%llu requests in %llu rounds "
            "(availability %.4f)\n",
            static_cast<unsigned long long>(fr.requestsServed),
            static_cast<unsigned long long>(fr.requestsOffered),
            static_cast<unsigned long long>(fr.rounds),
            fr.availability);
        std::printf("  shed past SLO: %llu, abandoned: %llu, "
                    "re-routed after worker loss: %llu\n",
                    static_cast<unsigned long long>(fr.requestsShed),
                    static_cast<unsigned long long>(
                        fr.requestsAbandoned),
                    static_cast<unsigned long long>(
                        fr.requestsRetried));
        std::printf("  latency: mean %.1f rounds, p50 %llu, p99 "
                    "%llu, p99.9 %llu, max %llu\n",
                    fr.meanLatencyRounds,
                    static_cast<unsigned long long>(fr.p50Rounds),
                    static_cast<unsigned long long>(fr.p99Rounds),
                    static_cast<unsigned long long>(fr.p999Rounds),
                    static_cast<unsigned long long>(fr.maxRounds));
        std::printf("  balancer: %llu steals during storms, %llu "
                    "backpressure stalls\n",
                    static_cast<unsigned long long>(fr.steals),
                    static_cast<unsigned long long>(
                        fr.backpressureStalls));
        std::printf("  defense: %llu security events, %u migrations, "
                    "%u crashes / %u respawns, %u quarantines\n",
                    static_cast<unsigned long long>(
                        fr.securityEvents),
                    fr.migrations, fr.crashes, fr.respawns,
                    fr.quarantines);
        printCampaign();
        for (size_t k = 0; k < fr.shardReports.size(); ++k) {
            const ServerReport &s = fr.shardReports[k];
            std::printf("  shard %zu: %llu served, %llu rounds, %u "
                        "crashes, %u migrations\n",
                        k,
                        static_cast<unsigned long long>(
                            s.requestsServed),
                        static_cast<unsigned long long>(s.rounds),
                        s.crashes, s.migrations);
        }

        if (trace_path != nullptr) {
            std::ofstream os(trace_path);
            trace.exportChrome(os);
            std::printf("wrote %zu trace events (%llu dropped) to "
                        "%s\n",
                        trace.size(),
                        static_cast<unsigned long long>(
                            trace.dropped()),
                        trace_path);
        }
        std::printf("done\n");
        return 0;
    }

    // The record/replay harnesses own their server internally, so
    // the per-worker dump below only runs for a plain serve.
    if (haveCampaign) {
        makeCampaign(cfg.seed, 1);
        cfg.campaign = campaign.get();
    }
    std::unique_ptr<ProtectedServer> server;
    ServerReport r;
    if (!replayPath.empty()) {
        replay::ReplayResult rr =
            replay::replayRun(bin, cfg, replayPath);
        r = rr.report;
        std::printf("replayed %s bit-exactly: %llu rounds, %llu "
                    "sync points verified\n",
                    replayPath.c_str(),
                    static_cast<unsigned long long>(rr.rounds),
                    static_cast<unsigned long long>(rr.syncChecks));
    } else if (!recordPath.empty()) {
        replay::RecordResult rc =
            replay::recordRun(bin, cfg, recordPath);
        r = rc.report;
        std::printf("recorded %llu rounds to %s (%llu journal "
                    "bytes, %llu checkpoints)\n",
                    static_cast<unsigned long long>(rc.rounds),
                    recordPath.c_str(),
                    static_cast<unsigned long long>(rc.journalBytes),
                    static_cast<unsigned long long>(rc.checkpoints));
    } else {
        server = std::make_unique<ProtectedServer>(bin, cfg);
        r = server->run();
    }

    std::printf(
        "served %llu/%llu requests in %llu rounds "
        "(%.1f req/modeled-second)\n",
        static_cast<unsigned long long>(r.requestsServed),
        static_cast<unsigned long long>(cfg.requestCount),
        static_cast<unsigned long long>(r.rounds),
        r.requestsPerModeledSecond);
    std::printf("  latency: mean %.1f rounds, p50 %llu, p95 %llu, "
                "max %llu\n",
                r.latency.meanRounds,
                static_cast<unsigned long long>(r.latency.p50Rounds),
                static_cast<unsigned long long>(r.latency.p95Rounds),
                static_cast<unsigned long long>(r.latency.maxRounds));
    std::printf(
        "  defense: %llu security events -> %u migrations "
        "(%u routed to other-ISA cores), %u denied\n",
        static_cast<unsigned long long>(r.securityEvents),
        r.migrations, r.migrationsRouted, r.migrationsDenied);
    std::printf("  crashes: %u, respawns with fresh randomization: "
                "%u (Section 5.3)\n",
                r.crashes, r.respawns);
    std::printf("  integrity: %u program completions verified, %u "
                "checksum mismatches\n",
                r.programsCompleted, r.checksumMismatches);
    printCampaign();

    if (chaos) {
        std::printf(
            "  chaos: %llu faults injected, %u watchdog kills, %u "
            "transform aborts rolled back\n",
            static_cast<unsigned long long>(r.faultsInjectedTotal),
            r.watchdogKills, r.transformAborts);
        std::printf(
            "  supervision: %u core outages (%llu offline quanta), "
            "%u reroutes + %u reroute respawns, %u quarantines, "
            "%u recoveries (mean %.1f rounds)\n",
            r.coreOutages,
            static_cast<unsigned long long>(r.offlineCoreQuanta),
            r.reroutes, r.rerouteRespawns, r.quarantines,
            r.recoveries, r.meanRoundsToRecover);
        std::printf(
            "  degraded single-ISA mode: entered %u times, exited "
            "%u, %llu rounds total; degraded_mode gauge now %.0f\n",
            r.degradedEntries, r.degradedExits,
            static_cast<unsigned long long>(r.degradedRounds),
            metrics.gauge("server.degraded_mode").value());
    }

    if (server == nullptr) {
        std::printf("done\n");
        return 0;
    }
    std::printf("per-worker generations after the run:\n");
    for (const auto &w : server->workers()) {
        std::printf(
            "  pid %-2u %-8s isa=%-4s respawns=%u gen(risc/cisc)="
            "%llu/%llu insts=%llu\n",
            w->pid(), procStateName(w->state()), isaName(w->isa()),
            w->respawnCount(),
            static_cast<unsigned long long>(
                w->runtime().vm(IsaKind::Risc).randomizer()
                    .generation()),
            static_cast<unsigned long long>(
                w->runtime().vm(IsaKind::Cisc).randomizer()
                    .generation()),
            static_cast<unsigned long long>(w->stats().guestInsts));
    }

    std::printf("runtime phase profile (modeled microseconds, summed "
                "over workers):\n");
    for (size_t i = 0;
         i < static_cast<size_t>(telemetry::Phase::kNum); ++i) {
        const telemetry::Phase ph = static_cast<telemetry::Phase>(i);
        const telemetry::PhaseStats &ps = r.phases[ph];
        std::printf("  %-19s %6llu invocations  %12.1f us\n",
                    telemetry::phaseName(ph),
                    static_cast<unsigned long long>(ps.invocations),
                    ps.modeledMicros);
    }

    if (trace_path != nullptr) {
        std::ofstream os(trace_path);
        trace.exportChrome(os);
        std::printf("wrote %zu trace events (%llu dropped) to %s -- "
                    "load in chrome://tracing or ui.perfetto.dev\n",
                    trace.size(),
                    static_cast<unsigned long long>(trace.dropped()),
                    trace_path);
    }

    std::printf("done: every crash handed the attacker a "
                "re-randomized worker; every security event moved "
                "the victim across the ISA boundary\n");
    return 0;
}
