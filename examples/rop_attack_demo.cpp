/**
 * @file
 * ROP attack demo: mounts the classic stack-smash-to-execve chain of
 * Figure 1 against the httpd-like workload, three times:
 *
 *  1. against the unprotected native binary — the attack succeeds;
 *  2. against a PSR virtual machine — the same payload executes, but
 *     every gadget operates on relocated state and the chain
 *     collapses;
 *  3. against the full HIPStR runtime — the very first gadget raises
 *     a code-cache-miss security event and triggers migration.
 *
 *   ./examples/rop_attack_demo
 */

#include <cstdio>
#include <optional>
#include <vector>

#include "attack/classifier.hh"
#include "attack/galileo.hh"
#include "binary/loader.hh"
#include "compiler/compile.hh"
#include "hipstr/runtime.hh"
#include "isa/interp.hh"
#include "vm/psr_vm.hh"
#include "workloads/workloads.hh"

using namespace hipstr;

namespace
{

/**
 * The attacker's plan. The highest-value target in any binary is a
 * syscall-site gadget: the compiler materializes the system-call
 * number and arguments from known stack slots right before the
 * syscall instruction, so a single gadget starting at those loads
 * gives full execve control (the classic "int 0x80 with register
 * control" gadget). The sandbox tells the attacker exactly which
 * stack offsets feed which registers.
 */
struct ChainPlan
{
    Addr gadget = 0;                  ///< the syscall-site gadget
    std::vector<uint32_t> stackWords; ///< crafted frame contents
};

std::optional<ChainPlan>
planChain(const FatBinary &bin, Memory &mem)
{
    auto gadgets = scanBinary(bin, IsaKind::Cisc);
    GadgetSandbox sandbox(mem, IsaKind::Cisc);
    const IsaDescriptor &desc = isaDescriptor(IsaKind::Cisc);

    // Registers to fill and the attacker's values for them.
    const std::vector<std::pair<Reg, uint32_t>> wanted = {
        { desc.retReg, uint32_t(SyscallNo::Execve) },
        { desc.argRegs[1], 0xdead0001 }, // path ("/bin/sh")
        { desc.argRegs[2], 0xdead0002 }, // argv
        { desc.argRegs[3], 0xdead0003 }, // envp
    };

    for (const Gadget &g : gadgets) {
        if (!g.hasSyscall)
            continue;
        GadgetEffect e = sandbox.executeNative(g);
        if (!e.syscallReached)
            continue;
        // Which stack offset feeds each wanted register?
        ChainPlan plan;
        plan.gadget = g.addr;
        plan.stackWords.assign(16, 0x41414141);
        bool all_controlled = true;
        for (auto [reg, value] : wanted) {
            if (!maskHas(e.popMask, reg)) {
                all_controlled = false;
                break;
            }
            size_t pop_idx = 0;
            int32_t off = -1;
            for (unsigned r = 0; r < 16; ++r) {
                if (!maskHas(e.popMask, static_cast<Reg>(r)))
                    continue;
                if (r == reg)
                    off = e.popOffsets[pop_idx];
                ++pop_idx;
            }
            if (off < 0 || off / 4 >= int32_t(plan.stackWords.size())) {
                all_controlled = false;
                break;
            }
            plan.stackWords[static_cast<size_t>(off / 4)] = value;
        }
        if (all_controlled)
            return plan;
    }
    std::printf("  no syscall-site gadget with full register "
                "control\n");
    return std::nullopt;
}

/** Write the payload over a stack area and point sp at it. */
void
injectPayload(const ChainPlan &plan, Memory &mem,
              MachineState &state)
{
    // The overflowed frame: the gadget's stack view starts at sp.
    Addr sp = layout::kStackTop - 0x8000;
    for (size_t i = 0; i < plan.stackWords.size(); ++i)
        mem.rawWrite32(sp + Addr(4 * i), plan.stackWords[i]);
    state.setSp(sp);
}

} // namespace

int
main()
{
    FatBinary bin = compileModule(buildWorkload("httpd"));

    std::printf("=== 1. attacking the native binary ===\n");
    {
        Memory mem;
        loadFatBinary(bin, mem);
        std::optional<ChainPlan> plan = planChain(bin, mem);
        if (!plan) {
            std::printf("  attacker failed to build a chain\n");
            return 0;
        }
        std::printf("  syscall-site gadget at 0x%x gives full "
                    "register control\n",
                    plan->gadget);

        GuestOs os;
        Interpreter interp(IsaKind::Cisc, mem, os);
        initMachineState(interp.state, bin, IsaKind::Cisc);
        injectPayload(*plan, mem, interp.state);
        // The "vulnerable return": jump to the gadget.
        interp.state.pc = plan->gadget;
        RunResult r = interp.run(10'000);
        if (os.execveFired()) {
            std::printf("  EXECVE fired with args %#x %#x %#x — "
                        "shell spawned, attack SUCCEEDS\n",
                        os.execveArgs()[0], os.execveArgs()[1],
                        os.execveArgs()[2]);
        } else {
            std::printf("  attack failed (%s)\n",
                        stopReasonName(r.reason));
        }
    }

    std::printf("=== 2. the same payload against a PSR VM ===\n");
    {
        Memory mem;
        loadFatBinary(bin, mem);
        std::optional<ChainPlan> plan = planChain(bin, mem);
        GuestOs os;
        PsrConfig cfg;
        PsrVm vm(bin, IsaKind::Cisc, mem, os, cfg);
        vm.reset();
        (void)vm.run(200'000); // let the server reach steady state
        injectPayload(*plan, mem, vm.state);
        vm.state.pc = plan->gadget;
        VmRunResult r = vm.run(10'000);
        if (os.execveFired() &&
            os.execveArgs()[0] == 0xdead0001) {
            std::printf("  attack SUCCEEDED?! (should not happen)\n");
        } else {
            std::printf("  attack DEFEATED: stop=%s, execve %s, "
                        "security events=%llu\n",
                        vmStopName(r.reason),
                        os.execveFired()
                            ? "fired with garbage args"
                            : "never reached",
                        static_cast<unsigned long long>(
                            vm.stats.securityEvents));
        }
    }

    std::printf("=== 3. the same payload against HIPStR ===\n");
    {
        Memory mem;
        loadFatBinary(bin, mem);
        std::optional<ChainPlan> plan = planChain(bin, mem);
        GuestOs os;
        HipstrConfig cfg;
        cfg.diversificationProbability = 1.0;
        HipstrRuntime runtime(bin, mem, os, cfg);
        runtime.reset();
        (void)runtime.run(200'000);
        PsrVm &vm = runtime.vm(runtime.currentIsa());
        injectPayload(*plan, mem, vm.state);
        vm.state.pc = plan->gadget;
        runtime.rearm(); // the hijacked guest is resumed on purpose
        uint64_t events_before = vm.stats.securityEvents;
        HipstrRunSummary s = runtime.run(10'000);
        std::printf("  attack DEFEATED: stop=%s, +%llu security "
                    "events, %u migration attempts\n",
                    vmStopName(s.reason),
                    static_cast<unsigned long long>(
                        runtime.vm(IsaKind::Cisc)
                            .stats.securityEvents -
                        events_before),
                    s.migrations + s.migrationsDenied);
    }

    return 0;
}
