/**
 * @file
 * Entropy explorer: inspects what PSR actually does to a binary.
 * For a chosen workload it prints, per function, the randomized
 * relocation map (register permutation, memory-relocated registers,
 * a sample of the stack-slot recoloring, argument/return registers)
 * across two independent randomizations, then disassembles one
 * function's native code next to its two PSR translations.
 *
 *   ./examples/entropy_explorer [workload]
 */

#include <cstdio>
#include <string>

#include "binary/loader.hh"
#include "compiler/compile.hh"
#include "core/relocation.hh"
#include "core/translator.hh"
#include "isa/codec.hh"
#include "workloads/workloads.hh"

using namespace hipstr;

static void
printMap(const FatBinary &bin, const RelocationMap &map,
         const FuncInfo &fi)
{
    const IsaDescriptor &desc = isaDescriptor(map.isa);
    std::printf("  frame %u -> %u bytes (+%u randomization)\n",
                fi.frameSize, map.newFrameSize, map.extraSpace);
    std::printf("  registers: ");
    for (Reg r : desc.allocatable) {
        Reg to = map.mapReg(r);
        if (map.regToSlot[to] != kNotInMemory) {
            std::printf("%s->[sp+0x%x] ", desc.regName(r).c_str(),
                        static_cast<unsigned>(map.regToSlot[to]));
        } else if (to != r) {
            std::printf("%s->%s ", desc.regName(r).c_str(),
                        desc.regName(to).c_str());
        }
    }
    std::printf("\n  return address slot: 0x%x -> 0x%x\n", fi.raSlot,
                map.mapSlot(fi.raSlot));
    std::printf("  args in: ");
    for (unsigned i = 0; i < 4; ++i)
        std::printf("%s ", desc.regName(map.argRegs[i]).c_str());
    std::printf(" ret in: %s\n", desc.regName(map.retReg).c_str());
    std::printf("  %u randomizable params, %.1f bits of entropy\n",
                map.randomizableParams, map.entropyBits);
    (void)bin;
}

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "mcf";
    FatBinary bin = compileModule(buildWorkload(name));
    Memory mem;
    loadFatBinary(bin, mem);

    PsrConfig cfg_a;
    cfg_a.seed = 1001;
    PsrConfig cfg_b;
    cfg_b.seed = 2002;
    Randomizer rand_a(bin, IsaKind::Cisc, cfg_a);
    Randomizer rand_b(bin, IsaKind::Cisc, cfg_b);

    for (const FuncInfo &fi : bin.funcsFor(IsaKind::Cisc)) {
        std::printf("\nfunction %s (entry 0x%x, %u bytes):\n",
                    fi.name.c_str(), fi.entry, fi.codeSize);
        std::printf(" randomization A:\n");
        printMap(bin, rand_a.mapFor(fi.funcId), fi);
        std::printf(" randomization B:\n");
        printMap(bin, rand_b.mapFor(fi.funcId), fi);
    }

    // Disassemble the first function natively and under both maps.
    const FuncInfo &fi = bin.funcsFor(IsaKind::Cisc).front();
    std::printf("\n=== %s: native code ===\n", fi.name.c_str());
    {
        Addr pc = fi.entry;
        const MachBlockInfo &block0 = fi.blocks.front();
        while (pc < block0.end) {
            MachInst mi;
            if (!decodeInst(IsaKind::Cisc, mem, pc, mi))
                break;
            std::printf("  %06x: %s\n", pc,
                        instToString(mi, IsaKind::Cisc).c_str());
            pc += mi.size;
        }
    }
    for (auto *rand : { &rand_a, &rand_b }) {
        PsrTranslator translator(bin, IsaKind::Cisc, *rand, mem);
        TranslateError err;
        auto unit = translator.translate(fi.entry, err);
        if (!unit)
            continue;
        std::printf("=== %s under randomization %s (%zu bytes in "
                    "cache) ===\n",
                    fi.name.c_str(), rand == &rand_a ? "A" : "B",
                    unit->bytes.size());
        for (const TInst &ti : unit->insts) {
            std::printf("  %s %s\n", ti.guestStart ? "*" : " ",
                        instToString(ti.mi, IsaKind::Cisc).c_str());
        }
    }
    std::printf("(* marks guest-instruction boundaries; every "
                "difference between A and B is entropy the attacker "
                "must guess)\n");
    return 0;
}
