/**
 * @file
 * Quickstart: build a tiny program with the IR builder, compile it to
 * a fat binary, run it natively on both ISAs, then run it under a PSR
 * virtual machine and under the full HIPStR runtime — the complete
 * pipeline in ~100 lines.
 *
 *   ./examples/quickstart
 */

#include <cstdio>

#include "binary/loader.hh"
#include "compiler/compile.hh"
#include "hipstr/runtime.hh"
#include "ir/builder.hh"
#include "isa/interp.hh"
#include "vm/psr_vm.hh"

using namespace hipstr;

/** sum of squares 1..n, written through the IR builder. */
static IrModule
makeProgram()
{
    IrModule m;
    m.name = "quickstart";
    IrBuilder b(m);

    uint32_t square = b.declareFunction("square", 1);
    uint32_t main_fn = b.declareFunction("main", 0);
    b.setEntry(main_fn);

    b.beginFunction(square);
    b.ret(b.mul(b.param(0), b.param(0)));
    b.endFunction();

    b.beginFunction(main_fn);
    {
        ValueId acc = b.constI(0);
        ValueId i = b.constI(1);
        uint32_t hdr = b.newBlock(), body = b.newBlock(),
                 done = b.newBlock();
        b.br(hdr);
        b.setBlock(hdr);
        b.condBrI(Cond::Le, i, 10, body, done);
        b.setBlock(body);
        ValueId sq = b.call(square, { i });
        b.assignBinop(IrOp::Add, acc, acc, sq);
        b.assignBinopI(IrOp::Add, i, i, 1);
        b.br(hdr);
        b.setBlock(done);
        b.emitWriteWord(acc);
        b.ret(acc);
    }
    b.endFunction();
    return m;
}

int
main()
{
    // 1. Compile once, for both ISAs, into a symmetrical fat binary.
    IrModule program = makeProgram();
    FatBinary bin = compileModule(program);
    std::printf("fat binary '%s': %u bytes of %s code, %u bytes of "
                "%s code, %zu call sites\n",
                bin.name.c_str(), bin.codeSizeOf(IsaKind::Risc),
                isaName(IsaKind::Risc), bin.codeSizeOf(IsaKind::Cisc),
                isaName(IsaKind::Cisc), bin.callSites.size());

    // 2. Native execution on each core.
    for (IsaKind isa : kAllIsas) {
        Memory mem;
        loadFatBinary(bin, mem);
        GuestOs os;
        Interpreter interp(isa, mem, os);
        initMachineState(interp.state, bin, isa);
        RunResult r = interp.run(1'000'000);
        std::printf("native %-4s: %s, exit=%u, %llu insts\n",
                    isaName(isa), stopReasonName(r.reason),
                    os.exitCode(),
                    static_cast<unsigned long long>(
                        r.instsExecuted));
    }

    // 3. The same program under a PSR virtual machine: randomized
    //    calling conventions, register relocation, stack coloring —
    //    same answer.
    {
        Memory mem;
        loadFatBinary(bin, mem);
        GuestOs os;
        PsrConfig cfg; // full PSR at O3
        PsrVm vm(bin, IsaKind::Cisc, mem, os, cfg);
        vm.reset();
        VmRunResult r = vm.run(1'000'000);
        std::printf("PSR VM    : %s, exit=%u, expansion %.2fx, "
                    "%llu translations\n",
                    vmStopName(r.reason), os.exitCode(),
                    double(vm.stats.hostInsts) /
                        double(vm.stats.guestInsts),
                    static_cast<unsigned long long>(
                        vm.stats.translations));
    }

    // 4. The full defense: two PSR VMs and cross-ISA migration.
    {
        Memory mem;
        loadFatBinary(bin, mem);
        GuestOs os;
        HipstrConfig cfg;
        cfg.phaseIntervalInsts = 40; // force frequent migrations
        HipstrRuntime runtime(bin, mem, os, cfg);
        runtime.reset();
        HipstrRunSummary s = runtime.run(1'000'000);
        std::printf("HIPStR    : %s, exit=%u, %u migrations "
                    "(%llu insts on risc, %llu on cisc)\n",
                    vmStopName(s.reason), os.exitCode(),
                    s.migrations,
                    static_cast<unsigned long long>(
                        s.guestInstsPerIsa[0]),
                    static_cast<unsigned long long>(
                        s.guestInstsPerIsa[1]));
    }

    std::printf("expected result: sum of squares 1..10 = 385\n");
    return 0;
}
