#!/usr/bin/env python3
"""Diff two trees of BENCH_<name>_host.json files.

The deterministic BENCH_<name>.json files are required to stay
byte-identical across performance work (bench_determinism_test and the
JOBS-invariance contract enforce that), so the *only* place a perf
change is allowed to show up is the host-variable companion files.
This tool makes that delta visible per PR:

  python3 scripts/compare_bench.py BEFORE_DIR AFTER_DIR [--only RE]

where each directory holds the BENCH_*_host.json files of one bench
run (typically build/bench saved before and after a change; see
EXPERIMENTS.md "Comparing two bench runs"). For every harness present
in both trees it prints each shared numeric host metric with its
relative delta, e.g.:

  fig9_performance
    telemetry_off_insts_per_sec   5.774e+07 -> 1.046e+08   +81.2%
    figure_wall_seconds               12.41 ->      7.03   -43.3%

Positive deltas mean the metric grew; whether that is an improvement
depends on the metric (rates: up is better; wall seconds: down is
better). Harnesses present in only one tree are listed, not failed —
a PR may legitimately add or remove a harness.

--only RE restricts the report to metrics whose name matches the
regular expression RE (e.g. --only insts_per_sec).

--min-speedup X turns the report into a gate: every compared metric
(so typically combined with --only to name the rate of interest) must
satisfy after/before >= X or the run exits 2. At least one metric must
match — a filter that selects nothing fails rather than vacuously
passing. Example, the fig9 steady-state acceptance check:

  python3 scripts/compare_bench.py BEFORE AFTER \
      --only telemetry_off_insts_per_sec --min-speedup 1.7

Exit codes: 0 ok, 1 malformed input, 2 threshold not met, 77 when
either tree contains no BENCH_*_host.json (ctest SKIP_RETURN_CODE, so
a checkout that never ran the benches skips instead of failing).
`--selftest FIXTURE_DIR` runs the comparison against the checked-in
fixture trees and verifies the computed deltas; the
bench_compare_selftest ctest invokes it.
"""

import json
import math
import re
import sys
from pathlib import Path

# Host-file keys that are identity, not measurement.
NON_METRIC_KEYS = {"bench", "jobs"}


def is_finite_number(v):
    return (
        isinstance(v, (int, float))
        and not isinstance(v, bool)
        and math.isfinite(v)
    )


def load_host_tree(root):
    """Map harness name -> {metric: value} for one directory.

    Raises ValueError on malformed files; returns {} when the tree has
    no host files at all (the skip case).
    """
    tree = {}
    for path in sorted(Path(root).glob("BENCH_*_host.json")):
        name = path.stem[len("BENCH_"):-len("_host")]
        try:
            doc = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError) as e:
            raise ValueError(f"{path.name}: unreadable: {e}")
        if not isinstance(doc, dict):
            raise ValueError(f"{path.name}: not a JSON object")
        metrics = {}
        for key, value in doc.items():
            if key in NON_METRIC_KEYS:
                continue
            if not is_finite_number(value):
                raise ValueError(
                    f"{path.name}: host metric {key!r} is not a "
                    f"finite number"
                )
            metrics[key] = float(value)
        tree[name] = metrics
    return tree


def compare_trees(before, after, only=None):
    """Yield (harness, metric, before, after, pct_delta) rows for every
    shared harness/metric pair. pct_delta is None when before == 0."""
    rows = []
    pattern = re.compile(only) if only else None
    for name in sorted(set(before) & set(after)):
        for metric in sorted(set(before[name]) & set(after[name])):
            if pattern and not pattern.search(metric):
                continue
            b = before[name][metric]
            a = after[name][metric]
            pct = (a - b) / b * 100.0 if b != 0 else None
            rows.append((name, metric, b, a, pct))
    return rows


def format_rows(rows):
    lines = []
    current = None
    for name, metric, b, a, pct in rows:
        if name != current:
            lines.append(name)
            current = name
        delta = "    n/a" if pct is None else f"{pct:+7.1f}%"
        lines.append(
            f"  {metric:<32} {b:>12.6g} -> {a:>12.6g}  {delta}"
        )
    return lines


def check_min_speedup(rows, min_speedup):
    """Gate every compared row on after/before >= min_speedup.

    Returns the exit code: 0 when all rows pass, 2 when any row falls
    short (or cannot be evaluated against a zero baseline), and 2 when
    no row matched at all — a filter that selects nothing must not
    pass vacuously.
    """
    if not rows:
        print(f"FAIL --min-speedup {min_speedup:g}: no shared metric "
              f"matched (check --only)")
        return 2
    failed = False
    for name, metric, b, a, _ in rows:
        if b == 0:
            print(f"FAIL {name}/{metric}: zero baseline, speedup "
                  f"undefined")
            failed = True
            continue
        speedup = a / b
        verdict = "ok" if speedup >= min_speedup else "FAIL"
        print(f"{verdict:<4} {name}/{metric}: speedup {speedup:.3f}x "
              f"(floor {min_speedup:g}x)")
        if speedup < min_speedup:
            failed = True
    return 2 if failed else 0


def run_compare(before_dir, after_dir, only=None, min_speedup=None):
    try:
        before = load_host_tree(before_dir)
        after = load_host_tree(after_dir)
    except ValueError as e:
        print(f"FAIL {e}")
        return 1
    if not before or not after:
        which = before_dir if not before else after_dir
        print(f"compare_bench: no BENCH_*_host.json under {which} "
              f"(run the bench_smoke tier first); skipping")
        return 77

    rows = compare_trees(before, after, only)
    for line in format_rows(rows):
        print(line)
    for name in sorted(set(before) - set(after)):
        print(f"{name}: only in {before_dir}")
    for name in sorted(set(after) - set(before)):
        print(f"{name}: only in {after_dir}")
    shared = len({r[0] for r in rows})
    print(f"compare_bench: {shared} harness(es), {len(rows)} "
          f"metric pair(s) compared")
    if min_speedup is not None:
        return check_min_speedup(rows, min_speedup)
    return 0


def selftest(fixture_dir):
    """Verify the comparison math and the skip path against the
    checked-in fixtures (tests/fixtures/bench_compare)."""
    fixtures = Path(fixture_dir)
    before_dir = fixtures / "before"
    after_dir = fixtures / "after"
    failures = []

    def check(cond, msg):
        if not cond:
            failures.append(msg)

    before = load_host_tree(before_dir)
    after = load_host_tree(after_dir)
    check("fig9_performance" in before,
          "fixture before/ lacks fig9_performance")
    check("fig9_performance" in after,
          "fixture after/ lacks fig9_performance")

    rows = compare_trees(before, after)
    by_key = {(r[0], r[1]): r for r in rows}

    # Known fixture deltas: 50M -> 60M insts/s is exactly +20%, and
    # 10 -> 8 wall seconds is exactly -20%.
    rate = by_key.get(("fig9_performance",
                       "telemetry_off_insts_per_sec"))
    check(rate is not None, "insts_per_sec pair missing")
    if rate:
        check(abs(rate[4] - 20.0) < 1e-9,
              f"insts_per_sec delta {rate[4]!r}, want +20.0")
    wall = by_key.get(("fig9_performance", "figure_wall_seconds"))
    check(wall is not None, "figure_wall_seconds pair missing")
    if wall:
        check(abs(wall[4] + 20.0) < 1e-9,
              f"wall delta {wall[4]!r}, want -20.0")

    # A zero baseline must report n/a, not divide.
    zero = by_key.get(("fig9_performance", "zero_baseline_metric"))
    check(zero is not None and zero[4] is None,
          "zero-baseline metric should compare with pct=None")

    # server_throughput exists only in after/: shared rows must not
    # include it, and the full CLI run must still succeed.
    check(all(r[0] != "server_throughput" for r in rows),
          "one-sided harness leaked into shared rows")

    # --only filtering.
    only = compare_trees(before, after, only="insts_per_sec")
    check(all("insts_per_sec" in r[1] for r in only) and only,
          "--only filter failed")

    # --min-speedup gating: the fixture rate pair is exactly 1.2x, so
    # a 1.1x floor passes, a 1.5x floor fails with the threshold exit
    # code, an empty selection fails rather than passing vacuously,
    # and a zero baseline is unevaluable (also exit 2).
    check(check_min_speedup(only, 1.1) == 0,
          "--min-speedup 1.1 should pass on the 1.2x fixture pair")
    check(check_min_speedup(only, 1.5) == 2,
          "--min-speedup 1.5 should fail on the 1.2x fixture pair")
    check(check_min_speedup([], 1.1) == 2,
          "--min-speedup with no matched metric should fail")

    # The trace-JIT acceptance pair: fig9_jit records the fig9
    # steady-state rate before and after direct host-code emission at
    # exactly 2.6x. The PR acceptance floor of 1.6x must pass on it,
    # and a floor above the recorded speedup must still fail — the
    # fixture keeps the exact gate command from EXPERIMENTS.md
    # exercised without rerunning the benches.
    jit_rows = [r for r in rows
                if r[0] == "fig9_jit"
                and r[1] == "telemetry_off_insts_per_sec"]
    check(len(jit_rows) == 1, "fig9_jit fixture pair missing")
    check(check_min_speedup(jit_rows, 1.6) == 0,
          "--min-speedup 1.6 should pass on the 2.6x fig9_jit pair")
    check(check_min_speedup(jit_rows, 3.0) == 2,
          "--min-speedup 3.0 should fail on the 2.6x fig9_jit pair")
    zero_rows = compare_trees(before, after,
                              only="zero_baseline_metric")
    check(check_min_speedup(zero_rows, 1.1) == 2,
          "--min-speedup on a zero baseline should fail")
    check(run_compare(before_dir, after_dir, only="insts_per_sec",
                      min_speedup=1.1) == 0,
          "CLI --min-speedup pass case did not exit 0")
    check(run_compare(before_dir, after_dir, only="insts_per_sec",
                      min_speedup=9.9) == 2,
          "CLI --min-speedup fail case did not exit 2")

    # The skip path: an empty directory (fixture root itself holds no
    # host files) must return the ctest skip code.
    check(run_compare(fixtures, after_dir) == 77,
          "empty tree did not return skip code 77")
    check(run_compare(before_dir, after_dir) == 0,
          "fixture comparison did not exit 0")

    if failures:
        for f in failures:
            print(f"SELFTEST FAIL {f}")
        return 1
    print("compare_bench selftest: ok")
    return 0


def main(argv):
    args = [a for a in argv[1:] if a != "--"]
    only = None
    min_speedup = None
    if "--only" in args:
        i = args.index("--only")
        if i + 1 >= len(args):
            print("usage: compare_bench.py BEFORE AFTER [--only RE]")
            return 1
        only = args[i + 1]
        del args[i:i + 2]
    if "--min-speedup" in args:
        i = args.index("--min-speedup")
        if i + 1 >= len(args):
            print("usage: compare_bench.py BEFORE AFTER "
                  "--min-speedup X")
            return 1
        try:
            min_speedup = float(args[i + 1])
        except ValueError:
            print(f"FAIL --min-speedup {args[i + 1]!r} is not a "
                  f"number")
            return 1
        if not math.isfinite(min_speedup) or min_speedup <= 0:
            print(f"FAIL --min-speedup must be a positive finite "
                  f"number, got {args[i + 1]!r}")
            return 1
        del args[i:i + 2]
    if args and args[0] == "--selftest":
        if len(args) != 2:
            print("usage: compare_bench.py --selftest FIXTURE_DIR")
            return 1
        return selftest(args[1])
    if len(args) != 2:
        print("usage: compare_bench.py BEFORE_DIR AFTER_DIR "
              "[--only RE] [--min-speedup X] | "
              "--selftest FIXTURE_DIR")
        return 1
    return run_compare(args[0], args[1], only, min_speedup)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
