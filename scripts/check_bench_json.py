#!/usr/bin/env python3
"""Validate every BENCH_*.json a benchmark run produced.

Each harness writes a pair of files through bench/bench_util.cc:

  BENCH_<name>.json       deterministic: {"bench", "smoke", "metrics"}
                          where "metrics" is the registry export --
                          byte-identical for every HIPSTR_JOBS value.
  BENCH_<name>_host.json  host-variable: {"bench", "jobs",
                          "figure_wall_seconds"} plus free-form numeric
                          host metrics (wall-clock rates etc.).

This checker is the CI tripwire for the telemetry exporter's contract:
metric names are well-formed and sorted, values are finite numbers or
well-formed histogram objects, and the two files of a pair agree on
the bench name. Run from a directory containing the files (ctest runs
it in build/bench after the bench_smoke tier):

  python3 scripts/check_bench_json.py [dir]

Exit codes: 0 ok, 1 validation failure, 77 no files found (ctest
SKIP_RETURN_CODE, so a tree that never ran the benches skips).
"""

import json
import math
import re
import sys
from pathlib import Path

METRIC_NAME_RE = re.compile(
    r"^[a-z0-9_]+(\.[a-z0-9_]+)*"  # dotted hierarchical name
    r"(\{[a-z0-9_]+=[^,{}=]+(,[a-z0-9_]+=[^,{}=]+)*\})?$"  # labels
)
HISTOGRAM_KEYS = {"type", "bin_width", "samples", "mean", "bins"}

errors = []


def fail(path, msg):
    errors.append(f"{path.name}: {msg}")


def is_finite_number(v):
    return (
        isinstance(v, (int, float))
        and not isinstance(v, bool)
        and math.isfinite(v)
    )


def check_histogram(path, name, h):
    if set(h.keys()) != HISTOGRAM_KEYS:
        fail(path, f"{name}: histogram keys {sorted(h.keys())}, "
                   f"want {sorted(HISTOGRAM_KEYS)}")
        return
    if h["type"] != "histogram":
        fail(path, f"{name}: type {h['type']!r}")
    if not isinstance(h["bin_width"], int) or h["bin_width"] <= 0:
        fail(path, f"{name}: bad bin_width {h['bin_width']!r}")
    if not isinstance(h["samples"], int) or h["samples"] < 0:
        fail(path, f"{name}: bad samples {h['samples']!r}")
    if not is_finite_number(h["mean"]):
        fail(path, f"{name}: non-finite mean")
    bins = h["bins"]
    if not isinstance(bins, list) or not bins or any(
        not isinstance(b, int) or b < 0 for b in bins
    ):
        fail(path, f"{name}: bad bins {bins!r}")
    elif sum(bins) != h["samples"]:
        fail(path, f"{name}: bins sum {sum(bins)} != "
                   f"samples {h['samples']}")


def check_metrics(path, metrics):
    if not isinstance(metrics, dict) or not metrics:
        fail(path, "metrics must be a non-empty object")
        return
    names = list(metrics.keys())
    if names != sorted(names):
        fail(path, "metric names are not sorted")
    for name, value in metrics.items():
        if not METRIC_NAME_RE.match(name):
            fail(path, f"malformed metric name {name!r}")
        if isinstance(value, dict):
            check_histogram(path, name, value)
        elif not is_finite_number(value):
            fail(path, f"{name}: non-finite or non-numeric value "
                       f"{value!r}")


def check_fault_tolerance(path, metrics):
    """BENCH_fault_tolerance.json carries an availability sweep: at
    least 3 distinct "fault.r<permille>." groups, each with an
    availability gauge in [0, 1] and a mean-rounds-to-recover
    gauge."""
    groups = set()
    for name in metrics:
        m = re.match(r"^fault\.r(\d+)\.", name)
        if m:
            groups.add(int(m.group(1)))
    if len(groups) < 3:
        fail(path, f"fault sweep has {len(groups)} rate group(s), "
                   f"want >= 3")
    for rate in sorted(groups):
        prefix = f"fault.r{rate}."
        avail = metrics.get(prefix + "availability")
        if avail is None:
            fail(path, f"{prefix}availability missing")
        elif not is_finite_number(avail) or not 0.0 <= avail <= 1.0:
            fail(path, f"{prefix}availability {avail!r} not in "
                       f"[0, 1]")
        recover = metrics.get(prefix + "mean_rounds_to_recover")
        if recover is None:
            fail(path, f"{prefix}mean_rounds_to_recover missing")
        elif not is_finite_number(recover) or recover < 0:
            fail(path, f"{prefix}mean_rounds_to_recover "
                       f"{recover!r} invalid")


def check_record_replay(path, metrics):
    """BENCH_record_replay.json carries the record/replay fidelity
    claims: recording perturbed nothing, the replay matched the
    journal bit-exactly (with at least one verified sync point), a
    non-empty journal was produced, and the windowed replay restored
    a mid-run checkpoint."""
    for name in ("record.zero_perturbation", "replay.match"):
        v = metrics.get(name)
        if v != 1:
            fail(path, f"{name} is {v!r}, want 1")
    for name in ("record.journal_bytes", "record.checkpoints",
                 "replay.sync_checks", "window.start_round"):
        v = metrics.get(name)
        if v is None:
            fail(path, f"{name} missing")
        elif not is_finite_number(v) or v <= 0:
            fail(path, f"{name} {v!r} invalid, want > 0")


def check_fleet_serving(path, metrics):
    """BENCH_fleet_serving.json carries the fleet's merged report:
    availability gauges in [0, 1], the full latency percentile
    ladder in non-decreasing order, request conservation
    (served + shed + abandoned == offered), and the shard-count
    invariance witness."""
    for prefix in ("fleet.", "fleet.slo."):
        avail = metrics.get(prefix + "availability")
        if avail is None:
            fail(path, f"{prefix}availability missing")
        elif not is_finite_number(avail) or not 0.0 <= avail <= 1.0:
            fail(path, f"{prefix}availability {avail!r} not in "
                       f"[0, 1]")
    ladder = []
    for q in ("p50", "p99", "p999", "max"):
        name = f"fleet.latency_{q}_rounds"
        v = metrics.get(name)
        if v is None or not is_finite_number(v) or v < 0:
            fail(path, f"{name} missing or invalid: {v!r}")
            return
        ladder.append(v)
    if ladder != sorted(ladder):
        fail(path, f"latency percentiles not non-decreasing: "
                   f"{ladder}")
    counts = {}
    for part in ("offered", "served", "shed", "abandoned"):
        name = f"fleet.requests_{part}"
        v = metrics.get(name)
        if v is None or not isinstance(v, int) or v < 0:
            fail(path, f"{name} missing or invalid: {v!r}")
            return
        counts[part] = v
    if counts["served"] + counts["shed"] + counts["abandoned"] != \
            counts["offered"]:
        fail(path, f"request conservation violated: {counts}")
    if metrics.get("fleet.kinv.match") != 1:
        fail(path, "fleet.kinv.match != 1 (outcome set depends on "
                   "shard count)")


def check_campaign_pareto(path, metrics):
    """BENCH_campaign_pareto.json carries the adaptive-adversary
    sweep: every sweep point has a positive time-to-compromise and an
    availability in [0, 1]; the published frontier is monotone (rising
    ttc never buys better p99 — otherwise a dominated point leaked
    in); and the headline claims hold (adaptive strictly beats
    one-shot at equal probe budget, the hostile replay matched)."""
    points = set()
    for name in metrics:
        m = re.match(r"^pareto\.p(\d+)\.", name)
        if m:
            points.add(int(m.group(1)))
    if len(points) < 4:
        fail(path, f"pareto sweep has {len(points)} point(s), "
                   f"want >= 4")
    for i in sorted(points):
        prefix = f"pareto.p{i}."
        ttc = metrics.get(prefix + "ttc_rounds")
        if not is_finite_number(ttc) or ttc <= 0:
            fail(path, f"{prefix}ttc_rounds {ttc!r} invalid, "
                       f"want > 0")
        avail = metrics.get(prefix + "availability")
        if avail is None:
            fail(path, f"{prefix}availability missing")
        elif not is_finite_number(avail) or not 0.0 <= avail <= 1.0:
            fail(path, f"{prefix}availability {avail!r} not in "
                       f"[0, 1]")
    size = metrics.get("pareto.frontier.size")
    if not isinstance(size, int) or size < 1:
        fail(path, f"pareto.frontier.size {size!r} invalid")
        size = 0
    frontier = []
    for j in range(size):
        prefix = f"pareto.frontier.f{j}."
        ttc = metrics.get(prefix + "ttc_rounds")
        p99 = metrics.get(prefix + "latency_p99_rounds")
        if not is_finite_number(ttc) or not is_finite_number(p99):
            fail(path, f"{prefix}: missing ttc/p99 pair")
            return
        frontier.append((ttc, p99))
    for (t0, l0), (t1, l1) in zip(frontier, frontier[1:]):
        if t1 <= t0:
            fail(path, f"frontier ttc not strictly increasing: "
                       f"{t0} -> {t1}")
        if l1 < l0:
            fail(path, f"frontier p99 improves as ttc rises "
                       f"({l0} -> {l1}): a dominated point leaked in")
    one = metrics.get("pareto.duel.oneshot_ttc_probes")
    ada = metrics.get("pareto.duel.adaptive_ttc_probes")
    if not is_finite_number(one) or not is_finite_number(ada):
        fail(path, "duel ttc metrics missing")
    elif not ada < one:
        fail(path, f"adaptive ttc {ada} not strictly below "
                   f"one-shot {one}")
    for name in ("pareto.duel.adaptive_beats_oneshot",
                 "pareto.replay_match"):
        v = metrics.get(name)
        if v != 1:
            fail(path, f"{name} is {v!r}, want 1")


FIG9_JIT_KEYS = (
    "jit.compiledTraces", "jit.codeBytes", "jit.executions",
    "jit.sideExits", "jit.bailouts", "jit.invalidated",
)


def check_fig9_host(path, doc):
    """BENCH_fig9_performance_host.json carries the trace-JIT
    observability counters next to the wall-clock rates. All six are
    required (an HIPSTR_JIT=0 run publishes zeros); when the JIT did
    run, the counters must be internally consistent: every execution
    comes from a compiled trace, compiled traces occupy code bytes,
    and at most one side exit fires per entry."""
    for key in FIG9_JIT_KEYS:
        v = doc.get(key)
        if v is None:
            fail(path, f"missing jit counter {key!r}")
            return
        if not is_finite_number(v) or v < 0 or v != int(v):
            fail(path, f"{key} {v!r} is not a non-negative integer")
            return
    if doc["jit.executions"] > 0 and doc["jit.compiledTraces"] < 1:
        fail(path, "jit.executions > 0 without a compiled trace")
    if (doc["jit.compiledTraces"] > 0) != (doc["jit.codeBytes"] > 0):
        fail(path, "jit.compiledTraces and jit.codeBytes disagree "
                   "about whether anything was compiled")
    if doc["jit.sideExits"] > doc["jit.executions"]:
        fail(path, f"jit.sideExits {doc['jit.sideExits']} exceeds "
                   f"jit.executions {doc['jit.executions']} (at most "
                   f"one side exit per entry)")


def check_deterministic(path, bench_name):
    doc = json.loads(path.read_text())
    if set(doc.keys()) != {"bench", "smoke", "metrics"}:
        fail(path, f"top-level keys {sorted(doc.keys())}, want "
                   f"['bench', 'metrics', 'smoke']")
        return
    if doc["bench"] != bench_name:
        fail(path, f"bench {doc['bench']!r} != file name "
                   f"{bench_name!r}")
    if not isinstance(doc["smoke"], bool):
        fail(path, f"smoke must be a bool, got {doc['smoke']!r}")
    check_metrics(path, doc["metrics"])
    if bench_name == "fault_tolerance" and \
            isinstance(doc["metrics"], dict):
        check_fault_tolerance(path, doc["metrics"])
    if bench_name == "record_replay" and \
            isinstance(doc["metrics"], dict):
        check_record_replay(path, doc["metrics"])
    if bench_name == "fleet_serving" and \
            isinstance(doc["metrics"], dict):
        check_fleet_serving(path, doc["metrics"])
    if bench_name == "campaign_pareto" and \
            isinstance(doc["metrics"], dict):
        check_campaign_pareto(path, doc["metrics"])


def check_host(path, bench_name):
    doc = json.loads(path.read_text())
    for key in ("bench", "jobs", "figure_wall_seconds"):
        if key not in doc:
            fail(path, f"missing key {key!r}")
            return
    if doc["bench"] != bench_name:
        fail(path, f"bench {doc['bench']!r} != file name "
                   f"{bench_name!r}")
    if not isinstance(doc["jobs"], int) or doc["jobs"] < 0:
        fail(path, f"bad jobs {doc['jobs']!r}")
    if not is_finite_number(doc["figure_wall_seconds"]) or \
            doc["figure_wall_seconds"] <= 0:
        fail(path, f"bad figure_wall_seconds "
                   f"{doc['figure_wall_seconds']!r}")
    for key, value in doc.items():
        if key != "bench" and not is_finite_number(value):
            fail(path, f"host metric {key!r} is not a finite number")
    if bench_name == "fig9_performance":
        check_fig9_host(path, doc)


def main(argv):
    root = Path(argv[1]) if len(argv) > 1 else Path(".")
    files = sorted(root.glob("BENCH_*.json"))
    if not files:
        print(f"check_bench_json: no BENCH_*.json under {root} "
              f"(run the bench_smoke tier first); skipping")
        return 77

    det, host = {}, {}
    for path in files:
        stem = path.stem[len("BENCH_"):]
        try:
            if stem.endswith("_host"):
                name = stem[: -len("_host")]
                host[name] = path
                check_host(path, name)
            else:
                det[stem] = path
                check_deterministic(path, stem)
        except (json.JSONDecodeError, OSError) as e:
            fail(path, f"unreadable: {e}")

    for name in sorted(set(det) - set(host)):
        fail(det[name], "has no _host.json companion")
    for name in sorted(set(host) - set(det)):
        fail(host[name], "has no deterministic companion")

    if errors:
        for e in errors:
            print(f"FAIL {e}")
        print(f"check_bench_json: {len(errors)} error(s) across "
              f"{len(files)} file(s)")
        return 1
    print(f"check_bench_json: {len(files)} file(s) ok "
          f"({len(det)} bench pair(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
