#!/usr/bin/env python3
"""Byte-equality gate for the trace JIT's determinism contract.

Runs a bench harness twice in smoke mode — HIPSTR_JIT=0 and
HIPSTR_JIT=1 — in separate scratch directories and requires the
deterministic BENCH_<name>.json files to be byte-identical. The JIT
folds the same translate-time counter deltas at the same segment
boundaries as the threaded trace interpreter, so nothing in the
deterministic summary may move when the engine switches.

Usage: check_jit_equivalence.py <bench-binary> [<bench-binary>...]

Exit codes: 0 ok, 1 divergence or harness failure.
"""

import os
import subprocess
import sys
import tempfile
from pathlib import Path


def run_bench(binary, jit, scratch):
    env = dict(os.environ)
    env["HIPSTR_BENCH_SMOKE"] = "1"
    env["HIPSTR_JIT"] = jit
    r = subprocess.run(
        [binary],
        cwd=scratch,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    if r.returncode != 0:
        print(f"FAIL {Path(binary).name} (HIPSTR_JIT={jit}): "
              f"exit {r.returncode}")
        sys.stderr.buffer.write(r.stderr[-2000:])
        return None
    files = sorted(Path(scratch).glob("BENCH_*.json"))
    det = [f for f in files if not f.stem.endswith("_host")]
    if not det:
        print(f"FAIL {Path(binary).name}: produced no deterministic "
              f"BENCH json")
        return None
    return {f.name: f.read_bytes() for f in det}


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    failures = 0
    for binary in argv[1:]:
        with tempfile.TemporaryDirectory() as off_dir, \
                tempfile.TemporaryDirectory() as on_dir:
            off = run_bench(binary, "0", off_dir)
            on = run_bench(binary, "1", on_dir)
        if off is None or on is None:
            failures += 1
            continue
        if set(off) != set(on):
            print(f"FAIL {Path(binary).name}: file sets differ: "
                  f"{sorted(off)} vs {sorted(on)}")
            failures += 1
            continue
        for name in sorted(off):
            if off[name] != on[name]:
                print(f"FAIL {name}: deterministic JSON differs "
                      f"between HIPSTR_JIT=0 and HIPSTR_JIT=1")
                failures += 1
            else:
                print(f"ok {name}: byte-identical across "
                      f"HIPSTR_JIT=0/1 ({len(off[name])} bytes)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
