/**
 * @file
 * Migration-safety classification of machine basic blocks (Figure 6).
 *
 * A block boundary is an equivalence point where cross-ISA state
 * transformation may run. Three tiers:
 *
 *  - Unsafe: function-entry blocks (the frame is mid-construction),
 *    code outside any function, and blocks whose live-in set carries a
 *    complex (non-rebasable) frame pointer.
 *  - Baseline-safe: no stack-derived value is live-in. This mirrors
 *    prior work's equivalence-point discipline — the paper reports
 *    only ~45% of blocks qualify.
 *  - On-demand-safe: baseline-safe, or every stack-derived live-in is
 *    affine in the frame base and can be rebased by sp-delta
 *    (Section 5.2's on-demand extension; the paper reaches 78%).
 */

#ifndef HIPSTR_MIGRATION_SAFETY_HH
#define HIPSTR_MIGRATION_SAFETY_HH

#include "binary/fatbin.hh"

namespace hipstr
{

/** Safety tier of one machine block. */
enum class MigrationSafety
{
    Unsafe,
    BaselineSafe,
    OnDemandSafe ///< safe only with the on-demand machinery
};

/** Classify block @p mbi of function @p fi. */
MigrationSafety classifyBlock(const FuncInfo &fi,
                              const MachBlockInfo &mbi);

/** Aggregate statistics over one ISA's code. */
struct SafetyStats
{
    uint32_t totalBlocks = 0;
    uint32_t baselineSafe = 0;
    uint32_t onDemandSafe = 0; ///< includes baseline-safe blocks

    double
    baselineFraction() const
    {
        return totalBlocks ? double(baselineSafe) / totalBlocks : 0;
    }
    double
    onDemandFraction() const
    {
        return totalBlocks ? double(onDemandSafe) / totalBlocks : 0;
    }
};

/** Classify every block of @p bin on @p isa. */
SafetyStats analyzeMigrationSafety(const FatBinary &bin, IsaKind isa);

/**
 * True if execution may migrate away at guest address @p addr
 * (a block start whose tier is at least @p needed).
 */
bool isMigrationPoint(const FatBinary &bin, IsaKind isa, Addr addr,
                      MigrationSafety needed);

} // namespace hipstr

#endif // HIPSTR_MIGRATION_SAFETY_HH
