#include "transform.hh"

#include <algorithm>
#include <vector>

#include "support/env.hh"
#include "support/logging.hh"

namespace hipstr
{

double
MigrationCostModel::destFrequencyGhz(IsaKind dest)
{
    // Table 1: ARM-like core at 2 GHz, x86-like core at 3.3 GHz.
    return dest == IsaKind::Risc ? 2.0 : 3.3;
}

double
MigrationCostModel::microseconds(const MigrationOutcome &o,
                                 IsaKind dest) const
{
    double cycles = baseCycles + cyclesPerFrame * o.frames +
        cyclesPerValue * o.valuesMoved +
        cyclesPerObjectByte * o.objectBytes +
        cyclesPerRaRewrite * o.raRewrites;
    return cycles / (destFrequencyGhz(dest) * 1000.0);
}

namespace
{

/** One unwound frame. */
struct Frame
{
    uint32_t funcId = 0;
    Addr spA = 0;                      ///< source-side frame base
    Addr spB = 0;                      ///< destination-side frame base
    Addr raA = 0;                      ///< source return address
    const CallSiteInfo *callSite = nullptr; ///< null for outermost
    const MachBlockInfo *blockA = nullptr;  ///< resume/post-call block
};

} // namespace

MigrationOutcome
MigrationEngine::migrate(PsrVm &from, PsrVm &to, Addr guest_pc)
{
    MigrationOutcome out;
    const IsaKind isaA = from.isa();
    const IsaKind isaB = to.isa();
    hipstr_assert(isaA != isaB);

    auto fail = [&](const std::string &why) {
        out.ok = false;
        out.error = why;
        return out;
    };

    // ---- 1. Locate and validate the equivalence point. ----
    const FuncInfo *fiA = _bin.findFuncByAddr(isaA, guest_pc);
    if (fiA == nullptr)
        return fail("target outside any function");
    const MachBlockInfo *top_block = fiA->blockAt(guest_pc);
    if (top_block == nullptr || top_block->start != guest_pc)
        return fail("target is not an equivalence point");
    if (classifyBlock(*fiA, *top_block) == MigrationSafety::Unsafe)
        return fail("target block is not migration-safe");

    Randomizer &randA = from.randomizer();
    Randomizer &randB = to.randomizer();

    // ---- 2. Unwind the source stack. ----
    std::vector<Frame> frames; // frames[0] = innermost (top)
    {
        const FuncInfo *cur = fiA;
        const MachBlockInfo *cur_block = top_block;
        Addr sp = from.state.sp();
        for (unsigned depth = 0; depth < 4096; ++depth) {
            const RelocationMap &mapA = randA.mapFor(cur->funcId);
            Addr ra;
            try {
                ra = _mem.read32(
                    sp + mapA.mapSlot(cur->raSlot));
            } catch (const Memory::Fault &) {
                return fail("stack walk faulted");
            }

            Frame f;
            f.funcId = cur->funcId;
            f.spA = sp;
            f.raA = ra;
            f.blockA = cur_block;
            frames.push_back(f);

            if (ra == _bin.startRetAddr[static_cast<size_t>(isaA)])
                break; // outermost frame

            const CallSiteInfo *cs =
                _bin.findCallSiteByRetAddr(isaA, ra);
            if (cs == nullptr)
                return fail("unwalkable return address");
            frames.back().callSite = cs;

            const FuncInfo &parent = _bin.funcInfo(isaA, cs->funcId);
            const MachBlockInfo *parent_block = parent.blockAt(ra);
            if (parent_block == nullptr ||
                parent_block->start != ra) {
                return fail("return address is not a post-call "
                            "block");
            }
            // Interior frames resume at post-call blocks; their live
            // state must also be transformable.
            if (classifyBlock(parent, *parent_block) ==
                MigrationSafety::Unsafe) {
                return fail("interior frame is not migration-safe");
            }

            sp += mapA.newFrameSize;
            cur = &parent;
            cur_block = parent_block;
        }
        if (frames.back().callSite != nullptr &&
            frames.back().raA !=
                _bin.startRetAddr[static_cast<size_t>(isaA)]) {
            return fail("stack too deep");
        }
    }

    // ---- 3. Lay out the destination stack. ----
    {
        Addr parent_sp = layout::kStackTop - 64;
        for (size_t k = frames.size(); k-- > 0;) {
            const RelocationMap &mapB =
                randB.mapFor(frames[k].funcId);
            frames[k].spB = parent_sp - mapB.newFrameSize;
            parent_sp = frames[k].spB;
        }
    }

    // Fresh destination architectural state.
    MachineState new_state(isaB);
    new_state.setSp(frames.front().spB);

    // A register-allocated value's authoritative location depends on
    // its clobber class and where the frame is paused:
    //  - caller-saved + frame paused at a call (interior frames, and
    //    the top frame when resuming at a post-call segment): the
    //    backend spilled it to its canonical slot around the call;
    //  - callee-saved + interior frame: recovered through the save
    //    chain (the first callee that saved the physical register
    //    holds this frame's value), falling back to the live machine
    //    register;
    //  - otherwise: the (renamed, possibly memory-relocated) register
    //    itself.
    auto caller_saved = [](IsaKind isa, Reg orig) {
        const IsaDescriptor &d = isaDescriptor(isa);
        return std::find(d.callerSaved.begin(), d.callerSaved.end(),
                         orig) != d.callerSaved.end();
    };
    auto paused_at_call = [&](size_t k) {
        return k > 0 || frames[k].blockA->segment > 0;
    };

    // Locate and read a source-side value of frame @p k.
    auto read_value = [&](size_t k, ValueId v) -> uint32_t {
        const Frame &f = frames[k];
        const FuncInfo &fi = _bin.funcInfo(isaA, f.funcId);
        const RelocationMap &mapA = randA.mapFor(f.funcId);
        const VregLoc &loc = fi.vregLoc[v];
        if (!loc.inReg ||
            (caller_saved(isaA, loc.reg) && paused_at_call(k))) {
            return _mem.rawRead32(f.spA +
                                  mapA.mapSlot(fi.slotOf(v)));
        }
        Reg phys = mapA.mapReg(loc.reg);
        if (mapA.regToSlot[phys] != kNotInMemory) {
            return _mem.rawRead32(
                f.spA + static_cast<uint32_t>(
                            mapA.regToSlot[phys]));
        }
        // Walk the save chain from the immediate child toward the
        // top. A child holds frame k's value only if it saved the
        // physical register AND actually clobbers it — a child whose
        // own map relocates @p phys to memory never touches the
        // physical register, so its save slot holds its private
        // register image, not the parent's value; skip it.
        for (size_t j = k; j-- > 0;) {
            const FuncInfo &cfi =
                _bin.funcInfo(isaA, frames[j].funcId);
            const RelocationMap &cmap =
                randA.mapFor(frames[j].funcId);
            if (cmap.regToSlot[phys] != kNotInMemory)
                continue;
            for (size_t i = 0; i < cfi.usedCalleeSaved.size();
                 ++i) {
                if (cmap.mapReg(cfi.usedCalleeSaved[i]) == phys) {
                    return _mem.rawRead32(
                        frames[j].spA +
                        cmap.mapSlot(cfi.calleeSaveBase +
                                     4 * static_cast<uint32_t>(i)));
                }
            }
        }
        return from.state.reg(phys);
    };

    // Place a value into frame @p k on the destination side.
    auto write_value = [&](size_t k, ValueId v, uint32_t value) {
        const Frame &f = frames[k];
        const FuncInfo &fi = _bin.funcInfo(isaB, f.funcId);
        const RelocationMap &mapB = randB.mapFor(f.funcId);
        const VregLoc &loc = fi.vregLoc[v];
        if (!loc.inReg ||
            (caller_saved(isaB, loc.reg) && paused_at_call(k))) {
            _mem.rawWrite32(f.spB + mapB.mapSlot(fi.slotOf(v)),
                            value);
            return;
        }
        Reg phys = mapB.mapReg(loc.reg);
        if (mapB.regToSlot[phys] != kNotInMemory) {
            _mem.rawWrite32(f.spB + static_cast<uint32_t>(
                                        mapB.regToSlot[phys]),
                            value);
            return;
        }
        for (size_t j = k; j-- > 0;) {
            const FuncInfo &cfi =
                _bin.funcInfo(isaB, frames[j].funcId);
            const RelocationMap &cmap =
                randB.mapFor(frames[j].funcId);
            // Mirror of the read side: a child that relocates the
            // physical register to memory neither clobbers nor
            // restores it — keep walking.
            if (cmap.regToSlot[phys] != kNotInMemory)
                continue;
            for (size_t i = 0; i < cfi.usedCalleeSaved.size();
                 ++i) {
                if (cmap.mapReg(cfi.usedCalleeSaved[i]) == phys) {
                    _mem.rawWrite32(
                        frames[j].spB +
                            cmap.mapSlot(cfi.calleeSaveBase +
                                         4 * static_cast<uint32_t>(
                                                 i)),
                        value);
                    return;
                }
            }
        }
        new_state.setReg(phys, value);
    };

    // ---- 4. Transform every frame. ----
    //
    // Source and destination frames overlap in the one guest stack,
    // so all source state is captured first (phase 1) and the
    // destination image written afterwards (phase 2).
    struct PendingValue
    {
        size_t frame;
        ValueId value;
        uint32_t bits;
    };
    struct PendingObject
    {
        size_t frame;
        uint32_t off;
        std::vector<uint8_t> bytes;
    };
    std::vector<PendingValue> pending_values;
    std::vector<PendingObject> pending_objects;
    bool have_ret_value = false;
    Reg ret_reg_b = kNoReg;
    uint32_t ret_value = 0;

    for (size_t k = 0; k < frames.size(); ++k) {
        const Frame &f = frames[k];
        const FuncInfo &fiAf = _bin.funcInfo(isaA, f.funcId);
        ++out.frames;

        // 4a. Fixed frame objects: identical offsets both sides.
        for (size_t i = 0; i < fiAf.frameObjOff.size(); ++i) {
            uint32_t begin = fiAf.frameObjOff[i];
            uint32_t end = (i + 1 < fiAf.frameObjOff.size())
                ? fiAf.frameObjOff[i + 1]
                : fiAf.spillBase;
            PendingObject obj;
            obj.frame = k;
            obj.off = begin;
            obj.bytes.resize(end - begin);
            _mem.rawReadBytes(f.spA + begin, obj.bytes.data(),
                              obj.bytes.size());
            out.objectBytes += end - begin;
            pending_objects.push_back(std::move(obj));
        }

        // 4b. Live values. Interior frames skip the pending call's
        // result (it materializes when the child returns, already in
        // the destination convention).
        for (ValueId v : f.blockA->liveIn) {
            if (k > 0 && f.blockA->entryValueInRetReg == v)
                continue;
            uint32_t value = read_value(k, v);
            if (fiAf.vregStackDerived[v]) {
                if (!fiAf.vregStackSimple[v])
                    return fail("complex frame pointer live");
                value = value - f.spA + f.spB;
                ++out.pointersRebased;
            }
            if (envFlag("HIPSTR_MIG_DEBUG", false)) {
                const VregLoc &la = fiAf.vregLoc[v];
                const FuncInfo &fb2 = _bin.funcInfo(isaB, f.funcId);
                const VregLoc &lb = fb2.vregLoc[v];
                fprintf(stderr,
                        "  mig frame%zu %s v%u = 0x%x  A:%s%u B:%s%u\n",
                        k, fiAf.name.c_str(), v, value,
                        la.inReg ? "r" : "slot",
                        la.inReg ? la.reg : la.slotOff,
                        lb.inReg ? "r" : "slot",
                        lb.inReg ? lb.reg : lb.slotOff);
            }
            pending_values.push_back(PendingValue{ k, v, value });
            ++out.valuesMoved;
        }

        // 4c. Top frame at a post-call block: the returned value sits
        // in the source callee's physical return register; hand it to
        // the destination callee's.
        if (k == 0 && f.blockA->entryValueInRetReg != kNoValue) {
            uint32_t callee = kIndirectCallee;
            int prev = fiAf.blockIndexOf(f.blockA->irBlock,
                                         f.blockA->segment - 1);
            if (prev >= 0 &&
                fiAf.blocks[static_cast<size_t>(prev)].endsInCall) {
                callee = _bin.callSites[fiAf.blocks
                                            [static_cast<size_t>(
                                                 prev)]
                                                .callSiteId]
                             .calleeFuncId;
            }
            Reg retA = isaDescriptor(isaA).retReg;
            ret_reg_b = isaDescriptor(isaB).retReg;
            if (callee != kIndirectCallee) {
                if (!randA.usesDefaultConvention(callee))
                    retA = randA.mapFor(callee).retReg;
                if (!randB.usesDefaultConvention(callee))
                    ret_reg_b = randB.mapFor(callee).retReg;
            }
            ret_value = from.state.reg(retA);
            have_ret_value = true;
            ++out.valuesMoved;
        }
    }

    // Phase 2: write the destination image.
    for (const PendingObject &obj : pending_objects) {
        _mem.rawWriteBytes(frames[obj.frame].spB + obj.off,
                           obj.bytes.data(), obj.bytes.size());
    }
    for (const PendingValue &pv : pending_values)
        write_value(pv.frame, pv.value, pv.bits);
    if (have_ret_value)
        new_state.setReg(ret_reg_b, ret_value);
    for (size_t k = 0; k < frames.size(); ++k) {
        const Frame &f = frames[k];
        const FuncInfo &fiBf = _bin.funcInfo(isaB, f.funcId);
        const RelocationMap &mapB = randB.mapFor(f.funcId);
        Addr raB;
        if (f.callSite == nullptr) {
            raB = _bin.startRetAddr[static_cast<size_t>(isaB)];
        } else {
            raB = f.callSite->retAddr[static_cast<size_t>(isaB)];
        }
        _mem.rawWrite32(f.spB + mapB.mapSlot(fiBf.raSlot), raB);
        ++out.raRewrites;
    }

    // ---- 5. Commit. ----
    const FuncInfo &fiB = _bin.funcInfo(isaB, fiA->funcId);
    int idxB =
        fiB.blockIndexOf(top_block->irBlock, top_block->segment);
    if (idxB < 0)
        return fail("no destination equivalence point");
    new_state.pc = fiB.blocks[static_cast<size_t>(idxB)].start;
    new_state.setSp(frames.front().spB);
    to.state = new_state;

    out.ok = true;
    out.resumePc = new_state.pc;
    out.microseconds = _cost.microseconds(out, isaB);
    return out;
}

} // namespace hipstr
