#include "safety.hh"

namespace hipstr
{

MigrationSafety
classifyBlock(const FuncInfo &fi, const MachBlockInfo &mbi)
{
    // The frame is not yet (fully) constructed in the entry block.
    if (mbi.irBlock == 0 && mbi.segment == 0)
        return MigrationSafety::Unsafe;

    if (!mbi.hasStackDerivedLiveIn)
        return MigrationSafety::BaselineSafe;

    for (ValueId v : mbi.liveIn) {
        if (fi.vregStackDerived[v] && !fi.vregStackSimple[v])
            return MigrationSafety::Unsafe;
    }
    return MigrationSafety::OnDemandSafe;
}

SafetyStats
analyzeMigrationSafety(const FatBinary &bin, IsaKind isa)
{
    SafetyStats stats;
    for (const FuncInfo &fi : bin.funcsFor(isa)) {
        for (const MachBlockInfo &mbi : fi.blocks) {
            ++stats.totalBlocks;
            switch (classifyBlock(fi, mbi)) {
              case MigrationSafety::Unsafe:
                break;
              case MigrationSafety::BaselineSafe:
                ++stats.baselineSafe;
                ++stats.onDemandSafe;
                break;
              case MigrationSafety::OnDemandSafe:
                ++stats.onDemandSafe;
                break;
            }
        }
    }
    return stats;
}

bool
isMigrationPoint(const FatBinary &bin, IsaKind isa, Addr addr,
                 MigrationSafety needed)
{
    const FuncInfo *fi = bin.findFuncByAddr(isa, addr);
    if (fi == nullptr)
        return false;
    const MachBlockInfo *mbi = fi->blockAt(addr);
    if (mbi == nullptr || mbi->start != addr)
        return false;
    MigrationSafety tier = classifyBlock(*fi, *mbi);
    if (tier == MigrationSafety::Unsafe)
        return false;
    if (needed == MigrationSafety::BaselineSafe)
        return tier == MigrationSafety::BaselineSafe;
    return true;
}

} // namespace hipstr
