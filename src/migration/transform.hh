/**
 * @file
 * PSR-aware cross-ISA execution migration (Sections 3.2, 5.2).
 *
 * At a migration-safe equivalence point, the engine:
 *
 *  1. unwinds the source stack frame-by-frame through the relocated
 *     return-address slots, identifying each frame's function and its
 *     pending call site;
 *  2. lays out the destination stack with the target ISA's (generally
 *     different) randomized frame sizes;
 *  3. moves every live value from its source-randomized location
 *     (register after renaming, relocated register slot, or recolored
 *     canonical slot) to its destination-randomized location — the
 *     "PSR-aware" requirement of Section 5.2 — recovering
 *     callee-saved registers of interior frames through the save-slot
 *     chain like a DWARF unwinder;
 *  4. rebases affine frame pointers by the per-frame sp delta (the
 *     on-demand extension);
 *  5. rewrites every return address to the target ISA's call-site
 *     address and copies fixed frame objects verbatim (the common
 *     frame map guarantees identical object layout).
 */

#ifndef HIPSTR_MIGRATION_TRANSFORM_HH
#define HIPSTR_MIGRATION_TRANSFORM_HH

#include <string>

#include "binary/fatbin.hh"
#include "migration/safety.hh"
#include "vm/psr_vm.hh"

namespace hipstr
{

/** Outcome and work accounting of one migration. */
struct MigrationOutcome
{
    bool ok = false;
    std::string error;
    Addr resumePc = 0;     ///< destination-ISA guest resume address
    uint32_t frames = 0;
    uint32_t valuesMoved = 0;
    uint32_t objectBytes = 0;
    uint32_t raRewrites = 0;
    uint32_t pointersRebased = 0;
    double microseconds = 0; ///< modeled cost (see cost model below)
};

/**
 * Cost model for the state transformation, executed on the
 * *destination* core (which is why ARM-bound migrations cost more —
 * the paper reports 909 us toward x86 and 1.287 ms toward ARM).
 * Constants calibrated so typical checkpoints land near the paper's
 * measurements; see bench_fig12_migration.
 */
struct MigrationCostModel
{
    double baseCycles = 1'000'000;
    double cyclesPerFrame = 400'000;
    double cyclesPerValue = 60'000;
    double cyclesPerObjectByte = 800;
    double cyclesPerRaRewrite = 32'000;

    /** Destination core frequency in GHz (Table 1). */
    static double destFrequencyGhz(IsaKind dest);

    double microseconds(const MigrationOutcome &o, IsaKind dest) const;
};

/** The migration engine; one per HIPStR runtime. */
class MigrationEngine
{
  public:
    explicit MigrationEngine(const FatBinary &bin, Memory &mem)
        : _bin(bin), _mem(mem)
    {
    }

    /**
     * Transform state so execution resumes on @p to at the equivalence
     * point matching @p from's guest address @p guest_pc. On failure
     * (not a safe point, unwalkable stack) nothing is modified and
     * @c ok is false — the caller keeps executing on the source ISA.
     */
    MigrationOutcome migrate(PsrVm &from, PsrVm &to, Addr guest_pc);

    const MigrationCostModel &costModel() const { return _cost; }

  private:
    const FatBinary &_bin;
    Memory &_mem;
    MigrationCostModel _cost;
};

} // namespace hipstr

#endif // HIPSTR_MIGRATION_TRANSFORM_HH
