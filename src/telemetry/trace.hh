/**
 * @file
 * Low-overhead structured trace events with Chrome trace_event-format
 * export — the "magnified view" instrumentation the heterogeneous-ISA
 * migration literature demands: per-quantum core occupancy, migration
 * timing breakdowns, request lifecycles, all on the *modeled*
 * timeline so traces are reproducible artifacts, not wall-clock
 * noise.
 *
 * Model:
 *  - A TraceBuffer is a fixed-capacity ring of TraceEvent records.
 *    When the ring is full, the oldest event is overwritten and
 *    dropped() is incremented — a long soak keeps the newest window.
 *  - Every record() is gated on a per-category runtime mask;
 *    enabled() is a single relaxed atomic load + AND, cheap enough
 *    for any non-per-instruction site. The compile-time switch
 *    HIPSTR_TELEMETRY_DISABLED turns enabled() into `false` so the
 *    whole layer folds away.
 *  - Producers hold a TraceBuffer* that defaults to nullptr; a null
 *    pointer (the common case) costs one predictable branch at each
 *    cold hook site and nothing on the VM's per-instruction path,
 *    which has no hook sites at all (see DESIGN.md's overhead
 *    budget).
 *  - Timestamps are modeled microseconds supplied by the caller
 *    (guest instructions at a nominal rate, or scheduler rounds
 *    through the CMP's aggregate rate). Two runs of the same
 *    configuration therefore produce identical event payloads; only
 *    ring *order* may vary when producers race, which deterministic
 *    callers (the scheduler's merge phase) avoid by recording from
 *    their fixed-order sections.
 *
 * exportChrome() writes the JSON Object Format of the Chrome
 * trace_event spec; load the file in chrome://tracing or
 * https://ui.perfetto.dev (EXPERIMENTS.md has the recipe).
 */

#ifndef HIPSTR_TELEMETRY_TRACE_HH
#define HIPSTR_TELEMETRY_TRACE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace hipstr::telemetry
{

/** Event categories, maskable at runtime. */
enum class TraceCategory : uint8_t
{
    Vm,        ///< PSR VM run slices, translations, security events
    Runtime,   ///< HipstrRuntime quanta and migrations
    Scheduler, ///< CmpScheduler rounds, quanta, respawns, routing
    Server,    ///< ProtectedServer request lifecycle
    Phase,     ///< per-phase profiling scopes
    Fleet,     ///< ProtectedFleet admission, shedding, stealing
    Attack,    ///< campaign probes, observations, compromises
    kNum
};

constexpr uint32_t
categoryBit(TraceCategory c)
{
    return 1u << static_cast<unsigned>(c);
}

/** Mask enabling every category. */
constexpr uint32_t kAllTraceCategories =
    (1u << static_cast<unsigned>(TraceCategory::kNum)) - 1;

const char *traceCategoryName(TraceCategory c);

/**
 * One structured event. `name` and arg keys must be string literals
 * (static lifetime) — events are recorded on cold paths but copied
 * around wholesale, so they carry no owned strings.
 */
struct TraceEvent
{
    static constexpr size_t kMaxArgs = 4;

    double ts = 0;   ///< modeled microseconds
    double dur = -1; ///< duration for 'X' events; <0 renders none
    uint32_t pid = 0; ///< logical process lane (worker pid, 0 = host)
    uint32_t tid = 0; ///< logical thread lane (core id, VM isa, ...)
    TraceCategory cat = TraceCategory::Vm;
    char ph = 'i'; ///< Chrome phase: 'X' complete, 'i' instant, 'C' counter
    const char *name = "";
    uint32_t nargs = 0;
    std::array<std::pair<const char *, uint64_t>, kMaxArgs> args{};

    TraceEvent &
    arg(const char *key, uint64_t value)
    {
        if (nargs < kMaxArgs)
            args[nargs++] = { key, value };
        return *this;
    }
};

/** Build a complete ('X') event spanning [ts, ts+dur]. */
TraceEvent traceSpan(TraceCategory cat, const char *name, double ts,
                     double dur, uint32_t pid = 0, uint32_t tid = 0);
/** Build an instant ('i') event at ts. */
TraceEvent traceInstant(TraceCategory cat, const char *name, double ts,
                        uint32_t pid = 0, uint32_t tid = 0);

/**
 * The ring buffer. All members are safe to call concurrently;
 * record() takes a mutex (hook sites are cold paths — quanta,
 * migrations, requests — never per-instruction).
 */
class TraceBuffer
{
  public:
    /** @param capacity ring size in events (>= 1). */
    explicit TraceBuffer(size_t capacity = 1 << 14);

    /** Replace the category mask (0 disables all recording). */
    void setMask(uint32_t mask)
    {
        _mask.store(mask, std::memory_order_relaxed);
    }
    uint32_t mask() const
    {
        return _mask.load(std::memory_order_relaxed);
    }

    /** The hot gate: one relaxed load + AND (constant false when the
     *  layer is compiled out). */
    bool
    enabled(TraceCategory c) const
    {
#ifdef HIPSTR_TELEMETRY_DISABLED
        (void)c;
        return false;
#else
        return (_mask.load(std::memory_order_relaxed) &
                categoryBit(c)) != 0;
#endif
    }

    /**
     * Append @p ev; when the ring is full the oldest event is
     * overwritten and counted in dropped(). Events in disabled
     * categories are ignored (callers normally pre-check enabled()).
     */
    void record(const TraceEvent &ev);

    /** Events currently retained (<= capacity). */
    size_t size() const;
    size_t capacity() const { return _ring.size(); }
    /** Events overwritten because the ring was full. */
    uint64_t dropped() const;
    /** Total record() calls accepted (retained + dropped). */
    uint64_t recorded() const;

    /** Retained events, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    /** Drop all retained events and zero the drop accounting. */
    void clear();

    /**
     * Chrome trace_event JSON Object Format:
     * {"traceEvents": [...], "otherData": {"dropped": N, ...}}.
     * Events are emitted oldest first; numbers use the deterministic
     * formatter, so equal event sequences export byte-identically.
     */
    void exportChrome(std::ostream &os) const;

    /** Process-wide buffer (disabled mask by default). */
    static TraceBuffer &global();

  private:
    std::atomic<uint32_t> _mask{ 0 };
    mutable std::mutex _mutex;
    std::vector<TraceEvent> _ring;
    size_t _next = 0;    ///< ring cursor
    size_t _count = 0;   ///< retained events (saturates at capacity)
    uint64_t _dropped = 0;
    uint64_t _recorded = 0;
};

} // namespace hipstr::telemetry

#endif // HIPSTR_TELEMETRY_TRACE_HH
