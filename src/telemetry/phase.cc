#include "phase.hh"

#include <string>

#include "metrics.hh"

namespace hipstr::telemetry
{

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::Translate: return "translate";
      case Phase::Regalloc: return "regalloc";
      case Phase::Relocation: return "relocation";
      case Phase::MigrationTransform: return "migration_transform";
      case Phase::kNum: break;
    }
    return "?";
}

void
exportPhases(MetricRegistry &reg, const char *prefix,
             const PhaseBreakdown &bd)
{
    for (size_t i = 0; i < kNumPhases; ++i) {
        const PhaseStats &ps = bd.phases[i];
        const std::string base = std::string(prefix) + "." +
            phaseName(static_cast<Phase>(i));
        reg.counter(base + ".invocations").set(ps.invocations);
        reg.counter(base + ".work_units").set(ps.workUnits);
        reg.gauge(base + ".modeled_us").set(ps.modeledMicros);
    }
}

} // namespace hipstr::telemetry
