/**
 * @file
 * Per-phase profiling scopes for the runtime's four cost centers:
 *
 *   Translate          PsrTranslator unit translation
 *   Regalloc           randomized register allocation (permutation +
 *                      Cisc register-to-slot relocation) during
 *                      relocation-map generation
 *   Relocation         stack-slot recoloring during map generation,
 *                      plus whole-map regeneration on reRandomize()
 *   MigrationTransform the Section 5.2 cross-ISA state transformation
 *
 * Accounting is *modeled*, never wall clock: invocation counts, phase
 * work units (guest instructions translated, registers permuted,
 * slots recolored, values moved), and modeled microseconds derived
 * from the calibrated cost models. That keeps the breakdown
 * deterministic — it can live inside HipstrRunSummary, ServerReport,
 * and the byte-identical BENCH_*.json exports — and free of clock
 * syscalls on the paths it instruments (all of which are cold:
 * translation, map generation, migration).
 */

#ifndef HIPSTR_TELEMETRY_PHASE_HH
#define HIPSTR_TELEMETRY_PHASE_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace hipstr::telemetry
{

/** The profiled phases. */
enum class Phase : uint8_t
{
    Translate,
    Regalloc,
    Relocation,
    MigrationTransform,
    kNum
};

constexpr size_t kNumPhases = static_cast<size_t>(Phase::kNum);

const char *phaseName(Phase p);

/**
 * Modeled cost coefficients for phases whose producers have no core
 * frequency at hand. Translation charges the executing core's real
 * frequency (the VM owns a CoreConfig); map generation is host-side
 * work charged at a nominal ~3 GHz service processor, and trace
 * timestamps advance guest instructions at a nominal 1 GIPS. All
 * three are fixed constants so the resulting accounting is a pure
 * function of the work performed.
 */
namespace cost
{
/** Regalloc: per register permuted/relocated (~150 cycles @ 3 GHz). */
constexpr double kRegallocUsPerReg = 0.05;
/** Relocation: per stack slot recolored (~360 cycles @ 3 GHz). */
constexpr double kRelocationUsPerSlot = 0.12;
/** Nominal guest execution rate for trace timestamps (1 GIPS). */
constexpr double kGuestInstsPerMicro = 1000.0;
} // namespace cost

/** Accounting for one phase. */
struct PhaseStats
{
    uint64_t invocations = 0;
    uint64_t workUnits = 0;   ///< phase-specific (see file comment)
    double modeledMicros = 0; ///< modeled cost on the executing core

    void
    add(uint64_t units, double micros)
    {
        ++invocations;
        workUnits += units;
        modeledMicros += micros;
    }

    PhaseStats &
    operator+=(const PhaseStats &o)
    {
        invocations += o.invocations;
        workUnits += o.workUnits;
        modeledMicros += o.modeledMicros;
        return *this;
    }

    PhaseStats &
    operator-=(const PhaseStats &o)
    {
        invocations -= o.invocations;
        workUnits -= o.workUnits;
        modeledMicros -= o.modeledMicros;
        return *this;
    }
};

/** The full per-phase breakdown a summary carries. */
struct PhaseBreakdown
{
    std::array<PhaseStats, kNumPhases> phases{};

    PhaseStats &
    operator[](Phase p)
    {
        return phases[static_cast<size_t>(p)];
    }
    const PhaseStats &
    operator[](Phase p) const
    {
        return phases[static_cast<size_t>(p)];
    }

    PhaseBreakdown &
    operator+=(const PhaseBreakdown &o)
    {
        for (size_t i = 0; i < kNumPhases; ++i)
            phases[i] += o.phases[i];
        return *this;
    }

    PhaseBreakdown &
    operator-=(const PhaseBreakdown &o)
    {
        for (size_t i = 0; i < kNumPhases; ++i)
            phases[i] -= o.phases[i];
        return *this;
    }

    double
    totalModeledMicros() const
    {
        double t = 0;
        for (const PhaseStats &p : phases)
            t += p.modeledMicros;
        return t;
    }
};

inline PhaseBreakdown
operator+(PhaseBreakdown a, const PhaseBreakdown &b)
{
    a += b;
    return a;
}

inline PhaseBreakdown
operator-(PhaseBreakdown a, const PhaseBreakdown &b)
{
    a -= b;
    return a;
}

class MetricRegistry;

/**
 * Register @p bd's counters under "<prefix>.<phase>.{invocations,
 * work_units}" counters and "<prefix>.<phase>.modeled_us" gauges in
 * @p reg (set, not accumulated — callers export a finished
 * breakdown).
 */
void exportPhases(MetricRegistry &reg, const char *prefix,
                  const PhaseBreakdown &bd);

} // namespace hipstr::telemetry

#endif // HIPSTR_TELEMETRY_PHASE_HH
