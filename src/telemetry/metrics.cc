#include "metrics.hh"

#include <cstdio>
#include <sstream>

namespace hipstr::telemetry
{

void
HistogramMetric::merge(const HistogramMetric &other)
{
    if (other.binWidth() != _binWidth ||
        other.numBins() != numBins()) {
        throw MetricError(
            "histogram merge geometry mismatch: " +
            snapshot().name());
    }
    Histogram theirs = other.snapshot();
    std::lock_guard<std::mutex> lock(_mutex);
    _hist.merge(theirs);
}

std::string
CounterFamily::renderedName(
    const std::vector<std::string> &label_values) const
{
    std::string out = _name + "{";
    for (size_t i = 0; i < _keys.size(); ++i) {
        if (i > 0)
            out += ",";
        out += _keys[i] + "=" + label_values[i];
    }
    out += "}";
    return out;
}

CounterMetric &
CounterFamily::at(const std::vector<std::string> &label_values)
{
    if (label_values.size() != _keys.size()) {
        throw MetricError("family '" + _name + "' takes " +
                          std::to_string(_keys.size()) +
                          " labels, got " +
                          std::to_string(label_values.size()));
    }
    const std::string key = renderedName(label_values);
    {
        std::shared_lock<std::shared_mutex> lock(_mutex);
        auto it = _members.find(key);
        if (it != _members.end())
            return *it->second;
    }
    std::unique_lock<std::shared_mutex> lock(_mutex);
    auto &slot = _members[key];
    if (!slot)
        slot = std::make_unique<CounterMetric>();
    return *slot;
}

const char *
MetricRegistry::kindName(Kind k)
{
    switch (k) {
      case Kind::Counter: return "counter";
      case Kind::Gauge: return "gauge";
      case Kind::Hist: return "histogram";
      case Kind::Family: return "family";
    }
    return "?";
}

MetricRegistry::Entry *
MetricRegistry::find(const std::string &name, Kind want)
{
    std::shared_lock<std::shared_mutex> lock(_mutex);
    auto it = _entries.find(name);
    if (it == _entries.end())
        return nullptr;
    if (it->second.kind != want) {
        throw MetricError("metric '" + name + "' already registered "
                          "as " + kindName(it->second.kind) +
                          ", requested as " + kindName(want));
    }
    return &it->second;
}

CounterMetric &
MetricRegistry::counter(const std::string &name)
{
    if (Entry *e = find(name, Kind::Counter))
        return *e->counter;
    std::unique_lock<std::shared_mutex> lock(_mutex);
    Entry &e = _entries[name];
    if (e.counter == nullptr) {
        if (e.gauge || e.hist || e.family) {
            throw MetricError("metric '" + name +
                              "' already registered with another "
                              "kind, requested as counter");
        }
        e.kind = Kind::Counter;
        e.counter = std::make_unique<CounterMetric>();
    }
    return *e.counter;
}

GaugeMetric &
MetricRegistry::gauge(const std::string &name)
{
    if (Entry *e = find(name, Kind::Gauge))
        return *e->gauge;
    std::unique_lock<std::shared_mutex> lock(_mutex);
    Entry &e = _entries[name];
    if (e.gauge == nullptr) {
        if (e.counter || e.hist || e.family) {
            throw MetricError("metric '" + name +
                              "' already registered with another "
                              "kind, requested as gauge");
        }
        e.kind = Kind::Gauge;
        e.gauge = std::make_unique<GaugeMetric>();
    }
    return *e.gauge;
}

HistogramMetric &
MetricRegistry::histogram(const std::string &name, uint64_t bin_width,
                          size_t num_bins)
{
    if (Entry *e = find(name, Kind::Hist)) {
        if (e->hist->binWidth() != bin_width ||
            e->hist->numBins() != num_bins) {
            throw MetricError("histogram '" + name +
                              "' re-registered with different "
                              "geometry");
        }
        return *e->hist;
    }
    std::unique_lock<std::shared_mutex> lock(_mutex);
    Entry &e = _entries[name];
    if (e.hist == nullptr) {
        if (e.counter || e.gauge || e.family) {
            throw MetricError("metric '" + name +
                              "' already registered with another "
                              "kind, requested as histogram");
        }
        e.kind = Kind::Hist;
        e.hist = std::make_unique<HistogramMetric>(name, bin_width,
                                                   num_bins);
    }
    return *e.hist;
}

CounterFamily &
MetricRegistry::family(const std::string &name,
                       const std::vector<std::string> &label_keys)
{
    if (Entry *e = find(name, Kind::Family)) {
        if (e->family->labelKeys() != label_keys) {
            throw MetricError("family '" + name +
                              "' re-registered with different label "
                              "keys");
        }
        return *e->family;
    }
    std::unique_lock<std::shared_mutex> lock(_mutex);
    Entry &e = _entries[name];
    if (e.family == nullptr) {
        if (e.counter || e.gauge || e.hist) {
            throw MetricError("metric '" + name +
                              "' already registered with another "
                              "kind, requested as family");
        }
        e.kind = Kind::Family;
        e.family.reset(new CounterFamily(name, label_keys));
    }
    return *e.family;
}

void
MetricRegistry::toJson(std::ostream &os, int indent) const
{
    const std::string pad(static_cast<size_t>(indent), ' ');

    // Collect (rendered name, rendered value) pairs, then emit them
    // sorted so the export order never depends on registration order.
    std::map<std::string, std::string> lines;
    {
        std::shared_lock<std::shared_mutex> lock(_mutex);
        for (const auto &kv : _entries) {
            const Entry &e = kv.second;
            switch (e.kind) {
              case Kind::Counter:
                lines[kv.first] = jsonNumber(e.counter->value());
                break;
              case Kind::Gauge:
                lines[kv.first] = jsonNumber(e.gauge->value());
                break;
              case Kind::Hist: {
                Histogram h = e.hist->snapshot();
                std::string v = "{\"type\": \"histogram\", "
                                "\"bin_width\": " +
                    jsonNumber(e.hist->binWidth()) +
                    ", \"samples\": " + jsonNumber(h.totalSamples()) +
                    ", \"mean\": " + jsonNumber(h.mean()) +
                    ", \"bins\": [";
                for (size_t i = 0; i < h.numBins(); ++i) {
                    if (i > 0)
                        v += ", ";
                    v += jsonNumber(h.binCount(i));
                }
                v += "]}";
                lines[kv.first] = v;
                break;
              }
              case Kind::Family: {
                std::shared_lock<std::shared_mutex> flock(
                    e.family->_mutex);
                for (const auto &m : e.family->_members)
                    lines[m.first] = jsonNumber(m.second->value());
                break;
              }
            }
        }
    }

    bool first = true;
    for (const auto &kv : lines) {
        if (!first)
            os << ",\n";
        first = false;
        os << pad << "\"" << jsonEscape(kv.first)
           << "\": " << kv.second;
    }
    if (!first)
        os << "\n";
}

std::string
MetricRegistry::toJson() const
{
    std::ostringstream os;
    toJson(os);
    return os.str();
}

void
MetricRegistry::reset()
{
    std::unique_lock<std::shared_mutex> lock(_mutex);
    for (auto &kv : _entries) {
        Entry &e = kv.second;
        switch (e.kind) {
          case Kind::Counter: e.counter->reset(); break;
          case Kind::Gauge: e.gauge->reset(); break;
          case Kind::Hist: e.hist->reset(); break;
          case Kind::Family: {
            std::unique_lock<std::shared_mutex> flock(
                e.family->_mutex);
            for (auto &m : e.family->_members)
                m.second->reset();
            break;
          }
        }
    }
}

size_t
MetricRegistry::size() const
{
    std::shared_lock<std::shared_mutex> lock(_mutex);
    return _entries.size();
}

MetricRegistry &
MetricRegistry::global()
{
    static MetricRegistry registry;
    return registry;
}

std::string
jsonNumber(uint64_t v)
{
    return std::to_string(v);
}

std::string
jsonNumber(double v)
{
    // %.12g is deterministic for a given value and keeps integers
    // rendered as integers ("3" not "3.000000000000").
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace hipstr::telemetry
