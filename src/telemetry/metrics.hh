/**
 * @file
 * Unified metrics registry — the repo-wide observability substrate the
 * evaluation (Figs. 7-14, Table 2) and the protected-server deployment
 * report through.
 *
 * Design:
 *  - Hierarchical dot-separated names ("vm.dispatch.hits",
 *    "server.requests.attack", "sched.migrations.isa_flip").
 *  - Three metric kinds: monotonically increasing Counter (atomic,
 *    wait-free increment), last-value Gauge (doubles, for figure
 *    results and rates), and HistogramMetric (fixed-width bins over a
 *    hipstr::Histogram; the final bin absorbs overflow).
 *  - Labeled families: family("sched.migrations", {"isa"}) hands out
 *    one Counter per label-value tuple; members export under the
 *    rendered name "sched.migrations{isa=risc}".
 *  - One exporter: toJson() renders every metric, sorted by rendered
 *    name, with deterministic number formatting — two runs (or two
 *    HIPSTR_JOBS values) that do the same modeled work produce
 *    byte-identical JSON. This is what every BENCH_<name>.json is
 *    written through.
 *
 * Thread safety: the registry maps are guarded by a shared mutex
 * (creation is rare, lookup cheap); Counter increments are relaxed
 * atomics; Gauge set/get are atomic stores/loads; histogram sampling
 * takes a per-histogram mutex (sampling sites are cold paths).
 * Determinism across thread counts is the caller's contract: derive
 * every recorded value from the work item, never from thread identity
 * — then the exported totals are interleaving-independent.
 *
 * Name-collision semantics: requesting an existing name with the same
 * kind (and, for histograms, the same geometry; for families, the
 * same label keys) returns the existing metric. Requesting it with a
 * different kind/geometry/keys throws MetricError — silently aliasing
 * two subsystems' metrics is always a bug.
 */

#ifndef HIPSTR_TELEMETRY_METRICS_HH
#define HIPSTR_TELEMETRY_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/stats.hh"

namespace hipstr::telemetry
{

/** Thrown on metric name collisions and label-arity mismatches. */
class MetricError : public std::logic_error
{
  public:
    explicit MetricError(const std::string &what)
        : std::logic_error(what)
    {
    }
};

/** Monotonic counter; wait-free increments, exported as an integer. */
class CounterMetric
{
  public:
    void inc(uint64_t delta = 1)
    {
        _value.fetch_add(delta, std::memory_order_relaxed);
    }
    void set(uint64_t v) { _value.store(v, std::memory_order_relaxed); }
    uint64_t value() const
    {
        return _value.load(std::memory_order_relaxed);
    }
    void reset() { _value.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> _value{ 0 };
};

/** Last-value gauge; exported as a double. */
class GaugeMetric
{
  public:
    void set(double v) { _value.store(v, std::memory_order_relaxed); }
    double value() const
    {
        return _value.load(std::memory_order_relaxed);
    }
    void reset() { _value.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> _value{ 0.0 };
};

/**
 * Thread-safe histogram over integer samples. Shares the fixed-width
 * bin model of hipstr::Histogram (the final bin absorbs overflow);
 * merge() folds another histogram of identical geometry in — the
 * shard-merge primitive parallel sweeps use.
 */
class HistogramMetric
{
  public:
    HistogramMetric(std::string name, uint64_t bin_width,
                    size_t num_bins)
        : _hist(std::move(name), bin_width, num_bins),
          _binWidth(bin_width)
    {
    }

    void
    sample(uint64_t v, uint64_t count = 1)
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _hist.sample(v, count);
    }

    /**
     * Fold @p other in. @throws MetricError on geometry mismatch.
     * Merging empty histograms is well-defined: the result is empty
     * and mean()/percentile() on it answer 0 rather than dividing by
     * zero samples — cross-shard aggregation relies on this when a
     * shard served nothing.
     */
    void merge(const HistogramMetric &other);

    /** Immutable snapshot for export (copies under the lock). */
    Histogram snapshot() const
    {
        std::lock_guard<std::mutex> lock(_mutex);
        return _hist;
    }

    uint64_t totalSamples() const
    {
        std::lock_guard<std::mutex> lock(_mutex);
        return _hist.totalSamples();
    }

    /** Mean of all samples; 0.0 when empty (see Histogram::mean). */
    double mean() const
    {
        std::lock_guard<std::mutex> lock(_mutex);
        return _hist.mean();
    }

    /** p-quantile bin edge; 0 when empty (Histogram::percentile). */
    uint64_t percentile(double p) const
    {
        std::lock_guard<std::mutex> lock(_mutex);
        return _hist.percentile(p);
    }

    uint64_t binWidth() const { return _binWidth; }
    size_t numBins() const { return _hist.numBins(); }

    void
    reset()
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _hist.reset();
    }

  private:
    mutable std::mutex _mutex;
    Histogram _hist;
    uint64_t _binWidth;
};

class MetricRegistry;

/**
 * A labeled metric family: one Counter per label-value tuple, all
 * under one hierarchical name. Members render as
 * "name{key1=v1,key2=v2}" in the export.
 */
class CounterFamily
{
  public:
    /**
     * The member counter for @p label_values (created on first use).
     * @throws MetricError if the value count does not match the
     *         family's label keys.
     */
    CounterMetric &at(const std::vector<std::string> &label_values);

    const std::string &name() const { return _name; }
    const std::vector<std::string> &labelKeys() const { return _keys; }

  private:
    friend class MetricRegistry;
    CounterFamily(std::string name, std::vector<std::string> keys)
        : _name(std::move(name)), _keys(std::move(keys))
    {
    }

    std::string renderedName(
        const std::vector<std::string> &label_values) const;

    std::string _name;
    std::vector<std::string> _keys;
    mutable std::shared_mutex _mutex;
    std::map<std::string, std::unique_ptr<CounterMetric>> _members;
};

/**
 * The registry: get-or-create metrics by hierarchical name, export
 * everything through one deterministic JSON writer.
 */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    CounterMetric &counter(const std::string &name);
    GaugeMetric &gauge(const std::string &name);
    HistogramMetric &histogram(const std::string &name,
                               uint64_t bin_width, size_t num_bins);
    CounterFamily &family(const std::string &name,
                          const std::vector<std::string> &label_keys);

    /**
     * Render every metric as a sorted JSON object with @p indent
     * leading spaces per line:
     *   "name": 12,                  counters (integers)
     *   "name": 0.861234,            gauges (deterministic %.12g)
     *   "name{isa=risc}": 3,         family members
     *   "name": {"type": "histogram", "bin_width": ..., "samples":
     *            ..., "mean": ..., "bins": [...]}
     */
    void toJson(std::ostream &os, int indent = 2) const;
    std::string toJson() const;

    /** Zero every metric (registrations are kept). */
    void reset();

    /** Number of registered top-level metrics (families count as 1). */
    size_t size() const;

    /** Process-wide registry for code without a better home. */
    static MetricRegistry &global();

  private:
    enum class Kind : uint8_t
    {
        Counter,
        Gauge,
        Hist,
        Family
    };

    struct Entry
    {
        Kind kind;
        std::unique_ptr<CounterMetric> counter;
        std::unique_ptr<GaugeMetric> gauge;
        std::unique_ptr<HistogramMetric> hist;
        std::unique_ptr<CounterFamily> family;
    };

    static const char *kindName(Kind k);
    Entry *find(const std::string &name, Kind want);

    mutable std::shared_mutex _mutex;
    std::map<std::string, Entry> _entries;
};

/**
 * Deterministic number rendering shared by the JSON exporters:
 * integers verbatim, doubles through %.12g (enough digits to be
 * stable, few enough to stay readable). @{
 */
std::string jsonNumber(uint64_t v);
std::string jsonNumber(double v);
/** @} */

/** Minimal JSON string escaping (quotes, backslashes, control chars). */
std::string jsonEscape(const std::string &s);

} // namespace hipstr::telemetry

#endif // HIPSTR_TELEMETRY_METRICS_HH
