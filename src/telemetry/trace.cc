#include "trace.hh"

#include "metrics.hh"
#include "support/logging.hh"

namespace hipstr::telemetry
{

const char *
traceCategoryName(TraceCategory c)
{
    switch (c) {
      case TraceCategory::Vm: return "vm";
      case TraceCategory::Runtime: return "runtime";
      case TraceCategory::Scheduler: return "sched";
      case TraceCategory::Server: return "server";
      case TraceCategory::Phase: return "phase";
      case TraceCategory::Fleet: return "fleet";
      case TraceCategory::Attack: return "attack";
      case TraceCategory::kNum: break;
    }
    return "?";
}

TraceEvent
traceSpan(TraceCategory cat, const char *name, double ts, double dur,
          uint32_t pid, uint32_t tid)
{
    TraceEvent ev;
    ev.cat = cat;
    ev.name = name;
    ev.ph = 'X';
    ev.ts = ts;
    ev.dur = dur;
    ev.pid = pid;
    ev.tid = tid;
    return ev;
}

TraceEvent
traceInstant(TraceCategory cat, const char *name, double ts,
             uint32_t pid, uint32_t tid)
{
    TraceEvent ev;
    ev.cat = cat;
    ev.name = name;
    ev.ph = 'i';
    ev.ts = ts;
    ev.pid = pid;
    ev.tid = tid;
    return ev;
}

TraceBuffer::TraceBuffer(size_t capacity)
    : _ring(capacity == 0 ? 1 : capacity)
{
}

void
TraceBuffer::record(const TraceEvent &ev)
{
    if (!enabled(ev.cat))
        return;
    std::lock_guard<std::mutex> lock(_mutex);
    if (_count == _ring.size())
        ++_dropped; // overwriting the oldest retained event
    else
        ++_count;
    _ring[_next] = ev;
    _next = (_next + 1) % _ring.size();
    ++_recorded;
}

size_t
TraceBuffer::size() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _count;
}

uint64_t
TraceBuffer::dropped() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _dropped;
}

uint64_t
TraceBuffer::recorded() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _recorded;
}

std::vector<TraceEvent>
TraceBuffer::snapshot() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::vector<TraceEvent> out;
    out.reserve(_count);
    // Oldest event sits at _next when the ring has wrapped, at 0
    // otherwise.
    size_t start = _count == _ring.size() ? _next : 0;
    for (size_t i = 0; i < _count; ++i)
        out.push_back(_ring[(start + i) % _ring.size()]);
    return out;
}

void
TraceBuffer::clear()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _next = 0;
    _count = 0;
    _dropped = 0;
    _recorded = 0;
}

void
TraceBuffer::exportChrome(std::ostream &os) const
{
    std::vector<TraceEvent> events = snapshot();
    uint64_t dropped_events;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        dropped_events = _dropped;
    }

    os << "{\n  \"traceEvents\": [\n";
    for (size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &ev = events[i];
        os << "    {\"name\": \"" << jsonEscape(ev.name)
           << "\", \"cat\": \"" << traceCategoryName(ev.cat)
           << "\", \"ph\": \"" << ev.ph
           << "\", \"ts\": " << jsonNumber(ev.ts);
        if (ev.ph == 'X')
            os << ", \"dur\": "
               << jsonNumber(ev.dur < 0 ? 0.0 : ev.dur);
        os << ", \"pid\": " << ev.pid << ", \"tid\": " << ev.tid;
        if (ev.ph == 'i')
            os << ", \"s\": \"t\""; // instant scope: thread
        if (ev.nargs > 0) {
            os << ", \"args\": {";
            for (uint32_t a = 0; a < ev.nargs; ++a) {
                if (a > 0)
                    os << ", ";
                os << "\"" << jsonEscape(ev.args[a].first)
                   << "\": " << jsonNumber(ev.args[a].second);
            }
            os << "}";
        }
        os << "}" << (i + 1 < events.size() ? ",\n" : "\n");
    }
    os << "  ],\n"
       << "  \"otherData\": {\n"
       << "    \"dropped\": " << dropped_events << ",\n"
       << "    \"clock\": \"modeled-microseconds\"\n"
       << "  }\n"
       << "}\n";
}

TraceBuffer &
TraceBuffer::global()
{
    static TraceBuffer buffer(1 << 16);
    return buffer;
}

} // namespace hipstr::telemetry
