#include "builder.hh"

#include "support/logging.hh"

namespace hipstr
{

uint32_t
IrBuilder::addGlobal(const std::string &name, uint32_t size,
                     uint32_t align, std::vector<uint8_t> init)
{
    hipstr_assert(init.size() <= size);
    GlobalVar g;
    g.name = name;
    g.size = size;
    g.align = align;
    g.init = std::move(init);
    _module.globals.push_back(std::move(g));
    return static_cast<uint32_t>(_module.globals.size() - 1);
}

uint32_t
IrBuilder::addGlobalWords(const std::string &name,
                          const std::vector<uint32_t> &words)
{
    std::vector<uint8_t> bytes;
    bytes.reserve(words.size() * 4);
    for (uint32_t w : words) {
        bytes.push_back(static_cast<uint8_t>(w));
        bytes.push_back(static_cast<uint8_t>(w >> 8));
        bytes.push_back(static_cast<uint8_t>(w >> 16));
        bytes.push_back(static_cast<uint8_t>(w >> 24));
    }
    uint32_t size = static_cast<uint32_t>(bytes.size());
    return addGlobal(name, size, 4, std::move(bytes));
}

uint32_t
IrBuilder::declareFunction(const std::string &name, unsigned num_params)
{
    hipstr_assert(num_params <= kMaxParams);
    IrFunction f;
    f.name = name;
    f.id = static_cast<uint32_t>(_module.functions.size());
    f.numParams = num_params;
    f.numValues = num_params; // params occupy values 0..n-1
    _module.functions.push_back(std::move(f));
    return static_cast<uint32_t>(_module.functions.size() - 1);
}

void
IrBuilder::beginFunction(uint32_t fn_id)
{
    hipstr_assert(!_inFunction);
    hipstr_assert(fn_id < _module.functions.size());
    _curFn = fn_id;
    _inFunction = true;
    if (fn().blocks.empty())
        fn().blocks.emplace_back();
    _curBlock = 0;
}

void
IrBuilder::endFunction()
{
    hipstr_assert(_inFunction);
    for (size_t bb = 0; bb < fn().blocks.size(); ++bb) {
        const IrBlock &block = fn().blocks[bb];
        if (block.insts.empty() ||
            !isIrTerminator(block.insts.back().op)) {
            hipstr_panic("%s: bb%zu is not terminated",
                         fn().name.c_str(), bb);
        }
    }
    _inFunction = false;
}

uint32_t
IrBuilder::newBlock()
{
    fn().blocks.emplace_back();
    return static_cast<uint32_t>(fn().blocks.size() - 1);
}

void
IrBuilder::setBlock(uint32_t bb)
{
    hipstr_assert(bb < fn().blocks.size());
    _curBlock = bb;
}

ValueId
IrBuilder::param(unsigned i)
{
    hipstr_assert(i < fn().numParams);
    return i;
}

ValueId
IrBuilder::newValue()
{
    return fn().numValues++;
}

uint32_t
IrBuilder::addFrameObject(const std::string &name, uint32_t size,
                          uint32_t align)
{
    FrameObject obj;
    obj.name = name;
    obj.size = size;
    obj.align = align;
    fn().frameObjects.push_back(obj);
    return static_cast<uint32_t>(fn().frameObjects.size() - 1);
}

IrInst &
IrBuilder::append(IrInst inst)
{
    hipstr_assert(_inFunction);
    IrBlock &block = fn().blocks[_curBlock];
    hipstr_assert(block.insts.empty() ||
                  !isIrTerminator(block.insts.back().op));
    block.insts.push_back(std::move(inst));
    return block.insts.back();
}

IrFunction &
IrBuilder::fn()
{
    return _module.functions[_curFn];
}

ValueId
IrBuilder::constI(int32_t v)
{
    IrInst inst;
    inst.op = IrOp::ConstI;
    inst.dst = newValue();
    inst.imm = v;
    append(inst);
    return inst.dst;
}

ValueId
IrBuilder::copy(ValueId src)
{
    IrInst inst;
    inst.op = IrOp::Copy;
    inst.dst = newValue();
    inst.a = src;
    append(inst);
    return inst.dst;
}

ValueId
IrBuilder::frameAddr(uint32_t obj, int32_t off)
{
    IrInst inst;
    inst.op = IrOp::FrameAddr;
    inst.dst = newValue();
    inst.id = obj;
    inst.imm = off;
    append(inst);
    return inst.dst;
}

ValueId
IrBuilder::globalAddr(uint32_t global, int32_t off)
{
    IrInst inst;
    inst.op = IrOp::GlobalAddr;
    inst.dst = newValue();
    inst.id = global;
    inst.imm = off;
    append(inst);
    return inst.dst;
}

ValueId
IrBuilder::funcAddr(uint32_t fn_id)
{
    IrInst inst;
    inst.op = IrOp::FuncAddr;
    inst.dst = newValue();
    inst.id = fn_id;
    append(inst);
    return inst.dst;
}

ValueId
IrBuilder::load(ValueId addr, int32_t off)
{
    IrInst inst;
    inst.op = IrOp::Load;
    inst.dst = newValue();
    inst.a = addr;
    inst.imm = off;
    append(inst);
    return inst.dst;
}

ValueId
IrBuilder::load8(ValueId addr, int32_t off)
{
    IrInst inst;
    inst.op = IrOp::Load8;
    inst.dst = newValue();
    inst.a = addr;
    inst.imm = off;
    append(inst);
    return inst.dst;
}

ValueId
IrBuilder::binop(IrOp op, ValueId a, ValueId b)
{
    IrInst inst;
    inst.op = op;
    inst.dst = newValue();
    inst.a = a;
    inst.b = b;
    append(inst);
    return inst.dst;
}

ValueId
IrBuilder::binopI(IrOp op, ValueId a, int32_t imm)
{
    IrInst inst;
    inst.op = op;
    inst.dst = newValue();
    inst.a = a;
    inst.b = kNoValue;
    inst.imm = imm;
    append(inst);
    return inst.dst;
}

ValueId
IrBuilder::call(uint32_t fn_id, std::initializer_list<ValueId> args)
{
    IrInst inst;
    inst.op = IrOp::Call;
    inst.dst = newValue();
    inst.id = fn_id;
    inst.args = args;
    append(inst);
    return inst.dst;
}

ValueId
IrBuilder::callInd(ValueId fp, std::initializer_list<ValueId> args)
{
    IrInst inst;
    inst.op = IrOp::CallInd;
    inst.dst = newValue();
    inst.a = fp;
    inst.args = args;
    append(inst);
    return inst.dst;
}

ValueId
IrBuilder::syscall(std::initializer_list<ValueId> args)
{
    IrInst inst;
    inst.op = IrOp::Syscall;
    inst.dst = newValue();
    inst.args = args;
    append(inst);
    return inst.dst;
}

void
IrBuilder::store(ValueId addr, ValueId val, int32_t off)
{
    IrInst inst;
    inst.op = IrOp::Store;
    inst.a = addr;
    inst.b = val;
    inst.imm = off;
    append(inst);
}

void
IrBuilder::store8(ValueId addr, ValueId val, int32_t off)
{
    IrInst inst;
    inst.op = IrOp::Store8;
    inst.a = addr;
    inst.b = val;
    inst.imm = off;
    append(inst);
}

void
IrBuilder::assign(ValueId dst, ValueId src)
{
    IrInst inst;
    inst.op = IrOp::Copy;
    inst.dst = dst;
    inst.a = src;
    append(inst);
}

void
IrBuilder::assignConst(ValueId dst, int32_t v)
{
    IrInst inst;
    inst.op = IrOp::ConstI;
    inst.dst = dst;
    inst.imm = v;
    append(inst);
}

void
IrBuilder::assignBinop(IrOp op, ValueId dst, ValueId a, ValueId b)
{
    IrInst inst;
    inst.op = op;
    inst.dst = dst;
    inst.a = a;
    inst.b = b;
    append(inst);
}

void
IrBuilder::assignBinopI(IrOp op, ValueId dst, ValueId a, int32_t imm)
{
    IrInst inst;
    inst.op = op;
    inst.dst = dst;
    inst.a = a;
    inst.b = kNoValue;
    inst.imm = imm;
    append(inst);
}

void
IrBuilder::br(uint32_t bb)
{
    IrInst inst;
    inst.op = IrOp::Br;
    inst.bbTrue = bb;
    append(inst);
}

void
IrBuilder::condBr(Cond c, ValueId a, ValueId b, uint32_t bb_true,
                  uint32_t bb_false)
{
    IrInst inst;
    inst.op = IrOp::CondBr;
    inst.cond = c;
    inst.a = a;
    inst.b = b;
    inst.bbTrue = bb_true;
    inst.bbFalse = bb_false;
    append(inst);
}

void
IrBuilder::condBrI(Cond c, ValueId a, int32_t imm, uint32_t bb_true,
                   uint32_t bb_false)
{
    IrInst inst;
    inst.op = IrOp::CondBr;
    inst.cond = c;
    inst.a = a;
    inst.b = kNoValue;
    inst.imm = imm;
    inst.bbTrue = bb_true;
    inst.bbFalse = bb_false;
    append(inst);
}

void
IrBuilder::ret(ValueId v)
{
    IrInst inst;
    inst.op = IrOp::Ret;
    inst.a = v;
    append(inst);
}

void
IrBuilder::callVoid(uint32_t fn_id, std::initializer_list<ValueId> args)
{
    IrInst inst;
    inst.op = IrOp::Call;
    inst.dst = kNoValue;
    inst.id = fn_id;
    inst.args = args;
    append(inst);
}

void
IrBuilder::syscallVoid(std::initializer_list<ValueId> args)
{
    IrInst inst;
    inst.op = IrOp::Syscall;
    inst.dst = kNoValue;
    inst.args = args;
    append(inst);
}

ValueId
IrBuilder::setJmp(ValueId buf)
{
    uint32_t resume = newBlock();
    IrInst inst;
    inst.op = IrOp::SetJmp;
    inst.a = buf;
    inst.bbTrue = resume;
    append(inst);
    setBlock(resume);
    // The delivered value lives in the jmp_buf (word 2): memory is
    // the one channel that survives both the fall-through and the
    // longjmp path under every randomization.
    return load(buf, 8);
}

void
IrBuilder::longJmp(ValueId buf, ValueId val)
{
    IrInst inst;
    inst.op = IrOp::LongJmp;
    inst.a = buf;
    inst.b = val;
    append(inst);
}

void
IrBuilder::emitWriteWord(ValueId v)
{
    ValueId num = constI(static_cast<int32_t>(SyscallNo::WriteWord));
    syscallVoid({ num, v });
}

void
IrBuilder::emitExit(ValueId code)
{
    ValueId num = constI(static_cast<int32_t>(SyscallNo::Exit));
    syscallVoid({ num, code });
}

} // namespace hipstr
