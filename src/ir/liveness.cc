#include "liveness.hh"

#include "support/logging.hh"

namespace hipstr
{

Liveness::Liveness(const IrFunction &fn) : _fn(fn)
{
    const size_t nblocks = fn.blocks.size();
    const size_t nvalues = fn.numValues;

    _liveIn.assign(nblocks, DenseBitSet(nvalues));
    _liveOut.assign(nblocks, DenseBitSet(nvalues));

    // Backward worklist iteration to a fixpoint.
    bool changed = true;
    std::vector<ValueId> uses;
    while (changed) {
        changed = false;
        for (size_t bb = nblocks; bb-- > 0;) {
            const IrBlock &block = fn.blocks[bb];

            DenseBitSet out(nvalues);
            for (uint32_t succ : irSuccessors(block.insts.back()))
                out.unionWith(_liveIn[succ]);

            DenseBitSet in = out;
            for (size_t i = block.insts.size(); i-- > 0;) {
                const IrInst &inst = block.insts[i];
                ValueId def = irDefinedValue(inst);
                if (def != kNoValue)
                    in.clear(def);
                uses.clear();
                collectIrUses(inst, uses);
                for (ValueId v : uses)
                    in.set(v);
            }

            if (!(out == _liveOut[bb])) {
                _liveOut[bb] = out;
                changed = true;
            }
            if (!(in == _liveIn[bb])) {
                _liveIn[bb] = in;
                changed = true;
            }
        }
    }

    // Stack-derivation: forward fixpoint. A value becomes derived when
    // defined by FrameAddr, or by Copy/arithmetic over a derived
    // value. Simultaneously classify derivations as simple (affine in
    // the frame base) or complex.
    _stackDerived.assign(nvalues, false);
    _stackComplex.assign(nvalues, false);
    bool derived_changed = true;
    while (derived_changed) {
        derived_changed = false;
        for (const IrBlock &block : fn.blocks) {
            for (const IrInst &inst : block.insts) {
                ValueId def = irDefinedValue(inst);
                if (def == kNoValue)
                    continue;
                bool derived = false;
                bool simple = false;
                bool b_derived =
                    inst.b != kNoValue && _stackDerived[inst.b];
                switch (inst.op) {
                  case IrOp::FrameAddr:
                    derived = true;
                    simple = true;
                    break;
                  case IrOp::Copy:
                    derived = _stackDerived[inst.a];
                    simple = derived && !_stackComplex[inst.a];
                    break;
                  case IrOp::Add:
                  case IrOp::Sub:
                    derived = _stackDerived[inst.a] || b_derived;
                    // Affine only when exactly one operand carries
                    // the frame base, and that operand is itself
                    // still rebasable.
                    simple = (_stackDerived[inst.a] &&
                              !_stackComplex[inst.a] && !b_derived) ||
                        (inst.op == IrOp::Add && b_derived &&
                         !_stackComplex[inst.b] &&
                         !_stackDerived[inst.a]);
                    break;
                  case IrOp::And: case IrOp::Or: case IrOp::Xor:
                  case IrOp::Shl: case IrOp::Shr: case IrOp::Sar:
                  case IrOp::Mul: case IrOp::Divu:
                    derived = _stackDerived[inst.a] || b_derived;
                    simple = false;
                    break;
                  default:
                    break;
                }
                if (derived && !_stackDerived[def]) {
                    _stackDerived[def] = true;
                    derived_changed = true;
                }
                // Any complex derived definition permanently poisons
                // the value's rebasability (mutable values may be
                // redefined along other paths).
                if (derived && !simple && !_stackComplex[def]) {
                    _stackComplex[def] = true;
                    derived_changed = true;
                }
            }
        }
    }
}

DenseBitSet
Liveness::liveBefore(uint32_t bb, size_t inst_idx) const
{
    const IrBlock &block = _fn.blocks[bb];
    hipstr_assert(inst_idx <= block.insts.size());

    DenseBitSet live = _liveOut[bb];
    std::vector<ValueId> uses;
    for (size_t i = block.insts.size(); i-- > inst_idx;) {
        const IrInst &inst = block.insts[i];
        ValueId def = irDefinedValue(inst);
        if (def != kNoValue)
            live.clear(def);
        uses.clear();
        collectIrUses(inst, uses);
        for (ValueId v : uses)
            live.set(v);
    }
    return live;
}

} // namespace hipstr
