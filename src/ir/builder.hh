/**
 * @file
 * Fluent construction API for IR modules. All nine synthetic workloads
 * and most tests author their programs through this builder.
 */

#ifndef HIPSTR_IR_BUILDER_HH
#define HIPSTR_IR_BUILDER_HH

#include <initializer_list>
#include <string>
#include <vector>

#include "ir/ir.hh"

namespace hipstr
{

/**
 * Builds one IrModule. Typical usage:
 *
 * @code
 *   IrModule m;
 *   IrBuilder b(m);
 *   uint32_t fn = b.declareFunction("sum", 2);
 *   b.beginFunction(fn);
 *   ValueId r = b.add(b.param(0), b.param(1));
 *   b.ret(r);
 *   b.endFunction();
 * @endcode
 *
 * The builder keeps a current function and current block; instructions
 * append to the current block. Blocks must be explicitly terminated
 * (br/condBr/ret) before switching away, which endFunction() verifies.
 */
class IrBuilder
{
  public:
    explicit IrBuilder(IrModule &module) : _module(module) {}

    /** Module-level declarations. @{ */
    uint32_t addGlobal(const std::string &name, uint32_t size,
                       uint32_t align = 4,
                       std::vector<uint8_t> init = {});
    /** Convenience: global initialized from 32-bit words. */
    uint32_t addGlobalWords(const std::string &name,
                            const std::vector<uint32_t> &words);
    uint32_t declareFunction(const std::string &name,
                             unsigned num_params);
    void setEntry(uint32_t fn) { _module.entryFunc = fn; }
    /** @} */

    /** Function construction. @{ */
    void beginFunction(uint32_t fn);
    void endFunction();
    uint32_t newBlock();
    void setBlock(uint32_t bb);
    uint32_t currentBlock() const { return _curBlock; }
    ValueId param(unsigned i);
    ValueId newValue();
    uint32_t addFrameObject(const std::string &name, uint32_t size,
                            uint32_t align = 4);
    /** @} */

    /** Value-producing instructions. @{ */
    ValueId constI(int32_t v);
    ValueId copy(ValueId src);
    ValueId frameAddr(uint32_t obj, int32_t off = 0);
    ValueId globalAddr(uint32_t global, int32_t off = 0);
    ValueId funcAddr(uint32_t fn);
    ValueId load(ValueId addr, int32_t off = 0);
    ValueId load8(ValueId addr, int32_t off = 0);
    ValueId binop(IrOp op, ValueId a, ValueId b);
    ValueId binopI(IrOp op, ValueId a, int32_t imm);
    ValueId add(ValueId a, ValueId b) { return binop(IrOp::Add, a, b); }
    ValueId sub(ValueId a, ValueId b) { return binop(IrOp::Sub, a, b); }
    ValueId and_(ValueId a, ValueId b) { return binop(IrOp::And, a, b); }
    ValueId or_(ValueId a, ValueId b) { return binop(IrOp::Or, a, b); }
    ValueId xor_(ValueId a, ValueId b) { return binop(IrOp::Xor, a, b); }
    ValueId shl(ValueId a, ValueId b) { return binop(IrOp::Shl, a, b); }
    ValueId shr(ValueId a, ValueId b) { return binop(IrOp::Shr, a, b); }
    ValueId sar(ValueId a, ValueId b) { return binop(IrOp::Sar, a, b); }
    ValueId mul(ValueId a, ValueId b) { return binop(IrOp::Mul, a, b); }
    ValueId divu(ValueId a, ValueId b)
    {
        return binop(IrOp::Divu, a, b);
    }
    ValueId addI(ValueId a, int32_t i) { return binopI(IrOp::Add, a, i); }
    ValueId subI(ValueId a, int32_t i) { return binopI(IrOp::Sub, a, i); }
    ValueId andI(ValueId a, int32_t i) { return binopI(IrOp::And, a, i); }
    ValueId orI(ValueId a, int32_t i) { return binopI(IrOp::Or, a, i); }
    ValueId xorI(ValueId a, int32_t i) { return binopI(IrOp::Xor, a, i); }
    ValueId shlI(ValueId a, int32_t i) { return binopI(IrOp::Shl, a, i); }
    ValueId shrI(ValueId a, int32_t i) { return binopI(IrOp::Shr, a, i); }
    ValueId sarI(ValueId a, int32_t i) { return binopI(IrOp::Sar, a, i); }
    ValueId mulI(ValueId a, int32_t i) { return binopI(IrOp::Mul, a, i); }
    ValueId divuI(ValueId a, int32_t i)
    {
        return binopI(IrOp::Divu, a, i);
    }
    ValueId call(uint32_t fn, std::initializer_list<ValueId> args);
    ValueId callInd(ValueId fp, std::initializer_list<ValueId> args);
    ValueId syscall(std::initializer_list<ValueId> args);
    /** @} */

    /** Non-value instructions. @{ */
    void store(ValueId addr, ValueId val, int32_t off = 0);
    void store8(ValueId addr, ValueId val, int32_t off = 0);
    /** Write into an existing value (mutable-value IR). */
    void assign(ValueId dst, ValueId src);
    void assignConst(ValueId dst, int32_t v);
    /** dst = a op b into an existing value. */
    void assignBinop(IrOp op, ValueId dst, ValueId a, ValueId b);
    void assignBinopI(IrOp op, ValueId dst, ValueId a, int32_t imm);
    void br(uint32_t bb);
    void condBr(Cond c, ValueId a, ValueId b, uint32_t bb_true,
                uint32_t bb_false);
    void condBrI(Cond c, ValueId a, int32_t imm, uint32_t bb_true,
                 uint32_t bb_false);
    void ret(ValueId v = kNoValue);
    void callVoid(uint32_t fn, std::initializer_list<ValueId> args);
    void syscallVoid(std::initializer_list<ValueId> args);
    /** @} */

    /**
     * Non-local control flow (Section 5.3's setjmp/longjmp support).
     * @p buf must point at a 40-byte jmp_buf (10 words: sp, resume
     * address, delivered value, callee-saved registers). Returns the
     * value observed at the resume point: 0 on the initial fall
     * through, the longJmp value (coerced to >= 1) after a jump.
     * Opens and enters the resume block.
     */
    ValueId setJmp(ValueId buf);
    /** Jump to the continuation in @p buf, delivering @p val. */
    void longJmp(ValueId buf, ValueId val);

    /** Convenience: emit WriteWord(v) through the syscall interface. */
    void emitWriteWord(ValueId v);
    /** Convenience: emit Exit(code). */
    void emitExit(ValueId code);

    IrModule &module() { return _module; }

  private:
    IrInst &append(IrInst inst);
    IrFunction &fn();

    IrModule &_module;
    uint32_t _curFn = 0;
    uint32_t _curBlock = 0;
    bool _inFunction = false;
};

} // namespace hipstr

#endif // HIPSTR_IR_BUILDER_HH
