/**
 * @file
 * Backward liveness dataflow over IR values, plus the stack-derivation
 * analysis the migration-safety classifier consumes.
 *
 * The paper's PSR runtime performs "sophisticated liveness analysis"
 * (Section 5.2) and a "single basic block look-ahead liveness analysis"
 * for call transformation (Section 5.1); this module is the static half
 * of that machinery. Its results are baked into the fat binary's
 * extended symbol table.
 */

#ifndef HIPSTR_IR_LIVENESS_HH
#define HIPSTR_IR_LIVENESS_HH

#include <vector>

#include "ir/ir.hh"
#include "support/bitset.hh"

namespace hipstr
{

/** Liveness and pointer-derivation facts for one function. */
class Liveness
{
  public:
    explicit Liveness(const IrFunction &fn);

    /** Values live at entry to block @p bb. */
    const DenseBitSet &liveIn(uint32_t bb) const { return _liveIn[bb]; }
    /** Values live at exit of block @p bb. */
    const DenseBitSet &liveOut(uint32_t bb) const
    {
        return _liveOut[bb];
    }

    /**
     * Values live immediately before instruction @p inst_idx of block
     * @p bb (recomputed by a backward scan from liveOut).
     */
    DenseBitSet liveBefore(uint32_t bb, size_t inst_idx) const;

    /**
     * True if value @p v may hold a pointer into the current stack
     * frame (derived from a FrameAddr through copies and arithmetic).
     * Loads are conservatively treated as not stack-derived; the
     * workloads never store frame pointers to memory, which the
     * authoring guidelines in src/workloads document.
     *
     * Stack-derived live values are what make a basic-block boundary
     * unsafe for cross-ISA migration: PSR randomizes frame layouts
     * independently per ISA, so a raw frame pointer from ISA A dangles
     * on ISA B unless the on-demand machinery patches it.
     */
    bool stackDerived(ValueId v) const { return _stackDerived[v]; }

    const std::vector<bool> &stackDerivedAll() const
    {
        return _stackDerived;
    }

    /**
     * A stack-derived value is *simple* when it is an affine function
     * of the frame base (FrameAddr plus copies and additive arithmetic
     * with non-derived operands). Simple values can be rebased by the
     * on-demand migration machinery (new = old + sp_delta); complex
     * derivations (multiplied, xor-ed, or combined pointers) cannot,
     * which is what separates the paper's 45% baseline-safe blocks
     * from the 78% reachable with on-demand migration (Section 5.2).
     */
    bool
    stackSimple(ValueId v) const
    {
        return _stackDerived[v] && !_stackComplex[v];
    }

    std::vector<bool>
    stackSimpleAll() const
    {
        std::vector<bool> out(_stackDerived.size());
        for (size_t v = 0; v < out.size(); ++v)
            out[v] = _stackDerived[v] && !_stackComplex[v];
        return out;
    }

  private:
    const IrFunction &_fn;
    std::vector<DenseBitSet> _liveIn;
    std::vector<DenseBitSet> _liveOut;
    std::vector<bool> _stackDerived;
    std::vector<bool> _stackComplex;
};

} // namespace hipstr

#endif // HIPSTR_IR_LIVENESS_HH
