/**
 * @file
 * Three-address intermediate representation for the multi-ISA compiler.
 *
 * The IR is deliberately not SSA: virtual registers ("values") are
 * mutable, which keeps workload authoring simple and matches the
 * fixed-stack-slot model the paper's extended symbol table describes —
 * every value owns one canonical frame slot in the common frame map,
 * and the per-ISA register allocators decide independently which values
 * additionally live in registers.
 *
 * Functions take up to four parameters (in values v0..v3) and return at
 * most one word. Function pointers are represented as function IDs and
 * dispatched through a per-ISA function table, which keeps them
 * ISA-agnostic — a requirement for cross-ISA migration.
 */

#ifndef HIPSTR_IR_IR_HH
#define HIPSTR_IR_IR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace hipstr
{

/** A virtual register id, local to a function. */
using ValueId = uint32_t;
constexpr ValueId kNoValue = 0xffffffff;

/** Maximum number of register-passed parameters. */
constexpr unsigned kMaxParams = 4;

/** IR opcodes. */
enum class IrOp : uint8_t
{
    ConstI,     ///< dst = imm
    Copy,       ///< dst = a
    FrameAddr,  ///< dst = &frameObject[id] + imm
    GlobalAddr, ///< dst = &global[id] + imm
    FuncAddr,   ///< dst = function id of fn (an ISA-agnostic fn pointer)
    Load,       ///< dst = mem32[a + imm]
    Store,      ///< mem32[a + imm] = b
    Load8,      ///< dst = zext(mem8[a + imm])
    Store8,     ///< mem8[a + imm] = low8(b)
    Add, Sub, And, Or, Xor, Shl, Shr, Sar, Mul, Divu,
                ///< dst = a op b; when b == kNoValue the second operand
                ///< is the immediate @c imm
    Br,         ///< unconditional branch to bbTrue
    CondBr,     ///< if (a <cond> b) goto bbTrue else bbFalse; b may be
                ///< kNoValue to compare against @c imm
    Call,       ///< dst? = fn(args...)
    CallInd,    ///< dst? = (*a)(args...) — a holds a function id
    Ret,        ///< return a (or nothing if a == kNoValue)
    Syscall,    ///< dst = syscall(args[0]; args[1..3])
    SetJmp,     ///< non-local label: record continuation state into
                ///< jmp_buf at address a; control continues at block
                ///< bbTrue (the resume point). Terminator.
    LongJmp     ///< non-local jump: restore the continuation saved in
                ///< jmp_buf at address a, delivering value b to the
                ///< matching SetJmp's resume load. Terminator with no
                ///< static successors.
};

const char *irOpName(IrOp op);

/** True for ops that must terminate a basic block. */
bool isIrTerminator(IrOp op);

/** One IR instruction. Field use depends on @c op (see IrOp docs). */
struct IrInst
{
    IrOp op;
    Cond cond = Cond::Eq;          ///< CondBr only
    ValueId dst = kNoValue;
    ValueId a = kNoValue;
    ValueId b = kNoValue;
    int32_t imm = 0;               ///< immediate / displacement
    uint32_t id = 0;               ///< frame object / global / callee id
    uint32_t bbTrue = 0;           ///< Br/CondBr target
    uint32_t bbFalse = 0;          ///< CondBr fall-through target
    std::vector<ValueId> args;     ///< Call/CallInd/Syscall arguments
};

/** A straight-line block of IR instructions ending in a terminator. */
struct IrBlock
{
    std::vector<IrInst> insts;
};

/**
 * A stack-allocated object (array or address-taken variable). Frame
 * objects are *fixed* in the paper's terminology: their frame offsets
 * are identical across ISAs and PSR does not relocate them, because
 * pointers to them flow through ordinary values.
 */
struct FrameObject
{
    std::string name;
    uint32_t size;   ///< bytes
    uint32_t align;  ///< power of two
};

/** A function. */
struct IrFunction
{
    std::string name;
    uint32_t id = 0;
    unsigned numParams = 0;    ///< params arrive in values 0..numParams-1
    uint32_t numValues = 0;    ///< total virtual registers
    std::vector<IrBlock> blocks;        ///< block 0 is the entry
    std::vector<FrameObject> frameObjects;
};

/** A global variable in the shared (ISA-agnostic) data section. */
struct GlobalVar
{
    std::string name;
    uint32_t size;                ///< bytes (>= init.size())
    uint32_t align;
    std::vector<uint8_t> init;    ///< initial bytes; rest zero-filled
};

/** A whole program. */
struct IrModule
{
    std::string name;
    std::vector<IrFunction> functions;
    std::vector<GlobalVar> globals;
    uint32_t entryFunc = 0;

    const IrFunction &function(uint32_t id) const
    {
        return functions.at(id);
    }
};

/** Append the value ids @p inst reads to @p uses. */
void collectIrUses(const IrInst &inst, std::vector<ValueId> &uses);

/** Value written by @p inst, or kNoValue. */
ValueId irDefinedValue(const IrInst &inst);

/** Successor block ids of a terminator (empty for Ret). */
std::vector<uint32_t> irSuccessors(const IrInst &terminator);

/**
 * Check structural invariants: every block ends in exactly one
 * terminator (and contains no mid-block terminators), branch targets
 * and callee/global/frame ids are in range, value ids are in range,
 * and argument counts respect kMaxParams.
 *
 * @return empty string if the module is well-formed, else a diagnostic.
 */
std::string verifyModule(const IrModule &module);

/** Human-readable dump (for tests and debugging). */
std::string printFunction(const IrFunction &fn);
std::string printModule(const IrModule &module);

} // namespace hipstr

#endif // HIPSTR_IR_IR_HH
