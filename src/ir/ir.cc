#include "ir.hh"

#include <sstream>

#include "support/logging.hh"

namespace hipstr
{

const char *
irOpName(IrOp op)
{
    switch (op) {
      case IrOp::ConstI: return "const";
      case IrOp::Copy: return "copy";
      case IrOp::FrameAddr: return "frameaddr";
      case IrOp::GlobalAddr: return "globaladdr";
      case IrOp::FuncAddr: return "funcaddr";
      case IrOp::Load: return "load";
      case IrOp::Store: return "store";
      case IrOp::Load8: return "load8";
      case IrOp::Store8: return "store8";
      case IrOp::Add: return "add";
      case IrOp::Sub: return "sub";
      case IrOp::And: return "and";
      case IrOp::Or: return "or";
      case IrOp::Xor: return "xor";
      case IrOp::Shl: return "shl";
      case IrOp::Shr: return "shr";
      case IrOp::Sar: return "sar";
      case IrOp::Mul: return "mul";
      case IrOp::Divu: return "divu";
      case IrOp::Br: return "br";
      case IrOp::CondBr: return "condbr";
      case IrOp::Call: return "call";
      case IrOp::CallInd: return "callind";
      case IrOp::Ret: return "ret";
      case IrOp::Syscall: return "syscall";
      case IrOp::SetJmp: return "setjmp";
      case IrOp::LongJmp: return "longjmp";
    }
    return "?";
}

bool
isIrTerminator(IrOp op)
{
    return op == IrOp::Br || op == IrOp::CondBr || op == IrOp::Ret ||
        op == IrOp::SetJmp || op == IrOp::LongJmp;
}

/** Append the value ids an instruction reads to @p uses. */
void
collectIrUses(const IrInst &inst, std::vector<ValueId> &uses)
{
    switch (inst.op) {
      case IrOp::ConstI:
      case IrOp::FrameAddr:
      case IrOp::GlobalAddr:
      case IrOp::FuncAddr:
      case IrOp::Br:
        break;
      case IrOp::Copy:
      case IrOp::Load:
      case IrOp::Load8:
        uses.push_back(inst.a);
        break;
      case IrOp::Store:
      case IrOp::Store8:
        uses.push_back(inst.a);
        uses.push_back(inst.b);
        break;
      case IrOp::Add: case IrOp::Sub: case IrOp::And: case IrOp::Or:
      case IrOp::Xor: case IrOp::Shl: case IrOp::Shr: case IrOp::Sar:
      case IrOp::Mul: case IrOp::Divu:
      case IrOp::CondBr:
        uses.push_back(inst.a);
        if (inst.b != kNoValue)
            uses.push_back(inst.b);
        break;
      case IrOp::Call:
      case IrOp::Syscall:
        for (ValueId v : inst.args)
            uses.push_back(v);
        break;
      case IrOp::CallInd:
        uses.push_back(inst.a);
        for (ValueId v : inst.args)
            uses.push_back(v);
        break;
      case IrOp::Ret:
        if (inst.a != kNoValue)
            uses.push_back(inst.a);
        break;
      case IrOp::SetJmp:
        uses.push_back(inst.a);
        break;
      case IrOp::LongJmp:
        uses.push_back(inst.a);
        uses.push_back(inst.b);
        break;
    }
}

namespace
{

bool
writesDst(const IrInst &inst)
{
    switch (inst.op) {
      case IrOp::Store:
      case IrOp::Store8:
      case IrOp::Br:
      case IrOp::CondBr:
      case IrOp::Ret:
      case IrOp::SetJmp:
      case IrOp::LongJmp:
        return false;
      case IrOp::Call:
      case IrOp::CallInd:
      case IrOp::Syscall:
        return inst.dst != kNoValue;
      default:
        return true;
    }
}

} // namespace

ValueId
irDefinedValue(const IrInst &inst)
{
    return writesDst(inst) ? inst.dst : kNoValue;
}

std::vector<uint32_t>
irSuccessors(const IrInst &terminator)
{
    switch (terminator.op) {
      case IrOp::Br:
      case IrOp::SetJmp:
        return { terminator.bbTrue };
      case IrOp::CondBr:
        return { terminator.bbTrue, terminator.bbFalse };
      default:
        return {};
    }
}

std::string
verifyModule(const IrModule &module)
{
    std::ostringstream err;

    auto fail = [&](const IrFunction &fn, size_t bb, size_t i,
                    const std::string &msg) {
        err << module.name << ":" << fn.name << ":bb" << bb << ":" << i
            << ": " << msg;
        return err.str();
    };

    for (size_t fi = 0; fi < module.functions.size(); ++fi) {
        const IrFunction &fn = module.functions[fi];
        if (fn.id != fi)
            return fn.name + ": function id mismatch";
        if (fn.numParams > kMaxParams)
            return fn.name + ": too many parameters";
        if (fn.numParams > fn.numValues)
            return fn.name + ": params exceed value count";
        if (fn.blocks.empty())
            return fn.name + ": function has no blocks";

        for (size_t bb = 0; bb < fn.blocks.size(); ++bb) {
            const IrBlock &block = fn.blocks[bb];
            if (block.insts.empty())
                return fail(fn, bb, 0, "empty block");
            for (size_t i = 0; i < block.insts.size(); ++i) {
                const IrInst &inst = block.insts[i];
                bool is_last = (i == block.insts.size() - 1);
                if (isIrTerminator(inst.op) != is_last) {
                    return fail(fn, bb, i,
                                is_last ? "block does not end in a "
                                          "terminator"
                                        : "terminator in mid-block");
                }

                std::vector<ValueId> uses;
                collectIrUses(inst, uses);
                for (ValueId v : uses) {
                    if (v >= fn.numValues)
                        return fail(fn, bb, i, "use of out-of-range "
                                               "value");
                }
                if (writesDst(inst) && inst.dst >= fn.numValues)
                    return fail(fn, bb, i, "out-of-range destination");

                switch (inst.op) {
                  case IrOp::Br:
                  case IrOp::SetJmp:
                    if (inst.bbTrue >= fn.blocks.size())
                        return fail(fn, bb, i, "branch target out of "
                                               "range");
                    break;
                  case IrOp::CondBr:
                    if (inst.bbTrue >= fn.blocks.size() ||
                        inst.bbFalse >= fn.blocks.size()) {
                        return fail(fn, bb, i, "branch target out of "
                                               "range");
                    }
                    break;
                  case IrOp::Call:
                    if (inst.id >= module.functions.size())
                        return fail(fn, bb, i, "call to unknown "
                                               "function");
                    if (inst.args.size() >
                        module.functions[inst.id].numParams) {
                        return fail(fn, bb, i, "too many call "
                                               "arguments");
                    }
                    break;
                  case IrOp::CallInd:
                    if (inst.args.size() > kMaxParams)
                        return fail(fn, bb, i, "too many call "
                                               "arguments");
                    break;
                  case IrOp::Syscall:
                    if (inst.args.empty() || inst.args.size() > 4)
                        return fail(fn, bb, i, "syscall needs 1-4 "
                                               "arguments");
                    break;
                  case IrOp::FrameAddr:
                    if (inst.id >= fn.frameObjects.size())
                        return fail(fn, bb, i, "unknown frame object");
                    break;
                  case IrOp::GlobalAddr:
                    if (inst.id >= module.globals.size())
                        return fail(fn, bb, i, "unknown global");
                    break;
                  case IrOp::FuncAddr:
                    if (inst.id >= module.functions.size())
                        return fail(fn, bb, i, "unknown function");
                    break;
                  default:
                    break;
                }
            }
        }
    }

    if (module.entryFunc >= module.functions.size())
        return "entry function out of range";
    if (module.functions[module.entryFunc].numParams != 0)
        return "entry function must take no parameters";
    return "";
}

std::string
printFunction(const IrFunction &fn)
{
    std::ostringstream os;
    os << "func @" << fn.name << "(params=" << fn.numParams
       << ", values=" << fn.numValues << ")\n";
    for (size_t oi = 0; oi < fn.frameObjects.size(); ++oi) {
        const FrameObject &obj = fn.frameObjects[oi];
        os << "  frame #" << oi << " " << obj.name << " [" << obj.size
           << " bytes]\n";
    }
    for (size_t bb = 0; bb < fn.blocks.size(); ++bb) {
        os << " bb" << bb << ":\n";
        for (const IrInst &inst : fn.blocks[bb].insts) {
            os << "   ";
            if (writesDst(inst))
                os << "v" << inst.dst << " = ";
            os << irOpName(inst.op);
            if (inst.op == IrOp::CondBr)
                os << "." << condName(inst.cond);
            if (inst.a != kNoValue &&
                inst.op != IrOp::Ret)
                os << " v" << inst.a;
            if (inst.op == IrOp::Ret && inst.a != kNoValue)
                os << " v" << inst.a;
            if (inst.b != kNoValue)
                os << ", v" << inst.b;
            switch (inst.op) {
              case IrOp::ConstI:
              case IrOp::Load:
              case IrOp::Store:
              case IrOp::Load8:
              case IrOp::Store8:
              case IrOp::FrameAddr:
              case IrOp::GlobalAddr:
                os << ", imm=" << inst.imm;
                break;
              default:
                break;
            }
            switch (inst.op) {
              case IrOp::FrameAddr:
              case IrOp::GlobalAddr:
              case IrOp::FuncAddr:
              case IrOp::Call:
                os << ", id=" << inst.id;
                break;
              default:
                break;
            }
            if (inst.op == IrOp::Br)
                os << " bb" << inst.bbTrue;
            if (inst.op == IrOp::CondBr)
                os << " bb" << inst.bbTrue << ", bb" << inst.bbFalse;
            if (!inst.args.empty()) {
                os << " (";
                for (size_t k = 0; k < inst.args.size(); ++k) {
                    if (k)
                        os << ", ";
                    os << "v" << inst.args[k];
                }
                os << ")";
            }
            os << "\n";
        }
    }
    return os.str();
}

std::string
printModule(const IrModule &module)
{
    std::ostringstream os;
    os << "module " << module.name << "\n";
    for (const auto &fn : module.functions)
        os << printFunction(fn);
    return os.str();
}

} // namespace hipstr
