/**
 * @file
 * One protected worker process of the multi-tenant server: a private
 * guest address space, guest OS, and dual-ISA HipstrRuntime, plus the
 * lifecycle the paper's deployment story requires — timesliced
 * execution, crash detection, and Section 5.3 respawn with fresh
 * randomization.
 */

#ifndef HIPSTR_SERVER_GUEST_PROCESS_HH
#define HIPSTR_SERVER_GUEST_PROCESS_HH

#include <array>
#include <memory>

#include "binary/fatbin.hh"
#include "fault/plan.hh"
#include "hipstr/runtime.hh"
#include "isa/guest_os.hh"
#include "isa/memory.hh"

namespace hipstr
{

/** Scheduler-visible lifecycle state of a worker process. */
enum class ProcState : uint8_t
{
    Ready,   ///< has service budget; runnable on a core of isa()
    Running, ///< currently executing a quantum on some core
    Blocked, ///< idle: waiting for the server to assign a request
    Crashed, ///< terminal crash; awaiting respawn (or retirement)
    Exited   ///< guest exited and restart-on-exit is disabled
};

const char *procStateName(ProcState s);

/** Per-process configuration. */
struct GuestProcessConfig
{
    uint32_t pid = 0;

    /**
     * Server-wide seed. The process's PSR and policy seeds are
     * derived from (seed, pid) through SplitMix64; each respawn then
     * advances every VM's randomizer generation, so the effective
     * randomization is a pure function of (seed, pid, respawn count)
     * — the determinism contract the paper's Section 5.3 respawn
     * experiments rely on.
     */
    uint64_t seed = 0x5eed;

    /** Runtime template; seeds and (optionally) startIsa are derived. */
    HipstrConfig hipstr;

    /**
     * Alternate the start ISA by pid parity so a fresh worker pool
     * loads both core types evenly. Disable to honour
     * hipstr.startIsa for every pid (scheduler unit tests do).
     */
    bool alternateStartIsa = true;

    /** A finished guest program restarts to keep serving (httpd). */
    bool restartOnExit = true;

    /** Retained-output cap handed to GuestOs::setOutputCap(). */
    size_t outputCap = 4096;

    /**
     * Deterministic fault plan (src/fault), or nullptr for the
     * fault-free server. When set, every quantum consults the plan —
     * keyed on (pid, per-process quantum serial) so the schedule is
     * independent of host threading — and may have a transient fault
     * staged before it runs. nullptr leaves all hot paths untouched.
     */
    const FaultPlan *faultPlan = nullptr;

    /**
     * Watchdog: a worker wedged (burning timeslices without retiring
     * a single instruction) for this many consecutive quanta is killed
     * (Crashed with FaultKind::Watchdog) so the supervisor can respawn
     * it. 0 disables — a wedge then lasts its scheduled length.
     */
    uint32_t watchdogQuanta = 0;
};

/** Cumulative per-process accounting across restarts and respawns. */
struct GuestProcessStats
{
    uint64_t guestInsts = 0;
    std::array<uint64_t, kNumIsas> guestInstsPerIsa{};
    uint64_t quanta = 0;             ///< runQuantum() calls
    uint32_t migrations = 0;
    uint32_t migrationsDenied = 0;
    uint32_t crashes = 0;
    uint32_t respawns = 0;
    uint32_t programsCompleted = 0;  ///< clean guest exits
    uint32_t checksumMismatches = 0; ///< untainted run, wrong output
    uint32_t probesStaged = 0;       ///< attack/corruption injections
    /** Output bytes across all program generations (retention-free). */
    uint64_t outputBytes = 0;
    /** Faults staged by the fault plan, by FaultKind. */
    std::array<uint64_t, kNumFaultKinds> faultsInjected{};
    uint64_t wedgedQuanta = 0;   ///< quanta burned by a wedge
    uint32_t watchdogKills = 0;  ///< wedges the watchdog terminated
    uint32_t transformAborts = 0;
    uint32_t migrationsSuppressed = 0; ///< degraded-mode events
    /** Successful forced evacuations off a failed ISA. */
    uint32_t emergencyRelocations = 0;
    /**
     * Per-phase profile (translate / regalloc / relocation /
     * migration-transform), cumulative across restarts and respawns
     * (sourced from HipstrRuntime::phaseBreakdown(), which survives
     * runtime resets). Not folded into statsSignature() — the
     * signature covers scheduling-visible outcomes only.
     */
    telemetry::PhaseBreakdown phases;
};

/**
 * A worker process. All mutable state (Memory, GuestOs, the two PSR
 * VMs) is private to the process, so distinct processes may run
 * concurrently on different host threads; only the immutable
 * FatBinary is shared.
 *
 * Service model: the server assigns a request as an instruction
 * budget (beginService). The guest program is an httpd-style daemon;
 * when it exits cleanly mid-service it is transparently restarted
 * (warm caches, same randomization), so a request's cost may span
 * program generations. A crash instead marks the process Crashed and
 * only respawn() — fresh randomization, wiped address space — makes
 * it runnable again.
 */
class GuestProcess
{
  public:
    GuestProcess(const FatBinary &bin, const GuestProcessConfig &cfg);

    uint32_t pid() const { return _cfg.pid; }
    ProcState state() const { return _state; }

    /** ISA affinity: the core type the next quantum must run on. */
    IsaKind isa() const { return _runtime->currentIsa(); }

    /** Respawn generation (0 until the first crash respawn). */
    uint32_t respawnCount() const { return _stats.respawns; }

    /**
     * True when the most recent quantum ended in a successful
     * cross-ISA migration — the scheduler's cue that the requeue onto
     * the other queue is a security migration rather than a start-ISA
     * affinity after a restart or respawn.
     */
    bool lastQuantumMigrated() const { return _lastMigrated; }

    /**
     * Expected GuestOs output checksum of one complete, unmolested
     * program run; when set, every untainted clean exit is verified
     * against it (checksumMismatches counts failures).
     */
    void setExpectedChecksum(uint64_t sum)
    {
        _expectedChecksum = sum;
        _haveExpected = true;
    }

    /** Assign a request: @p insts of service budget. Blocked→Ready. */
    void beginService(uint64_t insts);
    uint64_t serviceRemaining() const { return _serviceRemaining; }

    /**
     * Run one quantum of at most @p maxInsts guest instructions
     * (clipped to the remaining service budget) and update the
     * lifecycle state:
     *  - StepLimit, budget left        → Ready
     *  - StepLimit, service complete   → Blocked
     *  - MigrationRequested            → Ready on the *other* ISA
     *  - clean exit (restartOnExit)    → program restarted; Ready or
     *                                    Blocked by remaining budget
     *  - crash                         → Crashed
     * @pre state() == Ready
     */
    QuantumResult runQuantum(uint64_t maxInsts);

    /**
     * Section 5.3 respawn after a crash: wipe the data/heap/stack
     * image, reload the fat binary, reset the guest OS, re-randomize
     * both PSR VMs (fresh relocation maps, flushed code caches), and
     * restart the program. Service budget carries over — the fresh
     * worker keeps serving the interrupted request.
     * @pre state() == Crashed
     */
    void respawn();

    /**
     * Stage an attack request: a ROP-style stack hijack that makes
     * the next quantum pop a cold, migration-safe code address — the
     * indirect-transfer cache miss HIPStR treats as a security event,
     * eligible for a genuine cross-ISA migration. Deterministic in
     * (@p nonce, current VM state). Returns false if no suitable
     * gadget/target exists (the request then runs clean).
     */
    bool injectAttackProbe(uint64_t nonce);

    /**
     * Stage a malformed request: the hijacked return targets the VM
     * code cache, which the Section 5.1 SFI rules punish with
     * immediate process termination (SfiViolation) — the crash that
     * exercises the respawn path.
     */
    bool injectCorruption(uint64_t nonce);

    /**
     * Why the process most recently crashed (FaultKind::None if it
     * never has). Injected faults are attributed to their injection
     * kind — a crash from an armed decode fault reports DecodeFault,
     * not the raw BadInst the VM observed.
     */
    const FaultInfo &lastFault() const { return _lastFault; }

    /**
     * Emergency evacuation off a failing ISA (degraded-mode reroute):
     * force-migrate to @p target at the next safe point. If no safe
     * transform point exists within @p search_budget the process is
     * instead hard-respawned (Section 5.3 semantics) directly onto
     * @p target — state is lost but the service budget carries over.
     * Returns true for a live migration, false for the respawn path.
     */
    bool relocateToIsa(IsaKind target,
                       uint64_t search_budget = 200'000);

    /** Retarget the ISA future respawns/restarts boot on. */
    void setStartIsa(IsaKind isa) { _runtime->setStartIsa(isa); }

    /** Degraded single-ISA mode (forwarded to the runtime). @{ */
    void setMigrationSuspended(bool s)
    {
        _runtime->setMigrationSuspended(s);
    }
    bool migrationSuspended() const
    {
        return _runtime->migrationSuspended();
    }
    /** @} */

    /**
     * Checkpoint the complete process: lifecycle state, service
     * budget, cumulative stats, fault bookkeeping, guest OS (with
     * retained-output checksum), the dual-ISA runtime, and the
     * data/heap/stack memory image ([kDataBase, kStackTop), zero
     * pages skipped). Restore into a process constructed from the
     * identical (FatBinary, GuestProcessConfig); the restored guest
     * continues byte-identically while its translation caches
     * rebuild cold. May not be called mid-quantum. @{
     */
    void saveState(ByteWriter &w) const;
    void loadState(ByteReader &r);
    /** @} */

    /** Cumulative stats, including the live (un-reset) runtime epoch. */
    GuestProcessStats stats() const;

    /** Security events observed by both VMs (never reset). */
    uint64_t securityEvents() const;

    /** FNV-1a fold of the stats a determinism check should cover. */
    uint64_t statsSignature() const;

    HipstrRuntime &runtime() { return *_runtime; }
    GuestOs &os() { return _os; }
    Memory &mem() { return _mem; }

  private:
    /** Warm restart after a clean exit: same randomization. */
    void restartProgram();
    /** The wipe/reload/re-randomize core of respawn(). */
    void respawnImage();
    /** Apply one scheduled fault before the quantum runs. */
    void stageInjectedFault(const QuantumFault &f);
    /** Accrue the runtime's summary into _stats (before a reset). */
    void foldSummary();
    /** Stage a return-to-@p target hijack in the current VM. */
    bool stageHijack(Addr target, bool build_frame,
                     uint32_t frame_func);
    /** First Ret instruction of @p fi's code, or 0. */
    Addr findRetAddr(const FuncInfo &fi) const;

    const FatBinary &_bin;
    GuestProcessConfig _cfg;
    Memory _mem;
    GuestOs _os;
    std::unique_ptr<HipstrRuntime> _runtime;

    ProcState _state = ProcState::Blocked;
    uint64_t _serviceRemaining = 0;
    bool _lastMigrated = false;
    bool _tainted = false; ///< this program run was attacked
    uint64_t _expectedChecksum = 0;
    bool _haveExpected = false;
    GuestProcessStats _stats;

    /** Quanta started by this process, ever — the fault-plan key. */
    uint64_t _quantumSerial = 0;
    uint32_t _wedgeRemaining = 0; ///< quanta left in the active wedge
    uint32_t _wedgeStreak = 0;    ///< consecutive wedged quanta seen
    FaultInfo _lastFault;
    /** Injected kind awaiting attribution at the next crash. */
    FaultKind _pendingKind = FaultKind::None;
};

} // namespace hipstr

#endif // HIPSTR_SERVER_GUEST_PROCESS_HH
