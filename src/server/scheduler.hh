/**
 * @file
 * Quantum-based process scheduler for the heterogeneous-ISA CMP.
 *
 * Time advances in rounds: each round assigns every core at most one
 * Ready process of the core's ISA, runs all assigned processes for
 * one quantum concurrently (each process's state is private, so the
 * quanta are embarrassingly parallel), then folds the outcomes back
 * in fixed core order. A process whose quantum ended in a successful
 * security migration comes back with the opposite ISA affinity and is
 * simply requeued on the other queue — the paper's "move the program
 * to a core of the other ISA" is literally a requeue here. Crashed
 * processes are respawned through GuestProcess::respawn() (fresh
 * randomization, Section 5.3) up to a configurable limit.
 *
 * Determinism: assignment and merge order are pure functions of
 * (configuration, queue contents), queues change only in that fixed
 * order, and each quantum touches only process-private state — so a
 * server run is byte-identical for every HIPSTR_JOBS value.
 */

#ifndef HIPSTR_SERVER_SCHEDULER_HH
#define HIPSTR_SERVER_SCHEDULER_HH

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "fault/plan.hh"
#include "server/cmp_model.hh"
#include "server/guest_process.hh"
#include "support/parallel.hh"
#include "telemetry/trace.hh"

namespace hipstr
{

/**
 * Supervision policy for crashed workers. The zero defaults reproduce
 * the legacy scheduler exactly: a crashed process is respawned in the
 * same merge step that observed the crash, no state is parked, no
 * counter moves — so a fault-free server is byte-identical to one
 * built before supervision existed.
 */
struct SupervisorConfig
{
    /**
     * First-crash respawn delay in scheduler rounds; each consecutive
     * crash doubles it (capped below). 0 = respawn immediately in the
     * observing round, the legacy behaviour.
     */
    uint32_t backoffBaseRounds = 0;

    /** Ceiling of the exponential backoff, in rounds. */
    uint32_t backoffCapRounds = 64;

    /**
     * Consecutive crashes (without an intervening clean quantum)
     * before the worker is quarantined — parked for quarantineRounds,
     * then respawned with fresh randomization and a cleared streak.
     * 0 = never quarantine.
     */
    uint32_t quarantineAfter = 0;

    /** Park length of a quarantine, in rounds. */
    uint32_t quarantineRounds = 64;
};

/** Scheduling knobs. */
struct SchedulerConfig
{
    /** Timeslice per core per round, in guest instructions. */
    uint64_t quantumInsts = 20'000;

    /**
     * Crash respawns allowed per process before it is retired;
     * 0 = unlimited (a production server keeps respawning its
     * workers — the limit exists for experiments).
     */
    uint32_t respawnLimit = 0;

    /** Crash-recovery policy (defaults = legacy immediate respawn). */
    SupervisorConfig supervisor;
};

/** Aggregate scheduler counters. */
struct SchedulerStats
{
    uint64_t rounds = 0;
    uint64_t quantaRun = 0;
    uint64_t idleCoreQuanta = 0; ///< core-rounds with no Ready process
    uint32_t migrationsRouted = 0; ///< requeues onto the other ISA
    uint32_t respawns = 0;
    uint32_t retired = 0; ///< processes past the respawn limit

    /** Fault-plan core outages (all zero without a plan). @{ */
    uint64_t offlineCoreQuanta = 0; ///< core-rounds lost to outages
    uint32_t coreOutages = 0;
    uint32_t coreRecoveries = 0;
    /** @} */

    /** Degraded single-ISA mode (an entire ISA offline). @{ */
    uint32_t degradedEntries = 0;
    uint32_t degradedExits = 0;
    uint64_t degradedRounds = 0;
    uint32_t reroutes = 0;        ///< live evacuations off a dead ISA
    uint32_t rerouteRespawns = 0; ///< evacuations that hard-respawned
    /** @} */

    /** Supervisor (infirmary) activity. @{ */
    uint32_t quarantines = 0;
    uint32_t recoveries = 0; ///< infirmary releases back to service
    uint64_t recoveryRoundsSum = 0; ///< crash→release round gaps
    /** @} */
};

/** The scheduler. Processes are owned by the caller. */
class CmpScheduler
{
  public:
    CmpScheduler(const CmpModel &cmp, const SchedulerConfig &cfg);

    /**
     * Optional structured-trace sink (TraceCategory::Scheduler:
     * per-core quantum spans, respawns, retirements, migration
     * routing). Events are recorded from the *sequential* merge
     * section in fixed core order, on the modeled timeline (rounds
     * through the CMP's aggregate rate), so a trace is as
     * reproducible as the schedule itself.
     */
    telemetry::TraceBuffer *trace = nullptr;

    /**
     * Deterministic fault plan, or nullptr (the default) for the
     * fault-free scheduler. When set, each round first consults the
     * plan for core outages — an offline core is skipped at
     * assignment (offlineCoreQuanta) until its scheduled recovery —
     * and an ISA whose cores are all offline puts the server in
     * degraded mode: migration is suspended on every worker, workers
     * stranded on the dead ISA's queue are evacuated, and dual-ISA
     * protection resumes when the outage ends.
     */
    const FaultPlan *faultPlan = nullptr;

    /**
     * Make a Ready process schedulable. Must be called once per
     * Ready transition the scheduler did not make itself (i.e. after
     * GuestProcess::beginService); a process must never be enqueued
     * twice.
     */
    void notifyReady(GuestProcess *p);

    /**
     * Run one round: one quantum on every core that has a matching
     * Ready process. Quanta execute concurrently on @p pool (the
     * global pool when null). Returns the number of quanta run — 0
     * means every queue was empty.
     */
    unsigned round(ThreadPool *pool = nullptr);

    /** True when no process is queued on either ISA. */
    bool idle() const;

    const SchedulerStats &stats() const { return _stats; }
    const SchedulerConfig &config() const { return _cfg; }

    /** Processes retired after exceeding the respawn limit. */
    const std::vector<GuestProcess *> &retired() const
    {
        return _retired;
    }

    /** True when @p p has been permanently retired (vs. merely parked
     *  Crashed in the infirmary awaiting its respawn round). */
    bool isRetired(const GuestProcess *p) const;

    /** True while any crashed worker is parked awaiting respawn. */
    bool hasConvalescents() const { return !_infirmary.empty(); }

    /** Crashed workers parked awaiting respawn — the fleet balancer's
     *  respawn-storm signal (src/fleet). */
    size_t convalescentCount() const { return _infirmary.size(); }

    /** Core/ISA availability under the fault plan. @{ */
    bool coreOnline(unsigned coreId) const;
    bool isaOffline(IsaKind isa) const
    {
        return _isaOffline[static_cast<size_t>(isa)];
    }
    /** Degraded mode: at least one entire ISA is offline. */
    bool degraded() const
    {
        return _isaOffline[0] || _isaOffline[1];
    }
    /** @} */

    /**
     * Checkpoint the scheduler: queue contents (as pids), stats,
     * outage state, infirmary and crash streaks. Restore requires a
     * scheduler over the identical CmpModel/config plus a @p resolve
     * function mapping a pid back to its (already restored)
     * GuestProcess. faultPlan/trace wiring is the caller's. @{
     */
    void saveState(ByteWriter &w) const;
    void loadState(ByteReader &r,
                   const std::function<GuestProcess *(uint32_t)>
                       &resolve);
    /** @} */

    /** Mean crash→release gap of infirmary recoveries, in rounds. */
    double meanRoundsToRecover() const
    {
        return _stats.recoveries == 0
            ? 0.0
            : double(_stats.recoveryRoundsSum) / _stats.recoveries;
    }

  private:
    /** A crashed worker parked for a later respawn round. */
    struct Convalescent
    {
        GuestProcess *p;
        uint64_t crashRound;
        uint64_t releaseRound;
        bool quarantined;
    };

    /**
     * Fault supervision, run once at the head of every round while a
     * plan is attached or workers are parked: advance core outages,
     * track degraded mode, evacuate stranded queues, and release due
     * convalescents. Everything iterates in fixed (core id / pid)
     * order, so supervision is as deterministic as the schedule.
     */
    void superviseRound(bool traced, double round_ts);

    /**
     * Handle a crash observed in the merge step: retire past the
     * respawn limit, quarantine past the streak limit, park with
     * exponential backoff, or — with supervision disabled — respawn
     * immediately (the legacy path). Returns true iff the process was
     * respawned in place and is runnable again this round.
     */
    bool superviseCrash(GuestProcess *p, unsigned coreId,
                        double round_ts, bool traced);

    const CmpModel &_cmp;
    SchedulerConfig _cfg;
    double _usPerRound = 0; ///< modeled microseconds per round
    std::array<std::deque<GuestProcess *>, kNumIsas> _ready;
    std::vector<GuestProcess *> _retired;
    SchedulerStats _stats;

    /** Round the core comes back (0 = online); indexed by core id. */
    std::vector<uint64_t> _coreOfflineUntil;
    std::array<bool, kNumIsas> _isaOffline{};
    /** Parked crashed workers, keyed by pid for deterministic order. */
    std::map<uint32_t, Convalescent> _infirmary;
    /** Consecutive-crash streaks, keyed by pid. */
    std::map<uint32_t, uint32_t> _streak;
};

} // namespace hipstr

#endif // HIPSTR_SERVER_SCHEDULER_HH
