/**
 * @file
 * Quantum-based process scheduler for the heterogeneous-ISA CMP.
 *
 * Time advances in rounds: each round assigns every core at most one
 * Ready process of the core's ISA, runs all assigned processes for
 * one quantum concurrently (each process's state is private, so the
 * quanta are embarrassingly parallel), then folds the outcomes back
 * in fixed core order. A process whose quantum ended in a successful
 * security migration comes back with the opposite ISA affinity and is
 * simply requeued on the other queue — the paper's "move the program
 * to a core of the other ISA" is literally a requeue here. Crashed
 * processes are respawned through GuestProcess::respawn() (fresh
 * randomization, Section 5.3) up to a configurable limit.
 *
 * Determinism: assignment and merge order are pure functions of
 * (configuration, queue contents), queues change only in that fixed
 * order, and each quantum touches only process-private state — so a
 * server run is byte-identical for every HIPSTR_JOBS value.
 */

#ifndef HIPSTR_SERVER_SCHEDULER_HH
#define HIPSTR_SERVER_SCHEDULER_HH

#include <array>
#include <deque>
#include <vector>

#include "server/cmp_model.hh"
#include "server/guest_process.hh"
#include "support/parallel.hh"
#include "telemetry/trace.hh"

namespace hipstr
{

/** Scheduling knobs. */
struct SchedulerConfig
{
    /** Timeslice per core per round, in guest instructions. */
    uint64_t quantumInsts = 20'000;

    /**
     * Crash respawns allowed per process before it is retired;
     * 0 = unlimited (a production server keeps respawning its
     * workers — the limit exists for experiments).
     */
    uint32_t respawnLimit = 0;
};

/** Aggregate scheduler counters. */
struct SchedulerStats
{
    uint64_t rounds = 0;
    uint64_t quantaRun = 0;
    uint64_t idleCoreQuanta = 0; ///< core-rounds with no Ready process
    uint32_t migrationsRouted = 0; ///< requeues onto the other ISA
    uint32_t respawns = 0;
    uint32_t retired = 0; ///< processes past the respawn limit
};

/** The scheduler. Processes are owned by the caller. */
class CmpScheduler
{
  public:
    CmpScheduler(const CmpModel &cmp, const SchedulerConfig &cfg);

    /**
     * Optional structured-trace sink (TraceCategory::Scheduler:
     * per-core quantum spans, respawns, retirements, migration
     * routing). Events are recorded from the *sequential* merge
     * section in fixed core order, on the modeled timeline (rounds
     * through the CMP's aggregate rate), so a trace is as
     * reproducible as the schedule itself.
     */
    telemetry::TraceBuffer *trace = nullptr;

    /**
     * Make a Ready process schedulable. Must be called once per
     * Ready transition the scheduler did not make itself (i.e. after
     * GuestProcess::beginService); a process must never be enqueued
     * twice.
     */
    void notifyReady(GuestProcess *p);

    /**
     * Run one round: one quantum on every core that has a matching
     * Ready process. Quanta execute concurrently on @p pool (the
     * global pool when null). Returns the number of quanta run — 0
     * means every queue was empty.
     */
    unsigned round(ThreadPool *pool = nullptr);

    /** True when no process is queued on either ISA. */
    bool idle() const;

    const SchedulerStats &stats() const { return _stats; }
    const SchedulerConfig &config() const { return _cfg; }

    /** Processes retired after exceeding the respawn limit. */
    const std::vector<GuestProcess *> &retired() const
    {
        return _retired;
    }

  private:
    const CmpModel &_cmp;
    SchedulerConfig _cfg;
    double _usPerRound = 0; ///< modeled microseconds per round
    std::array<std::deque<GuestProcess *>, kNumIsas> _ready;
    std::vector<GuestProcess *> _retired;
    SchedulerStats _stats;
};

} // namespace hipstr

#endif // HIPSTR_SERVER_SCHEDULER_HH
