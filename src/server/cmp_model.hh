/**
 * @file
 * Model of the heterogeneous-ISA chip multiprocessor the server
 * subsystem schedules onto: N Risc cores plus M Cisc cores sharing
 * one physical machine (the paper's Section 3.5 deployment). Each
 * core carries its Table 1 CoreConfig, which the server's throughput
 * accounting uses to convert guest instructions into modeled time.
 */

#ifndef HIPSTR_SERVER_CMP_MODEL_HH
#define HIPSTR_SERVER_CMP_MODEL_HH

#include <string>
#include <vector>

#include "isa/isa.hh"
#include "sim/core_config.hh"

namespace hipstr
{

/** Core counts of the modeled CMP. */
struct CmpConfig
{
    unsigned riscCores = 2;
    unsigned ciscCores = 2;
};

/** One core of the CMP. */
struct CmpCore
{
    unsigned id = 0; ///< dense index, Risc cores first
    IsaKind isa = IsaKind::Risc;
};

/**
 * The machine. Core order is fixed (all Risc cores, then all Cisc
 * cores) so every scheduler decision keyed on core index is a pure
 * function of the configuration.
 */
class CmpModel
{
  public:
    explicit CmpModel(const CmpConfig &cfg);

    const std::vector<CmpCore> &cores() const { return _cores; }
    unsigned totalCores() const
    {
        return static_cast<unsigned>(_cores.size());
    }
    unsigned count(IsaKind isa) const
    {
        return _count[static_cast<size_t>(isa)];
    }

    /** Table 1 parameters of @p core. */
    const CoreConfig &configOf(const CmpCore &core) const
    {
        return coreConfig(core.isa);
    }

    /**
     * Modeled guest instructions per second of one @p isa core:
     * baseIpc * frequency. The server divides instruction counts by
     * this to report latency and throughput in modeled time.
     */
    double instsPerSecond(IsaKind isa) const;

    /** Aggregate modeled instructions per second of the whole CMP. */
    double aggregateInstsPerSecond() const;

    /** One-line human description, e.g. "2xRisc + 2xCisc". */
    std::string describe() const;

  private:
    CmpConfig _cfg;
    std::vector<CmpCore> _cores;
    unsigned _count[kNumIsas] = { 0, 0 };
};

} // namespace hipstr

#endif // HIPSTR_SERVER_CMP_MODEL_HH
