/**
 * @file
 * The protected-server front-end: a pool of HIPStR-protected worker
 * processes on a modeled heterogeneous-ISA CMP serving a synthetic
 * request stream — the paper's Section 3.5/5.3 deployment scenario
 * made runnable. Records per-request latency, throughput in modeled
 * time, and the defense's bookkeeping (security events, migrations,
 * crashes, respawns).
 */

#ifndef HIPSTR_SERVER_PROTECTED_SERVER_HH
#define HIPSTR_SERVER_PROTECTED_SERVER_HH

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "binary/fatbin.hh"
#include "fault/plan.hh"
#include "server/cmp_model.hh"
#include "server/guest_process.hh"
#include "server/request_stream.hh"
#include "server/scheduler.hh"
#include "support/serialize.hh"
#include "telemetry/metrics.hh"

namespace hipstr
{

namespace attack
{
class CampaignEngine;
}

/**
 * Observation/substitution seam for the record/replay layer
 * (src/replay). The server consults the tap at the three points where
 * its behaviour is not a pure function of the configuration alone:
 * request materialization, and the end of every scheduler round. A
 * null tap (the default) leaves the serve loop exactly as it was —
 * every hook sits on a per-round (not per-instruction) path, so even
 * a non-null tap costs nothing measurable.
 */
class ServerTap
{
  public:
    virtual ~ServerTap() = default;

    /**
     * Offer to supply request @p id instead of drawing it from the
     * stream (a replayer answers from its journal). Return false to
     * let the server draw normally.
     */
    virtual bool supplyRequest(uint64_t id, Request &out)
    {
        (void)id;
        (void)out;
        return false;
    }

    /** A request was drawn from the live stream (a recorder logs it). */
    virtual void requestDrawn(const Request &r) { (void)r; }

    /**
     * A scheduler round completed. @p syncSig is the server's
     * round-sync signature (roundSyncSignature()) — the recorder
     * journals it as a sync point; the replayer compares it against
     * the journal to detect divergence at round granularity.
     */
    virtual void roundEnd(uint64_t round, uint64_t syncSig)
    {
        (void)round;
        (void)syncSig;
    }
};

/** Full server configuration. */
struct ServerConfig
{
    unsigned workers = 8;        ///< worker process pool size
    CmpConfig cmp;               ///< modeled machine
    SchedulerConfig sched;       ///< quantum + respawn limit
    uint64_t requestCount = 1000;
    uint64_t seed = 0x5eed;      ///< stream + per-process seeds
    RequestMix mix;
    RequestCosts costs;
    HipstrConfig hipstr;         ///< per-worker runtime template
    size_t outputCap = 4096;     ///< per-worker retained output cap

    /**
     * Verify each worker's untainted program runs against a reference
     * interpreter checksum computed once up front.
     */
    bool verifyOutput = true;

    /**
     * Optional structured-trace sink. Wired through to the scheduler
     * (per-core quantum spans) and every worker runtime/VM, and used
     * by the server itself for request-lifecycle events
     * (TraceCategory::Server). nullptr disables all tracing.
     */
    telemetry::TraceBuffer *trace = nullptr;

    /**
     * Deterministic fault injection (src/fault). Disabled by default;
     * when faults.enabled the server builds one FaultPlan from this
     * config and wires it into the scheduler (core outages, degraded
     * mode) and every worker (transient quantum faults). With it
     * disabled the whole fault machinery is compiled in but
     * unreachable — a fault-free run is byte-identical to one built
     * without the subsystem.
     */
    FaultPlanConfig faults;

    /**
     * Kill a worker wedged for this many consecutive quanta
     * (GuestProcessConfig::watchdogQuanta). Only reachable with
     * faults.enabled — wedges come from the plan.
     */
    uint32_t watchdogQuanta = 4;

    /**
     * Optional metric sink: the run maintains a "server.degraded_mode"
     * gauge (1 while an entire ISA is offline) and, when faults are
     * enabled, publishes the fault/supervision counters at the end of
     * the run. nullptr disables.
     */
    telemetry::MetricRegistry *metrics = nullptr;

    /**
     * Record/replay tap (see ServerTap), or nullptr for the plain
     * server. Not part of the behavioural configuration: a tapped run
     * is byte-identical to an untapped one.
     */
    ServerTap *tap = nullptr;

    /**
     * Substitute fault plan (a replayer's journal-backed plan), used
     * instead of the one the server would build from `faults`. The
     * server does not own it. nullptr = build from `faults` normally.
     */
    const FaultPlan *faultPlanOverride = nullptr;

    /**
     * Shard mode (src/fleet): the server is one shard behind the
     * fleet balancer and serves externally submitted requests only.
     * stepRound() draws nothing from its own stream and never
     * self-finishes on requestCount — the owner decides when the run
     * is over. Completions and retired-worker retries are handed to
     * the callbacks below instead of the internal requeue, so the
     * fleet gets full per-request accounting. Both callbacks must be
     * set when shardMode is true.
     */
    bool shardMode = false;
    /** Shard mode: a request finished after @p latency rounds inside
     *  this shard. */
    std::function<void(const Request &, uint64_t latency)> onComplete;
    /** Shard mode: a worker retired mid-service; its request (retries
     *  already incremented) goes back to the fleet for re-routing. */
    std::function<void(const Request &)> onRetry;

    /**
     * Adaptive adversary campaign (src/attack/campaign.hh), or
     * nullptr for an unattacked server. The engine rewrites freshly
     * drawn requests into probes *before* the tap journals them (a
     * recorded campaign run replays bit-exactly with no engine
     * attached — pass nullptr when replaying) and receives probe
     * outcomes from the poll loop. Not owned.
     */
    attack::CampaignEngine *campaign = nullptr;
    /** Shard id this server reports on the campaign's outcome
     *  channel (the fleet sets it; 0 for a lone server). */
    uint32_t campaignShard = 0;
    /**
     * Whether this server owns the campaign's per-round commit. True
     * for a lone server; the fleet clears it on its shards and
     * commits once per fleet round itself, in shard-index order —
     * the invariance root under permuteShardStep.
     */
    bool campaignCommits = true;
};

/** Latency distribution in scheduler rounds. */
struct LatencySummary
{
    double meanRounds = 0;
    uint64_t p50Rounds = 0;
    uint64_t p95Rounds = 0;
    uint64_t maxRounds = 0;
};

/** Everything a server run produces. */
struct ServerReport
{
    uint64_t requestsServed = 0;
    uint64_t requestsAbandoned = 0; ///< all workers retired
    std::array<uint64_t, kNumRequestKinds> servedByKind{};
    uint64_t rounds = 0;
    uint64_t totalGuestInsts = 0;
    std::array<uint64_t, kNumIsas> guestInstsPerIsa{};

    uint32_t migrations = 0;        ///< successful cross-ISA switches
    uint32_t migrationsRouted = 0;  ///< scheduler requeues onto other ISA
    uint32_t migrationsDenied = 0;
    uint64_t securityEvents = 0;
    uint32_t crashes = 0;
    uint32_t respawns = 0;
    uint32_t retiredWorkers = 0;
    uint32_t programsCompleted = 0;
    uint32_t checksumMismatches = 0;
    uint32_t probesStaged = 0;

    /** Fault-injection & supervision outcome (all zero when the
     *  fault plan is disabled). @{ */
    std::array<uint64_t, kNumFaultKinds> faultsInjected{};
    uint64_t faultsInjectedTotal = 0;
    uint64_t wedgedQuanta = 0;
    uint32_t watchdogKills = 0;
    uint32_t transformAborts = 0;
    uint32_t migrationsSuppressed = 0;
    uint32_t emergencyRelocations = 0;
    uint32_t coreOutages = 0;
    uint32_t coreRecoveries = 0;
    uint64_t offlineCoreQuanta = 0;
    uint32_t degradedEntries = 0;
    uint32_t degradedExits = 0;
    uint64_t degradedRounds = 0;
    uint32_t reroutes = 0;
    uint32_t rerouteRespawns = 0;
    uint32_t quarantines = 0;
    uint32_t recoveries = 0;
    double meanRoundsToRecover = 0;
    /** @} */

    LatencySummary latency;
    /** Modeled wall time: rounds * quantum / aggregate CMP rate. */
    double modeledSeconds = 0;
    double requestsPerModeledSecond = 0;

    /**
     * Per-phase runtime profile summed over every worker (translate /
     * regalloc / relocation / migration-transform; modeled costs).
     */
    telemetry::PhaseBreakdown phases;

    /**
     * FNV-1a fold of every per-request record and every worker's
     * stats signature. Two runs of the same configuration must agree
     * byte-for-byte; comparing signatures is the cheap way to check.
     */
    uint64_t signature = 0;
};

/**
 * The server. Owns the worker pool and the scheduler; the fat binary
 * (shared, immutable) is owned by the caller.
 */
class ProtectedServer
{
  public:
    ProtectedServer(const FatBinary &bin, const ServerConfig &cfg);

    /**
     * Serve the whole request stream to completion (or until every
     * worker is retired) and return the report. Runs the per-round
     * quanta on @p pool (global pool when null). Exactly equivalent
     * to beginRun(); while (stepRound(pool)); finishRun().
     */
    ServerReport run(ThreadPool *pool = nullptr);

    /**
     * Stepwise serve-loop engine — the same loop run() executes, but
     * advanced one scheduler round at a time so a replayer (or the
     * introspection server) can pause between rounds, checkpoint, or
     * single-step. @{
     */
    /** Initialize the serve loop. Call once before stepRound(). */
    void beginRun();
    /**
     * Advance one round: assign requests, run one scheduler round,
     * poll outcomes. Returns false when the run is over (all requests
     * served, stream abandoned, or the round cap hit) — finishRun()
     * then produces the report.
     */
    bool stepRound(ThreadPool *pool = nullptr);
    /** Aggregate and return the report of the stepped run. */
    ServerReport finishRun();
    /** @} */

    /** Rounds completed so far in a stepped run. */
    uint64_t roundNumber() const { return _serve.roundNo; }

    /**
     * Shard-facing surface (shardMode; see ServerConfig). @{
     */
    /**
     * Submit one externally routed request. Queued at the shard's
     * intake tail; the next stepRound() assigns intake to idle
     * workers in pid order. Submitting more than admissionCapacity()
     * requests between rounds is allowed but leaves the excess queued
     * — the fleet's bounded admission queues avoid that by never
     * over-submitting.
     */
    void submitExternal(const Request &r);
    /** Workers that would accept a request next round: not retired,
     *  no request in flight, process Blocked awaiting service. */
    unsigned admissionCapacity() const;
    /** Workers not permanently retired. */
    unsigned liveWorkers() const;
    /** Externally submitted requests not yet assigned to a worker. */
    size_t queuedExternal() const { return _serve.requeue.size(); }
    /** @} */

    /**
     * FNV-1a fold of the serve-loop state that must agree between a
     * recording and its replay at the end of a round: round number,
     * requests done, next stream id, and every worker's stats
     * signature. Cheap relative to a round, but only computed when a
     * tap is attached.
     */
    uint64_t roundSyncSignature() const;

    /**
     * Checkpoint the complete server mid-run (between rounds): the
     * serve-loop state (in-flight requests, requeue, latency samples,
     * report signature accumulator), the scheduler (queues, outage
     * and infirmary state), and every worker process. Restore into a
     * server constructed from the identical (FatBinary, ServerConfig)
     * after beginRun(); the restored server continues byte-
     * identically. @{
     */
    void saveCheckpoint(ByteWriter &w) const;
    void loadCheckpoint(ByteReader &r);
    /** @} */

    const std::vector<std::unique_ptr<GuestProcess>> &workers() const
    {
        return _workers;
    }
    /** Mutable worker access (replay coin-feed wiring). */
    GuestProcess &worker(size_t i) { return *_workers[i]; }
    const CmpModel &cmp() const { return _cmp; }
    const CmpScheduler &scheduler() const { return _sched; }
    const ServerConfig &config() const { return _cfg; }
    /** The active fault plan (nullptr when faults are disabled). */
    const FaultPlan *faultPlan() const
    {
        return _cfg.faultPlanOverride != nullptr
            ? _cfg.faultPlanOverride
            : _plan.get();
    }

  private:
    /** Reference output checksum of one clean program run. */
    uint64_t referenceChecksum() const;

    /** Per-worker in-flight request bookkeeping. */
    struct InFlight
    {
        Request req;
        uint64_t startRound = 0;
        bool active = false;
        /** Staging-time facts for the campaign's compromise oracle
         *  and crash detection (captured at assignment). @{ */
        IsaKind assignIsa = IsaKind::Risc;
        uint32_t assignGeneration = 0;
        uint32_t assignRespawns = 0;
        bool crashSeen = false;
        /** @} */
    };

    /**
     * Everything the serve loop kept on run()'s stack before the
     * stepwise split — now a member so the loop can pause between
     * rounds and be checkpointed.
     */
    struct ServeState
    {
        ServerReport report; ///< served/abandoned counters accrue here
        std::vector<InFlight> inflight;
        std::vector<bool> retired;
        std::deque<Request> requeue; ///< from retired workers
        uint64_t nextId = 0;
        std::vector<uint64_t> latencies;
        uint64_t sig = 0xcbf29ce484222325ull;
        uint64_t roundNo = 0;
        uint64_t done = 0;
        bool wasDegraded = false;
        uint64_t degradedStart = 0;
        bool finished = false; ///< loop over; stepRound() refuses
        bool begun = false;
        /** Trace plumbing, fixed at beginRun(). @{ */
        bool traced = false;
        double usPerRound = 0;
        /** @} */
    };

    const FatBinary &_bin;
    ServerConfig _cfg;
    CmpModel _cmp;
    CmpScheduler _sched;
    RequestStream _stream;
    std::unique_ptr<FaultPlan> _plan;
    std::vector<std::unique_ptr<GuestProcess>> _workers;
    ServeState _serve;
};

} // namespace hipstr

#endif // HIPSTR_SERVER_PROTECTED_SERVER_HH
