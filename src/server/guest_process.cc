#include "guest_process.hh"

#include <algorithm>

#include "binary/loader.hh"
#include "isa/codec.hh"
#include "migration/safety.hh"
#include "support/logging.hh"

namespace hipstr
{

namespace
{

/** Scratch area for staged hijacks, inside the guest stack region. */
constexpr Addr kHijackSp = layout::kStackTop - 0x8000;

} // namespace

const char *
procStateName(ProcState s)
{
    switch (s) {
      case ProcState::Ready: return "Ready";
      case ProcState::Running: return "Running";
      case ProcState::Blocked: return "Blocked";
      case ProcState::Crashed: return "Crashed";
      case ProcState::Exited: return "Exited";
    }
    return "?";
}

GuestProcess::GuestProcess(const FatBinary &bin,
                           const GuestProcessConfig &cfg)
    : _bin(bin), _cfg(cfg)
{
    loadFatBinary(bin, _mem);
    _os.setOutputCap(cfg.outputCap);

    HipstrConfig hcfg = cfg.hipstr;
    // Independent, reproducible randomness per process: the PSR and
    // policy streams are SplitMix64 folds of (seed, pid). Respawns
    // advance the randomizer generation on top of this base seed.
    uint64_t s = cfg.seed + 0x9e3779b97f4a7c15ull * (cfg.pid + 1);
    hcfg.psr.seed = splitMix64(s);
    hcfg.policySeed = splitMix64(s);
    if (cfg.alternateStartIsa && (cfg.pid & 1))
        hcfg.startIsa = otherIsa(hcfg.startIsa);

    _runtime = std::make_unique<HipstrRuntime>(bin, _mem, _os, hcfg);
    _runtime->reset();
}

void
GuestProcess::beginService(uint64_t insts)
{
    hipstr_assert(_state == ProcState::Blocked);
    hipstr_assert(insts > 0);
    _serviceRemaining = insts;
    _state = ProcState::Ready;
}

void
GuestProcess::stageInjectedFault(const QuantumFault &f)
{
    ++_stats.faultsInjected[static_cast<size_t>(f.kind)];
    switch (f.kind) {
      case FaultKind::BitFlip: {
        // Single-event upset somewhere in the mutable image. The run
        // may crash (MemFault soon after), silently corrupt output,
        // or shrug it off — all three are realistic outcomes.
        constexpr Addr span = layout::kStackTop - layout::kDataBase;
        const Addr a =
            layout::kDataBase + static_cast<Addr>(f.payload % span);
        const uint8_t bit = (f.payload >> 32) & 7;
        _mem.rawWrite8(a, _mem.rawRead8(a) ^ (uint8_t(1) << bit));
        // The generation's output can no longer be checksum-verified.
        _tainted = true;
        _pendingKind = FaultKind::BitFlip;
        break;
      }
      case FaultKind::DecodeFault:
        _runtime->vm(isa()).armDecodeFault();
        _pendingKind = FaultKind::DecodeFault;
        break;
      case FaultKind::CacheFlush:
        _runtime->vm(isa()).flushTranslations();
        break;
      case FaultKind::TransformAbort:
        _runtime->abortNextTransform();
        break;
      case FaultKind::Wedge:
        _wedgeRemaining = _cfg.faultPlan->wedgeLength(f.payload);
        break;
      default:
        break;
    }
}

QuantumResult
GuestProcess::runQuantum(uint64_t maxInsts)
{
    hipstr_assert(_state == ProcState::Ready);
    _state = ProcState::Running;
    ++_stats.quanta;

    if (_cfg.faultPlan != nullptr && _wedgeRemaining == 0) {
        QuantumFault f = _cfg.faultPlan->quantumFault(
            _cfg.pid, _quantumSerial++);
        if (f.kind != FaultKind::None)
            stageInjectedFault(f);
    }

    if (_wedgeRemaining > 0) {
        // Wedged: the quantum burns its timeslice without retiring a
        // single guest instruction and without consuming service
        // budget — from the scheduler's view the worker is livelocked.
        --_wedgeRemaining;
        ++_stats.wedgedQuanta;
        ++_wedgeStreak;
        QuantumResult q;
        q.reason = VmStop::StepLimit;
        q.stopPc = _runtime->vm(isa()).state.pc;
        q.ran = 0;
        _lastMigrated = false;
        if (_cfg.watchdogQuanta != 0 &&
            _wedgeStreak >= _cfg.watchdogQuanta) {
            ++_stats.crashes;
            ++_stats.watchdogKills;
            _lastFault = FaultInfo{
                FaultKind::Watchdog, q.stopPc, isa(),
                static_cast<uint32_t>(
                    _runtime->vm(isa()).randomizer().generation())
            };
            _wedgeRemaining = 0;
            _wedgeStreak = 0;
            _state = ProcState::Crashed;
        } else {
            _state = ProcState::Ready;
        }
        return q;
    }
    _wedgeStreak = 0;

    uint64_t slice = std::min(maxInsts, _serviceRemaining);
    QuantumResult q = _runtime->runQuantum(slice);
    _serviceRemaining -= std::min<uint64_t>(q.ran, _serviceRemaining);
    _lastMigrated = q.migrated;

    switch (q.reason) {
      case VmStop::Exited:
      case VmStop::Halted:
        ++_stats.programsCompleted;
        if (_haveExpected && !_tainted &&
            _os.outputChecksum() != _expectedChecksum) {
            ++_stats.checksumMismatches;
        }
        if (_cfg.restartOnExit) {
            restartProgram();
            _state = _serviceRemaining > 0 ? ProcState::Ready
                                           : ProcState::Blocked;
        } else {
            _state = ProcState::Exited;
        }
        break;

      case VmStop::Fault:
      case VmStop::BadInst:
      case VmStop::SfiViolation:
        ++_stats.crashes;
        _lastFault = _runtime->summary().fault;
        // Attribute crashes that follow an injection to the injected
        // kind — a tripped decode fault is a DecodeFault, not the raw
        // BadInst the VM observed.
        if (_pendingKind != FaultKind::None)
            _lastFault.kind = _pendingKind;
        _state = ProcState::Crashed;
        break;

      case VmStop::MigrationRequested:
        // The runtime already switched VMs; the scheduler must requeue
        // us onto a core of the new isa().
        _state = _serviceRemaining > 0 ? ProcState::Ready
                                       : ProcState::Blocked;
        break;

      case VmStop::StepLimit:
        _state = _serviceRemaining > 0 ? ProcState::Ready
                                       : ProcState::Blocked;
        break;
    }
    return q;
}

void
GuestProcess::respawnImage()
{
    foldSummary();
    ++_stats.respawns;

    // Pristine address space: wipe everything mutable (data, heap,
    // stack) and reload the image. The VM cache regions are rebuilt
    // by reRandomize()'s flush.
    _mem.zeroRange(layout::kDataBase,
                   layout::kStackTop - layout::kDataBase);
    loadFatBinary(_bin, _mem);
    _os.reset();
    for (IsaKind isa : kAllIsas) {
        _runtime->vm(isa).disarmDecodeFault();
        _runtime->vm(isa).reRandomize();
    }
    _runtime->reset();
    _tainted = false;
    _pendingKind = FaultKind::None;
    _wedgeRemaining = 0;
    _wedgeStreak = 0;
    _state = _serviceRemaining > 0 ? ProcState::Ready
                                   : ProcState::Blocked;
}

void
GuestProcess::respawn()
{
    hipstr_assert(_state == ProcState::Crashed);
    respawnImage();
}

bool
GuestProcess::relocateToIsa(IsaKind target, uint64_t search_budget)
{
    if (isa() == target)
        return true;
    MigrationOutcome mo = _runtime->forceMigration(search_budget);
    if (mo.ok && isa() == target) {
        ++_stats.emergencyRelocations;
        return true;
    }
    // No migration-safe point reachable (or the program stopped mid-
    // search): hard evacuation. Respawn directly onto the surviving
    // ISA — program state is lost, the in-flight request's budget
    // carries over to the fresh worker.
    setStartIsa(target);
    respawnImage();
    return false;
}

void
GuestProcess::restartProgram()
{
    foldSummary();
    _os.reset();
    _runtime->reset();
    _tainted = false;
    _pendingKind = FaultKind::None;
}

void
GuestProcess::foldSummary()
{
    const HipstrRunSummary &s = _runtime->summary();
    _stats.guestInsts += s.totalGuestInsts;
    for (size_t i = 0; i < kNumIsas; ++i)
        _stats.guestInstsPerIsa[i] += s.guestInstsPerIsa[i];
    _stats.migrations += s.migrations;
    _stats.migrationsDenied += s.migrationsDenied;
    _stats.transformAborts += s.transformAborts;
    _stats.migrationsSuppressed += s.migrationsSuppressed;
    // foldSummary runs immediately before the GuestOs reset that
    // starts the next program generation, so each generation's bytes
    // are accrued exactly once.
    _stats.outputBytes += _os.totalOutputBytes();
}

GuestProcessStats
GuestProcess::stats() const
{
    GuestProcessStats out = _stats;
    const HipstrRunSummary &s = _runtime->summary();
    out.guestInsts += s.totalGuestInsts;
    for (size_t i = 0; i < kNumIsas; ++i)
        out.guestInstsPerIsa[i] += s.guestInstsPerIsa[i];
    out.migrations += s.migrations;
    out.migrationsDenied += s.migrationsDenied;
    out.transformAborts += s.transformAborts;
    out.migrationsSuppressed += s.migrationsSuppressed;
    out.outputBytes += _os.totalOutputBytes();
    out.phases = _runtime->phaseBreakdown();
    return out;
}

uint64_t
GuestProcess::securityEvents() const
{
    uint64_t total = 0;
    for (IsaKind isa : kAllIsas) {
        const HipstrRuntime &rt = *_runtime;
        total += rt.vm(isa).stats.securityEvents;
    }
    return total;
}

uint64_t
GuestProcess::statsSignature() const
{
    GuestProcessStats s = stats();
    uint64_t h = 0xcbf29ce484222325ull;
    auto fold = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    fold(_cfg.pid);
    fold(s.guestInsts);
    fold(s.guestInstsPerIsa[0]);
    fold(s.guestInstsPerIsa[1]);
    fold(s.quanta);
    fold(s.migrations);
    fold(s.migrationsDenied);
    fold(s.crashes);
    fold(s.respawns);
    fold(s.programsCompleted);
    fold(s.checksumMismatches);
    fold(securityEvents());
    fold(_os.outputChecksum());
    fold(s.outputBytes);
    return h;
}

Addr
GuestProcess::findRetAddr(const FuncInfo &fi) const
{
    Addr pc = fi.entry;
    const Addr end = fi.entry + fi.codeSize;
    MachInst mi;
    while (pc < end && decodeInst(isa(), _mem, pc, mi)) {
        if (mi.op == Op::Ret)
            return pc;
        pc += mi.size;
    }
    return 0;
}

bool
GuestProcess::stageHijack(Addr target, bool build_frame,
                          uint32_t frame_func)
{
    const IsaKind cur = isa();
    PsrVm &vm = _runtime->vm(cur);

    // A one-instruction "ret gadget": dispatching it pops our planted
    // word off the stack, exactly the control-transfer primitive a
    // real stack smash yields.
    const FuncInfo *gadget_func = nullptr;
    Addr ret_at = 0;
    for (const FuncInfo &fi : _bin.funcsFor(cur)) {
        ret_at = findRetAddr(fi);
        if (ret_at != 0) {
            gadget_func = &fi;
            break;
        }
    }
    if (gadget_func == nullptr)
        return false;

    _mem.rawWrite32(kHijackSp, target);
    if (build_frame) {
        // The word above the planted return is where execution lands:
        // give the migration engine a coherent single frame for the
        // target's function — zeroed locals and the outermost-frame
        // sentinel in the (randomized) return-address slot — so the
        // cross-ISA stack transformation can genuinely run.
        const RelocationMap &map =
            vm.randomizer().mapFor(frame_func);
        const FuncInfo &fi = _bin.funcInfo(cur, frame_func);
        const Addr frame_base = kHijackSp + 4;
        _mem.zeroRange(frame_base, map.newFrameSize + 64);
        _mem.rawWrite32(frame_base + map.mapSlot(fi.raSlot),
                        _bin.startRetAddr[static_cast<size_t>(cur)]);
    }
    vm.state.setSp(kHijackSp);
    vm.state.pc = ret_at;
    _tainted = true;
    ++_stats.probesStaged;
    return true;
}

bool
GuestProcess::injectAttackProbe(uint64_t nonce)
{
    hipstr_assert(_state == ProcState::Ready);
    const IsaKind cur = isa();
    PsrVm &vm = _runtime->vm(cur);

    // Candidate landing sites: cold (not yet translated — the ret
    // into them misses the code cache and raises the security event),
    // migration-safe block starts that are not function entries and
    // not post-call resume points (segment 0 blocks are never Return
    // Address Table keys, so the RAT cannot swallow the event).
    struct Candidate
    {
        uint32_t funcId;
        Addr addr;
    };
    std::vector<Candidate> candidates;
    for (const FuncInfo &fi : _bin.funcsFor(cur)) {
        for (const MachBlockInfo &b : fi.blocks) {
            if (b.segment != 0 || b.start == fi.entry)
                continue;
            // wasTranslated (not a raw cache probe): after a
            // checkpoint restore the cache is cold but vetted
            // addresses will translate silently, so they are not
            // usable landing sites — exactly as in the unbroken run.
            if (vm.wasTranslated(b.start))
                continue;
            if (!isMigrationPoint(_bin, cur, b.start,
                                  MigrationSafety::OnDemandSafe))
                continue;
            candidates.push_back(Candidate{ fi.funcId, b.start });
        }
    }
    if (candidates.empty())
        return false;

    const Candidate &c =
        candidates[static_cast<size_t>(nonce % candidates.size())];
    return stageHijack(c.addr, /*build_frame=*/true, c.funcId);
}

void
GuestProcess::saveState(ByteWriter &w) const
{
    hipstr_assert(_state != ProcState::Running);
    hipstr_assert(!_mem.journaling());

    w.u32(_cfg.pid);
    w.u8(uint8_t(_state));
    w.u64(_serviceRemaining);
    w.boolean(_lastMigrated);
    w.boolean(_tainted);
    w.u64(_expectedChecksum);
    w.boolean(_haveExpected);

    w.u64(_stats.guestInsts);
    for (uint64_t g : _stats.guestInstsPerIsa)
        w.u64(g);
    w.u64(_stats.quanta);
    w.u32(_stats.migrations);
    w.u32(_stats.migrationsDenied);
    w.u32(_stats.crashes);
    w.u32(_stats.respawns);
    w.u32(_stats.programsCompleted);
    w.u32(_stats.checksumMismatches);
    w.u32(_stats.probesStaged);
    w.u64(_stats.outputBytes);
    for (uint64_t f : _stats.faultsInjected)
        w.u64(f);
    w.u64(_stats.wedgedQuanta);
    w.u32(_stats.watchdogKills);
    w.u32(_stats.transformAborts);
    w.u32(_stats.migrationsSuppressed);
    w.u32(_stats.emergencyRelocations);

    w.u64(_quantumSerial);
    w.u32(_wedgeRemaining);
    w.u32(_wedgeStreak);
    w.u8(uint8_t(_lastFault.kind));
    w.u32(_lastFault.pc);
    w.u8(uint8_t(_lastFault.isa));
    w.u32(_lastFault.generation);
    w.u8(uint8_t(_pendingKind));

    _os.saveState(w);
    _runtime->saveState(w);

    // Mutable guest image [kDataBase, kStackTop): data, heap, stack.
    // The code sections below kDataBase are reproduced by the loader
    // at construction; the cache regions above kStackTop rebuild
    // cold. Zero pages are skipped — a worker touches a small
    // fraction of its 8 MiB image.
    constexpr uint32_t kPage = 4096;
    constexpr Addr lo = layout::kDataBase;
    constexpr Addr hi = layout::kStackTop;
    const uint8_t *bytes = _mem.data();
    for (Addr page = lo; page < hi; page += kPage) {
        const uint8_t *p = bytes + page;
        bool all_zero = true;
        for (uint32_t i = 0; i < kPage; ++i) {
            if (p[i] != 0) {
                all_zero = false;
                break;
            }
        }
        if (all_zero)
            continue;
        w.u32(page);
        w.bytes(p, kPage);
    }
    w.u32(0xffffffffu); // page-stream terminator
}

void
GuestProcess::loadState(ByteReader &r)
{
    hipstr_assert(_state != ProcState::Running);
    hipstr_assert(!_mem.journaling());

    uint32_t pid = r.u32();
    if (pid != _cfg.pid)
        throw SerializeError(SerializeErrc::Corrupt,
                             "checkpoint pid mismatch");
    _state = ProcState(r.u8());
    _serviceRemaining = r.u64();
    _lastMigrated = r.boolean();
    _tainted = r.boolean();
    _expectedChecksum = r.u64();
    _haveExpected = r.boolean();

    _stats.guestInsts = r.u64();
    for (uint64_t &g : _stats.guestInstsPerIsa)
        g = r.u64();
    _stats.quanta = r.u64();
    _stats.migrations = r.u32();
    _stats.migrationsDenied = r.u32();
    _stats.crashes = r.u32();
    _stats.respawns = r.u32();
    _stats.programsCompleted = r.u32();
    _stats.checksumMismatches = r.u32();
    _stats.probesStaged = r.u32();
    _stats.outputBytes = r.u64();
    for (uint64_t &f : _stats.faultsInjected)
        f = r.u64();
    _stats.wedgedQuanta = r.u64();
    _stats.watchdogKills = r.u32();
    _stats.transformAborts = r.u32();
    _stats.migrationsSuppressed = r.u32();
    _stats.emergencyRelocations = r.u32();

    _quantumSerial = r.u64();
    _wedgeRemaining = r.u32();
    _wedgeStreak = r.u32();
    _lastFault.kind = FaultKind(r.u8());
    _lastFault.pc = r.u32();
    _lastFault.isa = IsaKind(r.u8());
    _lastFault.generation = r.u32();
    _pendingKind = FaultKind(r.u8());

    _os.loadState(r);
    _runtime->loadState(r);

    constexpr uint32_t kPage = 4096;
    constexpr Addr lo = layout::kDataBase;
    constexpr Addr hi = layout::kStackTop;
    _mem.zeroRange(lo, hi - lo);
    for (;;) {
        uint32_t page = r.u32();
        if (page == 0xffffffffu)
            break;
        if (page < lo || page >= hi || page % kPage != 0)
            throw SerializeError(SerializeErrc::Corrupt,
                                 "checkpoint page out of range");
        std::array<uint8_t, kPage> buf;
        r.bytes(buf.data(), kPage);
        _mem.rawWriteBytes(page, buf.data(), kPage);
    }
}

bool
GuestProcess::injectCorruption(uint64_t nonce)
{
    hipstr_assert(_state == ProcState::Ready);
    // Return into the VM's own code cache: the SFI check terminates
    // the process (Section 5.1). Vary the exact cache offset by nonce
    // so repeated probes are distinguishable in traces.
    Addr target = layout::cacheBase(isa()) + 64 +
        static_cast<Addr>((nonce % 16) * 4);
    return stageHijack(target, /*build_frame=*/false, 0);
}

} // namespace hipstr
