#include "scheduler.hh"

#include "support/logging.hh"

namespace hipstr
{

CmpScheduler::CmpScheduler(const CmpModel &cmp,
                           const SchedulerConfig &cfg)
    : _cmp(cmp), _cfg(cfg)
{
    hipstr_assert(cfg.quantumInsts > 0);
    // Modeled round length, matching ServerReport::modeledSeconds:
    // one quantum on every core through the CMP's aggregate rate.
    double agg = cmp.aggregateInstsPerSecond();
    if (agg > 0) {
        _usPerRound = double(cfg.quantumInsts) *
            double(cmp.totalCores()) / agg * 1e6;
    }
}

void
CmpScheduler::notifyReady(GuestProcess *p)
{
    hipstr_assert(p->state() == ProcState::Ready);
    _ready[static_cast<size_t>(p->isa())].push_back(p);
}

unsigned
CmpScheduler::round(ThreadPool *pool)
{
    const std::vector<CmpCore> &cores = _cmp.cores();

    // Assign in fixed core order from the matching ISA queue.
    std::vector<GuestProcess *> assigned(cores.size(), nullptr);
    unsigned n = 0;
    for (const CmpCore &core : cores) {
        auto &queue = _ready[static_cast<size_t>(core.isa)];
        if (queue.empty()) {
            ++_stats.idleCoreQuanta;
            continue;
        }
        assigned[core.id] = queue.front();
        queue.pop_front();
        ++n;
    }

    // Run every assigned quantum concurrently: processes share only
    // the immutable FatBinary.
    std::vector<QuantumResult> results(cores.size());
    parallelFor(
        cores.size(),
        [&](size_t i) {
            if (assigned[i] != nullptr)
                results[i] = assigned[i]->runQuantum(_cfg.quantumInsts);
        },
        pool);

    using telemetry::TraceCategory;
    const bool traced =
        trace != nullptr && trace->enabled(TraceCategory::Scheduler);
    const double round_ts = double(_stats.rounds) * _usPerRound;

    // Merge outcomes in fixed core order so queue contents — and
    // therefore every subsequent scheduling decision — never depend
    // on completion interleaving. Trace events are recorded here, in
    // this sequential section, so their ring order is deterministic.
    for (const CmpCore &core : cores) {
        GuestProcess *p = assigned[core.id];
        if (p == nullptr)
            continue;
        ++_stats.quantaRun;
        const QuantumResult &q = results[core.id];

        if (traced) {
            // The core executes q.ran guest instructions at its own
            // modeled rate; the remainder of the round slot is idle.
            double ips = _cmp.instsPerSecond(core.isa);
            double dur =
                ips > 0 ? double(q.ran) / ips * 1e6 : _usPerRound;
            trace->record(
                telemetry::traceSpan(TraceCategory::Scheduler,
                                     "sched.quantum", round_ts, dur,
                                     p->pid() + 1, core.id)
                    .arg("ran", q.ran)
                    .arg("reason", static_cast<uint64_t>(q.reason))
                    .arg("migrated", q.migrated ? 1 : 0));
        }

        bool respawned = false;
        if (p->state() == ProcState::Crashed) {
            if (_cfg.respawnLimit != 0 &&
                p->respawnCount() >= _cfg.respawnLimit) {
                _retired.push_back(p);
                ++_stats.retired;
                if (traced) {
                    trace->record(telemetry::traceInstant(
                                      TraceCategory::Scheduler,
                                      "sched.retire", round_ts,
                                      p->pid() + 1, core.id)
                                      .arg("respawns",
                                           p->respawnCount()));
                }
                continue;
            }
            p->respawn();
            ++_stats.respawns;
            respawned = true;
            if (traced) {
                trace->record(telemetry::traceInstant(
                                  TraceCategory::Scheduler,
                                  "sched.respawn", round_ts,
                                  p->pid() + 1, core.id)
                                  .arg("respawns", p->respawnCount()));
            }
        }

        if (p->state() == ProcState::Ready) {
            // Only a quantum that genuinely migrated counts as a
            // security routing decision; the start-ISA affinity a
            // restart or respawn re-establishes does not.
            if (!respawned && p->lastQuantumMigrated()) {
                ++_stats.migrationsRouted;
                if (traced) {
                    trace->record(
                        telemetry::traceInstant(
                            TraceCategory::Scheduler,
                            "sched.route_migration", round_ts,
                            p->pid() + 1, core.id)
                            .arg("to_isa", static_cast<uint64_t>(
                                               p->isa())));
                }
            }
            _ready[static_cast<size_t>(p->isa())].push_back(p);
        }
        // Blocked (service complete, awaiting the next request) and
        // Exited processes leave the scheduler until the server
        // re-submits them via notifyReady().
    }

    ++_stats.rounds;
    return n;
}

bool
CmpScheduler::idle() const
{
    for (const auto &queue : _ready)
        if (!queue.empty())
            return false;
    return true;
}

} // namespace hipstr
