#include "scheduler.hh"

#include "support/logging.hh"

namespace hipstr
{

CmpScheduler::CmpScheduler(const CmpModel &cmp,
                           const SchedulerConfig &cfg)
    : _cmp(cmp), _cfg(cfg)
{
    hipstr_assert(cfg.quantumInsts > 0);
}

void
CmpScheduler::notifyReady(GuestProcess *p)
{
    hipstr_assert(p->state() == ProcState::Ready);
    _ready[static_cast<size_t>(p->isa())].push_back(p);
}

unsigned
CmpScheduler::round(ThreadPool *pool)
{
    const std::vector<CmpCore> &cores = _cmp.cores();

    // Assign in fixed core order from the matching ISA queue.
    std::vector<GuestProcess *> assigned(cores.size(), nullptr);
    unsigned n = 0;
    for (const CmpCore &core : cores) {
        auto &queue = _ready[static_cast<size_t>(core.isa)];
        if (queue.empty()) {
            ++_stats.idleCoreQuanta;
            continue;
        }
        assigned[core.id] = queue.front();
        queue.pop_front();
        ++n;
    }

    // Run every assigned quantum concurrently: processes share only
    // the immutable FatBinary.
    parallelFor(
        cores.size(),
        [&](size_t i) {
            if (assigned[i] != nullptr)
                (void)assigned[i]->runQuantum(_cfg.quantumInsts);
        },
        pool);

    // Merge outcomes in fixed core order so queue contents — and
    // therefore every subsequent scheduling decision — never depend
    // on completion interleaving.
    for (const CmpCore &core : cores) {
        GuestProcess *p = assigned[core.id];
        if (p == nullptr)
            continue;
        ++_stats.quantaRun;

        bool respawned = false;
        if (p->state() == ProcState::Crashed) {
            if (_cfg.respawnLimit != 0 &&
                p->respawnCount() >= _cfg.respawnLimit) {
                _retired.push_back(p);
                ++_stats.retired;
                continue;
            }
            p->respawn();
            ++_stats.respawns;
            respawned = true;
        }

        if (p->state() == ProcState::Ready) {
            // Only a quantum that genuinely migrated counts as a
            // security routing decision; the start-ISA affinity a
            // restart or respawn re-establishes does not.
            if (!respawned && p->lastQuantumMigrated())
                ++_stats.migrationsRouted;
            _ready[static_cast<size_t>(p->isa())].push_back(p);
        }
        // Blocked (service complete, awaiting the next request) and
        // Exited processes leave the scheduler until the server
        // re-submits them via notifyReady().
    }

    ++_stats.rounds;
    return n;
}

bool
CmpScheduler::idle() const
{
    for (const auto &queue : _ready)
        if (!queue.empty())
            return false;
    return true;
}

} // namespace hipstr
