#include "scheduler.hh"

#include <algorithm>

#include "support/logging.hh"

namespace hipstr
{

CmpScheduler::CmpScheduler(const CmpModel &cmp,
                           const SchedulerConfig &cfg)
    : _cmp(cmp), _cfg(cfg)
{
    hipstr_assert(cfg.quantumInsts > 0);
    // Modeled round length, matching ServerReport::modeledSeconds:
    // one quantum on every core through the CMP's aggregate rate.
    double agg = cmp.aggregateInstsPerSecond();
    if (agg > 0) {
        _usPerRound = double(cfg.quantumInsts) *
            double(cmp.totalCores()) / agg * 1e6;
    }
    _coreOfflineUntil.assign(cmp.cores().size(), 0);
}

bool
CmpScheduler::isRetired(const GuestProcess *p) const
{
    return std::find(_retired.begin(), _retired.end(), p) !=
        _retired.end();
}

bool
CmpScheduler::coreOnline(unsigned coreId) const
{
    uint64_t until = _coreOfflineUntil[coreId];
    return until == 0 || _stats.rounds >= until;
}

void
CmpScheduler::notifyReady(GuestProcess *p)
{
    hipstr_assert(p->state() == ProcState::Ready);
    _ready[static_cast<size_t>(p->isa())].push_back(p);
}

void
CmpScheduler::superviseRound(bool traced, double round_ts)
{
    using telemetry::TraceCategory;
    const std::vector<CmpCore> &cores = _cmp.cores();

    if (faultPlan != nullptr) {
        // Advance core outages: recoveries first (a core scheduled to
        // return this round serves this round), then new failures.
        for (const CmpCore &core : cores) {
            uint64_t until = _coreOfflineUntil[core.id];
            if (until != 0 && _stats.rounds >= until) {
                _coreOfflineUntil[core.id] = 0;
                ++_stats.coreRecoveries;
                if (traced) {
                    trace->record(telemetry::traceInstant(
                        TraceCategory::Scheduler, "sched.core_recover",
                        round_ts, 0, core.id));
                }
            }
            if (_coreOfflineUntil[core.id] == 0) {
                uint32_t len = faultPlan->coreOutageAt(
                    core.id, core.isa, _stats.rounds);
                if (len != 0) {
                    _coreOfflineUntil[core.id] = _stats.rounds + len;
                    ++_stats.coreOutages;
                    if (traced) {
                        trace->record(
                            telemetry::traceInstant(
                                TraceCategory::Scheduler,
                                "sched.core_fail", round_ts, 0,
                                core.id)
                                .arg("rounds", len));
                    }
                }
            }
        }

        // Degraded-mode tracking: an ISA is offline when every one of
        // its cores is. Transitions are counted and traced; workers
        // learn about suspension at assignment time.
        for (IsaKind isa : kAllIsas) {
            bool offline = true;
            bool any = false;
            for (const CmpCore &core : cores) {
                if (core.isa != isa)
                    continue;
                any = true;
                if (coreOnline(core.id)) {
                    offline = false;
                    break;
                }
            }
            offline = any && offline;
            const size_t i = static_cast<size_t>(isa);
            if (offline && !_isaOffline[i]) {
                ++_stats.degradedEntries;
                if (traced) {
                    trace->record(telemetry::traceInstant(
                        TraceCategory::Scheduler,
                        "sched.degraded_enter", round_ts, 0,
                        static_cast<uint32_t>(isa)));
                }
            } else if (!offline && _isaOffline[i]) {
                ++_stats.degradedExits;
                if (traced) {
                    trace->record(telemetry::traceInstant(
                        TraceCategory::Scheduler,
                        "sched.degraded_exit", round_ts, 0,
                        static_cast<uint32_t>(isa)));
                }
            }
            _isaOffline[i] = offline;
        }
        if (degraded())
            ++_stats.degradedRounds;

        // Evacuate workers stranded on a dead ISA's queue, in queue
        // order: live cross-ISA migration when a safe transform point
        // is reachable, hard respawn onto the surviving ISA otherwise.
        for (IsaKind isa : kAllIsas) {
            const size_t i = static_cast<size_t>(isa);
            const IsaKind to = otherIsa(isa);
            if (!_isaOffline[i] ||
                _isaOffline[static_cast<size_t>(to)]) {
                continue;
            }
            auto &queue = _ready[i];
            while (!queue.empty()) {
                GuestProcess *p = queue.front();
                queue.pop_front();
                // Retarget the boot ISA too: a mid-service program
                // restart must not snap the worker back onto the dead
                // ISA's queue (it would be evacuated again each
                // round until the outage ends).
                p->setStartIsa(to);
                if (p->relocateToIsa(to)) {
                    ++_stats.reroutes;
                } else {
                    ++_stats.rerouteRespawns;
                    // The hard evacuation respawned the worker with
                    // fresh randomization: its consecutive-crash
                    // streak belongs to the incarnation that was just
                    // lost, and carrying it over would quarantine the
                    // fresh one for crashes it never had.
                    _streak.erase(p->pid());
                }
                if (traced) {
                    trace->record(
                        telemetry::traceInstant(
                            TraceCategory::Scheduler, "sched.reroute",
                            round_ts, p->pid() + 1, 0)
                            .arg("to_isa", static_cast<uint64_t>(to)));
                }
                if (p->state() == ProcState::Ready) {
                    _ready[static_cast<size_t>(p->isa())]
                        .push_back(p);
                }
            }
        }
    }

    // Release convalescents whose round has come, in pid order. A
    // release is a Section 5.3 respawn; if the worker's boot ISA is
    // down it is retargeted at the surviving one first.
    for (auto it = _infirmary.begin(); it != _infirmary.end();) {
        if (it->second.releaseRound > _stats.rounds) {
            ++it;
            continue;
        }
        GuestProcess *p = it->second.p;
        if (degraded()) {
            IsaKind up =
                _isaOffline[0] ? IsaKind::Cisc : IsaKind::Risc;
            p->setStartIsa(up);
        }
        p->respawn();
        ++_stats.respawns;
        ++_stats.recoveries;
        _stats.recoveryRoundsSum +=
            _stats.rounds - it->second.crashRound;
        if (traced) {
            trace->record(
                telemetry::traceInstant(TraceCategory::Scheduler,
                                        "sched.release", round_ts,
                                        p->pid() + 1, 0)
                    .arg("quarantined",
                         it->second.quarantined ? 1 : 0)
                    .arg("rounds",
                         _stats.rounds - it->second.crashRound));
        }
        if (p->state() == ProcState::Ready)
            _ready[static_cast<size_t>(p->isa())].push_back(p);
        it = _infirmary.erase(it);
    }
}

bool
CmpScheduler::superviseCrash(GuestProcess *p, unsigned coreId,
                             double round_ts, bool traced)
{
    using telemetry::TraceCategory;

    if (_cfg.respawnLimit != 0 &&
        p->respawnCount() >= _cfg.respawnLimit) {
        _retired.push_back(p);
        ++_stats.retired;
        _streak.erase(p->pid());
        if (traced) {
            trace->record(telemetry::traceInstant(
                              TraceCategory::Scheduler, "sched.retire",
                              round_ts, p->pid() + 1, coreId)
                              .arg("respawns", p->respawnCount()));
        }
        return false;
    }

    const SupervisorConfig &sup = _cfg.supervisor;
    const uint32_t streak = ++_streak[p->pid()];

    if (sup.quarantineAfter != 0 && streak >= sup.quarantineAfter) {
        // Repeatedly faulting worker: park it long enough for a
        // correlated failure burst to pass, then respawn with fresh
        // randomization and a clean slate.
        _infirmary.emplace(
            p->pid(),
            Convalescent{ p, _stats.rounds,
                          _stats.rounds + sup.quarantineRounds,
                          true });
        ++_stats.quarantines;
        _streak.erase(p->pid());
        if (traced) {
            trace->record(
                telemetry::traceInstant(TraceCategory::Scheduler,
                                        "sched.quarantine", round_ts,
                                        p->pid() + 1, coreId)
                    .arg("streak", streak)
                    .arg("rounds", sup.quarantineRounds));
        }
        return false;
    }

    if (sup.backoffBaseRounds == 0) {
        // Legacy immediate respawn, in the round that saw the crash.
        p->respawn();
        ++_stats.respawns;
        if (traced) {
            trace->record(telemetry::traceInstant(
                              TraceCategory::Scheduler,
                              "sched.respawn", round_ts, p->pid() + 1,
                              coreId)
                              .arg("respawns", p->respawnCount()));
        }
        return true;
    }

    // Saturating base << (streak-1), clamped to the cap. The shift
    // count is unbounded (with quarantine disabled a guest can crash
    // hundreds of times in a row), so a raw shift is UB past 63 and
    // wraps to a *shorter* backoff well before that — saturate
    // instead: once the doubling passes the cap it stays there.
    const uint32_t shift = streak - 1;
    uint64_t backoff = sup.backoffCapRounds;
    if (shift < 64 &&
        (uint64_t(sup.backoffBaseRounds) << shift) >> shift ==
            sup.backoffBaseRounds) {
        backoff = std::min<uint64_t>(
            uint64_t(sup.backoffBaseRounds) << shift,
            sup.backoffCapRounds);
    }
    _infirmary.emplace(
        p->pid(), Convalescent{ p, _stats.rounds,
                                _stats.rounds + backoff, false });
    if (traced) {
        trace->record(telemetry::traceInstant(
                          TraceCategory::Scheduler, "sched.backoff",
                          round_ts, p->pid() + 1, coreId)
                          .arg("streak", streak)
                          .arg("rounds", backoff));
    }
    return false;
}

unsigned
CmpScheduler::round(ThreadPool *pool)
{
    const std::vector<CmpCore> &cores = _cmp.cores();

    using telemetry::TraceCategory;
    const bool traced =
        trace != nullptr && trace->enabled(TraceCategory::Scheduler);
    const double round_ts = double(_stats.rounds) * _usPerRound;

    // Supervision runs only when there is something to supervise, so
    // the fault-free scheduler's rounds are bit-for-bit the legacy
    // ones.
    if (faultPlan != nullptr || !_infirmary.empty())
        superviseRound(traced, round_ts);

    // Assign in fixed core order from the matching ISA queue.
    std::vector<GuestProcess *> assigned(cores.size(), nullptr);
    unsigned n = 0;
    for (const CmpCore &core : cores) {
        if (faultPlan != nullptr && !coreOnline(core.id)) {
            ++_stats.offlineCoreQuanta;
            continue;
        }
        auto &queue = _ready[static_cast<size_t>(core.isa)];
        if (queue.empty()) {
            ++_stats.idleCoreQuanta;
            continue;
        }
        GuestProcess *p = queue.front();
        queue.pop_front();
        // Degraded mode switches cross-ISA protection off (and back
        // on after recovery) at the moment the worker is scheduled.
        if (faultPlan != nullptr)
            p->setMigrationSuspended(degraded());
        assigned[core.id] = p;
        ++n;
    }

    // Run every assigned quantum concurrently: processes share only
    // the immutable FatBinary.
    std::vector<QuantumResult> results(cores.size());
    parallelFor(
        cores.size(),
        [&](size_t i) {
            if (assigned[i] != nullptr)
                results[i] = assigned[i]->runQuantum(_cfg.quantumInsts);
        },
        pool);

    // Merge outcomes in fixed core order so queue contents — and
    // therefore every subsequent scheduling decision — never depend
    // on completion interleaving. Trace events are recorded here, in
    // this sequential section, so their ring order is deterministic.
    for (const CmpCore &core : cores) {
        GuestProcess *p = assigned[core.id];
        if (p == nullptr)
            continue;
        ++_stats.quantaRun;
        const QuantumResult &q = results[core.id];

        if (traced) {
            // The core executes q.ran guest instructions at its own
            // modeled rate; the remainder of the round slot is idle.
            double ips = _cmp.instsPerSecond(core.isa);
            double dur =
                ips > 0 ? double(q.ran) / ips * 1e6 : _usPerRound;
            trace->record(
                telemetry::traceSpan(TraceCategory::Scheduler,
                                     "sched.quantum", round_ts, dur,
                                     p->pid() + 1, core.id)
                    .arg("ran", q.ran)
                    .arg("reason", static_cast<uint64_t>(q.reason))
                    .arg("migrated", q.migrated ? 1 : 0));
        }

        bool respawned = false;
        if (p->state() == ProcState::Crashed) {
            respawned = superviseCrash(p, core.id, round_ts, traced);
        } else if (!_streak.empty()) {
            // A clean quantum ends the consecutive-crash streak. The
            // emptiness guard keeps the legacy path free of per-merge
            // map lookups.
            _streak.erase(p->pid());
        }

        if (p->state() == ProcState::Ready) {
            // Only a quantum that genuinely migrated counts as a
            // security routing decision; the start-ISA affinity a
            // restart or respawn re-establishes does not.
            if (!respawned && p->lastQuantumMigrated()) {
                ++_stats.migrationsRouted;
                if (traced) {
                    trace->record(
                        telemetry::traceInstant(
                            TraceCategory::Scheduler,
                            "sched.route_migration", round_ts,
                            p->pid() + 1, core.id)
                            .arg("to_isa", static_cast<uint64_t>(
                                               p->isa())));
                }
            }
            _ready[static_cast<size_t>(p->isa())].push_back(p);
        }
        // Blocked (service complete, awaiting the next request) and
        // Exited processes leave the scheduler until the server
        // re-submits them via notifyReady().
    }

    ++_stats.rounds;
    return n;
}

bool
CmpScheduler::idle() const
{
    for (const auto &queue : _ready)
        if (!queue.empty())
            return false;
    return true;
}

void
CmpScheduler::saveState(ByteWriter &w) const
{
    w.u64(_stats.rounds);
    w.u64(_stats.quantaRun);
    w.u64(_stats.idleCoreQuanta);
    w.u32(_stats.migrationsRouted);
    w.u32(_stats.respawns);
    w.u32(_stats.retired);
    w.u64(_stats.offlineCoreQuanta);
    w.u32(_stats.coreOutages);
    w.u32(_stats.coreRecoveries);
    w.u32(_stats.degradedEntries);
    w.u32(_stats.degradedExits);
    w.u64(_stats.degradedRounds);
    w.u32(_stats.reroutes);
    w.u32(_stats.rerouteRespawns);
    w.u32(_stats.quarantines);
    w.u32(_stats.recoveries);
    w.u64(_stats.recoveryRoundsSum);

    for (const auto &queue : _ready) {
        w.u32(uint32_t(queue.size()));
        for (const GuestProcess *p : queue)
            w.u32(p->pid());
    }
    w.u32(uint32_t(_retired.size()));
    for (const GuestProcess *p : _retired)
        w.u32(p->pid());

    w.u32(uint32_t(_coreOfflineUntil.size()));
    for (uint64_t until : _coreOfflineUntil)
        w.u64(until);
    for (bool off : _isaOffline)
        w.boolean(off);

    w.u32(uint32_t(_infirmary.size()));
    for (const auto &kv : _infirmary) {
        w.u32(kv.first);
        w.u64(kv.second.crashRound);
        w.u64(kv.second.releaseRound);
        w.boolean(kv.second.quarantined);
    }
    w.u32(uint32_t(_streak.size()));
    for (const auto &kv : _streak) {
        w.u32(kv.first);
        w.u32(kv.second);
    }
}

void
CmpScheduler::loadState(
    ByteReader &r,
    const std::function<GuestProcess *(uint32_t)> &resolve)
{
    auto lookup = [&resolve](uint32_t pid) {
        GuestProcess *p = resolve(pid);
        if (p == nullptr)
            throw SerializeError(SerializeErrc::Corrupt,
                                 "checkpoint names unknown pid");
        return p;
    };

    _stats.rounds = r.u64();
    _stats.quantaRun = r.u64();
    _stats.idleCoreQuanta = r.u64();
    _stats.migrationsRouted = r.u32();
    _stats.respawns = r.u32();
    _stats.retired = r.u32();
    _stats.offlineCoreQuanta = r.u64();
    _stats.coreOutages = r.u32();
    _stats.coreRecoveries = r.u32();
    _stats.degradedEntries = r.u32();
    _stats.degradedExits = r.u32();
    _stats.degradedRounds = r.u64();
    _stats.reroutes = r.u32();
    _stats.rerouteRespawns = r.u32();
    _stats.quarantines = r.u32();
    _stats.recoveries = r.u32();
    _stats.recoveryRoundsSum = r.u64();

    for (auto &queue : _ready) {
        queue.clear();
        uint32_t n = r.u32();
        for (uint32_t i = 0; i < n; ++i)
            queue.push_back(lookup(r.u32()));
    }
    _retired.clear();
    uint32_t retired = r.u32();
    for (uint32_t i = 0; i < retired; ++i)
        _retired.push_back(lookup(r.u32()));

    uint32_t cores = r.u32();
    if (cores != _coreOfflineUntil.size())
        throw SerializeError(SerializeErrc::Corrupt,
                             "checkpoint core count mismatch");
    for (uint64_t &until : _coreOfflineUntil)
        until = r.u64();
    for (size_t i = 0; i < kNumIsas; ++i)
        _isaOffline[i] = r.boolean();

    _infirmary.clear();
    uint32_t parked = r.u32();
    for (uint32_t i = 0; i < parked; ++i) {
        uint32_t pid = r.u32();
        Convalescent c{ lookup(pid), 0, 0, false };
        c.crashRound = r.u64();
        c.releaseRound = r.u64();
        c.quarantined = r.boolean();
        _infirmary.emplace(pid, c);
    }
    _streak.clear();
    uint32_t streaks = r.u32();
    for (uint32_t i = 0; i < streaks; ++i) {
        uint32_t pid = r.u32();
        _streak[pid] = r.u32();
    }
}

} // namespace hipstr
