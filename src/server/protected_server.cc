#include "protected_server.hh"

#include <algorithm>

#include "attack/campaign.hh"
#include "binary/loader.hh"
#include "isa/interp.hh"
#include "support/logging.hh"

namespace hipstr
{

namespace
{

/** Safety valve against scheduling livelock; generous by orders of
 *  magnitude over any configured stream. */
constexpr uint64_t kMaxRounds = 100'000'000;

void
fold64(uint64_t &h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
    }
}

void
saveRequest(ByteWriter &w, const Request &r)
{
    w.u64(r.id);
    w.u8(static_cast<uint8_t>(r.kind));
    w.u64(r.costInsts);
    w.u32(r.retries);
}

Request
loadRequest(ByteReader &r)
{
    Request req;
    req.id = r.u64();
    uint8_t kind = r.u8();
    if (kind >= kNumRequestKinds)
        throw SerializeError(SerializeErrc::Corrupt,
                             "bad request kind in checkpoint");
    req.kind = static_cast<RequestKind>(kind);
    req.costInsts = r.u64();
    req.retries = r.u32();
    return req;
}

} // namespace

ProtectedServer::ProtectedServer(const FatBinary &bin,
                                 const ServerConfig &cfg)
    : _bin(bin), _cfg(cfg), _cmp(cfg.cmp), _sched(_cmp, cfg.sched),
      _stream(cfg.seed, cfg.mix, cfg.costs)
{
    hipstr_assert(cfg.workers > 0);
    _sched.trace = cfg.trace;
    const FaultPlan *active = nullptr;
    if (cfg.faultPlanOverride != nullptr) {
        active = cfg.faultPlanOverride;
    } else if (cfg.faults.enabled) {
        _plan = std::make_unique<FaultPlan>(cfg.faults);
        active = _plan.get();
    }
    if (active != nullptr)
        _sched.faultPlan = active;
    uint64_t expected = 0;
    if (cfg.verifyOutput)
        expected = referenceChecksum();

    for (unsigned i = 0; i < cfg.workers; ++i) {
        GuestProcessConfig pcfg;
        pcfg.pid = i;
        pcfg.seed = cfg.seed;
        pcfg.hipstr = cfg.hipstr;
        pcfg.outputCap = cfg.outputCap;
        if (active != nullptr) {
            pcfg.faultPlan = active;
            pcfg.watchdogQuanta = cfg.watchdogQuanta;
        }
        auto proc = std::make_unique<GuestProcess>(bin, pcfg);
        if (cfg.verifyOutput)
            proc->setExpectedChecksum(expected);
        proc->runtime().setTraceBuffer(cfg.trace);
        _workers.push_back(std::move(proc));
    }
}

uint64_t
ProtectedServer::referenceChecksum() const
{
    // One native run on the reference interpreter: the guest's output
    // is ISA-independent (the workloads are self-checking), so one
    // checksum covers every worker on either ISA.
    Memory mem;
    loadFatBinary(_bin, mem);
    GuestOs os;
    Interpreter interp(IsaKind::Cisc, mem, os);
    initMachineState(interp.state, _bin, IsaKind::Cisc);
    RunResult r = interp.run(1'000'000'000);
    if (r.reason != StopReason::Exited && r.reason != StopReason::Halted)
        hipstr_fatal("server reference run did not complete: %s",
                     stopReasonName(r.reason));
    return os.outputChecksum();
}

void
ProtectedServer::beginRun()
{
    ServeState st;
    st.inflight.assign(_workers.size(), InFlight{});
    st.retired.assign(_workers.size(), false);
    st.latencies.reserve(static_cast<size_t>(
        std::min<uint64_t>(_cfg.requestCount, 1 << 20)));

    // Request-lifecycle tracing on the modeled timeline (one round =
    // one quantum per core through the CMP's aggregate rate).
    using telemetry::TraceCategory;
    telemetry::TraceBuffer *tr = _cfg.trace;
    st.traced = tr != nullptr && tr->enabled(TraceCategory::Server);
    double agg = _cmp.aggregateInstsPerSecond();
    if (agg > 0) {
        st.usPerRound = double(_cfg.sched.quantumInsts) *
            double(_cmp.totalCores()) / agg * 1e6;
    }
    // A shard cannot account for its requests alone: the fleet owns
    // arrival times, routing, and re-routing after worker loss.
    if (_cfg.shardMode)
        hipstr_assert(_cfg.onComplete && _cfg.onRetry);

    st.begun = true;
    _serve = std::move(st);

    // Degraded-mode gauge for dashboards.
    if (_cfg.metrics != nullptr)
        _cfg.metrics->gauge("server.degraded_mode").set(0);
}

bool
ProtectedServer::stepRound(ThreadPool *pool)
{
    ServeState &st = _serve;
    hipstr_assert(st.begun);
    if (st.finished)
        return false;
    if ((!_cfg.shardMode && st.done >= _cfg.requestCount) ||
        st.roundNo >= kMaxRounds) {
        st.finished = true;
        return false;
    }

    using telemetry::TraceCategory;
    telemetry::TraceBuffer *tr = _cfg.trace;
    const bool traced = st.traced;
    const double us_per_round = st.usPerRound;

    // ---- Assign requests to idle workers in pid order. ----
    for (size_t w = 0; w < _workers.size(); ++w) {
        GuestProcess &proc = *_workers[w];
        if (st.retired[w] || st.inflight[w].active ||
            proc.state() != ProcState::Blocked) {
            continue;
        }
        Request r;
        if (!st.requeue.empty()) {
            // Internal requeue (retired-worker retries), or — in
            // shard mode — the external intake submitExternal() fed.
            r = st.requeue.front();
            st.requeue.pop_front();
        } else if (!_cfg.shardMode && st.nextId < _cfg.requestCount) {
            uint64_t id = st.nextId++;
            // Record/replay seam: a replayer supplies the journaled
            // request; the live stream (a pure function of id) is
            // drawn otherwise and offered to a recorder.
            if (_cfg.tap == nullptr ||
                !_cfg.tap->supplyRequest(id, r)) {
                r = _stream.make(id);
                // Adaptive campaign seam: the attacker may turn its
                // share of the fresh stream into probes — before the
                // tap journals the draw, so a recording carries the
                // probes and replays bit-exactly with no engine.
                if (_cfg.campaign != nullptr)
                    _cfg.campaign->rewrite(r, _cfg.campaignShard, 0,
                                           st.roundNo);
                if (_cfg.tap != nullptr)
                    _cfg.tap->requestDrawn(r);
            }
        } else {
            continue;
        }
        proc.beginService(r.costInsts);
        // Stage the request's payload only on first delivery — a
        // retried request already burned its exploit.
        if (r.retries == 0) {
            if (r.kind == RequestKind::Attack)
                (void)proc.injectAttackProbe(r.id);
            else if (r.kind == RequestKind::Malformed)
                (void)proc.injectCorruption(r.id);
        }
        InFlight f{ r, st.roundNo, true };
        // Staging-time facts for the campaign's compromise oracle and
        // crash detection; cheap and deterministic, so captured
        // unconditionally (checkpoint format stays campaign-free).
        f.assignIsa = proc.isa();
        f.assignGeneration = static_cast<uint32_t>(
            proc.runtime().vm(proc.isa()).randomizer().generation());
        f.assignRespawns = proc.respawnCount();
        st.inflight[w] = f;
        _sched.notifyReady(&proc);
        if (traced) {
            tr->record(
                telemetry::traceInstant(
                    TraceCategory::Server, "server.request.assign",
                    double(st.roundNo) * us_per_round,
                    static_cast<uint32_t>(w) + 1)
                    .arg("id", r.id)
                    .arg("kind", static_cast<uint64_t>(r.kind))
                    .arg("cost_insts", r.costInsts)
                    .arg("retries", r.retries));
        }
    }

    if (!_cfg.shardMode && _sched.idle() &&
        !_sched.hasConvalescents()) {
        // Nothing runnable now or parked for later: either all
        // requests are done, or the remaining ones cannot be
        // served (every worker retired).
        bool any_alive = false;
        for (size_t w = 0; w < _workers.size(); ++w)
            any_alive = any_alive || !st.retired[w];
        if (!any_alive || (st.requeue.empty() &&
                           st.nextId >= _cfg.requestCount)) {
            st.finished = true;
            return false;
        }
    }

    _sched.round(pool);
    ++st.roundNo;

    if (faultPlan() != nullptr) {
        const bool deg = _sched.degraded();
        if (deg != st.wasDegraded) {
            if (_cfg.metrics != nullptr)
                _cfg.metrics->gauge("server.degraded_mode")
                    .set(deg ? 1 : 0);
            if (deg) {
                st.degradedStart = st.roundNo;
            } else if (traced) {
                tr->record(telemetry::traceSpan(
                    TraceCategory::Server, "server.degraded",
                    double(st.degradedStart) * us_per_round,
                    double(st.roundNo - st.degradedStart) *
                        us_per_round,
                    0));
            }
            st.wasDegraded = deg;
        }
    }

    // ---- Poll outcomes in pid order. ----
    for (size_t w = 0; w < _workers.size(); ++w) {
        GuestProcess &proc = *_workers[w];
        if (!st.inflight[w].active)
            continue;

        if (proc.state() == ProcState::Blocked) {
            // Service complete.
            const Request &r = st.inflight[w].req;
            uint64_t lat = st.roundNo - st.inflight[w].startRound;
            if (_cfg.campaign != nullptr) {
                // A crash the poll loop never saw as a Crashed state
                // (immediate-respawn supervisor configs) still reset
                // the connection: the respawn-count delta says so.
                if (!st.inflight[w].crashSeen &&
                    proc.respawnCount() >
                        st.inflight[w].assignRespawns) {
                    attack::ProbeEvent cev;
                    cev.id = r.id;
                    cev.signal = attack::ProbeSignal::Crash;
                    cev.shard = _cfg.campaignShard;
                    cev.worker = static_cast<uint32_t>(w);
                    cev.latencyRounds = lat;
                    cev.isaAtEvent = proc.isa();
                    cev.isaAtAssign = st.inflight[w].assignIsa;
                    cev.generationAtAssign =
                        st.inflight[w].assignGeneration;
                    _cfg.campaign->observe(cev);
                }
                attack::ProbeEvent ev;
                ev.id = r.id;
                ev.signal = attack::ProbeSignal::Response;
                ev.shard = _cfg.campaignShard;
                ev.worker = static_cast<uint32_t>(w);
                ev.latencyRounds = lat;
                ev.payloadDelivered = r.retries == 0;
                ev.isaAtEvent = proc.isa();
                ev.isaAtAssign = st.inflight[w].assignIsa;
                ev.generationAtAssign =
                    st.inflight[w].assignGeneration;
                _cfg.campaign->observe(ev);
            }
            st.latencies.push_back(lat);
            ++st.report.requestsServed;
            ++st.report.servedByKind[static_cast<size_t>(r.kind)];
            fold64(st.sig, r.id);
            fold64(st.sig, static_cast<uint64_t>(r.kind));
            fold64(st.sig, lat);
            fold64(st.sig, static_cast<uint64_t>(w));
            if (traced) {
                tr->record(
                    telemetry::traceSpan(
                        TraceCategory::Server, "server.request",
                        double(st.inflight[w].startRound) *
                            us_per_round,
                        double(lat) * us_per_round,
                        static_cast<uint32_t>(w) + 1)
                        .arg("id", r.id)
                        .arg("kind", static_cast<uint64_t>(r.kind))
                        .arg("latency_rounds", lat));
            }
            st.inflight[w].active = false;
            ++st.done;
            if (_cfg.shardMode)
                _cfg.onComplete(r, lat);
        } else if (proc.state() == ProcState::Crashed) {
            // The campaign sees every crash as a connection reset,
            // exactly once per service attempt (the worker stays
            // Crashed for every round it convalesces).
            if (_cfg.campaign != nullptr && !st.inflight[w].crashSeen) {
                st.inflight[w].crashSeen = true;
                attack::ProbeEvent ev;
                ev.id = st.inflight[w].req.id;
                ev.signal = attack::ProbeSignal::Crash;
                ev.shard = _cfg.campaignShard;
                ev.worker = static_cast<uint32_t>(w);
                ev.latencyRounds =
                    st.roundNo - st.inflight[w].startRound;
                ev.isaAtEvent = proc.isa();
                ev.isaAtAssign = st.inflight[w].assignIsa;
                ev.generationAtAssign =
                    st.inflight[w].assignGeneration;
                _cfg.campaign->observe(ev);
            }
            if (!_sched.isRetired(&proc))
                continue;
            // Still Crashed after the scheduler round *and*
            // permanently retired (a worker merely parked in the
            // supervisor's infirmary keeps its request and will
            // finish it after respawning). The retired worker's
            // request goes back to the head of the queue for
            // another worker.
            st.retired[w] = true;
            Request r = st.inflight[w].req;
            ++r.retries;
            // Shard mode: the fleet re-routes (possibly to another
            // shard); the internal requeue is only for a lone server.
            if (_cfg.shardMode)
                _cfg.onRetry(r);
            else
                st.requeue.push_front(r);
            st.inflight[w].active = false;
            if (traced) {
                tr->record(
                    telemetry::traceInstant(
                        TraceCategory::Server,
                        "server.request.retry",
                        double(st.roundNo) * us_per_round,
                        static_cast<uint32_t>(w) + 1)
                        .arg("id", r.id)
                        .arg("retries", r.retries));
            }
        }
    }

    // All workers gone: the remaining stream is unservable. In shard
    // mode the fleet does the abandonment accounting (it holds the
    // queued requests); the shard just stops stepping.
    bool any_alive = false;
    for (size_t w = 0; w < _workers.size(); ++w)
        any_alive = any_alive || !st.retired[w];
    if (!any_alive) {
        if (!_cfg.shardMode)
            st.report.requestsAbandoned = _cfg.requestCount - st.done;
        st.finished = true;
    }

    // Commit the campaign's buffered observations once per round —
    // only when this server owns the engine (the fleet commits for
    // its shards, in shard-index order, after all of them stepped).
    if (_cfg.campaign != nullptr && _cfg.campaignCommits)
        _cfg.campaign->commitRound(st.roundNo);

    // The round completed (even if it finished the run) — let a
    // recorder flush its per-round journal records and sync point.
    if (_cfg.tap != nullptr)
        _cfg.tap->roundEnd(st.roundNo, roundSyncSignature());

    return !st.finished;
}

ServerReport
ProtectedServer::finishRun()
{
    ServeState &st = _serve;
    hipstr_assert(st.begun);
    st.finished = true;

    // ---- Aggregate. ----
    ServerReport report = st.report;
    uint64_t sig = st.sig;
    report.rounds = st.roundNo;
    const SchedulerStats &ss = _sched.stats();
    report.migrationsRouted = ss.migrationsRouted;
    report.respawns = ss.respawns;
    report.retiredWorkers = ss.retired;
    report.coreOutages = ss.coreOutages;
    report.coreRecoveries = ss.coreRecoveries;
    report.offlineCoreQuanta = ss.offlineCoreQuanta;
    report.degradedEntries = ss.degradedEntries;
    report.degradedExits = ss.degradedExits;
    report.degradedRounds = ss.degradedRounds;
    report.reroutes = ss.reroutes;
    report.rerouteRespawns = ss.rerouteRespawns;
    report.quarantines = ss.quarantines;
    report.recoveries = ss.recoveries;
    report.meanRoundsToRecover = _sched.meanRoundsToRecover();
    for (const auto &proc : _workers) {
        GuestProcessStats s = proc->stats();
        report.totalGuestInsts += s.guestInsts;
        for (size_t i = 0; i < kNumIsas; ++i)
            report.guestInstsPerIsa[i] += s.guestInstsPerIsa[i];
        report.migrations += s.migrations;
        report.migrationsDenied += s.migrationsDenied;
        report.securityEvents += proc->securityEvents();
        report.crashes += s.crashes;
        report.programsCompleted += s.programsCompleted;
        report.checksumMismatches += s.checksumMismatches;
        report.probesStaged += s.probesStaged;
        report.phases += s.phases;
        for (size_t k = 0; k < kNumFaultKinds; ++k) {
            report.faultsInjected[k] += s.faultsInjected[k];
            report.faultsInjectedTotal += s.faultsInjected[k];
        }
        report.wedgedQuanta += s.wedgedQuanta;
        report.watchdogKills += s.watchdogKills;
        report.transformAborts += s.transformAborts;
        report.migrationsSuppressed += s.migrationsSuppressed;
        report.emergencyRelocations += s.emergencyRelocations;
        fold64(sig, proc->statsSignature());
    }

    if (faultPlan() != nullptr && _cfg.metrics != nullptr) {
        telemetry::MetricRegistry &m = *_cfg.metrics;
        for (size_t k = 1; k < kNumFaultKinds; ++k) {
            m.counter(std::string("server.fault.") +
                      faultKindName(static_cast<FaultKind>(k)))
                .set(report.faultsInjected[k]);
        }
        m.counter("server.fault.total").set(report.faultsInjectedTotal);
        m.counter("server.fault.wedged_quanta").set(report.wedgedQuanta);
        m.counter("server.fault.watchdog_kills")
            .set(report.watchdogKills);
        m.counter("server.fault.transform_aborts")
            .set(report.transformAborts);
        m.counter("server.fault.migrations_suppressed")
            .set(report.migrationsSuppressed);
        m.counter("server.fault.emergency_relocations")
            .set(report.emergencyRelocations);
        m.counter("server.fault.core_outages").set(report.coreOutages);
        m.counter("server.fault.core_recoveries")
            .set(report.coreRecoveries);
        m.counter("server.fault.offline_core_quanta")
            .set(report.offlineCoreQuanta);
        m.counter("server.fault.degraded_entries")
            .set(report.degradedEntries);
        m.counter("server.fault.degraded_exits")
            .set(report.degradedExits);
        m.counter("server.fault.degraded_rounds")
            .set(report.degradedRounds);
        m.counter("server.fault.reroutes").set(report.reroutes);
        m.counter("server.fault.reroute_respawns")
            .set(report.rerouteRespawns);
        m.counter("server.fault.quarantines").set(report.quarantines);
        m.counter("server.fault.recoveries").set(report.recoveries);
        m.gauge("server.fault.mean_rounds_to_recover")
            .set(report.meanRoundsToRecover);
    }

    if (!st.latencies.empty()) {
        std::vector<uint64_t> sorted = st.latencies;
        std::sort(sorted.begin(), sorted.end());
        double sum = 0;
        for (uint64_t l : sorted)
            sum += double(l);
        report.latency.meanRounds = sum / double(sorted.size());
        report.latency.p50Rounds = sorted[sorted.size() / 2];
        report.latency.p95Rounds =
            sorted[std::min(sorted.size() - 1,
                            sorted.size() * 95 / 100)];
        report.latency.maxRounds = sorted.back();
    }

    // Modeled time: every round advances the machine by one quantum
    // on each core; the CMP's aggregate rate converts that to
    // seconds. Purely configuration-derived — no host clock touches
    // the report.
    double agg = _cmp.aggregateInstsPerSecond();
    if (agg > 0) {
        report.modeledSeconds =
            double(report.rounds) *
            double(_cfg.sched.quantumInsts) *
            double(_cmp.totalCores()) / agg;
        if (report.modeledSeconds > 0) {
            report.requestsPerModeledSecond =
                double(report.requestsServed) /
                report.modeledSeconds;
        }
    }

    report.signature = sig;
    return report;
}

ServerReport
ProtectedServer::run(ThreadPool *pool)
{
    // A shard never finishes on its own (no stream, no requestCount
    // stop) — only the fleet's step loop may drive it.
    hipstr_assert(!_cfg.shardMode);
    beginRun();
    while (stepRound(pool)) {
    }
    return finishRun();
}

void
ProtectedServer::submitExternal(const Request &r)
{
    hipstr_assert(_cfg.shardMode && _serve.begun);
    _serve.requeue.push_back(r);
}

unsigned
ProtectedServer::admissionCapacity() const
{
    const ServeState &st = _serve;
    hipstr_assert(st.begun);
    unsigned n = 0;
    for (size_t w = 0; w < _workers.size(); ++w) {
        if (!st.retired[w] && !st.inflight[w].active &&
            _workers[w]->state() == ProcState::Blocked) {
            ++n;
        }
    }
    return n;
}

unsigned
ProtectedServer::liveWorkers() const
{
    const ServeState &st = _serve;
    hipstr_assert(st.begun);
    unsigned n = 0;
    for (size_t w = 0; w < _workers.size(); ++w)
        n += st.retired[w] ? 0 : 1;
    return n;
}

uint64_t
ProtectedServer::roundSyncSignature() const
{
    uint64_t h = 0xcbf29ce484222325ull;
    fold64(h, _serve.roundNo);
    fold64(h, _serve.done);
    fold64(h, _serve.nextId);
    for (const auto &proc : _workers)
        fold64(h, proc->statsSignature());
    return h;
}

void
ProtectedServer::saveCheckpoint(ByteWriter &w) const
{
    const ServeState &st = _serve;
    hipstr_assert(st.begun);
    w.u32(uint32_t(_workers.size()));

    w.u64(st.report.requestsServed);
    w.u64(st.report.requestsAbandoned);
    for (uint64_t n : st.report.servedByKind)
        w.u64(n);
    for (const InFlight &f : st.inflight) {
        saveRequest(w, f.req);
        w.u64(f.startRound);
        w.boolean(f.active);
        w.u8(static_cast<uint8_t>(f.assignIsa));
        w.u32(f.assignGeneration);
        w.u32(f.assignRespawns);
        w.boolean(f.crashSeen);
    }
    for (size_t i = 0; i < st.retired.size(); ++i)
        w.boolean(st.retired[i]);
    w.u32(uint32_t(st.requeue.size()));
    for (const Request &r : st.requeue)
        saveRequest(w, r);
    w.u64(st.nextId);
    w.u64(uint64_t(st.latencies.size()));
    for (uint64_t l : st.latencies)
        w.u64(l);
    w.u64(st.sig);
    w.u64(st.roundNo);
    w.u64(st.done);
    w.boolean(st.wasDegraded);
    w.u64(st.degradedStart);
    w.boolean(st.finished);

    _sched.saveState(w);
    for (const auto &proc : _workers)
        proc->saveState(w);
}

void
ProtectedServer::loadCheckpoint(ByteReader &r)
{
    ServeState &st = _serve;
    hipstr_assert(st.begun);
    uint32_t workers = r.u32();
    if (workers != _workers.size())
        throw SerializeError(SerializeErrc::Corrupt,
                             "checkpoint worker count mismatch");

    st.report = ServerReport{};
    st.report.requestsServed = r.u64();
    st.report.requestsAbandoned = r.u64();
    for (uint64_t &n : st.report.servedByKind)
        n = r.u64();
    st.inflight.assign(_workers.size(), InFlight{});
    for (InFlight &f : st.inflight) {
        f.req = loadRequest(r);
        f.startRound = r.u64();
        f.active = r.boolean();
        uint8_t isa = r.u8();
        if (isa >= kNumIsas)
            throw SerializeError(SerializeErrc::Corrupt,
                                 "bad in-flight ISA in checkpoint");
        f.assignIsa = static_cast<IsaKind>(isa);
        f.assignGeneration = r.u32();
        f.assignRespawns = r.u32();
        f.crashSeen = r.boolean();
    }
    st.retired.assign(_workers.size(), false);
    for (size_t i = 0; i < st.retired.size(); ++i)
        st.retired[i] = r.boolean();
    st.requeue.clear();
    uint32_t queued = r.u32();
    for (uint32_t i = 0; i < queued; ++i)
        st.requeue.push_back(loadRequest(r));
    st.nextId = r.u64();
    st.latencies.clear();
    uint64_t lats = r.u64();
    for (uint64_t i = 0; i < lats; ++i)
        st.latencies.push_back(r.u64());
    st.sig = r.u64();
    st.roundNo = r.u64();
    st.done = r.u64();
    st.wasDegraded = r.boolean();
    st.degradedStart = r.u64();
    st.finished = r.boolean();

    _sched.loadState(r, [this](uint32_t pid) -> GuestProcess * {
        return pid < _workers.size() ? _workers[pid].get() : nullptr;
    });
    for (auto &proc : _workers)
        proc->loadState(r);
}

} // namespace hipstr
