#include "protected_server.hh"

#include <algorithm>

#include "binary/loader.hh"
#include "isa/interp.hh"
#include "support/logging.hh"

namespace hipstr
{

namespace
{

/** Safety valve against scheduling livelock; generous by orders of
 *  magnitude over any configured stream. */
constexpr uint64_t kMaxRounds = 100'000'000;

void
fold64(uint64_t &h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
    }
}

} // namespace

ProtectedServer::ProtectedServer(const FatBinary &bin,
                                 const ServerConfig &cfg)
    : _bin(bin), _cfg(cfg), _cmp(cfg.cmp), _sched(_cmp, cfg.sched),
      _stream(cfg.seed, cfg.mix, cfg.costs)
{
    hipstr_assert(cfg.workers > 0);
    _sched.trace = cfg.trace;
    if (cfg.faults.enabled) {
        _plan = std::make_unique<FaultPlan>(cfg.faults);
        _sched.faultPlan = _plan.get();
    }
    uint64_t expected = 0;
    if (cfg.verifyOutput)
        expected = referenceChecksum();

    for (unsigned i = 0; i < cfg.workers; ++i) {
        GuestProcessConfig pcfg;
        pcfg.pid = i;
        pcfg.seed = cfg.seed;
        pcfg.hipstr = cfg.hipstr;
        pcfg.outputCap = cfg.outputCap;
        if (_plan != nullptr) {
            pcfg.faultPlan = _plan.get();
            pcfg.watchdogQuanta = cfg.watchdogQuanta;
        }
        auto proc = std::make_unique<GuestProcess>(bin, pcfg);
        if (cfg.verifyOutput)
            proc->setExpectedChecksum(expected);
        proc->runtime().setTraceBuffer(cfg.trace);
        _workers.push_back(std::move(proc));
    }
}

uint64_t
ProtectedServer::referenceChecksum() const
{
    // One native run on the reference interpreter: the guest's output
    // is ISA-independent (the workloads are self-checking), so one
    // checksum covers every worker on either ISA.
    Memory mem;
    loadFatBinary(_bin, mem);
    GuestOs os;
    Interpreter interp(IsaKind::Cisc, mem, os);
    initMachineState(interp.state, _bin, IsaKind::Cisc);
    RunResult r = interp.run(1'000'000'000);
    if (r.reason != StopReason::Exited && r.reason != StopReason::Halted)
        hipstr_fatal("server reference run did not complete: %s",
                     stopReasonName(r.reason));
    return os.outputChecksum();
}

ServerReport
ProtectedServer::run(ThreadPool *pool)
{
    ServerReport report;

    // Per-worker in-flight request bookkeeping.
    struct InFlight
    {
        Request req;
        uint64_t startRound = 0;
        bool active = false;
    };
    std::vector<InFlight> inflight(_workers.size());
    std::vector<bool> retired(_workers.size(), false);

    std::deque<Request> requeue; // from retired workers
    uint64_t next_id = 0;
    std::vector<uint64_t> latencies;
    latencies.reserve(static_cast<size_t>(
        std::min<uint64_t>(_cfg.requestCount, 1 << 20)));
    uint64_t sig = 0xcbf29ce484222325ull;

    // Request-lifecycle tracing on the modeled timeline (one round =
    // one quantum per core through the CMP's aggregate rate).
    using telemetry::TraceCategory;
    telemetry::TraceBuffer *tr = _cfg.trace;
    const bool traced =
        tr != nullptr && tr->enabled(TraceCategory::Server);
    double us_per_round = 0;
    {
        double agg = _cmp.aggregateInstsPerSecond();
        if (agg > 0) {
            us_per_round = double(_cfg.sched.quantumInsts) *
                double(_cmp.totalCores()) / agg * 1e6;
        }
    }

    // Degraded-mode bookkeeping: a gauge for dashboards plus one
    // Server-category span per complete outage window.
    telemetry::GaugeMetric *degraded_gauge = _cfg.metrics != nullptr
        ? &_cfg.metrics->gauge("server.degraded_mode")
        : nullptr;
    if (degraded_gauge != nullptr)
        degraded_gauge->set(0);
    bool was_degraded = false;
    uint64_t degraded_start = 0;

    uint64_t done = 0;
    uint64_t round_no = 0;
    while (done < _cfg.requestCount && round_no < kMaxRounds) {
        // ---- Assign requests to idle workers in pid order. ----
        for (size_t w = 0; w < _workers.size(); ++w) {
            GuestProcess &proc = *_workers[w];
            if (retired[w] || inflight[w].active ||
                proc.state() != ProcState::Blocked) {
                continue;
            }
            Request r;
            if (!requeue.empty()) {
                r = requeue.front();
                requeue.pop_front();
            } else if (next_id < _cfg.requestCount) {
                r = _stream.make(next_id++);
            } else {
                continue;
            }
            proc.beginService(r.costInsts);
            // Stage the request's payload only on first delivery — a
            // retried request already burned its exploit.
            if (r.retries == 0) {
                if (r.kind == RequestKind::Attack)
                    (void)proc.injectAttackProbe(r.id);
                else if (r.kind == RequestKind::Malformed)
                    (void)proc.injectCorruption(r.id);
            }
            inflight[w] = InFlight{ r, round_no, true };
            _sched.notifyReady(&proc);
            if (traced) {
                tr->record(
                    telemetry::traceInstant(
                        TraceCategory::Server, "server.request.assign",
                        double(round_no) * us_per_round,
                        static_cast<uint32_t>(w) + 1)
                        .arg("id", r.id)
                        .arg("kind", static_cast<uint64_t>(r.kind))
                        .arg("cost_insts", r.costInsts)
                        .arg("retries", r.retries));
            }
        }

        if (_sched.idle() && !_sched.hasConvalescents()) {
            // Nothing runnable now or parked for later: either all
            // requests are done, or the remaining ones cannot be
            // served (every worker retired).
            bool any_alive = false;
            for (size_t w = 0; w < _workers.size(); ++w)
                any_alive = any_alive || !retired[w];
            if (!any_alive || (requeue.empty() &&
                               next_id >= _cfg.requestCount)) {
                break;
            }
        }

        _sched.round(pool);
        ++round_no;

        if (_plan != nullptr) {
            const bool deg = _sched.degraded();
            if (deg != was_degraded) {
                if (degraded_gauge != nullptr)
                    degraded_gauge->set(deg ? 1 : 0);
                if (deg) {
                    degraded_start = round_no;
                } else if (traced) {
                    tr->record(telemetry::traceSpan(
                        TraceCategory::Server, "server.degraded",
                        double(degraded_start) * us_per_round,
                        double(round_no - degraded_start) *
                            us_per_round,
                        0));
                }
                was_degraded = deg;
            }
        }

        // ---- Poll outcomes in pid order. ----
        for (size_t w = 0; w < _workers.size(); ++w) {
            GuestProcess &proc = *_workers[w];
            if (!inflight[w].active)
                continue;

            if (proc.state() == ProcState::Blocked) {
                // Service complete.
                const Request &r = inflight[w].req;
                uint64_t lat = round_no - inflight[w].startRound;
                latencies.push_back(lat);
                ++report.requestsServed;
                ++report.servedByKind[static_cast<size_t>(r.kind)];
                fold64(sig, r.id);
                fold64(sig, static_cast<uint64_t>(r.kind));
                fold64(sig, lat);
                fold64(sig, static_cast<uint64_t>(w));
                if (traced) {
                    tr->record(
                        telemetry::traceSpan(
                            TraceCategory::Server, "server.request",
                            double(inflight[w].startRound) *
                                us_per_round,
                            double(lat) * us_per_round,
                            static_cast<uint32_t>(w) + 1)
                            .arg("id", r.id)
                            .arg("kind", static_cast<uint64_t>(r.kind))
                            .arg("latency_rounds", lat));
                }
                inflight[w].active = false;
                ++done;
            } else if (proc.state() == ProcState::Crashed &&
                       _sched.isRetired(&proc)) {
                // Still Crashed after the scheduler round *and*
                // permanently retired (a worker merely parked in the
                // supervisor's infirmary keeps its request and will
                // finish it after respawning). The retired worker's
                // request goes back to the head of the queue for
                // another worker.
                retired[w] = true;
                Request r = inflight[w].req;
                ++r.retries;
                requeue.push_front(r);
                inflight[w].active = false;
                if (traced) {
                    tr->record(
                        telemetry::traceInstant(
                            TraceCategory::Server,
                            "server.request.retry",
                            double(round_no) * us_per_round,
                            static_cast<uint32_t>(w) + 1)
                            .arg("id", r.id)
                            .arg("retries", r.retries));
                }
            }
        }

        // All workers gone: the remaining stream is unservable.
        bool any_alive = false;
        for (size_t w = 0; w < _workers.size(); ++w)
            any_alive = any_alive || !retired[w];
        if (!any_alive) {
            report.requestsAbandoned =
                _cfg.requestCount - done;
            break;
        }
    }

    // ---- Aggregate. ----
    report.rounds = round_no;
    const SchedulerStats &ss = _sched.stats();
    report.migrationsRouted = ss.migrationsRouted;
    report.respawns = ss.respawns;
    report.retiredWorkers = ss.retired;
    report.coreOutages = ss.coreOutages;
    report.coreRecoveries = ss.coreRecoveries;
    report.offlineCoreQuanta = ss.offlineCoreQuanta;
    report.degradedEntries = ss.degradedEntries;
    report.degradedExits = ss.degradedExits;
    report.degradedRounds = ss.degradedRounds;
    report.reroutes = ss.reroutes;
    report.rerouteRespawns = ss.rerouteRespawns;
    report.quarantines = ss.quarantines;
    report.recoveries = ss.recoveries;
    report.meanRoundsToRecover = _sched.meanRoundsToRecover();
    for (const auto &proc : _workers) {
        GuestProcessStats s = proc->stats();
        report.totalGuestInsts += s.guestInsts;
        for (size_t i = 0; i < kNumIsas; ++i)
            report.guestInstsPerIsa[i] += s.guestInstsPerIsa[i];
        report.migrations += s.migrations;
        report.migrationsDenied += s.migrationsDenied;
        report.securityEvents += proc->securityEvents();
        report.crashes += s.crashes;
        report.programsCompleted += s.programsCompleted;
        report.checksumMismatches += s.checksumMismatches;
        report.probesStaged += s.probesStaged;
        report.phases += s.phases;
        for (size_t k = 0; k < kNumFaultKinds; ++k) {
            report.faultsInjected[k] += s.faultsInjected[k];
            report.faultsInjectedTotal += s.faultsInjected[k];
        }
        report.wedgedQuanta += s.wedgedQuanta;
        report.watchdogKills += s.watchdogKills;
        report.transformAborts += s.transformAborts;
        report.migrationsSuppressed += s.migrationsSuppressed;
        report.emergencyRelocations += s.emergencyRelocations;
        fold64(sig, proc->statsSignature());
    }

    if (_plan != nullptr && _cfg.metrics != nullptr) {
        telemetry::MetricRegistry &m = *_cfg.metrics;
        for (size_t k = 1; k < kNumFaultKinds; ++k) {
            m.counter(std::string("server.fault.") +
                      faultKindName(static_cast<FaultKind>(k)))
                .set(report.faultsInjected[k]);
        }
        m.counter("server.fault.total").set(report.faultsInjectedTotal);
        m.counter("server.fault.wedged_quanta").set(report.wedgedQuanta);
        m.counter("server.fault.watchdog_kills")
            .set(report.watchdogKills);
        m.counter("server.fault.transform_aborts")
            .set(report.transformAborts);
        m.counter("server.fault.migrations_suppressed")
            .set(report.migrationsSuppressed);
        m.counter("server.fault.emergency_relocations")
            .set(report.emergencyRelocations);
        m.counter("server.fault.core_outages").set(report.coreOutages);
        m.counter("server.fault.core_recoveries")
            .set(report.coreRecoveries);
        m.counter("server.fault.offline_core_quanta")
            .set(report.offlineCoreQuanta);
        m.counter("server.fault.degraded_entries")
            .set(report.degradedEntries);
        m.counter("server.fault.degraded_exits")
            .set(report.degradedExits);
        m.counter("server.fault.degraded_rounds")
            .set(report.degradedRounds);
        m.counter("server.fault.reroutes").set(report.reroutes);
        m.counter("server.fault.reroute_respawns")
            .set(report.rerouteRespawns);
        m.counter("server.fault.quarantines").set(report.quarantines);
        m.counter("server.fault.recoveries").set(report.recoveries);
        m.gauge("server.fault.mean_rounds_to_recover")
            .set(report.meanRoundsToRecover);
    }

    if (!latencies.empty()) {
        std::vector<uint64_t> sorted = latencies;
        std::sort(sorted.begin(), sorted.end());
        double sum = 0;
        for (uint64_t l : sorted)
            sum += double(l);
        report.latency.meanRounds = sum / double(sorted.size());
        report.latency.p50Rounds = sorted[sorted.size() / 2];
        report.latency.p95Rounds =
            sorted[std::min(sorted.size() - 1,
                            sorted.size() * 95 / 100)];
        report.latency.maxRounds = sorted.back();
    }

    // Modeled time: every round advances the machine by one quantum
    // on each core; the CMP's aggregate rate converts that to
    // seconds. Purely configuration-derived — no host clock touches
    // the report.
    double agg = _cmp.aggregateInstsPerSecond();
    if (agg > 0) {
        report.modeledSeconds =
            double(report.rounds) *
            double(_cfg.sched.quantumInsts) *
            double(_cmp.totalCores()) / agg;
        if (report.modeledSeconds > 0) {
            report.requestsPerModeledSecond =
                double(report.requestsServed) /
                report.modeledSeconds;
        }
    }

    report.signature = sig;
    return report;
}

} // namespace hipstr
