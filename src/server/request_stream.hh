/**
 * @file
 * Synthetic request stream for the protected server: an httpd-style
 * traffic model where each request is a pure function of (stream
 * seed, request id). Requests arrive in id order; their kind and
 * service cost never depend on scheduling, so a server run is
 * reproducible for a fixed configuration regardless of how many host
 * threads execute it.
 */

#ifndef HIPSTR_SERVER_REQUEST_STREAM_HH
#define HIPSTR_SERVER_REQUEST_STREAM_HH

#include <cstdint>

#include "support/random.hh"

namespace hipstr
{

/** What a request asks the worker to do. */
enum class RequestKind : uint8_t
{
    Static = 0, ///< cheap static-file style response
    Dynamic,    ///< scripted page: the expensive common case
    Post,       ///< mutation request: mid-weight
    Malformed,  ///< parser-corrupting input — crashes the worker
    Attack      ///< ROP payload: raises a PSR security event
};

constexpr size_t kNumRequestKinds = 5;

inline const char *
requestKindName(RequestKind k)
{
    switch (k) {
      case RequestKind::Static: return "static";
      case RequestKind::Dynamic: return "dynamic";
      case RequestKind::Post: return "post";
      case RequestKind::Malformed: return "malformed";
      case RequestKind::Attack: return "attack";
    }
    return "?";
}

/**
 * Traffic composition. Fractions of the stream that are dynamic,
 * post, malformed, and attack requests; the remainder is static. The
 * clean mix (all zeros for malformed/attack) drives the baseline
 * throughput experiment; the attack-bearing mix drives the security
 * one.
 */
struct RequestMix
{
    double dynamicFrac = 0.25;
    double postFrac = 0.10;
    double malformedFrac = 0.0;
    double attackFrac = 0.0;
};

/** Mean service cost per kind, in guest instructions. */
struct RequestCosts
{
    uint64_t staticInsts = 20'000;
    uint64_t dynamicInsts = 60'000;
    uint64_t postInsts = 40'000;
    uint64_t malformedInsts = 10'000;
    uint64_t attackInsts = 40'000;
};

/** One request of the stream. */
struct Request
{
    uint64_t id = 0;
    RequestKind kind = RequestKind::Static;
    uint64_t costInsts = 0; ///< guest instructions to serve it
    unsigned retries = 0;   ///< times re-queued after worker loss
};

/**
 * The stream generator. make(id) is deterministic and stateless: two
 * calls with the same id return the same request, so the server can
 * materialize requests lazily in arrival order.
 */
class RequestStream
{
  public:
    RequestStream(uint64_t seed, const RequestMix &mix,
                  const RequestCosts &costs)
        : _seed(seed), _mix(mix), _costs(costs)
    {
    }

    Request
    make(uint64_t id) const
    {
        // Private per-request generator: fold the id into the stream
        // seed through SplitMix64 so neighbouring ids decorrelate.
        uint64_t s = _seed + 0x9e3779b97f4a7c15ull * (id + 1);
        Rng rng(splitMix64(s));

        Request r;
        r.id = id;
        double roll = rng.uniform();
        uint64_t mean = _costs.staticInsts;
        if (roll < _mix.attackFrac) {
            r.kind = RequestKind::Attack;
            mean = _costs.attackInsts;
        } else if (roll < _mix.attackFrac + _mix.malformedFrac) {
            r.kind = RequestKind::Malformed;
            mean = _costs.malformedInsts;
        } else if (roll < _mix.attackFrac + _mix.malformedFrac +
                       _mix.dynamicFrac) {
            r.kind = RequestKind::Dynamic;
            mean = _costs.dynamicInsts;
        } else if (roll < _mix.attackFrac + _mix.malformedFrac +
                       _mix.dynamicFrac + _mix.postFrac) {
            r.kind = RequestKind::Post;
            mean = _costs.postInsts;
        }
        // +/-25% uniform jitter around the kind's mean cost.
        uint64_t spread = mean / 2;
        r.costInsts = mean - spread / 2 +
            (spread ? rng.below(spread + 1) : 0);
        return r;
    }

    uint64_t seed() const { return _seed; }
    const RequestMix &mix() const { return _mix; }
    const RequestCosts &costs() const { return _costs; }

  private:
    uint64_t _seed;
    RequestMix _mix;
    RequestCosts _costs;
};

} // namespace hipstr

#endif // HIPSTR_SERVER_REQUEST_STREAM_HH
