#include "cmp_model.hh"

#include "support/logging.hh"

namespace hipstr
{

CmpModel::CmpModel(const CmpConfig &cfg) : _cfg(cfg)
{
    hipstr_assert(cfg.riscCores + cfg.ciscCores > 0);
    unsigned id = 0;
    for (unsigned i = 0; i < cfg.riscCores; ++i)
        _cores.push_back(CmpCore{ id++, IsaKind::Risc });
    for (unsigned i = 0; i < cfg.ciscCores; ++i)
        _cores.push_back(CmpCore{ id++, IsaKind::Cisc });
    _count[static_cast<size_t>(IsaKind::Risc)] = cfg.riscCores;
    _count[static_cast<size_t>(IsaKind::Cisc)] = cfg.ciscCores;
}

double
CmpModel::instsPerSecond(IsaKind isa) const
{
    const CoreConfig &cc = coreConfig(isa);
    return cc.baseIpc * cc.freqGhz * 1e9;
}

double
CmpModel::aggregateInstsPerSecond() const
{
    double total = 0;
    for (const CmpCore &core : _cores)
        total += instsPerSecond(core.isa);
    return total;
}

std::string
CmpModel::describe() const
{
    return std::to_string(_cfg.riscCores) + "xRisc + " +
        std::to_string(_cfg.ciscCores) + "xCisc";
}

} // namespace hipstr
