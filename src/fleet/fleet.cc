#include "fleet.hh"

#include <algorithm>

#include "attack/campaign.hh"
#include "support/logging.hh"
#include "support/random.hh"

namespace hipstr
{

namespace
{

/** Livelock valve: far above any configured fleet stream. */
constexpr uint64_t kMaxFleetRounds = 10'000'000;

/** Fleet-latency histogram geometry: 1-round bins, the last bin
 *  absorbing pathological tails (maxRounds stays exact). 16k bins
 *  keep round-exact percentiles even for backlogged open-loop runs
 *  (a 30k-request overload bench sees p99 in the thousands). */
constexpr size_t kLatencyBins = 16384;

void
fold64(uint64_t &h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
    }
}

/** Disposal markers folded into the run signature so event streams
 *  that differ only in kind cannot collide. */
constexpr uint64_t kSigServed = 0x5e72;
constexpr uint64_t kSigShed = 0x51ed;
constexpr uint64_t kSigAbandoned = 0xaba7;
constexpr uint64_t kSigRetry = 0x2e72;

} // namespace

const char *
fleetOutcomeName(FleetOutcome o)
{
    switch (o) {
      case FleetOutcome::Served: return "served";
      case FleetOutcome::ShedDeadline: return "shed_deadline";
      case FleetOutcome::Abandoned: return "abandoned";
    }
    return "?";
}

ServerConfig
shardServerConfig(const FleetConfig &cfg, unsigned k)
{
    ServerConfig sc = cfg.server;
    sc.shardMode = true;
    // The shard draws nothing itself; its requestCount only sizes
    // internal reservations, and the fleet bounds what one shard can
    // be asked to hold.
    sc.requestCount = cfg.requestCount;
    // Per-shard seeds fold (fleet seed, shard id) through SplitMix64
    // so shards decorrelate but derive from nothing else — the
    // byte-identity root of the determinism contract.
    uint64_t s = cfg.seed ^ (0x9e3779b97f4a7c15ull * (k + 1));
    sc.seed = splitMix64(s);
    if (sc.faults.enabled) {
        uint64_t fs =
            cfg.server.faults.seed ^ (0xd1b54a32d192ed03ull * (k + 1));
        sc.faults.seed = splitMix64(fs);
    }
    // Observers: the fleet's trace flows through (shard events share
    // the modeled timeline); the registry does not (per-shard gauges
    // under one name would collide — the fleet publishes instead).
    sc.trace = cfg.trace;
    sc.metrics = nullptr;
    sc.tap = nullptr;
    sc.faultPlanOverride = k < cfg.shardPlanOverrides.size()
        ? cfg.shardPlanOverrides[k]
        : nullptr;
    // Campaign plumbing: shards observe probe outcomes on their own
    // channel but never rewrite (the fleet's ingest does) and never
    // commit (the fleet commits once per fleet round, in shard-index
    // order — the permuteShardStep invariance root).
    sc.campaign = cfg.campaign;
    sc.campaignShard = k;
    sc.campaignCommits = false;
    // onComplete/onRetry are wired by the ProtectedFleet constructor.
    sc.onComplete = nullptr;
    sc.onRetry = nullptr;
    return sc;
}

ProtectedFleet::ProtectedFleet(const FatBinary &bin,
                               const FleetConfig &cfg)
    : _bin(bin), _cfg(cfg),
      _stream(cfg.seed, cfg.mix, cfg.costs),
      _sig(0xcbf29ce484222325ull)
{
    hipstr_assert(cfg.shards > 0);
    hipstr_assert(cfg.sessions > 0);
    hipstr_assert(cfg.vnodesPerShard > 0);
    hipstr_assert(cfg.queueCap > 0);
    hipstr_assert(cfg.batchSize > 0);
    hipstr_assert(cfg.shardPlanOverrides.empty() ||
                  cfg.shardPlanOverrides.size() == cfg.shards);

    // Consistent-hash ring: vnodesPerShard points per shard, each a
    // pure function of (fleet seed, shard, vnode). Ties (vanishingly
    // rare) break on shard id so the sort is total.
    for (unsigned k = 0; k < cfg.shards; ++k) {
        for (unsigned v = 0; v < cfg.vnodesPerShard; ++v) {
            uint64_t s = cfg.seed ^
                (0x9e3779b97f4a7c15ull * (k + 1)) ^
                (0x2545f4914f6cdd1dull * (v + 1));
            _ring.push_back(RingPoint{ splitMix64(s), k });
        }
    }
    std::sort(_ring.begin(), _ring.end(),
              [](const RingPoint &a, const RingPoint &b) {
                  return a.point != b.point ? a.point < b.point
                                            : a.shard < b.shard;
              });

    _queues.resize(cfg.shards);
    _completed.resize(cfg.shards);
    _retried.resize(cfg.shards);
    _disposed.assign(cfg.requestCount, 0);
    for (unsigned k = 0; k < cfg.shards; ++k) {
        ServerConfig sc = shardServerConfig(cfg, k);
        sc.onComplete = [this, k](const Request &r, uint64_t lat) {
            _completed[k].emplace_back(r, lat);
        };
        sc.onRetry = [this, k](const Request &r) {
            _retried[k].push_back(r);
        };
        _shards.push_back(
            std::make_unique<ProtectedServer>(bin, sc));
        _lat.push_back(std::make_unique<telemetry::HistogramMetric>(
            "fleet.latency", 1, kLatencyBins));
    }
}

ProtectedFleet::~ProtectedFleet() = default;

uint64_t
ProtectedFleet::sessionOf(uint64_t id) const
{
    uint64_t s = _cfg.seed ^ (0x94d049bb133111ebull * (id + 1));
    return splitMix64(s) % _cfg.sessions;
}

uint32_t
ProtectedFleet::shardOf(uint64_t session) const
{
    uint64_t s = _cfg.seed ^ (0xbf58476d1ce4e5b9ull * (session + 1));
    uint64_t h = splitMix64(s);
    // First ring point at or after the session's hash, wrapping.
    auto it = std::lower_bound(
        _ring.begin(), _ring.end(), h,
        [](const RingPoint &p, uint64_t v) { return p.point < v; });
    if (it == _ring.end())
        it = _ring.begin();
    return it->shard;
}

bool
ProtectedFleet::shardStormy(unsigned k) const
{
    const ProtectedServer &s = *_shards[k];
    return s.liveWorkers() == 0 ||
        s.scheduler().convalescentCount() > 0 ||
        s.scheduler().degraded();
}

void
ProtectedFleet::dispose(const Pending &p, uint32_t shard,
                        FleetOutcome o, uint64_t latency)
{
    hipstr_assert(p.req.id < _disposed.size());
    if (_disposed[p.req.id]) {
        hipstr_fatal("fleet request %llu disposed twice",
                     static_cast<unsigned long long>(p.req.id));
    }
    _disposed[p.req.id] = 1;

    switch (o) {
      case FleetOutcome::Served:
        ++_report.requestsServed;
        ++_report.servedByKind[static_cast<size_t>(p.req.kind)];
        fold64(_sig, kSigServed);
        break;
      case FleetOutcome::ShedDeadline:
        ++_report.requestsShed;
        fold64(_sig, kSigShed);
        break;
      case FleetOutcome::Abandoned:
        ++_report.requestsAbandoned;
        fold64(_sig, kSigAbandoned);
        break;
    }
    fold64(_sig, p.req.id);
    fold64(_sig, static_cast<uint64_t>(p.req.kind));
    fold64(_sig, latency);
    fold64(_sig, shard);

    // Commutative witness over (id, session, kind, outcome): the
    // wrapping sum is order- and placement-independent, so a run
    // where every request is served folds identically for any shard
    // count.
    uint64_t x = _cfg.seed ^ (0x9e3779b97f4a7c15ull * (p.req.id + 1)) ^
        (p.session << 24) ^
        (static_cast<uint64_t>(p.req.kind) << 8) ^
        static_cast<uint64_t>(o);
    _outcomeSetSig += splitMix64(x);

    // Non-served disposals are silence from the attacker's seat: the
    // request vanished without a response or a reset.
    if (_cfg.campaign != nullptr && o != FleetOutcome::Served) {
        attack::ProbeEvent ev;
        ev.id = p.req.id;
        ev.signal = attack::ProbeSignal::Silence;
        ev.shard = shard;
        ev.latencyRounds = latency;
        _cfg.campaign->observe(ev);
    }

    if (_cfg.keepOutcomes) {
        FleetOutcomeRec rec;
        rec.id = p.req.id;
        rec.session = p.session;
        rec.shard = shard;
        rec.homeShard = p.home;
        rec.kind = p.req.kind;
        rec.outcome = o;
        rec.latencyRounds = latency;
        rec.retries = p.req.retries;
        _report.outcomes.push_back(rec);
    }
}

void
ProtectedFleet::shedRound()
{
    if (_cfg.sloRounds == 0)
        return;
    using telemetry::TraceCategory;
    auto expired = [&](const Pending &p) {
        return _roundNo - p.arrival >= _cfg.sloRounds;
    };
    auto shedFrom = [&](std::deque<Pending> &q, bool useHome,
                        uint32_t shard) {
        std::deque<Pending> keep;
        while (!q.empty()) {
            Pending p = q.front();
            q.pop_front();
            if (!expired(p)) {
                keep.push_back(p);
                continue;
            }
            uint64_t age = _roundNo - p.arrival;
            uint32_t at = useHome ? p.home : shard;
            dispose(p, at, FleetOutcome::ShedDeadline, age);
            if (_traced) {
                _cfg.trace->record(
                    telemetry::traceInstant(
                        TraceCategory::Fleet, "fleet.shed",
                        double(_roundNo) * _usPerRound, 0, at)
                        .arg("id", p.req.id)
                        .arg("age_rounds", age));
            }
        }
        q.swap(keep);
    };
    shedFrom(_arrival, true, 0);
    for (unsigned k = 0; k < _cfg.shards; ++k)
        shedFrom(_queues[k], false, k);
}

void
ProtectedFleet::ingestRound()
{
    for (unsigned b = 0;
         b < _cfg.batchSize && _nextId < _cfg.requestCount; ++b) {
        uint64_t id = _nextId++;
        const uint64_t session = sessionOf(id);
        const uint32_t home = shardOf(session);
        Request r;
        // Record/replay seam, mirroring the single server's: a
        // replayer supplies the journaled request, a recorder logs
        // the live draw. The campaign rewrites between draw and
        // journal, so recordings carry the probes.
        if (_cfg.tap == nullptr || !_cfg.tap->supplyRequest(id, r)) {
            r = _stream.make(id);
            if (_cfg.campaign != nullptr)
                _cfg.campaign->rewrite(r, home, session, _roundNo);
            if (_cfg.tap != nullptr)
                _cfg.tap->requestDrawn(r);
        }
        Pending p;
        p.req = r;
        p.session = session;
        p.home = home;
        p.arrival = _roundNo;
        _arrival.push_back(p);
    }
}

void
ProtectedFleet::routeRound()
{
    std::deque<Pending> stalled;
    while (!_arrival.empty()) {
        Pending p = _arrival.front();
        _arrival.pop_front();
        if (!_cfg.workStealing &&
            _shards[p.home]->liveWorkers() == 0) {
            // Nothing will ever drain this shard's queue and no
            // thief exists: a typed drop beats an eternal stall.
            dispose(p, p.home, FleetOutcome::Abandoned,
                    _roundNo - p.arrival);
            continue;
        }
        if (_queues[p.home].size() < _cfg.queueCap) {
            _queues[p.home].push_back(p);
        } else {
            ++_report.backpressureStalls;
            stalled.push_back(p);
        }
    }
    _arrival.swap(stalled);
}

void
ProtectedFleet::stealRound(const std::vector<bool> &stormy)
{
    using telemetry::TraceCategory;
    for (unsigned s = 0; s < _cfg.shards; ++s) {
        if (!stormy[s] || _queues[s].empty())
            continue;
        for (unsigned d = 0;
             d < _cfg.shards && !_queues[s].empty(); ++d) {
            if (d == s || stormy[d])
                continue;
            // Spare capacity the donor can absorb beyond its own
            // queue — every stolen request dispatches this round.
            long spare =
                static_cast<long>(_shards[d]->admissionCapacity()) -
                static_cast<long>(_queues[d].size());
            while (spare > 0 && !_queues[s].empty()) {
                Pending p = _queues[s].front();
                _queues[s].pop_front();
                _queues[d].push_back(p);
                ++_report.steals;
                --spare;
                if (_traced) {
                    _cfg.trace->record(
                        telemetry::traceInstant(
                            TraceCategory::Fleet, "fleet.steal",
                            double(_roundNo) * _usPerRound, 0, d)
                            .arg("id", p.req.id)
                            .arg("from", s)
                            .arg("to", d));
                }
            }
        }
    }
}

void
ProtectedFleet::finishShardFold(unsigned k)
{
    using telemetry::TraceCategory;
    for (const auto &done : _completed[k]) {
        const Request &r = done.first;
        auto it = _inflight.find(r.id);
        if (it == _inflight.end()) {
            hipstr_fatal("shard %u completed unknown request %llu",
                         k, static_cast<unsigned long long>(r.id));
        }
        Pending p = it->second;
        _inflight.erase(it);
        p.req = r; // the shard's copy carries the retry count
        uint64_t lat = _roundNo - p.arrival;
        _lat[k]->sample(lat);
        _report.maxRounds = std::max(_report.maxRounds, lat);
        dispose(p, k, FleetOutcome::Served, lat);
    }
    _completed[k].clear();

    for (const Request &r : _retried[k]) {
        auto it = _inflight.find(r.id);
        if (it == _inflight.end()) {
            hipstr_fatal("shard %u retried unknown request %llu",
                         k, static_cast<unsigned long long>(r.id));
        }
        Pending p = it->second;
        _inflight.erase(it);
        p.req = r; // retries already incremented by the shard
        ++_report.requestsRetried;
        fold64(_sig, kSigRetry);
        fold64(_sig, r.id);
        fold64(_sig, k);
        // Ahead of new arrivals: an already-aged request re-routes
        // (home shard, or a thief) before fresh traffic.
        _arrival.push_front(p);
        if (_traced) {
            _cfg.trace->record(
                telemetry::traceInstant(
                    TraceCategory::Fleet, "fleet.retry",
                    double(_roundNo) * _usPerRound, 0, k)
                    .arg("id", r.id)
                    .arg("retries", r.retries));
        }
    }
    _retried[k].clear();
}

uint64_t
ProtectedFleet::roundSyncSignature() const
{
    uint64_t h = 0xcbf29ce484222325ull;
    fold64(h, _roundNo);
    fold64(h, _nextId);
    fold64(h, _report.requestsServed);
    fold64(h, _report.requestsShed);
    fold64(h, _report.requestsAbandoned);
    fold64(h, _arrival.size());
    for (unsigned k = 0; k < _cfg.shards; ++k) {
        fold64(h, _queues[k].size());
        fold64(h, _shards[k]->roundSyncSignature());
    }
    return h;
}

FleetReport
ProtectedFleet::run(ThreadPool *pool)
{
    hipstr_assert(!_ran);
    _ran = true;

    using telemetry::TraceCategory;
    _traced = _cfg.trace != nullptr &&
        _cfg.trace->enabled(TraceCategory::Fleet);
    for (unsigned k = 0; k < _cfg.shards; ++k)
        _shards[k]->beginRun();
    double agg = _shards[0]->cmp().aggregateInstsPerSecond();
    if (agg > 0) {
        _usPerRound = double(_cfg.server.sched.quantumInsts) *
            double(_shards[0]->cmp().totalCores()) / agg * 1e6;
    }

    bool finished = false;
    while (!finished) {
        // 1. SLO shedding on everything still waiting for a worker.
        shedRound();

        // 2. Batched ingestion of new requests.
        ingestRound();

        // 3. Route arrivals to their pinned shards' bounded queues.
        routeRound();

        // 4. Respawn-storm work stealing.
        if (_cfg.workStealing) {
            std::vector<bool> stormy(_cfg.shards);
            bool any = false;
            for (unsigned k = 0; k < _cfg.shards; ++k) {
                stormy[k] = shardStormy(k);
                any = any || stormy[k];
            }
            if (any)
                stealRound(stormy);
        }

        // 5. Dispatch up to each shard's idle-worker capacity.
        for (unsigned k = 0; k < _cfg.shards; ++k) {
            size_t n = std::min<size_t>(
                _shards[k]->admissionCapacity(), _queues[k].size());
            for (size_t i = 0; i < n; ++i) {
                Pending p = _queues[k].front();
                _queues[k].pop_front();
                _shards[k]->submitExternal(p.req);
                _inflight.emplace(p.req.id, p);
            }
        }

        // 6. One scheduler round per shard. The visit order is
        // irrelevant by construction (disjoint state, fixed-order
        // fold below); permuteShardStep rotates it to prove that.
        for (unsigned i = 0; i < _cfg.shards; ++i) {
            unsigned k = _cfg.permuteShardStep
                ? static_cast<unsigned>((i + _roundNo) % _cfg.shards)
                : i;
            _shards[k]->stepRound(pool);
        }
        ++_roundNo;

        // 7. Fold completions and retries in shard-index order.
        for (unsigned k = 0; k < _cfg.shards; ++k)
            finishShardFold(k);

        // 8. Typed abandonment when no worker anywhere can serve.
        unsigned live = 0;
        for (unsigned k = 0; k < _cfg.shards; ++k)
            live += _shards[k]->liveWorkers();
        if (live == 0) {
            hipstr_assert(_inflight.empty());
            for (unsigned k = 0; k < _cfg.shards; ++k) {
                for (const Pending &p : _queues[k])
                    dispose(p, k, FleetOutcome::Abandoned,
                            _roundNo - p.arrival);
                _queues[k].clear();
            }
            for (const Pending &p : _arrival)
                dispose(p, p.home, FleetOutcome::Abandoned,
                        _roundNo - p.arrival);
            _arrival.clear();
            // Requests past _nextId were never ingested — they do
            // not count as offered (the client never got to send
            // them), so availability stays served/offered over what
            // the fleet actually admitted.
            finished = true;
        } else if (!_cfg.workStealing) {
            // A dead shard's queue can only be drained by a thief;
            // without stealing those requests get a typed drop now.
            for (unsigned k = 0; k < _cfg.shards; ++k) {
                if (_shards[k]->liveWorkers() != 0)
                    continue;
                for (const Pending &p : _queues[k])
                    dispose(p, k, FleetOutcome::Abandoned,
                            _roundNo - p.arrival);
                _queues[k].clear();
            }
        }

        // 9. Done when the stream is drained and nothing is queued,
        // stalled, or in flight anywhere.
        if (!finished && _nextId >= _cfg.requestCount &&
            _arrival.empty() && _inflight.empty()) {
            bool empty = true;
            for (unsigned k = 0; k < _cfg.shards; ++k)
                empty = empty && _queues[k].empty();
            finished = empty;
        }

        // Commit the campaign's buffered observations for this round
        // — after every shard stepped and every disposal landed, so
        // the engine sees one canonical, shard-ordered event stream
        // regardless of the step permutation above.
        if (_cfg.campaign != nullptr)
            _cfg.campaign->commitRound(_roundNo);

        if (_traced) {
            size_t queued = 0;
            for (unsigned k = 0; k < _cfg.shards; ++k)
                queued += _queues[k].size();
            _cfg.trace->record(
                telemetry::traceInstant(
                    TraceCategory::Fleet, "fleet.round",
                    double(_roundNo) * _usPerRound)
                    .arg("round", _roundNo)
                    .arg("stalled", _arrival.size())
                    .arg("queued", queued)
                    .arg("inflight", _inflight.size()));
        }
        if (_cfg.tap != nullptr)
            _cfg.tap->roundEnd(_roundNo, roundSyncSignature());
        if (_roundNo >= kMaxFleetRounds)
            hipstr_fatal("fleet livelocked after %llu rounds",
                         static_cast<unsigned long long>(_roundNo));
    }

    // ---- Merge. ----
    FleetReport rep = std::move(_report);
    _report = FleetReport{};
    rep.requestsOffered = _nextId;
    rep.rounds = _roundNo;
    rep.availability = rep.requestsOffered > 0
        ? double(rep.requestsServed) / double(rep.requestsOffered)
        : 1.0;

    telemetry::HistogramMetric merged("fleet.latency", 1,
                                      kLatencyBins);
    for (unsigned k = 0; k < _cfg.shards; ++k)
        merged.merge(*_lat[k]);
    rep.meanLatencyRounds = merged.mean();
    rep.p50Rounds = merged.percentile(0.50);
    rep.p99Rounds = merged.percentile(0.99);
    rep.p999Rounds = merged.percentile(0.999);

    uint64_t sig = _sig;
    for (unsigned k = 0; k < _cfg.shards; ++k) {
        ServerReport sr = _shards[k]->finishRun();
        rep.totalGuestInsts += sr.totalGuestInsts;
        rep.securityEvents += sr.securityEvents;
        rep.migrations += sr.migrations;
        rep.crashes += sr.crashes;
        rep.respawns += sr.respawns;
        rep.retiredWorkers += sr.retiredWorkers;
        rep.quarantines += sr.quarantines;
        rep.faultsInjectedTotal += sr.faultsInjectedTotal;
        fold64(sig, sr.signature);
        rep.shardReports.push_back(std::move(sr));
    }
    fold64(sig, rep.rounds);
    fold64(sig, rep.requestsOffered);
    fold64(sig, rep.steals);
    fold64(sig, rep.backpressureStalls);
    rep.signature = sig;
    rep.outcomeSetSignature = _outcomeSetSig;

    if (_cfg.metrics != nullptr) {
        telemetry::MetricRegistry &m = *_cfg.metrics;
        const std::string &p = _cfg.metricsPrefix;
        m.counter(p + ".requests_offered").set(rep.requestsOffered);
        m.counter(p + ".requests_served").set(rep.requestsServed);
        m.counter(p + ".requests_shed").set(rep.requestsShed);
        m.counter(p + ".requests_abandoned")
            .set(rep.requestsAbandoned);
        m.counter(p + ".requests_retried").set(rep.requestsRetried);
        m.counter(p + ".steals").set(rep.steals);
        m.counter(p + ".backpressure_stalls")
            .set(rep.backpressureStalls);
        m.counter(p + ".rounds").set(rep.rounds);
        m.gauge(p + ".availability").set(rep.availability);
        m.gauge(p + ".latency_mean_rounds")
            .set(rep.meanLatencyRounds);
        m.counter(p + ".latency_p50_rounds").set(rep.p50Rounds);
        m.counter(p + ".latency_p99_rounds").set(rep.p99Rounds);
        m.counter(p + ".latency_p999_rounds").set(rep.p999Rounds);
        m.counter(p + ".latency_max_rounds").set(rep.maxRounds);
        telemetry::CounterFamily &byOutcome =
            m.family(p + ".requests", { "outcome" });
        byOutcome.at({ "served" }).set(rep.requestsServed);
        byOutcome.at({ "shed_deadline" }).set(rep.requestsShed);
        byOutcome.at({ "abandoned" }).set(rep.requestsAbandoned);
        telemetry::CounterFamily &byKind =
            m.family(p + ".served", { "kind" });
        for (size_t i = 0; i < kNumRequestKinds; ++i) {
            byKind
                .at({ requestKindName(
                    static_cast<RequestKind>(i)) })
                .set(rep.servedByKind[i]);
        }
        telemetry::CounterFamily &byShard =
            m.family(p + ".shard.served", { "shard" });
        for (unsigned k = 0; k < _cfg.shards; ++k) {
            byShard.at({ std::to_string(k) })
                .set(rep.shardReports[k].requestsServed);
        }
    }

    return rep;
}

} // namespace hipstr
