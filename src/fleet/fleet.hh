/**
 * @file
 * Sharded multi-CMP fleet: K ProtectedServer shards behind a
 * deterministic load balancer — the scale-out tier that turns the
 * paper's single-CMP Section 5.3 deployment into a serving fleet.
 *
 * Architecture (DESIGN.md has the full contract):
 *
 *  - Session pinning by consistent hashing: every request belongs to
 *    a session (a pure hash of its id), and sessions map to shards
 *    through a vnode ring derived only from (fleet seed, shard id) —
 *    the same session lands on the same shard for the whole run.
 *  - Bounded admission queues with backpressure: each shard fronts a
 *    queue of at most queueCap requests; a full queue stalls new
 *    arrivals in the fleet's routing buffer rather than dropping
 *    them.
 *  - SLO-aware shedding: with sloRounds set, a request older than its
 *    deadline is dropped with the typed FleetOutcome::ShedDeadline —
 *    never silently.
 *  - Batched ingestion: at most batchSize new requests enter the
 *    fleet per scheduling round, modeling an arrival rate instead of
 *    an infinitely fast client.
 *  - Cross-shard work stealing during respawn storms: when a shard is
 *    stormy (crashed workers convalescing in the supervisor's
 *    infirmary, every worker retired, or degraded single-ISA mode),
 *    healthy shards with spare capacity drain its queue, oldest
 *    requests first.
 *
 * Determinism: the balancer is sequential and a pure function of the
 * fleet state; shard quanta parallelize internally (HIPSTR_JOBS) but
 * completions are folded in fixed shard-index order, and per-shard
 * seeds derive from (fleet seed, shard id) alone — so the merged
 * FleetReport is byte-identical across thread counts and across
 * shard-execution interleavings (permuteShardStep exercises this).
 */

#ifndef HIPSTR_FLEET_FLEET_HH
#define HIPSTR_FLEET_FLEET_HH

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "server/protected_server.hh"

namespace hipstr
{

/** How the fleet disposed of one request. Every ingested request gets
 *  exactly one of these — nothing is dropped silently. */
enum class FleetOutcome : uint8_t
{
    Served = 0,   ///< completed by a shard worker
    ShedDeadline, ///< dropped after exceeding the SLO deadline
    Abandoned     ///< unservable: no live worker could ever take it
};

constexpr size_t kNumFleetOutcomes = 3;

const char *fleetOutcomeName(FleetOutcome o);

/**
 * Observation/substitution seam for record/replay at the fleet level,
 * mirroring ServerTap: the balancer's request draws are the fleet's
 * only stream nondeterminism, and each fleet round ends with a sync
 * signature. A null tap leaves the loop untouched.
 */
class FleetTap
{
  public:
    virtual ~FleetTap() = default;

    /** Offer to supply request @p id instead of drawing it from the
     *  fleet stream (a replayer answers from its journal). */
    virtual bool supplyRequest(uint64_t id, Request &out)
    {
        (void)id;
        (void)out;
        return false;
    }

    /** A request was drawn from the live fleet stream. */
    virtual void requestDrawn(const Request &r) { (void)r; }

    /** A fleet round completed (1-based, like ServerTap). */
    virtual void roundEnd(uint64_t round, uint64_t syncSig)
    {
        (void)round;
        (void)syncSig;
    }
};

/** Fleet configuration. */
struct FleetConfig
{
    /** Shard count K: independent ProtectedServer instances, each on
     *  its own modeled CMP. */
    unsigned shards = 4;

    /**
     * Per-shard server template. The fleet overrides the shard-mode
     * plumbing (shardMode, callbacks, tap) and derives per-shard
     * seeds; everything else — workers, CMP shape, mix-independent
     * knobs, supervisor policy, fault rates — applies to every shard
     * identically. The template's own requestCount/seed/mix are not
     * used for request generation (the fleet stream below is).
     */
    ServerConfig server;

    /** Total requests offered to the fleet. */
    uint64_t requestCount = 1000;
    /** Fleet seed: request stream, session hashing, vnode ring, and
     *  the root of every per-shard seed. */
    uint64_t seed = 0xf1ee7;
    /** Traffic composition/costs of the fleet stream. @{ */
    RequestMix mix;
    RequestCosts costs;
    /** @} */

    /** Distinct session ids requests hash into. */
    uint64_t sessions = 64;
    /** Ring points per shard; more vnodes = smoother pinning. */
    unsigned vnodesPerShard = 16;
    /** Per-shard admission-queue bound (backpressure beyond it). */
    size_t queueCap = 64;
    /** Rounds a request may wait unassigned before it is shed;
     *  0 disables deadline shedding. */
    uint64_t sloRounds = 0;
    /** New requests ingested per fleet round. */
    unsigned batchSize = 32;
    /** Cross-shard stealing during respawn storms. */
    bool workStealing = true;

    /** Retain one FleetOutcomeRec per request in the report. */
    bool keepOutcomes = false;
    /**
     * Rotate the order shards execute their round by the round number
     * (shard state is disjoint, so the report must not change) —
     * the interleaving-independence knob the tests flip.
     */
    bool permuteShardStep = false;

    /** Observers (never part of behaviour). @{ */
    telemetry::TraceBuffer *trace = nullptr;
    telemetry::MetricRegistry *metrics = nullptr;
    /** Metric-name prefix, e.g. "fleet" → "fleet.availability". */
    std::string metricsPrefix = "fleet";
    FleetTap *tap = nullptr;
    /** @} */

    /**
     * Substitute per-shard fault plans (record/replay decorators),
     * parallel to shard index; empty = every shard builds its own
     * from the derived config. Entries may be null.
     */
    std::vector<const FaultPlan *> shardPlanOverrides;

    /**
     * Adaptive adversary campaign (src/attack/campaign.hh), or
     * nullptr for an unattacked fleet. The engine rewrites the
     * fleet's fresh draws at ingest (before the tap journals them —
     * replays are bit-exact with no engine; pass nullptr when
     * replaying), every shard reports probe outcomes on its channel,
     * and the fleet commits the round in shard-index order after all
     * shards stepped — so campaign decisions are invariant under
     * permuteShardStep. Not owned, and not part of fleetConfigHash.
     */
    attack::CampaignEngine *campaign = nullptr;
};

/**
 * The k-th shard's derived ServerConfig: shard mode on, per-shard
 * seeds folded from (fleet seed, k), observers rewired. The single
 * source of truth shared by the fleet constructor and the replay
 * layer (which must decorate the exact fault config shard k runs).
 * The completion/retry callbacks are not set here — the fleet wires
 * its own.
 */
ServerConfig shardServerConfig(const FleetConfig &cfg, unsigned k);

/** One request's fate (report.outcomes, with keepOutcomes). */
struct FleetOutcomeRec
{
    uint64_t id = 0;
    uint64_t session = 0;
    uint32_t shard = 0;     ///< serving (or last-holding) shard
    uint32_t homeShard = 0; ///< pinned shard from the ring
    RequestKind kind = RequestKind::Static;
    FleetOutcome outcome = FleetOutcome::Served;
    /** Fleet rounds from ingestion to completion (Served) or to the
     *  drop decision (ShedDeadline/Abandoned). */
    uint64_t latencyRounds = 0;
    uint32_t retries = 0;
};

/** Everything a fleet run produces. */
struct FleetReport
{
    uint64_t requestsOffered = 0;
    uint64_t requestsServed = 0;
    uint64_t requestsShed = 0;
    uint64_t requestsAbandoned = 0;
    uint64_t requestsRetried = 0; ///< re-routes after worker loss
    std::array<uint64_t, kNumRequestKinds> servedByKind{};
    uint64_t rounds = 0;
    uint64_t steals = 0;
    /** Request-rounds spent stalled in the routing buffer because the
     *  pinned shard's admission queue was full. */
    uint64_t backpressureStalls = 0;
    /** served / offered. */
    double availability = 0;

    /** Fleet-level latency (ingestion → completion, in fleet rounds)
     *  from the cross-shard HistogramMetric merge. @{ */
    double meanLatencyRounds = 0;
    uint64_t p50Rounds = 0;
    uint64_t p99Rounds = 0;
    uint64_t p999Rounds = 0;
    uint64_t maxRounds = 0;
    /** @} */

    /** Aggregates over every shard's ServerReport. @{ */
    uint64_t totalGuestInsts = 0;
    uint64_t securityEvents = 0;
    uint32_t migrations = 0;
    uint32_t crashes = 0;
    uint32_t respawns = 0;
    uint32_t retiredWorkers = 0;
    uint32_t quarantines = 0;
    uint64_t faultsInjectedTotal = 0;
    /** @} */

    /** Per-shard reports, shard-index order. */
    std::vector<ServerReport> shardReports;

    /**
     * Order-sensitive FNV fold of every disposal event and every
     * shard report signature — the byte-identity witness across
     * HIPSTR_JOBS and shard-step interleavings.
     */
    uint64_t signature = 0;

    /**
     * Commutative fold over (id, session, kind, outcome) of every
     * disposal — completion *order* and shard placement excluded, so
     * for a run where every request is served this is identical for
     * K=1 and K=4 (the pinned-session outcome-set witness).
     */
    uint64_t outcomeSetSignature = 0;

    /** One record per request (only with keepOutcomes). */
    std::vector<FleetOutcomeRec> outcomes;
};

/**
 * The fleet. Owns the K shards; the fat binary (shared, immutable)
 * is owned by the caller, as with ProtectedServer.
 */
class ProtectedFleet
{
  public:
    ProtectedFleet(const FatBinary &bin, const FleetConfig &cfg);
    ~ProtectedFleet();

    /** Drive the whole fleet to completion and return the merged
     *  report. Shard quanta run on @p pool (global when null). */
    FleetReport run(ThreadPool *pool = nullptr);

    /** Fleet rounds completed so far. */
    uint64_t roundNumber() const { return _roundNo; }

    /** FNV fold of the balancer + every shard's sync signature —
     *  the per-round divergence check for record/replay. */
    uint64_t roundSyncSignature() const;

    /** The session a request id hashes to (pure). */
    uint64_t sessionOf(uint64_t id) const;
    /** The shard a session pins to through the vnode ring. */
    uint32_t shardOf(uint64_t session) const;

    unsigned shards() const { return _cfg.shards; }
    /** Shard access (replay coin-feed wiring, tests). */
    ProtectedServer &shard(unsigned k) { return *_shards[k]; }
    const ProtectedServer &shard(unsigned k) const
    {
        return *_shards[k];
    }
    const FleetConfig &config() const { return _cfg; }

  private:
    /** A request waiting in the routing buffer or a shard queue. */
    struct Pending
    {
        Request req;
        uint64_t session = 0;
        uint32_t home = 0;    ///< pinned shard
        uint64_t arrival = 0; ///< fleet round it was ingested
    };

    /** One point on the consistent-hash ring. */
    struct RingPoint
    {
        uint64_t point;
        uint32_t shard;
    };

    void ingestRound();
    void shedRound();
    void routeRound();
    void stealRound(const std::vector<bool> &stormy);
    bool shardStormy(unsigned k) const;
    void dispose(const Pending &p, uint32_t shard, FleetOutcome o,
                 uint64_t latency);
    void finishShardFold(unsigned k);

    const FatBinary &_bin;
    FleetConfig _cfg;
    RequestStream _stream;
    std::vector<std::unique_ptr<ProtectedServer>> _shards;
    std::vector<RingPoint> _ring;

    /** Balancer state. @{ */
    std::deque<Pending> _arrival; ///< routed under backpressure
    std::vector<std::deque<Pending>> _queues; ///< bounded, per shard
    std::map<uint64_t, Pending> _inflight;    ///< dispatched, by id
    std::vector<uint8_t> _disposed; ///< one-outcome guard, by id
    uint64_t _nextId = 0;
    uint64_t _roundNo = 0;
    bool _ran = false;
    /** @} */

    /** Per-round shard callback capture, folded in index order. @{ */
    std::vector<std::vector<std::pair<Request, uint64_t>>> _completed;
    std::vector<std::vector<Request>> _retried;
    /** @} */

    /** Accounting. @{ */
    FleetReport _report;
    uint64_t _sig;
    uint64_t _outcomeSetSig = 0;
    std::vector<std::unique_ptr<telemetry::HistogramMetric>> _lat;
    double _usPerRound = 0;
    bool _traced = false;
    /** @} */
};

} // namespace hipstr

#endif // HIPSTR_FLEET_FLEET_HH
