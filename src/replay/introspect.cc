#include "introspect.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <vector>

#include "replay/journal.hh"

namespace hipstr
{
namespace replay
{

namespace
{

std::string
hex32(uint32_t v)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%08x", v);
    return buf;
}

/** Split a command line on single spaces. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> out;
    std::istringstream in(line);
    std::string tok;
    while (in >> tok)
        out.push_back(tok);
    return out;
}

bool
parseU64(const std::string &s, uint64_t &out, int base = 10)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, base);
    if (errno != 0 || end == nullptr || *end != '\0')
        return false;
    out = v;
    return true;
}

} // namespace

IntrospectionServer::IntrospectionServer(ProtectedServer &srv,
                                         uint16_t port)
    : _srv(srv)
{
    _listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (_listenFd < 0)
        throw ReplayError(ReplayErrc::Io, "socket() failed");
    int one = 1;
    ::setsockopt(_listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(_listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(_listenFd, 1) != 0) {
        ::close(_listenFd);
        _listenFd = -1;
        throw ReplayError(ReplayErrc::Io,
                          "cannot bind introspection port");
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(_listenFd, reinterpret_cast<sockaddr *>(&addr),
                      &len) == 0) {
        _port = ntohs(addr.sin_port);
    }
}

IntrospectionServer::~IntrospectionServer()
{
    if (_listenFd >= 0)
        ::close(_listenFd);
}

void
IntrospectionServer::requestStop()
{
    _stop.store(true);
    // Poke the blocking accept() with a throwaway connection.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd >= 0) {
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(_port);
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr));
        ::close(fd);
    }
}

std::string
IntrospectionServer::handleLine(const std::string &line)
{
    std::vector<std::string> tok = tokenize(line);
    if (tok.empty())
        return "err empty command\n";
    const std::string &cmd = tok[0];
    std::ostringstream out;

    auto lookupWorker = [&](const std::string &s,
                            GuestProcess *&proc) -> bool {
        uint64_t pid = 0;
        if (!parseU64(s, pid) || pid >= _srv.workers().size())
            return false;
        proc = &_srv.worker(size_t(pid));
        return true;
    };

    if (cmd == "guests") {
        for (const auto &p : _srv.workers()) {
            const MachineState &st =
                p->runtime().vm(p->runtime().currentIsa()).state;
            out << "guest " << p->pid() << " "
                << procStateName(p->state()) << " "
                << isaName(p->isa()) << " pc=" << hex32(st.pc)
                << " insts=" << p->stats().guestInsts << "\n";
        }
        out << "ok\n";
    } else if (cmd == "regs" && tok.size() == 2) {
        GuestProcess *p = nullptr;
        if (!lookupWorker(tok[1], p))
            return "err no such guest\n";
        const MachineState &st =
            p->runtime().vm(p->runtime().currentIsa()).state;
        for (size_t i = 0; i < st.regs.size(); ++i)
            out << "r" << i << "=" << hex32(st.regs[i]) << "\n";
        out << "pc=" << hex32(st.pc) << "\n";
        out << "flags=" << (st.flags.zf ? 1 : 0)
            << (st.flags.sf ? 1 : 0) << (st.flags.cf ? 1 : 0)
            << (st.flags.of ? 1 : 0) << "\n";
        out << "ok\n";
    } else if (cmd == "mem" && tok.size() == 4) {
        GuestProcess *p = nullptr;
        uint64_t addr = 0, len = 0;
        if (!lookupWorker(tok[1], p))
            return "err no such guest\n";
        if (!parseU64(tok[2], addr, 16) || !parseU64(tok[3], len))
            return "err bad address or length\n";
        if (len == 0 || len > 4096)
            return "err length must be 1..4096\n";
        if (addr + len > p->mem().size())
            return "err address out of range\n";
        std::vector<uint8_t> buf(len);
        p->mem().rawReadBytes(Addr(addr), buf.data(), buf.size());
        for (size_t i = 0; i < buf.size(); i += 16) {
            out << hex32(uint32_t(addr + i)) << ":";
            for (size_t k = i; k < buf.size() && k < i + 16; ++k) {
                char b[4];
                std::snprintf(b, sizeof(b), " %02x", buf[k]);
                out << b;
            }
            out << "\n";
        }
        out << "ok\n";
    } else if (cmd == "telemetry") {
        out << "round=" << _srv.roundNumber() << "\n";
        out << "sync=" << _srv.roundSyncSignature() << "\n";
        const SchedulerStats &ss = _srv.scheduler().stats();
        out << "quanta_run=" << ss.quantaRun << "\n";
        out << "respawns=" << ss.respawns << "\n";
        out << "migrations_routed=" << ss.migrationsRouted << "\n";
        out << "retired=" << ss.retired << "\n";
        for (const auto &p : _srv.workers()) {
            out << "worker." << p->pid()
                << ".signature=" << p->statsSignature() << "\n";
            out << "worker." << p->pid()
                << ".security_events=" << p->securityEvents() << "\n";
        }
        out << "ok\n";
    } else if (cmd == "checkpoint" && tok.size() == 2) {
        ByteWriter w;
        _srv.saveCheckpoint(w);
        FILE *f = std::fopen(tok[1].c_str(), "wb");
        if (f == nullptr)
            return "err cannot open " + tok[1] + "\n";
        size_t n = std::fwrite(w.data().data(), 1, w.size(), f);
        bool bad = n != w.size() || std::fclose(f) != 0;
        if (bad)
            return "err short write to " + tok[1] + "\n";
        out << "ok bytes=" << w.size() << "\n";
    } else if (cmd == "step" && tok.size() <= 2) {
        uint64_t n = 1;
        if (tok.size() == 2 && (!parseU64(tok[1], n) || n == 0))
            return "err bad step count\n";
        // stepRound() can run a final round and still return false
        // (run over), so count actual rounds via roundNumber().
        uint64_t before = _srv.roundNumber();
        bool more = true;
        for (uint64_t i = 0; i < n && more; ++i)
            more = _srv.stepRound(nullptr);
        out << "ok stepped=" << (_srv.roundNumber() - before)
            << " finished=" << (more ? 0 : 1) << "\n";
    } else if (cmd == "status") {
        out << "round=" << _srv.roundNumber() << "\n";
        out << "workers=" << _srv.workers().size() << "\n";
        out << "ok\n";
    } else if (cmd == "quit") {
        _quit = true;
        out << "ok bye\n";
    } else {
        return "err unknown command: " + cmd + "\n";
    }
    return out.str();
}

void
IntrospectionServer::serve()
{
    while (!_stop.load()) {
        int fd = ::accept(_listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (_stop.load()) {
            ::close(fd);
            break;
        }
        std::string pending;
        char buf[1024];
        bool open = true;
        while (open && !_quit) {
            ssize_t n = ::read(fd, buf, sizeof(buf));
            if (n <= 0)
                break;
            pending.append(buf, size_t(n));
            size_t nl;
            while ((nl = pending.find('\n')) != std::string::npos) {
                std::string line = pending.substr(0, nl);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                pending.erase(0, nl + 1);
                std::string resp = handleLine(line);
                const char *p = resp.data();
                size_t left = resp.size();
                while (left > 0) {
                    ssize_t wr = ::write(fd, p, left);
                    if (wr <= 0) {
                        open = false;
                        break;
                    }
                    p += wr;
                    left -= size_t(wr);
                }
                if (_quit || !open)
                    break;
            }
        }
        ::close(fd);
        if (_quit)
            break;
    }
}

} // namespace replay
} // namespace hipstr
