#include "fleet_replay.hh"

#include <deque>
#include <memory>
#include <vector>

#include "replay/record_replay.hh"
#include "support/logging.hh"

namespace hipstr
{
namespace replay
{

namespace
{

void
writeRequest(ByteWriter &w, const Request &r)
{
    w.u64(r.id);
    w.u8(static_cast<uint8_t>(r.kind));
    w.u64(r.costInsts);
    w.u32(r.retries);
}

/** Cores per shard CMP — the stride of the global core-id space. */
unsigned
coresPerShard(const FleetConfig &cfg)
{
    return cfg.server.cmp.riscCores + cfg.server.cmp.ciscCores;
}

} // namespace

// ---------------------------------------------------------------
// Config hashing.
// ---------------------------------------------------------------

uint64_t
fleetConfigHash(const FleetConfig &cfg)
{
    ByteWriter w;
    w.u32(cfg.shards);
    w.u64(cfg.requestCount);
    w.u64(cfg.seed);
    w.f64(cfg.mix.dynamicFrac);
    w.f64(cfg.mix.postFrac);
    w.f64(cfg.mix.malformedFrac);
    w.f64(cfg.mix.attackFrac);
    w.u64(cfg.costs.staticInsts);
    w.u64(cfg.costs.dynamicInsts);
    w.u64(cfg.costs.postInsts);
    w.u64(cfg.costs.malformedInsts);
    w.u64(cfg.costs.attackInsts);
    w.u64(cfg.sessions);
    w.u32(cfg.vnodesPerShard);
    w.u64(static_cast<uint64_t>(cfg.queueCap));
    w.u64(cfg.sloRounds);
    w.u32(cfg.batchSize);
    w.boolean(cfg.workStealing);
    // Every derived shard config, k order: two fleets hash equal iff
    // every shard would behave identically. shardPlanOverrides do not
    // feed shardServerConfig's hashed fields (faultPlanOverride is an
    // excluded observer), so a recording config and a replay config
    // carrying different decorators still hash the same — by design.
    for (unsigned k = 0; k < cfg.shards; ++k)
        w.u64(serverConfigHash(shardServerConfig(cfg, k)));

    uint64_t h = 0xcbf29ce484222325ull;
    for (uint8_t b : w.data()) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

// ---------------------------------------------------------------
// Recording.
// ---------------------------------------------------------------

namespace
{

/**
 * The fleet recorder tap: buffers one fleet round's balancer draws
 * and flushes every journaled stream at the round boundary in fixed
 * order — draws, then each shard's fault plan in shard order (pids
 * and core ids rebased to the global spaces), then every worker's
 * coins in global-pid order, then the Sync record. Identical journal
 * grammar to the single-server recorder, so parseJournal needs no
 * fleet variant.
 */
class FleetRecorder : public FleetTap
{
  public:
    FleetRecorder(
        JournalWriter &out,
        const std::vector<std::unique_ptr<RecordingFaultPlan>> &plans,
        unsigned shards, unsigned workersPerShard,
        unsigned coresPerShard)
        : coinLogs(size_t(shards) * workersPerShard), _out(out),
          _plans(plans), _workers(workersPerShard),
          _cores(coresPerShard)
    {
    }

    void
    requestDrawn(const Request &r) override
    {
        ++requestsDrawn;
        _draws.push_back(r);
    }

    void
    roundEnd(uint64_t round, uint64_t sig) override
    {
        for (const Request &r : _draws) {
            ByteWriter w;
            writeRequest(w, r);
            _out.record(RecordTag::Request, w);
        }
        _draws.clear();
        for (size_t k = 0; k < _plans.size(); ++k) {
            if (_plans[k] == nullptr)
                continue;
            std::vector<RecordingFaultPlan::FaultRec> fs;
            std::vector<RecordingFaultPlan::OutageRec> os;
            _plans[k]->drain(fs, os);
            for (const auto &f : fs) {
                ByteWriter w;
                w.u32(uint32_t(k) * _workers + f.pid);
                w.u64(f.serial);
                w.u8(static_cast<uint8_t>(f.fault.kind));
                w.u64(f.fault.payload);
                _out.record(RecordTag::Fault, w);
            }
            for (const auto &o : os) {
                ByteWriter w;
                w.u32(uint32_t(k) * _cores + o.coreId);
                w.u8(static_cast<uint8_t>(o.isa));
                w.u64(o.round);
                w.u32(o.len);
                _out.record(RecordTag::Outage, w);
            }
        }
        for (size_t gpid = 0; gpid < coinLogs.size(); ++gpid) {
            for (uint8_t flip : coinLogs[gpid]) {
                ByteWriter w;
                w.u32(uint32_t(gpid));
                w.u8(flip);
                _out.record(RecordTag::Coin, w);
            }
            coinLogs[gpid].clear();
        }
        ByteWriter w;
        w.u64(round);
        w.u64(sig);
        _out.record(RecordTag::Sync, w);
    }

    /** Per-worker coin capture, indexed by global pid. */
    std::vector<std::vector<uint8_t>> coinLogs;
    uint64_t requestsDrawn = 0;

  private:
    JournalWriter &_out;
    const std::vector<std::unique_ptr<RecordingFaultPlan>> &_plans;
    unsigned _workers;
    unsigned _cores;
    std::vector<Request> _draws;
};

} // namespace

FleetRecordResult
recordFleetRun(const FatBinary &bin, const FleetConfig &cfg,
               const std::string &path, ThreadPool *pool)
{
    JournalWriter out(path, fleetConfigHash(cfg));

    const unsigned W = cfg.server.workers;
    const unsigned C = coresPerShard(cfg);

    FleetConfig rcfg = cfg;
    std::vector<std::unique_ptr<RecordingFaultPlan>> plans(cfg.shards);
    if (cfg.server.faults.enabled) {
        // Decorate the exact derived fault config each shard runs
        // (per-shard seed included) so the recorded run draws the
        // same fault stream as an un-recorded one.
        rcfg.shardPlanOverrides.assign(cfg.shards, nullptr);
        for (unsigned k = 0; k < cfg.shards; ++k) {
            plans[k] = std::make_unique<RecordingFaultPlan>(
                shardServerConfig(cfg, k).faults, W);
            rcfg.shardPlanOverrides[k] = plans[k].get();
        }
    }
    FleetRecorder rec(out, plans, cfg.shards, W, C);
    rcfg.tap = &rec;

    ProtectedFleet fleet(bin, rcfg);
    for (unsigned k = 0; k < cfg.shards; ++k) {
        for (unsigned i = 0; i < W; ++i) {
            fleet.shard(k).worker(i).runtime().coinLog =
                &rec.coinLogs[size_t(k) * W + i];
        }
    }

    FleetReport report = fleet.run(pool);

    ByteWriter end;
    end.u64(report.rounds);
    end.u64(report.signature);
    end.u64(report.requestsServed);
    out.record(RecordTag::End, end);
    out.close();

    FleetRecordResult res;
    res.report = report;
    res.rounds = report.rounds;
    res.journalBytes = out.bytesWritten();
    res.requestsDrawn = rec.requestsDrawn;
    return res;
}

// ---------------------------------------------------------------
// Replay.
// ---------------------------------------------------------------

namespace
{

/**
 * ReplayFaultPlan with rebased keys: shard k's plan answers pid/core
 * queries from the journal's global id spaces. Wedge-length
 * derivation stays in the base plan (pure function of the payload).
 */
class ShardReplayFaultPlan : public FaultPlan
{
  public:
    ShardReplayFaultPlan(const FaultPlanConfig &cfg, const Journal &j,
                         uint32_t pidBase, uint32_t coreBase)
        : FaultPlan(cfg), _journal(j), _pidBase(pidBase),
          _coreBase(coreBase)
    {
    }

    QuantumFault
    quantumFault(uint32_t pid, uint64_t serial) const override
    {
        auto it = _journal.faults.find({ _pidBase + pid, serial });
        return it == _journal.faults.end() ? QuantumFault{}
                                           : it->second;
    }

    uint32_t
    coreOutageAt(unsigned coreId, IsaKind isa,
                 uint64_t round) const override
    {
        (void)isa;
        auto it = _journal.outages.find({ _coreBase + coreId, round });
        return it == _journal.outages.end() ? 0 : it->second;
    }

  private:
    const Journal &_journal;
    uint32_t _pidBase;
    uint32_t _coreBase;
};

/**
 * The fleet replayer tap: balancer draws answer from the journal and
 * every fleet round's sync signature is verified. Unlike the
 * single-server replayer (which is polled between externally driven
 * stepRound calls), the fleet loop runs inside ProtectedFleet::run,
 * so the first disagreement throws ReplayError directly from the tap
 * — the round boundary is on the caller's thread with every shard
 * quantum already joined, so unwinding out of run() is safe.
 */
class FleetReplayer : public FleetTap
{
  public:
    FleetReplayer(const Journal &j, unsigned shards, unsigned workers)
        : _j(j), _shards(shards), _workers(workers)
    {
    }

    bool
    supplyRequest(uint64_t id, Request &req) override
    {
        auto it = _j.requests.find(id);
        if (it == _j.requests.end())
            return false;
        req = it->second;
        return true;
    }

    void
    roundEnd(uint64_t round, uint64_t sig) override
    {
        auto it = _j.rounds.find(round);
        if (it == _j.rounds.end()) {
            throw ReplayError(ReplayErrc::Divergence,
                              "fleet replay reached round " +
                                  std::to_string(round) +
                                  " which the recording never ran");
        }
        ++syncChecks;
        if (it->second.syncSig != sig) {
            throw ReplayError(
                ReplayErrc::Divergence,
                "fleet sync signature mismatch at round " +
                    std::to_string(round));
        }
        if (fleet != nullptr) {
            for (unsigned k = 0; k < _shards; ++k) {
                for (unsigned i = 0; i < _workers; ++i) {
                    if (fleet->shard(k).worker(i).runtime().coinStarved) {
                        throw ReplayError(
                            ReplayErrc::Divergence,
                            "shard " + std::to_string(k) +
                                " worker " + std::to_string(i) +
                                " drew more coins than were recorded");
                    }
                }
            }
        }
    }

    /** Wired after construction, like the recorder's server link. */
    ProtectedFleet *fleet = nullptr;
    uint64_t syncChecks = 0;

  private:
    const Journal &_j;
    unsigned _shards;
    unsigned _workers;
};

} // namespace

FleetReplayResult
replayFleetRun(const FatBinary &bin, const FleetConfig &cfg,
               const std::string &path, ThreadPool *pool)
{
    Journal j = parseJournal(path);
    if (j.configHash != fleetConfigHash(cfg)) {
        throw ReplayError(ReplayErrc::ConfigMismatch,
                          "journal was recorded under a different "
                          "fleet configuration");
    }

    const unsigned W = cfg.server.workers;
    const unsigned C = coresPerShard(cfg);

    FleetConfig rcfg = cfg;
    // The journal already carries every campaign rewrite; replaying
    // with a live engine attached would double-feed it observations.
    rcfg.campaign = nullptr;
    std::vector<std::unique_ptr<ShardReplayFaultPlan>> plans(
        cfg.shards);
    if (cfg.server.faults.enabled) {
        rcfg.shardPlanOverrides.assign(cfg.shards, nullptr);
        for (unsigned k = 0; k < cfg.shards; ++k) {
            plans[k] = std::make_unique<ShardReplayFaultPlan>(
                shardServerConfig(cfg, k).faults, j, k * W, k * C);
            rcfg.shardPlanOverrides[k] = plans[k].get();
        }
    }
    FleetReplayer tap(j, cfg.shards, W);
    rcfg.tap = &tap;

    ProtectedFleet fleet(bin, rcfg);
    tap.fleet = &fleet;

    // Feed every worker its recorded coin flips, in journal order;
    // feeds are per global pid so concurrent quanta never share one.
    std::vector<std::deque<uint8_t>> feeds(size_t(cfg.shards) * W);
    for (const auto &kv : j.rounds) {
        for (const auto &c : kv.second.coins) {
            if (c.first >= feeds.size())
                throw ReplayError(ReplayErrc::Corrupt,
                                  "journal coin names bad worker");
            feeds[c.first].push_back(c.second);
        }
    }
    for (unsigned k = 0; k < cfg.shards; ++k) {
        for (unsigned i = 0; i < W; ++i) {
            fleet.shard(k).worker(i).runtime().coinFeed =
                &feeds[size_t(k) * W + i];
        }
    }

    FleetReport report = fleet.run(pool);

    if (report.rounds != j.endRounds ||
        report.requestsServed != j.endServed ||
        report.signature != j.endSignature) {
        throw ReplayError(ReplayErrc::Divergence,
                          "replayed fleet run's final report "
                          "disagrees with the recording");
    }

    FleetReplayResult res;
    res.report = report;
    res.rounds = report.rounds;
    res.syncChecks = tap.syncChecks;
    return res;
}

} // namespace replay
} // namespace hipstr
