/**
 * @file
 * Record/replay for the sharded fleet (src/fleet), reusing the PR 7
 * journal format unchanged: the balancer's request draws are the
 * fleet's only stream nondeterminism, per-shard fault firings and
 * migration coin flips are journaled under *global* worker/core ids
 * (shard * workersPerShard + pid, shard * coresPerCmp + coreId) so
 * the flat journal key spaces stay collision-free across shards, and
 * every fleet round closes with the fleet-level sync signature.
 * Replays are verified bit-exactly: the first divergent round throws
 * ReplayErrc::Divergence, and the final FleetReport signature must
 * match the recorded End record. Fleet journals carry no checkpoints
 * — a fleet replay always re-drives from round 0.
 */

#ifndef HIPSTR_REPLAY_FLEET_REPLAY_HH
#define HIPSTR_REPLAY_FLEET_REPLAY_HH

#include <string>

#include "fleet/fleet.hh"
#include "replay/journal.hh"

namespace hipstr
{
namespace replay
{

/**
 * Behavioural hash of a FleetConfig: every derived shard config's
 * serverConfigHash plus the balancer knobs (session count, ring
 * shape, queue bound, SLO, batch size, stealing). Observers —
 * trace/metrics/tap, keepOutcomes, metricsPrefix — and the
 * interleaving-only permuteShardStep knob are excluded: a journal
 * recorded with one shard-step order must replay under any other.
 */
uint64_t fleetConfigHash(const FleetConfig &cfg);

/** What recordFleetRun() produced. */
struct FleetRecordResult
{
    FleetReport report; ///< identical to an un-recorded run's
    uint64_t rounds = 0;
    uint64_t journalBytes = 0;
    uint64_t requestsDrawn = 0;
};

/** What replayFleetRun() produced. */
struct FleetReplayResult
{
    FleetReport report; ///< must equal the recorded run's report
    uint64_t rounds = 0;
    uint64_t syncChecks = 0; ///< fleet round signatures verified
};

/**
 * Run the fleet to completion under recording, writing the journal
 * to @p path. The run is bit-identical to an un-recorded one with
 * the same (bin, cfg).
 */
FleetRecordResult recordFleetRun(const FatBinary &bin,
                                 const FleetConfig &cfg,
                                 const std::string &path,
                                 ThreadPool *pool = nullptr);

/**
 * Re-drive a recorded fleet run from round 0 and verify it
 * bit-exactly. Throws ReplayError (ConfigMismatch, Divergence, or
 * any journal parse error).
 */
FleetReplayResult replayFleetRun(const FatBinary &bin,
                                 const FleetConfig &cfg,
                                 const std::string &path,
                                 ThreadPool *pool = nullptr);

} // namespace replay
} // namespace hipstr

#endif // HIPSTR_REPLAY_FLEET_REPLAY_HH
