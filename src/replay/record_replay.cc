#include "record_replay.hh"

#include <deque>

#include "support/logging.hh"

namespace hipstr
{
namespace replay
{

namespace
{

void
fold64(uint64_t &h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
    }
}

void
writeRequest(ByteWriter &w, const Request &r)
{
    w.u64(r.id);
    w.u8(static_cast<uint8_t>(r.kind));
    w.u64(r.costInsts);
    w.u32(r.retries);
}

} // namespace

// ---------------------------------------------------------------
// Fault-plan decorators.
// ---------------------------------------------------------------

RecordingFaultPlan::RecordingFaultPlan(const FaultPlanConfig &cfg,
                                       unsigned workers)
    : FaultPlan(cfg), _faultLog(workers)
{
}

QuantumFault
RecordingFaultPlan::quantumFault(uint32_t pid, uint64_t serial) const
{
    QuantumFault f = FaultPlan::quantumFault(pid, serial);
    if (f.kind != FaultKind::None && pid < _faultLog.size())
        _faultLog[pid].push_back(FaultRec{ pid, serial, f });
    return f;
}

uint32_t
RecordingFaultPlan::coreOutageAt(unsigned coreId, IsaKind isa,
                                 uint64_t round) const
{
    uint32_t len = FaultPlan::coreOutageAt(coreId, isa, round);
    if (len != 0)
        _outageLog.push_back(OutageRec{ coreId, isa, round, len });
    return len;
}

void
RecordingFaultPlan::drain(std::vector<FaultRec> &faults,
                          std::vector<OutageRec> &outages) const
{
    faults.clear();
    outages.clear();
    for (auto &perPid : _faultLog) {
        faults.insert(faults.end(), perPid.begin(), perPid.end());
        perPid.clear();
    }
    outages.swap(_outageLog);
}

ReplayFaultPlan::ReplayFaultPlan(const FaultPlanConfig &cfg,
                                 const Journal &j)
    : FaultPlan(cfg), _journal(j)
{
}

QuantumFault
ReplayFaultPlan::quantumFault(uint32_t pid, uint64_t serial) const
{
    auto it = _journal.faults.find({ pid, serial });
    return it == _journal.faults.end() ? QuantumFault{} : it->second;
}

uint32_t
ReplayFaultPlan::coreOutageAt(unsigned coreId, IsaKind isa,
                              uint64_t round) const
{
    (void)isa;
    auto it = _journal.outages.find({ coreId, round });
    return it == _journal.outages.end() ? 0 : it->second;
}

// ---------------------------------------------------------------
// Config hashing.
// ---------------------------------------------------------------

uint64_t
serverConfigHash(const ServerConfig &cfg)
{
    // Serialize every behavioural knob, then FNV-1a the bytes.
    // Observer pointers (trace, metrics, tap, faultPlanOverride) are
    // deliberately excluded: they change what is observed, not what
    // happens.
    ByteWriter w;
    w.u32(cfg.workers);
    w.u32(cfg.cmp.riscCores);
    w.u32(cfg.cmp.ciscCores);
    w.u64(cfg.sched.quantumInsts);
    w.u32(cfg.sched.respawnLimit);
    w.u32(cfg.sched.supervisor.backoffBaseRounds);
    w.u32(cfg.sched.supervisor.backoffCapRounds);
    w.u32(cfg.sched.supervisor.quarantineAfter);
    w.u32(cfg.sched.supervisor.quarantineRounds);
    w.u64(cfg.requestCount);
    w.u64(cfg.seed);
    w.f64(cfg.mix.dynamicFrac);
    w.f64(cfg.mix.postFrac);
    w.f64(cfg.mix.malformedFrac);
    w.f64(cfg.mix.attackFrac);
    w.u64(cfg.costs.staticInsts);
    w.u64(cfg.costs.dynamicInsts);
    w.u64(cfg.costs.postInsts);
    w.u64(cfg.costs.malformedInsts);
    w.u64(cfg.costs.attackInsts);
    const PsrConfig &p = cfg.hipstr.psr;
    w.u32(p.optLevel);
    w.u32(p.randSpaceBytes);
    w.boolean(p.randomizeCallingConvention);
    w.boolean(p.randomizeRegisters);
    w.boolean(p.relocateRegsToMemory);
    w.boolean(p.randomizeSlots);
    w.u32(p.codeCacheBytes);
    w.u32(p.ratEntries);
    w.u32(p.regCacheEntries);
    w.u32(p.maxSuperblockBlocks);
    w.u32(p.traceHotThreshold);
    w.u32(p.traceMaxBlocks);
    w.boolean(p.isomeronMode);
    w.u64(p.seed);
    w.f64(cfg.hipstr.diversificationProbability);
    w.boolean(cfg.hipstr.migrateOnSecurityEvents);
    w.u64(cfg.hipstr.phaseIntervalInsts);
    w.u32(cfg.hipstr.migrationLogCap);
    w.u8(static_cast<uint8_t>(cfg.hipstr.startIsa));
    w.u64(cfg.hipstr.policySeed);
    w.u64(cfg.outputCap);
    w.boolean(cfg.verifyOutput);
    w.boolean(cfg.faults.enabled);
    w.u64(cfg.faults.seed);
    w.f64(cfg.faults.quantumFaultRate);
    w.f64(cfg.faults.coreFailRate);
    w.u32(cfg.faults.outageRoundsMin);
    w.u32(cfg.faults.outageRoundsMax);
    w.u32(cfg.faults.wedgeQuantaMin);
    w.u32(cfg.faults.wedgeQuantaMax);
    w.u8(static_cast<uint8_t>(cfg.faults.scriptedOutageIsa));
    w.u64(cfg.faults.scriptedOutageRound);
    w.u32(cfg.faults.scriptedOutageRounds);
    w.u32(cfg.watchdogQuanta);
    // Shard mode changes the serve loop (no stream draws, external
    // intake) even though the callbacks themselves are output-only.
    w.boolean(cfg.shardMode);

    uint64_t h = 0xcbf29ce484222325ull;
    for (uint8_t b : w.data()) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

// ---------------------------------------------------------------
// Recording.
// ---------------------------------------------------------------

namespace
{

/** The recorder tap: buffers one round's draws and flushes every
 *  journaled stream at the round boundary, in a fixed order. */
class Recorder : public ServerTap
{
  public:
    Recorder(JournalWriter &out, const RecordingFaultPlan *plan,
             unsigned workers, uint64_t checkpointEvery)
        : coinLogs(workers), _out(out), _plan(plan),
          _every(checkpointEvery)
    {
    }

    void
    requestDrawn(const Request &r) override
    {
        ++requestsDrawn;
        _draws.push_back(r);
    }

    void
    roundEnd(uint64_t round, uint64_t sig) override
    {
        for (const Request &r : _draws) {
            ByteWriter w;
            writeRequest(w, r);
            _out.record(RecordTag::Request, w);
        }
        _draws.clear();
        if (_plan != nullptr) {
            std::vector<RecordingFaultPlan::FaultRec> fs;
            std::vector<RecordingFaultPlan::OutageRec> os;
            _plan->drain(fs, os);
            for (const auto &f : fs) {
                ByteWriter w;
                w.u32(f.pid);
                w.u64(f.serial);
                w.u8(static_cast<uint8_t>(f.fault.kind));
                w.u64(f.fault.payload);
                _out.record(RecordTag::Fault, w);
            }
            for (const auto &o : os) {
                ByteWriter w;
                w.u32(o.coreId);
                w.u8(static_cast<uint8_t>(o.isa));
                w.u64(o.round);
                w.u32(o.len);
                _out.record(RecordTag::Outage, w);
            }
        }
        for (size_t pid = 0; pid < coinLogs.size(); ++pid) {
            for (uint8_t flip : coinLogs[pid]) {
                ByteWriter w;
                w.u32(uint32_t(pid));
                w.u8(flip);
                _out.record(RecordTag::Coin, w);
            }
            coinLogs[pid].clear();
        }
        {
            ByteWriter w;
            w.u64(round);
            w.u64(sig);
            _out.record(RecordTag::Sync, w);
        }
        if (server != nullptr && _every != 0 && round % _every == 0) {
            ByteWriter cp;
            server->saveCheckpoint(cp);
            ByteWriter w;
            w.u64(round);
            w.u32(uint32_t(cp.size()));
            w.bytes(cp.data().data(), cp.size());
            _out.record(RecordTag::Checkpoint, w);
            ++checkpoints;
        }
    }

    /** Wired after construction (the server's config needs the tap
     *  pointer before the server exists). */
    ProtectedServer *server = nullptr;
    /** Per-worker coin capture, wired into each runtime's coinLog. */
    std::vector<std::vector<uint8_t>> coinLogs;
    uint64_t requestsDrawn = 0;
    uint64_t checkpoints = 0;

  private:
    JournalWriter &_out;
    const RecordingFaultPlan *_plan;
    std::vector<Request> _draws;
    uint64_t _every;
};

} // namespace

RecordResult
recordRun(const FatBinary &bin, const ServerConfig &cfg,
          const std::string &path, ThreadPool *pool,
          const RecordOptions &opts)
{
    JournalWriter out(path, serverConfigHash(cfg));

    ServerConfig rcfg = cfg;
    std::unique_ptr<RecordingFaultPlan> rplan;
    if (cfg.faults.enabled) {
        rplan = std::make_unique<RecordingFaultPlan>(cfg.faults,
                                                     cfg.workers);
        rcfg.faultPlanOverride = rplan.get();
    }
    Recorder rec(out, rplan.get(), cfg.workers,
                 opts.checkpointEveryRounds);
    rcfg.tap = &rec;

    ProtectedServer srv(bin, rcfg);
    rec.server = &srv;
    for (unsigned i = 0; i < cfg.workers; ++i)
        srv.worker(i).runtime().coinLog = &rec.coinLogs[i];

    ServerReport report = srv.run(pool);

    ByteWriter end;
    end.u64(report.rounds);
    end.u64(report.signature);
    end.u64(report.requestsServed);
    out.record(RecordTag::End, end);
    out.close();

    RecordResult res;
    res.report = report;
    res.rounds = report.rounds;
    res.journalBytes = out.bytesWritten();
    res.requestsDrawn = rec.requestsDrawn;
    res.checkpoints = rec.checkpoints;
    return res;
}

// ---------------------------------------------------------------
// Replay.
// ---------------------------------------------------------------

namespace
{

/** The replayer tap: requests answer from the journal; every round
 *  signature is compared and the first mismatch latched. */
class Replayer : public ServerTap
{
  public:
    explicit Replayer(const Journal &j) : _j(j) {}

    bool
    supplyRequest(uint64_t id, Request &req) override
    {
        auto it = _j.requests.find(id);
        if (it == _j.requests.end())
            return false;
        req = it->second;
        return true;
    }

    void
    roundEnd(uint64_t round, uint64_t sig) override
    {
        if (diverged)
            return;
        auto it = _j.rounds.find(round);
        if (it == _j.rounds.end()) {
            diverged = true;
            message = "replay reached round " +
                std::to_string(round) +
                " which the recording never ran";
            return;
        }
        ++syncChecks;
        if (it->second.syncSig != sig) {
            diverged = true;
            message = "sync signature mismatch at round " +
                std::to_string(round);
        }
    }

    bool diverged = false;
    std::string message;
    uint64_t syncChecks = 0;

  private:
    const Journal &_j;
};

ReplayResult
drive(const FatBinary &bin, const ServerConfig &cfg,
      const std::string &path, uint64_t fromRound, ThreadPool *pool)
{
    Journal j = parseJournal(path);
    if (j.configHash != serverConfigHash(cfg)) {
        throw ReplayError(ReplayErrc::ConfigMismatch,
                          "journal was recorded under a different "
                          "server configuration");
    }

    ServerConfig rcfg = cfg;
    // The journal already carries every campaign rewrite; replaying
    // with a live engine attached would double-feed it observations.
    rcfg.campaign = nullptr;
    std::unique_ptr<ReplayFaultPlan> rplan;
    if (cfg.faults.enabled) {
        rplan = std::make_unique<ReplayFaultPlan>(cfg.faults, j);
        rcfg.faultPlanOverride = rplan.get();
    }
    Replayer tap(j);
    rcfg.tap = &tap;

    ProtectedServer srv(bin, rcfg);
    srv.beginRun();

    uint64_t start = 0;
    if (fromRound > 0) {
        uint64_t cp = j.checkpointAtOrBefore(fromRound);
        if (cp != 0) {
            try {
                ByteReader r(j.rounds.at(cp).checkpoint);
                srv.loadCheckpoint(r);
            } catch (const SerializeError &e) {
                throw ReplayError(ReplayErrc::Corrupt,
                                  std::string("checkpoint unusable: ") +
                                      e.what());
            }
            start = cp;
        }
    }

    // Feed each worker the coin flips of every round past the start
    // point, in journal order. Feeds are per-worker, so concurrent
    // quanta never share one.
    std::vector<std::deque<uint8_t>> feeds(cfg.workers);
    for (const auto &kv : j.rounds) {
        if (kv.first <= start)
            continue;
        for (const auto &c : kv.second.coins) {
            if (c.first >= cfg.workers)
                throw ReplayError(ReplayErrc::Corrupt,
                                  "journal coin names bad worker");
            feeds[c.first].push_back(c.second);
        }
    }
    for (unsigned i = 0; i < cfg.workers; ++i)
        srv.worker(i).runtime().coinFeed = &feeds[i];

    auto check = [&]() {
        if (tap.diverged)
            throw ReplayError(ReplayErrc::Divergence, tap.message);
        for (unsigned i = 0; i < cfg.workers; ++i) {
            if (srv.worker(i).runtime().coinStarved) {
                throw ReplayError(
                    ReplayErrc::Divergence,
                    "worker " + std::to_string(i) +
                        " drew more coins than were recorded");
            }
        }
    };

    while (srv.stepRound(pool))
        check();
    check();

    ServerReport report = srv.finishRun();
    if (report.rounds != j.endRounds ||
        report.requestsServed != j.endServed ||
        report.signature != j.endSignature) {
        throw ReplayError(ReplayErrc::Divergence,
                          "replayed run's final report disagrees "
                          "with the recording");
    }

    ReplayResult res;
    res.report = report;
    res.rounds = report.rounds - start;
    res.startRound = start;
    res.syncChecks = tap.syncChecks;
    return res;
}

} // namespace

ReplayResult
replayRun(const FatBinary &bin, const ServerConfig &cfg,
          const std::string &path, ThreadPool *pool)
{
    return drive(bin, cfg, path, 0, pool);
}

ReplayResult
replayWindow(const FatBinary &bin, const ServerConfig &cfg,
             const std::string &path, uint64_t fromRound,
             ThreadPool *pool)
{
    return drive(bin, cfg, path, fromRound, pool);
}

} // namespace replay
} // namespace hipstr
