/**
 * @file
 * Deterministic record/replay for the protected server.
 *
 * Recording wraps a normal ProtectedServer run: a ServerTap journals
 * every request drawn from the stream, a RecordingFaultPlan decorator
 * journals every fault-plan firing, and per-worker coin logs capture
 * each diversification coin flip — all without perturbing the run
 * (the RNG streams are drawn exactly as they would be un-recorded).
 * At each round boundary the recorder emits a sync signature, and at
 * a configurable cadence a full server checkpoint.
 *
 * Replaying re-drives a server built from the same (FatBinary,
 * ServerConfig): requests come from the journal, faults from a
 * journal-backed ReplayFaultPlan, coin flips from per-worker feeds.
 * Every round's sync signature is compared against the recording and
 * the first disagreement raises ReplayErrc::Divergence — so a replay
 * that completes is bit-exact, not approximately similar. Windowed
 * replay restores the nearest checkpoint at or before the requested
 * round and re-drives only the tail.
 */

#ifndef HIPSTR_REPLAY_RECORD_REPLAY_HH
#define HIPSTR_REPLAY_RECORD_REPLAY_HH

#include <memory>
#include <string>

#include "replay/journal.hh"
#include "server/protected_server.hh"

namespace hipstr
{
namespace replay
{

/**
 * FaultPlan decorator that answers from the real plan and journals
 * every non-trivial answer. The per-pid fault log is written from
 * concurrently running quanta, but each pid runs at most one quantum
 * per round on one host thread, so distinct pids never race and one
 * pid's entries are ordered by its quantum serial. Outage queries
 * happen in the scheduler's sequential supervision step.
 */
class RecordingFaultPlan : public FaultPlan
{
  public:
    explicit RecordingFaultPlan(const FaultPlanConfig &cfg,
                                unsigned workers);

    QuantumFault quantumFault(uint32_t pid,
                              uint64_t serial) const override;
    uint32_t coreOutageAt(unsigned coreId, IsaKind isa,
                          uint64_t round) const override;

    /** One journaled firing. @{ */
    struct FaultRec
    {
        uint32_t pid;
        uint64_t serial;
        QuantumFault fault;
    };
    struct OutageRec
    {
        uint32_t coreId;
        IsaKind isa;
        uint64_t round;
        uint32_t len;
    };
    /** @} */

    /** Drain everything logged since the last drain (round end). */
    void drain(std::vector<FaultRec> &faults,
               std::vector<OutageRec> &outages) const;

  private:
    /** Indexed by pid; mutable because the query API is const. */
    mutable std::vector<std::vector<FaultRec>> _faultLog;
    mutable std::vector<OutageRec> _outageLog;
};

/**
 * FaultPlan that answers quantum faults and core outages from a
 * parsed journal; wedge lengths (a pure function of the payload)
 * delegate to the real plan's derivation.
 */
class ReplayFaultPlan : public FaultPlan
{
  public:
    ReplayFaultPlan(const FaultPlanConfig &cfg, const Journal &j);

    QuantumFault quantumFault(uint32_t pid,
                              uint64_t serial) const override;
    uint32_t coreOutageAt(unsigned coreId, IsaKind isa,
                          uint64_t round) const override;

  private:
    const Journal &_journal;
};

/**
 * Behavioural hash of a ServerConfig: every knob that affects what a
 * run does (pointer-valued observers — trace, metrics, tap — are
 * excluded). A journal records the hash of the config it was captured
 * under; replaying against a different one fails fast with
 * ConfigMismatch instead of diverging mysteriously mid-run.
 */
uint64_t serverConfigHash(const ServerConfig &cfg);

/** Recording knobs. */
struct RecordOptions
{
    /** Emit a full server checkpoint every N rounds (0 = only record,
     *  never checkpoint; windowed replay then always starts at round
     *  0). */
    uint64_t checkpointEveryRounds = 64;
};

/** What recordRun() produced. */
struct RecordResult
{
    ServerReport report;    ///< the run's normal report
    uint64_t rounds = 0;
    uint64_t journalBytes = 0;
    uint64_t requestsDrawn = 0;
    uint64_t checkpoints = 0;
};

/** What replayRun()/replayWindow() produced. */
struct ReplayResult
{
    ServerReport report;    ///< must equal the recorded run's report
    uint64_t rounds = 0;    ///< rounds executed by this replay
    uint64_t startRound = 0; ///< 0, or the restored checkpoint round
    uint64_t syncChecks = 0; ///< round signatures verified
};

/**
 * Run the server to completion under recording, writing the journal
 * to @p path. The run itself is bit-identical to an un-recorded one
 * with the same (bin, cfg).
 */
RecordResult recordRun(const FatBinary &bin, const ServerConfig &cfg,
                       const std::string &path,
                       ThreadPool *pool = nullptr,
                       const RecordOptions &opts = RecordOptions{});

/**
 * Re-drive a recorded run from round 0 and verify it bit-exactly:
 * every round's sync signature and the final report signature must
 * match the journal. Throws ReplayError (ConfigMismatch, Divergence,
 * or any journal parse error).
 */
ReplayResult replayRun(const FatBinary &bin, const ServerConfig &cfg,
                       const std::string &path,
                       ThreadPool *pool = nullptr);

/**
 * Windowed replay: restore the nearest recorded checkpoint at or
 * before @p fromRound and re-drive from there to completion, with
 * the same bit-exact verification over the replayed window.
 */
ReplayResult replayWindow(const FatBinary &bin,
                          const ServerConfig &cfg,
                          const std::string &path, uint64_t fromRound,
                          ThreadPool *pool = nullptr);

} // namespace replay
} // namespace hipstr

#endif // HIPSTR_REPLAY_RECORD_REPLAY_HH
