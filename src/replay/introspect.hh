/**
 * @file
 * Remote introspection server: a minimal line-protocol TCP endpoint
 * (in the spirit of a simulator's gdb stub) bound to a paused or
 * stepped ProtectedServer. A debugging client can list guests, read
 * a guest's registers and memory, dump serve-loop telemetry, trigger
 * a full server checkpoint to disk, and single-step scheduler rounds
 * during a paused replay.
 *
 * Protocol: one command per line; responses are zero or more data
 * lines followed by a terminator line — "ok" (optionally with
 * trailing fields) on success, "err <message>" on failure.
 *
 *   guests                    one line per worker:
 *                             "guest <pid> <state> <isa> pc=<hex>
 *                              insts=<n>"
 *   regs <pid>                "r0=<hex> ... r15=<hex>", "pc=<hex>",
 *                             "flags=<z><s><c><o>"
 *   mem <pid> <hexaddr> <len> hex dump, 16 bytes per line
 *   telemetry                 serve-loop counters, "key=value" lines
 *   checkpoint <path>         write saveCheckpoint() to <path>
 *   step [n]                  advance n scheduler rounds (default 1)
 *   status                    "round=<n> finished=<0|1>"
 *   quit                      close the connection and stop serving
 *
 * Threading: the server mutates the ProtectedServer only from the
 * serve() thread (step/checkpoint). It is meant to drive a *paused*
 * run — the owner must not step the same server concurrently.
 */

#ifndef HIPSTR_REPLAY_INTROSPECT_HH
#define HIPSTR_REPLAY_INTROSPECT_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "server/protected_server.hh"

namespace hipstr
{
namespace replay
{

class IntrospectionServer
{
  public:
    /**
     * Bind to 127.0.0.1:@p port (0 = any free port; see port()).
     * The ProtectedServer must have had beginRun() called and must
     * outlive this object. Throws ReplayErrc::Io on bind failure.
     */
    explicit IntrospectionServer(ProtectedServer &srv,
                                 uint16_t port = 0);
    ~IntrospectionServer();

    IntrospectionServer(const IntrospectionServer &) = delete;
    IntrospectionServer &operator=(const IntrospectionServer &) =
        delete;

    /** The bound TCP port (useful with port 0). */
    uint16_t port() const { return _port; }

    /**
     * Accept and serve clients, one at a time, until a client sends
     * "quit" or requestStop() is called. Blocking — run it on its own
     * thread.
     */
    void serve();

    /** Unblock serve() from another thread. */
    void requestStop();

    /** Handle one protocol line (exposed for unit tests; the response
     *  includes the trailing terminator line, newline-separated). */
    std::string handleLine(const std::string &line);

  private:
    ProtectedServer &_srv;
    int _listenFd = -1;
    uint16_t _port = 0;
    std::atomic<bool> _stop{ false };
    bool _quit = false; ///< set by the "quit" command
};

} // namespace replay
} // namespace hipstr

#endif // HIPSTR_REPLAY_INTROSPECT_HH
