#include "journal.hh"

#include <cstdio>

namespace hipstr
{
namespace replay
{

const char *
replayErrcName(ReplayErrc c)
{
    switch (c) {
      case ReplayErrc::BadMagic: return "bad magic";
      case ReplayErrc::BadVersion: return "bad version";
      case ReplayErrc::Truncated: return "truncated";
      case ReplayErrc::Corrupt: return "corrupt";
      case ReplayErrc::ConfigMismatch: return "config mismatch";
      case ReplayErrc::Divergence: return "divergence";
      case ReplayErrc::Io: return "io";
    }
    return "?";
}

JournalWriter::JournalWriter(const std::string &path,
                             uint64_t configHash)
    : _path(path)
{
    FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        throw ReplayError(ReplayErrc::Io,
                          "cannot open journal for writing: " + path);
    _file = f;
    ByteWriter w;
    w.u64(kJournalMagic);
    w.u32(kJournalVersion);
    w.u64(configHash);
    if (std::fwrite(w.data().data(), 1, w.size(), f) != w.size()) {
        std::fclose(f);
        _file = nullptr;
        throw ReplayError(ReplayErrc::Io,
                          "journal header write failed: " + path);
    }
    _bytes = w.size();
}

JournalWriter::~JournalWriter()
{
    if (_file != nullptr)
        std::fclose(static_cast<FILE *>(_file));
}

void
JournalWriter::record(RecordTag tag, const ByteWriter &payload)
{
    FILE *f = static_cast<FILE *>(_file);
    if (f == nullptr)
        throw ReplayError(ReplayErrc::Io, "journal already closed");
    ByteWriter head;
    head.u8(static_cast<uint8_t>(tag));
    head.u32(uint32_t(payload.size()));
    if (std::fwrite(head.data().data(), 1, head.size(), f) != head.size() ||
        (payload.size() != 0 &&
         std::fwrite(payload.data().data(), 1, payload.size(), f) !=
             payload.size())) {
        throw ReplayError(ReplayErrc::Io,
                          "journal record write failed: " + _path);
    }
    _bytes += head.size() + payload.size();
}

void
JournalWriter::close()
{
    FILE *f = static_cast<FILE *>(_file);
    if (f == nullptr)
        return;
    _file = nullptr;
    if (std::fclose(f) != 0)
        throw ReplayError(ReplayErrc::Io,
                          "journal close failed: " + _path);
}

uint64_t
Journal::checkpointAtOrBefore(uint64_t round) const
{
    uint64_t best = 0;
    for (const auto &kv : rounds) {
        if (kv.first > round)
            break;
        if (!kv.second.checkpoint.empty())
            best = kv.first;
    }
    return best;
}

namespace
{

Request
readRequest(ByteReader &r)
{
    Request req;
    req.id = r.u64();
    uint8_t kind = r.u8();
    if (kind >= kNumRequestKinds)
        throw ReplayError(ReplayErrc::Corrupt,
                          "journal request has invalid kind");
    req.kind = static_cast<RequestKind>(kind);
    req.costInsts = r.u64();
    req.retries = r.u32();
    return req;
}

} // namespace

Journal
parseJournal(const std::vector<uint8_t> &bytes)
{
    // SerializeError from the bounds-checked reader means the journal
    // stops mid-record: map it onto the journal's own error taxonomy.
    Journal j;
    try {
        ByteReader r(bytes);
        if (r.remaining() < 8 || r.u64() != kJournalMagic)
            throw ReplayError(ReplayErrc::BadMagic,
                              "not a HIPStR journal");
        uint32_t version = r.u32();
        if (version != kJournalVersion) {
            throw ReplayError(ReplayErrc::BadVersion,
                              "unsupported journal version " +
                                  std::to_string(version));
        }
        j.configHash = r.u64();

        // Records accumulate into a pending round closed by its Sync.
        RoundData pending;
        uint64_t lastSynced = 0;
        bool sawEnd = false;
        while (!r.atEnd()) {
            uint8_t tag = r.u8();
            uint32_t len = r.u32();
            if (len > r.remaining())
                throw ReplayError(ReplayErrc::Truncated,
                                  "journal ends mid-record");
            ByteReader body(r.ptr(), len);
            r.skip(len);
            switch (static_cast<RecordTag>(tag)) {
              case RecordTag::Request: {
                  Request req = readRequest(body);
                  pending.draws.push_back(req);
                  j.requests[req.id] = req;
                  break;
              }
              case RecordTag::Coin: {
                  uint32_t pid = body.u32();
                  uint8_t flip = body.u8();
                  if (flip > 1)
                      throw ReplayError(ReplayErrc::Corrupt,
                                        "coin flip not 0/1");
                  pending.coins.emplace_back(pid, flip);
                  break;
              }
              case RecordTag::Fault: {
                  uint32_t pid = body.u32();
                  uint64_t serial = body.u64();
                  QuantumFault f;
                  uint8_t kind = body.u8();
                  if (kind >= kNumFaultKinds)
                      throw ReplayError(ReplayErrc::Corrupt,
                                        "fault record has bad kind");
                  f.kind = static_cast<FaultKind>(kind);
                  f.payload = body.u64();
                  j.faults[{ pid, serial }] = f;
                  break;
              }
              case RecordTag::Outage: {
                  uint32_t coreId = body.u32();
                  body.u8(); // isa: informational
                  uint64_t round = body.u64();
                  uint32_t lenRounds = body.u32();
                  j.outages[{ coreId, round }] = lenRounds;
                  break;
              }
              case RecordTag::Sync: {
                  uint64_t round = body.u64();
                  if (round <= lastSynced)
                      throw ReplayError(ReplayErrc::Corrupt,
                                        "sync rounds not increasing");
                  pending.syncSig = body.u64();
                  j.rounds[round] = std::move(pending);
                  pending = RoundData{};
                  lastSynced = round;
                  break;
              }
              case RecordTag::Checkpoint: {
                  uint64_t round = body.u64();
                  auto it = j.rounds.find(round);
                  if (it == j.rounds.end())
                      throw ReplayError(
                          ReplayErrc::Corrupt,
                          "checkpoint for an unsynced round");
                  uint32_t blob = body.u32();
                  if (blob != body.remaining())
                      throw ReplayError(ReplayErrc::Corrupt,
                                        "checkpoint length mismatch");
                  it->second.checkpoint.assign(
                      body.ptr(), body.ptr() + blob);
                  body.skip(blob);
                  break;
              }
              case RecordTag::End: {
                  j.endRounds = body.u64();
                  j.endSignature = body.u64();
                  j.endServed = body.u64();
                  sawEnd = true;
                  break;
              }
              default:
                  throw ReplayError(ReplayErrc::Corrupt,
                                    "unknown journal record tag " +
                                        std::to_string(tag));
            }
            if (sawEnd)
                break;
        }
        if (!sawEnd)
            throw ReplayError(ReplayErrc::Truncated,
                              "journal has no End record");
        if (!r.atEnd())
            throw ReplayError(ReplayErrc::Corrupt,
                              "trailing bytes after End record");
        if (j.endRounds != lastSynced)
            throw ReplayError(ReplayErrc::Corrupt,
                              "End round count disagrees with syncs");
    } catch (const SerializeError &e) {
        throw ReplayError(e.code() == SerializeErrc::Truncated
                              ? ReplayErrc::Truncated
                              : ReplayErrc::Corrupt,
                          std::string("journal unreadable: ") +
                              e.what());
    }
    return j;
}

Journal
parseJournal(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw ReplayError(ReplayErrc::Io,
                          "cannot open journal: " + path);
    std::vector<uint8_t> bytes;
    uint8_t buf[65536];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad)
        throw ReplayError(ReplayErrc::Io,
                          "journal read failed: " + path);
    return parseJournal(bytes);
}

} // namespace replay
} // namespace hipstr
