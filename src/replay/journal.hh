/**
 * @file
 * The record/replay journal: a versioned, length-prefixed binary log
 * of every nondeterministic input a protected-server run consumed —
 * request-stream draws, fault-plan firings, diversification coin
 * flips — framed per scheduler round with a sync signature at each
 * round boundary and full server checkpoints at a configurable
 * cadence. A journal plus the (FatBinary, ServerConfig) pair it was
 * recorded against is sufficient to re-drive the run bit-exactly,
 * from the start or from any checkpointed sync point.
 *
 * Layout (all integers little-endian):
 *
 *   header:  magic u64 ("HIPSTRJL"), version u32, configHash u64
 *   records: tag u8, length u32, payload[length]
 *
 * Per completed round the recorder emits, in order: the Request
 * records drawn during that round's assignment, the Fault and Outage
 * records the fault plan fired, the Coin records each worker drew
 * (pid order), one Sync record closing the round, and optionally one
 * Checkpoint record. One End record terminates the journal; a
 * journal without it is truncated.
 */

#ifndef HIPSTR_REPLAY_JOURNAL_HH
#define HIPSTR_REPLAY_JOURNAL_HH

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "fault/plan.hh"
#include "server/request_stream.hh"
#include "support/serialize.hh"

namespace hipstr
{
namespace replay
{

/** Journal magic: "HIPSTRJL" read as a little-endian u64. */
constexpr uint64_t kJournalMagic = 0x4c4a525453504948ull;
constexpr uint32_t kJournalVersion = 1;

/** Record tags. */
enum class RecordTag : uint8_t
{
    Request = 2,    ///< one request drawn from the live stream
    Coin = 3,       ///< one diversification coin flip
    Fault = 4,      ///< one fault-plan quantum firing
    Outage = 5,     ///< one fault-plan core-outage start
    Sync = 6,       ///< round boundary + sync signature
    Checkpoint = 7, ///< full server checkpoint at a round boundary
    End = 8         ///< run over: rounds, final report signature
};

/** What went wrong with a journal. */
enum class ReplayErrc
{
    BadMagic,       ///< not a journal file
    BadVersion,     ///< journal from an incompatible writer
    Truncated,      ///< ends mid-record or without an End record
    Corrupt,        ///< structurally invalid contents
    ConfigMismatch, ///< recorded against a different ServerConfig
    Divergence,     ///< replay disagreed with the recording
    Io              ///< file could not be read/written
};

const char *replayErrcName(ReplayErrc c);

/** Typed journal/replay error. */
class ReplayError : public std::runtime_error
{
  public:
    ReplayError(ReplayErrc code, const std::string &what)
        : std::runtime_error(what), _code(code)
    {
    }
    ReplayErrc code() const { return _code; }

  private:
    ReplayErrc _code;
};

/** Append-only journal writer over a file. */
class JournalWriter
{
  public:
    /** Open @p path for writing and emit the header. Throws Io. */
    JournalWriter(const std::string &path, uint64_t configHash);
    ~JournalWriter();

    /** Emit one record. */
    void record(RecordTag tag, const ByteWriter &payload);

    /** Flush and close; throws Io on write failure. */
    void close();

    uint64_t bytesWritten() const { return _bytes; }

  private:
    std::string _path;
    void *_file = nullptr; ///< FILE*, opaque to keep <cstdio> out
    uint64_t _bytes = 0;
};

/** Everything one recorded round contributed to the journal. */
struct RoundData
{
    /** Requests drawn during this round's assignment, in draw order. */
    std::vector<Request> draws;
    /** Coin flips, (pid, flip) in per-worker drain order. */
    std::vector<std::pair<uint32_t, uint8_t>> coins;
    uint64_t syncSig = 0;
    /** Full server checkpoint taken at this round's end (may be
     *  empty: checkpoints are periodic). */
    std::vector<uint8_t> checkpoint;
};

/** A fully parsed journal. */
struct Journal
{
    uint64_t configHash = 0;
    /** Per-round data, keyed by the 1-based completed-round number. */
    std::map<uint64_t, RoundData> rounds;
    /** Request draws keyed by id (same requests as rounds[].draws). */
    std::map<uint64_t, Request> requests;
    /** Fault firings keyed by (pid, quantum serial). */
    std::map<std::pair<uint32_t, uint64_t>, QuantumFault> faults;
    /** Outage starts keyed by (coreId, round) → length in rounds. */
    std::map<std::pair<uint32_t, uint64_t>, uint32_t> outages;
    /** From the End record. @{ */
    uint64_t endRounds = 0;
    uint64_t endSignature = 0; ///< final ServerReport::signature
    uint64_t endServed = 0;
    /** @} */

    /** Round of the last checkpoint at or before @p round (0 = none;
     *  round 0 is the fresh-start state, never checkpointed). */
    uint64_t checkpointAtOrBefore(uint64_t round) const;
};

/**
 * Read and validate @p path completely. Throws ReplayError with
 * BadMagic / BadVersion / Truncated / Corrupt / Io.
 */
Journal parseJournal(const std::string &path);

/** parseJournal over an in-memory image (tests). */
Journal parseJournal(const std::vector<uint8_t> &bytes);

} // namespace replay
} // namespace hipstr

#endif // HIPSTR_REPLAY_JOURNAL_HH
