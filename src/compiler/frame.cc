#include "frame.hh"

#include "support/bitops.hh"
#include "support/logging.hh"

namespace hipstr
{

FrameLayout
computeFrameLayout(const IrFunction &fn)
{
    FrameLayout layout;
    uint32_t off = 4 * kNumStagingSlots;
    off = static_cast<uint32_t>(roundUp(off, 8));

    layout.frameObjOff.reserve(fn.frameObjects.size());
    for (const FrameObject &obj : fn.frameObjects) {
        hipstr_assert(isPowerOf2(obj.align));
        off = static_cast<uint32_t>(roundUp(off, obj.align));
        layout.frameObjOff.push_back(off);
        off += obj.size;
    }

    off = static_cast<uint32_t>(roundUp(off, 4));
    layout.spillBase = off;
    off += 4 * fn.numValues;

    layout.calleeSaveBase = off;
    off += 4 * kNumCalleeSaveSlots;

    off = static_cast<uint32_t>(roundUp(off + 4, 8));
    layout.frameSize = off;
    layout.raSlot = off - 4;

    // Risc load/store displacements are signed 16-bit; PSR adds up to
    // 64 KB of randomization space handled via the translator scratch,
    // but the *native* frame must stay addressable directly.
    hipstr_assert(layout.frameSize < 32000);
    return layout;
}

} // namespace hipstr
