/**
 * @file
 * Top-level multi-ISA compiler driver: IR module in, fat binary out.
 */

#ifndef HIPSTR_COMPILER_COMPILE_HH
#define HIPSTR_COMPILER_COMPILE_HH

#include "binary/fatbin.hh"
#include "ir/ir.hh"

namespace hipstr
{

/**
 * Compile @p module for both ISAs into a symmetrical fat binary with
 * an extended symbol table. Fatals on a malformed module.
 */
FatBinary compileModule(const IrModule &module);

/** Disassembly listing of one ISA's code section (for tests/docs). */
std::string disassemble(const FatBinary &bin, IsaKind isa);

} // namespace hipstr

#endif // HIPSTR_COMPILER_COMPILE_HH
