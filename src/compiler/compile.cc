#include "compile.hh"

#include <sstream>

#include "compiler/frame.hh"
#include "compiler/isel.hh"
#include "compiler/regalloc.hh"
#include "ir/liveness.hh"
#include "isa/codec.hh"
#include "isa/memory.hh"
#include "support/bitops.hh"
#include "support/logging.hh"

namespace hipstr
{

namespace
{

/** Synthesized process entry stub: call main, then Exit(result). */
std::vector<PendingInst>
makeStartStub(IsaKind isa, uint32_t entry_fn)
{
    const IsaDescriptor &desc = isaDescriptor(isa);
    std::vector<PendingInst> insts;
    insts.push_back(PendingInst{ MachInst::call(0),
                                 PendingInst::Fix::Func, entry_fn });
    insts.push_back(PendingInst{
        MachInst::movRR(desc.argRegs[1], desc.retReg),
        PendingInst::Fix::None, 0 });
    insts.push_back(PendingInst{
        MachInst::movRI(desc.retReg,
                        static_cast<int32_t>(SyscallNo::Exit)),
        PendingInst::Fix::None, 0 });
    insts.push_back(PendingInst{ MachInst::syscall(),
                                 PendingInst::Fix::None, 0 });
    insts.push_back(PendingInst{ MachInst::halt(),
                                 PendingInst::Fix::None, 0 });
    return insts;
}

} // namespace

FatBinary
compileModule(const IrModule &module)
{
    std::string err = verifyModule(module);
    if (!err.empty())
        hipstr_fatal("IR verification failed: %s", err.c_str());

    FatBinary bin;
    bin.name = module.name;
    bin.entryFuncId = module.entryFunc;
    bin.addressTaken.assign(module.functions.size(), false);
    for (const IrFunction &fn : module.functions) {
        for (const IrBlock &block : fn.blocks) {
            for (const IrInst &inst : block.insts) {
                if (inst.op == IrOp::FuncAddr)
                    bin.addressTaken[inst.id] = true;
            }
        }
    }

    // ------------------------------------------------------------
    // Global data layout (shared across ISAs).
    // ------------------------------------------------------------
    Addr data_cursor = layout::kGlobalsBase;
    for (const GlobalVar &g : module.globals) {
        data_cursor = static_cast<Addr>(
            roundUp(data_cursor, std::max<uint32_t>(g.align, 1)));
        bin.globalAddr.push_back(data_cursor);
        data_cursor += g.size;
    }
    bin.dataSize = data_cursor - layout::kGlobalsBase;
    bin.data.assign(bin.dataSize, 0);
    for (size_t i = 0; i < module.globals.size(); ++i) {
        const GlobalVar &g = module.globals[i];
        uint32_t off = bin.globalAddr[i] - layout::kGlobalsBase;
        std::copy(g.init.begin(), g.init.end(),
                  bin.data.begin() + off);
    }

    // ------------------------------------------------------------
    // Shared per-function analyses.
    // ------------------------------------------------------------
    std::vector<FrameLayout> frames;
    std::vector<Liveness> liveness;
    frames.reserve(module.functions.size());
    liveness.reserve(module.functions.size());
    for (const IrFunction &fn : module.functions) {
        frames.push_back(computeFrameLayout(fn));
        liveness.emplace_back(fn);
    }

    // Global call-site numbering: contiguous per function, identical
    // across ISAs because splitting is IR-driven.
    std::vector<uint32_t> call_site_base(module.functions.size(), 0);

    // ------------------------------------------------------------
    // Per-ISA lowering and emission.
    // ------------------------------------------------------------
    for (IsaKind isa : kAllIsas) {
        size_t ii = static_cast<size_t>(isa);

        std::vector<MachFunctionDraft> drafts;
        drafts.reserve(module.functions.size());
        for (const IrFunction &fn : module.functions) {
            AllocationResult alloc = allocateRegisters(
                fn, liveness[fn.id], isa, frames[fn.id].spillBase);
            drafts.push_back(selectInstructions(
                module, fn, liveness[fn.id], frames[fn.id], alloc,
                isa, bin.globalAddr));
        }

        // Call-site numbering (first ISA pass establishes it; the
        // second must agree).
        uint32_t cs_total = 0;
        for (size_t f = 0; f < drafts.size(); ++f) {
            if (isa == kAllIsas[0]) {
                call_site_base[f] = cs_total;
            } else {
                hipstr_assert(call_site_base[f] == cs_total);
            }
            cs_total += drafts[f].numCallSites;
        }
        if (bin.callSites.empty())
            bin.callSites.resize(cs_total);
        hipstr_assert(bin.callSites.size() == cs_total);

        // Pass A: layout. The _start stub sits at the section base,
        // functions follow at 16-byte alignment.
        const Addr base = layout::codeBase(isa);
        std::vector<PendingInst> start_stub =
            makeStartStub(isa, module.entryFunc);
        Addr cursor = base;
        for (PendingInst &pi : start_stub) {
            pi.mi.size = static_cast<uint8_t>(encodedSize(isa, pi.mi));
            cursor += pi.mi.size;
        }

        std::vector<Addr> func_entry(drafts.size());
        // blockAddr[f][b] = VA of machine block b of function f
        std::vector<std::vector<Addr>> block_addr(drafts.size());
        for (size_t f = 0; f < drafts.size(); ++f) {
            cursor = static_cast<Addr>(roundUp(cursor, 16));
            func_entry[f] = cursor;
            block_addr[f].reserve(drafts[f].blocks.size());
            for (MachBlockDraft &block : drafts[f].blocks) {
                block_addr[f].push_back(cursor);
                for (PendingInst &pi : block.insts) {
                    pi.mi.size = static_cast<uint8_t>(
                        encodedSize(isa, pi.mi));
                    cursor += pi.mi.size;
                }
            }
        }

        // Pass B: encode with resolved targets.
        std::vector<uint8_t> &code = bin.code[ii];
        code.clear();
        code.reserve(cursor - base);
        Addr pc = base;
        auto encode_list = [&](std::vector<PendingInst> &insts,
                               size_t f) {
            for (PendingInst &pi : insts) {
                switch (pi.fix) {
                  case PendingInst::Fix::None:
                    break;
                  case PendingInst::Fix::Block:
                    pi.mi.target = block_addr[f][pi.fixId];
                    break;
                  case PendingInst::Fix::Func:
                    pi.mi.target = func_entry[pi.fixId];
                    break;
                  case PendingInst::Fix::BlockImm:
                    pi.mi.src1.disp = static_cast<int32_t>(
                        block_addr[f][pi.fixId]);
                    break;
                  case PendingInst::Fix::BlockImmLo:
                    pi.mi.src1.disp = static_cast<int32_t>(
                        static_cast<int16_t>(
                            block_addr[f][pi.fixId] & 0xffff));
                    break;
                  case PendingInst::Fix::BlockImmHi:
                    pi.mi.src1.disp = static_cast<int32_t>(
                        (block_addr[f][pi.fixId] >> 16) & 0xffff);
                    break;
                }
                size_t before = code.size();
                encodeInst(isa, pi.mi, pc, code);
                hipstr_assert(code.size() - before == pi.mi.size);
                pc += pi.mi.size;
            }
        };

        bin.entryPoint[ii] = base;
        bin.startRetAddr[ii] = base + start_stub[0].mi.size;
        encode_list(start_stub, 0);
        for (size_t f = 0; f < drafts.size(); ++f) {
            // Alignment padding: single-byte NOP on Cisc, NOP words
            // on Risc (entries are 16-byte aligned so words fit).
            while (pc < func_entry[f]) {
                MachInst nop = MachInst::nop();
                nop.size = static_cast<uint8_t>(encodedSize(isa, nop));
                encodeInst(isa, nop, pc, code);
                pc += nop.size;
            }
            for (MachBlockDraft &block : drafts[f].blocks)
                encode_list(block.insts, f);
        }

        // ------------------------------------------------------------
        // Extended symbol table.
        // ------------------------------------------------------------
        std::vector<FuncInfo> &infos = bin.funcs[ii];
        infos.clear();
        infos.reserve(drafts.size());
        for (size_t f = 0; f < drafts.size(); ++f) {
            const MachFunctionDraft &draft = drafts[f];
            const IrFunction &fn = module.functions[f];
            FuncInfo info;
            info.funcId = fn.id;
            info.name = fn.name;
            info.entry = func_entry[f];
            info.frameSize = draft.frame.frameSize;
            info.raSlot = draft.frame.raSlot;
            info.spillBase = draft.frame.spillBase;
            info.calleeSaveBase = draft.frame.calleeSaveBase;
            info.frameObjOff = draft.frame.frameObjOff;
            info.numValues = fn.numValues;
            info.numParams = fn.numParams;
            info.vregLoc = draft.loc;
            info.usedCalleeSaved = draft.usedCalleeSaved;
            info.vregStackDerived = liveness[f].stackDerivedAll();
            info.vregStackSimple = liveness[f].stackSimpleAll();

            Addr end_of_func = func_entry[f];
            for (size_t b = 0; b < draft.blocks.size(); ++b) {
                const MachBlockDraft &mb = draft.blocks[b];
                MachBlockInfo mbi;
                mbi.start = block_addr[f][b];
                uint32_t bytes = 0;
                for (const PendingInst &pi : mb.insts)
                    bytes += pi.mi.size;
                mbi.end = mbi.start + bytes;
                mbi.irBlock = mb.irBlock;
                mbi.segment = mb.segment;
                mbi.liveIn = mb.liveIn;
                mbi.hasStackDerivedLiveIn = mb.hasStackDerivedLiveIn;
                mbi.entryValueInRetReg = mb.entryValueInRetReg;
                mbi.endsInCall = mb.endsInCall;
                if (mb.endsInCall) {
                    uint32_t gid =
                        call_site_base[f] + mb.localCallIdx;
                    mbi.callSiteId = gid;
                    CallSiteInfo &cs = bin.callSites[gid];
                    cs.id = gid;
                    cs.funcId = fn.id;
                    cs.calleeFuncId = mb.calleeFuncId;
                    // The call is the last instruction of the block.
                    uint32_t call_size =
                        mb.insts.back().mi.size;
                    cs.callAddr[ii] = mbi.end - call_size;
                    cs.retAddr[ii] = mbi.end;
                }
                end_of_func = mbi.end;
                info.blocks.push_back(std::move(mbi));
            }
            info.codeSize = end_of_func - func_entry[f];

            // Relocatable frame offsets: staging slots, value slots,
            // callee-save slots, and the return-address slot.
            for (unsigned s = 0; s < kNumStagingSlots; ++s)
                info.relocatableSlots.push_back(
                    draft.frame.stagingSlot(s));
            for (ValueId v = 0; v < fn.numValues; ++v)
                info.relocatableSlots.push_back(
                    draft.frame.slotOf(v));
            for (unsigned s = 0; s < kNumCalleeSaveSlots; ++s)
                info.relocatableSlots.push_back(
                    draft.frame.calleeSaveSlot(s));
            info.relocatableSlots.push_back(draft.frame.raSlot);

            infos.push_back(std::move(info));
        }
    }

    return bin;
}

std::string
disassemble(const FatBinary &bin, IsaKind isa)
{
    std::ostringstream os;
    size_t ii = static_cast<size_t>(isa);
    const std::vector<uint8_t> &code = bin.code[ii];
    Addr base = layout::codeBase(isa);
    Addr pc = base;
    const Addr end = base + static_cast<Addr>(code.size());
    while (pc < end) {
        const FuncInfo *fn = bin.findFuncByAddr(isa, pc);
        if (fn != nullptr && fn->entry == pc)
            os << fn->name << ":\n";
        MachInst mi;
        if (!decodeBytes(isa, code.data() + (pc - base), end - pc, pc,
                         mi)) {
            os << "  " << std::hex << pc << std::dec
               << ": <bad encoding>\n";
            pc += isaDescriptor(isa).instAlign;
            continue;
        }
        os << "  " << std::hex << pc << std::dec << ": "
           << instToString(mi, isa) << "\n";
        pc += mi.size;
    }
    return os.str();
}

} // namespace hipstr
