/**
 * @file
 * Linear-scan register allocation, run once per (function, ISA).
 *
 * Every value keeps its canonical frame slot; allocation only decides
 * which values *additionally* live in a register for their whole
 * lifetime. Values whose live range crosses a call or syscall may only
 * take callee-saved registers (the backend spills caller-saved
 * register values around calls through their canonical slots, which is
 * exactly the register spill/restore traffic the paper's procedure
 * call transformation randomizes).
 */

#ifndef HIPSTR_COMPILER_REGALLOC_HH
#define HIPSTR_COMPILER_REGALLOC_HH

#include <vector>

#include "binary/fatbin.hh"
#include "ir/ir.hh"
#include "ir/liveness.hh"

namespace hipstr
{

/** Result of allocation for one (function, ISA) pair. */
struct AllocationResult
{
    std::vector<VregLoc> loc;          ///< per value
    std::vector<Reg> usedCalleeSaved;  ///< in calleeSaveSlot order
};

/**
 * Allocate registers for @p fn on @p isa.
 *
 * @param fn        the function
 * @param live      its liveness facts
 * @param isa       target ISA (determines the register pools)
 * @param spill_base canonical-slot base from the frame layout
 */
AllocationResult allocateRegisters(const IrFunction &fn,
                                   const Liveness &live, IsaKind isa,
                                   uint32_t spill_base);

} // namespace hipstr

#endif // HIPSTR_COMPILER_REGALLOC_HH
