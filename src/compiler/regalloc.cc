#include "regalloc.hh"

#include "compiler/frame.hh"

#include <algorithm>

#include "support/logging.hh"

namespace hipstr
{

namespace
{

/** A conservative whole-function live interval for one value. */
struct Interval
{
    ValueId value;
    uint32_t start;      ///< first linear index where live
    uint32_t end;        ///< last linear index where live (inclusive)
    bool crossesCall;
    /** Crosses a SetJmp: caller-saved registers are forbidden — the
     *  longjmp path skips the reload that normally follows a call. */
    bool crossesSetJmp;
    bool active;         ///< value is referenced at all
};

} // namespace

AllocationResult
allocateRegisters(const IrFunction &fn, const Liveness &live,
                  IsaKind isa, uint32_t spill_base)
{
    const IsaDescriptor &desc = isaDescriptor(isa);
    const uint32_t nvalues = fn.numValues;

    // Linearize: assign each instruction a global index and record
    // block spans and call positions.
    std::vector<std::pair<uint32_t, uint32_t>> block_span(
        fn.blocks.size());
    std::vector<uint32_t> call_positions;
    std::vector<uint32_t> setjmp_positions;
    uint32_t index = 0;
    for (size_t bb = 0; bb < fn.blocks.size(); ++bb) {
        uint32_t begin = index;
        for (const IrInst &inst : fn.blocks[bb].insts) {
            if (inst.op == IrOp::Call || inst.op == IrOp::CallInd ||
                inst.op == IrOp::Syscall) {
                call_positions.push_back(index);
            }
            if (inst.op == IrOp::SetJmp)
                setjmp_positions.push_back(index);
            ++index;
        }
        block_span[bb] = { begin, index }; // [begin, end)
    }

    std::vector<Interval> intervals(nvalues);
    for (ValueId v = 0; v < nvalues; ++v)
        intervals[v] = { v, UINT32_MAX, 0, false, false, false };

    auto touch = [&](ValueId v, uint32_t at) {
        Interval &iv = intervals[v];
        iv.active = true;
        iv.start = std::min(iv.start, at);
        iv.end = std::max(iv.end, at);
    };

    // Parameters are defined at function entry.
    for (unsigned p = 0; p < fn.numParams; ++p)
        touch(p, 0);

    index = 0;
    std::vector<ValueId> uses;
    for (const IrBlock &block : fn.blocks) {
        for (const IrInst &inst : block.insts) {
            uses.clear();
            collectIrUses(inst, uses);
            for (ValueId v : uses)
                touch(v, index);
            ValueId def = irDefinedValue(inst);
            if (def != kNoValue)
                touch(def, index);
            ++index;
        }
    }

    // Extend intervals across whole blocks where the value is live-in
    // or live-out; this is the conservative fix for loop back edges.
    for (size_t bb = 0; bb < fn.blocks.size(); ++bb) {
        auto [begin, end] = block_span[bb];
        const DenseBitSet &in = live.liveIn(static_cast<uint32_t>(bb));
        const DenseBitSet &out =
            live.liveOut(static_cast<uint32_t>(bb));
        for (ValueId v = 0; v < nvalues; ++v) {
            if (in.test(v))
                touch(v, begin);
            if (out.test(v) && end > 0)
                touch(v, end - 1);
        }
    }

    for (Interval &iv : intervals) {
        if (!iv.active)
            continue;
        auto crosses = [&](const std::vector<uint32_t> &positions) {
            return std::any_of(positions.begin(), positions.end(),
                               [&](uint32_t pos) {
                                   return pos >= iv.start &&
                                       pos < iv.end;
                               });
        };
        iv.crossesCall = crosses(call_positions);
        iv.crossesSetJmp = crosses(setjmp_positions);
    }

    // Register pools (isel temps are never allocatable).
    auto is_temp = [&](Reg r) {
        return std::find(desc.iselTemps.begin(), desc.iselTemps.end(),
                         r) != desc.iselTemps.end();
    };
    std::vector<Reg> callee_pool, caller_pool;
    for (Reg r : desc.calleeSaved)
        if (!is_temp(r))
            callee_pool.push_back(r);
    for (Reg r : desc.callerSaved)
        if (!is_temp(r))
            caller_pool.push_back(r);

    std::vector<bool> callee_free(callee_pool.size(), true);
    std::vector<bool> caller_free(caller_pool.size(), true);

    AllocationResult result;
    result.loc.resize(nvalues);
    for (ValueId v = 0; v < nvalues; ++v)
        result.loc[v] = VregLoc{ false, kNoReg, spill_base + 4 * v };

    // Linear scan.
    std::vector<const Interval *> order;
    for (const Interval &iv : intervals)
        if (iv.active)
            order.push_back(&iv);
    std::sort(order.begin(), order.end(),
              [](const Interval *a, const Interval *b) {
                  return a->start < b->start ||
                      (a->start == b->start && a->value < b->value);
              });

    struct ActiveEntry
    {
        uint32_t end;
        bool calleePool;
        size_t poolIdx;
    };
    std::vector<ActiveEntry> active_list;

    std::vector<Reg> used_callee;

    for (const Interval *iv : order) {
        // Expire finished intervals.
        for (size_t i = 0; i < active_list.size();) {
            if (active_list[i].end < iv->start) {
                if (active_list[i].calleePool)
                    callee_free[active_list[i].poolIdx] = true;
                else
                    caller_free[active_list[i].poolIdx] = true;
                active_list.erase(active_list.begin() +
                                  static_cast<long>(i));
            } else {
                ++i;
            }
        }

        auto take = [&](std::vector<bool> &pool_free,
                        const std::vector<Reg> &pool,
                        bool is_callee) -> bool {
            for (size_t i = 0; i < pool.size(); ++i) {
                if (pool_free[i]) {
                    pool_free[i] = false;
                    result.loc[iv->value] =
                        VregLoc{ true, pool[i],
                                 spill_base + 4 * iv->value };
                    active_list.push_back(
                        ActiveEntry{ iv->end, is_callee, i });
                    if (is_callee &&
                        std::find(used_callee.begin(),
                                  used_callee.end(),
                                  pool[i]) == used_callee.end()) {
                        used_callee.push_back(pool[i]);
                    }
                    return true;
                }
            }
            return false;
        };

        if (iv->crossesSetJmp) {
            // Callee-saved only: the jmp_buf restores those; a
            // caller-saved register would need the post-call reload
            // the longjmp path never executes. Slot-resident is the
            // safe fallback.
            (void)take(callee_free, callee_pool, true);
        } else if (iv->crossesCall) {
            // Prefer callee-saved; fall back to caller-saved (the
            // backend will spill it around calls through the
            // canonical slot).
            if (!take(callee_free, callee_pool, true))
                (void)take(caller_free, caller_pool, false);
        } else {
            if (!take(caller_free, caller_pool, false))
                (void)take(callee_free, callee_pool, true);
        }
        // If neither pool had room the value simply stays
        // slot-resident — always correct.
    }

    result.usedCalleeSaved = std::move(used_callee);
    hipstr_assert(result.usedCalleeSaved.size() <=
                  kNumCalleeSaveSlots);
    return result;
}

} // namespace hipstr
