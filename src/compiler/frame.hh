/**
 * @file
 * The common frame map: an ISA-agnostic stack-frame layout computed
 * purely from the IR, so both backends produce byte-identical frame
 * organization. This is the "common stack frame organization" the
 * paper's multi-ISA compilation relies on (Section 3.2) — cross-ISA
 * stack transformation only has to move values between registers and
 * canonical slots, never to re-shape frames.
 *
 * Layout (offsets from SP after the prologue; the frame grows down):
 *
 *   [0,  20)               argument staging slots (4 args + 1 spare)
 *   [24, ...)              frame objects (arrays), each aligned
 *   [spillBase, ...)       canonical slot per virtual register
 *   [calleeSaveBase, ...)  8 callee-save slots (max across ISAs)
 *   [frameSize-4]          return address slot
 */

#ifndef HIPSTR_COMPILER_FRAME_HH
#define HIPSTR_COMPILER_FRAME_HH

#include <cstdint>
#include <vector>

#include "ir/ir.hh"

namespace hipstr
{

/** Number of argument staging slots (kMaxParams + 1 spare). */
constexpr unsigned kNumStagingSlots = 5;

/** Callee-save slot count (covers the larger Risc callee-saved set). */
constexpr unsigned kNumCalleeSaveSlots = 8;

/** Computed frame layout for one function (both ISAs). */
struct FrameLayout
{
    uint32_t frameSize = 0;
    uint32_t raSlot = 0;
    uint32_t spillBase = 0;
    uint32_t calleeSaveBase = 0;
    std::vector<uint32_t> frameObjOff;

    uint32_t slotOf(ValueId v) const { return spillBase + 4 * v; }
    uint32_t stagingSlot(unsigned i) const { return 4 * i; }
    uint32_t calleeSaveSlot(unsigned i) const
    {
        return calleeSaveBase + 4 * i;
    }
};

/** Compute the common frame map for @p fn. */
FrameLayout computeFrameLayout(const IrFunction &fn);

} // namespace hipstr

#endif // HIPSTR_COMPILER_FRAME_HH
