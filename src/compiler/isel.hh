/**
 * @file
 * Instruction selection: lowers one IR function to machine instructions
 * for one ISA, producing machine basic blocks annotated with the
 * liveness and call-site metadata the extended symbol table records.
 *
 * Machine blocks are IR blocks split at call sites, so the
 * (irBlock, segment) pair names the same equivalence point in both
 * ISAs' code — the anchor for cross-ISA migration.
 */

#ifndef HIPSTR_COMPILER_ISEL_HH
#define HIPSTR_COMPILER_ISEL_HH

#include <cstdint>
#include <vector>

#include "compiler/frame.hh"
#include "compiler/regalloc.hh"
#include "ir/ir.hh"
#include "ir/liveness.hh"
#include "isa/instruction.hh"

namespace hipstr
{

/** A machine instruction awaiting address fixup at emission. */
struct PendingInst
{
    MachInst mi;
    enum class Fix : uint8_t
    {
        None,       ///< fully resolved
        Block,      ///< target is machine block @c fixId of this
                    ///< function
        Func,       ///< target is the entry of function @c fixId
        BlockImm,   ///< src1 immediate := address of machine block
                    ///< @c fixId (32-bit, Cisc)
        BlockImmLo, ///< src1 immediate := low 16 bits of the block
                    ///< address, sign-corrected for MovRI (Risc)
        BlockImmHi  ///< src1 immediate := high 16 bits (Risc MovHi)
    };
    Fix fix = Fix::None;
    uint32_t fixId = 0;
};

/** A machine basic block before layout. */
struct MachBlockDraft
{
    uint32_t irBlock = 0;
    uint32_t segment = 0;
    std::vector<PendingInst> insts;
    std::vector<ValueId> liveIn;
    bool hasStackDerivedLiveIn = false;
    /**
     * For post-call segments: the call's result value, which at block
     * entry still sits in the return register rather than its
     * allocated location. kNoValue otherwise.
     */
    ValueId entryValueInRetReg = kNoValue;
    bool endsInCall = false;
    uint32_t localCallIdx = 0;
    /** Callee of the terminating call; kIndirectCallee if indirect. */
    uint32_t calleeFuncId = 0xffffffff;
};

/** One lowered function for one ISA. */
struct MachFunctionDraft
{
    uint32_t funcId = 0;
    IsaKind isa = IsaKind::Cisc;
    FrameLayout frame;
    std::vector<VregLoc> loc;
    std::vector<Reg> usedCalleeSaved;
    std::vector<MachBlockDraft> blocks;
    uint32_t numCallSites = 0;
};

/** Lower @p fn for @p isa. @p global_addr maps global ids to VAs. */
MachFunctionDraft selectInstructions(const IrModule &module,
                                     const IrFunction &fn,
                                     const Liveness &live,
                                     const FrameLayout &frame,
                                     const AllocationResult &alloc,
                                     IsaKind isa,
                                     const std::vector<Addr> &global_addr);

} // namespace hipstr

#endif // HIPSTR_COMPILER_ISEL_HH
