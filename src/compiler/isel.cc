#include "isel.hh"

#include <algorithm>

#include "isa/codec.hh"
#include "isa/memory.hh"
#include "support/bitops.hh"
#include "support/logging.hh"

namespace hipstr
{

namespace
{

/** Maps IrOp arithmetic to machine Op. */
Op
aluOpFor(IrOp op)
{
    switch (op) {
      case IrOp::Add: return Op::Add;
      case IrOp::Sub: return Op::Sub;
      case IrOp::And: return Op::And;
      case IrOp::Or: return Op::Or;
      case IrOp::Xor: return Op::Xor;
      case IrOp::Shl: return Op::Shl;
      case IrOp::Shr: return Op::Shr;
      case IrOp::Sar: return Op::Sar;
      case IrOp::Mul: return Op::Mul;
      case IrOp::Divu: return Op::Divu;
      default:
        hipstr_panic("aluOpFor: %s is not arithmetic", irOpName(op));
    }
}

class ISel
{
  public:
    ISel(const IrModule &module, const IrFunction &fn,
         const Liveness &live, const FrameLayout &frame,
         const AllocationResult &alloc, IsaKind isa,
         const std::vector<Addr> &global_addr)
        : _module(module), _fn(fn), _live(live), _frame(frame),
          _alloc(alloc), _isa(isa), _desc(isaDescriptor(isa)),
          _globalAddr(global_addr), _sp(_desc.spReg),
          _t1(_desc.iselTemps.at(0)),
          _t2(isa == IsaKind::Risc ? _desc.iselTemps.at(1)
                                   : _desc.iselTemps.at(1))
    {
    }

    MachFunctionDraft run();

  private:
    /** Emission helpers. @{ */
    void emit(MachInst mi)
    {
        _cur->insts.push_back(PendingInst{ mi, PendingInst::Fix::None,
                                           0 });
    }
    void
    emitFix(MachInst mi, PendingInst::Fix fix, uint32_t id)
    {
        _cur->insts.push_back(PendingInst{ mi, fix, id });
    }
    /** @} */

    const VregLoc &locOf(ValueId v) const { return _alloc.loc[v]; }
    uint32_t slotOf(ValueId v) const { return _frame.slotOf(v); }

    /** Operand for reading @p v: its register or canonical slot. */
    Operand
    valueOperand(ValueId v) const
    {
        const VregLoc &l = locOf(v);
        if (l.inReg)
            return Operand::makeReg(l.reg);
        return Operand::makeMem(_sp, static_cast<int32_t>(l.slotOff));
    }

    /** Ensure @p v is in a register, loading into @p temp if needed. */
    Reg
    toReg(ValueId v, Reg temp)
    {
        const VregLoc &l = locOf(v);
        if (l.inReg)
            return l.reg;
        emit(MachInst::load(temp, _sp,
                            static_cast<int32_t>(l.slotOff)));
        return temp;
    }

    /** Materialize a 32-bit constant into @p rd. */
    void
    emitMovImm(Reg rd, int32_t imm)
    {
        if (_isa == IsaKind::Cisc || fitsSigned(imm, 16)) {
            emit(MachInst::movRI(rd, imm));
        } else {
            emit(MachInst::movRI(
                rd, static_cast<int32_t>(
                        static_cast<int16_t>(imm & 0xffff))));
            emit(MachInst::movHi(
                rd, static_cast<int32_t>(
                        (static_cast<uint32_t>(imm) >> 16) & 0xffff)));
        }
    }

    /** Store register @p src into the canonical slot of @p v. */
    void
    storeToSlot(ValueId v, Reg src)
    {
        emit(MachInst::store(_sp, static_cast<int32_t>(slotOf(v)),
                             src));
    }

    /** Write register @p src into @p v's allocated location. */
    /**
     * Write register @p src into @p v's allocated location. The move
     * is emitted even when source and destination coincide: the PSR
     * translator retargets the physical return register at call
     * boundaries, so an elided self-move would lose the value.
     */
    void
    writeValueFromReg(ValueId v, Reg src)
    {
        const VregLoc &l = locOf(v);
        if (l.inReg)
            emit(MachInst::movRR(l.reg, src));
        else
            storeToSlot(v, src);
    }

    /** Copy value @p src into value @p dst. */
    void
    copyValue(ValueId dst, ValueId src)
    {
        const VregLoc &d = locOf(dst);
        const VregLoc &s = locOf(src);
        if (d.inReg && s.inReg) {
            if (d.reg != s.reg)
                emit(MachInst::movRR(d.reg, s.reg));
        } else if (d.inReg) {
            emit(MachInst::load(d.reg, _sp,
                                static_cast<int32_t>(s.slotOff)));
        } else if (s.inReg) {
            emit(MachInst::store(_sp,
                                 static_cast<int32_t>(d.slotOff),
                                 s.reg));
        } else {
            emit(MachInst::load(_t1, _sp,
                                static_cast<int32_t>(s.slotOff)));
            emit(MachInst::store(_sp,
                                 static_cast<int32_t>(d.slotOff),
                                 _t1));
        }
    }

    /** Begin a fresh machine block. */
    MachBlockDraft &
    startBlock(uint32_t ir_block, uint32_t segment)
    {
        _draft.blocks.emplace_back();
        _cur = &_draft.blocks.back();
        _cur->irBlock = ir_block;
        _cur->segment = segment;
        return *_cur;
    }

    void fillBlockLiveness(MachBlockDraft &block,
                           const DenseBitSet &live_set);

    void emitPrologue();
    void emitEpilogue(const IrInst &ret);
    void lowerInst(const IrInst &inst, uint32_t bb, size_t idx);
    void lowerAlu(const IrInst &inst);
    void lowerCondBr(const IrInst &inst);
    void lowerLoadStore(const IrInst &inst);
    void lowerCall(const IrInst &inst, uint32_t bb, size_t idx);
    void lowerSyscall(const IrInst &inst, uint32_t bb, size_t idx);
    void lowerSetJmp(const IrInst &inst, uint32_t bb, size_t idx);
    void lowerLongJmp(const IrInst &inst);

    /**
     * Spill caller-saved register values live in @p live_after to
     * their canonical slots; returns the spilled set for reloading.
     */
    std::vector<ValueId> spillCallerSaved(const DenseBitSet &live_after,
                                          ValueId excluded);
    void reloadCallerSaved(const std::vector<ValueId> &spilled);

    /** Stage argument values into the staging slots, then load the
     *  argument registers from them (immune to register shuffling
     *  hazards). */
    void stageArgs(const std::vector<ValueId> &args);

    const IrModule &_module;
    const IrFunction &_fn;
    const Liveness &_live;
    const FrameLayout &_frame;
    const AllocationResult &_alloc;
    IsaKind _isa;
    const IsaDescriptor &_desc;
    const std::vector<Addr> &_globalAddr;

    Reg _sp;
    Reg _t1; ///< primary isel temp (si / r11)
    Reg _t2; ///< secondary isel temp (di / r12)

    MachFunctionDraft _draft;
    MachBlockDraft *_cur = nullptr;
    std::vector<uint32_t> _seg0Index; ///< machine index of (bb, seg 0)
};

void
ISel::fillBlockLiveness(MachBlockDraft &block,
                        const DenseBitSet &live_set)
{
    block.liveIn = live_set.toVector();
    block.hasStackDerivedLiveIn = false;
    for (ValueId v : block.liveIn) {
        if (_live.stackDerived(v)) {
            block.hasStackDerivedLiveIn = true;
            break;
        }
    }
}

MachFunctionDraft
ISel::run()
{
    _draft.funcId = _fn.id;
    _draft.isa = _isa;
    _draft.frame = _frame;
    _draft.loc = _alloc.loc;
    _draft.usedCalleeSaved = _alloc.usedCalleeSaved;

    // Precompute the machine index of segment 0 of every IR block so
    // branches can be fixed up without a second pass.
    _seg0Index.resize(_fn.blocks.size());
    uint32_t mindex = 0;
    for (size_t bb = 0; bb < _fn.blocks.size(); ++bb) {
        _seg0Index[bb] = mindex;
        uint32_t calls = 0;
        for (const IrInst &inst : _fn.blocks[bb].insts) {
            if (inst.op == IrOp::Call || inst.op == IrOp::CallInd)
                ++calls;
        }
        mindex += 1 + calls;
    }

    for (uint32_t bb = 0; bb < _fn.blocks.size(); ++bb) {
        MachBlockDraft &block = startBlock(bb, 0);
        fillBlockLiveness(block, _live.liveIn(bb));
        if (bb == 0)
            emitPrologue();
        const IrBlock &ir_block = _fn.blocks[bb];
        for (size_t i = 0; i < ir_block.insts.size(); ++i)
            lowerInst(ir_block.insts[i], bb, i);
    }

    return _draft;
}

void
ISel::emitPrologue()
{
    const uint32_t fsize = _frame.frameSize;
    if (_isa == IsaKind::Cisc) {
        // The caller's CALL already pushed the return address; grow
        // the rest of the frame so it lands in the RA slot.
        emit(MachInst::alu(Op::Sub, _sp, _sp,
                           Operand::makeImm(
                               static_cast<int32_t>(fsize - 4))));
    } else {
        emit(MachInst::alu(Op::Sub, _sp, _sp,
                           Operand::makeImm(
                               static_cast<int32_t>(fsize))));
        emit(MachInst::store(_sp,
                             static_cast<int32_t>(_frame.raSlot),
                             _desc.lrReg));
    }

    // Save used callee-saved registers into their fixed slots.
    for (size_t i = 0; i < _draft.usedCalleeSaved.size(); ++i) {
        emit(MachInst::store(
            _sp,
            static_cast<int32_t>(
                _frame.calleeSaveSlot(static_cast<unsigned>(i))),
            _draft.usedCalleeSaved[i]));
    }

    // Park incoming arguments in their canonical slots first, then
    // load register-allocated parameters — safe against any
    // permutation of argument registers.
    for (unsigned p = 0; p < _fn.numParams; ++p) {
        emit(MachInst::store(_sp, static_cast<int32_t>(slotOf(p)),
                             _desc.argRegs[p]));
    }
    for (unsigned p = 0; p < _fn.numParams; ++p) {
        const VregLoc &l = locOf(p);
        if (l.inReg) {
            emit(MachInst::load(l.reg, _sp,
                                static_cast<int32_t>(slotOf(p))));
        }
    }
}

void
ISel::emitEpilogue(const IrInst &ret)
{
    if (ret.a != kNoValue) {
        // Always emit the move (even reg-to-same-reg): the PSR
        // translator rewrites this instruction's destination to the
        // function's randomized return register.
        const VregLoc &l = locOf(ret.a);
        if (l.inReg) {
            emit(MachInst::movRR(_desc.retReg, l.reg));
        } else {
            emit(MachInst::load(_desc.retReg, _sp,
                                static_cast<int32_t>(l.slotOff)));
        }
    }

    for (size_t i = 0; i < _draft.usedCalleeSaved.size(); ++i) {
        emit(MachInst::load(
            _draft.usedCalleeSaved[i], _sp,
            static_cast<int32_t>(
                _frame.calleeSaveSlot(static_cast<unsigned>(i)))));
    }

    // Both ISAs: point SP at the RA slot, then pop-return.
    emit(MachInst::alu(Op::Add, _sp, _sp,
                       Operand::makeImm(
                           static_cast<int32_t>(_frame.frameSize - 4))));
    emit(MachInst::ret());
}

void
ISel::lowerAlu(const IrInst &inst)
{
    Op op = aluOpFor(inst.op);

    if (_isa == IsaKind::Risc) {
        Reg ra = toReg(inst.a, _t1);
        Operand src2;
        if (inst.b == kNoValue) {
            if (fitsSigned(inst.imm, 16)) {
                src2 = Operand::makeImm(inst.imm);
            } else {
                emitMovImm(_t2, inst.imm);
                src2 = Operand::makeReg(_t2);
            }
        } else {
            src2 = Operand::makeReg(toReg(inst.b, _t2));
        }
        const VregLoc &d = locOf(inst.dst);
        Reg rd = d.inReg ? d.reg : _t1;
        emit(MachInst::alu(op, rd, ra, src2));
        if (!d.inReg)
            storeToSlot(inst.dst, rd);
        return;
    }

    // Cisc: two-address. Compute into T, where T is the destination
    // register when that is safe, else the primary temp.
    const VregLoc &d = locOf(inst.dst);
    Reg target = d.inReg ? d.reg : _t1;
    bool b_is_reg = inst.b != kNoValue && locOf(inst.b).inReg;
    if (b_is_reg && locOf(inst.b).reg == target && inst.b != inst.a)
        target = _t1; // writing target first would clobber operand b

    // target <- a
    Operand src_a = valueOperand(inst.a);
    if (!(src_a.isReg() && src_a.reg == target)) {
        MachInst mv = MachInst::movRR(target, 0);
        mv.src1 = src_a;
        emit(mv);
    }

    // src2 operand
    Operand src2;
    bool is_shift =
        (op == Op::Shl || op == Op::Shr || op == Op::Sar);
    if (inst.b == kNoValue) {
        src2 = Operand::makeImm(inst.imm);
    } else {
        const VregLoc &bl = locOf(inst.b);
        if (bl.inReg) {
            src2 = Operand::makeReg(bl.reg);
        } else if (is_shift) {
            // Variable shifts need a register amount.
            emit(MachInst::load(_t2, _sp,
                                static_cast<int32_t>(bl.slotOff)));
            src2 = Operand::makeReg(_t2);
        } else {
            src2 = Operand::makeMem(_sp,
                                    static_cast<int32_t>(bl.slotOff));
        }
    }

    emit(MachInst::alu(op, target, target, src2));
    if (!d.inReg)
        storeToSlot(inst.dst, target);
    else if (d.reg != target)
        emit(MachInst::movRR(d.reg, target));
}

void
ISel::lowerCondBr(const IrInst &inst)
{
    Operand lhs, rhs;
    if (_isa == IsaKind::Risc) {
        lhs = Operand::makeReg(toReg(inst.a, _t1));
        if (inst.b == kNoValue) {
            if (fitsSigned(inst.imm, 16)) {
                rhs = Operand::makeImm(inst.imm);
            } else {
                emitMovImm(_t2, inst.imm);
                rhs = Operand::makeReg(_t2);
            }
        } else {
            rhs = Operand::makeReg(toReg(inst.b, _t2));
        }
    } else {
        lhs = valueOperand(inst.a);
        if (inst.b == kNoValue) {
            rhs = Operand::makeImm(inst.imm);
        } else {
            rhs = valueOperand(inst.b);
            if (lhs.isMem() && rhs.isMem()) {
                emit(MachInst::load(_t1, _sp, lhs.disp));
                lhs = Operand::makeReg(_t1);
            }
        }
    }
    emit(MachInst::cmp(lhs, rhs));
    emitFix(MachInst::jcc(inst.cond, 0), PendingInst::Fix::Block,
            _seg0Index[inst.bbTrue]);
    emitFix(MachInst::jmp(0), PendingInst::Fix::Block,
            _seg0Index[inst.bbFalse]);
}

void
ISel::lowerLoadStore(const IrInst &inst)
{
    bool byte = (inst.op == IrOp::Load8 || inst.op == IrOp::Store8);
    bool is_load = (inst.op == IrOp::Load || inst.op == IrOp::Load8);

    if (_isa == IsaKind::Risc)
        hipstr_assert(fitsSigned(inst.imm, 16));

    Reg base = toReg(inst.a, _t1);
    if (is_load) {
        const VregLoc &d = locOf(inst.dst);
        Reg rd = d.inReg ? d.reg : (_isa == IsaKind::Risc ? _t2 : _t1);
        emit(byte ? MachInst::loadByte(rd, base, inst.imm)
                  : MachInst::load(rd, base, inst.imm));
        if (!d.inReg)
            storeToSlot(inst.dst, rd);
    } else {
        Reg src = toReg(inst.b, _t2);
        emit(byte ? MachInst::storeByte(base, inst.imm, src)
                  : MachInst::store(base, inst.imm, src));
    }
}

std::vector<ValueId>
ISel::spillCallerSaved(const DenseBitSet &live_after, ValueId excluded)
{
    std::vector<ValueId> spilled;
    for (ValueId v : live_after.toVector()) {
        if (v == excluded)
            continue;
        const VregLoc &l = locOf(v);
        if (!l.inReg)
            continue;
        bool caller_saved =
            std::find(_desc.callerSaved.begin(),
                      _desc.callerSaved.end(),
                      l.reg) != _desc.callerSaved.end();
        if (caller_saved) {
            storeToSlot(v, l.reg);
            spilled.push_back(v);
        }
    }
    return spilled;
}

void
ISel::reloadCallerSaved(const std::vector<ValueId> &spilled)
{
    for (ValueId v : spilled) {
        emit(MachInst::load(locOf(v).reg, _sp,
                            static_cast<int32_t>(slotOf(v))));
    }
}

void
ISel::stageArgs(const std::vector<ValueId> &args)
{
    hipstr_assert(args.size() <= kMaxParams);
    // Phase 1: every argument value goes to its staging slot, read
    // from its current location (registers still intact).
    for (size_t j = 0; j < args.size(); ++j) {
        const VregLoc &l = locOf(args[j]);
        int32_t stage =
            static_cast<int32_t>(
                _frame.stagingSlot(static_cast<unsigned>(j)));
        if (l.inReg) {
            emit(MachInst::store(_sp, stage, l.reg));
        } else {
            emit(MachInst::load(_t1, _sp,
                                static_cast<int32_t>(l.slotOff)));
            emit(MachInst::store(_sp, stage, _t1));
        }
    }
    // Phase 2: load the argument registers.
    for (size_t j = 0; j < args.size(); ++j) {
        emit(MachInst::load(
            _desc.argRegs[j], _sp,
            static_cast<int32_t>(
                _frame.stagingSlot(static_cast<unsigned>(j)))));
    }
}

void
ISel::lowerCall(const IrInst &inst, uint32_t bb, size_t idx)
{
    DenseBitSet live_after = _live.liveBefore(bb, idx + 1);
    ValueId dst = inst.dst;
    std::vector<ValueId> spilled = spillCallerSaved(live_after, dst);

    if (inst.op == IrOp::CallInd) {
        hipstr_assert(inst.args.size() <= kMaxParams - 1);
        // Resolve the function id to this ISA's entry address through
        // the dispatch table, then park it in the spare staging slot
        // so argument-register loading cannot clobber it.
        Reg t = _t1;
        Operand fp = valueOperand(inst.a);
        if (!(fp.isReg() && fp.reg == t)) {
            MachInst mv = MachInst::movRR(t, 0);
            mv.src1 = fp;
            emit(mv);
        }
        emit(MachInst::alu(Op::Shl, t, t, Operand::makeImm(2)));
        if (_isa == IsaKind::Cisc) {
            emit(MachInst::alu(
                Op::Add, t, t,
                Operand::makeImm(static_cast<int32_t>(
                    layout::funcTableBase(_isa)))));
        } else {
            emitMovImm(_t2, static_cast<int32_t>(
                                layout::funcTableBase(_isa)));
            emit(MachInst::alu(Op::Add, t, t,
                               Operand::makeReg(_t2)));
        }
        emit(MachInst::load(t, t, 0));
        emit(MachInst::store(
            _sp,
            static_cast<int32_t>(_frame.stagingSlot(kMaxParams)), t));
    }

    stageArgs(inst.args);

    uint32_t local_call = _draft.numCallSites++;
    if (inst.op == IrOp::Call) {
        emitFix(MachInst::call(0), PendingInst::Fix::Func, inst.id);
    } else {
        Reg t = _t1;
        emit(MachInst::load(
            t, _sp,
            static_cast<int32_t>(_frame.stagingSlot(kMaxParams))));
        emit(MachInst::callInd(t));
    }

    // Close the current machine block at the call.
    uint32_t cur_ir = _cur->irBlock;
    uint32_t cur_seg = _cur->segment;
    _cur->endsInCall = true;
    _cur->localCallIdx = local_call;
    _cur->calleeFuncId =
        (inst.op == IrOp::Call) ? inst.id : 0xffffffff;

    // Start the post-call segment.
    MachBlockDraft &block = startBlock(cur_ir, cur_seg + 1);
    fillBlockLiveness(block, live_after);
    if (dst != kNoValue && live_after.test(dst))
        block.entryValueInRetReg = dst;

    if (dst != kNoValue)
        writeValueFromReg(dst, _desc.retReg);
    reloadCallerSaved(spilled);
}

void
ISel::lowerSyscall(const IrInst &inst, uint32_t bb, size_t idx)
{
    DenseBitSet live_after = _live.liveBefore(bb, idx + 1);
    ValueId dst = inst.dst;
    std::vector<ValueId> spilled = spillCallerSaved(live_after, dst);

    // Syscall arguments: number in retReg, then argRegs[1..3].
    hipstr_assert(!inst.args.empty() && inst.args.size() <= 4);
    for (size_t j = 0; j < inst.args.size(); ++j) {
        const VregLoc &l = locOf(inst.args[j]);
        int32_t stage = static_cast<int32_t>(
            _frame.stagingSlot(static_cast<unsigned>(j)));
        if (l.inReg) {
            emit(MachInst::store(_sp, stage, l.reg));
        } else {
            emit(MachInst::load(_t1, _sp,
                                static_cast<int32_t>(l.slotOff)));
            emit(MachInst::store(_sp, stage, _t1));
        }
    }
    for (size_t j = 0; j < inst.args.size(); ++j) {
        Reg target = (j == 0) ? _desc.retReg : _desc.argRegs[j];
        emit(MachInst::load(
            target, _sp,
            static_cast<int32_t>(
                _frame.stagingSlot(static_cast<unsigned>(j)))));
    }

    emit(MachInst::syscall());

    if (dst != kNoValue)
        writeValueFromReg(dst, _desc.retReg);
    reloadCallerSaved(spilled);
}

void
ISel::lowerSetJmp(const IrInst &inst, uint32_t bb, size_t idx)
{
    // setjmp(buf): syscall(SetJmpNo, buf, &resume); jmp resume.
    // Values live into the resume block must not sit in caller-saved
    // registers (the allocator treats SetJmp as a barrier); assert
    // the invariant rather than silently miscompiling.
    DenseBitSet live_after = _live.liveBefore(bb, idx + 1);
    for (ValueId v : live_after.toVector()) {
        const VregLoc &l = locOf(v);
        if (!l.inReg)
            continue;
        bool caller_saved =
            std::find(_desc.callerSaved.begin(),
                      _desc.callerSaved.end(),
                      l.reg) != _desc.callerSaved.end();
        hipstr_assert(!caller_saved);
    }

    // Stage: [sp+0]=SetJmpNo, [sp+4]=buf, [sp+8]=&resume.
    if (_isa == IsaKind::Cisc) {
        emit(MachInst::storeImm(
            _sp, 0, static_cast<int32_t>(SyscallNo::SetJmp)));
    } else {
        emitMovImm(_t1, static_cast<int32_t>(SyscallNo::SetJmp));
        emit(MachInst::store(_sp, 0, _t1));
    }
    {
        const VregLoc &l = locOf(inst.a);
        if (l.inReg) {
            emit(MachInst::store(_sp, 4, l.reg));
        } else {
            emit(MachInst::load(_t1, _sp,
                                static_cast<int32_t>(l.slotOff)));
            emit(MachInst::store(_sp, 4, _t1));
        }
    }
    uint32_t resume_mb = _seg0Index[inst.bbTrue];
    if (_isa == IsaKind::Cisc) {
        emitFix(MachInst::storeImm(_sp, 8, 0),
                PendingInst::Fix::BlockImm, resume_mb);
    } else {
        emitFix(MachInst::movRI(_t1, 0),
                PendingInst::Fix::BlockImmLo, resume_mb);
        emitFix(MachInst::movHi(_t1, 0),
                PendingInst::Fix::BlockImmHi, resume_mb);
        emit(MachInst::store(_sp, 8, _t1));
    }
    // Load the syscall convention registers and trap.
    emit(MachInst::load(_desc.retReg, _sp, 0));
    emit(MachInst::load(_desc.argRegs[1], _sp, 4));
    emit(MachInst::load(_desc.argRegs[2], _sp, 8));
    emit(MachInst::syscall());
    emitFix(MachInst::jmp(0), PendingInst::Fix::Block, resume_mb);
}

void
ISel::lowerLongJmp(const IrInst &inst)
{
    // longjmp(buf, val): syscall(LongJmpNo, buf, val); the guest OS
    // rewrites pc. The trailing halt is an unreachable backstop that
    // also terminates the machine block for the decoders.
    if (_isa == IsaKind::Cisc) {
        emit(MachInst::storeImm(
            _sp, 0, static_cast<int32_t>(SyscallNo::LongJmp)));
    } else {
        emitMovImm(_t1, static_cast<int32_t>(SyscallNo::LongJmp));
        emit(MachInst::store(_sp, 0, _t1));
    }
    for (unsigned j = 0; j < 2; ++j) {
        ValueId v = j == 0 ? inst.a : inst.b;
        const VregLoc &l = locOf(v);
        int32_t stage = static_cast<int32_t>(4 + 4 * j);
        if (l.inReg) {
            emit(MachInst::store(_sp, stage, l.reg));
        } else {
            emit(MachInst::load(_t1, _sp,
                                static_cast<int32_t>(l.slotOff)));
            emit(MachInst::store(_sp, stage, _t1));
        }
    }
    emit(MachInst::load(_desc.retReg, _sp, 0));
    emit(MachInst::load(_desc.argRegs[1], _sp, 4));
    emit(MachInst::load(_desc.argRegs[2], _sp, 8));
    emit(MachInst::syscall());
    emit(MachInst::halt());
}

void
ISel::lowerInst(const IrInst &inst, uint32_t bb, size_t idx)
{
    switch (inst.op) {
      case IrOp::ConstI: {
        const VregLoc &d = locOf(inst.dst);
        if (d.inReg) {
            emitMovImm(d.reg, inst.imm);
        } else if (_isa == IsaKind::Cisc) {
            emit(MachInst::storeImm(
                _sp, static_cast<int32_t>(d.slotOff), inst.imm));
        } else {
            emitMovImm(_t1, inst.imm);
            storeToSlot(inst.dst, _t1);
        }
        return;
      }
      case IrOp::Copy:
        copyValue(inst.dst, inst.a);
        return;
      case IrOp::FrameAddr: {
        int32_t off = static_cast<int32_t>(
                          _frame.frameObjOff.at(inst.id)) +
            inst.imm;
        const VregLoc &d = locOf(inst.dst);
        Reg rd = d.inReg ? d.reg : _t1;
        emit(MachInst::lea(rd, _sp, off));
        if (!d.inReg)
            storeToSlot(inst.dst, rd);
        return;
      }
      case IrOp::GlobalAddr: {
        int32_t addr = static_cast<int32_t>(
                           _globalAddr.at(inst.id)) +
            inst.imm;
        const VregLoc &d = locOf(inst.dst);
        Reg rd = d.inReg ? d.reg : _t1;
        emitMovImm(rd, addr);
        if (!d.inReg)
            storeToSlot(inst.dst, rd);
        return;
      }
      case IrOp::FuncAddr: {
        // Function "addresses" are ISA-agnostic function ids.
        const VregLoc &d = locOf(inst.dst);
        Reg rd = d.inReg ? d.reg : _t1;
        emitMovImm(rd, static_cast<int32_t>(inst.id));
        if (!d.inReg)
            storeToSlot(inst.dst, rd);
        return;
      }
      case IrOp::Load:
      case IrOp::Load8:
      case IrOp::Store:
      case IrOp::Store8:
        lowerLoadStore(inst);
        return;
      case IrOp::Add: case IrOp::Sub: case IrOp::And: case IrOp::Or:
      case IrOp::Xor: case IrOp::Shl: case IrOp::Shr: case IrOp::Sar:
      case IrOp::Mul: case IrOp::Divu:
        lowerAlu(inst);
        return;
      case IrOp::Br:
        emitFix(MachInst::jmp(0), PendingInst::Fix::Block,
                _seg0Index[inst.bbTrue]);
        return;
      case IrOp::CondBr:
        lowerCondBr(inst);
        return;
      case IrOp::Call:
      case IrOp::CallInd:
        lowerCall(inst, bb, idx);
        return;
      case IrOp::Syscall:
        lowerSyscall(inst, bb, idx);
        return;
      case IrOp::Ret:
        emitEpilogue(inst);
        return;
      case IrOp::SetJmp:
        lowerSetJmp(inst, bb, idx);
        return;
      case IrOp::LongJmp:
        lowerLongJmp(inst);
        return;
    }
    hipstr_panic("lowerInst: unhandled op %s", irOpName(inst.op));
}

} // namespace

MachFunctionDraft
selectInstructions(const IrModule &module, const IrFunction &fn,
                   const Liveness &live, const FrameLayout &frame,
                   const AllocationResult &alloc, IsaKind isa,
                   const std::vector<Addr> &global_addr)
{
    ISel isel(module, fn, live, frame, alloc, isa, global_addr);
    return isel.run();
}

} // namespace hipstr
