#include "fault.hh"

namespace hipstr
{

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::None: return "none";
      case FaultKind::MemFault: return "mem_fault";
      case FaultKind::BadInstruction: return "bad_instruction";
      case FaultKind::SfiViolation: return "sfi_violation";
      case FaultKind::BitFlip: return "bit_flip";
      case FaultKind::DecodeFault: return "decode_fault";
      case FaultKind::CacheFlush: return "cache_flush";
      case FaultKind::TransformAbort: return "transform_abort";
      case FaultKind::Wedge: return "wedge";
      case FaultKind::Watchdog: return "watchdog";
      case FaultKind::CoreFailure: return "core_failure";
      case FaultKind::kNum: break;
    }
    return "?";
}

} // namespace hipstr
