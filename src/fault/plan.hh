/**
 * @file
 * The deterministic fault-injection engine: a FaultPlan derived from
 * the server seed that schedules typed infrastructure faults against
 * the protected server — core outages, transient guest faults (bit
 * flips, decode faults, cache flushes), migration-transform aborts,
 * and wedged guests.
 *
 * Every decision is a pure hash of (seed, stream, identity, time):
 * core outages key on (core id, round) and quantum faults on
 * (pid, per-process quantum serial). Both identities advance
 * deterministically under the scheduler's fixed-order merge, so a
 * faulted run is byte-identical for every HIPSTR_JOBS value — the
 * same contract the fault-free server already holds.
 */

#ifndef HIPSTR_FAULT_PLAN_HH
#define HIPSTR_FAULT_PLAN_HH

#include "fault/fault.hh"

namespace hipstr
{

/** Knobs of the fault plan. Disabled by default: a server built with
 *  the default config behaves bit-for-bit like one built before the
 *  fault engine existed. */
struct FaultPlanConfig
{
    bool enabled = false;

    /** Derive all fault streams from this (the server passes its own
     *  seed, so one seed reproduces the whole chaos run). */
    uint64_t seed = 0x5eed;

    /**
     * Per-quantum probability of a transient guest fault. The faulted
     * quantum draws one kind uniformly from {bit flip, decode fault,
     * cache flush, transform abort, wedge}.
     */
    double quantumFaultRate = 0.0;

    /** Per-core, per-round probability of the core going offline. */
    double coreFailRate = 0.0;

    /** Outage length in rounds, drawn per outage from this range. @{ */
    uint32_t outageRoundsMin = 8;
    uint32_t outageRoundsMax = 40;
    /** @} */

    /** Wedge-episode length in quanta, drawn per episode. @{ */
    uint32_t wedgeQuantaMin = 2;
    uint32_t wedgeQuantaMax = 5;
    /** @} */

    /**
     * Scripted full-ISA outage: at round scriptedOutageRound every
     * core of scriptedOutageIsa goes down for scriptedOutageRounds —
     * the deterministic way to drive the server into (and out of)
     * degraded single-ISA mode. Disabled while scriptedOutageRounds
     * is 0.
     */
    IsaKind scriptedOutageIsa = IsaKind::Risc;
    uint64_t scriptedOutageRound = 0;
    uint32_t scriptedOutageRounds = 0;
};

/** One scheduled transient fault (FaultKind::None = clean quantum). */
struct QuantumFault
{
    FaultKind kind = FaultKind::None;
    /** Kind-specific entropy: bit-flip address/bit, wedge length. */
    uint64_t payload = 0;
};

/** The plan. Stateless and const after construction — safe to share
 *  across every worker and the scheduler. The three scheduling
 *  queries are virtual so the record/replay layer (src/replay) can
 *  decorate a plan to journal its firings, or substitute one that
 *  answers from a journal; all three sit on cold per-quantum /
 *  per-round paths, so the indirection costs nothing measurable. */
class FaultPlan
{
  public:
    explicit FaultPlan(const FaultPlanConfig &cfg);
    virtual ~FaultPlan() = default;

    const FaultPlanConfig &config() const { return _cfg; }

    /**
     * The transient fault (if any) scheduled for process @p pid's
     * quantum number @p serial. Pure function of (seed, pid, serial).
     */
    virtual QuantumFault quantumFault(uint32_t pid,
                                      uint64_t serial) const;

    /**
     * Outage length, in rounds, of an outage *starting* at @p round on
     * core @p coreId of @p isa; 0 = the core stays up. Includes the
     * scripted full-ISA outage window.
     */
    virtual uint32_t coreOutageAt(unsigned coreId, IsaKind isa,
                                  uint64_t round) const;

    /** Wedge-episode length for a Wedge fault's @p payload. */
    virtual uint32_t wedgeLength(uint64_t payload) const;

  private:
    /** Independent hash streams so e.g. the outage schedule never
     *  shifts when the quantum-fault rate changes. */
    uint64_t hashAt(uint64_t stream, uint64_t a, uint64_t b) const;

    FaultPlanConfig _cfg;
};

} // namespace hipstr

#endif // HIPSTR_FAULT_PLAN_HH
