#include "plan.hh"

#include "support/logging.hh"
#include "support/random.hh"

namespace hipstr
{

namespace
{

/** Hash-stream tags. */
constexpr uint64_t kQuantumRollStream = 1;
constexpr uint64_t kQuantumKindStream = 2;
constexpr uint64_t kCoreFailStream = 3;

/** The injectable transient fault kinds a faulted quantum draws from. */
constexpr FaultKind kQuantumKinds[] = {
    FaultKind::BitFlip,       FaultKind::DecodeFault,
    FaultKind::CacheFlush,    FaultKind::TransformAbort,
    FaultKind::Wedge,
};
constexpr uint64_t kNumQuantumKinds =
    sizeof(kQuantumKinds) / sizeof(kQuantumKinds[0]);

/** Uniform [0,1) from the top 53 bits, as Rng::uniform() does. */
double
unitFloat(uint64_t h)
{
    return double(h >> 11) * 0x1.0p-53;
}

} // namespace

FaultPlan::FaultPlan(const FaultPlanConfig &cfg) : _cfg(cfg)
{
    hipstr_assert(cfg.quantumFaultRate >= 0 &&
                  cfg.quantumFaultRate <= 1);
    hipstr_assert(cfg.coreFailRate >= 0 && cfg.coreFailRate <= 1);
    hipstr_assert(cfg.outageRoundsMin > 0 &&
                  cfg.outageRoundsMin <= cfg.outageRoundsMax);
    hipstr_assert(cfg.wedgeQuantaMin > 0 &&
                  cfg.wedgeQuantaMin <= cfg.wedgeQuantaMax);
}

uint64_t
FaultPlan::hashAt(uint64_t stream, uint64_t a, uint64_t b) const
{
    uint64_t s = _cfg.seed + 0x9e3779b97f4a7c15ull * (stream + 1);
    (void)splitMix64(s);
    s += a * 0xbf58476d1ce4e5b9ull;
    (void)splitMix64(s);
    s += b * 0x94d049bb133111ebull;
    return splitMix64(s);
}

QuantumFault
FaultPlan::quantumFault(uint32_t pid, uint64_t serial) const
{
    QuantumFault f;
    if (_cfg.quantumFaultRate <= 0)
        return f;
    uint64_t roll = hashAt(kQuantumRollStream, pid, serial);
    if (unitFloat(roll) >= _cfg.quantumFaultRate)
        return f;
    uint64_t h = hashAt(kQuantumKindStream, pid, serial);
    f.kind = kQuantumKinds[h % kNumQuantumKinds];
    f.payload = h / kNumQuantumKinds;
    return f;
}

uint32_t
FaultPlan::coreOutageAt(unsigned coreId, IsaKind isa,
                        uint64_t round) const
{
    if (_cfg.scriptedOutageRounds != 0 &&
        round == _cfg.scriptedOutageRound &&
        isa == _cfg.scriptedOutageIsa) {
        return _cfg.scriptedOutageRounds;
    }
    if (_cfg.coreFailRate <= 0)
        return 0;
    uint64_t h = hashAt(kCoreFailStream, coreId, round);
    if (unitFloat(h) >= _cfg.coreFailRate)
        return 0;
    uint32_t span = _cfg.outageRoundsMax - _cfg.outageRoundsMin + 1;
    return _cfg.outageRoundsMin +
        static_cast<uint32_t>((h >> 11) % span);
}

uint32_t
FaultPlan::wedgeLength(uint64_t payload) const
{
    uint32_t span = _cfg.wedgeQuantaMax - _cfg.wedgeQuantaMin + 1;
    return _cfg.wedgeQuantaMin + static_cast<uint32_t>(payload % span);
}

} // namespace hipstr
