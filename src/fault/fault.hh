/**
 * @file
 * Fault taxonomy shared by the fault-injection engine, the HIPStR
 * runtime, and the server supervisor. A FaultInfo is the structured
 * answer to "why did this worker die?" — the kind of fault, the guest
 * PC it struck at, the ISA it was executing on, and the randomization
 * generation of the victim VM.
 */

#ifndef HIPSTR_FAULT_FAULT_HH
#define HIPSTR_FAULT_FAULT_HH

#include <cstddef>
#include <cstdint>

#include "isa/isa.hh"

namespace hipstr
{

/**
 * Every way a worker can fault. The first group are organic guest
 * crashes (mapped from VmStop); the second are the injectable
 * infrastructure faults of the FaultPlan; the last two are verdicts
 * the supervisor itself hands down.
 */
enum class FaultKind : uint8_t
{
    None,           ///< no fault recorded
    MemFault,       ///< organic guest memory fault (VmStop::Fault)
    BadInstruction, ///< undecodable guest target (VmStop::BadInst)
    SfiViolation,   ///< Section 5.1 SFI termination
    BitFlip,        ///< injected: transient guest-memory bit flip
    DecodeFault,    ///< injected: corrupted decode on the next quantum
    CacheFlush,     ///< injected: spurious code-cache + RAT flush
    TransformAbort, ///< injected: cross-ISA transform forced to fail
    Wedge,          ///< injected: guest burns quanta without progress
    Watchdog,       ///< supervisor: wedged past the watchdog limit
    CoreFailure,    ///< supervisor: worker's core (or ISA) went down
    kNum
};

constexpr size_t kNumFaultKinds = static_cast<size_t>(FaultKind::kNum);

/** Log-friendly name, procStateName-style. */
const char *faultKindName(FaultKind k);

/** Structured description of one fault (HipstrRunSummary::fault). */
struct FaultInfo
{
    FaultKind kind = FaultKind::None;
    Addr pc = 0;            ///< guest pc the fault struck at
    IsaKind isa = IsaKind::Risc; ///< ISA executing when it struck
    uint32_t generation = 0;     ///< randomizer generation of that VM

    bool valid() const { return kind != FaultKind::None; }
};

} // namespace hipstr

#endif // HIPSTR_FAULT_FAULT_HH
