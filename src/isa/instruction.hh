/**
 * @file
 * ISA-neutral instruction model.
 *
 * Both guest ISAs decode into the same @c MachInst record so that the
 * interpreter, the PSR translator, and the gadget classifier share one
 * semantic core. ISA-specific constraints (which operand kinds are legal
 * where) are enforced by the per-ISA assemblers in
 * encoding_risc.cc / encoding_cisc.cc.
 */

#ifndef HIPSTR_ISA_INSTRUCTION_HH
#define HIPSTR_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "isa/isa.hh"

namespace hipstr
{

/** Semantic opcodes shared by both ISAs. */
enum class Op : uint8_t
{
    Nop,
    Mov,     ///< dst <- src1 (generalizes load/store/move/load-imm)
    Movb,    ///< byte variant: reg <- zext(mem8[..]) or mem8[..] <- low8
    Lea,     ///< dst(reg) <- effective address of src1(mem)
    MovHi,   ///< dst(reg) <- (dst & 0xffff) | (imm16 << 16); Risc only
    Add, Sub, And, Or, Xor, Shl, Shr, Sar, Mul, Divu,
    Cmp,     ///< set flags from src1 - src2
    Test,    ///< set flags from src1 & src2
    Jmp,     ///< unconditional pc-relative branch
    Jcc,     ///< conditional branch on @c cond
    JmpInd,  ///< pc <- src1(reg)
    Call,    ///< direct call; Cisc pushes return addr, Risc sets LR
    CallInd, ///< indirect call through src1(reg)
    Ret,     ///< pc <- mem[sp]; sp += 4 (Risc POPRET has identical
             ///< semantics; the fused epilogue keeps return addresses
             ///< stack-resident on both ISAs)
    Push,    ///< Cisc only: sp -= 4; mem[sp] <- src1
    Pop,     ///< Cisc only: dst <- mem[sp]; sp += 4
    Syscall, ///< system call; number in retReg, args in argRegs[1..]
    Halt,    ///< stop the machine
    VmExit   ///< translator-only pseudo-op: trap to the dispatcher with
             ///< exit descriptor index in src1(imm)
};

constexpr unsigned kNumOps = static_cast<unsigned>(Op::VmExit) + 1;

const char *opName(Op op);

/** True for ops that end a basic block. */
bool isBlockTerminator(Op op);

/** True for control transfers whose target is not statically known. */
bool isIndirectTransfer(Op op);

/** An instruction operand. */
struct Operand
{
    enum class Kind : uint8_t
    {
        None,
        Reg,  ///< architectural register
        Imm,  ///< immediate constant
        Mem   ///< memory at [base + disp]
    };

    Kind kind = Kind::None;
    Reg reg = kNoReg;    ///< Reg: the register; Mem: unused
    Reg base = kNoReg;   ///< Mem: base register
    int32_t disp = 0;    ///< Mem: displacement; Imm: the immediate

    static Operand none() { return Operand{}; }

    static Operand
    makeReg(Reg r)
    {
        Operand o;
        o.kind = Kind::Reg;
        o.reg = r;
        return o;
    }

    static Operand
    makeImm(int32_t v)
    {
        Operand o;
        o.kind = Kind::Imm;
        o.disp = v;
        return o;
    }

    static Operand
    makeMem(Reg base, int32_t disp)
    {
        Operand o;
        o.kind = Kind::Mem;
        o.base = base;
        o.disp = disp;
        return o;
    }

    bool isNone() const { return kind == Kind::None; }
    bool isReg() const { return kind == Kind::Reg; }
    bool isImm() const { return kind == Kind::Imm; }
    bool isMem() const { return kind == Kind::Mem; }

    bool operator==(const Operand &o) const
    {
        if (kind != o.kind)
            return false;
        switch (kind) {
          case Kind::None: return true;
          case Kind::Reg: return reg == o.reg;
          case Kind::Imm: return disp == o.disp;
          case Kind::Mem: return base == o.base && disp == o.disp;
        }
        return false;
    }
};

/**
 * A decoded machine instruction. ALU ops compute dst = src1 OP src2;
 * on Cisc the encodings force dst == src1 (two-address form), which the
 * decoders and assemblers maintain.
 */
struct MachInst
{
    Op op = Op::Nop;
    Cond cond = Cond::Eq;   ///< only meaningful for Jcc
    Operand dst;
    Operand src1;
    Operand src2;
    /**
     * Absolute guest target for Jmp/Jcc/Call after decode; during
     * compilation it temporarily holds a label id which the emitter
     * fixes up at layout time.
     */
    Addr target = 0;
    /** Encoded size in bytes (filled by the decoder/assembler). */
    uint8_t size = 0;

    bool isTerminator() const { return isBlockTerminator(op); }

    /** Convenience constructors. @{ */
    static MachInst nop();
    static MachInst movRR(Reg dst, Reg src);
    static MachInst movRI(Reg dst, int32_t imm);
    static MachInst movHi(Reg dst, int32_t imm16);
    static MachInst load(Reg dst, Reg base, int32_t disp);
    static MachInst store(Reg base, int32_t disp, Reg src);
    static MachInst loadByte(Reg dst, Reg base, int32_t disp);
    static MachInst storeByte(Reg base, int32_t disp, Reg src);
    static MachInst storeImm(Reg base, int32_t disp, int32_t imm);
    static MachInst alu(Op op, Reg dst, Reg src1, Operand src2);
    static MachInst lea(Reg dst, Reg base, int32_t disp);
    static MachInst cmp(Operand a, Operand b);
    static MachInst test(Operand a, Operand b);
    static MachInst jmp(Addr target);
    static MachInst jcc(Cond c, Addr target);
    static MachInst jmpInd(Reg r);
    static MachInst call(Addr target);
    static MachInst callInd(Reg r);
    static MachInst ret();
    static MachInst push(Operand src);
    static MachInst pop(Reg dst);
    static MachInst syscall();
    static MachInst halt();
    static MachInst vmExit(uint32_t index);
    /** @} */
};

/** Render an operand in disassembly syntax. */
std::string operandToString(const Operand &o, const IsaDescriptor &desc);

/** Render a full instruction, e.g. "add ax, [sp+0x80c]". */
std::string instToString(const MachInst &mi, IsaKind isa);

} // namespace hipstr

#endif // HIPSTR_ISA_INSTRUCTION_HH
