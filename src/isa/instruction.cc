#include "instruction.hh"

#include <cstdio>

#include "support/logging.hh"

namespace hipstr
{

const char *
opName(Op op)
{
    switch (op) {
      case Op::Nop: return "nop";
      case Op::Mov: return "mov";
      case Op::Movb: return "movb";
      case Op::Lea: return "lea";
      case Op::MovHi: return "movhi";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Shl: return "shl";
      case Op::Shr: return "shr";
      case Op::Sar: return "sar";
      case Op::Mul: return "mul";
      case Op::Divu: return "divu";
      case Op::Cmp: return "cmp";
      case Op::Test: return "test";
      case Op::Jmp: return "jmp";
      case Op::Jcc: return "jcc";
      case Op::JmpInd: return "jmpind";
      case Op::Call: return "call";
      case Op::CallInd: return "callind";
      case Op::Ret: return "ret";
      case Op::Push: return "push";
      case Op::Pop: return "pop";
      case Op::Syscall: return "syscall";
      case Op::Halt: return "halt";
      case Op::VmExit: return "vmexit";
    }
    return "?";
}

bool
isBlockTerminator(Op op)
{
    switch (op) {
      case Op::Jmp:
      case Op::Jcc:
      case Op::JmpInd:
      case Op::Call:
      case Op::CallInd:
      case Op::Ret:
      case Op::Halt:
      case Op::VmExit:
        return true;
      default:
        return false;
    }
}

bool
isIndirectTransfer(Op op)
{
    return op == Op::JmpInd || op == Op::CallInd || op == Op::Ret;
}

MachInst
MachInst::nop()
{
    return MachInst{};
}

MachInst
MachInst::movRR(Reg dst, Reg src)
{
    MachInst mi;
    mi.op = Op::Mov;
    mi.dst = Operand::makeReg(dst);
    mi.src1 = Operand::makeReg(src);
    return mi;
}

MachInst
MachInst::movRI(Reg dst, int32_t imm)
{
    MachInst mi;
    mi.op = Op::Mov;
    mi.dst = Operand::makeReg(dst);
    mi.src1 = Operand::makeImm(imm);
    return mi;
}

MachInst
MachInst::movHi(Reg dst, int32_t imm16)
{
    MachInst mi;
    mi.op = Op::MovHi;
    mi.dst = Operand::makeReg(dst);
    mi.src1 = Operand::makeImm(imm16);
    return mi;
}

MachInst
MachInst::load(Reg dst, Reg base, int32_t disp)
{
    MachInst mi;
    mi.op = Op::Mov;
    mi.dst = Operand::makeReg(dst);
    mi.src1 = Operand::makeMem(base, disp);
    return mi;
}

MachInst
MachInst::store(Reg base, int32_t disp, Reg src)
{
    MachInst mi;
    mi.op = Op::Mov;
    mi.dst = Operand::makeMem(base, disp);
    mi.src1 = Operand::makeReg(src);
    return mi;
}

MachInst
MachInst::loadByte(Reg dst, Reg base, int32_t disp)
{
    MachInst mi = load(dst, base, disp);
    mi.op = Op::Movb;
    return mi;
}

MachInst
MachInst::storeByte(Reg base, int32_t disp, Reg src)
{
    MachInst mi = store(base, disp, src);
    mi.op = Op::Movb;
    return mi;
}

MachInst
MachInst::storeImm(Reg base, int32_t disp, int32_t imm)
{
    MachInst mi;
    mi.op = Op::Mov;
    mi.dst = Operand::makeMem(base, disp);
    mi.src1 = Operand::makeImm(imm);
    return mi;
}

MachInst
MachInst::alu(Op op, Reg dst, Reg src1, Operand src2)
{
    MachInst mi;
    mi.op = op;
    mi.dst = Operand::makeReg(dst);
    mi.src1 = Operand::makeReg(src1);
    mi.src2 = src2;
    return mi;
}

MachInst
MachInst::lea(Reg dst, Reg base, int32_t disp)
{
    MachInst mi;
    mi.op = Op::Lea;
    mi.dst = Operand::makeReg(dst);
    mi.src1 = Operand::makeMem(base, disp);
    return mi;
}

MachInst
MachInst::cmp(Operand a, Operand b)
{
    MachInst mi;
    mi.op = Op::Cmp;
    mi.src1 = a;
    mi.src2 = b;
    return mi;
}

MachInst
MachInst::test(Operand a, Operand b)
{
    MachInst mi;
    mi.op = Op::Test;
    mi.src1 = a;
    mi.src2 = b;
    return mi;
}

MachInst
MachInst::jmp(Addr target)
{
    MachInst mi;
    mi.op = Op::Jmp;
    mi.target = target;
    return mi;
}

MachInst
MachInst::jcc(Cond c, Addr target)
{
    MachInst mi;
    mi.op = Op::Jcc;
    mi.cond = c;
    mi.target = target;
    return mi;
}

MachInst
MachInst::jmpInd(Reg r)
{
    MachInst mi;
    mi.op = Op::JmpInd;
    mi.src1 = Operand::makeReg(r);
    return mi;
}

MachInst
MachInst::call(Addr target)
{
    MachInst mi;
    mi.op = Op::Call;
    mi.target = target;
    return mi;
}

MachInst
MachInst::callInd(Reg r)
{
    MachInst mi;
    mi.op = Op::CallInd;
    mi.src1 = Operand::makeReg(r);
    return mi;
}

MachInst
MachInst::ret()
{
    MachInst mi;
    mi.op = Op::Ret;
    return mi;
}

MachInst
MachInst::push(Operand src)
{
    MachInst mi;
    mi.op = Op::Push;
    mi.src1 = src;
    return mi;
}

MachInst
MachInst::pop(Reg dst)
{
    MachInst mi;
    mi.op = Op::Pop;
    mi.dst = Operand::makeReg(dst);
    return mi;
}

MachInst
MachInst::syscall()
{
    MachInst mi;
    mi.op = Op::Syscall;
    return mi;
}

MachInst
MachInst::halt()
{
    MachInst mi;
    mi.op = Op::Halt;
    return mi;
}

MachInst
MachInst::vmExit(uint32_t index)
{
    MachInst mi;
    mi.op = Op::VmExit;
    mi.src1 = Operand::makeImm(static_cast<int32_t>(index));
    return mi;
}

std::string
operandToString(const Operand &o, const IsaDescriptor &desc)
{
    char buf[64];
    switch (o.kind) {
      case Operand::Kind::None:
        return "<none>";
      case Operand::Kind::Reg:
        return desc.regName(o.reg);
      case Operand::Kind::Imm:
        std::snprintf(buf, sizeof(buf), "$0x%x",
                      static_cast<uint32_t>(o.disp));
        return buf;
      case Operand::Kind::Mem:
        if (o.disp >= 0) {
            std::snprintf(buf, sizeof(buf), "[%s+0x%x]",
                          desc.regName(o.base).c_str(),
                          static_cast<uint32_t>(o.disp));
        } else {
            std::snprintf(buf, sizeof(buf), "[%s-0x%x]",
                          desc.regName(o.base).c_str(),
                          static_cast<uint32_t>(-o.disp));
        }
        return buf;
    }
    return "?";
}

std::string
instToString(const MachInst &mi, IsaKind isa)
{
    const IsaDescriptor &desc = isaDescriptor(isa);
    char buf[32];
    std::string s;

    switch (mi.op) {
      case Op::Nop:
      case Op::Ret:
      case Op::Syscall:
      case Op::Halt:
        return opName(mi.op);
      case Op::Jmp:
      case Op::Call:
        std::snprintf(buf, sizeof(buf), " 0x%x", mi.target);
        return std::string(opName(mi.op)) + buf;
      case Op::Jcc:
        std::snprintf(buf, sizeof(buf), " 0x%x", mi.target);
        return std::string("j") + condName(mi.cond) + buf;
      case Op::JmpInd:
      case Op::CallInd:
      case Op::Push:
        return std::string(opName(mi.op)) + " " +
            operandToString(mi.src1, desc);
      case Op::Pop:
        return std::string(opName(mi.op)) + " " +
            operandToString(mi.dst, desc);
      case Op::Cmp:
      case Op::Test:
        return std::string(opName(mi.op)) + " " +
            operandToString(mi.src1, desc) + ", " +
            operandToString(mi.src2, desc);
      case Op::Mov:
      case Op::Movb:
      case Op::Lea:
      case Op::MovHi:
        return std::string(opName(mi.op)) + " " +
            operandToString(mi.dst, desc) + ", " +
            operandToString(mi.src1, desc);
      case Op::VmExit:
        std::snprintf(buf, sizeof(buf), " #%u",
                      static_cast<uint32_t>(mi.src1.disp));
        return std::string(opName(mi.op)) + buf;
      default:
        // Three-address ALU; Cisc prints the two-address form.
        s = std::string(opName(mi.op)) + " " +
            operandToString(mi.dst, desc);
        if (!(isa == IsaKind::Cisc && mi.src1 == mi.dst))
            s += ", " + operandToString(mi.src1, desc);
        s += ", " + operandToString(mi.src2, desc);
        return s;
    }
}

} // namespace hipstr
