/**
 * @file
 * Definitions of the two synthetic instruction-set architectures used
 * throughout this reproduction.
 *
 * The paper's heterogeneous-ISA CMP pairs a low-power ARM core with a
 * high-performance x86 core. We reproduce the security-relevant contrast
 * with two from-scratch ISAs:
 *
 *  - @c IsaKind::Risc — "ARM-like": fixed 4-byte instruction words,
 *    strict 4-byte alignment (no unintentional gadgets), 16 general
 *    purpose registers, load/store architecture, link-register calls.
 *  - @c IsaKind::Cisc — "x86-like": variable-length encodings
 *    (1-12 bytes), 8 general purpose registers, memory operands in ALU
 *    instructions, a single-byte 0xC3 RET (so unaligned decode yields a
 *    large population of unintentional gadgets), push/pop calls.
 *
 * Both ISAs use stack-resident return addresses, which is the property
 * return-oriented programming depends on.
 */

#ifndef HIPSTR_ISA_ISA_HH
#define HIPSTR_ISA_ISA_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hipstr
{

/** The two ISAs of the heterogeneous-ISA CMP. */
enum class IsaKind : uint8_t
{
    Risc = 0, ///< ARM-like fixed-width ISA
    Cisc = 1  ///< x86-like variable-length ISA
};

/** Number of ISAs (for fat-binary section arrays). */
constexpr size_t kNumIsas = 2;

/** Iterable list of all ISAs. */
constexpr IsaKind kAllIsas[kNumIsas] = { IsaKind::Risc, IsaKind::Cisc };

/** Printable name, e.g. for stats and disassembly. */
const char *isaName(IsaKind isa);

/** The other ISA of the pair. */
constexpr IsaKind
otherIsa(IsaKind isa)
{
    return isa == IsaKind::Risc ? IsaKind::Cisc : IsaKind::Risc;
}

/** Architectural register index. Valid range depends on the ISA. */
using Reg = uint8_t;

/** Sentinel for "no register". */
constexpr Reg kNoReg = 0xff;

/** Guest virtual addresses are 32-bit in both ISAs. */
using Addr = uint32_t;

/** Machine word size (bytes) — both ISAs are 32-bit. */
constexpr unsigned kWordSize = 4;

/** Condition codes used by conditional branches. Shared semantics. */
enum class Cond : uint8_t
{
    Eq,  ///< equal (ZF)
    Ne,  ///< not equal (!ZF)
    Lt,  ///< signed less than (SF != OF)
    Le,  ///< signed less or equal
    Gt,  ///< signed greater than
    Ge,  ///< signed greater or equal
    B,   ///< unsigned below (CF)
    Be,  ///< unsigned below or equal
    A,   ///< unsigned above
    Ae   ///< unsigned above or equal
};

constexpr unsigned kNumConds = 10;

const char *condName(Cond c);

/**
 * Static description of one ISA: register file size, special registers,
 * and the default (non-randomized) calling convention. The PSR
 * randomizer perturbs the convention per function; this struct is the
 * baseline the compiler emits against.
 */
struct IsaDescriptor
{
    IsaKind kind;
    unsigned numRegs;       ///< general-purpose register count
    Reg spReg;              ///< stack pointer
    Reg lrReg;              ///< link register (kNoReg on Cisc)
    unsigned minInstBytes;  ///< smallest encodable instruction
    unsigned maxInstBytes;  ///< largest encodable instruction
    unsigned instAlign;     ///< required alignment of executed code

    /** Registers available to the register allocator (excludes SP/LR). */
    std::vector<Reg> allocatable;
    /** Callee-saved subset of @c allocatable. */
    std::vector<Reg> calleeSaved;
    /** Caller-saved subset of @c allocatable. */
    std::vector<Reg> callerSaved;
    /** Registers carrying the first arguments / syscall arguments. */
    std::vector<Reg> argRegs;
    /** Register carrying the return value and the syscall number. */
    Reg retReg;
    /**
     * Register reserved for the dynamic binary translator. The compiler
     * never allocates it, so translated code may clobber it freely when
     * emulating addressing modes the ISA lacks (Section 5.1's "register
     * temporaries"). Risc: r15; Cisc: bp.
     */
    Reg scratchReg;
    /**
     * Registers reserved for instruction selection (routing spilled
     * operands). Dead at every guest-instruction boundary, so the
     * translator may rename them but never needs to preserve them
     * across blocks. Risc: {r11, r12}; Cisc: {si}.
     */
    std::vector<Reg> iselTemps;

    /** Printable architectural name of register @p r. */
    std::string regName(Reg r) const;
};

/** Descriptor singleton for @p isa. */
const IsaDescriptor &isaDescriptor(IsaKind isa);

/**
 * Register indices for the Cisc ISA (x86-like). SP is a real GPR, as on
 * x86, which is what makes stack-pivot gadgets expressible.
 */
namespace cisc
{
constexpr Reg AX = 0, CX = 1, DX = 2, BX = 3, SP = 4, BP = 5, SI = 6,
    DI = 7;
constexpr unsigned kNumRegs = 8;
} // namespace cisc

/** Register indices for the Risc ISA (ARM-like). */
namespace risc
{
constexpr Reg R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6,
    R7 = 7, R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, SP = 13,
    LR = 14, SCRATCH = 15;
constexpr unsigned kNumRegs = 16;
} // namespace risc

/**
 * Guest system-call numbers. EXECVE is the canonical attacker goal: a
 * ROP chain succeeds when it reaches Syscall with the execve number and
 * attacker-chosen argument registers.
 */
enum class SyscallNo : uint32_t
{
    Exit = 1,
    WriteBuf = 3,    ///< write arg2 bytes from guest address arg1,
                     ///< tagged with arg3 (a connection id) — the
                     ///< four-register syscall whose call site is the
                     ///< classic execve-style gadget target
    WriteByte = 4,   ///< write one byte (arg0) to the program output
    WriteWord = 5,   ///< write a 32-bit value to the program output
    Brk = 9,         ///< grow the heap; returns old break
    Execve = 11,     ///< spawn a shell — the attack target
    SetJmp = 13,     ///< record continuation into jmp_buf at arg1;
                     ///< resume address in arg2 (Section 5.3)
    LongJmp = 14,    ///< restore the continuation in arg1, delivering
                     ///< max(arg2, 1) to the setjmp resume load
    Getpid = 20
};

/** jmp_buf layout (words): sp, resume address, delivered value,
 *  callee-saved registers. */
constexpr uint32_t kJmpBufWords = 10;

} // namespace hipstr

#endif // HIPSTR_ISA_ISA_HH
