/**
 * @file
 * Encoder/decoder for the Risc (ARM-like) ISA.
 *
 * Every instruction is one little-endian 32-bit word, and execution
 * requires 4-byte alignment — this is what shrinks the Risc gadget
 * population to intentional (aligned) sequences only, reproducing the
 * paper's observation that the ARM attack surface is ~52x smaller.
 *
 * Word layout (bit 0 = LSB):
 *   [7:0]   opcode
 *   [11:8]  rd   (destination register / condition code for JCC /
 *                 source register for STORE)
 *   [15:12] rn   (first source / base register)
 *   [31:16] imm16 (signed immediate / offset)  -- imm16 forms
 *   [19:16] rm                                  -- register forms
 *   [31:8]  simm24 word offset                  -- JMP/CALL/VMEXIT
 *
 * Opcode map:
 *   0x01 nop          0x02 halt         0x03 syscall
 *   0x04 mov rd,rn    0x05 mov rd,simm16  0x06 movhi rd,imm16
 *   0x07 load rd,[rn+simm16]   0x08 store [rn+simm16],rd
 *   0x09 lea rd,rn+simm16
 *   0x0a loadb rd,[rn+simm16]  0x0b storeb [rn+simm16],rd
 *   0x10..0x19 ALU rd,rn,rm   (add sub and or xor shl shr sar mul divu)
 *   0x20..0x29 ALU rd,rn,simm16
 *   0x30 cmp rn,rm    0x31 cmp rn,simm16
 *   0x32 test rn,rm   0x33 test rn,simm16
 *   0x34 jmp simm24   0x35 jcc(rd=cc) simm16
 *   0x36 call simm24  0x37 jmpind rn    0x38 callind rn
 *   0x39 popret (ret: pc <- [sp]; sp += 4)
 *   0x3a vmexit imm24 (translator-only)
 *
 * Opcode 0x00 (an all-zero word) deliberately does not decode, so
 * zero-filled memory is not executable.
 */

#include <cstring>

#include "isa/codec.hh"
#include "support/bitops.hh"
#include "support/logging.hh"

namespace hipstr
{
namespace detail
{

namespace
{

constexpr uint8_t kOpNop = 0x01;
constexpr uint8_t kOpHalt = 0x02;
constexpr uint8_t kOpSyscall = 0x03;
constexpr uint8_t kOpMovRR = 0x04;
constexpr uint8_t kOpMovRI = 0x05;
constexpr uint8_t kOpMovHi = 0x06;
constexpr uint8_t kOpLoad = 0x07;
constexpr uint8_t kOpStore = 0x08;
constexpr uint8_t kOpLea = 0x09;
constexpr uint8_t kOpLoadB = 0x0a;
constexpr uint8_t kOpStoreB = 0x0b;
constexpr uint8_t kOpAluRRR = 0x10;
constexpr uint8_t kOpAluRRI = 0x20;
constexpr uint8_t kOpCmpRR = 0x30;
constexpr uint8_t kOpCmpRI = 0x31;
constexpr uint8_t kOpTestRR = 0x32;
constexpr uint8_t kOpTestRI = 0x33;
constexpr uint8_t kOpJmp = 0x34;
constexpr uint8_t kOpJcc = 0x35;
constexpr uint8_t kOpCall = 0x36;
constexpr uint8_t kOpJmpInd = 0x37;
constexpr uint8_t kOpCallInd = 0x38;
constexpr uint8_t kOpPopRet = 0x39;
constexpr uint8_t kOpVmExit = 0x3a;

/** Order of ALU ops in the 0x10/0x20 groups. */
const Op kAluOrder[] = {
    Op::Add, Op::Sub, Op::And, Op::Or, Op::Xor,
    Op::Shl, Op::Shr, Op::Sar, Op::Mul, Op::Divu
};
constexpr unsigned kNumAlu = 10;

int
aluIndex(Op op)
{
    for (unsigned i = 0; i < kNumAlu; ++i)
        if (kAluOrder[i] == op)
            return static_cast<int>(i);
    return -1;
}

uint32_t
pack(uint8_t opcode, unsigned rd, unsigned rn, uint32_t imm16)
{
    return static_cast<uint32_t>(opcode) |
        ((rd & 0xf) << 8) | ((rn & 0xf) << 12) |
        ((imm16 & 0xffff) << 16);
}

uint32_t
packRRR(uint8_t opcode, unsigned rd, unsigned rn, unsigned rm)
{
    return static_cast<uint32_t>(opcode) |
        ((rd & 0xf) << 8) | ((rn & 0xf) << 12) | ((rm & 0xf) << 16);
}

uint32_t
pack24(uint8_t opcode, uint32_t imm24)
{
    return static_cast<uint32_t>(opcode) | ((imm24 & 0xffffff) << 8);
}

void
emitWord(std::vector<uint8_t> &out, uint32_t w)
{
    out.push_back(static_cast<uint8_t>(w));
    out.push_back(static_cast<uint8_t>(w >> 8));
    out.push_back(static_cast<uint8_t>(w >> 16));
    out.push_back(static_cast<uint8_t>(w >> 24));
}

bool
validReg(Reg r)
{
    return r < risc::kNumRegs;
}

} // namespace

bool
encodableRisc(const MachInst &mi)
{
    auto reg_ok = [](const Operand &o) {
        if (o.isReg())
            return validReg(o.reg);
        if (o.isMem())
            return validReg(o.base);
        return true;
    };
    if (!reg_ok(mi.dst) || !reg_ok(mi.src1) || !reg_ok(mi.src2))
        return false;

    auto imm16_ok = [](int32_t v) { return fitsSigned(v, 16); };

    switch (mi.op) {
      case Op::Nop:
      case Op::Halt:
      case Op::Syscall:
      case Op::Ret:
      case Op::Jmp:
      case Op::Call:
      case Op::Jcc:
        return true;
      case Op::VmExit:
        return mi.src1.isImm() && mi.src1.disp >= 0 &&
            mi.src1.disp < (1 << 24);
      case Op::JmpInd:
      case Op::CallInd:
        return mi.src1.isReg();
      case Op::MovHi:
        return mi.dst.isReg() && mi.src1.isImm() &&
            mi.src1.disp >= 0 && mi.src1.disp <= 0xffff;
      case Op::Movb:
        if (mi.dst.isReg())
            return mi.src1.isMem() && imm16_ok(mi.src1.disp);
        return mi.dst.isMem() && mi.src1.isReg() &&
            imm16_ok(mi.dst.disp);
      case Op::Mov:
        if (!mi.dst.isReg() && !mi.dst.isMem())
            return false;
        if (mi.dst.isReg()) {
            if (mi.src1.isReg())
                return true;
            if (mi.src1.isImm())
                return imm16_ok(mi.src1.disp);
            if (mi.src1.isMem())
                return imm16_ok(mi.src1.disp);
            return false;
        }
        // store: only register sources, imm16 displacement
        return mi.src1.isReg() && imm16_ok(mi.dst.disp);
      case Op::Lea:
        return mi.dst.isReg() && mi.src1.isMem() &&
            imm16_ok(mi.src1.disp);
      case Op::Cmp:
      case Op::Test:
        if (!mi.src1.isReg())
            return false;
        if (mi.src2.isReg())
            return true;
        return mi.src2.isImm() && imm16_ok(mi.src2.disp);
      case Op::Push:
      case Op::Pop:
        return false; // load/store architecture: no push/pop
      default: {
        // Three-address ALU.
        if (aluIndex(mi.op) < 0)
            return false;
        if (!mi.dst.isReg() || !mi.src1.isReg())
            return false;
        if (mi.src2.isReg())
            return true;
        return mi.src2.isImm() && imm16_ok(mi.src2.disp);
      }
    }
}

void
encodeRisc(const MachInst &mi, Addr pc, std::vector<uint8_t> &out)
{
    hipstr_assert(encodableRisc(mi));

    auto word_off = [&]() {
        // Signed word offset relative to the *next* instruction.
        int32_t delta = static_cast<int32_t>(mi.target) -
            static_cast<int32_t>(pc + 4);
        hipstr_assert(delta % 4 == 0);
        return delta / 4;
    };
    auto checked_off = [&](unsigned width) {
        int32_t off = word_off();
        hipstr_assert(fitsSigned(off, width));
        return off;
    };

    switch (mi.op) {
      case Op::Nop:
        emitWord(out, pack(kOpNop, 0, 0, 0));
        return;
      case Op::Halt:
        emitWord(out, pack(kOpHalt, 0, 0, 0));
        return;
      case Op::Syscall:
        emitWord(out, pack(kOpSyscall, 0, 0, 0));
        return;
      case Op::Ret:
        emitWord(out, pack(kOpPopRet, 0, 0, 0));
        return;
      case Op::Mov:
        if (mi.dst.isReg() && mi.src1.isReg()) {
            emitWord(out, pack(kOpMovRR, mi.dst.reg, mi.src1.reg, 0));
        } else if (mi.dst.isReg() && mi.src1.isImm()) {
            emitWord(out, pack(kOpMovRI, mi.dst.reg, 0,
                               static_cast<uint32_t>(mi.src1.disp)));
        } else if (mi.dst.isReg() && mi.src1.isMem()) {
            emitWord(out, pack(kOpLoad, mi.dst.reg, mi.src1.base,
                               static_cast<uint32_t>(mi.src1.disp)));
        } else {
            emitWord(out, pack(kOpStore, mi.src1.reg, mi.dst.base,
                               static_cast<uint32_t>(mi.dst.disp)));
        }
        return;
      case Op::MovHi:
        emitWord(out, pack(kOpMovHi, mi.dst.reg, 0,
                           static_cast<uint32_t>(mi.src1.disp)));
        return;
      case Op::Movb:
        if (mi.dst.isReg()) {
            emitWord(out, pack(kOpLoadB, mi.dst.reg, mi.src1.base,
                               static_cast<uint32_t>(mi.src1.disp)));
        } else {
            emitWord(out, pack(kOpStoreB, mi.src1.reg, mi.dst.base,
                               static_cast<uint32_t>(mi.dst.disp)));
        }
        return;
      case Op::Lea:
        emitWord(out, pack(kOpLea, mi.dst.reg, mi.src1.base,
                           static_cast<uint32_t>(mi.src1.disp)));
        return;
      case Op::Cmp:
        if (mi.src2.isReg()) {
            emitWord(out, packRRR(kOpCmpRR, 0, mi.src1.reg,
                                  mi.src2.reg));
        } else {
            emitWord(out, pack(kOpCmpRI, 0, mi.src1.reg,
                               static_cast<uint32_t>(mi.src2.disp)));
        }
        return;
      case Op::Test:
        if (mi.src2.isReg()) {
            emitWord(out, packRRR(kOpTestRR, 0, mi.src1.reg,
                                  mi.src2.reg));
        } else {
            emitWord(out, pack(kOpTestRI, 0, mi.src1.reg,
                               static_cast<uint32_t>(mi.src2.disp)));
        }
        return;
      case Op::Jmp:
        emitWord(out, pack24(kOpJmp,
                             static_cast<uint32_t>(checked_off(24))));
        return;
      case Op::Call:
        emitWord(out, pack24(kOpCall,
                             static_cast<uint32_t>(checked_off(24))));
        return;
      case Op::Jcc:
        emitWord(out, pack(kOpJcc, static_cast<unsigned>(mi.cond), 0,
                           static_cast<uint32_t>(checked_off(16))));
        return;
      case Op::JmpInd:
        emitWord(out, pack(kOpJmpInd, 0, mi.src1.reg, 0));
        return;
      case Op::CallInd:
        emitWord(out, pack(kOpCallInd, 0, mi.src1.reg, 0));
        return;
      case Op::VmExit:
        emitWord(out, pack24(kOpVmExit,
                             static_cast<uint32_t>(mi.src1.disp)));
        return;
      default: {
        int idx = aluIndex(mi.op);
        hipstr_assert(idx >= 0);
        if (mi.src2.isReg()) {
            emitWord(out, packRRR(static_cast<uint8_t>(kOpAluRRR + idx),
                                  mi.dst.reg, mi.src1.reg,
                                  mi.src2.reg));
        } else {
            emitWord(out, pack(static_cast<uint8_t>(kOpAluRRI + idx),
                               mi.dst.reg, mi.src1.reg,
                               static_cast<uint32_t>(mi.src2.disp)));
        }
        return;
      }
    }
}

unsigned
sizeRisc(const MachInst &mi)
{
    (void)mi;
    return 4;
}

bool
decodeRisc(const uint8_t *bytes, size_t len, Addr pc, MachInst &out)
{
    if (len < 4 || (pc & 3) != 0)
        return false;

    uint32_t w;
    std::memcpy(&w, bytes, 4);

    uint8_t opcode = static_cast<uint8_t>(w & 0xff);
    Reg rd = static_cast<Reg>((w >> 8) & 0xf);
    Reg rn = static_cast<Reg>((w >> 12) & 0xf);
    Reg rm = static_cast<Reg>((w >> 16) & 0xf);
    int32_t simm16 = signExtend(w >> 16, 16);
    int32_t simm24 = static_cast<int32_t>(signExtend(w >> 8, 24));

    out = MachInst{};
    out.size = 4;

    auto branch_target = [&](int32_t word_off) {
        return static_cast<Addr>(
            static_cast<int64_t>(pc) + 4 +
            static_cast<int64_t>(word_off) * 4);
    };

    switch (opcode) {
      case kOpNop:
        out.op = Op::Nop;
        return true;
      case kOpHalt:
        out.op = Op::Halt;
        return true;
      case kOpSyscall:
        out.op = Op::Syscall;
        return true;
      case kOpMovRR:
        out.op = Op::Mov;
        out.dst = Operand::makeReg(rd);
        out.src1 = Operand::makeReg(rn);
        return true;
      case kOpMovRI:
        out.op = Op::Mov;
        out.dst = Operand::makeReg(rd);
        out.src1 = Operand::makeImm(simm16);
        return true;
      case kOpMovHi:
        out.op = Op::MovHi;
        out.dst = Operand::makeReg(rd);
        out.src1 = Operand::makeImm(
            static_cast<int32_t>((w >> 16) & 0xffff));
        return true;
      case kOpLoad:
        out.op = Op::Mov;
        out.dst = Operand::makeReg(rd);
        out.src1 = Operand::makeMem(rn, simm16);
        return true;
      case kOpStore:
        out.op = Op::Mov;
        out.dst = Operand::makeMem(rn, simm16);
        out.src1 = Operand::makeReg(rd);
        return true;
      case kOpLea:
        out.op = Op::Lea;
        out.dst = Operand::makeReg(rd);
        out.src1 = Operand::makeMem(rn, simm16);
        return true;
      case kOpLoadB:
        out.op = Op::Movb;
        out.dst = Operand::makeReg(rd);
        out.src1 = Operand::makeMem(rn, simm16);
        return true;
      case kOpStoreB:
        out.op = Op::Movb;
        out.dst = Operand::makeMem(rn, simm16);
        out.src1 = Operand::makeReg(rd);
        return true;
      case kOpCmpRR:
        out.op = Op::Cmp;
        out.src1 = Operand::makeReg(rn);
        out.src2 = Operand::makeReg(rm);
        return true;
      case kOpCmpRI:
        out.op = Op::Cmp;
        out.src1 = Operand::makeReg(rn);
        out.src2 = Operand::makeImm(simm16);
        return true;
      case kOpTestRR:
        out.op = Op::Test;
        out.src1 = Operand::makeReg(rn);
        out.src2 = Operand::makeReg(rm);
        return true;
      case kOpTestRI:
        out.op = Op::Test;
        out.src1 = Operand::makeReg(rn);
        out.src2 = Operand::makeImm(simm16);
        return true;
      case kOpJmp:
        out.op = Op::Jmp;
        out.target = branch_target(simm24);
        return true;
      case kOpCall:
        out.op = Op::Call;
        out.target = branch_target(simm24);
        return true;
      case kOpJcc: {
        if (rd >= kNumConds)
            return false;
        out.op = Op::Jcc;
        out.cond = static_cast<Cond>(rd);
        out.target = branch_target(simm16);
        return true;
      }
      case kOpJmpInd:
        out.op = Op::JmpInd;
        out.src1 = Operand::makeReg(rn);
        return true;
      case kOpCallInd:
        out.op = Op::CallInd;
        out.src1 = Operand::makeReg(rn);
        return true;
      case kOpPopRet:
        out.op = Op::Ret;
        return true;
      case kOpVmExit:
        out.op = Op::VmExit;
        out.src1 = Operand::makeImm(
            static_cast<int32_t>((w >> 8) & 0xffffff));
        return true;
      default:
        break;
    }

    if (opcode >= kOpAluRRR && opcode < kOpAluRRR + kNumAlu) {
        out.op = kAluOrder[opcode - kOpAluRRR];
        out.dst = Operand::makeReg(rd);
        out.src1 = Operand::makeReg(rn);
        out.src2 = Operand::makeReg(rm);
        return true;
    }
    if (opcode >= kOpAluRRI && opcode < kOpAluRRI + kNumAlu) {
        out.op = kAluOrder[opcode - kOpAluRRI];
        out.dst = Operand::makeReg(rd);
        out.src1 = Operand::makeReg(rn);
        out.src2 = Operand::makeImm(simm16);
        return true;
    }

    return false;
}

} // namespace detail
} // namespace hipstr
