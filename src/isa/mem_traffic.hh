/**
 * @file
 * The single source of truth for per-instruction data-memory traffic.
 *
 * Three consumers previously hand-counted (and disagreed on) the
 * reads and writes of an instruction: the PSR VM's traceData, the
 * native interpreter's timing hook, and nothing at translate time.
 * They now all walk the same enumeration, so an instruction can never
 * be double-counted on one engine and missed on the other, and the
 * translator can bake the counts into each translated instruction for
 * the VM's untraced fast path.
 *
 * Enumeration order is reads first (src1, src2), then the destination
 * write, then the implicit stack access — the access order a real
 * pipeline would issue for a read-modify-write.
 */

#ifndef HIPSTR_ISA_MEM_TRAFFIC_HH
#define HIPSTR_ISA_MEM_TRAFFIC_HH

#include "isa/instruction.hh"
#include "isa/machine_state.hh"

namespace hipstr
{

/** Static per-instruction data-access counts. */
struct MemCounts
{
    uint8_t reads = 0;
    uint8_t writes = 0;
};

/**
 * Invoke cb(addr, is_write) for every data-memory access @p mi
 * performs, using @p state (pre-execution register values) to form
 * addresses. Explicit operands first, then implicit stack traffic:
 *
 *  - Mov/Movb move a value from src1 to dst; any other op reads
 *    src1/src2 and writes dst (memory operands only).
 *  - Push writes the new top of stack on every ISA; Call/CallInd
 *    push a return address only on the Cisc ISA (the Risc ISA links
 *    through a register).
 *  - Pop and Ret read the current top of stack.
 *
 * Control-transfer target reads (JmpInd/CallInd through memory) are
 * accounted by the dispatcher that resolves them, not here.
 */
template <typename Cb>
inline void
forEachMemAccess(const MachInst &mi, const MachineState &state,
                 Cb &&cb)
{
    auto operand = [&](const Operand &o, bool write) {
        if (o.isMem()) {
            cb(state.reg(o.base) + static_cast<uint32_t>(o.disp),
               write);
        }
    };
    if (mi.op == Op::Mov || mi.op == Op::Movb) {
        operand(mi.src1, false);
        operand(mi.dst, true);
    } else {
        operand(mi.src1, false);
        operand(mi.src2, false);
        operand(mi.dst, true);
    }
    switch (mi.op) {
      case Op::Push:
        cb(state.sp() - 4, true);
        break;
      case Op::Call:
      case Op::CallInd:
        if (state.isa == IsaKind::Cisc)
            cb(state.sp() - 4, true);
        break;
      case Op::Pop:
      case Op::Ret:
        cb(state.sp(), false);
        break;
      default:
        break;
    }
}

/**
 * The counts forEachMemAccess would produce for @p mi on @p isa —
 * a static property of the instruction, computable at translate time.
 */
inline MemCounts
instMemCounts(const MachInst &mi, IsaKind isa)
{
    MemCounts c;
    auto operand = [&](const Operand &o, bool write) {
        if (o.isMem()) {
            if (write)
                ++c.writes;
            else
                ++c.reads;
        }
    };
    if (mi.op == Op::Mov || mi.op == Op::Movb) {
        operand(mi.src1, false);
        operand(mi.dst, true);
    } else {
        operand(mi.src1, false);
        operand(mi.src2, false);
        operand(mi.dst, true);
    }
    switch (mi.op) {
      case Op::Push:
        ++c.writes;
        break;
      case Op::Call:
      case Op::CallInd:
        if (isa == IsaKind::Cisc)
            ++c.writes;
        break;
      case Op::Pop:
      case Op::Ret:
        ++c.reads;
        break;
      default:
        break;
    }
    return c;
}

} // namespace hipstr

#endif // HIPSTR_ISA_MEM_TRAFFIC_HH
