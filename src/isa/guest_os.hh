/**
 * @file
 * Minimal guest operating-system interface: system calls, program
 * output collection, and detection of the attacker's goal (execve).
 */

#ifndef HIPSTR_ISA_GUEST_OS_HH
#define HIPSTR_ISA_GUEST_OS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/machine_state.hh"
#include "isa/memory.hh"
#include "support/serialize.hh"

namespace hipstr
{

/**
 * Handles guest system calls. The syscall number travels in the ISA's
 * return register (r0 / ax) and arguments in argRegs[1..3]
 * (r1-r3 / bx,cx,dx), mirroring the execve(eax=11, ebx, ecx, edx)
 * convention the paper's brute-force experiment targets.
 *
 * Program output (WriteByte/WriteWord) is accumulated and checksummed;
 * the VM-equivalence tests compare these checksums between native and
 * PSR execution.
 *
 * Long-lived guests (the server subsystem's worker processes) would
 * grow the retained output without bound, so the checksum is folded
 * incrementally on every emitted byte: outputChecksum() covers the
 * full stream ever written, while the retained buffer can be bounded
 * with setOutputCap() and emptied with drainOutput() without
 * disturbing the checksum.
 */
class GuestOs
{
  public:
    GuestOs() = default;

    /**
     * Execute the system call encoded in @p state.
     * @return true if the guest should keep running, false on Exit
     *         or Execve (which ends the program).
     */
    bool handleSyscall(MachineState &state, Memory &mem);

    /**
     * Retained output written via WriteByte/WriteWord/WriteBuf. With a
     * cap set this is a bounded tail of the stream (oldest bytes are
     * dropped once the retained size would exceed the cap).
     */
    const std::vector<uint8_t> &output() const { return _output; }

    /**
     * FNV-1a checksum of the complete output stream since the last
     * reset() — independent of the retention cap and of drains.
     */
    uint64_t outputChecksum() const { return _outputHash; }

    /** Bytes written since the last reset(), capped or not. */
    uint64_t totalOutputBytes() const { return _totalOutputBytes; }

    /**
     * Bound the retained output buffer to @p cap bytes (0 = unlimited,
     * the default). The checksum and total-byte accounting are
     * unaffected; only retention is.
     */
    void setOutputCap(size_t cap) { _outputCap = cap; }
    size_t outputCap() const { return _outputCap; }

    /**
     * Move the retained output out, leaving it empty. Checksum and
     * totals are preserved — a server can drain each worker's output
     * after every request and still verify the whole-run checksum.
     */
    std::vector<uint8_t> drainOutput();

    bool exited() const { return _exited; }
    uint32_t exitCode() const { return _exitCode; }

    /** True once the guest (or an attacker chain) invoked execve. */
    bool execveFired() const { return _execveFired; }
    /** Argument registers captured at the execve invocation. */
    const std::array<uint32_t, 3> &execveArgs() const
    {
        return _execveArgs;
    }

    void reset();

    /**
     * Checkpoint the OS-visible program state: exit/execve status,
     * the brk pointer, the retained output tail AND the running
     * checksum + total-byte counters. The checksum capture is what
     * lets a restored guest's whole-run outputChecksum() match the
     * uninterrupted run even when output was drained before the
     * snapshot. The retention cap is configuration, not state, and
     * is not serialized. @{
     */
    void saveState(ByteWriter &w) const;
    void loadState(ByteReader &r);
    /** @} */

    /**
     * True exactly once after a syscall redirected the program
     * counter (longjmp): the execution engine must dispatch to the
     * already-written state.pc instead of falling through.
     */
    bool takeRedirect()
    {
        bool r = _redirected;
        _redirected = false;
        return r;
    }

  private:
    /** Append one output byte: fold the checksum, honor the cap. */
    void emit(uint8_t b);

    bool _redirected = false;
    std::vector<uint8_t> _output;
    size_t _outputCap = 0; ///< retained-bytes cap; 0 = unlimited
    uint64_t _outputHash = 0xcbf29ce484222325ull; ///< FNV-1a running
    uint64_t _totalOutputBytes = 0;
    bool _exited = false;
    uint32_t _exitCode = 0;
    bool _execveFired = false;
    std::array<uint32_t, 3> _execveArgs{};
    Addr _brk = layout::kHeapBase;
};

} // namespace hipstr

#endif // HIPSTR_ISA_GUEST_OS_HH
