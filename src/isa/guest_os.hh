/**
 * @file
 * Minimal guest operating-system interface: system calls, program
 * output collection, and detection of the attacker's goal (execve).
 */

#ifndef HIPSTR_ISA_GUEST_OS_HH
#define HIPSTR_ISA_GUEST_OS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/machine_state.hh"
#include "isa/memory.hh"

namespace hipstr
{

/**
 * Handles guest system calls. The syscall number travels in the ISA's
 * return register (r0 / ax) and arguments in argRegs[1..3]
 * (r1-r3 / bx,cx,dx), mirroring the execve(eax=11, ebx, ecx, edx)
 * convention the paper's brute-force experiment targets.
 *
 * Program output (WriteByte/WriteWord) is accumulated and checksummed;
 * the VM-equivalence tests compare these checksums between native and
 * PSR execution.
 */
class GuestOs
{
  public:
    GuestOs() = default;

    /**
     * Execute the system call encoded in @p state.
     * @return true if the guest should keep running, false on Exit
     *         or Execve (which ends the program).
     */
    bool handleSyscall(MachineState &state, Memory &mem);

    /** Raw output stream written via WriteByte/WriteWord. */
    const std::vector<uint8_t> &output() const { return _output; }

    /** FNV-1a checksum of the output stream. */
    uint64_t outputChecksum() const;

    bool exited() const { return _exited; }
    uint32_t exitCode() const { return _exitCode; }

    /** True once the guest (or an attacker chain) invoked execve. */
    bool execveFired() const { return _execveFired; }
    /** Argument registers captured at the execve invocation. */
    const std::array<uint32_t, 3> &execveArgs() const
    {
        return _execveArgs;
    }

    void reset();

    /**
     * True exactly once after a syscall redirected the program
     * counter (longjmp): the execution engine must dispatch to the
     * already-written state.pc instead of falling through.
     */
    bool takeRedirect()
    {
        bool r = _redirected;
        _redirected = false;
        return r;
    }

  private:
    bool _redirected = false;
    std::vector<uint8_t> _output;
    bool _exited = false;
    uint32_t _exitCode = 0;
    bool _execveFired = false;
    std::array<uint32_t, 3> _execveArgs{};
    Addr _brk = layout::kHeapBase;
};

} // namespace hipstr

#endif // HIPSTR_ISA_GUEST_OS_HH
