#include "isa.hh"

#include "support/logging.hh"

namespace hipstr
{

const char *
isaName(IsaKind isa)
{
    return isa == IsaKind::Risc ? "risc" : "cisc";
}

const char *
condName(Cond c)
{
    switch (c) {
      case Cond::Eq: return "eq";
      case Cond::Ne: return "ne";
      case Cond::Lt: return "lt";
      case Cond::Le: return "le";
      case Cond::Gt: return "gt";
      case Cond::Ge: return "ge";
      case Cond::B:  return "b";
      case Cond::Be: return "be";
      case Cond::A:  return "a";
      case Cond::Ae: return "ae";
    }
    return "?";
}

std::string
IsaDescriptor::regName(Reg r) const
{
    if (kind == IsaKind::Cisc) {
        static const char *names[] = {
            "ax", "cx", "dx", "bx", "sp", "bp", "si", "di"
        };
        if (r < cisc::kNumRegs)
            return names[r];
    } else {
        if (r == risc::SP)
            return "sp";
        if (r == risc::LR)
            return "lr";
        if (r < risc::kNumRegs)
            return "r" + std::to_string(r);
    }
    if (r == kNoReg)
        return "<none>";
    return "reg" + std::to_string(r);
}

namespace
{

IsaDescriptor
makeRiscDescriptor()
{
    IsaDescriptor d;
    d.kind = IsaKind::Risc;
    d.numRegs = risc::kNumRegs;
    d.spReg = risc::SP;
    d.lrReg = risc::LR;
    d.minInstBytes = 4;
    d.maxInstBytes = 4;
    d.instAlign = 4;
    // r15 is the translator scratch, r11/r12 are isel temps, r13/r14
    // are sp/lr; r0-r10 are allocatable.
    for (Reg r = risc::R0; r <= risc::R10; ++r)
        d.allocatable.push_back(r);
    d.calleeSaved = { risc::R4, risc::R5, risc::R6, risc::R7, risc::R8,
                      risc::R9, risc::R10 };
    d.callerSaved = { risc::R0, risc::R1, risc::R2, risc::R3 };
    d.argRegs = { risc::R0, risc::R1, risc::R2, risc::R3 };
    d.retReg = risc::R0;
    d.scratchReg = risc::SCRATCH;
    d.iselTemps = { risc::R11, risc::R12 };
    return d;
}

IsaDescriptor
makeCiscDescriptor()
{
    IsaDescriptor d;
    d.kind = IsaKind::Cisc;
    d.numRegs = cisc::kNumRegs;
    d.spReg = cisc::SP;
    d.lrReg = kNoReg;
    d.minInstBytes = 1;
    d.maxInstBytes = 12;
    d.instAlign = 1;
    // bp is the translator scratch, si/di are isel temps, sp the stack
    // pointer; the remaining four registers are allocatable — an x86-
    // realistic register famine. Arguments travel in caller-saved
    // registers (ax, cx, dx) plus the isel temp si for the fourth.
    d.allocatable = { cisc::AX, cisc::CX, cisc::DX, cisc::BX };
    d.calleeSaved = { cisc::BX };
    d.callerSaved = { cisc::AX, cisc::CX, cisc::DX };
    d.argRegs = { cisc::AX, cisc::CX, cisc::DX, cisc::SI };
    d.retReg = cisc::AX;
    d.scratchReg = cisc::BP;
    d.iselTemps = { cisc::SI, cisc::DI };
    return d;
}

} // namespace

const IsaDescriptor &
isaDescriptor(IsaKind isa)
{
    static const IsaDescriptor risc_desc = makeRiscDescriptor();
    static const IsaDescriptor cisc_desc = makeCiscDescriptor();
    return isa == IsaKind::Risc ? risc_desc : cisc_desc;
}

} // namespace hipstr
