/**
 * @file
 * Architectural register state shared by the reference interpreter,
 * the PSR virtual machines, and the gadget-classification sandbox.
 */

#ifndef HIPSTR_ISA_MACHINE_STATE_HH
#define HIPSTR_ISA_MACHINE_STATE_HH

#include <array>
#include <cstdint>

#include "isa/isa.hh"

namespace hipstr
{

/** Condition flags; set only by Cmp/Test on both ISAs. */
struct Flags
{
    bool zf = false; ///< zero
    bool sf = false; ///< sign
    bool cf = false; ///< carry (unsigned borrow for Cmp)
    bool of = false; ///< signed overflow

    bool operator==(const Flags &) const = default;
};

/** Evaluate condition @p c against @p f. */
inline bool
condHolds(Cond c, const Flags &f)
{
    switch (c) {
      case Cond::Eq: return f.zf;
      case Cond::Ne: return !f.zf;
      case Cond::Lt: return f.sf != f.of;
      case Cond::Le: return f.zf || (f.sf != f.of);
      case Cond::Gt: return !f.zf && (f.sf == f.of);
      case Cond::Ge: return f.sf == f.of;
      case Cond::B:  return f.cf;
      case Cond::Be: return f.cf || f.zf;
      case Cond::A:  return !f.cf && !f.zf;
      case Cond::Ae: return !f.cf;
    }
    return false;
}

/** Full architectural state of one core. */
struct MachineState
{
    IsaKind isa = IsaKind::Cisc;
    std::array<uint32_t, 16> regs{};
    Flags flags;
    Addr pc = 0;

    explicit MachineState(IsaKind k = IsaKind::Cisc) : isa(k) {}

    uint32_t reg(Reg r) const { return regs[r]; }
    void setReg(Reg r, uint32_t v) { regs[r] = v; }

    uint32_t sp() const { return regs[isaDescriptor(isa).spReg]; }
    void setSp(uint32_t v) { regs[isaDescriptor(isa).spReg] = v; }
};

} // namespace hipstr

#endif // HIPSTR_ISA_MACHINE_STATE_HH
