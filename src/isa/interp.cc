#include "interp.hh"

#include "isa/codec.hh"
#include "support/logging.hh"

namespace hipstr
{

ExecStatus
executeInst(const MachInst &mi, MachineState &state, Memory &mem,
            GuestOs *os)
{
    return executeInstInline(mi, state, mem, os);
}

const char *
stopReasonName(StopReason r)
{
    switch (r) {
      case StopReason::Halted: return "halted";
      case StopReason::Exited: return "exited";
      case StopReason::Fault: return "fault";
      case StopReason::BadInst: return "bad-instruction";
      case StopReason::StepLimit: return "step-limit";
      case StopReason::VmExitHit: return "vmexit-outside-vm";
    }
    return "?";
}

Interpreter::Interpreter(IsaKind isa, Memory &mem, GuestOs &os)
    : state(isa), _mem(mem), _os(os)
{
}

RunResult
Interpreter::run(uint64_t maxInsts)
{
    RunResult res;
    for (uint64_t i = 0; i < maxInsts; ++i) {
        MachInst mi;
        if (!decodeInst(state.isa, _mem, state.pc, mi)) {
            res.reason = StopReason::BadInst;
            res.stopPc = state.pc;
            return res;
        }
        Addr pc_before = state.pc;
        // Pre-execution hook: operand base registers still hold their
        // input values, so the timing model can compute data
        // addresses correctly.
        if (traceHook)
            traceHook(mi, pc_before);
        ExecStatus st = executeInstInline(mi, state, _mem, &_os);
        if (st == ExecStatus::Faulted) {
            res.reason = StopReason::Fault;
            res.stopPc = state.pc;
            return res;
        }
        ++res.instsExecuted;
        switch (st) {
          case ExecStatus::Continue:
            break;
          case ExecStatus::Halted:
            res.reason = StopReason::Halted;
            res.stopPc = pc_before;
            return res;
          case ExecStatus::Exited:
            res.reason = StopReason::Exited;
            res.stopPc = pc_before;
            return res;
          case ExecStatus::VmExit:
            res.reason = StopReason::VmExitHit;
            res.stopPc = pc_before;
            return res;
          case ExecStatus::Faulted:
            break; // handled above
        }
    }
    res.reason = StopReason::StepLimit;
    res.stopPc = state.pc;
    return res;
}

} // namespace hipstr
