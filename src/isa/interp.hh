/**
 * @file
 * Reference interpreter ("native core") and the shared instruction
 * semantics used by the PSR virtual machines and the gadget sandbox.
 */

#ifndef HIPSTR_ISA_INTERP_HH
#define HIPSTR_ISA_INTERP_HH

#include <cstdint>
#include <functional>

#include "isa/exec_inline.hh"
#include "isa/guest_os.hh"
#include "isa/instruction.hh"
#include "isa/machine_state.hh"
#include "isa/memory.hh"

namespace hipstr
{

/**
 * Execute one decoded instruction. @p state.pc must point at the
 * instruction; on return it points at the successor (fall-through or
 * branch target). Control transfers use the plain hardware semantics —
 * Ret pops the return address from the top of stack. The PSR VM layers
 * its randomized-return handling above this function.
 *
 * Memory faults surface as ExecStatus::Faulted — a status return,
 * not an exception, so the per-instruction hot path of both the
 * interpreter and the PSR VM carries no try/catch setup. On a fault
 * no architectural state has been modified beyond what the hardware
 * would have committed before the faulting access (see the per-op
 * ordering in the implementation).
 *
 * @param os may be null when executing in a sandbox (Syscall then
 *           behaves as Exited so gadget chains terminate).
 *
 * This is the out-of-line wrapper around executeInstInline
 * (isa/exec_inline.hh); hot loops call the inline form directly.
 */
ExecStatus executeInst(const MachInst &mi, MachineState &state,
                       Memory &mem, GuestOs *os);

/** Why an interpreter run stopped. */
enum class StopReason
{
    Halted,    ///< guest executed Halt
    Exited,    ///< guest called Exit/Execve
    Fault,     ///< memory permission/bounds fault — a guest crash
    BadInst,   ///< undecodable bytes or misaligned pc — a guest crash
    StepLimit, ///< maxInsts reached
    VmExitHit  ///< VmExit encountered outside a VM — a guest crash
};

const char *stopReasonName(StopReason r);

/** Result of an interpreter run. */
struct RunResult
{
    StopReason reason = StopReason::StepLimit;
    uint64_t instsExecuted = 0;
    Addr stopPc = 0; ///< pc at the stop point (fault pc for crashes)

    bool crashed() const
    {
        return reason == StopReason::Fault ||
            reason == StopReason::BadInst ||
            reason == StopReason::VmExitHit;
    }
};

/**
 * The reference core: decodes and executes guest code directly from
 * memory with no translation or randomization. Native-performance
 * baselines and differential tests run on this.
 */
class Interpreter
{
  public:
    Interpreter(IsaKind isa, Memory &mem, GuestOs &os);

    /** Architectural state, publicly accessible for test setup. */
    MachineState state;

    /** Run until a stop condition or @p maxInsts instructions. */
    RunResult run(uint64_t maxInsts);

    /**
     * Optional per-instruction observer (used by the timing model and
     * by trace-based tests). Called after successful execution.
     */
    std::function<void(const MachInst &, Addr pc)> traceHook;

  private:
    Memory &_mem;
    GuestOs &_os;
};

} // namespace hipstr

#endif // HIPSTR_ISA_INTERP_HH
