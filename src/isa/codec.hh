/**
 * @file
 * Unified encode/decode interface over the two ISA codecs.
 *
 * Every @c MachInst has exactly one encoding per ISA (no relaxation), so
 * @c encodedSize is layout-independent — the emitter relies on this for
 * single-pass label fixup.
 */

#ifndef HIPSTR_ISA_CODEC_HH
#define HIPSTR_ISA_CODEC_HH

#include <cstdint>
#include <vector>

#include "isa/instruction.hh"
#include "isa/isa.hh"
#include "isa/memory.hh"

namespace hipstr
{

/**
 * Decode one instruction from raw bytes at guest address @p pc.
 *
 * @param isa   which decoder to use
 * @param bytes pointer to at least @p len valid bytes
 * @param len   bytes available (decode fails rather than over-reads)
 * @param pc    guest address of bytes[0] (for pc-relative targets)
 * @param out   decoded instruction; @c out.size is set on success
 * @retval true on a valid encoding, false otherwise
 *
 * Decoding from arbitrary offsets is exactly what the Galileo gadget
 * scanner does; on Cisc any byte offset may start a valid instruction,
 * on Risc only 4-byte-aligned offsets decode.
 */
bool decodeBytes(IsaKind isa, const uint8_t *bytes, size_t len, Addr pc,
                 MachInst &out);

/** Decode through guest memory with execute-permission checks. */
bool decodeInst(IsaKind isa, const Memory &mem, Addr pc, MachInst &out);

/**
 * Append the unique encoding of @p mi (assumed placed at @p pc) to
 * @p out. Panics on operand combinations the ISA cannot encode — the
 * compiler and translator are responsible for legalization.
 */
void encodeInst(IsaKind isa, const MachInst &mi, Addr pc,
                std::vector<uint8_t> &out);

/** Size in bytes of the unique encoding of @p mi. */
unsigned encodedSize(IsaKind isa, const MachInst &mi);

/**
 * True if the operand shapes of @p mi are directly encodable on
 * @p isa — used by the translator to decide when legalization
 * (scratch-register sequences) is required.
 */
bool isEncodable(IsaKind isa, const MachInst &mi);

namespace detail
{
// Per-ISA entry points, implemented in encoding_{risc,cisc}.cc.
bool decodeRisc(const uint8_t *bytes, size_t len, Addr pc, MachInst &out);
bool decodeCisc(const uint8_t *bytes, size_t len, Addr pc, MachInst &out);
void encodeRisc(const MachInst &mi, Addr pc, std::vector<uint8_t> &out);
void encodeCisc(const MachInst &mi, Addr pc, std::vector<uint8_t> &out);
unsigned sizeRisc(const MachInst &mi);
unsigned sizeCisc(const MachInst &mi);
bool encodableRisc(const MachInst &mi);
bool encodableCisc(const MachInst &mi);
} // namespace detail

} // namespace hipstr

#endif // HIPSTR_ISA_CODEC_HH
