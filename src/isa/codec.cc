#include "codec.hh"

#include "support/logging.hh"

namespace hipstr
{

bool
decodeBytes(IsaKind isa, const uint8_t *bytes, size_t len, Addr pc,
            MachInst &out)
{
    if (isa == IsaKind::Risc)
        return detail::decodeRisc(bytes, len, pc, out);
    return detail::decodeCisc(bytes, len, pc, out);
}

bool
decodeInst(IsaKind isa, const Memory &mem, Addr pc, MachInst &out)
{
    const IsaDescriptor &desc = isaDescriptor(isa);
    uint8_t buf[16];
    size_t got = mem.fetchBytes(pc, buf, desc.maxInstBytes);
    if (got == 0)
        return false;
    return decodeBytes(isa, buf, got, pc, out);
}

void
encodeInst(IsaKind isa, const MachInst &mi, Addr pc,
           std::vector<uint8_t> &out)
{
    if (isa == IsaKind::Risc)
        detail::encodeRisc(mi, pc, out);
    else
        detail::encodeCisc(mi, pc, out);
}

unsigned
encodedSize(IsaKind isa, const MachInst &mi)
{
    if (isa == IsaKind::Risc)
        return detail::sizeRisc(mi);
    return detail::sizeCisc(mi);
}

bool
isEncodable(IsaKind isa, const MachInst &mi)
{
    if (isa == IsaKind::Risc)
        return detail::encodableRisc(mi);
    return detail::encodableCisc(mi);
}

} // namespace hipstr
