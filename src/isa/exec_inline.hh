/**
 * @file
 * Inline single-instruction execution engine — the body behind
 * executeInst(), in a header so the hot loops that retire hundreds of
 * millions of instructions (the PSR VM dispatch loop, the reference
 * interpreter) inline it and keep guest state in registers across the
 * op switch. Cold callers keep using the out-of-line executeInst()
 * wrapper from interp.hh; the semantics are one and the same function.
 */

#ifndef HIPSTR_ISA_EXEC_INLINE_HH
#define HIPSTR_ISA_EXEC_INLINE_HH

#include "isa/guest_os.hh"
#include "isa/instruction.hh"
#include "isa/machine_state.hh"
#include "isa/memory.hh"
#include "support/logging.hh"

namespace hipstr
{

/** Outcome of executing a single instruction. */
enum class ExecStatus
{
    Continue, ///< state.pc advanced; keep going
    Halted,   ///< Halt executed
    Exited,   ///< guest called Exit or Execve
    VmExit,   ///< VmExit pseudo-op reached (only meaningful inside a VM)
    Faulted   ///< memory fault; state.pc still points at the instruction
};

namespace interp_detail
{

/**
 * Operand access with fault signalling: on an illegal memory access
 * @p fault is set (and reads return 0). Callers check the flag before
 * committing dependent state so the fault ordering matches what the
 * old throwing variants produced.
 */
inline uint32_t
readOperand(const Operand &o, const MachineState &state,
            const Memory &mem, bool &fault)
{
    switch (o.kind) {
      case Operand::Kind::Reg:
        return state.reg(o.reg);
      case Operand::Kind::Imm:
        return static_cast<uint32_t>(o.disp);
      case Operand::Kind::Mem: {
        uint32_t v = 0;
        if (!mem.tryRead32(state.reg(o.base) +
                               static_cast<uint32_t>(o.disp),
                           v))
            fault = true;
        return v;
      }
      case Operand::Kind::None:
        break;
    }
    hipstr_panic("readOperand: invalid operand kind");
}

inline void
writeOperand(const Operand &o, uint32_t v, MachineState &state,
             Memory &mem, bool &fault)
{
    switch (o.kind) {
      case Operand::Kind::Reg:
        state.setReg(o.reg, v);
        return;
      case Operand::Kind::Mem:
        if (!mem.tryWrite32(state.reg(o.base) +
                                static_cast<uint32_t>(o.disp),
                            v))
            fault = true;
        return;
      default:
        hipstr_panic("writeOperand: invalid operand kind");
    }
}

inline void
setCmpFlags(uint32_t a, uint32_t b, Flags &f)
{
    uint32_t r = a - b;
    f.zf = (r == 0);
    f.sf = (static_cast<int32_t>(r) < 0);
    f.cf = (a < b);
    // Signed overflow of a - b.
    f.of = (((a ^ b) & (a ^ r)) >> 31) != 0;
}

inline void
setTestFlags(uint32_t a, uint32_t b, Flags &f)
{
    uint32_t r = a & b;
    f.zf = (r == 0);
    f.sf = (static_cast<int32_t>(r) < 0);
    f.cf = false;
    f.of = false;
}

inline uint32_t
aluCompute(Op op, uint32_t a, uint32_t b)
{
    switch (op) {
      case Op::Add: return a + b;
      case Op::Sub: return a - b;
      case Op::And: return a & b;
      case Op::Or:  return a | b;
      case Op::Xor: return a ^ b;
      case Op::Shl: return a << (b & 31);
      case Op::Shr: return a >> (b & 31);
      case Op::Sar:
        return static_cast<uint32_t>(static_cast<int32_t>(a) >>
                                     (b & 31));
      case Op::Mul: return a * b;
      case Op::Divu:
        // Division by zero yields 0 rather than faulting; this keeps
        // gadget execution total without an extra trap class.
        return b == 0 ? 0 : a / b;
      default:
        hipstr_panic("aluCompute: %s is not an ALU op", opName(op));
    }
}

} // namespace interp_detail

/**
 * Execute one decoded instruction (see executeInst in interp.hh for
 * the contract). Inline so hot loops fold it into their dispatch.
 */
inline ExecStatus
executeInstInline(const MachInst &mi, MachineState &state, Memory &mem,
                  GuestOs *os)
{
    using namespace interp_detail;
    const Addr next_pc = state.pc + mi.size;
    bool fault = false;

    switch (mi.op) {
      case Op::Nop:
        state.pc = next_pc;
        return ExecStatus::Continue;

      case Op::Halt:
        return ExecStatus::Halted;

      case Op::Mov: {
        uint32_t v = readOperand(mi.src1, state, mem, fault);
        if (fault)
            return ExecStatus::Faulted;
        writeOperand(mi.dst, v, state, mem, fault);
        if (fault)
            return ExecStatus::Faulted;
        state.pc = next_pc;
        return ExecStatus::Continue;
      }

      case Op::Movb:
        // Byte-sized memory access: loads zero-extend, stores write
        // the low byte. Exactly one side is a memory operand.
        if (mi.src1.isMem()) {
            uint8_t b = 0;
            if (!mem.tryRead8(state.reg(mi.src1.base) +
                                  static_cast<uint32_t>(mi.src1.disp),
                              b))
                return ExecStatus::Faulted;
            state.setReg(mi.dst.reg, b);
        } else {
            uint32_t v = readOperand(mi.src1, state, mem, fault);
            if (fault)
                return ExecStatus::Faulted;
            if (!mem.tryWrite8(state.reg(mi.dst.base) +
                                   static_cast<uint32_t>(mi.dst.disp),
                               static_cast<uint8_t>(v)))
                return ExecStatus::Faulted;
        }
        state.pc = next_pc;
        return ExecStatus::Continue;

      case Op::MovHi: {
        uint32_t lo = state.reg(mi.dst.reg) & 0xffffu;
        state.setReg(mi.dst.reg,
                     lo | (static_cast<uint32_t>(mi.src1.disp) << 16));
        state.pc = next_pc;
        return ExecStatus::Continue;
      }

      case Op::Lea:
        state.setReg(mi.dst.reg,
                     state.reg(mi.src1.base) +
                         static_cast<uint32_t>(mi.src1.disp));
        state.pc = next_pc;
        return ExecStatus::Continue;

      case Op::Add:
      case Op::Sub:
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Shl:
      case Op::Shr:
      case Op::Sar:
      case Op::Mul:
      case Op::Divu: {
        uint32_t a = readOperand(mi.src1, state, mem, fault);
        uint32_t b = readOperand(mi.src2, state, mem, fault);
        if (fault)
            return ExecStatus::Faulted;
        writeOperand(mi.dst, aluCompute(mi.op, a, b), state, mem,
                     fault);
        if (fault)
            return ExecStatus::Faulted;
        state.pc = next_pc;
        return ExecStatus::Continue;
      }

      case Op::Cmp: {
        uint32_t a = readOperand(mi.src1, state, mem, fault);
        uint32_t b = readOperand(mi.src2, state, mem, fault);
        if (fault)
            return ExecStatus::Faulted;
        setCmpFlags(a, b, state.flags);
        state.pc = next_pc;
        return ExecStatus::Continue;
      }

      case Op::Test: {
        uint32_t a = readOperand(mi.src1, state, mem, fault);
        uint32_t b = readOperand(mi.src2, state, mem, fault);
        if (fault)
            return ExecStatus::Faulted;
        setTestFlags(a, b, state.flags);
        state.pc = next_pc;
        return ExecStatus::Continue;
      }

      case Op::Jmp:
        state.pc = mi.target;
        return ExecStatus::Continue;

      case Op::Jcc:
        state.pc = condHolds(mi.cond, state.flags) ? mi.target
                                                   : next_pc;
        return ExecStatus::Continue;

      case Op::JmpInd: {
        Addr target = readOperand(mi.src1, state, mem, fault);
        if (fault)
            return ExecStatus::Faulted;
        state.pc = target;
        return ExecStatus::Continue;
      }

      case Op::Call:
      case Op::CallInd: {
        Addr target = (mi.op == Op::Call)
            ? mi.target
            : readOperand(mi.src1, state, mem, fault);
        if (fault)
            return ExecStatus::Faulted;
        if (state.isa == IsaKind::Cisc) {
            uint32_t sp = state.sp() - kWordSize;
            if (!mem.tryWrite32(sp, next_pc))
                return ExecStatus::Faulted;
            state.setSp(sp);
        } else {
            state.setReg(isaDescriptor(state.isa).lrReg, next_pc);
        }
        state.pc = target;
        return ExecStatus::Continue;
      }

      case Op::Ret: {
        uint32_t sp = state.sp();
        uint32_t ra = 0;
        if (!mem.tryRead32(sp, ra))
            return ExecStatus::Faulted;
        state.setSp(sp + kWordSize);
        state.pc = ra;
        return ExecStatus::Continue;
      }

      case Op::Push: {
        uint32_t v = readOperand(mi.src1, state, mem, fault);
        if (fault)
            return ExecStatus::Faulted;
        uint32_t sp = state.sp() - kWordSize;
        if (!mem.tryWrite32(sp, v))
            return ExecStatus::Faulted;
        state.setSp(sp);
        state.pc = next_pc;
        return ExecStatus::Continue;
      }

      case Op::Pop: {
        uint32_t sp = state.sp();
        uint32_t v = 0;
        if (!mem.tryRead32(sp, v))
            return ExecStatus::Faulted;
        state.setSp(sp + kWordSize);
        writeOperand(mi.dst, v, state, mem, fault);
        if (fault)
            return ExecStatus::Faulted;
        state.pc = next_pc;
        return ExecStatus::Continue;
      }

      case Op::Syscall: {
        if (os == nullptr)
            return ExecStatus::Exited;
        // Syscall emulation still uses the throwing memory API
        // internally (string copies, buffer walks); contain it here so
        // executeInst as a whole never throws.
        bool keep_running;
        try {
            keep_running = os->handleSyscall(state, mem);
        } catch (const Memory::Fault &) {
            return ExecStatus::Faulted;
        }
        if (!os->takeRedirect())
            state.pc = next_pc;
        return keep_running ? ExecStatus::Continue : ExecStatus::Exited;
      }

      case Op::VmExit:
        return ExecStatus::VmExit;
    }
    hipstr_panic("executeInst: unhandled op");
}

} // namespace hipstr

#endif // HIPSTR_ISA_EXEC_INLINE_HH
