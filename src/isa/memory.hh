/**
 * @file
 * Flat guest memory with region permissions and the canonical process
 * address-space layout used by the loader, the PSR virtual machines,
 * and the attack framework.
 */

#ifndef HIPSTR_ISA_MEMORY_HH
#define HIPSTR_ISA_MEMORY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace hipstr
{

/**
 * Canonical address-space layout. A fat binary carries one code section
 * per ISA; both map simultaneously (the paper's symmetrical fat binary).
 * The code caches are VM-private regions that guest code must never
 * reference — the software-fault-isolation checks in the VM enforce
 * this, exactly as Section 5.1 of the paper mandates.
 */
namespace layout
{
constexpr Addr kRiscCodeBase = 0x00010000;
constexpr Addr kCiscCodeBase = 0x00400000;
constexpr Addr kDataBase     = 0x00800000;
/** Per-ISA function-pointer dispatch tables (1024 entries each). */
constexpr Addr kRiscFuncTable = kDataBase;
constexpr Addr kCiscFuncTable = kDataBase + 0x1000;
constexpr Addr kGlobalsBase  = kDataBase + 0x2000;
constexpr Addr kHeapBase     = 0x00a00000;
constexpr Addr kStackTop     = 0x01000000; ///< stack grows down
constexpr Addr kStackLimit   = 0x00c00000; ///< lowest legal stack addr
constexpr Addr kRiscCacheBase = 0x01000000; ///< Risc VM code cache
constexpr Addr kCiscCacheBase = 0x01400000; ///< Cisc VM code cache
constexpr Addr kMemEnd       = 0x01800000; ///< 24 MiB address space

/** Base of the code section for @p isa. */
constexpr Addr
codeBase(IsaKind isa)
{
    return isa == IsaKind::Risc ? kRiscCodeBase : kCiscCodeBase;
}

/** Base of the VM code cache for @p isa. */
constexpr Addr
cacheBase(IsaKind isa)
{
    return isa == IsaKind::Risc ? kRiscCacheBase : kCiscCacheBase;
}

/** Base of the function-pointer dispatch table for @p isa. */
constexpr Addr
funcTableBase(IsaKind isa)
{
    return isa == IsaKind::Risc ? kRiscFuncTable : kCiscFuncTable;
}
} // namespace layout

/** Access permissions for a memory region. */
enum Perm : uint8_t
{
    PermNone = 0,
    PermR = 1,
    PermW = 2,
    PermX = 4,
    PermRW = PermR | PermW,
    PermRX = PermR | PermX,
    PermRWX = PermR | PermW | PermX
};

/**
 * Byte-addressable little-endian guest memory.
 *
 * Accesses outside the address space or violating region permissions
 * raise a @c MemFault, which the interpreter converts into a guest
 * crash — the event brute-force attacks (Section 6, Algorithm 1)
 * observe and count.
 */
class Memory
{
  public:
    /** Thrown on an illegal access; caught by the interpreter. */
    struct Fault
    {
        Addr addr;
        Perm needed;
        std::string what;
    };

    Memory();

    /** Define or redefine the permissions of [base, base+size). */
    void setRegion(Addr base, uint32_t size, Perm perm,
                   const std::string &name);

    /**
     * Permission byte governing @p addr: a binary search over the
     * flattened span partition (rebuilt on every setRegion), so the
     * per-access cost is O(log regions) instead of a scan of the
     * region list with last-definition-wins ordering.
     */
    Perm permAt(Addr addr) const
    {
        if (addr >= _bytes.size())
            return PermNone;
        size_t lo = 0, hi = _spans.size() - 1;
        while (lo < hi) {
            size_t mid = (lo + hi) / 2;
            if (addr < _spans[mid].end)
                hi = mid;
            else
                lo = mid + 1;
        }
        return static_cast<Perm>(_spans[lo].perm);
    }

    /** Name of the region containing @p addr ("" if unmapped). */
    std::string regionName(Addr addr) const;

    /** Checked reads/writes. @{ */
    uint8_t read8(Addr addr) const;
    uint16_t read16(Addr addr) const;
    uint32_t read32(Addr addr) const;
    void write8(Addr addr, uint8_t v);
    void write16(Addr addr, uint16_t v);
    void write32(Addr addr, uint32_t v);
    /** @} */

    /**
     * Non-throwing checked accesses: return false instead of raising a
     * Fault. These back the per-instruction hot path of the interpreter
     * and the PSR VMs, where a status return avoids the try/catch setup
     * cost of the throwing variants; the throwing variants remain for
     * cold paths that want the diagnostic message. Try-writes honor
     * journaling exactly like their throwing counterparts. Inline —
     * together with the span-based permAt, a checked access is a
     * bounds test, a short binary search, and the data move. @{
     */
    bool tryRead8(Addr addr, uint8_t &v) const noexcept
    {
        if (!checkOk(addr, 1, PermR))
            return false;
        v = _bytes[addr];
        return true;
    }

    bool tryRead32(Addr addr, uint32_t &v) const noexcept
    {
        if (!checkOk(addr, 4, PermR))
            return false;
        __builtin_memcpy(&v, &_bytes[addr], 4);
        return true;
    }

    bool tryWrite8(Addr addr, uint8_t v) noexcept
    {
        if (!checkOk(addr, 1, PermW))
            return false;
        if (_journaling)
            journalBytes(addr, 1);
        _bytes[addr] = v;
        return true;
    }

    bool tryWrite32(Addr addr, uint32_t v) noexcept
    {
        if (!checkOk(addr, 4, PermW))
            return false;
        if (_journaling)
            journalBytes(addr, 4);
        __builtin_memcpy(&_bytes[addr], &v, 4);
        return true;
    }
    /** @} */

    /**
     * Span hint: a word-access fast path for loops whose addresses
     * cluster inside one permission span (stack frames, the relocated
     * register slots, a hot array). The hint caches the inclusive
     * range of base addresses for which a 4-byte access is known
     * legal, so a hit replaces the permAt binary search with one range
     * compare. Hints hold no pointers and must be discarded (or simply
     * not reused) across setRegion calls; the superblock trace
     * executor creates fresh hints per trace run and traces never
     * reach setRegion (syscalls end a trace). A hinted access has
     * byte-identical semantics to tryRead32/tryWrite32, including the
     * first-byte permission rule and write journaling.
     *
     * A hint is direction-specific: the cached window proves only the
     * permission of the access that established it, so a hint must be
     * used exclusively with tryRead32Span or exclusively with
     * tryWrite32Span, never both. @{
     */
    struct SpanHint
    {
        Addr lo = 1; ///< inclusive; lo > hi encodes the empty range
        Addr hi = 0;
    };

    bool tryRead32Span(SpanHint &h, Addr addr, uint32_t &v) const noexcept
    {
        if (addr >= h.lo && addr <= h.hi) [[likely]] {
            __builtin_memcpy(&v, &_bytes[addr], 4);
            return true;
        }
        if (!checkOk(addr, 4, PermR))
            return false;
        refillHint(h, addr);
        __builtin_memcpy(&v, &_bytes[addr], 4);
        return true;
    }

    bool tryWrite32Span(SpanHint &h, Addr addr, uint32_t v) noexcept
    {
        if (addr >= h.lo && addr <= h.hi) [[likely]] {
            if (_journaling) [[unlikely]]
                journalBytes(addr, 4);
            __builtin_memcpy(&_bytes[addr], &v, 4);
            return true;
        }
        if (!checkOk(addr, 4, PermW))
            return false;
        refillHint(h, addr);
        if (_journaling)
            journalBytes(addr, 4);
        __builtin_memcpy(&_bytes[addr], &v, 4);
        return true;
    }
    /** @} */

    /**
     * Validate a 4-byte access at @p addr for @p needed and refill
     * @p h around it *without* performing the access. This is the
     * trace JIT's hint-miss probe: it must stay free of guest-visible
     * effects so the op that missed can be retried from its start
     * (read-modify-write ops would otherwise double-apply).
     * Semantically the miss path of tryRead32Span/tryWrite32Span
     * minus the data move.
     */
    bool
    probe32Span(SpanHint &h, Addr addr, Perm needed) const noexcept
    {
        if (!checkOk(addr, 4, needed))
            return false;
        refillHint(h, addr);
        return true;
    }

    /**
     * True iff every byte of [addr, addr+len) is inside the address
     * space and grants @p needed. Syscall argument validation uses
     * this to reject guest-supplied buffer pointers up front — a
     * guest-level error return instead of a host-side Fault halfway
     * through the operation. Permission is checked per byte, so a
     * range spanning a region boundary needs @p needed on both sides.
     */
    bool rangeAccessible(Addr addr, uint32_t len,
                         Perm needed) const noexcept;

    /** Instruction fetch: like read but requires PermX. */
    uint8_t fetch8(Addr addr) const;
    /** Fetch up to @p len bytes into @p out; stops at region end. */
    size_t fetchBytes(Addr addr, uint8_t *out, size_t len) const;

    /**
     * Raw access without permission checks — used by the loader, the
     * stack transformer, and the attacker model (which by assumption
     * has an arbitrary read/write primitive).
     */
    uint8_t rawRead8(Addr addr) const;
    uint32_t rawRead32(Addr addr) const;
    void rawWrite8(Addr addr, uint8_t v);
    void rawWrite32(Addr addr, uint32_t v);
    void rawWriteBytes(Addr addr, const uint8_t *src, size_t len);
    void rawReadBytes(Addr addr, uint8_t *dst, size_t len) const;

    /**
     * Zero [base, base+len) without permission checks. Used when a
     * crashed worker process respawns: its data/heap/stack image is
     * wiped before the fat binary is reloaded, so the new generation
     * starts from a pristine address space.
     */
    void zeroRange(Addr base, uint32_t len);

    /** Direct pointer into the backing store (attacker disclosures). */
    const uint8_t *data() const { return _bytes.data(); }
    /**
     * Mutable backing-store base for the trace JIT, whose compiled
     * code addresses guest memory as [base + addr] after passing the
     * same span-hint window checks the interpreter uses. The vector
     * never reallocates after load (the address space is fixed at
     * construction), so the pointer stays valid across a run.
     */
    uint8_t *jitBase() { return _bytes.data(); }
    uint32_t size() const { return static_cast<uint32_t>(_bytes.size()); }

    /**
     * Monotonic stamp of the permission-span layout, bumped on every
     * region change. Cached hint windows (the trace JIT's persistent
     * per-op tables) are valid only while this stands still.
     */
    uint64_t layoutEpoch() const { return _layoutEpoch; }

    /**
     * Journaling: while enabled, checked writes record the bytes they
     * overwrite; rollback() restores them (newest first). The gadget
     * sandbox uses this to execute thousands of candidate gadgets
     * against one loaded image without copying it.
     */
    void beginJournal();
    void rollback();
    bool journaling() const { return _journaling; }

  private:
    void journalBytes(Addr addr, unsigned len);

    void check(Addr addr, unsigned len, Perm needed) const;

    /**
     * Point @p h at the widest window around @p addr for which a
     * 4-byte access with the just-verified permission stays legal:
     * base addresses within the containing span whose first byte rule
     * and the address-space bound both hold. Caller has already passed
     * checkOk(addr, 4, perm).
     */
    void refillHint(SpanHint &h, Addr addr) const noexcept
    {
        size_t lo = 0, hi = _spans.size() - 1;
        while (lo < hi) {
            size_t mid = (lo + hi) / 2;
            if (addr < _spans[mid].end)
                hi = mid;
            else
                lo = mid + 1;
        }
        h.lo = lo == 0 ? 0 : _spans[lo - 1].end;
        Addr span_last = _spans[lo].end - 1;
        Addr bound_last = static_cast<Addr>(_bytes.size()) - 4;
        h.hi = span_last < bound_last ? span_last : bound_last;
    }

    bool checkOk(Addr addr, unsigned len, Perm needed) const noexcept
    {
        if (static_cast<uint64_t>(addr) + len > _bytes.size())
            return false;
        return (permAt(addr) & needed) == needed;
    }

    struct Region
    {
        Addr base;
        uint32_t size;
        Perm perm;
        std::string name;
    };

    /**
     * One cell of the flattened permission partition: covers up to
     * (exclusive) @c end with @c perm. Spans are sorted, contiguous
     * from 0, and always terminate at the address-space end, so
     * permAt resolves with a binary search instead of replaying the
     * region list's definition order.
     */
    struct Span
    {
        Addr end;
        uint8_t perm;
    };

    /** Recompute _spans from _regions (definition order wins). */
    void rebuildSpans();

    std::vector<uint8_t> _bytes;
    std::vector<Region> _regions;
    std::vector<Span> _spans;
    uint64_t _layoutEpoch = 0; ///< incremented by rebuildSpans()
    bool _journaling = false;
    std::vector<std::pair<Addr, uint8_t>> _journal;
};

} // namespace hipstr

#endif // HIPSTR_ISA_MEMORY_HH
