#include "memory.hh"

#include <algorithm>
#include <cstring>

#include "support/logging.hh"

namespace hipstr
{

Memory::Memory() : _bytes(layout::kMemEnd, 0)
{
    rebuildSpans();
}

void
Memory::setRegion(Addr base, uint32_t size, Perm perm,
                  const std::string &name)
{
    hipstr_assert(static_cast<uint64_t>(base) + size <= _bytes.size());
    // Later definitions take precedence; keep the list small by
    // replacing an exact match.
    for (auto &r : _regions) {
        if (r.base == base && r.size == size) {
            r.perm = perm;
            r.name = name;
            rebuildSpans();
            return;
        }
    }
    _regions.push_back(Region{base, size, perm, name});
    rebuildSpans();
}

void
Memory::rebuildSpans()
{
    ++_layoutEpoch;
    // Every region edge is a potential permission change; resolve the
    // perm of each cell with the region list's last-definition-wins
    // rule, then merge equal neighbours. Region counts are single
    // digits, so the quadratic resolve is irrelevant — this runs only
    // on setRegion, never on an access.
    std::vector<Addr> edges;
    edges.reserve(_regions.size() * 2 + 2);
    edges.push_back(0);
    const Addr mem_end = static_cast<Addr>(_bytes.size());
    for (const auto &r : _regions) {
        if (r.base < mem_end)
            edges.push_back(r.base);
        if (r.base + r.size < mem_end)
            edges.push_back(r.base + r.size);
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    edges.push_back(mem_end);

    _spans.clear();
    for (size_t i = 0; i + 1 < edges.size(); ++i) {
        const Addr cell = edges[i];
        Perm p = PermNone;
        for (const auto &r : _regions) {
            if (cell >= r.base && cell - r.base < r.size)
                p = r.perm;
        }
        if (!_spans.empty() && _spans.back().perm == p)
            _spans.back().end = edges[i + 1];
        else
            _spans.push_back(Span{edges[i + 1],
                                  static_cast<uint8_t>(p)});
    }
    hipstr_assert(!_spans.empty() && _spans.back().end == mem_end);
}

std::string
Memory::regionName(Addr addr) const
{
    std::string name;
    for (const auto &r : _regions) {
        if (addr >= r.base && addr - r.base < r.size)
            name = r.name;
    }
    return name;
}

void
Memory::check(Addr addr, unsigned len, Perm needed) const
{
    if (static_cast<uint64_t>(addr) + len > _bytes.size()) {
        throw Fault{addr, needed, "access beyond address space"};
    }
    Perm have = permAt(addr);
    if ((have & needed) != needed) {
        throw Fault{addr, needed,
                    std::string("permission violation in region '") +
                        regionName(addr) + "'"};
    }
}

bool
Memory::rangeAccessible(Addr addr, uint32_t len,
                        Perm needed) const noexcept
{
    if (static_cast<uint64_t>(addr) + len > _bytes.size())
        return false;
    for (uint64_t a = addr; a < static_cast<uint64_t>(addr) + len; ++a)
        if ((permAt(static_cast<Addr>(a)) & needed) != needed)
            return false;
    return true;
}

uint8_t
Memory::read8(Addr addr) const
{
    check(addr, 1, PermR);
    return _bytes[addr];
}

uint16_t
Memory::read16(Addr addr) const
{
    check(addr, 2, PermR);
    return static_cast<uint16_t>(_bytes[addr]) |
        (static_cast<uint16_t>(_bytes[addr + 1]) << 8);
}

uint32_t
Memory::read32(Addr addr) const
{
    check(addr, 4, PermR);
    uint32_t v;
    std::memcpy(&v, &_bytes[addr], 4);
    return v;
}

void
Memory::beginJournal()
{
    hipstr_assert(!_journaling);
    _journaling = true;
    _journal.clear();
}

void
Memory::rollback()
{
    hipstr_assert(_journaling);
    for (size_t i = _journal.size(); i-- > 0;)
        _bytes[_journal[i].first] = _journal[i].second;
    _journal.clear();
    _journaling = false;
}

void
Memory::journalBytes(Addr addr, unsigned len)
{
    if (!_journaling)
        return;
    for (unsigned i = 0; i < len; ++i)
        _journal.emplace_back(addr + i, _bytes[addr + i]);
}

void
Memory::write8(Addr addr, uint8_t v)
{
    check(addr, 1, PermW);
    journalBytes(addr, 1);
    _bytes[addr] = v;
}

void
Memory::write16(Addr addr, uint16_t v)
{
    check(addr, 2, PermW);
    journalBytes(addr, 2);
    _bytes[addr] = static_cast<uint8_t>(v);
    _bytes[addr + 1] = static_cast<uint8_t>(v >> 8);
}

void
Memory::write32(Addr addr, uint32_t v)
{
    check(addr, 4, PermW);
    journalBytes(addr, 4);
    std::memcpy(&_bytes[addr], &v, 4);
}

uint8_t
Memory::fetch8(Addr addr) const
{
    check(addr, 1, PermX);
    return _bytes[addr];
}

size_t
Memory::fetchBytes(Addr addr, uint8_t *out, size_t len) const
{
    size_t n = 0;
    while (n < len && static_cast<uint64_t>(addr) + n < _bytes.size() &&
           (permAt(addr + static_cast<Addr>(n)) & PermX)) {
        out[n] = _bytes[addr + n];
        ++n;
    }
    return n;
}

uint8_t
Memory::rawRead8(Addr addr) const
{
    hipstr_assert(addr < _bytes.size());
    return _bytes[addr];
}

uint32_t
Memory::rawRead32(Addr addr) const
{
    hipstr_assert(static_cast<uint64_t>(addr) + 4 <= _bytes.size());
    uint32_t v;
    std::memcpy(&v, &_bytes[addr], 4);
    return v;
}

void
Memory::rawWrite8(Addr addr, uint8_t v)
{
    hipstr_assert(addr < _bytes.size());
    _bytes[addr] = v;
}

void
Memory::rawWrite32(Addr addr, uint32_t v)
{
    hipstr_assert(static_cast<uint64_t>(addr) + 4 <= _bytes.size());
    std::memcpy(&_bytes[addr], &v, 4);
}

void
Memory::rawWriteBytes(Addr addr, const uint8_t *src, size_t len)
{
    hipstr_assert(static_cast<uint64_t>(addr) + len <= _bytes.size());
    std::memcpy(&_bytes[addr], src, len);
}

void
Memory::rawReadBytes(Addr addr, uint8_t *dst, size_t len) const
{
    hipstr_assert(static_cast<uint64_t>(addr) + len <= _bytes.size());
    std::memcpy(dst, &_bytes[addr], len);
}

void
Memory::zeroRange(Addr base, uint32_t len)
{
    hipstr_assert(static_cast<uint64_t>(base) + len <= _bytes.size());
    std::memset(&_bytes[base], 0, len);
}

} // namespace hipstr
