/**
 * @file
 * Encoder/decoder for the Cisc (x86-like) ISA.
 *
 * Encoding summary (all multi-byte values little-endian):
 *
 *   0x90                    nop
 *   0xC3                    ret
 *   0xF4                    halt
 *   0xCD 0x80               syscall
 *   0x50+r / 0x58+r         push r / pop r
 *   0x68 imm32              push imm32
 *   0xB8+r imm32            mov r, imm32
 *   0x89 /r                 mov rm, r      (store / reg-reg move)
 *   0x8A /r                 movb r, m8     (byte load, zero-extend)
 *   0x88 /r                 movb m8, r     (byte store)
 *   0xC6 /0 imm8            movb m8, imm8
 *   0x8B /r                 mov r, rm      (load; decoder also accepts
 *                                           the redundant reg-reg form)
 *   0xC7 /0 imm32           mov rm, imm32
 *   0x8D /r                 lea r, m
 *   0x01/0x29/0x21/0x09/0x31  add/sub/and/or/xor rm, r
 *   0x03/0x2B/0x23/0x0B/0x33  add/sub/and/or/xor r, rm
 *   0x39 / 0x3B             cmp rm, r / cmp r, rm
 *   0x85                    test rm, r
 *   0x81 /ext imm32         add/or/and/sub/xor/cmp rm, imm32
 *                           (ext: 0,1,4,5,6,7)
 *   0x83 /ext imm8          same with sign-extended imm8
 *   0xC1 /ext imm8          shl/shr/sar rm, imm8 (ext: 4,5,7)
 *   0xF7 /0 imm32           test rm, imm32
 *   0x69 /r imm32           mul r, rm, imm32 (two-address: reg==rm)
 *   0xE8 rel32              call
 *   0xE9 rel32 / 0xEB rel8  jmp
 *   0xFF /2 , /4            call rm / jmp rm (register-indirect)
 *   0x70+cc rel8            jcc (decoder only; assembler emits rel32)
 *   0x00/0x08/0x20/0x28/0x30/0x38 /r   add/or/and/sub/xor/cmp rm, r
 *                           (decoder-only aliases of the byte-ALU
 *                           group; approximated at word width — they
 *                           exist so unaligned decode is as dense as
 *                           on real x86, where nearly every byte
 *                           starts some instruction)
 *   0x40+r / 0x48+r         inc r / dec r (decoder-only aliases)
 *   0x0F 0x80+cc rel32      jcc
 *   0x0F 0xAF /r            mul r, rm
 *   0x0F 0xF6 /r            divu r, rm
 *   0x0F 0xF7 /r imm32      divu r, imm32
 *   0x0F 0xB8/0xB9/0xBB /r  shl/shr/sar rm(dst), reg(amount)
 *   0x0F 0x0B imm32         vmexit (translator-only)
 *
 * ModRM follows x86: mod(2)|reg(3)|rm(3); mod 3 = register direct,
 * mod 0 = [rm], mod 1 = [rm+disp8], mod 2 = [rm+disp32]. The SIB quirk
 * is deliberately omitted: rm=4 simply addresses through SP.
 *
 * Single-byte RET plus dense immediate bytes are what make unaligned
 * decode yield the large unintentional-gadget population the paper
 * measures on x86 (52x the ARM count).
 */

#include <cstring>

#include "isa/codec.hh"
#include "support/bitops.hh"
#include "support/logging.hh"

namespace hipstr
{
namespace detail
{

namespace
{

/** x86 condition-code nibbles for our Cond set. */
const uint8_t kCondToCc[kNumConds] = {
    0x4, // Eq
    0x5, // Ne
    0xc, // Lt
    0xe, // Le
    0xf, // Gt
    0xd, // Ge
    0x2, // B
    0x6, // Be
    0x7, // A
    0x3  // Ae
};

bool
ccToCond(uint8_t cc, Cond &out)
{
    for (unsigned i = 0; i < kNumConds; ++i) {
        if (kCondToCc[i] == cc) {
            out = static_cast<Cond>(i);
            return true;
        }
    }
    return false;
}

struct AluEnc
{
    Op op;
    uint8_t mrOpcode;   ///< "rm, r" form (0 = none)
    uint8_t rmOpcode;   ///< "r, rm" form (0 = none)
    uint8_t immExt;     ///< /ext for the 0x81 / 0x83 group (0xff = none)
};

const AluEnc kAluEncs[] = {
    { Op::Add, 0x01, 0x03, 0 },
    { Op::Sub, 0x29, 0x2b, 5 },
    { Op::And, 0x21, 0x23, 4 },
    { Op::Or,  0x09, 0x0b, 1 },
    { Op::Xor, 0x31, 0x33, 6 },
    { Op::Cmp, 0x39, 0x3b, 7 },
};

const AluEnc *
findAluEnc(Op op)
{
    for (const auto &e : kAluEncs)
        if (e.op == op)
            return &e;
    return nullptr;
}

const AluEnc *
findAluByMr(uint8_t opc)
{
    for (const auto &e : kAluEncs) {
        if (e.mrOpcode == opc)
            return &e;
        // Decoder-only byte-width aliases (mrOpcode - 1), matching
        // x86's dense 0x00/0x08/... byte-ALU row.
        if (e.mrOpcode - 1 == opc)
            return &e;
    }
    return nullptr;
}

const AluEnc *
findAluByRm(uint8_t opc)
{
    for (const auto &e : kAluEncs) {
        if (e.rmOpcode == opc)
            return &e;
        // Decoder-only byte-width aliases (rmOpcode - 1).
        if (e.rmOpcode - 1 == opc)
            return &e;
    }
    return nullptr;
}

const AluEnc *
findAluByExt(uint8_t ext)
{
    for (const auto &e : kAluEncs)
        if (e.immExt == ext)
            return &e;
    return nullptr;
}

/** Shift /ext values in the 0xC1 group. */
bool
shiftExt(Op op, uint8_t &ext)
{
    switch (op) {
      case Op::Shl: ext = 4; return true;
      case Op::Shr: ext = 5; return true;
      case Op::Sar: ext = 7; return true;
      default: return false;
    }
}

bool
extToShift(uint8_t ext, Op &op)
{
    switch (ext) {
      case 4: op = Op::Shl; return true;
      case 5: op = Op::Shr; return true;
      case 7: op = Op::Sar; return true;
      default: return false;
    }
}

void
emit8(std::vector<uint8_t> &out, uint8_t v)
{
    out.push_back(v);
}

void
emit32(std::vector<uint8_t> &out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

/**
 * Emit a ModRM byte plus displacement for operand @p rm_op with the
 * given reg-field value. @p rm_op must be Reg or Mem.
 */
void
emitModrm(std::vector<uint8_t> &out, unsigned reg_field,
          const Operand &rm_op)
{
    hipstr_assert(reg_field < 8);
    if (rm_op.isReg()) {
        hipstr_assert(rm_op.reg < 8);
        emit8(out, static_cast<uint8_t>(0xc0 | (reg_field << 3) |
                                        rm_op.reg));
    } else if (rm_op.isMem()) {
        hipstr_assert(rm_op.base < 8);
        if (rm_op.disp == 0) {
            emit8(out, static_cast<uint8_t>(0x00 | (reg_field << 3) |
                                            rm_op.base));
        } else if (fitsSigned(rm_op.disp, 8)) {
            emit8(out, static_cast<uint8_t>(0x40 | (reg_field << 3) |
                                            rm_op.base));
            emit8(out, static_cast<uint8_t>(rm_op.disp));
        } else {
            emit8(out, static_cast<uint8_t>(0x80 | (reg_field << 3) |
                                            rm_op.base));
            emit32(out, static_cast<uint32_t>(rm_op.disp));
        }
    } else {
        hipstr_panic("emitModrm: operand is neither reg nor mem");
    }
}

/**
 * Decode a ModRM byte (+displacement). Returns the number of bytes
 * consumed beyond the ModRM byte itself, or -1 if @p len is too short.
 */
int
decodeModrm(const uint8_t *bytes, size_t len, unsigned &reg_field,
            Operand &rm_op)
{
    if (len < 1)
        return -1;
    uint8_t modrm = bytes[0];
    unsigned mod = modrm >> 6;
    reg_field = (modrm >> 3) & 7;
    unsigned rm = modrm & 7;
    switch (mod) {
      case 3:
        rm_op = Operand::makeReg(static_cast<Reg>(rm));
        return 0;
      case 0:
        rm_op = Operand::makeMem(static_cast<Reg>(rm), 0);
        return 0;
      case 1:
        if (len < 2)
            return -1;
        rm_op = Operand::makeMem(static_cast<Reg>(rm),
                                 static_cast<int8_t>(bytes[1]));
        return 1;
      case 2: {
        if (len < 5)
            return -1;
        uint32_t d;
        std::memcpy(&d, bytes + 1, 4);
        rm_op = Operand::makeMem(static_cast<Reg>(rm),
                                 static_cast<int32_t>(d));
        return 4;
      }
    }
    return -1;
}

uint32_t
read32le(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

} // namespace

bool
encodableCisc(const MachInst &mi)
{
    auto operand_regs_ok = [](const Operand &o) {
        if (o.isReg())
            return o.reg < cisc::kNumRegs;
        if (o.isMem())
            return o.base < cisc::kNumRegs;
        return true;
    };
    if (!operand_regs_ok(mi.dst) || !operand_regs_ok(mi.src1) ||
        !operand_regs_ok(mi.src2)) {
        return false;
    }

    switch (mi.op) {
      case Op::Nop:
      case Op::Ret:
      case Op::Halt:
      case Op::Syscall:
      case Op::Jmp:
      case Op::Call:
      case Op::Jcc:
      case Op::VmExit:
        return true;
      case Op::JmpInd:
      case Op::CallInd:
        return mi.src1.isReg();
      case Op::Push:
        return mi.src1.isReg() || mi.src1.isImm();
      case Op::Pop:
        return mi.dst.isReg();
      case Op::MovHi:
        return false; // Risc-only; Cisc has full imm32 moves
      case Op::Movb:
        if (mi.dst.isReg())
            return mi.src1.isMem();
        if (mi.dst.isMem())
            return mi.src1.isReg() || mi.src1.isImm();
        return false;
      case Op::Mov:
        if (mi.dst.isReg())
            return mi.src1.isReg() || mi.src1.isImm() || mi.src1.isMem();
        if (mi.dst.isMem())
            return mi.src1.isReg() || mi.src1.isImm();
        return false;
      case Op::Lea:
        return mi.dst.isReg() && mi.src1.isMem();
      case Op::Cmp:
        if (mi.src1.isReg() || mi.src1.isMem())
            return mi.src2.isReg() || mi.src2.isImm() ||
                (mi.src1.isReg() && mi.src2.isMem());
        return false;
      case Op::Test:
        return (mi.src1.isReg() || mi.src1.isMem()) &&
            (mi.src2.isReg() || mi.src2.isImm());
      case Op::Shl:
      case Op::Shr:
      case Op::Sar:
        // Two-address. Immediate shifts allow a mem dst; variable
        // shifts require a reg dst.
        if (!(mi.dst == mi.src1))
            return false;
        if (mi.src2.isImm())
            return mi.dst.isReg() || mi.dst.isMem();
        if (mi.src2.isReg())
            return mi.dst.isReg();
        return false;
      case Op::Mul:
      case Op::Divu:
        // Two-address, reg dst; src2 may be reg, mem, or imm.
        return mi.dst.isReg() && mi.dst == mi.src1 &&
            (mi.src2.isReg() || mi.src2.isMem() || mi.src2.isImm());
      case Op::Add:
      case Op::Sub:
      case Op::And:
      case Op::Or:
      case Op::Xor:
        // Two-address; one of dst/src2 may be memory, not both.
        if (!(mi.dst == mi.src1))
            return false;
        if (mi.dst.isReg())
            return mi.src2.isReg() || mi.src2.isImm() || mi.src2.isMem();
        if (mi.dst.isMem())
            return mi.src2.isReg() || mi.src2.isImm();
        return false;
    }
    return false;
}

void
encodeCisc(const MachInst &mi, Addr pc, std::vector<uint8_t> &out)
{
    hipstr_assert(encodableCisc(mi));

    auto rel32_to = [&](unsigned inst_size) {
        return static_cast<uint32_t>(mi.target) -
            (static_cast<uint32_t>(pc) + inst_size);
    };

    switch (mi.op) {
      case Op::Nop:
        emit8(out, 0x90);
        return;
      case Op::Ret:
        emit8(out, 0xc3);
        return;
      case Op::Halt:
        emit8(out, 0xf4);
        return;
      case Op::Syscall:
        emit8(out, 0xcd);
        emit8(out, 0x80);
        return;
      case Op::Push:
        if (mi.src1.isReg()) {
            emit8(out, static_cast<uint8_t>(0x50 + mi.src1.reg));
        } else {
            emit8(out, 0x68);
            emit32(out, static_cast<uint32_t>(mi.src1.disp));
        }
        return;
      case Op::Pop:
        emit8(out, static_cast<uint8_t>(0x58 + mi.dst.reg));
        return;
      case Op::Mov:
        if (mi.dst.isReg() && mi.src1.isImm()) {
            emit8(out, static_cast<uint8_t>(0xb8 + mi.dst.reg));
            emit32(out, static_cast<uint32_t>(mi.src1.disp));
        } else if (mi.dst.isReg() && mi.src1.isMem()) {
            emit8(out, 0x8b);
            emitModrm(out, mi.dst.reg, mi.src1);
        } else if (mi.src1.isReg()) {
            // reg-reg move or store: 0x89 mov rm, r
            emit8(out, 0x89);
            emitModrm(out, mi.src1.reg, mi.dst);
        } else {
            // mem <- imm
            emit8(out, 0xc7);
            emitModrm(out, 0, mi.dst);
            emit32(out, static_cast<uint32_t>(mi.src1.disp));
        }
        return;
      case Op::Movb:
        if (mi.dst.isReg()) {
            emit8(out, 0x8a);
            emitModrm(out, mi.dst.reg, mi.src1);
        } else if (mi.src1.isReg()) {
            emit8(out, 0x88);
            emitModrm(out, mi.src1.reg, mi.dst);
        } else {
            emit8(out, 0xc6);
            emitModrm(out, 0, mi.dst);
            emit8(out, static_cast<uint8_t>(mi.src1.disp));
        }
        return;
      case Op::Lea:
        emit8(out, 0x8d);
        emitModrm(out, mi.dst.reg, mi.src1);
        return;
      case Op::Jmp:
        emit8(out, 0xe9);
        emit32(out, rel32_to(5));
        return;
      case Op::Jcc:
        emit8(out, 0x0f);
        emit8(out, static_cast<uint8_t>(
                  0x80 + kCondToCc[static_cast<unsigned>(mi.cond)]));
        emit32(out, rel32_to(6));
        return;
      case Op::Call:
        emit8(out, 0xe8);
        emit32(out, rel32_to(5));
        return;
      case Op::JmpInd:
        emit8(out, 0xff);
        emitModrm(out, 4, mi.src1);
        return;
      case Op::CallInd:
        emit8(out, 0xff);
        emitModrm(out, 2, mi.src1);
        return;
      case Op::VmExit:
        emit8(out, 0x0f);
        emit8(out, 0x0b);
        emit32(out, static_cast<uint32_t>(mi.src1.disp));
        return;
      case Op::Cmp:
      case Op::Test:
      case Op::Add:
      case Op::Sub:
      case Op::And:
      case Op::Or:
      case Op::Xor: {
        // For Cmp/Test the "dst" position is src1 (no write-back).
        const Operand &lhs = (mi.op == Op::Cmp || mi.op == Op::Test)
            ? mi.src1 : mi.dst;
        if (mi.op == Op::Test) {
            if (mi.src2.isReg()) {
                emit8(out, 0x85);
                emitModrm(out, mi.src2.reg, lhs);
            } else {
                emit8(out, 0xf7);
                emitModrm(out, 0, lhs);
                emit32(out, static_cast<uint32_t>(mi.src2.disp));
            }
            return;
        }
        const AluEnc *enc = findAluEnc(mi.op);
        hipstr_assert(enc != nullptr);
        if (mi.src2.isImm()) {
            if (fitsSigned(mi.src2.disp, 8)) {
                emit8(out, 0x83);
                emitModrm(out, enc->immExt, lhs);
                emit8(out, static_cast<uint8_t>(mi.src2.disp));
            } else {
                emit8(out, 0x81);
                emitModrm(out, enc->immExt, lhs);
                emit32(out, static_cast<uint32_t>(mi.src2.disp));
            }
        } else if (mi.src2.isMem()) {
            // r, rm form
            emit8(out, enc->rmOpcode);
            emitModrm(out, lhs.reg, mi.src2);
        } else {
            // rm, r form
            emit8(out, enc->mrOpcode);
            emitModrm(out, mi.src2.reg, lhs);
        }
        return;
      }
      case Op::Shl:
      case Op::Shr:
      case Op::Sar: {
        uint8_t ext;
        shiftExt(mi.op, ext);
        if (mi.src2.isImm()) {
            emit8(out, 0xc1);
            emitModrm(out, ext, mi.dst);
            emit8(out, static_cast<uint8_t>(mi.src2.disp));
        } else {
            emit8(out, 0x0f);
            emit8(out, static_cast<uint8_t>(0xb8 + (ext - 4)));
            emitModrm(out, mi.src2.reg, mi.dst);
        }
        return;
      }
      case Op::Mul:
        if (mi.src2.isImm()) {
            emit8(out, 0x69);
            emitModrm(out, mi.dst.reg, mi.dst);
            emit32(out, static_cast<uint32_t>(mi.src2.disp));
        } else {
            emit8(out, 0x0f);
            emit8(out, 0xaf);
            emitModrm(out, mi.dst.reg, mi.src2);
        }
        return;
      case Op::Divu:
        if (mi.src2.isImm()) {
            emit8(out, 0x0f);
            emit8(out, 0xf7);
            emitModrm(out, mi.dst.reg, mi.dst);
            emit32(out, static_cast<uint32_t>(mi.src2.disp));
        } else {
            emit8(out, 0x0f);
            emit8(out, 0xf6);
            emitModrm(out, mi.dst.reg, mi.src2);
        }
        return;
      case Op::MovHi:
        hipstr_panic("MovHi is not encodable on Cisc");
      default:
        hipstr_panic("encodeCisc: unhandled op %s", opName(mi.op));
    }
}

unsigned
sizeCisc(const MachInst &mi)
{
    std::vector<uint8_t> tmp;
    tmp.reserve(12);
    encodeCisc(mi, 0, tmp);
    return static_cast<unsigned>(tmp.size());
}

bool
decodeCisc(const uint8_t *bytes, size_t len, Addr pc, MachInst &out)
{
    if (len == 0)
        return false;

    out = MachInst{};
    uint8_t opc = bytes[0];

    auto finish = [&](unsigned size) {
        out.size = static_cast<uint8_t>(size);
        return true;
    };

    // Single-byte opcodes. The long alias tail mirrors x86's dense
    // one-byte rows (flag ops, BCD adjusts, accumulator-immediate
    // ALU forms, adc/sbb, xchg): they keep unaligned decode alive the
    // way real x86 does, which is what populates the unintentional
    // gadget space the paper measures. Aliased semantics are
    // approximated with existing ops (decoder-only; the assembler
    // never emits them).
    switch (opc) {
      case 0x27: case 0x2f: case 0x37: case 0x3f: // daa/das/aaa/aas
      case 0x98: case 0x99: case 0x9b: case 0x9e: // cwde/cdq/wait/sahf
      case 0x9f: case 0xf5: case 0xf8: case 0xf9: // lahf/cmc/clc/stc
      case 0xfa: case 0xfb: case 0xfc: case 0xfd: // cli/sti/cld/std
        out.op = Op::Nop;
        return finish(1);
      case 0x90: out.op = Op::Nop; return finish(1);
      case 0xc3: out.op = Op::Ret; return finish(1);
      case 0xc2: // ret imm16 (decoder-only; stack-adjust approximated)
        if (len < 3)
            return false;
        out.op = Op::Ret;
        return finish(3);
      case 0xf4: out.op = Op::Halt; return finish(1);
      default: break;
    }
    if (opc >= 0x40 && opc <= 0x47) {
        // inc r (decoder-only alias; re-encodes as add r, 1)
        Operand r = Operand::makeReg(static_cast<Reg>(opc - 0x40));
        out.op = Op::Add;
        out.dst = r;
        out.src1 = r;
        out.src2 = Operand::makeImm(1);
        return finish(1);
    }
    if (opc >= 0x48 && opc <= 0x4f) {
        Operand r = Operand::makeReg(static_cast<Reg>(opc - 0x48));
        out.op = Op::Sub;
        out.dst = r;
        out.src1 = r;
        out.src2 = Operand::makeImm(1);
        return finish(1);
    }
    if (opc >= 0x50 && opc <= 0x57) {
        out.op = Op::Push;
        out.src1 = Operand::makeReg(static_cast<Reg>(opc - 0x50));
        return finish(1);
    }
    if (opc >= 0x58 && opc <= 0x5f) {
        out.op = Op::Pop;
        out.dst = Operand::makeReg(static_cast<Reg>(opc - 0x58));
        return finish(1);
    }
    if (opc == 0xcd) {
        if (len < 2 || bytes[1] != 0x80)
            return false;
        out.op = Op::Syscall;
        return finish(2);
    }
    if (opc >= 0xb8 && opc <= 0xbf) {
        if (len < 5)
            return false;
        out.op = Op::Mov;
        out.dst = Operand::makeReg(static_cast<Reg>(opc - 0xb8));
        out.src1 = Operand::makeImm(
            static_cast<int32_t>(read32le(bytes + 1)));
        return finish(5);
    }
    if (opc == 0x68) {
        if (len < 5)
            return false;
        out.op = Op::Push;
        out.src1 = Operand::makeImm(
            static_cast<int32_t>(read32le(bytes + 1)));
        return finish(5);
    }
    if (opc == 0x6a) { // push imm8 (decoder-only alias)
        if (len < 2)
            return false;
        out.op = Op::Push;
        out.src1 = Operand::makeImm(static_cast<int8_t>(bytes[1]));
        return finish(2);
    }
    {
        // Accumulator-immediate ALU rows: op ax, imm8 / imm32
        // (decoder-only aliases; adc/sbb approximate to add/sub).
        struct AccImm { uint8_t opc; Op op; bool wide; };
        static const AccImm acc_imm[] = {
            { 0x04, Op::Add, false }, { 0x05, Op::Add, true },
            { 0x0c, Op::Or, false },  { 0x0d, Op::Or, true },
            { 0x14, Op::Add, false }, { 0x15, Op::Add, true },
            { 0x1c, Op::Sub, false }, { 0x1d, Op::Sub, true },
            { 0x24, Op::And, false }, { 0x25, Op::And, true },
            { 0x2c, Op::Sub, false }, { 0x2d, Op::Sub, true },
            { 0x34, Op::Xor, false }, { 0x35, Op::Xor, true },
            { 0x3c, Op::Cmp, false }, { 0x3d, Op::Cmp, true },
            { 0xa8, Op::Test, false }, { 0xa9, Op::Test, true },
        };
        for (const AccImm &ai : acc_imm) {
            if (ai.opc != opc)
                continue;
            unsigned imm_len = ai.wide ? 4 : 1;
            if (len < 1 + imm_len)
                return false;
            int32_t imm = ai.wide
                ? static_cast<int32_t>(read32le(bytes + 1))
                : static_cast<int32_t>(static_cast<int8_t>(bytes[1]));
            Operand ax = Operand::makeReg(cisc::AX);
            out.op = ai.op;
            if (ai.op == Op::Cmp || ai.op == Op::Test) {
                out.src1 = ax;
            } else {
                out.dst = ax;
                out.src1 = ax;
            }
            out.src2 = Operand::makeImm(imm);
            return finish(1 + imm_len);
        }
    }
    if (opc >= 0x10 && opc <= 0x13) { // adc -> add alias
        if (!((opc & 1) ? true : true))
            return false;
        unsigned reg_f;
        Operand rm;
        int ex = decodeModrm(bytes + 1, len - 1, reg_f, rm);
        if (ex < 0)
            return false;
        Operand reg = Operand::makeReg(static_cast<Reg>(reg_f));
        out.op = Op::Add;
        if (opc <= 0x11) {
            out.dst = rm;
            out.src1 = rm;
            out.src2 = reg;
        } else {
            out.dst = reg;
            out.src1 = reg;
            out.src2 = rm;
        }
        return finish(2 + ex);
    }
    if (opc >= 0x18 && opc <= 0x1b) { // sbb -> sub alias
        unsigned reg_f;
        Operand rm;
        int ex = decodeModrm(bytes + 1, len - 1, reg_f, rm);
        if (ex < 0)
            return false;
        Operand reg = Operand::makeReg(static_cast<Reg>(reg_f));
        out.op = Op::Sub;
        if (opc <= 0x19) {
            out.dst = rm;
            out.src1 = rm;
            out.src2 = reg;
        } else {
            out.dst = reg;
            out.src1 = reg;
            out.src2 = rm;
        }
        return finish(2 + ex);
    }
    if (opc >= 0x91 && opc <= 0x97) { // xchg ax, r -> mov alias
        out.op = Op::Mov;
        out.dst = Operand::makeReg(static_cast<Reg>(opc - 0x90));
        out.src1 = Operand::makeReg(cisc::AX);
        return finish(1);
    }
    if (opc == 0xe8 || opc == 0xe9) {
        if (len < 5)
            return false;
        out.op = (opc == 0xe8) ? Op::Call : Op::Jmp;
        out.target = pc + 5 + read32le(bytes + 1);
        return finish(5);
    }
    if (opc == 0xeb) {
        if (len < 2)
            return false;
        out.op = Op::Jmp;
        out.target = pc + 2 +
            static_cast<uint32_t>(
                static_cast<int32_t>(static_cast<int8_t>(bytes[1])));
        return finish(2);
    }
    if (opc >= 0x70 && opc <= 0x7f) {
        Cond c;
        if (!ccToCond(opc & 0x0f, c) || len < 2)
            return false;
        out.op = Op::Jcc;
        out.cond = c;
        out.target = pc + 2 +
            static_cast<uint32_t>(
                static_cast<int32_t>(static_cast<int8_t>(bytes[1])));
        return finish(2);
    }

    // ModRM-based single-byte opcodes.
    unsigned reg_field;
    Operand rm_op;
    auto modrm_decode = [&](int &extra) {
        extra = decodeModrm(bytes + 1, len - 1, reg_field, rm_op);
        return extra >= 0;
    };
    int extra;

    switch (opc) {
      case 0x89: // mov rm, r
        if (!modrm_decode(extra))
            return false;
        out.op = Op::Mov;
        out.dst = rm_op;
        out.src1 = Operand::makeReg(static_cast<Reg>(reg_field));
        return finish(2 + extra);
      case 0x8b: // mov r, rm
        if (!modrm_decode(extra))
            return false;
        out.op = Op::Mov;
        out.dst = Operand::makeReg(static_cast<Reg>(reg_field));
        out.src1 = rm_op;
        return finish(2 + extra);
      case 0xc7: // mov rm, imm32
        if (!modrm_decode(extra) || reg_field != 0)
            return false;
        if (len < static_cast<size_t>(2 + extra + 4))
            return false;
        out.op = Op::Mov;
        out.dst = rm_op;
        out.src1 = Operand::makeImm(
            static_cast<int32_t>(read32le(bytes + 2 + extra)));
        return finish(2 + extra + 4);
      case 0x8a: // movb r, m8
        if (!modrm_decode(extra) || !rm_op.isMem())
            return false;
        out.op = Op::Movb;
        out.dst = Operand::makeReg(static_cast<Reg>(reg_field));
        out.src1 = rm_op;
        return finish(2 + extra);
      case 0x88: // movb m8, r
        if (!modrm_decode(extra) || !rm_op.isMem())
            return false;
        out.op = Op::Movb;
        out.dst = rm_op;
        out.src1 = Operand::makeReg(static_cast<Reg>(reg_field));
        return finish(2 + extra);
      case 0xc6: // movb m8, imm8
        if (!modrm_decode(extra) || reg_field != 0 || !rm_op.isMem())
            return false;
        if (len < static_cast<size_t>(2 + extra) + 1)
            return false;
        out.op = Op::Movb;
        out.dst = rm_op;
        out.src1 = Operand::makeImm(bytes[2 + extra]);
        return finish(2 + extra + 1);
      case 0x8d: // lea r, m
        if (!modrm_decode(extra) || !rm_op.isMem())
            return false;
        out.op = Op::Lea;
        out.dst = Operand::makeReg(static_cast<Reg>(reg_field));
        out.src1 = rm_op;
        return finish(2 + extra);
      case 0x84: // test rm8, r8 (decoder-only alias)
      case 0x85: // test rm, r
        if (!modrm_decode(extra))
            return false;
        out.op = Op::Test;
        out.src1 = rm_op;
        out.src2 = Operand::makeReg(static_cast<Reg>(reg_field));
        return finish(2 + extra);
      case 0x86: // xchg rm8, r (decoder-only alias -> mov)
      case 0x87: // xchg rm, r
        if (!modrm_decode(extra))
            return false;
        out.op = Op::Mov;
        out.dst = rm_op;
        out.src1 = Operand::makeReg(static_cast<Reg>(reg_field));
        return finish(2 + extra);
      case 0xf7: // test rm, imm32
        if (!modrm_decode(extra) || reg_field != 0)
            return false;
        if (len < static_cast<size_t>(2 + extra + 4))
            return false;
        out.op = Op::Test;
        out.src1 = rm_op;
        out.src2 = Operand::makeImm(
            static_cast<int32_t>(read32le(bytes + 2 + extra)));
        return finish(2 + extra + 4);
      case 0x80: // group 1 byte-imm (decoder-only alias)
      case 0x81:
      case 0x83: { // ALU rm, imm
        if (!modrm_decode(extra))
            return false;
        const AluEnc *enc = findAluByExt(static_cast<uint8_t>(reg_field));
        if (enc == nullptr)
            return false;
        unsigned imm_size = (opc == 0x81) ? 4 : 1;
        // 0x80 reuses the byte-immediate path below.
        if (len < static_cast<size_t>(2 + extra) + imm_size)
            return false;
        int32_t imm = (opc == 0x81)
            ? static_cast<int32_t>(read32le(bytes + 2 + extra))
            : static_cast<int32_t>(
                  static_cast<int8_t>(bytes[2 + extra]));
        out.op = enc->op;
        if (enc->op == Op::Cmp) {
            out.src1 = rm_op;
        } else {
            out.dst = rm_op;
            out.src1 = rm_op;
        }
        out.src2 = Operand::makeImm(imm);
        return finish(2 + extra + imm_size);
      }
      case 0xc1: { // shift rm, imm8
        if (!modrm_decode(extra))
            return false;
        Op shift_op;
        if (!extToShift(static_cast<uint8_t>(reg_field), shift_op))
            return false;
        if (len < static_cast<size_t>(2 + extra) + 1)
            return false;
        out.op = shift_op;
        out.dst = rm_op;
        out.src1 = rm_op;
        out.src2 = Operand::makeImm(bytes[2 + extra]);
        return finish(2 + extra + 1);
      }
      case 0x69: { // mul r, rm, imm32
        if (!modrm_decode(extra))
            return false;
        if (len < static_cast<size_t>(2 + extra + 4))
            return false;
        out.op = Op::Mul;
        out.dst = Operand::makeReg(static_cast<Reg>(reg_field));
        out.src1 = rm_op;
        out.src2 = Operand::makeImm(
            static_cast<int32_t>(read32le(bytes + 2 + extra)));
        return finish(2 + extra + 4);
      }
      case 0xff: // group 5: inc/dec/call/jmp/push rm
        if (!modrm_decode(extra))
            return false;
        switch (reg_field) {
          case 0: // inc rm (decoder-only alias)
          case 1: // dec rm
            out.op = reg_field == 0 ? Op::Add : Op::Sub;
            out.dst = rm_op;
            out.src1 = rm_op;
            out.src2 = Operand::makeImm(1);
            return finish(2 + extra);
          case 2:
            if (!rm_op.isReg())
                return false;
            out.op = Op::CallInd;
            out.src1 = rm_op;
            return finish(2 + extra);
          case 4:
            if (!rm_op.isReg())
                return false;
            out.op = Op::JmpInd;
            out.src1 = rm_op;
            return finish(2 + extra);
          case 6: // push rm (decoder-only alias)
            out.op = Op::Push;
            out.src1 = rm_op;
            return finish(2 + extra);
          default:
            return false;
        }
      default:
        break;
    }

    // ALU rm,r / r,rm groups.
    if (const AluEnc *enc = findAluByMr(opc)) {
        if (!modrm_decode(extra))
            return false;
        out.op = enc->op;
        if (enc->op == Op::Cmp) {
            out.src1 = rm_op;
        } else {
            out.dst = rm_op;
            out.src1 = rm_op;
        }
        out.src2 = Operand::makeReg(static_cast<Reg>(reg_field));
        return finish(2 + extra);
    }
    if (const AluEnc *enc = findAluByRm(opc)) {
        if (!modrm_decode(extra))
            return false;
        Operand reg = Operand::makeReg(static_cast<Reg>(reg_field));
        out.op = enc->op;
        if (enc->op == Op::Cmp) {
            out.src1 = reg;
        } else {
            out.dst = reg;
            out.src1 = reg;
        }
        out.src2 = rm_op;
        return finish(2 + extra);
    }

    // Two-byte 0x0F escape group.
    if (opc == 0x0f) {
        if (len < 2)
            return false;
        uint8_t sub = bytes[1];
        if (sub >= 0x80 && sub <= 0x8f) {
            Cond c;
            if (!ccToCond(sub & 0x0f, c) || len < 6)
                return false;
            out.op = Op::Jcc;
            out.cond = c;
            out.target = pc + 6 + read32le(bytes + 2);
            return finish(6);
        }
        if (sub == 0x0b) {
            if (len < 6)
                return false;
            out.op = Op::VmExit;
            out.src1 = Operand::makeImm(
                static_cast<int32_t>(read32le(bytes + 2)));
            return finish(6);
        }
        if (sub == 0xaf || sub == 0xf6) {
            extra = decodeModrm(bytes + 2, len - 2, reg_field, rm_op);
            if (extra < 0)
                return false;
            Operand dreg = Operand::makeReg(static_cast<Reg>(reg_field));
            out.op = (sub == 0xaf) ? Op::Mul : Op::Divu;
            out.dst = dreg;
            out.src1 = dreg;
            out.src2 = rm_op;
            return finish(3 + extra);
        }
        if (sub == 0xf7) { // divu r, imm32
            extra = decodeModrm(bytes + 2, len - 2, reg_field, rm_op);
            if (extra < 0 || !rm_op.isReg() ||
                rm_op.reg != static_cast<Reg>(reg_field)) {
                return false;
            }
            if (len < static_cast<size_t>(3 + extra + 4))
                return false;
            Operand dreg = Operand::makeReg(static_cast<Reg>(reg_field));
            out.op = Op::Divu;
            out.dst = dreg;
            out.src1 = dreg;
            out.src2 = Operand::makeImm(
                static_cast<int32_t>(read32le(bytes + 3 + extra)));
            return finish(3 + extra + 4);
        }
        if (sub >= 0xb8 && sub <= 0xbb) { // variable shift
            Op shift_op;
            if (!extToShift(static_cast<uint8_t>(4 + (sub - 0xb8)),
                            shift_op)) {
                return false;
            }
            extra = decodeModrm(bytes + 2, len - 2, reg_field, rm_op);
            if (extra < 0 || !rm_op.isReg())
                return false;
            out.op = shift_op;
            out.dst = rm_op;
            out.src1 = rm_op;
            out.src2 = Operand::makeReg(static_cast<Reg>(reg_field));
            return finish(3 + extra);
        }
        return false;
    }

    return false;
}

} // namespace detail
} // namespace hipstr
