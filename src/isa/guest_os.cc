#include "guest_os.hh"

#include "support/logging.hh"

namespace hipstr
{

void
GuestOs::emit(uint8_t b)
{
    _outputHash ^= b;
    _outputHash *= 0x100000001b3ull;
    ++_totalOutputBytes;
    _output.push_back(b);
    // Amortized trim: let the buffer run to twice the cap, then drop
    // the oldest bytes in one erase. The retained window is a pure
    // function of (stream, cap) — never of when callers observed it.
    if (_outputCap != 0 && _output.size() > 2 * _outputCap) {
        _output.erase(_output.begin(),
                      _output.begin() +
                          static_cast<std::ptrdiff_t>(_output.size() -
                                                      _outputCap));
    }
}

std::vector<uint8_t>
GuestOs::drainOutput()
{
    std::vector<uint8_t> drained = std::move(_output);
    _output.clear();
    return drained;
}

bool
GuestOs::handleSyscall(MachineState &state, Memory &mem)
{
    (void)mem;
    const IsaDescriptor &desc = isaDescriptor(state.isa);
    uint32_t number = state.reg(desc.retReg);
    uint32_t a1 = state.reg(desc.argRegs[1]);
    uint32_t a2 = state.reg(desc.argRegs[2]);
    uint32_t a3 = state.reg(desc.argRegs[3]);

    switch (static_cast<SyscallNo>(number)) {
      case SyscallNo::Exit:
        _exited = true;
        _exitCode = a1;
        return false;
      case SyscallNo::WriteBuf: {
        uint32_t len = a2 > 4096 ? 4096 : a2;
        // Validate the whole buffer before the first emit: a bad
        // guest pointer is the guest's bug, answered with -1 and no
        // partial output — never a host-side Fault mid-stream.
        if (!mem.rangeAccessible(a1, len, PermR)) {
            state.setReg(desc.retReg, static_cast<uint32_t>(-1));
            return true;
        }
        for (uint32_t i = 0; i < len; ++i)
            emit(mem.read8(a1 + i));
        emit(static_cast<uint8_t>(a3));
        state.setReg(desc.retReg, len);
        return true;
      }
      case SyscallNo::WriteByte:
        emit(static_cast<uint8_t>(a1));
        state.setReg(desc.retReg, 1);
        return true;
      case SyscallNo::WriteWord:
        emit(static_cast<uint8_t>(a1));
        emit(static_cast<uint8_t>(a1 >> 8));
        emit(static_cast<uint8_t>(a1 >> 16));
        emit(static_cast<uint8_t>(a1 >> 24));
        state.setReg(desc.retReg, 4);
        return true;
      case SyscallNo::Brk: {
        uint32_t old = _brk;
        if (a1 > _brk && a1 < layout::kStackLimit)
            _brk = a1;
        state.setReg(desc.retReg, old);
        return true;
      }
      case SyscallNo::Execve:
        _execveFired = true;
        _execveArgs = { a1, a2, a3 };
        return false;
      case SyscallNo::SetJmp: {
        // jmp_buf: [sp, resume, value, callee-saved...]. Physical
        // register state is captured, which makes the buffer valid
        // under any relocation map of the same randomization
        // generation (the map renames uses, not the registers'
        // identities at a syscall boundary).
        const uint32_t buf_len = 12 +
            4 * static_cast<uint32_t>(desc.calleeSaved.size());
        if (!mem.rangeAccessible(a1, buf_len, PermW)) {
            state.setReg(desc.retReg, static_cast<uint32_t>(-1));
            return true;
        }
        mem.write32(a1 + 0, state.sp());
        mem.write32(a1 + 4, a2);
        mem.write32(a1 + 8, 0);
        const auto &saved = desc.calleeSaved;
        for (size_t i = 0; i < saved.size(); ++i)
            mem.write32(a1 + 12 + 4 * static_cast<uint32_t>(i),
                        state.reg(saved[i]));
        state.setReg(desc.retReg, 0);
        return true;
      }
      case SyscallNo::LongJmp: {
        // The buffer must be readable throughout and writable at the
        // value slot before any register or pc is touched — a corrupt
        // jmp_buf pointer must not half-restore the machine.
        const uint32_t buf_len = 12 +
            4 * static_cast<uint32_t>(desc.calleeSaved.size());
        if (!mem.rangeAccessible(a1, buf_len, PermR) ||
            !mem.rangeAccessible(a1 + 8, 4, PermW)) {
            state.setReg(desc.retReg, static_cast<uint32_t>(-1));
            return true;
        }
        uint32_t sp = mem.read32(a1 + 0);
        Addr resume = mem.read32(a1 + 4);
        mem.write32(a1 + 8, a2 ? a2 : 1);
        const auto &saved = desc.calleeSaved;
        for (size_t i = 0; i < saved.size(); ++i)
            state.setReg(saved[i],
                         mem.read32(a1 + 12 +
                                    4 * static_cast<uint32_t>(i)));
        state.setSp(sp);
        state.pc = resume;
        _redirected = true;
        return true;
      }
      case SyscallNo::Getpid:
        state.setReg(desc.retReg, 4242);
        return true;
      default:
        // Unknown syscall: return -1, keep running (like ENOSYS).
        state.setReg(desc.retReg, static_cast<uint32_t>(-1));
        return true;
    }
}

void
GuestOs::saveState(ByteWriter &w) const
{
    w.boolean(_redirected);
    w.u64(_outputHash);
    w.u64(_totalOutputBytes);
    w.boolean(_exited);
    w.u32(_exitCode);
    w.boolean(_execveFired);
    for (uint32_t a : _execveArgs)
        w.u32(a);
    w.u32(_brk);
    w.u32(uint32_t(_output.size()));
    w.bytes(_output.data(), _output.size());
}

void
GuestOs::loadState(ByteReader &r)
{
    _redirected = r.boolean();
    _outputHash = r.u64();
    _totalOutputBytes = r.u64();
    _exited = r.boolean();
    _exitCode = r.u32();
    _execveFired = r.boolean();
    for (uint32_t &a : _execveArgs)
        a = r.u32();
    _brk = r.u32();
    uint32_t retained = r.u32();
    _output.resize(retained);
    r.bytes(_output.data(), retained);
}

void
GuestOs::reset()
{
    _output.clear();
    _outputHash = 0xcbf29ce484222325ull;
    _totalOutputBytes = 0;
    _exited = false;
    _exitCode = 0;
    _execveFired = false;
    _execveArgs = {};
    _redirected = false;
    _brk = layout::kHeapBase;
}

} // namespace hipstr
