/**
 * @file
 * libquantum-like workload: quantum register simulation.
 *
 * Mirrors libquantum's kernel: gate applications as bit-twiddling
 * sweeps over a state-amplitude array — XOR/shift/AND dominated inner
 * loops with data-dependent conditionals on bit tests.
 */

#include "workloads/workloads.hh"

#include "workloads/detail.hh"

namespace hipstr
{

using namespace wldetail;

IrModule
buildLibquantum(const WorkloadConfig &cfg)
{
    IrModule m;
    m.name = "libquantum";
    IrBuilder b(m);

    constexpr int32_t kStates = 512;
    uint32_t g_amp = b.addGlobal("amplitude", kStates * 4);

    uint32_t fn_init = b.declareFunction("init_register", 1);
    uint32_t fn_not = b.declareFunction("gate_not", 1);
    uint32_t fn_cnot = b.declareFunction("gate_cnot", 2);
    uint32_t fn_phase = b.declareFunction("gate_phase", 2);
    uint32_t fn_measure = b.declareFunction("measure", 0);
    uint32_t fn_main = b.declareFunction("main", 0);
    b.setEntry(fn_main);

    b.beginFunction(fn_init);
    {
        ValueId s = b.copy(b.param(0));
        ValueId amp = b.globalAddr(g_amp);
        LoopBuilder loop(b, 0, kStates);
        {
            lcgStep(b, s);
            b.store(b.add(amp, b.shlI(loop.index(), 2)),
                    b.shrI(s, 4));
        }
        loop.finish();
        b.ret(s);
    }
    b.endFunction();

    // gate_not(target): amplitude swap between |..0..> and |..1..>.
    b.beginFunction(fn_not);
    {
        ValueId target = b.param(0);
        ValueId amp = b.globalAddr(g_amp);
        ValueId mask = b.shl(b.constI(1), target);
        LoopBuilder loop(b, 0, kStates);
        {
            ValueId bit = b.and_(loop.index(), mask);
            uint32_t swap_bb = b.newBlock(), next = b.newBlock();
            // Swap each pair once: act when the bit is clear.
            b.condBrI(Cond::Eq, bit, 0, swap_bb, next);
            b.setBlock(swap_bb);
            ValueId partner = b.or_(loop.index(), mask);
            ValueId off_a = b.shlI(loop.index(), 2);
            ValueId off_b = b.shlI(partner, 2);
            ValueId va = b.load(b.add(amp, off_a));
            ValueId vb = b.load(b.add(amp, off_b));
            b.store(b.add(amp, off_a), vb);
            b.store(b.add(amp, off_b), va);
            b.br(next);
            b.setBlock(next);
        }
        loop.finish();
        b.ret();
    }
    b.endFunction();

    // gate_cnot(control, target): conditional NOT.
    b.beginFunction(fn_cnot);
    {
        ValueId control = b.param(0);
        ValueId target = b.param(1);
        ValueId amp = b.globalAddr(g_amp);
        ValueId cmask = b.shl(b.constI(1), control);
        ValueId tmask = b.shl(b.constI(1), target);
        LoopBuilder loop(b, 0, kStates);
        {
            ValueId cbit = b.and_(loop.index(), cmask);
            ValueId tbit = b.and_(loop.index(), tmask);
            uint32_t check = b.newBlock(), swap_bb = b.newBlock(),
                     next = b.newBlock();
            b.condBrI(Cond::Ne, cbit, 0, check, next);
            b.setBlock(check);
            b.condBrI(Cond::Eq, tbit, 0, swap_bb, next);
            b.setBlock(swap_bb);
            ValueId partner = b.or_(loop.index(), tmask);
            ValueId off_a = b.shlI(loop.index(), 2);
            ValueId off_b = b.shlI(partner, 2);
            ValueId va = b.load(b.add(amp, off_a));
            ValueId vb = b.load(b.add(amp, off_b));
            b.store(b.add(amp, off_a), vb);
            b.store(b.add(amp, off_b), va);
            b.br(next);
            b.setBlock(next);
        }
        loop.finish();
        b.ret();
    }
    b.endFunction();

    // gate_phase(target, rot): "rotate" amplitudes where bit set.
    b.beginFunction(fn_phase);
    {
        ValueId target = b.param(0);
        ValueId rot = b.param(1);
        ValueId amp = b.globalAddr(g_amp);
        ValueId mask = b.shl(b.constI(1), target);
        LoopBuilder loop(b, 0, kStates);
        {
            ValueId bit = b.and_(loop.index(), mask);
            uint32_t rot_bb = b.newBlock(), next = b.newBlock();
            b.condBrI(Cond::Ne, bit, 0, rot_bb, next);
            b.setBlock(rot_bb);
            ValueId off = b.shlI(loop.index(), 2);
            ValueId v = b.load(b.add(amp, off));
            ValueId rotated =
                b.or_(b.shl(v, rot),
                      b.shr(v, b.sub(b.constI(32), rot)));
            b.store(b.add(amp, off), b.xorI(rotated, 0x9e37));
            b.br(next);
            b.setBlock(next);
        }
        loop.finish();
        b.ret();
    }
    b.endFunction();

    b.beginFunction(fn_measure);
    {
        ValueId amp = b.globalAddr(g_amp);
        uint32_t part_obj = b.addFrameObject("partials", 8 * 4);
        ValueId partials = b.frameAddr(part_obj);
        LoopBuilder zero(b, 0, 8);
        b.store(b.add(partials, b.shlI(zero.index(), 2)),
                b.constI(0x811c9dc5));
        zero.finish();
        LoopBuilder loop(b, 0, kStates);
        {
            ValueId v =
                b.load(b.add(amp, b.shlI(loop.index(), 2)));
            ValueId slot = b.add(
                partials, b.shlI(b.andI(loop.index(), 7), 2));
            ValueId acc = b.load(slot);
            b.assignBinop(IrOp::Xor, acc, acc, v);
            b.assignBinopI(IrOp::Mul, acc, acc, 16777619);
            b.store(slot, acc);
        }
        loop.finish();
        ValueId h = b.constI(0x811c9dc5);
        LoopBuilder fold(b, 0, 8);
        {
            fnvMix(b, h,
                   b.load(b.add(partials,
                                b.shlI(fold.index(), 2))));
        }
        fold.finish();
        b.ret(h);
    }
    b.endFunction();

    b.beginFunction(fn_main);
    {
        ValueId h = b.constI(0x811c9dc5);
        ValueId s = b.constI(static_cast<int32_t>(cfg.seed ^ 0x71));
        b.assign(s, b.call(fn_init, { s }));
        LoopBuilder circuit(b, 0,
                            static_cast<int32_t>(6 * cfg.scale));
        {
            ValueId q1 = b.andI(circuit.index(), 7);
            ValueId q2 = b.andI(b.addI(circuit.index(), 3), 7);
            ValueId rot = b.addI(b.andI(circuit.index(), 3), 1);
            b.callVoid(fn_not, { q1 });
            b.callVoid(fn_cnot, { q1, q2 });
            b.callVoid(fn_phase, { q2, rot });
            ValueId mv = b.call(fn_measure, {});
            fnvMix(b, h, mv);
        }
        circuit.finish();
        finishMain(b, h);
    }
    b.endFunction();

    return m;
}

} // namespace hipstr
