/**
 * @file
 * hmmer-like workload: profile-HMM dynamic programming.
 *
 * Mirrors hmmer's Viterbi kernel: a row-by-row DP recurrence with
 * max-selection between match/insert/delete transitions, word-array
 * traffic, and a tight inner loop that dominates execution.
 */

#include "workloads/workloads.hh"

#include "workloads/detail.hh"

namespace hipstr
{

using namespace wldetail;

IrModule
buildHmmer(const WorkloadConfig &cfg)
{
    IrModule m;
    m.name = "hmmer";
    IrBuilder b(m);

    constexpr int32_t kStates = 48;
    uint32_t g_match = b.addGlobal("match_score", kStates * 4);
    uint32_t g_ins = b.addGlobal("insert_score", kStates * 4);
    uint32_t g_prev = b.addGlobal("row_prev", kStates * 4);
    uint32_t g_cur = b.addGlobal("row_cur", kStates * 4);

    uint32_t fn_init = b.declareFunction("init_model", 1);
    uint32_t fn_row = b.declareFunction("viterbi_row", 1);
    uint32_t fn_swap = b.declareFunction("swap_rows", 0);
    uint32_t fn_main = b.declareFunction("main", 0);
    b.setEntry(fn_main);

    // init_model(seed): pseudo-random transition scores.
    b.beginFunction(fn_init);
    {
        ValueId s = b.copy(b.param(0));
        ValueId match = b.globalAddr(g_match);
        ValueId ins = b.globalAddr(g_ins);
        ValueId prev = b.globalAddr(g_prev);
        LoopBuilder loop(b, 0, kStates);
        {
            ValueId off = b.shlI(loop.index(), 2);
            lcgStep(b, s);
            b.store(b.add(match, off), b.andI(b.shrI(s, 12), 63));
            lcgStep(b, s);
            b.store(b.add(ins, off), b.andI(b.shrI(s, 12), 31));
            b.store(b.add(prev, off), b.constI(0));
        }
        loop.finish();
        b.ret(s);
    }
    b.endFunction();

    // viterbi_row(sym): one DP row; returns the row maximum. The
    // emission table lives in the frame (hmmer keeps per-row scratch
    // on the stack), so its address is live across the DP loop.
    b.beginFunction(fn_row);
    {
        ValueId sym = b.param(0);
        ValueId match = b.globalAddr(g_match);
        ValueId ins = b.globalAddr(g_ins);
        ValueId prev = b.globalAddr(g_prev);
        ValueId cur = b.globalAddr(g_cur);
        ValueId row_max = b.constI(0);
        uint32_t emit_obj = b.addFrameObject("emit_cache", 16 * 4);
        ValueId emit = b.frameAddr(emit_obj);
        LoopBuilder fill(b, 0, 16);
        {
            ValueId e = b.andI(b.xor_(sym, fill.index()), 15);
            b.store(b.add(emit, b.shlI(fill.index(), 2)), e);
        }
        fill.finish();

        // State 0 seeds from the symbol.
        b.store(cur, b.andI(sym, 127));

        LoopBuilder loop(b, 1, kStates);
        {
            ValueId off = b.shlI(loop.index(), 2);
            ValueId off_prev = b.shlI(b.subI(loop.index(), 1), 2);
            ValueId from_match = b.add(
                b.load(b.add(prev, off_prev)),
                b.load(b.add(match, off)));
            ValueId from_ins = b.add(b.load(b.add(prev, off)),
                                     b.load(b.add(ins, off)));
            // best = max(from_match, from_ins)
            ValueId best = b.copy(from_match);
            uint32_t take_ins = b.newBlock(), store_bb = b.newBlock();
            b.condBr(Cond::Gt, from_ins, from_match, take_ins,
                     store_bb);
            b.setBlock(take_ins);
            b.assign(best, from_ins);
            b.br(store_bb);
            b.setBlock(store_bb);
            // Emission comes from the frame-resident cache.
            ValueId eoff =
                b.shlI(b.andI(loop.index(), 15), 2);
            b.assignBinop(IrOp::Add, best, best,
                          b.load(b.add(emit, eoff)));
            b.store(b.add(cur, off), best);
            uint32_t upd = b.newBlock(), next = b.newBlock();
            b.condBr(Cond::Gt, best, row_max, upd, next);
            b.setBlock(upd);
            b.assign(row_max, best);
            b.br(next);
            b.setBlock(next);
        }
        loop.finish();
        b.ret(row_max);
    }
    b.endFunction();

    // swap_rows(): prev <- cur (hmmer keeps two rolling rows).
    b.beginFunction(fn_swap);
    {
        ValueId prev = b.globalAddr(g_prev);
        ValueId cur = b.globalAddr(g_cur);
        LoopBuilder loop(b, 0, kStates);
        {
            ValueId off = b.shlI(loop.index(), 2);
            b.store(b.add(prev, off), b.load(b.add(cur, off)));
        }
        loop.finish();
        b.ret();
    }
    b.endFunction();

    b.beginFunction(fn_main);
    {
        ValueId h = b.constI(0x811c9dc5);
        ValueId s = b.constI(static_cast<int32_t>(cfg.seed ^ 0x43));
        LoopBuilder seq(b, 0, static_cast<int32_t>(48 * cfg.scale));
        {
            uint32_t reinit = b.newBlock(), row = b.newBlock();
            // Re-initialize the model every 16 symbols.
            ValueId phase = b.andI(seq.index(), 15);
            b.condBrI(Cond::Eq, phase, 0, reinit, row);
            b.setBlock(reinit);
            b.assign(s, b.call(fn_init, { s }));
            b.br(row);
            b.setBlock(row);
            lcgStep(b, s);
            ValueId sym = b.andI(b.shrI(s, 9), 255);
            ValueId rmax = b.call(fn_row, { sym });
            b.callVoid(fn_swap, {});
            fnvMix(b, h, rmax);
        }
        seq.finish();
        finishMain(b, h);
    }
    b.endFunction();

    return m;
}

} // namespace hipstr
