/**
 * @file
 * Internal IR-authoring helpers shared by the workload builders.
 */

#ifndef HIPSTR_WORKLOADS_DETAIL_HH
#define HIPSTR_WORKLOADS_DETAIL_HH

#include "ir/builder.hh"

namespace hipstr::wldetail
{

/**
 * Structured counted loop: for (i = start; i < bound; i += step).
 *
 * @code
 *   LoopBuilder loop(b, 0, 64);          // opens the body block
 *   ... body using loop.index() ...
 *   loop.finish(b);                       // closes and continues after
 * @endcode
 */
class LoopBuilder
{
  public:
    LoopBuilder(IrBuilder &b, int32_t start, int32_t bound)
        : _b(b)
    {
        _i = b.constI(start);
        open(b.constI(bound));
    }

    LoopBuilder(IrBuilder &b, int32_t start, ValueId bound) : _b(b)
    {
        _i = b.constI(start);
        open(bound);
    }

    ValueId index() const { return _i; }

    void
    finish(int32_t step = 1)
    {
        _b.assignBinopI(IrOp::Add, _i, _i, step);
        _b.br(_hdr);
        _b.setBlock(_done);
    }

  private:
    void
    open(ValueId bound)
    {
        _hdr = _b.newBlock();
        _body = _b.newBlock();
        _done = _b.newBlock();
        _b.br(_hdr);
        _b.setBlock(_hdr);
        _b.condBr(Cond::Lt, _i, bound, _body, _done);
        _b.setBlock(_body);
    }

    IrBuilder &_b;
    ValueId _i = kNoValue;
    uint32_t _hdr = 0, _body = 0, _done = 0;
};

/** s' = s * 1664525 + 1013904223 (Numerical Recipes LCG), in place. */
inline void
lcgStep(IrBuilder &b, ValueId s)
{
    b.assignBinopI(IrOp::Mul, s, s, 1664525);
    b.assignBinopI(IrOp::Add, s, s, 1013904223);
}

/** h = (h ^ v) * 16777619 (FNV-1a step), in place. */
inline void
fnvMix(IrBuilder &b, ValueId h, ValueId v)
{
    b.assignBinop(IrOp::Xor, h, h, v);
    b.assignBinopI(IrOp::Mul, h, h, 16777619);
}

/**
 * Emit the standard main epilogue: WriteWord(h) then return h.
 * (main's return value becomes the process exit code.)
 */
inline void
finishMain(IrBuilder &b, ValueId h)
{
    b.emitWriteWord(h);
    b.ret(h);
}

} // namespace hipstr::wldetail

#endif // HIPSTR_WORKLOADS_DETAIL_HH
