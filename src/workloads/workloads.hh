/**
 * @file
 * Synthetic workload registry.
 *
 * The paper evaluates eight SPEC CPU2006 C benchmarks (bzip2, gobmk,
 * hmmer, lbm, libquantum, mcf, milc, sphinx3) plus the httpd daemon.
 * SPEC sources and inputs are not redistributable, so each workload
 * here is a from-scratch IR program that mimics its namesake's kernel
 * structure: the instruction mix, call density, loop shapes, and
 * memory behaviour that drive both the gadget population (security
 * results) and the dynamic execution profile (performance results).
 *
 * Every workload is deterministic, self-checking (it writes a result
 * checksum through the WriteWord syscall and returns it from main),
 * and scalable through WorkloadConfig::scale.
 *
 * Authoring rule: frame pointers (FrameAddr values) must never be
 * stored to memory — the stack-derivation analysis in ir/liveness
 * relies on it, as documented there.
 */

#ifndef HIPSTR_WORKLOADS_WORKLOADS_HH
#define HIPSTR_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "ir/ir.hh"

namespace hipstr
{

/** Workload sizing knobs. */
struct WorkloadConfig
{
    uint32_t scale = 1;     ///< work multiplier (loop trip counts)
    uint32_t seed = 12345;  ///< data-generation seed baked into code
};

/** Per-workload builders. @{ */
IrModule buildBzip2(const WorkloadConfig &cfg);      ///< block compression
IrModule buildGobmk(const WorkloadConfig &cfg);      ///< game-tree search
IrModule buildHmmer(const WorkloadConfig &cfg);      ///< profile-HMM DP
IrModule buildLbm(const WorkloadConfig &cfg);        ///< lattice stencil
IrModule buildLibquantum(const WorkloadConfig &cfg); ///< quantum sim
IrModule buildMcf(const WorkloadConfig &cfg);        ///< network simplex
IrModule buildMilc(const WorkloadConfig &cfg);       ///< lattice QCD
IrModule buildSphinx3(const WorkloadConfig &cfg);    ///< speech scoring
IrModule buildHttpd(const WorkloadConfig &cfg);      ///< request daemon
/** @} */

/** The eight SPEC-like workload names, in the paper's order. */
const std::vector<std::string> &specWorkloadNames();

/** All workload names (SPEC-like + httpd). */
const std::vector<std::string> &allWorkloadNames();

/** Build a workload by name. Fatals on an unknown name. */
IrModule buildWorkload(const std::string &name,
                       const WorkloadConfig &cfg = {});

} // namespace hipstr

#endif // HIPSTR_WORKLOADS_WORKLOADS_HH
