/**
 * @file
 * gobmk-like workload: recursive game-tree search.
 *
 * Mirrors GNU Go's dominant behaviour: deep recursion over candidate
 * moves with board evaluation at the leaves, heavy use of stack frames
 * (a per-node move list lives in a frame array, so many blocks carry
 * live frame pointers — the migration-unsafe case), and branchy
 * control flow.
 */

#include "workloads/workloads.hh"

#include "workloads/detail.hh"

namespace hipstr
{

using namespace wldetail;

IrModule
buildGobmk(const WorkloadConfig &cfg)
{
    IrModule m;
    m.name = "gobmk";
    IrBuilder b(m);

    constexpr int32_t kBoard = 81; // 9x9
    uint32_t g_board = b.addGlobal("board", kBoard * 4);

    uint32_t fn_eval = b.declareFunction("eval_pos", 1);
    uint32_t fn_search = b.declareFunction("search", 3);
    uint32_t fn_seed = b.declareFunction("seed_board", 1);
    uint32_t fn_main = b.declareFunction("main", 0);
    b.setEntry(fn_main);

    // eval_pos(pos): cheap positional evaluation around `pos`.
    b.beginFunction(fn_eval);
    {
        ValueId pos = b.param(0);
        ValueId board = b.globalAddr(g_board);
        ValueId score = b.constI(0);
        // Sum a 3-cell neighbourhood with wraparound.
        LoopBuilder nb(b, 0, 3);
        {
            ValueId idx = b.add(pos, nb.index());
            ValueId wrapped = b.sub(
                idx, b.mulI(b.divuI(idx, kBoard), kBoard));
            ValueId cell =
                b.load(b.add(board, b.shlI(wrapped, 2)));
            b.assignBinop(IrOp::Add, score, score, cell);
            b.assignBinopI(IrOp::Xor, score, score, 0x55);
        }
        nb.finish();
        b.ret(score);
    }
    b.endFunction();

    // search(depth, pos, acc): minimax-ish recursive search with a
    // frame-resident move list.
    b.beginFunction(fn_search);
    {
        ValueId depth = b.param(0);
        ValueId pos = b.param(1);
        ValueId acc = b.param(2);

        uint32_t moves = b.addFrameObject("moves", 3 * 4);

        uint32_t leaf = b.newBlock(), inner = b.newBlock();
        b.condBrI(Cond::Le, depth, 0, leaf, inner);

        b.setBlock(leaf);
        ValueId lv = b.call(fn_eval, { pos });
        b.ret(b.add(acc, lv));

        b.setBlock(inner);
        // Generate three candidate moves into the frame array.
        ValueId mbase = b.frameAddr(moves);
        LoopBuilder gen(b, 0, 3);
        {
            ValueId mv = b.add(
                pos, b.addI(b.mulI(gen.index(), 7), 3));
            ValueId wrapped = b.sub(
                mv, b.mulI(b.divuI(mv, kBoard), kBoard));
            b.store(b.add(mbase, b.shlI(gen.index(), 2)), wrapped);
        }
        gen.finish();

        // Recurse on each move; alternate min/max by parity. Seed
        // `best` with the appropriate sentinel so the first child
        // always wins the comparison.
        ValueId best = b.copy(b.constI(-0x7fffffff));
        {
            ValueId parity0 = b.andI(depth, 1);
            uint32_t minp = b.newBlock(), cont = b.newBlock();
            b.condBrI(Cond::Ne, parity0, 0, minp, cont);
            b.setBlock(minp);
            b.assignConst(best, 0x7fffffff);
            b.br(cont);
            b.setBlock(cont);
        }
        ValueId d1 = b.subI(depth, 1);
        LoopBuilder rec(b, 0, 3);
        {
            ValueId mv = b.load(
                b.add(mbase, b.shlI(rec.index(), 2)));
            ValueId child = b.call(fn_search, { d1, mv, acc });
            ValueId parity = b.andI(depth, 1);
            uint32_t take_max = b.newBlock(), take_min = b.newBlock(),
                     joined = b.newBlock();
            b.condBrI(Cond::Eq, parity, 0, take_max, take_min);
            b.setBlock(take_max);
            {
                uint32_t upd = b.newBlock();
                b.condBr(Cond::Gt, child, best, upd, joined);
                b.setBlock(upd);
                b.assign(best, child);
                b.br(joined);
            }
            b.setBlock(take_min);
            {
                uint32_t upd = b.newBlock();
                b.condBr(Cond::Lt, child, best, upd, joined);
                b.setBlock(upd);
                b.assign(best, child);
                b.br(joined);
            }
            b.setBlock(joined);
        }
        rec.finish();
        b.ret(b.add(best, b.andI(acc, 15)));
    }
    b.endFunction();

    // seed_board(seed): fill the board with small stone values.
    b.beginFunction(fn_seed);
    {
        ValueId s = b.copy(b.param(0));
        ValueId board = b.globalAddr(g_board);
        LoopBuilder loop(b, 0, kBoard);
        {
            lcgStep(b, s);
            ValueId v = b.andI(b.shrI(s, 20), 7);
            b.store(b.add(board, b.shlI(loop.index(), 2)), v);
        }
        loop.finish();
        b.ret(s);
    }
    b.endFunction();

    b.beginFunction(fn_main);
    {
        ValueId h = b.constI(0x811c9dc5);
        ValueId seed = b.constI(static_cast<int32_t>(cfg.seed ^ 0x60));
        LoopBuilder games(b, 0, static_cast<int32_t>(2 * cfg.scale));
        {
            b.assign(seed, b.call(fn_seed, { seed }));
            ValueId depth = b.constI(5);
            ValueId start = b.andI(seed, 63);
            ValueId zero = b.constI(0);
            ValueId score =
                b.call(fn_search, { depth, start, zero });
            fnvMix(b, h, score);
        }
        games.finish();
        finishMain(b, h);
    }
    b.endFunction();

    return m;
}

} // namespace hipstr
