/**
 * @file
 * mcf-like workload: network-simplex relaxation.
 *
 * Mirrors mcf's behaviour: pointer-chasing over a linked node
 * structure with data-dependent branches and irregular access —
 * the cache-hostile profile mcf is famous for.
 *
 * Node layout (4 words): [next_index, cost, flow, potential].
 */

#include "workloads/workloads.hh"

#include "workloads/detail.hh"

namespace hipstr
{

using namespace wldetail;

IrModule
buildMcf(const WorkloadConfig &cfg)
{
    IrModule m;
    m.name = "mcf";
    IrBuilder b(m);

    constexpr int32_t kNodes = 256;
    constexpr int32_t kNodeBytes = 16;
    uint32_t g_nodes = b.addGlobal("nodes", kNodes * kNodeBytes);

    uint32_t fn_build = b.declareFunction("build_network", 1);
    uint32_t fn_relax = b.declareFunction("relax_pass", 1);
    uint32_t fn_sum = b.declareFunction("network_sum", 0);
    uint32_t fn_main = b.declareFunction("main", 0);
    b.setEntry(fn_main);

    // build_network(seed): permuted successor ring + random costs.
    b.beginFunction(fn_build);
    {
        ValueId s = b.copy(b.param(0));
        ValueId nodes = b.globalAddr(g_nodes);
        LoopBuilder loop(b, 0, kNodes);
        {
            ValueId base =
                b.add(nodes, b.mulI(loop.index(), kNodeBytes));
            lcgStep(b, s);
            // next = (i + odd_stride) % kNodes gives one big cycle.
            ValueId stride = b.orI(b.andI(b.shrI(s, 7), 31), 1);
            ValueId nxt = b.add(loop.index(), stride);
            ValueId wrapped = b.sub(
                nxt, b.mulI(b.divuI(nxt, kNodes), kNodes));
            b.store(base, wrapped);
            b.store(base, b.andI(b.shrI(s, 13), 1023), 4); // cost
            b.store(base, b.constI(0), 8);                 // flow
            b.store(base, b.andI(s, 255), 12);             // potential
        }
        loop.finish();
        b.ret(s);
    }
    b.endFunction();

    // relax_pass(steps): chase successor pointers, relaxing
    // potentials; returns the number of updates performed.
    b.beginFunction(fn_relax);
    {
        ValueId steps = b.param(0);
        ValueId nodes = b.globalAddr(g_nodes);
        ValueId cur = b.constI(0);
        ValueId updates = b.constI(0);
        uint32_t ring_obj = b.addFrameObject("visit_ring", 16 * 4);
        ValueId ring = b.frameAddr(ring_obj);
        LoopBuilder zero(b, 0, 16);
        b.store(b.add(ring, b.shlI(zero.index(), 2)), b.constI(0));
        zero.finish();
        LoopBuilder loop(b, 0, steps);
        {
            ValueId base =
                b.add(nodes, b.mulI(cur, kNodeBytes));
            ValueId nxt = b.load(base);
            ValueId nbase =
                b.add(nodes, b.mulI(nxt, kNodeBytes));
            ValueId cost = b.load(base, 4);
            ValueId my_pot = b.load(base, 12);
            ValueId their_pot = b.load(nbase, 12);
            ValueId candidate = b.add(my_pot, cost);
            uint32_t improve = b.newBlock(), advance = b.newBlock();
            b.condBr(Cond::Lt, candidate, their_pot, improve,
                     advance);
            b.setBlock(improve);
            b.store(nbase, candidate, 12);
            b.store(nbase, b.addI(b.load(nbase, 8), 1), 8); // flow++
            b.assignBinopI(IrOp::Add, updates, updates, 1);
            b.br(advance);
            b.setBlock(advance);
            // Log the visit in the frame-resident ring buffer.
            ValueId slot = b.add(
                ring, b.shlI(b.andI(loop.index(), 15), 2));
            b.store(slot, b.add(b.load(slot), cur));
            b.assign(cur, nxt);
        }
        loop.finish();
        ValueId mix = b.load(ring, 0);
        b.assignBinop(IrOp::Add, updates, updates,
                      b.andI(mix, 255));
        b.ret(updates);
    }
    b.endFunction();

    // network_sum(): FNV over potentials and flows.
    b.beginFunction(fn_sum);
    {
        ValueId nodes = b.globalAddr(g_nodes);
        ValueId h = b.constI(0x811c9dc5);
        LoopBuilder loop(b, 0, kNodes);
        {
            ValueId base =
                b.add(nodes, b.mulI(loop.index(), kNodeBytes));
            fnvMix(b, h, b.load(base, 8));
            fnvMix(b, h, b.load(base, 12));
        }
        loop.finish();
        b.ret(h);
    }
    b.endFunction();

    b.beginFunction(fn_main);
    {
        ValueId h = b.constI(0x811c9dc5);
        ValueId s = b.constI(static_cast<int32_t>(cfg.seed ^ 0x3c));
        LoopBuilder outer(b, 0, static_cast<int32_t>(2 * cfg.scale));
        {
            b.assign(s, b.call(fn_build, { s }));
            LoopBuilder passes(b, 0, 6);
            {
                ValueId steps = b.constI(kNodes * 2);
                ValueId upd = b.call(fn_relax, { steps });
                fnvMix(b, h, upd);
            }
            passes.finish();
            ValueId hs = b.call(fn_sum, {});
            fnvMix(b, h, hs);
        }
        outer.finish();
        finishMain(b, h);
    }
    b.endFunction();

    return m;
}

} // namespace hipstr
