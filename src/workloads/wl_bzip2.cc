/**
 * @file
 * bzip2-like workload: block compression pipeline.
 *
 * Mirrors the structure of bzip2's kernel: fill a block with data,
 * run-length encode it, apply a move-to-front transform, and histogram
 * the symbol frequencies — byte-granular memory traffic, tight inner
 * loops, and a moderate call graph.
 */

#include "workloads/workloads.hh"

#include "workloads/detail.hh"

namespace hipstr
{

using namespace wldetail;

IrModule
buildBzip2(const WorkloadConfig &cfg)
{
    IrModule m;
    m.name = "bzip2";
    IrBuilder b(m);

    constexpr int32_t kBlock = 1024;
    uint32_t g_in = b.addGlobal("in", kBlock);
    uint32_t g_out = b.addGlobal("out", 2 * kBlock);
    uint32_t g_mtf = b.addGlobal("mtf_table", 256);

    uint32_t fn_fill = b.declareFunction("fill_block", 2);
    uint32_t fn_rle = b.declareFunction("rle_encode", 1);
    uint32_t fn_mtf = b.declareFunction("mtf_transform", 1);
    uint32_t fn_hist = b.declareFunction("histogram", 1);
    uint32_t fn_main = b.declareFunction("main", 0);
    b.setEntry(fn_main);

    // fill_block(n, seed): in[i] = biased pseudo-random bytes with
    // runs (so RLE has something to find). Returns the final seed.
    b.beginFunction(fn_fill);
    {
        ValueId n = b.param(0);
        ValueId s = b.copy(b.param(1));
        ValueId base = b.globalAddr(g_in);
        ValueId cur = b.constI(0); // current run symbol
        LoopBuilder loop(b, 0, n);
        {
            // Change the run symbol with probability ~1/4.
            lcgStep(b, s);
            ValueId coin = b.andI(b.shrI(s, 16), 3);
            uint32_t change = b.newBlock(), write = b.newBlock();
            b.condBrI(Cond::Eq, coin, 0, change, write);
            b.setBlock(change);
            b.assign(cur, b.andI(b.shrI(s, 8), 255));
            b.br(write);
            b.setBlock(write);
            ValueId addr = b.add(base, loop.index());
            b.store8(addr, cur);
        }
        loop.finish();
        b.ret(s);
    }
    b.endFunction();

    // rle_encode(n) -> encoded length; writes (count, symbol) byte
    // pairs into out[].
    b.beginFunction(fn_rle);
    {
        ValueId n = b.param(0);
        ValueId in_base = b.globalAddr(g_in);
        ValueId out_base = b.globalAddr(g_out);
        ValueId out_len = b.constI(0);
        ValueId run_sym = b.load8(in_base);
        ValueId run_len = b.constI(1);

        LoopBuilder loop(b, 1, n);
        {
            ValueId sym = b.load8(b.add(in_base, loop.index()));
            uint32_t same = b.newBlock(), flush = b.newBlock(),
                     next = b.newBlock();
            b.condBr(Cond::Eq, sym, run_sym, same, flush);

            b.setBlock(same);
            b.assignBinopI(IrOp::Add, run_len, run_len, 1);
            // Cap runs at 255 so the count fits a byte.
            uint32_t cap = b.newBlock();
            b.condBrI(Cond::Gt, run_len, 255, cap, next);
            b.setBlock(cap);
            b.assignConst(run_len, 255);
            b.br(next);

            b.setBlock(flush);
            ValueId w = b.add(out_base, out_len);
            b.store8(w, run_len);
            b.store8(w, run_sym, 1);
            b.assignBinopI(IrOp::Add, out_len, out_len, 2);
            b.assign(run_sym, sym);
            b.assignConst(run_len, 1);
            b.br(next);

            b.setBlock(next);
        }
        loop.finish();

        ValueId w = b.add(out_base, out_len);
        b.store8(w, run_len);
        b.store8(w, run_sym, 1);
        b.assignBinopI(IrOp::Add, out_len, out_len, 2);
        b.ret(out_len);
    }
    b.endFunction();

    // mtf_transform(len): move-to-front over out[], in place.
    b.beginFunction(fn_mtf);
    {
        ValueId len = b.param(0);
        ValueId tbl = b.globalAddr(g_mtf);
        ValueId out_base = b.globalAddr(g_out);

        // Initialize the table to the identity permutation.
        LoopBuilder init(b, 0, 256);
        b.store8(b.add(tbl, init.index()), init.index());
        init.finish();

        LoopBuilder loop(b, 0, len);
        {
            ValueId sym = b.load8(b.add(out_base, loop.index()));
            // Find sym's rank, shifting earlier entries down.
            ValueId rank = b.constI(0);
            ValueId prev = b.load8(tbl);
            uint32_t hdr = b.newBlock(), body = b.newBlock(),
                     found = b.newBlock();
            b.br(hdr);
            b.setBlock(hdr);
            b.condBr(Cond::Eq, prev, sym, found, body);
            b.setBlock(body);
            b.assignBinopI(IrOp::Add, rank, rank, 1);
            ValueId cur = b.load8(b.add(tbl, rank));
            b.store8(b.add(tbl, rank), prev);
            b.assign(prev, cur);
            b.br(hdr);
            b.setBlock(found);
            b.store8(tbl, sym);
            b.store8(b.add(out_base, loop.index()), rank);
        }
        loop.finish();
        b.ret();
    }
    b.endFunction();

    // histogram(len) -> FNV checksum over the frequency table. The
    // table is a frame-resident array, as in the real bzip2 — its
    // address is live across the loops below, making those blocks
    // reachable only through on-demand migration.
    b.beginFunction(fn_hist);
    {
        ValueId len = b.param(0);
        ValueId out_base = b.globalAddr(g_out);
        uint32_t freq_obj = b.addFrameObject("freq", 256 * 4);
        ValueId freq = b.frameAddr(freq_obj);

        LoopBuilder zero(b, 0, 256);
        b.store(b.add(freq, b.shlI(zero.index(), 2)), b.constI(0));
        zero.finish();

        LoopBuilder count(b, 0, len);
        {
            ValueId sym = b.load8(b.add(out_base, count.index()));
            ValueId slot = b.add(freq, b.shlI(sym, 2));
            b.store(slot, b.addI(b.load(slot), 1));
        }
        count.finish();

        ValueId h = b.constI(0x811c9dc5);
        LoopBuilder sum(b, 0, 256);
        {
            ValueId v = b.load(b.add(freq, b.shlI(sum.index(), 2)));
            fnvMix(b, h, v);
        }
        sum.finish();
        b.ret(h);
    }
    b.endFunction();

    // main: compress `scale` blocks and fold the checksums.
    b.beginFunction(fn_main);
    {
        ValueId h = b.constI(0x811c9dc5);
        ValueId seed = b.constI(static_cast<int32_t>(cfg.seed | 1));
        LoopBuilder blocks(b, 0,
                           static_cast<int32_t>(4 * cfg.scale));
        {
            ValueId n = b.constI(kBlock);
            b.assign(seed, b.call(fn_fill, { n, seed }));
            ValueId enc_len = b.call(fn_rle, { n });
            b.callVoid(fn_mtf, { enc_len });
            ValueId hv = b.call(fn_hist, { enc_len });
            fnvMix(b, h, hv);
        }
        blocks.finish();
        finishMain(b, h);
    }
    b.endFunction();

    return m;
}

} // namespace hipstr
