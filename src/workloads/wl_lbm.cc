/**
 * @file
 * lbm-like workload: lattice-Boltzmann stencil sweeps.
 *
 * Mirrors lbm's behaviour: regular 5-point stencil sweeps over a 2D
 * grid in fixed-point arithmetic, alternating between two lattices —
 * streaming memory access with almost no control-flow divergence.
 */

#include "workloads/workloads.hh"

#include "workloads/detail.hh"

namespace hipstr
{

using namespace wldetail;

IrModule
buildLbm(const WorkloadConfig &cfg)
{
    IrModule m;
    m.name = "lbm";
    IrBuilder b(m);

    constexpr int32_t kDim = 24;
    constexpr int32_t kCells = kDim * kDim;
    uint32_t g_a = b.addGlobal("lattice_a", kCells * 4);
    uint32_t g_b = b.addGlobal("lattice_b", kCells * 4);

    uint32_t fn_init = b.declareFunction("init_lattice", 1);
    uint32_t fn_sweep = b.declareFunction("stencil_sweep", 2);
    uint32_t fn_sum = b.declareFunction("lattice_sum", 1);
    uint32_t fn_main = b.declareFunction("main", 0);
    b.setEntry(fn_main);

    // init_lattice(seed): fixed-point densities in lattice_a.
    b.beginFunction(fn_init);
    {
        ValueId s = b.copy(b.param(0));
        ValueId base = b.globalAddr(g_a);
        LoopBuilder loop(b, 0, kCells);
        {
            lcgStep(b, s);
            ValueId v = b.andI(b.shrI(s, 8), 0xffff);
            b.store(b.add(base, b.shlI(loop.index(), 2)), v);
        }
        loop.finish();
        b.ret(s);
    }
    b.endFunction();

    // stencil_sweep(src, dst): interior 5-point relaxation. The
    // current row is staged into a frame-local cache (lbm's cell
    // buffers), whose address stays live across both loops.
    b.beginFunction(fn_sweep);
    {
        ValueId src = b.param(0);
        ValueId dst = b.param(1);
        uint32_t row_obj = b.addFrameObject("row_cache", kDim * 4);
        ValueId row = b.frameAddr(row_obj);
        LoopBuilder yloop(b, 1, kDim - 1);
        {
            ValueId row_base =
                b.add(src, b.shlI(b.mulI(yloop.index(), kDim), 2));
            LoopBuilder fill(b, 0, kDim);
            {
                ValueId off = b.shlI(fill.index(), 2);
                b.store(b.add(row, off),
                        b.load(b.add(row_base, off)));
            }
            fill.finish();
            LoopBuilder xloop(b, 1, kDim - 1);
            {
                ValueId idx = b.add(b.mulI(yloop.index(), kDim),
                                    xloop.index());
                ValueId off = b.shlI(idx, 2);
                ValueId loff = b.shlI(xloop.index(), 2);
                ValueId center = b.load(b.add(row, loff));
                ValueId left =
                    b.load(b.add(row, b.subI(loff, 4)));
                ValueId right =
                    b.load(b.add(row, b.addI(loff, 4)));
                ValueId up = b.load(
                    b.add(src, b.subI(off, kDim * 4)));
                ValueId down = b.load(
                    b.add(src, b.addI(off, kDim * 4)));
                // new = (l + r + u + d + 4*c) / 8, fixed point.
                ValueId acc = b.add(left, right);
                b.assignBinop(IrOp::Add, acc, acc, up);
                b.assignBinop(IrOp::Add, acc, acc, down);
                b.assignBinop(IrOp::Add, acc, acc,
                              b.shlI(center, 2));
                b.store(b.add(dst, off), b.shrI(acc, 3));
            }
            xloop.finish();
        }
        yloop.finish();
        b.ret();
    }
    b.endFunction();

    // lattice_sum(base) -> FNV over all cells.
    b.beginFunction(fn_sum);
    {
        ValueId base = b.param(0);
        ValueId h = b.constI(0x811c9dc5);
        LoopBuilder loop(b, 0, kCells);
        {
            ValueId v =
                b.load(b.add(base, b.shlI(loop.index(), 2)));
            fnvMix(b, h, v);
        }
        loop.finish();
        b.ret(h);
    }
    b.endFunction();

    b.beginFunction(fn_main);
    {
        ValueId h = b.constI(0x811c9dc5);
        ValueId s = b.constI(static_cast<int32_t>(cfg.seed ^ 0x1b));
        b.assign(s, b.call(fn_init, { s }));
        ValueId a = b.globalAddr(g_a);
        ValueId bb = b.globalAddr(g_b);
        LoopBuilder steps(b, 0, static_cast<int32_t>(8 * cfg.scale));
        {
            // Alternate sweep direction by parity.
            ValueId parity = b.andI(steps.index(), 1);
            uint32_t fwd = b.newBlock(), bwd = b.newBlock(),
                     done = b.newBlock();
            b.condBrI(Cond::Eq, parity, 0, fwd, bwd);
            b.setBlock(fwd);
            b.callVoid(fn_sweep, { a, bb });
            b.br(done);
            b.setBlock(bwd);
            b.callVoid(fn_sweep, { bb, a });
            b.br(done);
            b.setBlock(done);
        }
        steps.finish();
        ValueId ha = b.call(fn_sum, { a });
        ValueId hb = b.call(fn_sum, { bb });
        fnvMix(b, h, ha);
        fnvMix(b, h, hb);
        finishMain(b, h);
    }
    b.endFunction();

    return m;
}

} // namespace hipstr
