#include "workloads.hh"

#include "support/logging.hh"

namespace hipstr
{

const std::vector<std::string> &
specWorkloadNames()
{
    static const std::vector<std::string> names = {
        "bzip2", "gobmk", "hmmer", "lbm",
        "libquantum", "mcf", "milc", "sphinx3"
    };
    return names;
}

const std::vector<std::string> &
allWorkloadNames()
{
    static const std::vector<std::string> names = {
        "bzip2", "gobmk", "hmmer", "lbm",
        "libquantum", "mcf", "milc", "sphinx3", "httpd"
    };
    return names;
}

IrModule
buildWorkload(const std::string &name, const WorkloadConfig &cfg)
{
    if (name == "bzip2")
        return buildBzip2(cfg);
    if (name == "gobmk")
        return buildGobmk(cfg);
    if (name == "hmmer")
        return buildHmmer(cfg);
    if (name == "lbm")
        return buildLbm(cfg);
    if (name == "libquantum")
        return buildLibquantum(cfg);
    if (name == "mcf")
        return buildMcf(cfg);
    if (name == "milc")
        return buildMilc(cfg);
    if (name == "sphinx3")
        return buildSphinx3(cfg);
    if (name == "httpd")
        return buildHttpd(cfg);
    hipstr_fatal("unknown workload '%s'", name.c_str());
}

} // namespace hipstr
