/**
 * @file
 * milc-like workload: lattice-QCD link smearing.
 *
 * Mirrors milc's kernel: dense 3x3 matrix multiplications per lattice
 * site in fixed-point arithmetic — long straight-line arithmetic
 * blocks with high register pressure, the profile that stresses the
 * PSR global register cache.
 */

#include "workloads/workloads.hh"

#include "workloads/detail.hh"

namespace hipstr
{

using namespace wldetail;

IrModule
buildMilc(const WorkloadConfig &cfg)
{
    IrModule m;
    m.name = "milc";
    IrBuilder b(m);

    constexpr int32_t kSites = 32;
    constexpr int32_t kMatBytes = 9 * 4;
    uint32_t g_links = b.addGlobal("links", kSites * kMatBytes);
    uint32_t g_tmp = b.addGlobal("tmp_mat", kMatBytes);

    uint32_t fn_init = b.declareFunction("init_links", 1);
    uint32_t fn_mul = b.declareFunction("mat_mul", 3);
    uint32_t fn_trace = b.declareFunction("mat_trace", 1);
    uint32_t fn_main = b.declareFunction("main", 0);
    b.setEntry(fn_main);

    b.beginFunction(fn_init);
    {
        ValueId s = b.copy(b.param(0));
        ValueId links = b.globalAddr(g_links);
        LoopBuilder loop(b, 0, kSites * 9);
        {
            lcgStep(b, s);
            b.store(b.add(links, b.shlI(loop.index(), 2)),
                    b.andI(b.shrI(s, 10), 0x3ff));
        }
        loop.finish();
        b.ret(s);
    }
    b.endFunction();

    // mat_mul(a, b, c): c = a * b for 3x3 fixed-point matrices,
    // fully unrolled — 27 multiply-adds of straight-line code. The
    // left operand is staged through a frame-local copy (milc's site
    // buffers live on the stack), and the copy loop reads it through
    // an xor-obfuscated alias: a *complex* frame pointer that the
    // on-demand migration machinery cannot rebase, pinning the loop's
    // blocks to the current ISA.
    b.beginFunction(fn_mul);
    {
        ValueId pa = b.param(0);
        ValueId pb = b.param(1);
        ValueId pc = b.param(2);
        uint32_t a_obj = b.addFrameObject("a_local", 9 * 4);
        ValueId la = b.frameAddr(a_obj);
        ValueId la_alias = b.xorI(la, 0); // complex derivation
        LoopBuilder copy(b, 0, 9);
        {
            ValueId off = b.shlI(copy.index(), 2);
            b.store(b.add(la_alias, off),
                    b.load(b.add(pa, off)));
        }
        copy.finish();
        for (int i = 0; i < 3; ++i) {
            for (int j = 0; j < 3; ++j) {
                ValueId acc = b.constI(0);
                for (int k = 0; k < 3; ++k) {
                    ValueId av = b.load(la, (i * 3 + k) * 4);
                    ValueId bv = b.load(pb, (k * 3 + j) * 4);
                    b.assignBinop(IrOp::Add, acc, acc,
                                  b.shrI(b.mul(av, bv), 10));
                }
                b.store(pc, acc, (i * 3 + j) * 4);
            }
        }
        b.ret();
    }
    b.endFunction();

    b.beginFunction(fn_trace);
    {
        ValueId pm = b.param(0);
        ValueId t = b.load(pm, 0);
        b.assignBinop(IrOp::Add, t, t, b.load(pm, 16));
        b.assignBinop(IrOp::Add, t, t, b.load(pm, 32));
        b.ret(t);
    }
    b.endFunction();

    b.beginFunction(fn_main);
    {
        ValueId h = b.constI(0x811c9dc5);
        ValueId s = b.constI(static_cast<int32_t>(cfg.seed ^ 0x3f));
        b.assign(s, b.call(fn_init, { s }));
        ValueId links = b.globalAddr(g_links);
        ValueId tmp = b.globalAddr(g_tmp);
        LoopBuilder sweeps(b, 0, static_cast<int32_t>(3 * cfg.scale));
        {
            LoopBuilder sites(b, 0, kSites - 1);
            {
                ValueId pa = b.add(
                    links, b.mulI(sites.index(), kMatBytes));
                ValueId pb2 = b.addI(pa, kMatBytes);
                b.callVoid(fn_mul, { pa, pb2, tmp });
                ValueId tr = b.call(fn_trace, { tmp });
                fnvMix(b, h, tr);
                // Write the smeared product back into the site.
                LoopBuilder copy(b, 0, 9);
                {
                    ValueId off = b.shlI(copy.index(), 2);
                    b.store(b.add(pa, off),
                            b.load(b.add(tmp, off)));
                }
                copy.finish();
            }
            sites.finish();
        }
        sweeps.finish();
        finishMain(b, h);
    }
    b.endFunction();

    return m;
}

} // namespace hipstr
