/**
 * @file
 * sphinx3-like workload: acoustic senone scoring.
 *
 * Mirrors sphinx3's GMM evaluation: per-frame feature updates, a
 * distance computation against every senone's mean/variance vectors,
 * best-score selection, and an indirect call to one of two scoring
 * variants (continuous vs. semi-continuous), giving this workload a
 * function-pointer dispatch site like the real decoder's model layer.
 */

#include "workloads/workloads.hh"

#include "workloads/detail.hh"

namespace hipstr
{

using namespace wldetail;

IrModule
buildSphinx3(const WorkloadConfig &cfg)
{
    IrModule m;
    m.name = "sphinx3";
    IrBuilder b(m);

    constexpr int32_t kSenones = 48;
    constexpr int32_t kDims = 8;
    uint32_t g_means = b.addGlobal("means", kSenones * kDims * 4);
    uint32_t g_vars = b.addGlobal("vars", kSenones * kDims * 4);
    uint32_t g_feat = b.addGlobal("feat", kDims * 4);

    uint32_t fn_init = b.declareFunction("init_model", 1);
    uint32_t fn_feat = b.declareFunction("next_frame", 1);
    uint32_t fn_score_c = b.declareFunction("score_cont", 1);
    uint32_t fn_score_s = b.declareFunction("score_semi", 1);
    uint32_t fn_best = b.declareFunction("best_senone", 1);
    uint32_t fn_main = b.declareFunction("main", 0);
    b.setEntry(fn_main);

    b.beginFunction(fn_init);
    {
        ValueId s = b.copy(b.param(0));
        ValueId means = b.globalAddr(g_means);
        ValueId vars = b.globalAddr(g_vars);
        LoopBuilder loop(b, 0, kSenones * kDims);
        {
            ValueId off = b.shlI(loop.index(), 2);
            lcgStep(b, s);
            b.store(b.add(means, off), b.andI(b.shrI(s, 9), 255));
            lcgStep(b, s);
            b.store(b.add(vars, off),
                    b.orI(b.andI(b.shrI(s, 11), 15), 1));
        }
        loop.finish();
        b.ret(s);
    }
    b.endFunction();

    // next_frame(seed): evolve the feature vector.
    b.beginFunction(fn_feat);
    {
        ValueId s = b.copy(b.param(0));
        ValueId feat = b.globalAddr(g_feat);
        LoopBuilder loop(b, 0, kDims);
        {
            lcgStep(b, s);
            b.store(b.add(feat, b.shlI(loop.index(), 2)),
                    b.andI(b.shrI(s, 7), 255));
        }
        loop.finish();
        b.ret(s);
    }
    b.endFunction();

    // score_cont(senone): full squared-distance scoring against a
    // frame-local copy of the feature vector (sphinx stages features
    // on the stack per senone batch).
    b.beginFunction(fn_score_c);
    {
        ValueId sen = b.param(0);
        ValueId means = b.globalAddr(g_means);
        ValueId vars = b.globalAddr(g_vars);
        ValueId gfeat = b.globalAddr(g_feat);
        uint32_t f_obj = b.addFrameObject("feat_local", kDims * 4);
        ValueId feat = b.frameAddr(f_obj);
        LoopBuilder stage(b, 0, kDims);
        {
            ValueId off = b.shlI(stage.index(), 2);
            b.store(b.add(feat, off), b.load(b.add(gfeat, off)));
        }
        stage.finish();
        ValueId base = b.mulI(sen, kDims * 4);
        ValueId acc = b.constI(0);
        LoopBuilder loop(b, 0, kDims);
        {
            ValueId off = b.shlI(loop.index(), 2);
            ValueId mo = b.add(base, off);
            ValueId fv = b.load(b.add(feat, off));
            ValueId mv = b.load(b.add(means, mo));
            ValueId vv = b.load(b.add(vars, mo));
            ValueId diff = b.sub(fv, mv);
            ValueId sq = b.mul(diff, diff);
            b.assignBinop(IrOp::Add, acc, acc, b.divu(sq, vv));
        }
        loop.finish();
        b.ret(acc);
    }
    b.endFunction();

    // score_semi(senone): cheaper approximation (top-2 dims only),
    // mirroring sphinx's semi-continuous shortcut path.
    b.beginFunction(fn_score_s);
    {
        ValueId sen = b.param(0);
        ValueId means = b.globalAddr(g_means);
        ValueId feat = b.globalAddr(g_feat);
        ValueId base = b.mulI(sen, kDims * 4);
        ValueId acc = b.constI(0);
        LoopBuilder loop(b, 0, 2);
        {
            ValueId off = b.shlI(loop.index(), 2);
            ValueId fv = b.load(b.add(feat, off));
            ValueId mv = b.load(b.add(means, b.add(base, off)));
            ValueId diff = b.sub(fv, mv);
            b.assignBinop(IrOp::Add, acc, acc, b.mul(diff, diff));
        }
        loop.finish();
        b.ret(b.shlI(acc, 2));
    }
    b.endFunction();

    // best_senone(scorer): min over senones of scorer(senone).
    b.beginFunction(fn_best);
    {
        ValueId scorer = b.param(0); // function id
        ValueId best = b.constI(0x7fffffff);
        LoopBuilder loop(b, 0, kSenones);
        {
            ValueId sc = b.callInd(scorer, { loop.index() });
            uint32_t upd = b.newBlock(), next = b.newBlock();
            b.condBr(Cond::Lt, sc, best, upd, next);
            b.setBlock(upd);
            b.assign(best, sc);
            b.br(next);
            b.setBlock(next);
        }
        loop.finish();
        b.ret(best);
    }
    b.endFunction();

    b.beginFunction(fn_main);
    {
        ValueId h = b.constI(0x811c9dc5);
        ValueId s = b.constI(static_cast<int32_t>(cfg.seed ^ 0x53));
        b.assign(s, b.call(fn_init, { s }));
        ValueId fp_cont = b.funcAddr(fn_score_c);
        ValueId fp_semi = b.funcAddr(fn_score_s);
        LoopBuilder frames(b, 0,
                           static_cast<int32_t>(10 * cfg.scale));
        {
            b.assign(s, b.call(fn_feat, { s }));
            // Alternate scoring variants like the decoder's
            // fast/exact GMM paths.
            ValueId parity = b.andI(frames.index(), 1);
            ValueId scorer = b.copy(fp_cont);
            uint32_t semi = b.newBlock(), go = b.newBlock();
            b.condBrI(Cond::Eq, parity, 0, go, semi);
            b.setBlock(semi);
            b.assign(scorer, fp_semi);
            b.br(go);
            b.setBlock(go);
            ValueId best = b.call(fn_best, { scorer });
            fnvMix(b, h, best);
        }
        frames.finish();
        finishMain(b, h);
    }
    b.endFunction();

    return m;
}

} // namespace hipstr
