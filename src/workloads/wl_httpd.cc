/**
 * @file
 * httpd-like workload: a synthetic request-serving daemon.
 *
 * Mirrors the structure the paper's case study targets: byte-level
 * request parsing, method/path token matching, and handler dispatch
 * through a function-pointer table — the indirect-transfer-rich,
 * network-facing profile that makes httpd a classic ROP target.
 */

#include "workloads/workloads.hh"

#include "workloads/detail.hh"

namespace hipstr
{

using namespace wldetail;

IrModule
buildHttpd(const WorkloadConfig &cfg)
{
    IrModule m;
    m.name = "httpd";
    IrBuilder b(m);

    constexpr int32_t kReqBytes = 64;
    uint32_t g_req = b.addGlobal("request", kReqBytes);
    uint32_t g_resp = b.addGlobal("response", 256);
    uint32_t g_stats = b.addGlobal("handler_stats", 4 * 4);

    uint32_t fn_gen = b.declareFunction("gen_request", 1);
    uint32_t fn_parse = b.declareFunction("parse_method", 0);
    uint32_t fn_h_static = b.declareFunction("handle_static", 1);
    uint32_t fn_h_dyn = b.declareFunction("handle_dynamic", 1);
    uint32_t fn_h_post = b.declareFunction("handle_post", 1);
    uint32_t fn_h_err = b.declareFunction("handle_error", 1);
    uint32_t fn_main = b.declareFunction("main", 0);
    b.setEntry(fn_main);

    // gen_request(seed): synthesizes "GET /pathNN ..." style bytes.
    b.beginFunction(fn_gen);
    {
        ValueId s = b.copy(b.param(0));
        ValueId req = b.globalAddr(g_req);
        lcgStep(b, s);
        ValueId kind = b.andI(b.shrI(s, 16), 3);
        // Method byte: 'G' for GET-static, 'D' dynamic, 'P' POST,
        // 'X' malformed.
        ValueId mb = b.copy(b.constI('G'));
        uint32_t k1 = b.newBlock(), k2 = b.newBlock(),
                 k3 = b.newBlock(), body = b.newBlock();
        b.condBrI(Cond::Eq, kind, 1, k1, k2);
        b.setBlock(k1);
        b.assignConst(mb, 'D');
        b.br(body);
        b.setBlock(k2);
        b.condBrI(Cond::Eq, kind, 2, k3, body);
        b.setBlock(k3);
        b.assignConst(mb, 'P');
        b.br(body);
        b.setBlock(body);
        b.store8(req, mb);
        // Path and payload bytes.
        LoopBuilder loop(b, 1, kReqBytes);
        {
            lcgStep(b, s);
            ValueId ch =
                b.addI(b.andI(b.shrI(s, 11), 63), 32);
            b.store8(b.add(req, loop.index()), ch);
        }
        loop.finish();
        b.ret(s);
    }
    b.endFunction();

    // parse_method() -> handler index 0..3 from the request bytes.
    b.beginFunction(fn_parse);
    {
        ValueId req = b.globalAddr(g_req);
        ValueId mb = b.load8(req);
        uint32_t is_g = b.newBlock(), not_g = b.newBlock(),
                 is_d = b.newBlock(), not_d = b.newBlock(),
                 is_p = b.newBlock(), err = b.newBlock();
        b.condBrI(Cond::Eq, mb, 'G', is_g, not_g);
        b.setBlock(is_g);
        b.ret(b.constI(0));
        b.setBlock(not_g);
        b.condBrI(Cond::Eq, mb, 'D', is_d, not_d);
        b.setBlock(is_d);
        b.ret(b.constI(1));
        b.setBlock(not_d);
        b.condBrI(Cond::Eq, mb, 'P', is_p, err);
        b.setBlock(is_p);
        b.ret(b.constI(2));
        b.setBlock(err);
        b.ret(b.constI(3));
    }
    b.endFunction();

    // Handlers: each computes a response checksum differently and
    // bumps its stats slot.
    auto make_handler = [&](uint32_t fn, int32_t slot,
                            auto body_fn) {
        b.beginFunction(fn);
        ValueId conn = b.param(0);
        ValueId req = b.globalAddr(g_req);
        ValueId resp = b.globalAddr(g_resp);
        ValueId stats = b.globalAddr(g_stats);
        ValueId acc = b.constI(0x1505);
        body_fn(conn, req, resp, acc);
        ValueId slot_addr = b.addI(stats, slot * 4);
        b.store(slot_addr, b.addI(b.load(slot_addr), 1));
        b.ret(acc);
        b.endFunction();
    };

    make_handler(fn_h_static, 0,
                 [&](ValueId conn, ValueId req, ValueId resp,
                     ValueId acc) {
                     // Stage the response in a stack buffer before
                     // copying it out (the pattern real servers use
                     // for header assembly).
                     uint32_t stage_obj =
                         b.addFrameObject("stage", kReqBytes);
                     ValueId stage = b.frameAddr(stage_obj);
                     LoopBuilder loop(b, 0, kReqBytes);
                     ValueId ch =
                         b.load8(b.add(req, loop.index()));
                     b.assign(acc,
                              b.add(b.mulI(acc, 33), ch));
                     b.store8(b.add(stage, loop.index()), ch);
                     loop.finish();
                     LoopBuilder out(b, 0, kReqBytes);
                     b.store8(b.add(resp, out.index()),
                              b.load8(b.add(stage, out.index())));
                     out.finish();
                     b.assignBinop(IrOp::Xor, acc, acc, conn);
                 });

    make_handler(fn_h_dyn, 1,
                 [&](ValueId conn, ValueId req, ValueId resp,
                     ValueId acc) {
                     // "Template rendering": interleave request
                     // bytes with computed digits.
                     LoopBuilder loop(b, 0, kReqBytes / 2);
                     ValueId ch =
                         b.load8(b.add(req, loop.index()));
                     ValueId digit = b.addI(
                         b.andI(b.mul(ch, conn), 9), '0');
                     ValueId out_off = b.shlI(loop.index(), 1);
                     b.store8(b.add(resp, out_off), ch);
                     b.store8(b.add(resp, out_off), digit, 1);
                     b.assign(acc, b.add(b.mulI(acc, 131), digit));
                     loop.finish();
                 });

    make_handler(fn_h_post, 2,
                 [&](ValueId conn, ValueId req, ValueId resp,
                     ValueId acc) {
                     // "Body digest": word-at-a-time FNV.
                     (void)resp;
                     LoopBuilder loop(b, 0, kReqBytes / 4);
                     ValueId w = b.load(
                         b.add(req, b.shlI(loop.index(), 2)));
                     fnvMix(b, acc, w);
                     loop.finish();
                     b.assignBinop(IrOp::Add, acc, acc, conn);
                 });

    make_handler(fn_h_err, 3,
                 [&](ValueId conn, ValueId req, ValueId resp,
                     ValueId acc) {
                     (void)req;
                     LoopBuilder loop(b, 0, 16);
                     b.store8(b.add(resp, loop.index()),
                              b.constI('!'));
                     loop.finish();
                     b.assign(acc, b.xorI(conn, 0x404));
                 });

    b.beginFunction(fn_main);
    {
        ValueId h = b.constI(0x811c9dc5);
        ValueId s = b.constI(static_cast<int32_t>(cfg.seed ^ 0xae));
        // Handler dispatch table, looked up per request — the
        // CallInd sites a JOP attack would target.
        ValueId fp0 = b.funcAddr(fn_h_static);
        ValueId fp1 = b.funcAddr(fn_h_dyn);
        ValueId fp2 = b.funcAddr(fn_h_post);
        ValueId fp3 = b.funcAddr(fn_h_err);
        LoopBuilder conns(b, 0,
                          static_cast<int32_t>(32 * cfg.scale));
        {
            b.assign(s, b.call(fn_gen, { s }));
            ValueId idx = b.call(fn_parse, {});
            ValueId handler = b.copy(fp0);
            uint32_t c1 = b.newBlock(), c2 = b.newBlock(),
                     c3 = b.newBlock(), go = b.newBlock();
            b.condBrI(Cond::Eq, idx, 1, c1, c2);
            b.setBlock(c1);
            b.assign(handler, fp1);
            b.br(go);
            b.setBlock(c2);
            b.condBrI(Cond::Eq, idx, 2, c3, go);
            b.setBlock(c3);
            b.assign(handler, fp2);
            b.br(go);
            b.setBlock(go);
            uint32_t use_err = b.newBlock(), call_bb = b.newBlock();
            b.condBrI(Cond::Eq, idx, 3, use_err, call_bb);
            b.setBlock(use_err);
            b.assign(handler, fp3);
            b.br(call_bb);
            b.setBlock(call_bb);
            ValueId resp_sum =
                b.callInd(handler, { conns.index() });
            fnvMix(b, h, resp_sum);
            // Send the response on the wire: the four-register
            // write(buf, len, conn) syscall.
            ValueId num =
                b.constI(int32_t(SyscallNo::WriteBuf));
            ValueId resp_ptr = b.globalAddr(g_resp);
            ValueId len = b.constI(16);
            b.syscallVoid({ num, resp_ptr, len, conns.index() });
        }
        conns.finish();
        finishMain(b, h);
    }
    b.endFunction();

    return m;
}

} // namespace hipstr
