#include "cache.hh"

#include "support/bitops.hh"
#include "support/logging.hh"

namespace hipstr
{

CacheSim::CacheSim(uint32_t capacity_bytes, unsigned ways,
                   unsigned line_bytes)
    : _ways(ways), _lineShift(log2Floor(line_bytes))
{
    hipstr_assert(isPowerOf2(capacity_bytes));
    hipstr_assert(isPowerOf2(line_bytes));
    uint32_t lines = capacity_bytes / line_bytes;
    hipstr_assert(lines >= ways && lines % ways == 0);
    _sets = lines / ways;
    hipstr_assert(isPowerOf2(_sets));
    _lines.resize(lines);
}

bool
CacheSim::access(Addr addr)
{
    ++_tick;
    Addr line_addr = addr >> _lineShift;
    unsigned set = line_addr & (_sets - 1);
    Addr tag = line_addr >> log2Floor(_sets);

    Line *base = &_lines[set * _ways];
    Line *victim = base;
    for (unsigned w = 0; w < _ways; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            l.lastUse = _tick;
            ++_hits;
            return true;
        }
        if (!l.valid) {
            victim = &l;
        } else if (victim->valid && l.lastUse < victim->lastUse) {
            victim = &l;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = _tick;
    ++_misses;
    return false;
}

void
CacheSim::reset()
{
    for (Line &l : _lines)
        l.valid = false;
    _hits = 0;
    _misses = 0;
    _tick = 0;
}

} // namespace hipstr
