#include "rat.hh"

#include "support/bitops.hh"
#include "support/logging.hh"

namespace hipstr
{

ReturnAddressTable::ReturnAddressTable(unsigned entries, unsigned ways)
    : _entries(entries), _ways(ways)
{
    hipstr_assert(entries >= ways);
    hipstr_assert(entries % ways == 0);
    _sets = entries / ways;
    hipstr_assert(isPowerOf2(_sets));
    _table.resize(entries);
}

size_t
ReturnAddressTable::setIndex(Addr source) const
{
    // Return addresses are dense and arbitrarily aligned in the code
    // section; a multiplicative hash spreads neighbouring call sites
    // across sets regardless of their stride.
    uint32_t h = source * 2654435761u;
    return (h >> 16) & (_sets - 1);
}

void
ReturnAddressTable::insert(Addr source, Addr translated,
                           TranslatedBlock *block)
{
    ++_tick;
    ++_insertions;
    Entry *set = &_table[setIndex(source) * _ways];
    Entry *victim = &set[0];
    for (unsigned w = 0; w < _ways; ++w) {
        Entry &e = set[w];
        if (e.valid && e.source == source) {
            e.translated = translated;
            e.block = block;
            e.lastUse = _tick;
            return;
        }
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    victim->valid = true;
    victim->source = source;
    victim->translated = translated;
    victim->block = block;
    victim->lastUse = _tick;
}

bool
ReturnAddressTable::lookup(Addr source, Addr &translated)
{
    TranslatedBlock *ignored;
    return lookup(source, translated, ignored);
}

bool
ReturnAddressTable::lookup(Addr source, Addr &translated,
                           TranslatedBlock *&block)
{
    ++_tick;
    Entry *set = &_table[setIndex(source) * _ways];
    for (unsigned w = 0; w < _ways; ++w) {
        Entry &e = set[w];
        if (e.valid && e.source == source) {
            e.lastUse = _tick;
            translated = e.translated;
            block = e.block;
            ++_hits;
            return true;
        }
    }
    ++_misses;
    return false;
}

void
ReturnAddressTable::saveState(ByteWriter &w) const
{
    w.u32(_entries);
    w.u32(_ways);
    w.u64(_tick);
    w.u64(_hits);
    w.u64(_misses);
    w.u64(_insertions);
    for (const Entry &e : _table) {
        w.boolean(e.valid);
        w.u32(e.source);
        w.u32(e.translated);
        w.u64(e.lastUse);
    }
}

void
ReturnAddressTable::loadState(ByteReader &r)
{
    uint32_t entries = r.u32();
    uint32_t ways = r.u32();
    if (entries != _entries || ways != _ways)
        throw SerializeError(SerializeErrc::Corrupt,
                             "RAT geometry mismatch");
    _tick = r.u64();
    _hits = r.u64();
    _misses = r.u64();
    _insertions = r.u64();
    for (Entry &e : _table) {
        e.valid = r.boolean();
        e.source = r.u32();
        e.translated = r.u32();
        e.block = nullptr;
        e.lastUse = r.u64();
    }
}

void
ReturnAddressTable::flush()
{
    for (Entry &e : _table) {
        e.valid = false;
        e.block = nullptr;
    }
}

} // namespace hipstr
