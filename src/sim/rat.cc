#include "rat.hh"

#include "support/bitops.hh"
#include "support/logging.hh"

namespace hipstr
{

ReturnAddressTable::ReturnAddressTable(unsigned entries, unsigned ways)
    : _entries(entries), _ways(ways)
{
    hipstr_assert(entries >= ways);
    hipstr_assert(entries % ways == 0);
    _sets = entries / ways;
    hipstr_assert(isPowerOf2(_sets));
    _table.resize(entries);
}

size_t
ReturnAddressTable::setIndex(Addr source) const
{
    // Return addresses are dense and arbitrarily aligned in the code
    // section; a multiplicative hash spreads neighbouring call sites
    // across sets regardless of their stride.
    uint32_t h = source * 2654435761u;
    return (h >> 16) & (_sets - 1);
}

void
ReturnAddressTable::insert(Addr source, Addr translated,
                           TranslatedBlock *block)
{
    ++_tick;
    ++_insertions;
    Entry *set = &_table[setIndex(source) * _ways];
    Entry *victim = &set[0];
    for (unsigned w = 0; w < _ways; ++w) {
        Entry &e = set[w];
        if (e.valid && e.source == source) {
            e.translated = translated;
            e.block = block;
            e.lastUse = _tick;
            return;
        }
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    victim->valid = true;
    victim->source = source;
    victim->translated = translated;
    victim->block = block;
    victim->lastUse = _tick;
}

bool
ReturnAddressTable::lookup(Addr source, Addr &translated)
{
    TranslatedBlock *ignored;
    return lookup(source, translated, ignored);
}

bool
ReturnAddressTable::lookup(Addr source, Addr &translated,
                           TranslatedBlock *&block)
{
    ++_tick;
    Entry *set = &_table[setIndex(source) * _ways];
    for (unsigned w = 0; w < _ways; ++w) {
        Entry &e = set[w];
        if (e.valid && e.source == source) {
            e.lastUse = _tick;
            translated = e.translated;
            block = e.block;
            ++_hits;
            return true;
        }
    }
    ++_misses;
    return false;
}

void
ReturnAddressTable::flush()
{
    for (Entry &e : _table) {
        e.valid = false;
        e.block = nullptr;
    }
}

} // namespace hipstr
