/**
 * @file
 * Core models of the heterogeneous-ISA CMP (Table 1): a low-power
 * in-order-ish ARM-like core (Cortex A9-class) and a high-performance
 * out-of-order x86-like core (Xeon-class). The cycle-approximate
 * timing model reduces each core to a calibrated effective IPC plus
 * first-level cache behaviour; the evaluation compares *relative*
 * overheads, which this preserves.
 */

#ifndef HIPSTR_SIM_CORE_CONFIG_HH
#define HIPSTR_SIM_CORE_CONFIG_HH

#include <ostream>
#include <string>

#include "isa/isa.hh"

namespace hipstr
{

/** One core's parameters (Table 1). */
struct CoreConfig
{
    std::string name;
    double freqGhz;
    unsigned fetchWidth;
    unsigned issueWidth;
    unsigned robSize;
    unsigned lqEntries;
    unsigned sqEntries;
    unsigned icacheBytes;
    unsigned icacheWays;
    unsigned dcacheBytes;
    unsigned dcacheWays;
    /** Calibrated effective instructions per cycle on clean code. */
    double baseIpc;
};

/** Table 1 configuration for @p isa's core. */
const CoreConfig &coreConfig(IsaKind isa);

/** Print Table 1 in the paper's shape. */
void printCoreTable(std::ostream &os);

} // namespace hipstr

#endif // HIPSTR_SIM_CORE_CONFIG_HH
