#include "core_config.hh"

#include "support/stats.hh"

namespace hipstr
{

const CoreConfig &
coreConfig(IsaKind isa)
{
    // Table 1. The ARM-like core: 2 GHz, 2-wide fetch, 20-entry ROB,
    // 16/16 LQ/SQ. The x86-like core: 3.3 GHz, 4-wide fetch,
    // 128-entry ROB, 48/96 LQ/SQ. Both: 32 KB 2-way L1 caches.
    static const CoreConfig arm_like = {
        "ARM-like (Cortex A9-class)",
        2.0, 2, 4, 20, 16, 16,
        32 * 1024, 2, 32 * 1024, 2,
        1.1,
    };
    static const CoreConfig x86_like = {
        "x86-like (Xeon-class)",
        3.3, 4, 4, 128, 48, 96,
        32 * 1024, 2, 32 * 1024, 2,
        1.9,
    };
    return isa == IsaKind::Risc ? arm_like : x86_like;
}

void
printCoreTable(std::ostream &os)
{
    TextTable t({ "Core", "Freq", "Fetch", "Issue", "ROB", "LQ/SQ",
                  "I$", "D$" });
    for (IsaKind isa : kAllIsas) {
        const CoreConfig &c = coreConfig(isa);
        t.addRow({ c.name, formatDouble(c.freqGhz, 1) + " GHz",
                   std::to_string(c.fetchWidth),
                   std::to_string(c.issueWidth),
                   std::to_string(c.robSize),
                   std::to_string(c.lqEntries) + "/" +
                       std::to_string(c.sqEntries),
                   "32KB/2w", "32KB/2w" });
    }
    t.print(os);
}

} // namespace hipstr
