/**
 * @file
 * Cycle-approximate timing model.
 *
 * Converts an execution (native interpreter or PSR virtual machine)
 * into cycles on one of Table 1's cores: issue-width-limited base IPC,
 * L1 instruction/data cache simulation, the hardware RAT's 1-cycle
 * return translation and miss traps, dispatcher and translation costs
 * for the VM, the 3-entry global register cache of Section 5.4
 * (modeled as an L0 filter over stack accesses), and Isomeron's
 * per-flip shepherding cost.
 *
 * Absolute cycle counts are not claimed — the evaluation reproduces
 * *relative* overheads (PSR optimization levels, entropy levels, RAT
 * and code-cache sizing, Isomeron comparison), which a calibrated
 * model of this form preserves.
 */

#ifndef HIPSTR_SIM_TIMING_HH
#define HIPSTR_SIM_TIMING_HH

#include <cstdint>

#include "isa/interp.hh"
#include "sim/cache.hh"
#include "sim/core_config.hh"

namespace hipstr
{

class PsrVm;
struct VmStats;

/** Cost constants (cycles). */
struct TimingParams
{
    double l1MissCycles = 14;
    double stackAccessCycles = 1.0; ///< charged per L0-missing
                                     ///< stack access (PSR slot
                                     ///< traffic; spills in native)
    double dispatchCycles = 40;      ///< VM dispatcher entry
    double translateCyclesPerGuestInst = 240;
    double ratMissCycles = 28;
    double cacheFlushCycles = 9000;
    double syscallCycles = 90;
    double isomeronFlipCycles = 26;  ///< program-shepherding cost per
                                     ///< call/return coin flip
};

/** Tiny fully-associative word cache (the global register cache). */
class RegCacheSim
{
  public:
    explicit RegCacheSim(unsigned entries);
    /** @retval true on hit (the access is register-speed). */
    bool access(Addr word_addr);
    uint64_t hits() const { return _hits; }
    uint64_t misses() const { return _misses; }
    void reset();

  private:
    struct Entry
    {
        bool valid = false;
        Addr addr = 0;
        uint64_t lastUse = 0;
    };
    std::vector<Entry> _entries;
    uint64_t _tick = 0;
    uint64_t _hits = 0;
    uint64_t _misses = 0;
};

/** Counter snapshot for steady-state (delta) measurement. */
struct TimingSnapshot
{
    uint64_t icacheMisses = 0;
    uint64_t dcacheMisses = 0;
    uint64_t stackCost = 0;
    uint64_t nativeInsts = 0;
    uint64_t nativeSyscalls = 0;
};

/**
 * Attaches to one execution engine, simulates its memory hierarchy,
 * and produces cycle counts.
 */
class TimingHarness
{
  public:
    /**
     * @param isa            which core of Table 1
     * @param reg_cache_on   global register cache enabled (PSR >= O2)
     * @param reg_cache_entries 3 in the paper
     */
    TimingHarness(IsaKind isa, bool reg_cache_on,
                  unsigned reg_cache_entries = 3);

    /** Install fetch/data hooks on a PSR VM. */
    void attachVm(PsrVm &vm);

    /** Install the trace hook on a native interpreter. */
    void attachInterpreter(Interpreter &interp);

    /** Current counter values (for delta measurement). */
    TimingSnapshot snapshot() const;

    /** Cycles for a VM execution with this harness attached. */
    double vmCycles(const VmStats &stats) const;
    /** Steady-state variant: only the work after the snapshots. */
    double vmCyclesSince(const VmStats &before,
                         const VmStats &after,
                         const TimingSnapshot &t0) const;

    /** Cycles for a native run traced through this harness. */
    double nativeCycles() const;
    /** Steady-state variant. */
    double nativeCyclesSince(const TimingSnapshot &t0) const;

    double
    seconds(double cycles) const
    {
        return cycles / (_core.freqGhz * 1e9);
    }

    const CoreConfig &core() const { return _core; }
    const CacheSim &icache() const { return _icache; }
    const CacheSim &dcache() const { return _dcache; }
    const RegCacheSim &regCache() const { return _l0; }
    uint64_t tracedInsts() const { return _nativeInsts; }

    TimingParams params;

  private:
    void dataAccess(Addr addr);

    const CoreConfig &_core;
    CacheSim _icache;
    CacheSim _dcache;
    RegCacheSim _l0;
    bool _regCacheOn;
    uint64_t _nativeInsts = 0;
    uint64_t _nativeSyscalls = 0;
    uint64_t _stackAccessCost = 0; ///< L0-missing stack accesses
};

} // namespace hipstr

#endif // HIPSTR_SIM_TIMING_HH
