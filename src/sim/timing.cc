#include "timing.hh"

#include "isa/mem_traffic.hh"
#include "isa/memory.hh"
#include "support/logging.hh"
// Header-only use: hook members and VmStats. The sim library has no
// link dependency on the VM.
#include "vm/psr_vm.hh"

namespace hipstr
{

RegCacheSim::RegCacheSim(unsigned entries) : _entries(entries)
{
    hipstr_assert(entries >= 1);
}

bool
RegCacheSim::access(Addr word_addr)
{
    ++_tick;
    Entry *victim = &_entries[0];
    for (Entry &e : _entries) {
        if (e.valid && e.addr == word_addr) {
            e.lastUse = _tick;
            ++_hits;
            return true;
        }
        if (!e.valid)
            victim = &e;
        else if (victim->valid && e.lastUse < victim->lastUse)
            victim = &e;
    }
    victim->valid = true;
    victim->addr = word_addr;
    victim->lastUse = _tick;
    ++_misses;
    return false;
}

void
RegCacheSim::reset()
{
    for (Entry &e : _entries)
        e.valid = false;
    _hits = 0;
    _misses = 0;
    _tick = 0;
}

TimingHarness::TimingHarness(IsaKind isa, bool reg_cache_on,
                             unsigned reg_cache_entries)
    : _core(coreConfig(isa)),
      _icache(_core.icacheBytes, _core.icacheWays),
      _dcache(_core.dcacheBytes, _core.dcacheWays),
      _l0(reg_cache_entries), _regCacheOn(reg_cache_on)
{
}

void
TimingHarness::dataAccess(Addr addr)
{
    bool stack = addr >= layout::kStackLimit;
    if (stack) {
        if (_regCacheOn && _l0.access(addr >> 2)) {
            // Register-cache hit: register speed, no D-cache traffic.
            return;
        }
        ++_stackAccessCost;
    }
    _dcache.access(addr);
}

void
TimingHarness::attachVm(PsrVm &vm)
{
    vm.dataTraceHook = [this](Addr addr, bool) { dataAccess(addr); };
    vm.fetchTraceHook = [this](Addr cache_addr) {
        _icache.access(cache_addr);
    };
}

void
TimingHarness::attachInterpreter(Interpreter &interp)
{
    // Memory-traffic enumeration is shared with the VM's trace path
    // (forEachMemAccess), so native and VM timing count the same
    // accesses for the same instruction stream.
    Interpreter *ip = &interp;
    interp.traceHook = [this, ip](const MachInst &mi, Addr pc) {
        ++_nativeInsts;
        _icache.access(pc);
        forEachMemAccess(mi, ip->state,
                         [this](Addr addr, bool) { dataAccess(addr); });
        if (mi.op == Op::Syscall)
            ++_nativeSyscalls;
    };
}

TimingSnapshot
TimingHarness::snapshot() const
{
    TimingSnapshot t;
    t.icacheMisses = _icache.misses();
    t.dcacheMisses = _dcache.misses();
    t.stackCost = _stackAccessCost;
    t.nativeInsts = _nativeInsts;
    t.nativeSyscalls = _nativeSyscalls;
    return t;
}

double
TimingHarness::vmCyclesSince(const VmStats &b, const VmStats &a,
                             const TimingSnapshot &t0) const
{
    double cycles = double(a.hostInsts - b.hostInsts) / _core.baseIpc;
    cycles += double(_icache.misses() - t0.icacheMisses) *
        params.l1MissCycles;
    cycles += double(_dcache.misses() - t0.dcacheMisses) *
        params.l1MissCycles;
    cycles += double(_stackAccessCost - t0.stackCost) *
        params.stackAccessCycles;
    cycles += double(a.dispatches - b.dispatches) *
        params.dispatchCycles;
    cycles += double(a.translatedGuestInsts -
                     b.translatedGuestInsts) *
        params.translateCyclesPerGuestInst;
    cycles += double(a.ratHits - b.ratHits) *
        double(ReturnAddressTable::kLookupCycles);
    cycles += double(a.ratMisses - b.ratMisses) *
        params.ratMissCycles;
    cycles += double(a.cacheFlushes - b.cacheFlushes) *
        params.cacheFlushCycles;
    cycles += double(a.syscalls - b.syscalls) * params.syscallCycles;
    cycles += double(a.diversificationFlips -
                     b.diversificationFlips) *
        params.isomeronFlipCycles;
    return cycles;
}

double
TimingHarness::nativeCyclesSince(const TimingSnapshot &t0) const
{
    double cycles =
        double(_nativeInsts - t0.nativeInsts) / _core.baseIpc;
    cycles += double(_icache.misses() - t0.icacheMisses) *
        params.l1MissCycles;
    cycles += double(_dcache.misses() - t0.dcacheMisses) *
        params.l1MissCycles;
    cycles += double(_stackAccessCost - t0.stackCost) *
        params.stackAccessCycles;
    cycles += double(_nativeSyscalls - t0.nativeSyscalls) *
        params.syscallCycles;
    return cycles;
}

double
TimingHarness::vmCycles(const VmStats &s) const
{
    double cycles = double(s.hostInsts) / _core.baseIpc;
    cycles += double(_icache.misses()) * params.l1MissCycles;
    cycles += double(_dcache.misses()) * params.l1MissCycles;
    cycles += double(_stackAccessCost) * params.stackAccessCycles;
    cycles += double(s.dispatches) * params.dispatchCycles;
    cycles += double(s.translatedGuestInsts) *
        params.translateCyclesPerGuestInst;
    cycles += double(s.ratHits) *
        double(ReturnAddressTable::kLookupCycles);
    cycles += double(s.ratMisses) * params.ratMissCycles;
    cycles += double(s.cacheFlushes) * params.cacheFlushCycles;
    cycles += double(s.syscalls) * params.syscallCycles;
    cycles += double(s.diversificationFlips) *
        params.isomeronFlipCycles;
    return cycles;
}

double
TimingHarness::nativeCycles() const
{
    double cycles = double(_nativeInsts) / _core.baseIpc;
    cycles += double(_icache.misses()) * params.l1MissCycles;
    cycles += double(_dcache.misses()) * params.l1MissCycles;
    cycles += double(_stackAccessCost) * params.stackAccessCycles;
    cycles += double(_nativeSyscalls) * params.syscallCycles;
    return cycles;
}

} // namespace hipstr
