/**
 * @file
 * Set-associative LRU cache simulator, used for the L1 instruction and
 * data caches of Table 1 and for the 3-entry global register cache of
 * Section 5.4 (modeled as a tiny fully-associative L0 over stack
 * words).
 */

#ifndef HIPSTR_SIM_CACHE_HH
#define HIPSTR_SIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "isa/isa.hh"

namespace hipstr
{

/** A set-associative cache with true-LRU replacement. */
class CacheSim
{
  public:
    /**
     * @param capacity_bytes total size (power of two)
     * @param ways           associativity
     * @param line_bytes     line size (power of two, default 64)
     */
    CacheSim(uint32_t capacity_bytes, unsigned ways,
             unsigned line_bytes = 64);

    /** Touch @p addr. @retval true on hit. */
    bool access(Addr addr);

    uint64_t hits() const { return _hits; }
    uint64_t misses() const { return _misses; }
    uint64_t accesses() const { return _hits + _misses; }
    double
    missRate() const
    {
        return accesses() ? double(_misses) / double(accesses()) : 0;
    }
    void reset();

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        uint64_t lastUse = 0;
    };

    unsigned _ways;
    unsigned _lineShift;
    unsigned _sets;
    std::vector<Line> _lines;
    uint64_t _tick = 0;
    uint64_t _hits = 0;
    uint64_t _misses = 0;
};

} // namespace hipstr

#endif // HIPSTR_SIM_CACHE_HH
