/**
 * @file
 * Hardware Return Address Table (RAT) model.
 *
 * PSR mandates that return addresses stored on the stack always point
 * at *source* code. The call macro-op inserts a mapping from the
 * source return address to its translated location; the return
 * macro-op performs the reverse translation with a one-cycle penalty
 * (Section 5.1). A RAT miss traps to the translator. Figure 11 sweeps
 * the table size from 32 to 2048 entries.
 */

#ifndef HIPSTR_SIM_RAT_HH
#define HIPSTR_SIM_RAT_HH

#include <cstdint>
#include <vector>

#include "isa/isa.hh"
#include "support/serialize.hh"

namespace hipstr
{

struct TranslatedBlock;

/** Set-associative return address table with LRU replacement. */
class ReturnAddressTable
{
  public:
    /**
     * @param entries total entry count (power of two >= ways)
     * @param ways    associativity (default 4)
     */
    explicit ReturnAddressTable(unsigned entries, unsigned ways = 4);

    /**
     * Install source -> translated mapping (the call macro-op).
     * @p block optionally memoizes the resolved translation so a hit
     * needs no code-cache lookup; callers must flush() whenever the
     * memoized pointers die (every code-cache flush already does).
     */
    void insert(Addr source, Addr translated,
                TranslatedBlock *block = nullptr);

    /**
     * Translate a source return address (the return macro-op).
     * @retval true on hit; @p translated receives the mapping.
     */
    bool lookup(Addr source, Addr &translated);

    /**
     * Translate plus block memo: on a hit, @p block receives the
     * memoized translation (nullptr when none was installed).
     */
    bool lookup(Addr source, Addr &translated,
                TranslatedBlock *&block);

    /** Remove every entry (code cache flush invalidates the RAT). */
    void flush();

    uint64_t hits() const { return _hits; }
    uint64_t misses() const { return _misses; }
    uint64_t insertions() const { return _insertions; }
    unsigned entries() const { return _entries; }

    /** Per-lookup latency in cycles (the paper's 1-cycle penalty). */
    static constexpr unsigned kLookupCycles = 1;

    /**
     * Checkpoint the table contents and LRU/hit counters. The block
     * memo pointers die with the code cache and are NOT serialized:
     * a restored entry carries block == nullptr, so the first return
     * through it takes the existing stale-memo path (silent refetch,
     * still a RAT hit) and the translation rebuilds cold. loadState
     * requires identical geometry (entries/ways) and throws
     * SerializeError otherwise. @{
     */
    void saveState(ByteWriter &w) const;
    void loadState(ByteReader &r);
    /** @} */

  private:
    struct Entry
    {
        bool valid = false;
        Addr source = 0;
        Addr translated = 0;
        /** Memoized translation (invalidated by flush()). */
        TranslatedBlock *block = nullptr;
        uint64_t lastUse = 0;
    };

    unsigned _entries;
    unsigned _ways;
    unsigned _sets;
    std::vector<Entry> _table; ///< _sets x _ways
    uint64_t _tick = 0;
    uint64_t _hits = 0;
    uint64_t _misses = 0;
    uint64_t _insertions = 0;

    size_t setIndex(Addr source) const;
};

} // namespace hipstr

#endif // HIPSTR_SIM_RAT_HH
