#include "loader.hh"

#include <cstring>
#include <iterator>

#include "support/logging.hh"

namespace hipstr
{

namespace
{

/** 'HFB1', little-endian. */
constexpr uint32_t kImageMagic = 0x31424648u;
constexpr uint32_t kImageVersion = 1;
constexpr uint32_t kHeaderBytes = 16;
constexpr uint32_t kEntryBytes = 16;
/** Far above anything packLoadImage emits; bounds corrupt counts. */
constexpr uint32_t kMaxSections = 64;

enum SectionKind : uint32_t
{
    kSecCodeRisc = 0,
    kSecCodeCisc = 1,
    kSecData = 2,
    kSecMeta = 3,
};

/** Capacity of the target region for a loadable section kind. */
uint32_t
sectionCapacity(uint32_t kind)
{
    switch (kind) {
      case kSecCodeRisc:
        return layout::kCiscCodeBase - layout::kRiscCodeBase;
      case kSecCodeCisc:
        return layout::kDataBase - layout::kCiscCodeBase;
      case kSecData:
        return layout::kHeapBase - layout::kGlobalsBase;
      default:
        return 0;
    }
}

uint32_t
rd32(const std::vector<uint8_t> &v, size_t off)
{
    uint32_t x;
    std::memcpy(&x, v.data() + off, 4);
    return x;
}

void
wr32(std::vector<uint8_t> &v, size_t off, uint32_t x)
{
    std::memcpy(v.data() + off, &x, 4);
}

/**
 * Structural validation shared by loadFatBinary and packLoadImage:
 * everything the canonical layout demands of a FatBinary, checked
 * before a single byte moves.
 */
void
validateFatBinary(const FatBinary &bin)
{
    std::string issue = bin.structuralIssue();
    if (!issue.empty())
        throw LoadError(0, issue);
}

} // namespace

LoadError::LoadError(uint64_t offset, const std::string &reason)
    : std::runtime_error("fat binary load error at offset " +
                         std::to_string(offset) + ": " + reason),
      _offset(offset), _reason(reason)
{
}

void
loadFatBinary(const FatBinary &bin, Memory &mem)
{
    validateFatBinary(bin);

    // Code sections. Readable + executable: the JIT-ROP threat model
    // assumes code pages can be disclosed through a leaked pointer.
    for (IsaKind isa : kAllIsas) {
        size_t idx = static_cast<size_t>(isa);
        const auto &code = bin.code[idx];
        Addr base = layout::codeBase(isa);
        mem.rawWriteBytes(base, code.data(), code.size());
        mem.setRegion(base, static_cast<uint32_t>(code.size()), PermRX,
                      std::string("code.") + isaName(isa));
    }

    // Function-pointer dispatch tables (read-only).
    for (IsaKind isa : kAllIsas) {
        Addr table = layout::funcTableBase(isa);
        const auto &fns = bin.funcsFor(isa);
        for (size_t i = 0; i < fns.size(); ++i)
            mem.rawWrite32(table + static_cast<Addr>(4 * i),
                           fns[i].entry);
        mem.setRegion(table, 0x1000, PermR,
                      std::string("functable.") + isaName(isa));
    }

    // Shared data image.
    if (!bin.data.empty())
        mem.rawWriteBytes(layout::kGlobalsBase, bin.data.data(),
                          bin.data.size());
    uint32_t data_region = bin.dataSize ? bin.dataSize : 4;
    mem.setRegion(layout::kGlobalsBase, data_region, PermRW, "data");

    // Heap and stack.
    mem.setRegion(layout::kHeapBase,
                  layout::kStackLimit - layout::kHeapBase, PermRW,
                  "heap");
    mem.setRegion(layout::kStackLimit,
                  layout::kStackTop - layout::kStackLimit, PermRW,
                  "stack");
}

std::vector<uint8_t>
packLoadImage(const FatBinary &bin)
{
    validateFatBinary(bin);

    struct Section
    {
        uint32_t kind;
        const uint8_t *bytes;
        uint32_t size;
        uint32_t aux;
    };
    const Section sections[] = {
        { kSecCodeRisc, bin.code[0].data(),
          static_cast<uint32_t>(bin.code[0].size()), 0 },
        { kSecCodeCisc, bin.code[1].data(),
          static_cast<uint32_t>(bin.code[1].size()), 0 },
        { kSecData, bin.data.data(),
          static_cast<uint32_t>(bin.data.size()), bin.dataSize },
        { kSecMeta, nullptr, 0, bin.entryFuncId },
    };
    const uint32_t count =
        static_cast<uint32_t>(std::size(sections));

    uint32_t total = kHeaderBytes + count * kEntryBytes;
    for (const Section &s : sections)
        total += s.size;

    std::vector<uint8_t> out(total, 0);
    wr32(out, 0, kImageMagic);
    wr32(out, 4, kImageVersion);
    wr32(out, 8, count);
    wr32(out, 12, total);

    uint32_t payload = kHeaderBytes + count * kEntryBytes;
    for (uint32_t i = 0; i < count; ++i) {
        const Section &s = sections[i];
        const uint32_t entry = kHeaderBytes + i * kEntryBytes;
        wr32(out, entry + 0, s.kind);
        wr32(out, entry + 4, s.size ? payload : 0);
        wr32(out, entry + 8, s.size);
        wr32(out, entry + 12, s.aux);
        if (s.size) {
            std::memcpy(out.data() + payload, s.bytes, s.size);
            payload += s.size;
        }
    }
    return out;
}

void
loadFatBinaryImage(const std::vector<uint8_t> &image, Memory &mem)
{
    if (image.size() < kHeaderBytes)
        throw LoadError(0, "truncated header");
    if (rd32(image, 0) != kImageMagic)
        throw LoadError(0, "bad magic");
    if (rd32(image, 4) != kImageVersion)
        throw LoadError(4, "unsupported version");
    const uint32_t count = rd32(image, 8);
    if (count == 0 || count > kMaxSections)
        throw LoadError(8, "implausible section count");
    if (rd32(image, 12) != image.size())
        throw LoadError(12, "totalSize does not match image size");
    const uint64_t table_end =
        uint64_t(kHeaderBytes) + uint64_t(count) * kEntryBytes;
    if (table_end > image.size())
        throw LoadError(8, "truncated section table");

    // Validate the whole table before the first write: a bad image
    // must leave memory untouched.
    bool seen[4] = { false, false, false, false };
    for (uint32_t i = 0; i < count; ++i) {
        const uint32_t entry = kHeaderBytes + i * kEntryBytes;
        const uint32_t kind = rd32(image, entry + 0);
        const uint32_t off = rd32(image, entry + 4);
        const uint32_t size = rd32(image, entry + 8);
        if (kind > kSecMeta)
            throw LoadError(entry + 0, "unknown section kind");
        if (seen[kind])
            throw LoadError(entry + 0, "duplicate section kind");
        seen[kind] = true;
        if (uint64_t(off) + size > image.size())
            throw LoadError(entry + 4, "section exceeds image bounds");
        if (size != 0 && off < table_end)
            throw LoadError(entry + 4,
                            "section overlaps the header");
        if (kind != kSecMeta && size > sectionCapacity(kind))
            throw LoadError(entry + 8,
                            "section overflows its memory region");
        if ((kind == kSecCodeRisc || kind == kSecCodeCisc) &&
            size == 0) {
            throw LoadError(entry + 8, "empty code section");
        }
        if (kind == kSecData) {
            const uint32_t aux = rd32(image, entry + 12);
            if (aux < size || aux > sectionCapacity(kSecData))
                throw LoadError(entry + 12,
                                "bad zero-extended data size");
        }
    }
    if (!seen[kSecCodeRisc] || !seen[kSecCodeCisc])
        throw LoadError(8, "missing code section");

    for (uint32_t i = 0; i < count; ++i) {
        const uint32_t entry = kHeaderBytes + i * kEntryBytes;
        const uint32_t kind = rd32(image, entry + 0);
        const uint32_t off = rd32(image, entry + 4);
        const uint32_t size = rd32(image, entry + 8);
        switch (kind) {
          case kSecCodeRisc:
          case kSecCodeCisc: {
            const IsaKind isa = kind == kSecCodeRisc ? IsaKind::Risc
                                                     : IsaKind::Cisc;
            const Addr base = layout::codeBase(isa);
            mem.rawWriteBytes(base, image.data() + off, size);
            mem.setRegion(base, size, PermRX,
                          std::string("code.") + isaName(isa));
            break;
          }
          case kSecData: {
            const uint32_t aux = rd32(image, entry + 12);
            if (size)
                mem.rawWriteBytes(layout::kGlobalsBase,
                                  image.data() + off, size);
            mem.setRegion(layout::kGlobalsBase, aux ? aux : 4, PermRW,
                          "data");
            break;
          }
          case kSecMeta:
            break;
        }
    }

    mem.setRegion(layout::kHeapBase,
                  layout::kStackLimit - layout::kHeapBase, PermRW,
                  "heap");
    mem.setRegion(layout::kStackLimit,
                  layout::kStackTop - layout::kStackLimit, PermRW,
                  "stack");
}

void
initMachineState(MachineState &state, const FatBinary &bin, IsaKind isa)
{
    state = MachineState(isa);
    state.pc = bin.entryPoint[static_cast<size_t>(isa)];
    // A small red zone below the stack top keeps the first frame's
    // return address inside the mapped region.
    state.setSp(layout::kStackTop - 64);
}

} // namespace hipstr
