#include "loader.hh"

#include "support/logging.hh"

namespace hipstr
{

void
loadFatBinary(const FatBinary &bin, Memory &mem)
{
    // Code sections. Readable + executable: the JIT-ROP threat model
    // assumes code pages can be disclosed through a leaked pointer.
    for (IsaKind isa : kAllIsas) {
        size_t idx = static_cast<size_t>(isa);
        const auto &code = bin.code[idx];
        hipstr_assert(!code.empty());
        Addr base = layout::codeBase(isa);
        mem.rawWriteBytes(base, code.data(), code.size());
        mem.setRegion(base, static_cast<uint32_t>(code.size()), PermRX,
                      std::string("code.") + isaName(isa));
    }

    // Function-pointer dispatch tables (read-only).
    for (IsaKind isa : kAllIsas) {
        Addr table = layout::funcTableBase(isa);
        const auto &fns = bin.funcsFor(isa);
        hipstr_assert(fns.size() * 4 <= 0x1000);
        for (size_t i = 0; i < fns.size(); ++i)
            mem.rawWrite32(table + static_cast<Addr>(4 * i),
                           fns[i].entry);
        mem.setRegion(table, 0x1000, PermR,
                      std::string("functable.") + isaName(isa));
    }

    // Shared data image.
    if (!bin.data.empty())
        mem.rawWriteBytes(layout::kGlobalsBase, bin.data.data(),
                          bin.data.size());
    uint32_t data_region = bin.dataSize ? bin.dataSize : 4;
    mem.setRegion(layout::kGlobalsBase, data_region, PermRW, "data");

    // Heap and stack.
    mem.setRegion(layout::kHeapBase,
                  layout::kStackLimit - layout::kHeapBase, PermRW,
                  "heap");
    mem.setRegion(layout::kStackLimit,
                  layout::kStackTop - layout::kStackLimit, PermRW,
                  "stack");
}

void
initMachineState(MachineState &state, const FatBinary &bin, IsaKind isa)
{
    state = MachineState(isa);
    state.pc = bin.entryPoint[static_cast<size_t>(isa)];
    // A small red zone below the stack top keeps the first frame's
    // return address inside the mapped region.
    state.setSp(layout::kStackTop - 64);
}

} // namespace hipstr
