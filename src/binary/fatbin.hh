/**
 * @file
 * The symmetrical fat binary: one code section per ISA, a shared
 * ISA-agnostic data section, and the extended symbol table the PSR
 * runtime and the migration engine consume (Figure 2 of the paper).
 */

#ifndef HIPSTR_BINARY_FATBIN_HH
#define HIPSTR_BINARY_FATBIN_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ir/ir.hh"
#include "isa/isa.hh"

namespace hipstr
{

/**
 * Where a virtual register lives in one ISA's compilation of a
 * function. Every value also owns a canonical frame slot at @c slotOff
 * (the common frame map), whether or not it is register-allocated —
 * migration flushes register-resident values to their canonical slots,
 * which are laid out identically on both ISAs.
 */
struct VregLoc
{
    bool inReg = false;
    Reg reg = kNoReg;
    uint32_t slotOff = 0; ///< canonical [sp + slotOff] home
};

/**
 * A call site, identified across ISAs. Cross-ISA stack transformation
 * rewrites every return address on the stack from retAddr[A] to
 * retAddr[B] using this table.
 */
constexpr uint32_t kIndirectCallee = 0xffffffff;

struct CallSiteInfo
{
    uint32_t id = 0;
    uint32_t funcId = 0;                 ///< the *calling* function
    /** Static callee id; kIndirectCallee for function-pointer calls. */
    uint32_t calleeFuncId = kIndirectCallee;
    std::array<Addr, kNumIsas> callAddr{}; ///< address of the call inst
    std::array<Addr, kNumIsas> retAddr{};  ///< address after the call
};

/**
 * One machine basic block. Blocks are derived from IR blocks by
 * splitting at call sites, so the (irBlock, segment) pair identifies
 * the *same* equivalence point in both ISAs' code sections.
 */
struct MachBlockInfo
{
    Addr start = 0;
    Addr end = 0;              ///< exclusive
    uint32_t irBlock = 0;
    uint32_t segment = 0;
    std::vector<ValueId> liveIn;   ///< values live at block entry
    bool hasStackDerivedLiveIn = false;
    /**
     * For post-call segments: the call result value, which at block
     * entry is still in the return register (the stack transformer
     * maps retReg(A) to retReg(B) for it). kNoValue otherwise.
     */
    ValueId entryValueInRetReg = kNoValue;
    bool endsInCall = false;
    uint32_t callSiteId = 0;   ///< global id, valid when endsInCall
};

/** Per-function, per-ISA entry of the extended symbol table. */
struct FuncInfo
{
    uint32_t funcId = 0;
    std::string name;
    Addr entry = 0;
    uint32_t codeSize = 0;

    /** Common frame map (identical across ISAs). @{ */
    uint32_t frameSize = 0;
    uint32_t raSlot = 0;        ///< return-address slot offset
    uint32_t spillBase = 0;     ///< canonical slot of value v is
                                ///< spillBase + 4*v
    uint32_t calleeSaveBase = 0;
    std::vector<uint32_t> frameObjOff; ///< fixed (non-relocatable)
    /** @} */

    uint32_t numValues = 0;
    uint32_t numParams = 0;
    std::vector<VregLoc> vregLoc;       ///< this ISA's assignment
    std::vector<Reg> usedCalleeSaved;   ///< saved in the prologue
    std::vector<bool> vregStackDerived; ///< may point into the frame
    /** Derived values that are affine in the frame base (rebasable). */
    std::vector<bool> vregStackSimple;
    std::vector<MachBlockInfo> blocks;  ///< sorted by start address

    /**
     * Frame offsets PSR may relocate: value spill slots, callee-save
     * slots, the return-address slot, and the argument staging area.
     * Frame objects are excluded (pointers to them escape).
     */
    std::vector<uint32_t> relocatableSlots;

    uint32_t slotOf(ValueId v) const { return spillBase + 4 * v; }

    /** Block containing @p addr, or nullptr. */
    const MachBlockInfo *blockAt(Addr addr) const;
    /** Index of block with the given equivalence identity, or -1. */
    int blockIndexOf(uint32_t ir_block, uint32_t segment) const;
};

/** The complete fat binary. */
struct FatBinary
{
    std::string name;
    std::array<std::vector<uint8_t>, kNumIsas> code;
    std::array<Addr, kNumIsas> entryPoint{};        ///< _start
    /** Return address of _start's call to the entry function — the
     *  outermost frame's RA, mapped across ISAs by the migration
     *  engine like any other call site. */
    std::array<Addr, kNumIsas> startRetAddr{};
    std::array<std::vector<FuncInfo>, kNumIsas> funcs;
    std::vector<CallSiteInfo> callSites;
    std::vector<uint8_t> data;  ///< initialized image at kGlobalsBase
    uint32_t dataSize = 0;      ///< full size incl. zero-init tail
    std::vector<Addr> globalAddr; ///< per-global absolute address
    uint32_t entryFuncId = 0;     ///< the IR entry function
    /**
     * Functions whose id is taken by FuncAddr (reachable through
     * indirect calls). These keep the default calling convention under
     * PSR — an indirect call site cannot know its callee's randomized
     * convention at translation time.
     */
    std::vector<bool> addressTaken;

    const std::vector<FuncInfo> &funcsFor(IsaKind isa) const
    {
        return funcs[static_cast<size_t>(isa)];
    }

    /** Function whose code range contains @p addr, or nullptr. */
    const FuncInfo *findFuncByAddr(IsaKind isa, Addr addr) const;
    /** Function by id. */
    const FuncInfo &funcInfo(IsaKind isa, uint32_t id) const
    {
        return funcs[static_cast<size_t>(isa)].at(id);
    }
    /** Call site whose retAddr on @p isa equals @p ra, or nullptr. */
    const CallSiteInfo *findCallSiteByRetAddr(IsaKind isa,
                                              Addr ra) const;
    /** Total bytes of code for @p isa. */
    uint32_t codeSizeOf(IsaKind isa) const
    {
        return static_cast<uint32_t>(
            code[static_cast<size_t>(isa)].size());
    }

    /**
     * First structural violation of the canonical address-space
     * layout ("" when well-formed): empty or region-overflowing code
     * sections, an entry point outside its section, a function table
     * past its 1024 slots, or an oversized data image. The loader
     * turns a non-empty result into a typed LoadError before touching
     * guest memory.
     */
    std::string structuralIssue() const;
};

} // namespace hipstr

#endif // HIPSTR_BINARY_FATBIN_HH
