#include "fatbin.hh"

#include <algorithm>

#include "isa/memory.hh"

namespace hipstr
{

const MachBlockInfo *
FuncInfo::blockAt(Addr addr) const
{
    // Blocks are sorted by start address; binary search.
    auto it = std::upper_bound(
        blocks.begin(), blocks.end(), addr,
        [](Addr a, const MachBlockInfo &b) { return a < b.start; });
    if (it == blocks.begin())
        return nullptr;
    --it;
    if (addr >= it->start && addr < it->end)
        return &*it;
    return nullptr;
}

int
FuncInfo::blockIndexOf(uint32_t ir_block, uint32_t segment) const
{
    for (size_t i = 0; i < blocks.size(); ++i) {
        if (blocks[i].irBlock == ir_block &&
            blocks[i].segment == segment) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

const FuncInfo *
FatBinary::findFuncByAddr(IsaKind isa, Addr addr) const
{
    for (const FuncInfo &fi : funcs[static_cast<size_t>(isa)]) {
        if (addr >= fi.entry && addr < fi.entry + fi.codeSize)
            return &fi;
    }
    return nullptr;
}

std::string
FatBinary::structuralIssue() const
{
    for (IsaKind isa : kAllIsas) {
        const auto &sec = code[static_cast<size_t>(isa)];
        if (sec.empty())
            return std::string("empty code section: ") + isaName(isa);
        const Addr base = layout::codeBase(isa);
        const uint32_t cap = isa == IsaKind::Risc
            ? layout::kCiscCodeBase - layout::kRiscCodeBase
            : layout::kDataBase - layout::kCiscCodeBase;
        if (sec.size() > cap) {
            return std::string("code section overflows its region: ") +
                isaName(isa);
        }
        const Addr entry = entryPoint[static_cast<size_t>(isa)];
        if (entry < base || entry >= base + sec.size()) {
            return std::string("entry point outside code section: ") +
                isaName(isa);
        }
        if (funcsFor(isa).size() * 4 > 0x1000) {
            return std::string(
                       "function table overflows 1024 entries: ") +
                isaName(isa);
        }
    }
    if (!data.empty() && data.size() > dataSize)
        return "data image larger than declared dataSize";
    if (dataSize > layout::kHeapBase - layout::kGlobalsBase)
        return "data image overflows its region";
    return "";
}

const CallSiteInfo *
FatBinary::findCallSiteByRetAddr(IsaKind isa, Addr ra) const
{
    for (const CallSiteInfo &cs : callSites) {
        if (cs.retAddr[static_cast<size_t>(isa)] == ra)
            return &cs;
    }
    return nullptr;
}

} // namespace hipstr
