#include "fatbin.hh"

#include <algorithm>

namespace hipstr
{

const MachBlockInfo *
FuncInfo::blockAt(Addr addr) const
{
    // Blocks are sorted by start address; binary search.
    auto it = std::upper_bound(
        blocks.begin(), blocks.end(), addr,
        [](Addr a, const MachBlockInfo &b) { return a < b.start; });
    if (it == blocks.begin())
        return nullptr;
    --it;
    if (addr >= it->start && addr < it->end)
        return &*it;
    return nullptr;
}

int
FuncInfo::blockIndexOf(uint32_t ir_block, uint32_t segment) const
{
    for (size_t i = 0; i < blocks.size(); ++i) {
        if (blocks[i].irBlock == ir_block &&
            blocks[i].segment == segment) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

const FuncInfo *
FatBinary::findFuncByAddr(IsaKind isa, Addr addr) const
{
    for (const FuncInfo &fi : funcs[static_cast<size_t>(isa)]) {
        if (addr >= fi.entry && addr < fi.entry + fi.codeSize)
            return &fi;
    }
    return nullptr;
}

const CallSiteInfo *
FatBinary::findCallSiteByRetAddr(IsaKind isa, Addr ra) const
{
    for (const CallSiteInfo &cs : callSites) {
        if (cs.retAddr[static_cast<size_t>(isa)] == ra)
            return &cs;
    }
    return nullptr;
}

} // namespace hipstr
