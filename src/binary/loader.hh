/**
 * @file
 * Loads a fat binary into guest memory: both code sections, the shared
 * data image, the per-ISA function-pointer tables, and the memory
 * region permissions. Also initializes machine state for a fresh run.
 */

#ifndef HIPSTR_BINARY_LOADER_HH
#define HIPSTR_BINARY_LOADER_HH

#include <stdexcept>

#include "binary/fatbin.hh"
#include "isa/machine_state.hh"
#include "isa/memory.hh"

namespace hipstr
{

/**
 * A malformed, truncated, or address-space-violating binary image.
 * Carries the byte offset of the offending field (into the flat image
 * for loadFatBinaryImage; 0 for structural FatBinary violations) and
 * a stable reason string, so corrupt-input tests can assert on *what*
 * was rejected, not just that something threw.
 */
class LoadError : public std::runtime_error
{
  public:
    LoadError(uint64_t offset, const std::string &reason);

    uint64_t offset() const { return _offset; }
    const std::string &reason() const { return _reason; }

  private:
    uint64_t _offset;
    std::string _reason;
};

/**
 * Map the fat binary into @p mem. Code sections get PermRX (readable
 * so a JIT-ROP attacker can disclose them, exactly as the threat model
 * assumes), data/heap/stack get PermRW, and the function tables PermR.
 * The VM code-cache regions are left unmapped; the PSR virtual
 * machines map their own.
 *
 * @throws LoadError if the binary violates the canonical layout
 * (empty or oversized code section, function table past its 1024
 * entries, entry point outside its code section, oversized data
 * image) — before any byte is written to @p mem.
 */
void loadFatBinary(const FatBinary &bin, Memory &mem);

/**
 * Flat single-file load image of a fat binary's memory contents —
 * what would ship to another host. Little-endian throughout:
 *
 *   header   u32 magic 'HFB1'  u32 version=1
 *            u32 sectionCount  u32 totalSize (whole image, bytes)
 *   entries  sectionCount x { u32 kind; u32 offset; u32 size;
 *                             u32 aux; }
 *   payload  section bytes at their stated offsets
 *
 * Section kinds: 0 = code.risc, 1 = code.cisc, 2 = data (aux = full
 * zero-extended data size), 3 = meta (aux = entryFuncId; reserved).
 * @{
 */
std::vector<uint8_t> packLoadImage(const FatBinary &bin);

/**
 * Validate @p image and map its sections into @p mem exactly as
 * loadFatBinary would. Every header and section-table field is range-
 * checked before any write: a truncated, oversized, overlapping, or
 * region-violating image throws LoadError with the image offset of
 * the bad field and leaves @p mem untouched.
 */
void loadFatBinaryImage(const std::vector<uint8_t> &image, Memory &mem);
/** @} */

/**
 * Point @p state at the program entry for @p isa with a fresh stack.
 */
void initMachineState(MachineState &state, const FatBinary &bin,
                      IsaKind isa);

} // namespace hipstr

#endif // HIPSTR_BINARY_LOADER_HH
