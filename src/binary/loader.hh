/**
 * @file
 * Loads a fat binary into guest memory: both code sections, the shared
 * data image, the per-ISA function-pointer tables, and the memory
 * region permissions. Also initializes machine state for a fresh run.
 */

#ifndef HIPSTR_BINARY_LOADER_HH
#define HIPSTR_BINARY_LOADER_HH

#include "binary/fatbin.hh"
#include "isa/machine_state.hh"
#include "isa/memory.hh"

namespace hipstr
{

/**
 * Map the fat binary into @p mem. Code sections get PermRX (readable
 * so a JIT-ROP attacker can disclose them, exactly as the threat model
 * assumes), data/heap/stack get PermRW, and the function tables PermR.
 * The VM code-cache regions are left unmapped; the PSR virtual
 * machines map their own.
 */
void loadFatBinary(const FatBinary &bin, Memory &mem);

/**
 * Point @p state at the program entry for @p isa with a fresh stack.
 */
void initMachineState(MachineState &state, const FatBinary &bin,
                      IsaKind isa);

} // namespace hipstr

#endif // HIPSTR_BINARY_LOADER_HH
