#include "parallel.hh"

#include <atomic>
#include <memory>

#include "support/env.hh"
#include "support/logging.hh"

namespace hipstr
{

unsigned
hipstrJobs()
{
    uint64_t jobs = envUnsigned("HIPSTR_JOBS", 0, 1, 4096);
    if (jobs != 0)
        return unsigned(jobs);
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    _workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stopping = true;
    }
    _cv.notify_all();
    for (std::thread &w : _workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (_workers.empty()) {
        // Serial pool: run inline. Keeps HIPSTR_JOBS=1 free of any
        // thread machinery on the measurement path.
        task();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _queue.push_back(std::move(task));
    }
    _cv.notify_one();
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _cv.wait(lock,
                     [this] { return _stopping || !_queue.empty(); });
            if (_queue.empty())
                return; // stopping and drained
            task = std::move(_queue.front());
            _queue.pop_front();
        }
        task();
    }
}

namespace
{

std::unique_ptr<ThreadPool> g_pool;
std::mutex g_poolMutex;

} // namespace

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(g_poolMutex);
    if (!g_pool) {
        // The caller of parallelFor works too, so a J-job budget
        // wants J-1 pool workers.
        unsigned jobs = hipstrJobs();
        g_pool = std::make_unique<ThreadPool>(jobs - 1);
    }
    return *g_pool;
}

void
ThreadPool::setGlobalThreads(unsigned threads)
{
    std::unique_ptr<ThreadPool> fresh =
        std::make_unique<ThreadPool>(threads);
    std::lock_guard<std::mutex> lock(g_poolMutex);
    g_pool = std::move(fresh);
}

void
parallelFor(size_t n, const std::function<void(size_t)> &fn,
            ThreadPool *pool)
{
    if (n == 0)
        return;
    if (pool == nullptr)
        pool = &ThreadPool::global();

    struct Shared
    {
        std::atomic<size_t> next{ 0 };
        std::atomic<size_t> done{ 0 };
        size_t total;
        std::mutex mutex;
        std::condition_variable cv;
        std::exception_ptr error;
        size_t errorIndex;
    };
    auto shared = std::make_shared<Shared>();
    shared->total = n;

    auto drain = [shared, &fn] {
        while (true) {
            size_t i =
                shared->next.fetch_add(1, std::memory_order_relaxed);
            if (i >= shared->total)
                break;
            try {
                fn(i);
            } catch (...) {
                // Keep the lowest-index exception so the rethrow is
                // deterministic under any interleaving.
                std::lock_guard<std::mutex> lock(shared->mutex);
                if (!shared->error || i < shared->errorIndex) {
                    shared->error = std::current_exception();
                    shared->errorIndex = i;
                }
            }
            if (shared->done.fetch_add(1,
                                       std::memory_order_acq_rel) +
                    1 ==
                shared->total) {
                std::lock_guard<std::mutex> lock(shared->mutex);
                shared->cv.notify_all();
            }
        }
    };

    // One helper per worker, capped by the cell count; the calling
    // thread claims cells too (and is the only executor when the
    // pool is serial).
    unsigned helpers = pool->threadCount();
    if (size_t(helpers) > n - 1)
        helpers = unsigned(n - 1);
    for (unsigned h = 0; h < helpers; ++h)
        pool->submit(drain);
    drain();

    std::unique_lock<std::mutex> lock(shared->mutex);
    shared->cv.wait(lock, [&] {
        return shared->done.load(std::memory_order_acquire) ==
            shared->total;
    });
    if (shared->error)
        std::rethrow_exception(shared->error);
}

} // namespace hipstr
