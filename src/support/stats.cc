#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>

#include "logging.hh"

namespace hipstr
{

Histogram::Histogram(std::string name, uint64_t bin_width, size_t num_bins)
    : _name(std::move(name)), _binWidth(bin_width), _bins(num_bins, 0)
{
    hipstr_assert(bin_width > 0);
    hipstr_assert(num_bins > 0);
}

void
Histogram::sample(uint64_t v, uint64_t count)
{
    size_t bin = std::min(static_cast<size_t>(v / _binWidth),
                          _bins.size() - 1);
    _bins[bin] += count;
    _samples += count;
    _sum += v * count;
}

void
Histogram::reset()
{
    std::fill(_bins.begin(), _bins.end(), 0);
    _samples = 0;
    _sum = 0;
}

void
Histogram::merge(const Histogram &other)
{
    hipstr_assert(other._binWidth == _binWidth &&
                  other._bins.size() == _bins.size());
    for (size_t i = 0; i < _bins.size(); ++i)
        _bins[i] += other._bins[i];
    _samples += other._samples;
    _sum += other._sum;
}

double
Histogram::mean() const
{
    // Empty histogram: define the mean as 0.0 rather than 0/0. Stats
    // dumps and JSON exports run mid-experiment, before any sample
    // may have arrived.
    if (_samples == 0)
        return 0.0;
    return static_cast<double>(_sum) / static_cast<double>(_samples);
}

uint64_t
Histogram::percentile(double p) const
{
    // Same guard as mean(): percentile queries on an empty histogram
    // (including one merged from only-empty shards) answer 0 rather
    // than dividing by — or walking past — zero samples.
    if (_samples == 0)
        return 0;
    p = std::min(1.0, std::max(0.0, p));
    // Rank of the p-quantile sample, 1-based, clamped into range so
    // p=0 answers the first sample's bin and p=1 the last's.
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(p * static_cast<double>(_samples)));
    rank = std::max<uint64_t>(1, std::min(rank, _samples));
    uint64_t seen = 0;
    for (size_t i = 0; i < _bins.size(); ++i) {
        seen += _bins[i];
        if (seen >= rank)
            return static_cast<uint64_t>(i) * _binWidth;
    }
    return static_cast<uint64_t>(_bins.size() - 1) * _binWidth;
}

Counter &
StatGroup::counter(const std::string &name)
{
    auto it = _counters.find(name);
    if (it == _counters.end())
        it = _counters.emplace(name, Counter(name)).first;
    return it->second;
}

const Counter *
StatGroup::find(const std::string &name) const
{
    auto it = _counters.find(name);
    return it == _counters.end() ? nullptr : &it->second;
}

void
StatGroup::reset()
{
    for (auto &kv : _counters)
        kv.second.reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &kv : _counters) {
        os << _name << "." << kv.first << " = " << kv.second.value()
           << "\n";
    }
}

TextTable::TextTable(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    hipstr_assert(cells.size() == _headers.size());
    _rows.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> widths(_headers.size());
    for (size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const auto &row : _rows)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        os << "|";
        for (size_t c = 0; c < row.size(); ++c)
            os << " " << std::setw(static_cast<int>(widths[c]))
               << std::left << row[c] << " |";
        os << "\n";
    };

    print_row(_headers);
    os << "|";
    for (size_t c = 0; c < _headers.size(); ++c)
        os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (const auto &row : _rows)
        print_row(row);
}

std::string
formatDouble(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
formatPercent(double fraction, int digits)
{
    return formatDouble(fraction * 100.0, digits) + "%";
}

std::string
formatScientific(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", digits, v);
    return buf;
}

} // namespace hipstr
