/**
 * @file
 * Dense fixed-capacity bitset used by the dataflow analyses.
 */

#ifndef HIPSTR_SUPPORT_BITSET_HH
#define HIPSTR_SUPPORT_BITSET_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hipstr
{

/** A dense bitset of @c size() bits with set-algebra operations. */
class DenseBitSet
{
  public:
    DenseBitSet() = default;
    explicit DenseBitSet(size_t nbits)
        : _nbits(nbits), _words((nbits + 63) / 64, 0)
    {
    }

    size_t size() const { return _nbits; }

    bool
    test(size_t i) const
    {
        return (_words[i / 64] >> (i % 64)) & 1;
    }

    void set(size_t i) { _words[i / 64] |= (1ull << (i % 64)); }
    void clear(size_t i) { _words[i / 64] &= ~(1ull << (i % 64)); }

    void
    clearAll()
    {
        for (auto &w : _words)
            w = 0;
    }

    /** this |= other. @return true if this changed. */
    bool
    unionWith(const DenseBitSet &other)
    {
        bool changed = false;
        for (size_t i = 0; i < _words.size(); ++i) {
            uint64_t merged = _words[i] | other._words[i];
            if (merged != _words[i]) {
                _words[i] = merged;
                changed = true;
            }
        }
        return changed;
    }

    /** Number of set bits. */
    size_t
    count() const
    {
        size_t n = 0;
        for (uint64_t w : _words)
            n += static_cast<size_t>(__builtin_popcountll(w));
        return n;
    }

    bool
    any() const
    {
        for (uint64_t w : _words)
            if (w)
                return true;
        return false;
    }

    /** Collect set bit indices. */
    std::vector<uint32_t>
    toVector() const
    {
        std::vector<uint32_t> out;
        for (size_t i = 0; i < _nbits; ++i)
            if (test(i))
                out.push_back(static_cast<uint32_t>(i));
        return out;
    }

    bool operator==(const DenseBitSet &) const = default;

  private:
    size_t _nbits = 0;
    std::vector<uint64_t> _words;
};

} // namespace hipstr

#endif // HIPSTR_SUPPORT_BITSET_HH
