/**
 * @file
 * Centralized HIPSTR_* environment-knob parsing. Every knob the
 * project reads goes through here so the accepted grammar is uniform
 * and garbage values are rejected loudly (hipstr_fatal) instead of
 * being silently coerced to a default — a mistyped HIPSTR_JOBS=8x
 * used to fall back to hardware concurrency without a word.
 *
 * Knobs currently routed through this module:
 *   HIPSTR_JOBS        worker-thread budget (envUnsigned)
 *   HIPSTR_TRACE       superblock-trace engine on/off (envFlag)
 *   HIPSTR_JIT         trace JIT (x86-64 emission) on/off (envFlag;
 *                      default on, auto-disabled with a logged
 *                      reason on non-x86-64 hosts and under
 *                      ASan/UBSan builds)
 *   HIPSTR_MIG_DEBUG   migration transform debug dump (envFlag)
 *   HIPSTR_BENCH_SMOKE bench smoke mode (envFlag)
 *   HIPSTR_RECORD      journal path to record a server run to
 *   HIPSTR_REPLAY      journal path to replay a server run from
 */

#ifndef HIPSTR_SUPPORT_ENV_HH
#define HIPSTR_SUPPORT_ENV_HH

#include <cstdint>
#include <string>

namespace hipstr
{

/**
 * Boolean knob. Accepts 1/true/on/yes and 0/false/off/no (case
 * insensitive); unset or empty yields @p def; anything else is fatal.
 */
bool envFlag(const char *name, bool def);

/**
 * Unsigned integer knob in [@p lo, @p hi]. Unset or empty yields
 * @p def; a non-numeric value, trailing junk, or an out-of-range
 * value is fatal.
 */
uint64_t envUnsigned(const char *name, uint64_t def, uint64_t lo,
                     uint64_t hi);

/** String knob (e.g. a file path). Unset or empty yields @p def. */
std::string envString(const char *name, const std::string &def = "");

} // namespace hipstr

#endif // HIPSTR_SUPPORT_ENV_HH
