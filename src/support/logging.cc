#include "logging.hh"

#include <cstdarg>
#include <vector>

namespace hipstr
{

namespace
{

LogLevel gThreshold = LogLevel::Warn;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

} // namespace

LogLevel
logThreshold()
{
    return gThreshold;
}

void
setLogThreshold(LogLevel level)
{
    gThreshold = level;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level < gThreshold)
        return;
    std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
}

namespace detail
{

std::string
formatVa(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return fmt;
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

[[noreturn]] void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = formatVa(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = formatVa(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    logMessage(LogLevel::Warn, formatVa(fmt, ap));
    va_end(ap);
}

void
informImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    logMessage(LogLevel::Info, formatVa(fmt, ap));
    va_end(ap);
}

void
debugImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    logMessage(LogLevel::Debug, formatVa(fmt, ap));
    va_end(ap);
}

} // namespace detail

} // namespace hipstr
