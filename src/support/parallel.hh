/**
 * @file
 * Cap-aware thread-pool experiment engine.
 *
 * The evaluation sweeps (workload x ISA x PSR config x seed) cells
 * that are embarrassingly parallel: every cell builds its own Memory,
 * GuestOs and VM, so cells share nothing but immutable FatBinary
 * images. This engine runs such cells on a fixed pool of worker
 * threads whose size is capped by the HIPSTR_JOBS environment
 * variable (unset or 0 means "one thread per hardware core").
 *
 * Determinism contract: parallelFor/parallelMap assign work by index,
 * never by thread identity, and parallelMap stores results by index —
 * so a sweep that derives all randomness from its cell index produces
 * byte-identical output for every HIPSTR_JOBS value.
 *
 * There is no work stealing: a task claims the next unclaimed index
 * from a shared atomic cursor. The *calling* thread participates in
 * the loop, which makes nested parallelFor calls (a parallel cell
 * that itself fans out) deadlock-free even when every worker is busy.
 */

#ifndef HIPSTR_SUPPORT_PARALLEL_HH
#define HIPSTR_SUPPORT_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hipstr
{

/**
 * Number of jobs the experiment engine may use: the HIPSTR_JOBS
 * environment variable when set to a positive integer, otherwise the
 * hardware concurrency (never less than 1).
 */
unsigned hipstrJobs();

/**
 * Fixed-size worker pool. Tasks are run in submission order by
 * whichever worker frees up first; completion order is unspecified.
 */
class ThreadPool
{
  public:
    /**
     * @param threads exact worker count; 0 builds a serial pool whose
     *                submit() runs the task inline on the caller.
     */
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task; it runs on some worker thread. */
    void submit(std::function<void()> task);

    /** Worker threads owned by the pool (0 for a serial pool). */
    unsigned threadCount() const { return unsigned(_workers.size()); }

    /**
     * The process-wide pool the bench layer uses, sized from
     * HIPSTR_JOBS at first use. One worker fewer than the job count:
     * the thread calling parallelFor is the remaining job.
     */
    static ThreadPool &global();

    /**
     * Resize the global pool to exactly @p threads workers (tests
     * compare HIPSTR_JOBS=1 vs =8 in one process: pass jobs - 1).
     * Must not be called while work is in flight.
     */
    static void setGlobalThreads(unsigned threads);

  private:
    void workerLoop();

    std::vector<std::thread> _workers;
    std::deque<std::function<void()>> _queue;
    std::mutex _mutex;
    std::condition_variable _cv;
    bool _stopping = false;
};

/**
 * Run fn(i) for every i in [0, n). Blocks until all iterations have
 * finished. The caller participates, so jobs = pool workers + 1.
 * If any iteration throws, the exception from the lowest-numbered
 * throwing iteration is rethrown here (the remaining iterations still
 * run — cells are independent measurements).
 */
void parallelFor(size_t n, const std::function<void(size_t)> &fn,
                 ThreadPool *pool = nullptr);

/**
 * Map [0, n) through @p fn on the pool; results are returned indexed
 * by cell, independent of execution interleaving.
 */
template <typename Fn>
auto
parallelMap(size_t n, Fn &&fn, ThreadPool *pool = nullptr)
    -> std::vector<decltype(fn(size_t(0)))>
{
    using R = decltype(fn(size_t(0)));
    std::vector<R> out(n);
    parallelFor(
        n, [&](size_t i) { out[i] = fn(i); }, pool);
    return out;
}

/** Map a vector of inputs through @p fn, preserving input order. */
template <typename T, typename Fn>
auto
parallelMapItems(const std::vector<T> &items, Fn &&fn,
                 ThreadPool *pool = nullptr)
    -> std::vector<decltype(fn(items[0]))>
{
    return parallelMap(
        items.size(), [&](size_t i) { return fn(items[i]); }, pool);
}

} // namespace hipstr

#endif // HIPSTR_SUPPORT_PARALLEL_HH
