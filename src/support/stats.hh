/**
 * @file
 * Lightweight statistics package used by the simulator, the PSR virtual
 * machine, and the benchmark harnesses. Supports scalar counters,
 * formulas over counters, histograms, and tabular text output shaped
 * like the paper's tables.
 */

#ifndef HIPSTR_SUPPORT_STATS_HH
#define HIPSTR_SUPPORT_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace hipstr
{

/** A named scalar statistic. */
class Counter
{
  public:
    Counter() = default;
    explicit Counter(std::string name) : _name(std::move(name)) {}

    void inc(uint64_t delta = 1) { _value += delta; }
    void set(uint64_t v) { _value = v; }
    void reset() { _value = 0; }
    uint64_t value() const { return _value; }
    const std::string &name() const { return _name; }

  private:
    std::string _name;
    uint64_t _value = 0;
};

/**
 * A histogram over integer samples with fixed-width bins. Used, e.g.,
 * for stack-slot displacement distributions and gadget-length counts.
 *
 * Overflow contract (every call site relies on this, so it is stated
 * once here): a sample at or beyond `bin_width * num_bins` is NOT
 * dropped — it is absorbed into the final bin. binCount(numBins()-1)
 * therefore reads as "this value or larger", and mean() still
 * reflects the exact sample values, not the bin midpoints.
 *
 * The thread-safe registry wrapper telemetry::HistogramMetric builds
 * on this class; merge() is its shard-combining primitive.
 */
class Histogram
{
  public:
    Histogram(std::string name, uint64_t bin_width, size_t num_bins);

    void sample(uint64_t v, uint64_t count = 1);
    void reset();

    /**
     * Fold @p other into this histogram (bin-wise addition plus the
     * sample/sum accounting mean() needs). Asserts on geometry
     * mismatch — merging differently-binned histograms silently
     * corrupts the distribution.
     */
    void merge(const Histogram &other);

    uint64_t totalSamples() const { return _samples; }
    /** Mean of all samples; 0.0 for an empty histogram (no samples
     *  recorded yet must never fault a stats dump mid-run). */
    double mean() const;
    /**
     * Lower edge of the bin containing the @p p-quantile (p in
     * [0, 1]), by cumulative-count walk. With binWidth 1 this is the
     * exact integer percentile of the recorded samples; wider bins
     * round down to the bin edge. An empty histogram answers 0 —
     * like mean(), percentile queries must stay well-defined on a
     * histogram that has no samples yet (e.g. the merge of several
     * empty shards).
     */
    uint64_t percentile(double p) const;
    /** Count in bin @p i; the final bin absorbs overflow (see the
     *  class comment). */
    uint64_t binCount(size_t i) const { return _bins.at(i); }
    uint64_t binWidth() const { return _binWidth; }
    size_t numBins() const { return _bins.size(); }
    const std::string &name() const { return _name; }

  private:
    std::string _name;
    uint64_t _binWidth;
    std::vector<uint64_t> _bins;
    uint64_t _samples = 0;
    uint64_t _sum = 0;
};

/**
 * A named group of counters; modules own one and register counters into
 * it so harnesses can dump everything uniformly.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    /** Get-or-create a counter within this group. */
    Counter &counter(const std::string &name);
    /** Lookup without creation; nullptr if absent. */
    const Counter *find(const std::string &name) const;

    void reset();
    void dump(std::ostream &os) const;
    const std::string &name() const { return _name; }
    const std::map<std::string, Counter> &counters() const
    {
        return _counters;
    }

  private:
    std::string _name;
    std::map<std::string, Counter> _counters;
};

/**
 * Fixed-column text table writer used by the benchmark harnesses to
 * print paper-shaped tables (e.g., Table 2).
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    void print(std::ostream &os) const;
    size_t numRows() const { return _rows.size(); }

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

/** Format a double with @p digits significant decimal places. */
std::string formatDouble(double v, int digits = 2);

/** Format a value as a percentage string, e.g. "98.04%". */
std::string formatPercent(double fraction, int digits = 2);

/** Format a large count in scientific notation, e.g. "9.11e+33". */
std::string formatScientific(double v, int digits = 2);

} // namespace hipstr

#endif // HIPSTR_SUPPORT_STATS_HH
