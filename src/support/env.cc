#include "env.hh"

#include <cctype>
#include <cstdlib>

#include "support/logging.hh"

namespace hipstr
{

namespace
{

std::string
lowered(const char *s)
{
    std::string out;
    for (; *s != '\0'; ++s)
        out.push_back(char(std::tolower(static_cast<unsigned char>(*s))));
    return out;
}

} // namespace

bool
envFlag(const char *name, bool def)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr || raw[0] == '\0')
        return def;
    std::string v = lowered(raw);
    if (v == "1" || v == "true" || v == "on" || v == "yes")
        return true;
    if (v == "0" || v == "false" || v == "off" || v == "no")
        return false;
    hipstr_fatal("%s=\"%s\" is not a boolean (want 1/0, true/false, "
                 "on/off, yes/no)",
                 name, raw);
}

uint64_t
envUnsigned(const char *name, uint64_t def, uint64_t lo, uint64_t hi)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr || raw[0] == '\0')
        return def;
    char *end = nullptr;
    unsigned long long v = std::strtoull(raw, &end, 10);
    if (end == raw || *end != '\0' || raw[0] == '-')
        hipstr_fatal("%s=\"%s\" is not an unsigned integer", name, raw);
    if (v < lo || v > hi)
        hipstr_fatal("%s=%llu out of range [%llu, %llu]", name, v,
                     (unsigned long long)lo, (unsigned long long)hi);
    return uint64_t(v);
}

std::string
envString(const char *name, const std::string &def)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr || raw[0] == '\0')
        return def;
    return std::string(raw);
}

} // namespace hipstr
