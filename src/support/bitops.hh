/**
 * @file
 * Small bit-manipulation helpers shared across the ISA encoders,
 * the cache models, and the entropy accounting.
 */

#ifndef HIPSTR_SUPPORT_BITOPS_HH
#define HIPSTR_SUPPORT_BITOPS_HH

#include <bit>
#include <cstdint>

namespace hipstr
{

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOf2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2Floor(uint64_t v)
{
    return v == 0 ? 0 : 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** Round @p v up to the next multiple of @p align (a power of two). */
constexpr uint64_t
roundUp(uint64_t v, uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Round @p v down to a multiple of @p align (a power of two). */
constexpr uint64_t
roundDown(uint64_t v, uint64_t align)
{
    return v & ~(align - 1);
}

/** Extract bits [lo, lo+len) from @p v. */
constexpr uint64_t
bits(uint64_t v, unsigned lo, unsigned len)
{
    return (v >> lo) & ((len >= 64) ? ~0ull : ((1ull << len) - 1));
}

/** Insert @p field into bits [lo, lo+len) of @p v. */
constexpr uint64_t
insertBits(uint64_t v, unsigned lo, unsigned len, uint64_t field)
{
    uint64_t mask = ((len >= 64) ? ~0ull : ((1ull << len) - 1)) << lo;
    return (v & ~mask) | ((field << lo) & mask);
}

/** Sign-extend the low @p width bits of @p v. */
constexpr int64_t
signExtend(uint64_t v, unsigned width)
{
    if (width == 0 || width >= 64)
        return static_cast<int64_t>(v);
    uint64_t sign_bit = 1ull << (width - 1);
    uint64_t mask = (1ull << width) - 1;
    v &= mask;
    return static_cast<int64_t>((v ^ sign_bit)) -
        static_cast<int64_t>(sign_bit);
}

/** True iff @p v fits in a signed @p width-bit immediate. */
constexpr bool
fitsSigned(int64_t v, unsigned width)
{
    if (width >= 64)
        return true;
    int64_t lo = -(1ll << (width - 1));
    int64_t hi = (1ll << (width - 1)) - 1;
    return v >= lo && v <= hi;
}

} // namespace hipstr

#endif // HIPSTR_SUPPORT_BITOPS_HH
