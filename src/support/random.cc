#include "random.hh"

#include "logging.hh"

namespace hipstr
{

namespace
{

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

uint64_t
splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s)
        word = splitMix64(sm);
    // xoshiro must not be seeded with an all-zero state.
    if ((s[0] | s[1] | s[2] | s[3]) == 0)
        s[0] = 0x9e3779b97f4a7c15ull;
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    hipstr_assert(bound > 0);
    // Lemire-style rejection to avoid modulo bias.
    uint64_t threshold = (-bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    hipstr_assert(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>(next());
    return lo + static_cast<int64_t>(below(span));
}

double
Rng::uniform()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ull);
}

} // namespace hipstr
