/**
 * @file
 * Status and error reporting utilities, modeled on gem5's logging
 * conventions: panic() for internal invariant violations, fatal() for
 * user errors, warn()/inform() for diagnostics that do not stop the run.
 */

#ifndef HIPSTR_SUPPORT_LOGGING_HH
#define HIPSTR_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace hipstr
{

/** Severity of a log message. */
enum class LogLevel
{
    Debug,
    Info,
    Warn,
    Error
};

/**
 * Global log verbosity control. Messages below the threshold are
 * suppressed. Tests set this to Error to keep output clean.
 */
LogLevel logThreshold();
void setLogThreshold(LogLevel level);

/** Emit a formatted message to stderr if @p level passes the threshold. */
void logMessage(LogLevel level, const std::string &msg);

namespace detail
{

std::string formatVa(const char *fmt, va_list ap);

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void debugImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace detail

} // namespace hipstr

/**
 * panic() should be called when something happens that should never
 * happen regardless of what the user does — an actual bug in this
 * library. Aborts the process.
 */
#define hipstr_panic(...) \
    ::hipstr::detail::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

/**
 * fatal() should be called when the run cannot continue due to a
 * condition that is the user's fault (bad configuration, invalid
 * arguments). Exits with status 1.
 */
#define hipstr_fatal(...) \
    ::hipstr::detail::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** warn(): something may not behave as expected, but the run continues. */
#define hipstr_warn(...) ::hipstr::detail::warnImpl(__VA_ARGS__)

/** inform(): normal status message for the user. */
#define hipstr_inform(...) ::hipstr::detail::informImpl(__VA_ARGS__)

/** debug(): developer-facing trace message. */
#define hipstr_debug(...) ::hipstr::detail::debugImpl(__VA_ARGS__)

/** Internal invariant check that survives NDEBUG builds. */
#define hipstr_assert(cond, ...)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::hipstr::detail::panicImpl(__FILE__, __LINE__,                \
                                        "assertion failed: %s", #cond);   \
        }                                                                  \
    } while (0)

#endif // HIPSTR_SUPPORT_LOGGING_HH
