/**
 * @file
 * Byte-level serialization for checkpoints and the record/replay
 * journal (src/replay). Fixed-width little-endian encoding so
 * journals and checkpoint images are portable across hosts; every
 * read is bounds-checked and throws a typed SerializeError instead
 * of reading garbage, which is what turns a truncated or bit-flipped
 * journal into a clean diagnostic rather than a diverged replay.
 */

#ifndef HIPSTR_SUPPORT_SERIALIZE_HH
#define HIPSTR_SUPPORT_SERIALIZE_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace hipstr
{

/** Why a deserialization failed. */
enum class SerializeErrc
{
    Truncated, ///< read past the end of the buffer
    Corrupt,   ///< decoded a value no writer can produce
};

/** Thrown by ByteReader on malformed input. */
class SerializeError : public std::runtime_error
{
  public:
    SerializeError(SerializeErrc code, const std::string &what)
        : std::runtime_error(what), _code(code)
    {
    }

    SerializeErrc code() const { return _code; }

  private:
    SerializeErrc _code;
};

/** Append-only little-endian byte sink. */
class ByteWriter
{
  public:
    void u8(uint8_t v) { _buf.push_back(v); }

    void
    u16(uint16_t v)
    {
        u8(uint8_t(v));
        u8(uint8_t(v >> 8));
    }

    void
    u32(uint32_t v)
    {
        u16(uint16_t(v));
        u16(uint16_t(v >> 16));
    }

    void
    u64(uint64_t v)
    {
        u32(uint32_t(v));
        u32(uint32_t(v >> 32));
    }

    /** IEEE-754 bit pattern; bit-exact round trip. */
    void
    f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void boolean(bool v) { u8(v ? 1 : 0); }

    void
    bytes(const uint8_t *p, size_t n)
    {
        _buf.insert(_buf.end(), p, p + n);
    }

    /** u32 length prefix + raw bytes. */
    void
    str(const std::string &s)
    {
        u32(uint32_t(s.size()));
        bytes(reinterpret_cast<const uint8_t *>(s.data()), s.size());
    }

    const std::vector<uint8_t> &data() const { return _buf; }
    size_t size() const { return _buf.size(); }

  private:
    std::vector<uint8_t> _buf;
};

/** Bounds-checked little-endian byte source over a borrowed buffer. */
class ByteReader
{
  public:
    ByteReader(const uint8_t *p, size_t len) : _p(p), _len(len) {}

    explicit ByteReader(const std::vector<uint8_t> &v)
        : _p(v.data()), _len(v.size())
    {
    }

    uint8_t
    u8()
    {
        need(1);
        return _p[_off++];
    }

    uint16_t
    u16()
    {
        uint16_t lo = u8();
        return uint16_t(lo | (uint16_t(u8()) << 8));
    }

    uint32_t
    u32()
    {
        uint32_t lo = u16();
        return lo | (uint32_t(u16()) << 16);
    }

    uint64_t
    u64()
    {
        uint64_t lo = u32();
        return lo | (uint64_t(u32()) << 32);
    }

    double
    f64()
    {
        uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    bool
    boolean()
    {
        uint8_t v = u8();
        if (v > 1)
            throw SerializeError(SerializeErrc::Corrupt,
                                 "boolean byte out of range");
        return v != 0;
    }

    void
    bytes(uint8_t *out, size_t n)
    {
        need(n);
        std::memcpy(out, _p + _off, n);
        _off += n;
    }

    std::string
    str()
    {
        uint32_t n = u32();
        need(n);
        std::string s(reinterpret_cast<const char *>(_p + _off), n);
        _off += n;
        return s;
    }

    /** Throw Truncated unless @p n more bytes are available. */
    void
    need(size_t n) const
    {
        if (n > _len - _off)
            throw SerializeError(SerializeErrc::Truncated,
                                 "read past end of buffer");
    }

    size_t remaining() const { return _len - _off; }
    size_t offset() const { return _off; }
    bool atEnd() const { return _off == _len; }
    /** Borrowed pointer to the current read position. */
    const uint8_t *ptr() const { return _p + _off; }

    /** Skip @p n bytes (bounds-checked). */
    void
    skip(size_t n)
    {
        need(n);
        _off += n;
    }

  private:
    const uint8_t *_p;
    size_t _len;
    size_t _off = 0;
};

} // namespace hipstr

#endif // HIPSTR_SUPPORT_SERIALIZE_HH
