/**
 * @file
 * Deterministic pseudo-random number generation for the PSR randomizer,
 * workload input generation, and attack simulation.
 *
 * A from-scratch xoshiro256** implementation is used instead of
 * std::mt19937 so that random streams are bit-identical across standard
 * library implementations — the security experiments are reproducible
 * given a seed.
 */

#ifndef HIPSTR_SUPPORT_RANDOM_HH
#define HIPSTR_SUPPORT_RANDOM_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hipstr
{

/**
 * xoshiro256** PRNG (Blackman & Vigna). Passes BigCrush; tiny state;
 * splittable via jump-free reseeding with SplitMix64.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded through SplitMix64. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64 random bits. */
    uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    uint64_t below(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    int64_t range(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p);

    /** Derive an independent child generator (for per-function streams). */
    Rng split();

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(below(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Pick a uniformly random element. @pre !v.empty() */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        return v[static_cast<size_t>(below(v.size()))];
    }

    /**
     * Raw xoshiro state, for checkpointing: a generator restored via
     * setStateWords continues the exact stream of the saved one. @{
     */
    std::array<uint64_t, 4>
    stateWords() const
    {
        return { s[0], s[1], s[2], s[3] };
    }

    void
    setStateWords(const std::array<uint64_t, 4> &w)
    {
        s[0] = w[0];
        s[1] = w[1];
        s[2] = w[2];
        s[3] = w[3];
    }
    /** @} */

  private:
    uint64_t s[4];
};

/** SplitMix64 step, used for seed expansion. Exposed for testing. */
uint64_t splitMix64(uint64_t &state);

} // namespace hipstr

#endif // HIPSTR_SUPPORT_RANDOM_HH
