#include "code_cache.hh"

#include "support/bitops.hh"
#include "support/logging.hh"

namespace hipstr
{

CodeCache::CodeCache(Memory &mem, IsaKind isa, uint32_t capacity,
                     bool align_loop_heads)
    : _mem(mem), _isa(isa), _base(layout::cacheBase(isa)),
      _capacity(capacity), _alignLoopHeads(align_loop_heads),
      _cursor(_base)
{
    hipstr_assert(capacity > 0);
    hipstr_assert(_base + capacity <= layout::cacheBase(isa) +
                      0x400000);
    // Readable and executable, like the JIT regions the threat model
    // lets an attacker disclose.
    _mem.setRegion(_base, capacity, PermRX,
                   std::string("codecache.") + isaName(isa));
}

TranslatedBlock *
CodeCache::insert(std::unique_ptr<TranslatedBlock> block)
{
    uint32_t align = _alignLoopHeads && block->isLoopHead ? 64 : 16;
    Addr placed = static_cast<Addr>(roundUp(_cursor, align));
    uint32_t need = static_cast<uint32_t>(block->bytes.size());

    if (placed + need > _base + _capacity) {
        flush();
        placed = static_cast<Addr>(roundUp(_cursor, align));
        if (placed + need > _base + _capacity)
            return nullptr; // unit larger than the whole cache
    }

    block->cacheAddr = placed;
    if (need > 0)
        _mem.rawWriteBytes(placed, block->bytes.data(), need);
    _cursor = placed + need;
    ++_insertions;
    TranslatedBlock *raw = block.get();
    _blocks[block->srcStart] = std::move(block);
    return raw;
}

TranslatedBlock *
CodeCache::lookup(Addr src)
{
    auto it = _blocks.find(src);
    return it == _blocks.end() ? nullptr : it->second.get();
}

void
CodeCache::flush()
{
    _blocks.clear();
    _cursor = _base;
    ++_flushes;
}

bool
CodeCache::contains(Addr addr) const
{
    return addr >= _base && addr < _base + _capacity;
}

} // namespace hipstr
