#include "code_cache.hh"

#include <algorithm>

#include "support/bitops.hh"
#include "support/logging.hh"

namespace hipstr
{

namespace
{
constexpr size_t kInitialIndexSlots = 1024; // power of two
}

CodeCache::CodeCache(Memory &mem, IsaKind isa, uint32_t capacity,
                     bool align_loop_heads)
    : _mem(mem), _isa(isa), _base(layout::cacheBase(isa)),
      _capacity(capacity), _alignLoopHeads(align_loop_heads),
      _cursor(_base), _index(kInitialIndexSlots),
      _mask(kInitialIndexSlots - 1)
{
    hipstr_assert(capacity > 0);
    hipstr_assert(_base + capacity <= layout::cacheBase(isa) +
                      0x400000);
    // Readable and executable, like the JIT regions the threat model
    // lets an attacker disclose.
    _mem.setRegion(_base, capacity, PermRX,
                   std::string("codecache.") + isaName(isa));
}

void
CodeCache::indexInsert(Addr src, TranslatedBlock *block)
{
    if ((_owned.size() + 1) * 3 > _index.size() * 2) {
        std::vector<Slot> bigger(_index.size() * 2);
        _mask = bigger.size() - 1;
        _index.swap(bigger);
        for (const auto &b : _owned) {
            size_t i = slotFor(b->srcStart);
            while (_index[i].block != nullptr)
                i = (i + 1) & _mask;
            _index[i] = Slot{ b->srcStart, b.get() };
        }
    }
    size_t i = slotFor(src);
    while (_index[i].block != nullptr) {
        if (_index[i].src == src) {
            // Re-translation of a resident entry: repoint the index;
            // the superseded block stays owned (and inert) until the
            // next flush so outstanding chain pointers cannot dangle.
            _index[i].block = block;
            return;
        }
        i = (i + 1) & _mask;
    }
    _index[i] = Slot{ src, block };
}

TranslatedBlock *
CodeCache::insert(std::unique_ptr<TranslatedBlock> block)
{
    uint32_t align = _alignLoopHeads && block->isLoopHead ? 64 : 16;
    Addr placed = static_cast<Addr>(roundUp(_cursor, align));
    uint32_t need = static_cast<uint32_t>(block->bytes.size());

    if (placed + need > _base + _capacity) {
        flush();
        placed = static_cast<Addr>(roundUp(_cursor, align));
        if (placed + need > _base + _capacity)
            return nullptr; // unit larger than the whole cache
    }

    block->cacheAddr = placed;
    if (need > 0)
        _mem.rawWriteBytes(placed, block->bytes.data(), need);
    _cursor = placed + need;
    ++_insertions;
    TranslatedBlock *raw = block.get();
    _owned.push_back(std::move(block));
    indexInsert(raw->srcStart, raw);
    return raw;
}

void
CodeCache::flush()
{
    _owned.clear();
    std::fill(_index.begin(), _index.end(), Slot{});
    _cursor = _base;
    ++_flushes;
}

} // namespace hipstr
