/**
 * @file
 * Superblock trace formation and the computed-goto threaded trace
 * executor (PsrVm::runTrace). See superblock.hh for the invariants;
 * the short version: a trace is a re-encoding of instructions the
 * block loop would have executed anyway, so every deterministic
 * counter folds to the same values, every fault stops at the same
 * instruction with the same architectural state, and every transfer
 * the control-trace hook would have seen is still reported.
 */

#include "vm/superblock.hh"

#include "isa/exec_inline.hh"
#include "support/logging.hh"
#include "vm/psr_vm.hh"

namespace hipstr
{

namespace
{

/** Edge-profile floor before an exit can anchor a trace. */
constexpr uint64_t kMinEdgeHits = 8;

bool
sameMem(const Operand &x, const Operand &y)
{
    return x.isMem() && y.isMem() && x.base == y.base &&
        x.disp == y.disp;
}

/** First handler (the RR shape) of the specialized ALU family. */
int
aluBaseHandler(Op op)
{
    switch (op) {
#define HIPSTR_TRACE_ALU_BASE(o)                                      \
      case Op::o:                                                     \
        return static_cast<int>(TraceH::o##RR);
        HIPSTR_TRACE_ALU_OPS(HIPSTR_TRACE_ALU_BASE)
#undef HIPSTR_TRACE_ALU_BASE
      default:
        return -1;
    }
}

/**
 * Operand-shape offset for the two-source flag setters (Cmp/Test):
 * 0 RR, 1 RI, 2 RM, 3 MR, 4 MI; -1 falls back to the generic handler.
 */
int
flagShape(const Operand &s1, const Operand &s2, TraceOp &t)
{
    if (s1.isReg() && s2.isReg()) {
        t.b = static_cast<uint8_t>(s1.reg);
        t.c = static_cast<uint8_t>(s2.reg);
        return 0;
    }
    if (s1.isReg() && s2.isImm()) {
        t.b = static_cast<uint8_t>(s1.reg);
        t.imm2 = static_cast<uint32_t>(s2.disp);
        return 1;
    }
    if (s1.isReg() && s2.isMem()) {
        t.b = static_cast<uint8_t>(s1.reg);
        t.c = static_cast<uint8_t>(s2.base);
        t.imm2 = static_cast<uint32_t>(s2.disp);
        return 2;
    }
    if (s1.isMem() && s2.isReg()) {
        t.b = static_cast<uint8_t>(s1.base);
        t.imm = static_cast<uint32_t>(s1.disp);
        t.c = static_cast<uint8_t>(s2.reg);
        return 3;
    }
    if (s1.isMem() && s2.isImm()) {
        t.b = static_cast<uint8_t>(s1.base);
        t.imm = static_cast<uint32_t>(s1.disp);
        t.imm2 = static_cast<uint32_t>(s2.disp);
        return 4;
    }
    return -1;
}

/** ALU shape: dst/src1 in a, b or a+imm (slot form); src2 in c/imm2. */
int
aluShape(const MachInst &mi, TraceOp &t)
{
    if (mi.dst.isReg() && mi.src1.isReg()) {
        t.a = static_cast<uint8_t>(mi.dst.reg);
        t.b = static_cast<uint8_t>(mi.src1.reg);
        if (mi.src2.isReg()) {
            t.c = static_cast<uint8_t>(mi.src2.reg);
            return 0;
        }
        if (mi.src2.isImm()) {
            t.imm2 = static_cast<uint32_t>(mi.src2.disp);
            return 1;
        }
        if (mi.src2.isMem()) {
            t.c = static_cast<uint8_t>(mi.src2.base);
            t.imm2 = static_cast<uint32_t>(mi.src2.disp);
            return 2;
        }
        return -1;
    }
    if (mi.dst.isMem() && sameMem(mi.dst, mi.src1)) {
        // Cisc two-address form on a relocated register slot.
        t.a = static_cast<uint8_t>(mi.dst.base);
        t.imm = static_cast<uint32_t>(mi.dst.disp);
        if (mi.src2.isReg()) {
            t.c = static_cast<uint8_t>(mi.src2.reg);
            return 3;
        }
        if (mi.src2.isImm()) {
            t.imm2 = static_cast<uint32_t>(mi.src2.disp);
            return 4;
        }
    }
    return -1;
}

/**
 * Encode one straight-line (Plain-class) instruction as a TraceOp.
 * Nops emit nothing — the boundary fold accounts them through the
 * translate-time running totals. Unrecognized shapes fall back to the
 * generic executeInstInline handler, never get dropped.
 */
void
encodeInst(const TInst &ti, uint32_t inst_idx, uint16_t seg,
           uint8_t sp_reg, std::vector<TraceOp> &out)
{
    const MachInst &mi = ti.mi;
    if (mi.op == Op::Nop)
        return;

    TraceOp t;
    t.h = TraceH::Exec;
    t.seg = seg;
    t.instIdx = inst_idx;
    t.ti = &ti;

    switch (mi.op) {
      case Op::Mov:
        if (mi.dst.isReg() && mi.src1.isReg()) {
            t.h = TraceH::MovRR;
            t.a = static_cast<uint8_t>(mi.dst.reg);
            t.b = static_cast<uint8_t>(mi.src1.reg);
        } else if (mi.dst.isReg() && mi.src1.isImm()) {
            t.h = TraceH::MovRI;
            t.a = static_cast<uint8_t>(mi.dst.reg);
            t.imm = static_cast<uint32_t>(mi.src1.disp);
        } else if (mi.dst.isReg() && mi.src1.isMem()) {
            t.h = TraceH::MovRM;
            t.a = static_cast<uint8_t>(mi.dst.reg);
            t.b = static_cast<uint8_t>(mi.src1.base);
            t.imm = static_cast<uint32_t>(mi.src1.disp);
        } else if (mi.dst.isMem() && mi.src1.isReg()) {
            t.h = TraceH::MovMR;
            t.a = static_cast<uint8_t>(mi.dst.base);
            t.imm = static_cast<uint32_t>(mi.dst.disp);
            t.b = static_cast<uint8_t>(mi.src1.reg);
        } else if (mi.dst.isMem() && mi.src1.isImm()) {
            t.h = TraceH::MovMI;
            t.a = static_cast<uint8_t>(mi.dst.base);
            t.imm = static_cast<uint32_t>(mi.dst.disp);
            t.imm2 = static_cast<uint32_t>(mi.src1.disp);
        }
        break;

      case Op::Lea:
        t.h = TraceH::Lea;
        t.a = static_cast<uint8_t>(mi.dst.reg);
        t.b = static_cast<uint8_t>(mi.src1.base);
        t.imm = static_cast<uint32_t>(mi.src1.disp);
        break;

      case Op::MovHi:
        t.h = TraceH::MovHi;
        t.a = static_cast<uint8_t>(mi.dst.reg);
        t.imm = static_cast<uint32_t>(mi.src1.disp);
        break;

      case Op::Cmp: {
        int off = flagShape(mi.src1, mi.src2, t);
        if (off >= 0)
            t.h = static_cast<TraceH>(
                static_cast<int>(TraceH::CmpRR) + off);
        break;
      }

      case Op::Test: {
        int off = flagShape(mi.src1, mi.src2, t);
        if (off >= 0)
            t.h = static_cast<TraceH>(
                static_cast<int>(TraceH::TestRR) + off);
        break;
      }

      case Op::Push:
        if (mi.src1.isReg()) {
            t.h = TraceH::PushR;
            t.a = sp_reg;
            t.b = static_cast<uint8_t>(mi.src1.reg);
        } else if (mi.src1.isImm()) {
            t.h = TraceH::PushI;
            t.a = sp_reg;
            t.imm = static_cast<uint32_t>(mi.src1.disp);
        }
        break;

      case Op::Pop:
        if (mi.dst.isReg()) {
            t.h = TraceH::PopR;
            t.a = sp_reg;
            t.b = static_cast<uint8_t>(mi.dst.reg);
        }
        break;

      default: {
        int alu_base = aluBaseHandler(mi.op);
        if (alu_base >= 0) {
            int off = aluShape(mi, t);
            if (off >= 0)
                t.h = static_cast<TraceH>(alu_base + off);
        }
        break;
      }
    }
    out.push_back(t);
}

/** Instruction whose execution takes @p exit_idx, or -1. */
int
boundaryInstFor(const TranslatedBlock *b, size_t exit_idx)
{
    for (size_t i = 0; i < b->insts.size(); ++i) {
        const TInst &ti = b->insts[i];
        if (ti.klass == ExecClass::Jcc) {
            if (ti.exitIdx == static_cast<int>(exit_idx))
                return static_cast<int>(i);
        } else if (ti.klass == ExecClass::VmExit) {
            int e = ti.exitIdx >= 0
                ? ti.exitIdx
                : static_cast<int>(ti.mi.src1.disp);
            if (e == static_cast<int>(exit_idx))
                return static_cast<int>(i);
        }
    }
    return -1;
}

/**
 * True when insts [0, bound) contain only straight-line instructions
 * and conditional side exits — nothing that would need a mid-segment
 * counter fold (syscalls), an indirect transfer (returns), or an
 * earlier unconditional exit (dead boundary).
 */
bool
cleanPrefix(const TranslatedBlock *b, int bound)
{
    for (int i = 0; i < bound; ++i) {
        switch (b->insts[i].klass) {
          case ExecClass::Plain:
          case ExecClass::GuestStartPlain:
          case ExecClass::Jcc:
            continue;
          case ExecClass::Ret:
          case ExecClass::Syscall:
          case ExecClass::VmExit:
            return false;
        }
    }
    return true;
}

/**
 * Dominant exit of @p b: the most-taken edge, if it has been taken at
 * least kMinEdgeHits times and carries at least two thirds of the
 * block's recorded exits. Ties resolve to the lowest index, keeping
 * formation deterministic for a given execution history.
 */
int
dominantExit(const TranslatedBlock *b)
{
    uint64_t total = 0;
    uint64_t best_hits = 0;
    int best = -1;
    for (size_t e = 0; e < b->exits.size(); ++e) {
        uint64_t h = b->exits[e].hitCount;
        total += h;
        if (h > best_hits) {
            best_hits = h;
            best = static_cast<int>(e);
        }
    }
    if (best < 0 || best_hits < kMinEdgeHits)
        return -1;
    if (best_hits * 3 < total * 2)
        return -1;
    return best;
}

/** First Ret/Syscall/VmExit-class instruction of @p b, or -1. */
int
terminalInst(const TranslatedBlock *b)
{
    for (size_t i = 0; i < b->insts.size(); ++i) {
        switch (b->insts[i].klass) {
          case ExecClass::Ret:
          case ExecClass::Syscall:
          case ExecClass::VmExit:
            return static_cast<int>(i);
          default:
            continue;
        }
    }
    return -1;
}

/** One planned trace segment before emission. */
struct PlannedSeg
{
    TranslatedBlock *blk;
    int boundary; ///< inst index of the segment's last instruction
    int exitIdx;  ///< taken exit (interior segments), -1 for final
    bool isFinal;
};

} // namespace

SuperTrace *
TraceEngine::tryForm(TranslatedBlock *head, const PsrConfig &cfg,
                     uint8_t sp_reg, bool isomeron, uint64_t flush_gen)
{
    ++stats.attempts;

    // Walk the dominant chained edges. A block extends the trace when
    // its hottest exit is a chained direct branch/call whose boundary
    // instruction is preceded only by straight-line code and guards;
    // anything else ends the walk and the last block becomes the
    // final (resume-into-the-block-loop) segment. Revisiting a
    // non-head block simply unrolls it; reaching the head closes the
    // trace into a loop.
    std::vector<PlannedSeg> plan;
    TranslatedBlock *cur = head;
    bool loop_back = false;
    while (plan.size() < cfg.traceMaxBlocks) {
        int e = dominantExit(cur);
        if (e < 0)
            break;
        const BlockExit &ex = cur->exits[static_cast<size_t>(e)];
        const bool kind_ok = ex.kind == BlockExit::Kind::Branch ||
            (ex.kind == BlockExit::Kind::Call && !isomeron);
        if (!kind_ok || ex.chained == nullptr ||
            ex.chained->srcStart != ex.target)
            break;
        int boundary = boundaryInstFor(cur, static_cast<size_t>(e));
        if (boundary < 0 || !cleanPrefix(cur, boundary))
            break;
        if (cur->insts[boundary].klass == ExecClass::Jcc &&
            ex.kind != BlockExit::Kind::Branch)
            break;
        plan.push_back({ cur, boundary, e, false });
        TranslatedBlock *next = ex.chained;
        if (next == head) {
            loop_back = true;
            break;
        }
        cur = next;
    }

    if (!loop_back) {
        if (plan.empty())
            return nullptr; // no dominant chain yet (or ever)
        int endi = terminalInst(cur);
        if (endi < 0 || !cleanPrefix(cur, endi))
            return nullptr;
        plan.push_back({ cur, endi, -1, true });
    }

    auto tr = std::make_unique<SuperTrace>();
    tr->headPc = head->srcStart;
    tr->flushGen = flush_gen;
    tr->loopBack = loop_back;

    std::vector<uint32_t> seg_first;
    for (size_t si = 0; si < plan.size(); ++si) {
        const PlannedSeg &ps = plan[si];
        seg_first.push_back(static_cast<uint32_t>(tr->ops.size()));
        tr->segs.push_back({ ps.blk, ps.blk->srcStart });

        for (int i = 0; i < ps.boundary; ++i) {
            const TInst &ti =
                ps.blk->insts[static_cast<size_t>(i)];
            if (ti.klass == ExecClass::Jcc) {
                TraceOp g;
                g.h = TraceH::JccGuard;
                g.cond = ti.mi.cond;
                g.seg = static_cast<uint16_t>(si);
                g.instIdx = static_cast<uint32_t>(i);
                g.ti = &ti;
                tr->ops.push_back(g);
            } else {
                encodeInst(ti, static_cast<uint32_t>(i),
                           static_cast<uint16_t>(si), sp_reg,
                           tr->ops);
            }
        }

        const TInst &bi =
            ps.blk->insts[static_cast<size_t>(ps.boundary)];
        TraceOp t;
        t.seg = static_cast<uint16_t>(si);
        t.instIdx = static_cast<uint32_t>(ps.boundary);
        t.ti = &bi;
        t.guestD = bi.guestCum;
        t.readsD = bi.memReadsCum;
        t.writesD = bi.memWritesCum;
        if (ps.isFinal) {
            t.h = TraceH::TraceEnd;
        } else {
            const BlockExit &ex =
                ps.blk->exits[static_cast<size_t>(ps.exitIdx)];
            t.imm = ex.target;
            if (bi.klass == ExecClass::Jcc) {
                t.h = TraceH::SegBranchCc;
                t.cond = bi.mi.cond;
            } else if (ex.kind == BlockExit::Kind::Branch) {
                t.h = TraceH::SegBranch;
            } else {
                t.h = TraceH::SegCall;
                t.imm2 = ex.returnTo;
            }
        }
        tr->ops.push_back(t);
    }

    // Wire the taken segment edges: each interior boundary is the last
    // op of its segment and jumps to the next segment's first op (or
    // back to op 0 when the trace closes on its head).
    for (size_t si = 0; si + 1 < plan.size(); ++si)
        tr->ops[seg_first[si + 1] - 1].jumpTo = seg_first[si + 1];
    if (loop_back)
        tr->ops.back().jumpTo = 0;

    SuperTrace *raw = tr.get();
    head->strace = raw;
    _live.push_back(std::move(tr));
    ++stats.formed;
    return raw;
}

void
TraceEngine::invalidateAll()
{
    if (_live.empty())
        return;
    stats.invalidated += _live.size();
    for (auto &t : _live)
        _retired.push_back(std::move(t));
    _live.clear();
}

/**
 * The threaded trace executor. One computed-goto dispatch per
 * pre-decoded operation, no per-instruction pc maintenance, no
 * per-instruction counter updates: deterministic counters fold from
 * the translate-time running totals at segment boundaries and at
 * faults, exactly where the block loop folds them. Memory accesses go
 * through per-family span hints (one range compare on the hit path)
 * with semantics byte-identical to tryRead32/tryWrite32.
 */
TraceExit
PsrVm::runTrace(SuperTrace *tr, uint64_t guest_budget,
                VmRunResult &stop)
{
    static const void *const tbl[] = {
        &&h_MovRR,
        &&h_MovRI,
        &&h_MovRM,
        &&h_MovMR,
        &&h_MovMI,
        &&h_Lea,
        &&h_MovHi,
        &&h_CmpRR,
        &&h_CmpRI,
        &&h_CmpRM,
        &&h_CmpMR,
        &&h_CmpMI,
        &&h_TestRR,
        &&h_TestRI,
        &&h_TestRM,
        &&h_TestMR,
        &&h_TestMI,
        &&h_PushR,
        &&h_PushI,
        &&h_PopR,
#define HIPSTR_TRACE_ALU_LABELS(op)                                   \
    &&h_##op##RR, &&h_##op##RI, &&h_##op##RM, &&h_##op##MR,           \
        &&h_##op##MI,
        HIPSTR_TRACE_ALU_OPS(HIPSTR_TRACE_ALU_LABELS)
#undef HIPSTR_TRACE_ALU_LABELS
        &&h_Exec,
        &&h_JccGuard,
        &&h_SegBranch,
        &&h_SegBranchCc,
        &&h_SegCall,
        &&h_TraceEnd,
    };
    static_assert(sizeof(tbl) / sizeof(tbl[0]) ==
                      static_cast<size_t>(TraceH::NumHandlers),
                  "trace handler table out of sync with TraceH");

    using interp_detail::aluCompute;
    using interp_detail::setCmpFlags;
    using interp_detail::setTestFlags;

    TraceExit tx;
    uint32_t *const regs = state.regs.data();
    Memory &mem = _mem;
    // Per-family span hints: moves vs. slot/stack traffic, reads vs.
    // writes kept apart (a hint proves only one access direction).
    Memory::SpanHint rh0, rh1, wh0, wh1;
    const TraceOp *const ops = tr->ops.data();
    const TraceOp *op = ops;

#define R(x) regs[(x)]
#define NEXTOP                                                        \
    do {                                                              \
        ++op;                                                         \
        goto *tbl[static_cast<size_t>(op->h)];                        \
    } while (0)

    goto *tbl[static_cast<size_t>(op->h)];

h_MovRR:
    R(op->a) = R(op->b);
    NEXTOP;
h_MovRI:
    R(op->a) = op->imm;
    NEXTOP;
h_MovRM: {
    uint32_t v;
    if (!mem.tryRead32Span(rh0, R(op->b) + op->imm, v))
        goto fault;
    R(op->a) = v;
    NEXTOP;
}
h_MovMR:
    if (!mem.tryWrite32Span(wh0, R(op->a) + op->imm, R(op->b)))
        goto fault;
    NEXTOP;
h_MovMI:
    if (!mem.tryWrite32Span(wh0, R(op->a) + op->imm, op->imm2))
        goto fault;
    NEXTOP;
h_Lea:
    R(op->a) = R(op->b) + op->imm;
    NEXTOP;
h_MovHi:
    R(op->a) = (R(op->a) & 0xffffu) | (op->imm << 16);
    NEXTOP;

h_CmpRR:
    setCmpFlags(R(op->b), R(op->c), state.flags);
    NEXTOP;
h_CmpRI:
    setCmpFlags(R(op->b), op->imm2, state.flags);
    NEXTOP;
h_CmpRM: {
    uint32_t v;
    if (!mem.tryRead32Span(rh1, R(op->c) + op->imm2, v))
        goto fault;
    setCmpFlags(R(op->b), v, state.flags);
    NEXTOP;
}
h_CmpMR: {
    uint32_t v;
    if (!mem.tryRead32Span(rh1, R(op->b) + op->imm, v))
        goto fault;
    setCmpFlags(v, R(op->c), state.flags);
    NEXTOP;
}
h_CmpMI: {
    uint32_t v;
    if (!mem.tryRead32Span(rh1, R(op->b) + op->imm, v))
        goto fault;
    setCmpFlags(v, op->imm2, state.flags);
    NEXTOP;
}

h_TestRR:
    setTestFlags(R(op->b), R(op->c), state.flags);
    NEXTOP;
h_TestRI:
    setTestFlags(R(op->b), op->imm2, state.flags);
    NEXTOP;
h_TestRM: {
    uint32_t v;
    if (!mem.tryRead32Span(rh1, R(op->c) + op->imm2, v))
        goto fault;
    setTestFlags(R(op->b), v, state.flags);
    NEXTOP;
}
h_TestMR: {
    uint32_t v;
    if (!mem.tryRead32Span(rh1, R(op->b) + op->imm, v))
        goto fault;
    setTestFlags(v, R(op->c), state.flags);
    NEXTOP;
}
h_TestMI: {
    uint32_t v;
    if (!mem.tryRead32Span(rh1, R(op->b) + op->imm, v))
        goto fault;
    setTestFlags(v, op->imm2, state.flags);
    NEXTOP;
}

h_PushR: {
    uint32_t sp = R(op->a) - kWordSize;
    if (!mem.tryWrite32Span(wh1, sp, R(op->b)))
        goto fault;
    R(op->a) = sp;
    NEXTOP;
}
h_PushI: {
    uint32_t sp = R(op->a) - kWordSize;
    if (!mem.tryWrite32Span(wh1, sp, op->imm))
        goto fault;
    R(op->a) = sp;
    NEXTOP;
}
h_PopR: {
    uint32_t sp = R(op->a);
    uint32_t v;
    if (!mem.tryRead32Span(rh1, sp, v))
        goto fault;
    R(op->a) = sp + kWordSize;
    R(op->b) = v;
    NEXTOP;
}

#define HIPSTR_TRACE_ALU_HANDLERS(OP)                                 \
    h_##OP##RR:                                                       \
        R(op->a) = aluCompute(Op::OP, R(op->b), R(op->c));            \
        NEXTOP;                                                       \
    h_##OP##RI:                                                       \
        R(op->a) = aluCompute(Op::OP, R(op->b), op->imm2);            \
        NEXTOP;                                                       \
    h_##OP##RM: {                                                     \
        uint32_t v;                                                   \
        if (!mem.tryRead32Span(rh1, R(op->c) + op->imm2, v))          \
            goto fault;                                               \
        R(op->a) = aluCompute(Op::OP, R(op->b), v);                   \
        NEXTOP;                                                       \
    }                                                                 \
    h_##OP##MR: {                                                     \
        Addr slot = R(op->a) + op->imm;                               \
        uint32_t v;                                                   \
        if (!mem.tryRead32Span(rh1, slot, v))                         \
            goto fault;                                               \
        if (!mem.tryWrite32Span(wh1, slot,                            \
                                aluCompute(Op::OP, v, R(op->c))))     \
            goto fault;                                               \
        NEXTOP;                                                       \
    }                                                                 \
    h_##OP##MI: {                                                     \
        Addr slot = R(op->a) + op->imm;                               \
        uint32_t v;                                                   \
        if (!mem.tryRead32Span(rh1, slot, v))                         \
            goto fault;                                               \
        if (!mem.tryWrite32Span(wh1, slot,                            \
                                aluCompute(Op::OP, v, op->imm2)))     \
            goto fault;                                               \
        NEXTOP;                                                       \
    }

    HIPSTR_TRACE_ALU_HANDLERS(Add)
    HIPSTR_TRACE_ALU_HANDLERS(Sub)
    HIPSTR_TRACE_ALU_HANDLERS(And)
    HIPSTR_TRACE_ALU_HANDLERS(Or)
    HIPSTR_TRACE_ALU_HANDLERS(Xor)
    HIPSTR_TRACE_ALU_HANDLERS(Shl)
    HIPSTR_TRACE_ALU_HANDLERS(Shr)
    HIPSTR_TRACE_ALU_HANDLERS(Sar)
    HIPSTR_TRACE_ALU_HANDLERS(Mul)
    HIPSTR_TRACE_ALU_HANDLERS(Divu)
#undef HIPSTR_TRACE_ALU_HANDLERS

h_Exec: {
    // Generic fallback: full single-instruction semantics. state.pc
    // is scratch inside a trace (nothing here reads it); every exit
    // path below re-establishes it before handing control back.
    ExecStatus st = executeInstInline(op->ti->mi, state, mem, &_os);
    if (st == ExecStatus::Continue) [[likely]]
        NEXTOP;
    if (st == ExecStatus::Halted) {
        stats.guestInsts += op->ti->guestCum;
        stats.hostInsts += op->instIdx + 1;
        stats.memReads += op->ti->memReadsCum;
        stats.memWrites += op->ti->memWritesCum;
        const TraceSegment &sg = tr->segs[op->seg];
        state.pc = sg.guestPc;
        stop.reason = VmStop::Halted;
        stop.stopPc = sg.guestPc;
        tx.kind = TraceExitKind::Stop;
        return tx;
    }
    hipstr_assert(st == ExecStatus::Faulted);
    goto fault;
}

h_JccGuard:
    if (!condHolds(op->cond, state.flags)) [[likely]]
        NEXTOP;
    // Off-trace direction: resume the block loop at the guard, which
    // re-evaluates the (pure) condition and runs the baseline exit
    // machinery — identical counters, chains, and security checks.
    ++_traces.stats.sideExits;
    goto resume_owner;

h_SegBranchCc:
    if (!condHolds(op->cond, state.flags)) {
        // Dominant direction not taken: fall through inside the owner
        // block, exactly where the block loop would continue.
        ++_traces.stats.sideExits;
        goto resume_owner;
    }
    goto seg_branch_taken;

h_SegBranch:
seg_branch_taken:
    stats.guestInsts += op->guestD;
    stats.hostInsts += op->instIdx + 1;
    stats.memReads += op->readsD;
    stats.memWrites += op->writesD;
    if (controlTraceHook) [[unlikely]]
        controlTraceHook(op->imm, 'B');
    ++stats.traceFollows;
    state.pc = op->imm;
    if (stats.guestInsts >= guest_budget) [[unlikely]] {
        stop.reason = VmStop::StepLimit;
        stop.stopPc = state.pc;
        tx.kind = TraceExitKind::Stop;
        return tx;
    }
    op = ops + op->jumpTo;
    goto *tbl[static_cast<size_t>(op->h)];

h_SegCall: {
    stats.guestInsts += op->guestD;
    stats.hostInsts += op->instIdx + 1;
    stats.memReads += op->readsD;
    stats.memWrites += op->writesD;
    // Linkage faults report the owner block's pc, like the block loop.
    state.pc = tr->segs[op->seg].guestPc;
    if (controlTraceHook) [[unlikely]]
        controlTraceHook(op->imm, 'C');
    if (!emitCallLinkage(op->imm2, stop)) {
        tx.kind = TraceExitKind::Stop;
        return tx;
    }
    if (_cache.flushes() != tr->flushGen) [[unlikely]] {
        // The eager return-point translation capacity-flushed the
        // cache: every block this trace splices is gone. Abandon the
        // trace (reading nothing block-owned) and re-enter through
        // the counting dispatcher, like the baseline's flush-dirtied
        // chain pointer does.
        tx.kind = TraceExitKind::DispatchTo;
        tx.target = op->imm;
        return tx;
    }
    ++stats.traceFollows;
    state.pc = op->imm;
    if (stats.guestInsts >= guest_budget) [[unlikely]] {
        stop.reason = VmStop::StepLimit;
        stop.stopPc = state.pc;
        tx.kind = TraceExitKind::Stop;
        return tx;
    }
    op = ops + op->jumpTo;
    goto *tbl[static_cast<size_t>(op->h)];
}

h_TraceEnd:
    // Normal completion: hand the boundary instruction (a return,
    // syscall, indirect or unchainable exit) to the block loop, which
    // runs the full baseline machinery from here.
    goto resume_owner;

resume_owner: {
    const TraceSegment &sg = tr->segs[op->seg];
    state.pc = sg.guestPc;
    tx.kind = TraceExitKind::Resume;
    tx.blk = sg.blk;
    tx.instIdx = op->instIdx;
    return tx;
}

fault: {
    // The faulting instruction is still accounted, exactly like the
    // block loop's credit_through at a fault (credited base is 0
    // inside a segment by construction).
    stats.guestInsts += op->ti->guestCum;
    stats.hostInsts += op->instIdx + 1;
    stats.memReads += op->ti->memReadsCum;
    stats.memWrites += op->ti->memWritesCum;
    const TraceSegment &sg = tr->segs[op->seg];
    state.pc = sg.guestPc;
    stop.reason = VmStop::Fault;
    stop.stopPc = sg.guestPc;
    tx.kind = TraceExitKind::Stop;
    return tx;
}

#undef R
#undef NEXTOP
}

} // namespace hipstr
