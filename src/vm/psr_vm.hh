/**
 * @file
 * The PSR virtual machine: a just-in-time dynamic translation engine
 * (Figure 2) that executes guest code exclusively out of its code
 * cache, applies the PSR transformations per function, routes returns
 * through the hardware Return Address Table, enforces the
 * software-fault-isolation rules of Section 5.1, and raises a
 * security event on every indirect control transfer that misses the
 * code cache (Section 3.5) — the trigger HIPStR uses for
 * probabilistic cross-ISA migration.
 */

#ifndef HIPSTR_VM_PSR_VM_HH
#define HIPSTR_VM_PSR_VM_HH

#include <functional>
#include <memory>
#include <unordered_set>

#include "binary/fatbin.hh"
#include "core/psr_config.hh"
#include "core/relocation.hh"
#include "core/translator.hh"
#include "isa/guest_os.hh"
#include "isa/machine_state.hh"
#include "isa/memory.hh"
#include "sim/rat.hh"
#include "support/serialize.hh"
#include "telemetry/metrics.hh"
#include "telemetry/phase.hh"
#include "telemetry/trace.hh"
#include "vm/code_cache.hh"
#include "vm/jit/engine.hh"
#include "vm/superblock.hh"

namespace hipstr
{

/** Why a VM run stopped. */
enum class VmStop
{
    Exited,            ///< guest called Exit/Execve
    Halted,            ///< guest executed Halt
    Fault,             ///< guest memory fault (crash)
    BadInst,           ///< undecodable guest target (crash)
    SfiViolation,      ///< control or return pointer into the code
                       ///< cache — process terminated (Section 5.1)
    StepLimit,         ///< instruction budget exhausted
    MigrationRequested ///< security hook asked for an ISA switch
};

const char *vmStopName(VmStop s);

/** Result of a VM run. */
struct VmRunResult
{
    VmStop reason = VmStop::StepLimit;
    Addr stopPc = 0;          ///< guest pc at the stop
    Addr migrationTarget = 0; ///< resume target (MigrationRequested)

    bool crashed() const
    {
        return reason == VmStop::Fault || reason == VmStop::BadInst ||
            reason == VmStop::SfiViolation;
    }
};

/** Runtime counters the timing model and the benches consume. */
struct VmStats
{
    uint64_t guestInsts = 0;     ///< guest instructions retired
    uint64_t hostInsts = 0;      ///< translated instructions executed
    uint64_t memReads = 0;
    uint64_t memWrites = 0;
    uint64_t dispatches = 0;     ///< dispatcher entries (unchained)
    uint64_t chainFollows = 0;   ///< direct block-to-block transfers
    /**
     * Block-to-block transfers retired inside a superblock trace.
     * With tracing off these edges count as chainFollows instead;
     * every other counter in this struct is byte-identical either
     * way (neither chainFollows nor traceFollows feeds the timing
     * model or a deterministic bench export).
     */
    uint64_t traceFollows = 0;
    uint64_t translations = 0;
    uint64_t translatedGuestInsts = 0;
    uint64_t ratHits = 0;
    uint64_t ratMisses = 0;
    uint64_t indirectTransfers = 0;
    uint64_t codeCacheMisses = 0; ///< indirect transfers that missed
    uint64_t securityEvents = 0;  ///< == codeCacheMisses (Section 3.5)
    uint64_t migrationsRequested = 0;
    uint64_t cacheFlushes = 0;
    uint64_t syscalls = 0;
    /** Isomeron-mode coin flips (one per call and per return). */
    uint64_t diversificationFlips = 0;
};

/**
 * One PSR virtual machine, bound to one ISA of the fat binary.
 * HIPStR instantiates one per core and moves execution between them.
 */
class PsrVm
{
  public:
    PsrVm(const FatBinary &bin, IsaKind isa, Memory &mem, GuestOs &os,
          const PsrConfig &cfg);

    /** Architectural guest state (public for migration/tests). */
    MachineState state;

    /**
     * Security-event hook: invoked with the offending target when an
     * indirect control transfer misses the code cache. Return true to
     * request migration (the run stops with MigrationRequested).
     * Unset => never migrate (single-ISA PSR).
     */
    std::function<bool(Addr target)> securityEventHook;

    /** Optional per-access hooks for the timing model. @{ */
    std::function<void(Addr addr, bool write)> dataTraceHook;
    std::function<void(Addr cacheAddr)> fetchTraceHook;
    /** @} */

    /**
     * Optional control-transfer trace: called with the guest target
     * and a kind tag ('B'ranch, 'C'all, 'I'ndirect, 'R'eturn,
     * 'J' syscall redirect/longjmp) at every dispatch-level transfer.
     * Used by differential tests; together the kinds observe every
     * transfer the dispatcher accounts, so across runs that stop at
     * an instruction boundary (Exited/Halted/StepLimit)
     *   dispatches + chainFollows + ratHits + traceFollows
     *     == hook invocations + run entries
     * (each run() entry dispatches once without a hook call; a run
     * killed mid-transfer may have called the hook for the very
     * transfer whose dispatch was then denied).
     */
    std::function<void(Addr target, char kind)> controlTraceHook;

    /**
     * Optional structured-trace sink (TraceCategory::Vm: run slices,
     * translations, security events, re-randomizations). nullptr (the
     * default) costs one branch at each cold hook site; the
     * per-instruction loop has no hook sites at all.
     */
    telemetry::TraceBuffer *trace = nullptr;

    /**
     * Cumulative Translate phase profile: one invocation per unit
     * translated, work units are guest instructions, modeled cost
     * charges TimingParams::translateCyclesPerGuestInst at this
     * core's frequency. Never reset (cache flushes re-accrue).
     */
    telemetry::PhaseStats translatePhase;

    /** Point the VM at the program entry with a fresh stack. */
    void reset();

    /**
     * Run until a stop condition or @p max_guest_insts.
     *
     * The run dispatches once, up front, onto a traced or an
     * untraced loop: when no fetch/data hook is installed the inner
     * instruction loop performs no hook checks and no per-operand
     * scanning — data-access counts are taken from the translate-time
     * totals baked into each translated instruction.
     */
    VmRunResult run(uint64_t max_guest_insts);

    /**
     * Respawn behaviour (Section 5.3): flush the code cache and RAT
     * and generate fresh relocation maps, as happens when a worker
     * thread re-spawns after a crash.
     */
    void reRandomize();

    /**
     * Fault injection (src/fault): arm a decode fault — the next
     * run() stops immediately with BadInst at the current pc, as if
     * the decoder tripped over a corrupted code-cache entry. One-shot;
     * disarmed when consumed or by disarmDecodeFault() (respawn).
     * @{
     */
    void armDecodeFault() { _decodeFaultArmed = true; }
    void disarmDecodeFault() { _decodeFaultArmed = false; }
    bool decodeFaultArmed() const { return _decodeFaultArmed; }
    /** @} */

    /**
     * Fault injection: a spurious code-cache + RAT flush (a transient
     * translator fault). Unlike reRandomize() the relocation maps are
     * untouched — the guest just pays retranslation, no crash.
     */
    void flushTranslations();

    /**
     * Superblock tracing observability: engine counters plus whether
     * the knob (config traceMode resolved against HIPSTR_TRACE)
     * enabled tracing for this VM. @{
     */
    bool tracingEnabled() const { return _traceOn; }
    const TraceStats &traceStats() const { return _traces.stats; }
    size_t liveTraces() const { return _traces.liveCount(); }
    /** @} */

    /**
     * Mirror the trace counters (trace.formed/follows/invalidated/
     * sideExits) into @p reg. Host-side observability only — callers
     * must not route this into a deterministic bench registry, since
     * trace coverage legitimately changes with HIPSTR_TRACE.
     */
    void publishTraceTelemetry(telemetry::MetricRegistry &reg) const;

    /**
     * Trace-JIT observability: whether the JIT is active for this VM
     * (jitMode resolved against HIPSTR_JIT, host support, tracing on)
     * and the engine counters. Like the trace counters these are
     * host-side only — coverage changes with HIPSTR_JIT, so they must
     * never feed a deterministic bench registry. @{
     */
    bool jitEnabled() const { return _jitOn; }
    const jit::JitStats &jitStats() const { return _jit.stats; }
    /** The engine itself (arena occupancy assertions in jit_smoke). */
    const jit::TraceJit &jitEngine() const { return _jit; }
    void publishJitTelemetry(telemetry::MetricRegistry &reg) const;
    /** @} */

    /**
     * Checkpointing (src/replay): serialize the architectural state,
     * stats, RAT contents, relocation maps and randomization
     * generation, plus the set of source addresses that held a
     * resident translation. The code cache, superblock traces and
     * inline caches are deliberately NOT serialized — loadState
     * flushes them and they rebuild cold through the normal
     * flush-generation contract. The vetted-address set keeps the
     * Section 3.5 security-event stream identical after a restore:
     * an indirect transfer to a vetted address translates silently
     * (the uninterrupted run would have hit the cache there) instead
     * of raising a spurious event. @{
     */
    void saveState(ByteWriter &w) const;
    void loadState(ByteReader &r);

    /**
     * True if @p src currently has a resident translation, or had
     * one at the checkpoint this VM was restored from (cold rebuild
     * still pending). Attack staging uses this instead of a raw
     * cache probe so candidate selection is restore-invariant.
     */
    bool
    wasTranslated(Addr src)
    {
        return _cache.lookup(src) != nullptr ||
            _vetted.count(src) != 0;
    }
    /** @} */

    IsaKind isa() const { return _isa; }
    VmStats stats;
    CodeCache &codeCache() { return _cache; }
    const CodeCache &codeCache() const { return _cache; }
    ReturnAddressTable &rat() { return _rat; }
    Randomizer &randomizer() { return _randomizer; }
    const Randomizer &randomizer() const { return _randomizer; }
    GuestOs &os() { return _os; }
    Memory &mem() { return _mem; }
    const FatBinary &binary() const { return _bin; }
    const PsrConfig &config() const { return _cfg; }

  private:
    /** Fetch (lookup or translate) the unit at @p src. */
    TranslatedBlock *fetchBlock(Addr src, VmRunResult &stop);
    /** Count + trace the data accesses of one instruction. */
    void traceData(const MachInst &mi);
    /** The run loop, specialized on whether trace hooks are live. */
    template <bool Traced>
    VmRunResult runLoop(uint64_t max_guest_insts);

    /**
     * Dispatch-loop transfer helpers, shared between the block loop
     * and the trace executor so both pay identical counter and
     * security semantics. Each returns nullptr/false with @p stop
     * filled when the run must end. @{
     */
    TranslatedBlock *dispatchTo(Addr target, VmRunResult &stop);
    TranslatedBlock *indirectResolve(Addr target, VmRunResult &stop);
    TranslatedBlock *indirectDispatch(Addr target, VmRunResult &stop);
    bool emitCallLinkage(Addr source_ra, VmRunResult &stop);
    /** @} */

    /**
     * Run @p tr's threaded op stream until a stop, a side exit, or an
     * abandoning flush (defined in superblock.cc).
     */
    TraceExit runTrace(SuperTrace *tr, uint64_t guest_budget,
                       VmRunResult &stop);

    /**
     * Retire every live trace, counting traces that held compiled
     * JIT code into jit.invalidated first. Wraps every code-cache
     * flush's invalidateAll so the two generation protocols (cache
     * flush count, arena generation) stay composed in one place.
     */
    void
    invalidateTraces()
    {
        _jit.stats.invalidated += _traces.liveJittedCount();
        _traces.invalidateAll();
    }

    /** Modeled timestamp of "now" for trace events (cold paths). */
    double traceTs() const;

    /**
     * If @p target is in the restored vetted set, consume it and
     * return true (the caller translates silently, no security
     * event). Only reached on cold cache-miss paths.
     */
    bool
    consumeVetted(Addr target)
    {
        auto it = _vetted.find(target);
        if (it == _vetted.end())
            return false;
        _vetted.erase(it);
        return true;
    }

    const FatBinary &_bin;
    IsaKind _isa;
    Memory &_mem;
    GuestOs &_os;
    PsrConfig _cfg;
    double _translateUsPerInst; ///< modeled translation cost/inst
    Randomizer _randomizer;
    PsrTranslator _translator;
    CodeCache _cache;
    ReturnAddressTable _rat;
    TraceEngine _traces;
    bool _traceOn = false; ///< traceMode resolved against HIPSTR_TRACE
    /** The trace JIT needs the dispatch internals its helpers mirror
        (emitCallLinkage, _cache, _traces, _mem, _os). */
    friend class jit::TraceJit;
    jit::TraceJit _jit;
    bool _jitOn = false; ///< jitMode resolved against HIPSTR_JIT +
                         ///< host support; requires _traceOn
    bool _decodeFaultArmed = false;

    /**
     * Source addresses whose translations were cache-resident at the
     * checkpoint this VM was restored from. Empty except after
     * loadState(); drained as the cold cache rebuilds, and dropped
     * wholesale at the first cache flush — the uninterrupted run's
     * cache is empty after a flush, so vetting must not outlive it.
     */
    std::unordered_set<Addr> _vetted;
};

} // namespace hipstr

#endif // HIPSTR_VM_PSR_VM_HH
