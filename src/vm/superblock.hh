/**
 * @file
 * Superblock traces: hot chains of translated blocks straight-lined
 * into a single pre-decoded instruction stream and executed by a
 * computed-goto threaded loop (PsrVm::runTrace) that never returns to
 * the dispatcher between on-trace blocks.
 *
 * The layer sits strictly *behind* the dispatcher: traces are built
 * only from edges the dispatcher already chained, every off-trace
 * branch is a side-exit guard that resumes the ordinary block loop at
 * the guarded instruction, and every indirect transfer (returns,
 * indirect jumps/calls, syscall redirects) ends the trace so the SFI
 * check and the Section 3.5 code-cache-miss policy run on the one
 * path that always ran them. Deterministic counters are folded from
 * the translate-time running totals at trace boundaries exactly as
 * the block loop folds them at block boundaries, so every counter the
 * benches export is byte-identical with tracing on or off; only
 * chainFollows/traceFollows split (an on-trace edge counts as a
 * traceFollow instead of a chainFollow), and neither feeds the timing
 * model or a deterministic BENCH json.
 *
 * Invalidation composes with the flush protocol: a trace records the
 * code-cache flush generation at formation; any flush (capacity,
 * fault-injected, re-randomization) retires every trace before its
 * block pointers can be re-followed, and a trace that triggers a
 * capacity flush mid-run (call-linkage translation) abandons itself
 * at that boundary without touching another trace-held pointer.
 */

#ifndef HIPSTR_VM_SUPERBLOCK_HH
#define HIPSTR_VM_SUPERBLOCK_HH

#include <memory>
#include <vector>

#include "core/psr_config.hh"
#include "core/translator.hh"

namespace hipstr
{

class CodeCache;

/** The ALU ops the trace executor specializes per operand shape. */
#define HIPSTR_TRACE_ALU_OPS(X)                                       \
    X(Add) X(Sub) X(And) X(Or) X(Xor) X(Shl) X(Shr) X(Sar) X(Mul)     \
    X(Divu)

/**
 * Trace handler index. Every value names one computed-goto label in
 * PsrVm::runTrace; the label table there is built from the same
 * X-macros, so the orders match by construction. Operand shapes:
 * RR/RI register-register/immediate, RM register with memory source,
 * MR/MI memory destination (Cisc two-address slot forms).
 */
enum class TraceH : uint16_t
{
    MovRR,
    MovRI,
    MovRM,
    MovMR,
    MovMI,
    Lea,
    MovHi,
    CmpRR,
    CmpRI,
    CmpRM,
    CmpMR,
    CmpMI,
    TestRR,
    TestRI,
    TestRM,
    TestMR,
    TestMI,
    PushR,
    PushI,
    PopR,
#define HIPSTR_TRACE_ALU_ENUM(op)                                     \
    op##RR, op##RI, op##RM, op##MR, op##MI,
    HIPSTR_TRACE_ALU_OPS(HIPSTR_TRACE_ALU_ENUM)
#undef HIPSTR_TRACE_ALU_ENUM
    Exec,        ///< generic fallback: executeInstInline on ti->mi
    JccGuard,    ///< off-trace conditional: taken => side exit
    SegBranch,   ///< on-trace direct branch edge (block stub exit)
    SegBranchCc, ///< on-trace conditional edge (dominant taken)
    SegCall,     ///< on-trace direct call edge (emits call linkage)
    TraceEnd,    ///< resume the owner block at the boundary inst
    NumHandlers
};

/**
 * One pre-decoded trace operation. Specialized handlers read only the
 * flat fields (registers, displacements, immediates); the source
 * TInst pointer serves the generic fallback and the fault fold. The
 * owning segment + instruction index let any op reconstruct the exact
 * resume/stop point of the baseline block loop.
 */
struct TraceOp
{
    TraceH h = TraceH::Exec;
    uint8_t a = 0;         ///< dst reg / mem base / stack pointer reg
    uint8_t b = 0;         ///< src reg / mem base
    uint8_t c = 0;         ///< second src reg / mem base
    Cond cond = Cond::Eq;  ///< JccGuard / SegBranchCc
    uint16_t seg = 0;      ///< owning segment index
    uint32_t instIdx = 0;  ///< index in the owner block's insts
    uint32_t imm = 0;      ///< displacement / immediate / edge target
    uint32_t imm2 = 0;     ///< second displacement / immediate / RA
    uint32_t jumpTo = 0;   ///< next op index for taken segment edges
    /**
     * Boundary fold deltas: the translate-time inclusive running
     * totals at the boundary instruction (credited base is always 0
     * inside a trace segment — traces exclude mid-block folds). @{
     */
    uint32_t guestD = 0;
    uint32_t readsD = 0;
    uint32_t writesD = 0;
    /** @} */
    const TInst *ti = nullptr; ///< source instruction (fallback/fault)
};

/** One spliced block of a trace. */
struct TraceSegment
{
    TranslatedBlock *blk = nullptr;
    Addr guestPc = 0; ///< blk->srcStart (the block loop's block_pc)
};

/** A formed superblock trace, owned by the TraceEngine. */
struct SuperTrace
{
    Addr headPc = 0;
    uint64_t flushGen = 0; ///< code-cache flush count at formation
    bool loopBack = false; ///< last edge jumps to op 0 (hot loop)
    std::vector<TraceOp> ops;
    std::vector<TraceSegment> segs;

    /**
     * Trace-JIT metadata, embedded here (rather than keyed on the
     * trace pointer in a side table) so the compiled-entry lifetime
     * is exactly the trace lifetime — a recycled allocation can never
     * alias another trace's code. @c gen is the executable arena's
     * generation at compile time; a stale stamp means the bytes may
     * have been reclaimed and the trace is recompiled on next entry.
     */
    struct JitInfo
    {
        const void *entry = nullptr; ///< compiled body, or nullptr
        uint64_t gen = 0;            ///< arena generation stamp
        bool failed = false;         ///< compile declined: interpret
        /**
         * Persistent per-op span-hint slots (one per TraceOp; only
         * memory ops consult theirs) and the Memory layout epoch
         * they were refilled under — the JIT engine clears the table
         * when the epoch moves. See jit::JitFrame.
         */
        std::vector<Memory::SpanHint> hints;
        uint64_t hintEpoch = 0;
    } jit;
};

/** How a trace run hands control back to the dispatch loop. */
enum class TraceExitKind : uint8_t
{
    Stop,      ///< VmRunResult filled in; the run is over
    Resume,    ///< continue the block loop at (blk, instIdx), credited 0
    DispatchTo ///< trace abandoned after a mid-trace flush: dispatch
               ///< target through the ordinary (counting) slow path
};

struct TraceExit
{
    TraceExitKind kind = TraceExitKind::Stop;
    TranslatedBlock *blk = nullptr;
    uint32_t instIdx = 0;
    Addr target = 0;
};

/** Formation/retirement counters (host-side observability only). */
struct TraceStats
{
    uint64_t formed = 0;
    uint64_t attempts = 0;
    uint64_t invalidated = 0;
    uint64_t sideExits = 0;
};

/**
 * Owns every trace of one VM. Formation walks dominant chained edges;
 * invalidation moves live traces to a retired list (freed only at
 * safe points, so a trace that flushed the cache out from under
 * itself stays addressable until it unwinds).
 */
class TraceEngine
{
  public:
    /**
     * Try to build a trace headed at @p head. Returns the installed
     * trace (head->strace set) or nullptr when no dominant chain
     * exists yet. @p flush_gen is the code cache's current flush
     * count; @p sp_reg the ISA's stack-pointer register index.
     */
    SuperTrace *tryForm(TranslatedBlock *head, const PsrConfig &cfg,
                        uint8_t sp_reg, bool isomeron,
                        uint64_t flush_gen);

    /** Retire every live trace (any code-cache flush). */
    void invalidateAll();

    /** Free retired traces; call only outside trace execution. */
    void collectRetired() { _retired.clear(); }

    size_t liveCount() const { return _live.size(); }

    /**
     * Live traces that currently hold a compiled JIT body — the ones
     * a code-cache flush retires *as compiled code* (the jit.invalidated
     * counter); traces stranded by an arena reset are not retired and
     * recompile lazily instead.
     */
    size_t
    liveJittedCount() const
    {
        size_t n = 0;
        for (const auto &t : _live)
            if (t->jit.entry != nullptr)
                ++n;
        return n;
    }

    TraceStats stats;

  private:
    std::vector<std::unique_ptr<SuperTrace>> _live;
    std::vector<std::unique_ptr<SuperTrace>> _retired;
};

} // namespace hipstr

#endif // HIPSTR_VM_SUPERBLOCK_HH
