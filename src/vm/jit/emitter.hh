/**
 * @file
 * Minimal x86-64 machine-code emitter for the trace JIT.
 *
 * Covers exactly the instruction forms the trace compiler lowers to:
 * 32-bit mov/lea/ALU/cmp/test in register and [base+disp] memory
 * forms, [base+index] loads/stores against the guest-memory base,
 * shifts by immediate and by cl, imul/div, setcc to a memory byte,
 * 64-bit counter arithmetic, push/pop/call/ret, and rel32 branches
 * through a label/fixup table. Nothing here is clever: each method
 * appends one canonically-encoded instruction to a byte buffer, and
 * finalize() patches the recorded rel32 fixups.
 *
 * Register names use raw x86 encodings (RAX=0 ... R15=15); the
 * compiler layer owns the pinned-register convention.
 */

#ifndef HIPSTR_VM_JIT_EMITTER_HH
#define HIPSTR_VM_JIT_EMITTER_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "support/logging.hh"

namespace hipstr::jit
{

/** x86-64 register encodings. */
enum HostReg : uint8_t
{
    RAX = 0, RCX = 1, RDX = 2, RBX = 3,
    RSP = 4, RBP = 5, RSI = 6, RDI = 7,
    R8 = 8, R9 = 9, R10 = 10, R11 = 11,
    R12 = 12, R13 = 13, R14 = 14, R15 = 15,
};

/** x86 condition-code nibbles (Jcc / SETcc opcodes add these). */
enum class Cc : uint8_t
{
    O = 0x0, No = 0x1, B = 0x2, Ae = 0x3, E = 0x4, Ne = 0x5,
    Be = 0x6, A = 0x7, S = 0x8, Ns = 0x9, L = 0xc, Ge = 0xd,
    Le = 0xe, G = 0xf,
};

/** Invert a condition (taken <-> not taken). */
inline Cc
ccInvert(Cc c)
{
    return static_cast<Cc>(static_cast<uint8_t>(c) ^ 1);
}

/** [base + disp] or [base + index*1 + disp] memory operand. */
struct Mem
{
    uint8_t base;
    int32_t disp = 0;
    bool hasIndex = false;
    uint8_t index = 0;

    Mem(uint8_t b, int32_t d) : base(b), disp(d) {}
    Mem(uint8_t b, uint8_t idx, int32_t d)
        : base(b), disp(d), hasIndex(true), index(idx)
    {
    }
};

class Emitter
{
  public:
    std::vector<uint8_t> code;

    size_t size() const { return code.size(); }

    /** Labels + rel32 fixups. @{ */
    int
    newLabel()
    {
        _labels.push_back(-1);
        return static_cast<int>(_labels.size()) - 1;
    }

    void
    bind(int label)
    {
        hipstr_assert(_labels[static_cast<size_t>(label)] < 0);
        _labels[static_cast<size_t>(label)] =
            static_cast<int64_t>(code.size());
    }

    bool
    bound(int label) const
    {
        return _labels[static_cast<size_t>(label)] >= 0;
    }

    /** Patch every recorded rel32 against its bound label. */
    void
    finalize()
    {
        for (const Fixup &f : _fixups) {
            int64_t target = _labels[static_cast<size_t>(f.label)];
            hipstr_assert(target >= 0);
            int64_t rel = target - (static_cast<int64_t>(f.at) + 4);
            hipstr_assert(rel >= INT32_MIN && rel <= INT32_MAX);
            int32_t rel32 = static_cast<int32_t>(rel);
            std::memcpy(&code[f.at], &rel32, 4);
        }
        _fixups.clear();
    }
    /** @} */

    /** mov r32, r32 */
    void movRR32(uint8_t dst, uint8_t src) { rr(0x8b, dst, src, 0); }
    /** mov r64, r64 */
    void movRR64(uint8_t dst, uint8_t src) { rr(0x8b, dst, src, 1); }
    /** mov r32, imm32 (zero-extends) */
    void
    movRI32(uint8_t dst, uint32_t imm)
    {
        rexOpt(0, 0, 0, dst);
        u8(0xb8 + (dst & 7));
        u32(imm);
    }
    /** mov r64, imm64 */
    void
    movRI64(uint8_t dst, uint64_t imm)
    {
        rex(1, 0, 0, dst);
        u8(0xb8 + (dst & 7));
        u64(imm);
    }
    /** mov r32, [mem] */
    void movRM32(uint8_t dst, const Mem &m) { rm(0x8b, dst, m, 0); }
    /** mov r64, [mem] */
    void movRM64(uint8_t dst, const Mem &m) { rm(0x8b, dst, m, 1); }
    /** mov [mem], r32 */
    void movMR32(const Mem &m, uint8_t src) { rm(0x89, src, m, 0); }
    /** mov [mem], r64 */
    void movMR64(const Mem &m, uint8_t src) { rm(0x89, src, m, 1); }
    /** mov dword [mem], imm32 */
    void
    movMI32(const Mem &m, uint32_t imm)
    {
        rm(0xc7, 0, m, 0);
        u32(imm);
    }
    /** movzx r32, byte [mem] */
    void
    movzxRM8(uint8_t dst, const Mem &m)
    {
        memRex(0, dst, m);
        u8(0x0f);
        u8(0xb6);
        modRmMem(dst, m);
    }
    /** lea r32, [mem] (address math mod 2^32, flags untouched) */
    void leaRM32(uint8_t dst, const Mem &m) { rm(0x8d, dst, m, 0); }

    /**
     * 32-bit ALU, "reg <- reg op rm" direction. @p load is the
     * 0x03-family opcode: add 03, or 0b, and 23, sub 2b, xor 33,
     * cmp 3b. @{
     */
    void aluRR32(uint8_t load, uint8_t dst, uint8_t src) { rr(load, dst, src, 0); }
    void aluRM32(uint8_t load, uint8_t dst, const Mem &m) { rm(load, dst, m, 0); }
    /** @} */
    /** 32-bit ALU, "rm <- rm op reg" store direction (add 01, ...). */
    void aluMR32(uint8_t store, const Mem &m, uint8_t src) { rm(store, src, m, 0); }
    /** 32-bit ALU with imm32: 81 /n (add 0, or 1, and 4, sub 5, xor 6, cmp 7). */
    void
    aluRI32(uint8_t n, uint8_t dst, uint32_t imm)
    {
        rr(0x81, n, dst, 0);
        u32(imm);
    }
    void
    aluMI32(uint8_t n, const Mem &m, uint32_t imm)
    {
        rm(0x81, n, m, 0);
        u32(imm);
    }

    /** test r32, r32 */
    void testRR32(uint8_t a, uint8_t b) { rr(0x85, b, a, 0); }
    /** test r64, r64 */
    void testRR64(uint8_t a, uint8_t b) { rr(0x85, b, a, 1); }
    /** test r32, imm32 */
    void
    testRI32(uint8_t r, uint32_t imm)
    {
        rr(0xf7, 0, r, 0);
        u32(imm);
    }
    /** test r32, [mem] (flags of rm & reg; symmetric) */
    void testRM32(uint8_t r, const Mem &m) { rm(0x85, r, m, 0); }
    /** cmp r32, [mem] */
    void cmpRM32(uint8_t r, const Mem &m) { rm(0x3b, r, m, 0); }
    /** cmp r64, [mem] */
    void cmpRM64(uint8_t r, const Mem &m) { rm(0x3b, r, m, 1); }
    /** cmp byte [mem], imm8 */
    void
    cmpM8I(const Mem &m, uint8_t imm)
    {
        memRex(0, 0, m);
        u8(0x80);
        modRmMem(7, m);
        u8(imm);
    }

    /** shl/shr/sar r32, imm (n: shl 4, shr 5, sar 7) @{ */
    void
    shiftRI32(uint8_t n, uint8_t r, uint8_t count)
    {
        rr(0xc1, n, r, 0);
        u8(count);
    }
    void shiftRCl32(uint8_t n, uint8_t r) { rr(0xd3, n, r, 0); }
    /** @} */

    /** imul r32, r32 */
    void
    imulRR32(uint8_t dst, uint8_t src)
    {
        rex(0, dst, 0, src);
        u8(0x0f);
        u8(0xaf);
        modRmReg(dst, src);
    }
    /** imul r32, r32, imm32 */
    void
    imulRRI32(uint8_t dst, uint8_t src, uint32_t imm)
    {
        rr(0x69, dst, src, 0);
        u32(imm);
    }
    /** div r32 (unsigned edx:eax / r) */
    void divR32(uint8_t r) { rr(0xf7, 6, r, 0); }

    /** setcc byte [mem] */
    void
    setccM8(Cc cc, const Mem &m)
    {
        memRex(0, 0, m);
        u8(0x0f);
        u8(0x90 + static_cast<uint8_t>(cc));
        modRmMem(0, m);
    }

    /** inc qword [mem] */
    void incM64(const Mem &m) { rm(0xff, 0, m, 1); }
    /** add qword [mem], imm32 (sign-extended) */
    void
    addMI64(const Mem &m, uint32_t imm)
    {
        hipstr_assert(imm < 0x80000000u);
        rm(0x81, 0, m, 1);
        u32(imm);
    }

    /** push/pop r64 @{ */
    void
    pushR(uint8_t r)
    {
        rexOpt(0, 0, 0, r);
        u8(0x50 + (r & 7));
    }
    void
    popR(uint8_t r)
    {
        rexOpt(0, 0, 0, r);
        u8(0x58 + (r & 7));
    }
    /** @} */

    /** sub/add rsp, imm8 @{ */
    void
    subRsp8(uint8_t imm)
    {
        rex(1, 0, 0, RSP);
        u8(0x83);
        modRmReg(5, RSP);
        u8(imm);
    }
    void
    addRsp8(uint8_t imm)
    {
        rex(1, 0, 0, RSP);
        u8(0x83);
        modRmReg(0, RSP);
        u8(imm);
    }
    /** @} */

    /** call r64 */
    void
    callR(uint8_t r)
    {
        rexOpt(0, 0, 0, r);
        u8(0xff);
        modRmReg(2, r);
    }
    void ret() { u8(0xc3); }

    /** jcc/jmp rel32 to a label @{ */
    void
    jcc(Cc cc, int label)
    {
        u8(0x0f);
        u8(0x80 + static_cast<uint8_t>(cc));
        rel32(label);
    }
    void
    jmp(int label)
    {
        u8(0xe9);
        rel32(label);
    }
    /** call rel32 to a label (intra-trace stub calls) */
    void
    callLabel(int label)
    {
        u8(0xe8);
        rel32(label);
    }
    /** @} */

  private:
    struct Fixup
    {
        size_t at;
        int label;
    };

    std::vector<int64_t> _labels;
    std::vector<Fixup> _fixups;

    void u8(uint8_t b) { code.push_back(b); }
    void
    u32(uint32_t v)
    {
        size_t at = code.size();
        code.resize(at + 4);
        std::memcpy(&code[at], &v, 4);
    }
    void
    u64(uint64_t v)
    {
        size_t at = code.size();
        code.resize(at + 8);
        std::memcpy(&code[at], &v, 8);
    }

    void
    rel32(int label)
    {
        _fixups.push_back({code.size(), label});
        u32(0);
    }

    void
    rex(uint8_t w, uint8_t r, uint8_t x, uint8_t b)
    {
        u8(0x40 | (w << 3) | ((r >> 3) << 2) | ((x >> 3) << 1) |
           (b >> 3));
    }

    /** REX only when needed (extended regs or W). */
    void
    rexOpt(uint8_t w, uint8_t r, uint8_t x, uint8_t b)
    {
        if (w || r >= 8 || x >= 8 || b >= 8)
            rex(w, r, x, b);
    }

    void modRmReg(uint8_t reg, uint8_t rm2)
    {
        u8(0xc0 | ((reg & 7) << 3) | (rm2 & 7));
    }

    void
    memRex(uint8_t w, uint8_t reg, const Mem &m)
    {
        rexOpt(w, reg, m.hasIndex ? m.index : 0, m.base);
    }

    /** mod/rm (+SIB, +disp) for a Mem operand. */
    void
    modRmMem(uint8_t reg, const Mem &m)
    {
        const uint8_t base7 = m.base & 7;
        const bool needSib = m.hasIndex || base7 == 4;
        // rbp/r13 as base cannot use the no-disp encoding.
        uint8_t mod;
        if (m.disp == 0 && base7 != 5)
            mod = 0;
        else if (m.disp >= -128 && m.disp <= 127)
            mod = 1;
        else
            mod = 2;
        u8((mod << 6) | ((reg & 7) << 3) | (needSib ? 4 : base7));
        if (needSib) {
            hipstr_assert(!m.hasIndex || (m.index & 7) != 4);
            u8(((m.hasIndex ? (m.index & 7) : 4) << 3) | base7);
        }
        if (mod == 1)
            u8(static_cast<uint8_t>(m.disp));
        else if (mod == 2)
            u32(static_cast<uint32_t>(m.disp));
    }

    /** opcode + modrm reg form (also imm-group /n forms). */
    void
    rr(uint8_t opcode, uint8_t reg, uint8_t rm2, uint8_t w)
    {
        rexOpt(w, reg, 0, rm2);
        u8(opcode);
        modRmReg(reg, rm2);
    }

    /** opcode + modrm mem form. */
    void
    rm(uint8_t opcode, uint8_t reg, const Mem &m, uint8_t w)
    {
        memRex(w, reg, m);
        u8(opcode);
        modRmMem(reg, m);
    }
};

} // namespace hipstr::jit

#endif // HIPSTR_VM_JIT_EMITTER_HH
