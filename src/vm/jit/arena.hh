/**
 * @file
 * W^X executable-memory arena for the trace JIT.
 *
 * The arena is a single anonymous mapping that is *either* writable
 * *or* executable, never both: compilation happens inside a
 * beginWrite()/endWrite() bracket that flips the whole mapping to
 * RW and back to RX. Both flips happen only at safe points — trace
 * compilation runs from the dispatch loop or a formation site, never
 * under a live JIT frame — so no thread ever executes a page that is
 * currently writable.
 *
 * Reclamation is generational, mirroring the code cache's flush
 * counter: the arena is bump-allocated, and when it fills up reset()
 * bumps the generation and rewinds the bump pointer. Compiled traces
 * stamp the generation they were emitted under; an entry stub whose
 * stamp no longer matches generation() must not be called (the bytes
 * may have been reused) and the owning trace is lazily recompiled.
 */

#ifndef HIPSTR_VM_JIT_ARENA_HH
#define HIPSTR_VM_JIT_ARENA_HH

#include <cstddef>
#include <cstdint>

namespace hipstr::jit
{

class ExecArena
{
  public:
    ExecArena() = default;
    ~ExecArena();

    ExecArena(const ExecArena &) = delete;
    ExecArena &operator=(const ExecArena &) = delete;

    /**
     * Map @p bytes of RW memory (rounded up to whole pages). Returns
     * false when the platform cannot provide executable mappings; the
     * JIT then stays disabled. The fresh arena is left in the
     * *writable* state — call endWrite() after the first compile.
     */
    bool init(size_t bytes);

    bool valid() const { return _base != nullptr; }
    size_t capacity() const { return _cap; }
    size_t used() const { return _used; }
    uint64_t generation() const { return _gen; }

    /** Flip the mapping RX -> RW. Safe points only. */
    void beginWrite();
    /** Flip the mapping RW -> RX (code becomes callable). */
    void endWrite();

    /**
     * Bump-allocate @p bytes (16-byte aligned) for code about to be
     * copied in; requires the writable state. Returns nullptr when
     * the arena is full — the caller resets and retries.
     */
    uint8_t *alloc(size_t bytes);

    /**
     * Discard every compiled trace: bump the generation and rewind
     * the bump pointer. Requires the writable state and a safe point
     * (no JIT frame live anywhere in this VM).
     */
    void reset();

  private:
    uint8_t *_base = nullptr;
    size_t _cap = 0;
    size_t _used = 0;
    uint64_t _gen = 1; ///< 0 is the never-compiled stamp on traces
    bool _writable = false;
};

} // namespace hipstr::jit

#endif // HIPSTR_VM_JIT_ARENA_HH
