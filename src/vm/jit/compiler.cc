#include "compiler.hh"

#include <algorithm>
#include <array>
#include <vector>

#include "vm/superblock.hh"

namespace hipstr::jit
{

namespace
{

/** Host registers pinned by convention (see compiler.hh). */
constexpr uint8_t kStatsReg = R12;
constexpr uint8_t kFrameReg = R13;
constexpr uint8_t kMemReg = R14;
constexpr uint8_t kRegsReg = R15;
/** Base of the trace's persistent per-op span-hint table (rbx is
    callee-saved, so it survives helper calls without a reload). */
constexpr uint8_t kHintReg = RBX;

/** Guest registers allocate onto these (scratch: rax/rcx/rdx). */
constexpr uint8_t kAllocatable[] = {RBP, RSI, RDI,
                                    R8, R9, R10, R11};
constexpr size_t kNumAllocatable =
    sizeof(kAllocatable) / sizeof(kAllocatable[0]);

constexpr uint8_t kNoHostReg = 0xff;

constexpr uint32_t kExitSide = kJitExitSide;
constexpr uint32_t kExitEnd = kJitExitEnd;
constexpr uint32_t kExitBudget = kJitExitBudget;

/** 0x03-family (reg <- reg op rm) ALU opcodes. */
constexpr uint8_t kAddLoad = 0x03, kOrLoad = 0x0b, kAndLoad = 0x23,
                  kSubLoad = 0x2b, kXorLoad = 0x33, kCmpLoad = 0x3b;
/** 81 /n immediate-group indices. */
constexpr uint8_t kAddN = 0, kOrN = 1, kAndN = 4, kSubN = 5,
                  kXorN = 6, kCmpN = 7;
/** C1 /n shift-group indices. */
constexpr uint8_t kShlN = 4, kShrN = 5, kSarN = 7;

Cc
mapCond(Cond c)
{
    switch (c) {
      case Cond::Eq: return Cc::E;
      case Cond::Ne: return Cc::Ne;
      case Cond::Lt: return Cc::L;
      case Cond::Le: return Cc::Le;
      case Cond::Gt: return Cc::G;
      case Cond::Ge: return Cc::Ge;
      case Cond::B: return Cc::B;
      case Cond::Be: return Cc::Be;
      case Cond::A: return Cc::A;
      case Cond::Ae: return Cc::Ae;
    }
    return Cc::E;
}

Cond
condInvert(Cond c)
{
    switch (c) {
      case Cond::Eq: return Cond::Ne;
      case Cond::Ne: return Cond::Eq;
      case Cond::Lt: return Cond::Ge;
      case Cond::Le: return Cond::Gt;
      case Cond::Gt: return Cond::Le;
      case Cond::Ge: return Cond::Lt;
      case Cond::B: return Cond::Ae;
      case Cond::Be: return Cond::A;
      case Cond::A: return Cond::Be;
      case Cond::Ae: return Cond::B;
    }
    return Cond::Ne;
}

/** Which TraceOp fields name guest registers, per handler shape. */
struct RegUse
{
    bool a = false, b = false, c = false;
};

RegUse
regUse(TraceH h)
{
    // ALU shapes repeat every 5 starting at AddRR; reduce to a shape
    // index: 0 RR, 1 RI, 2 RM, 3 MR, 4 MI.
    if (h >= TraceH::AddRR && h < TraceH::Exec) {
        switch ((static_cast<int>(h) -
                 static_cast<int>(TraceH::AddRR)) %
                5) {
          case 0: return {true, true, true};   // a <- b op c
          case 1: return {true, true, false};  // a <- b op imm
          case 2: return {true, true, true};   // a <- b op [c+d]
          case 3: return {true, false, true};  // [a+d] op= c
          case 4: return {true, false, false}; // [a+d] op= imm
        }
    }
    switch (h) {
      case TraceH::MovRR: return {true, true, false};
      case TraceH::MovRI: return {true, false, false};
      case TraceH::MovRM: return {true, true, false};
      case TraceH::MovMR: return {true, true, false};
      case TraceH::MovMI: return {true, false, false};
      case TraceH::Lea: return {true, true, false};
      case TraceH::MovHi: return {true, false, false};
      case TraceH::CmpRR: return {false, true, true};
      case TraceH::CmpRI: return {false, true, false};
      case TraceH::CmpRM: return {false, true, true};
      case TraceH::CmpMR: return {false, true, true};
      case TraceH::CmpMI: return {false, true, false};
      case TraceH::TestRR: return {false, true, true};
      case TraceH::TestRI: return {false, true, false};
      case TraceH::TestRM: return {false, true, true};
      case TraceH::TestMR: return {false, true, true};
      case TraceH::TestMI: return {false, true, false};
      case TraceH::PushR: return {true, true, false};
      case TraceH::PushI: return {true, false, false};
      case TraceH::PopR: return {true, true, false};
      default: return {};
    }
}

/**
 * The compiler proper: one instance per compileTrace call. Holds the
 * allocation map, the per-op label tables, and the compile-time
 * EFLAGS-liveness bit used to turn Cmp+Jcc pairs into native
 * compare-and-branch without a state.flags round trip.
 */
class TraceCompiler
{
  public:
    TraceCompiler(const SuperTrace &tr, const CompileLayout &lay,
                  Emitter &em)
        : _tr(tr), _lay(lay), _em(em)
    {
    }

    bool compile();

  private:
    const SuperTrace &_tr;
    const CompileLayout &_lay;
    Emitter &_em;

    std::array<uint8_t, 16> _hostOf{}; ///< guest -> host or kNoHostReg
    std::vector<uint8_t> _allocated;   ///< guest regs with a host reg
    std::vector<int> _opLabel;         ///< label per op (-1 if none)
    int _epilogue = -1;
    int _sharedSlow = -1;
    bool _needSlow = false;
    bool _eflagsLive = false; ///< EFLAGS hold the last guest Cmp/Test

    /** Deferred out-of-line exit blob. */
    struct ExitBlob
    {
        int label;
        uint32_t code;
        uint32_t opIdx;
    };
    std::vector<ExitBlob> _exitBlobs;
    /** Deferred hint-miss blob: call the probe, retry the op. */
    struct MissBlob
    {
        int label;
        uint32_t opIdx;
        int retryLabel;
    };
    std::vector<MissBlob> _missBlobs;

    bool isAlloc(uint8_t g) const { return _hostOf[g] != kNoHostReg; }
    uint8_t host(uint8_t g) const { return _hostOf[g]; }
    Mem home(uint8_t g) const
    {
        return Mem(kRegsReg, 4 * static_cast<int32_t>(g));
    }
    Mem frameMem(int32_t off) const { return Mem(kFrameReg, off); }
    Mem flagByte(int32_t idx) const
    {
        return Mem(kRegsReg, _lay.flagsOffFromRegs + idx);
    }

    void allocateRegisters();

    int exitBlob(uint32_t code, uint32_t opIdx);
    int missBlob(uint32_t opIdx, int retryLabel);

    void flushRegs();
    void reloadRegs();

    /** Value of guest reg @p g in a host reg (load into @p scratch
        when unallocated). */
    uint8_t
    readReg(uint8_t g, uint8_t scratch)
    {
        if (isAlloc(g))
            return host(g);
        _em.movRM32(scratch, home(g));
        return scratch;
    }
    void
    writeReg(uint8_t g, uint8_t src)
    {
        if (isAlloc(g)) {
            if (host(g) != src)
                _em.movRR32(host(g), src);
        } else {
            _em.movMR32(home(g), src);
        }
    }
    void
    writeRegImm(uint8_t g, uint32_t imm)
    {
        if (isAlloc(g))
            _em.movRI32(host(g), imm);
        else
            _em.movMI32(home(g), imm);
    }

    /** edx <- R(base) + disp (mod 2^32; EFLAGS untouched). */
    void
    emitAddr(uint8_t base, uint32_t disp)
    {
        int32_t d = static_cast<int32_t>(disp);
        if (isAlloc(base)) {
            if (d == 0)
                _em.movRR32(RDX, host(base));
            else
                _em.leaRM32(RDX, Mem(host(base), d));
        } else {
            _em.movRM32(RDX, home(base));
            if (d != 0)
                _em.leaRM32(RDX, Mem(RDX, d));
        }
    }

    /** Range-check edx against op @p idx's persistent hint slot. */
    void
    emitHintCheck(uint32_t idx, int miss)
    {
        int32_t off = static_cast<int32_t>(8 * idx);
        _em.cmpRM32(RDX, Mem(kHintReg, off));
        _em.jcc(Cc::B, miss);
        _em.cmpRM32(RDX, Mem(kHintReg, off + 4));
        _em.jcc(Cc::A, miss);
    }

    Mem guestMemAtRdx() const { return Mem(kMemReg, RDX, 0); }

    /** SETcc the four guest flag bytes from live EFLAGS. */
    void
    materializeFlags()
    {
        _em.setccM8(Cc::E, flagByte(0));
        _em.setccM8(Cc::S, flagByte(1));
        _em.setccM8(Cc::B, flagByte(2));
        _em.setccM8(Cc::O, flagByte(3));
        _eflagsLive = true;
    }

    /** Branch to @p target when @p c holds on the *guest* flags. */
    void
    emitCondJump(Cond c, int target)
    {
        if (_eflagsLive) {
            _em.jcc(mapCond(c), target);
            return;
        }
        // Rematerialize from the state.flags bytes (0/1 each).
        switch (c) {
          case Cond::Eq:
            _em.cmpM8I(flagByte(0), 0);
            _em.jcc(Cc::Ne, target);
            return;
          case Cond::Ne:
            _em.cmpM8I(flagByte(0), 0);
            _em.jcc(Cc::E, target);
            return;
          case Cond::B:
            _em.cmpM8I(flagByte(2), 0);
            _em.jcc(Cc::Ne, target);
            return;
          case Cond::Ae:
            _em.cmpM8I(flagByte(2), 0);
            _em.jcc(Cc::E, target);
            return;
          case Cond::Lt:
          case Cond::Ge:
            _em.movzxRM8(RAX, flagByte(1));
            _em.movzxRM8(RCX, flagByte(3));
            _em.aluRR32(kCmpLoad, RAX, RCX);
            _em.jcc(c == Cond::Lt ? Cc::Ne : Cc::E, target);
            return;
          case Cond::Le:
          case Cond::Gt:
            _em.movzxRM8(RAX, flagByte(1));
            _em.movzxRM8(RCX, flagByte(3));
            _em.aluRR32(kXorLoad, RAX, RCX);
            _em.movzxRM8(RCX, flagByte(0));
            _em.aluRR32(kOrLoad, RAX, RCX);
            _em.jcc(c == Cond::Le ? Cc::Ne : Cc::E, target);
            return;
          case Cond::Be:
          case Cond::A:
            _em.movzxRM8(RAX, flagByte(2));
            _em.movzxRM8(RCX, flagByte(0));
            _em.aluRR32(kOrLoad, RAX, RCX);
            _em.jcc(c == Cond::Be ? Cc::Ne : Cc::E, target);
            return;
        }
    }

    /** Fold the boundary deltas of @p op into VmStats (r12). */
    void
    emitFold(const TraceOp &op)
    {
        _em.addMI64(Mem(kStatsReg, _lay.statsGuestInsts), op.guestD);
        _em.addMI64(Mem(kStatsReg, _lay.statsHostInsts),
                    op.instIdx + 1);
        if (op.readsD != 0)
            _em.addMI64(Mem(kStatsReg, _lay.statsMemReads),
                        op.readsD);
        if (op.writesD != 0)
            _em.addMI64(Mem(kStatsReg, _lay.statsMemWrites),
                        op.writesD);
    }

    /** flush, call helper(frame, opIdx), reload; EFLAGS = retval. */
    void
    emitHelperCall(const void *helper, uint32_t opIdx)
    {
        flushRegs();
        _em.movRR64(RDI, kFrameReg);
        _em.movRI32(RSI, opIdx);
        _em.movRI64(RAX,
                    reinterpret_cast<uint64_t>(
                        const_cast<void *>(helper)));
        _em.callR(RAX);
        reloadRegs();
        _em.testRR32(RAX, RAX);
        _eflagsLive = false;
    }

    bool compileOp(uint32_t idx, const TraceOp &op);
    void compileAluRR(uint8_t loadOp, const TraceOp &op);
    void compileAluRI(uint8_t immN, const TraceOp &op);
    void emitTailBlobs();
};

void
TraceCompiler::allocateRegisters()
{
    // One host register per guest register for the *whole* trace:
    // every helper-call site flushes and reloads the full allocated
    // set, so a host register that served two disjoint guest live
    // ranges would flush the wrong value into the expired range's
    // home. With eight allocatable hosts against the handful of
    // registers a hot loop actually touches, whole-trace assignment
    // of the most-used guests loses nothing.
    std::array<uint32_t, 16> uses{};
    for (const TraceOp &op : _tr.ops) {
        RegUse u = regUse(op.h);
        if (u.a)
            ++uses[op.a];
        if (u.b)
            ++uses[op.b];
        if (u.c)
            ++uses[op.c];
    }
    std::array<uint8_t, 16> order{};
    for (uint8_t g = 0; g < 16; ++g)
        order[g] = g;
    std::sort(order.begin(), order.end(),
              [&](uint8_t a, uint8_t b) {
                  if (uses[a] != uses[b])
                      return uses[a] > uses[b];
                  return a < b;
              });
    _hostOf.fill(kNoHostReg);
    for (size_t i = 0; i < kNumAllocatable; ++i) {
        uint8_t g = order[i];
        if (uses[g] == 0)
            break;
        _hostOf[g] = kAllocatable[i];
        _allocated.push_back(g);
    }
}

int
TraceCompiler::exitBlob(uint32_t code, uint32_t opIdx)
{
    int l = _em.newLabel();
    _exitBlobs.push_back({l, code, opIdx});
    return l;
}

int
TraceCompiler::missBlob(uint32_t opIdx, int retryLabel)
{
    _needSlow = true;
    int l = _em.newLabel();
    _missBlobs.push_back({l, opIdx, retryLabel});
    return l;
}

void
TraceCompiler::flushRegs()
{
    for (uint8_t g : _allocated)
        _em.movMR32(home(g), host(g));
}

void
TraceCompiler::reloadRegs()
{
    for (uint8_t g : _allocated)
        _em.movRM32(host(g), home(g));
}

/** a <- b op c|[c+imm2] for add/sub/and/or/xor (and cmp-less mul). */
void
TraceCompiler::compileAluRR(uint8_t loadOp, const TraceOp &op)
{
    // Two-address fast path: a == b and a lives in a register.
    if (op.a == op.b && isAlloc(op.a)) {
        if (isAlloc(op.c))
            _em.aluRR32(loadOp, host(op.a), host(op.c));
        else
            _em.aluRM32(loadOp, host(op.a), home(op.c));
        return;
    }
    uint8_t src = readReg(op.c, RCX);
    uint8_t vb = readReg(op.b, RAX);
    if (vb != RAX)
        _em.movRR32(RAX, vb);
    _em.aluRR32(loadOp, RAX, src);
    writeReg(op.a, RAX);
}

void
TraceCompiler::compileAluRI(uint8_t immN, const TraceOp &op)
{
    if (op.a == op.b && isAlloc(op.a)) {
        _em.aluRI32(immN, host(op.a), op.imm2);
        return;
    }
    uint8_t vb = readReg(op.b, RAX);
    if (vb != RAX)
        _em.movRR32(RAX, vb);
    _em.aluRI32(immN, RAX, op.imm2);
    writeReg(op.a, RAX);
}

bool
TraceCompiler::compileOp(uint32_t idx, const TraceOp &op)
{
    const TraceH h = op.h;
    // Memory ops and ALU groups first (contiguous enum ranges).
    if (h >= TraceH::AddRR && h < TraceH::Exec) {
        const int aluIdx = (static_cast<int>(h) -
                            static_cast<int>(TraceH::AddRR));
        const int shape = aluIdx % 5; // RR RI RM MR MI
        const int kind = aluIdx / 5;  // Add..Divu (X-macro order)
        enum
        {
            kAdd, kSub, kAnd, kOr, kXor, kShl, kShr, kSar, kMul,
            kDivu
        };
        static constexpr uint8_t loadOps[] = {kAddLoad, kSubLoad,
                                              kAndLoad, kOrLoad,
                                              kXorLoad};
        static constexpr uint8_t immNs[] = {kAddN, kSubN, kAndN,
                                            kOrN, kXorN};
        static constexpr uint8_t shiftNs[] = {kShlN, kShrN, kSarN};
        const bool basic = kind <= kXor;
        const bool shift = kind >= kShl && kind <= kSar;

        if (shape == 0) { // a <- b op c
            _eflagsLive = false;
            if (basic) {
                compileAluRR(loadOps[kind], op);
            } else if (shift) {
                uint8_t cnt = readReg(op.c, RCX);
                if (cnt != RCX)
                    _em.movRR32(RCX, cnt);
                if (op.a == op.b && isAlloc(op.a)) {
                    _em.shiftRCl32(shiftNs[kind - kShl], host(op.a));
                } else {
                    uint8_t vb = readReg(op.b, RAX);
                    if (vb != RAX)
                        _em.movRR32(RAX, vb);
                    _em.shiftRCl32(shiftNs[kind - kShl], RAX);
                    writeReg(op.a, RAX);
                }
            } else if (kind == kMul) {
                uint8_t src = readReg(op.c, RCX);
                uint8_t vb = readReg(op.b, RAX);
                if (vb != RAX)
                    _em.movRR32(RAX, vb);
                _em.imulRR32(RAX, src);
                writeReg(op.a, RAX);
            } else { // Divu: b/c with c==0 -> 0
                uint8_t div = readReg(op.c, RCX);
                uint8_t vb = readReg(op.b, RAX);
                if (vb != RAX)
                    _em.movRR32(RAX, vb);
                int zero = _em.newLabel(), done = _em.newLabel();
                _em.testRR32(div, div);
                _em.jcc(Cc::E, zero);
                _em.aluRR32(kXorLoad, RDX, RDX);
                _em.divR32(div);
                _em.jmp(done);
                _em.bind(zero);
                _em.aluRR32(kXorLoad, RAX, RAX);
                _em.bind(done);
                writeReg(op.a, RAX);
            }
            return true;
        }
        if (shape == 1) { // a <- b op imm2
            _eflagsLive = false;
            if (basic) {
                compileAluRI(immNs[kind], op);
            } else if (shift) {
                uint8_t cnt = static_cast<uint8_t>(op.imm2 & 31);
                if (op.a == op.b && isAlloc(op.a)) {
                    _em.shiftRI32(shiftNs[kind - kShl], host(op.a),
                                  cnt);
                } else {
                    uint8_t vb = readReg(op.b, RAX);
                    if (vb != RAX)
                        _em.movRR32(RAX, vb);
                    _em.shiftRI32(shiftNs[kind - kShl], RAX, cnt);
                    writeReg(op.a, RAX);
                }
            } else if (kind == kMul) {
                uint8_t vb = readReg(op.b, RAX);
                _em.imulRRI32(RAX, vb, op.imm2);
                writeReg(op.a, RAX);
            } else { // Divu by constant
                if (op.imm2 == 0) {
                    writeRegImm(op.a, 0);
                } else {
                    uint8_t vb = readReg(op.b, RAX);
                    if (vb != RAX)
                        _em.movRR32(RAX, vb);
                    _em.movRI32(RCX, op.imm2);
                    _em.aluRR32(kXorLoad, RDX, RDX);
                    _em.divR32(RCX);
                    writeReg(op.a, RAX);
                }
            }
            return true;
        }

        // Memory shapes: the op starts at a retry label (hint misses
        // call the probe, then re-run the op from here).
        int retry = _em.newLabel();
        _em.bind(retry);
        int miss = missBlob(idx, retry);
        _eflagsLive = false;
        if (shape == 2) { // a <- b op [R(c)+imm2]
            emitAddr(op.c, op.imm2);
            emitHintCheck(idx, miss);
            if (basic && op.a == op.b && isAlloc(op.a)) {
                _em.aluRM32(loadOps[kind], host(op.a),
                            guestMemAtRdx());
                return true;
            }
            _em.movRM32(RCX, guestMemAtRdx()); // v
            uint8_t vb = readReg(op.b, RAX);
            if (vb != RAX)
                _em.movRR32(RAX, vb);
            if (basic) {
                _em.aluRR32(loadOps[kind], RAX, RCX);
            } else if (shift) {
                _em.shiftRCl32(shiftNs[kind - kShl], RAX);
            } else if (kind == kMul) {
                _em.imulRR32(RAX, RCX);
            } else { // Divu
                int zero = _em.newLabel(), done = _em.newLabel();
                _em.testRR32(RCX, RCX);
                _em.jcc(Cc::E, zero);
                _em.aluRR32(kXorLoad, RDX, RDX);
                _em.divR32(RCX);
                _em.jmp(done);
                _em.bind(zero);
                _em.aluRR32(kXorLoad, RAX, RAX);
                _em.bind(done);
            }
            writeReg(op.a, RAX);
            return true;
        }
        // Shapes 3/4: slot <- alu(slot, src) at [R(a)+imm].
        emitAddr(op.a, op.imm);
        emitHintCheck(idx, miss);
        _em.movRM32(RAX, guestMemAtRdx()); // v
        bool addrClobbered = false;
        if (shape == 3) { // src = R(c)
            if (basic) {
                if (isAlloc(op.c))
                    _em.aluRR32(loadOps[kind], RAX, host(op.c));
                else
                    _em.aluRM32(loadOps[kind], RAX, home(op.c));
            } else if (shift) {
                uint8_t cnt = readReg(op.c, RCX);
                if (cnt != RCX)
                    _em.movRR32(RCX, cnt);
                _em.shiftRCl32(shiftNs[kind - kShl], RAX);
            } else if (kind == kMul) {
                uint8_t src = readReg(op.c, RCX);
                _em.imulRR32(RAX, src);
            } else { // Divu
                uint8_t div = readReg(op.c, RCX);
                if (div != RCX)
                    _em.movRR32(RCX, div);
                int zero = _em.newLabel(), done = _em.newLabel();
                _em.testRR32(RCX, RCX);
                _em.jcc(Cc::E, zero);
                _em.aluRR32(kXorLoad, RDX, RDX);
                _em.divR32(RCX);
                _em.jmp(done);
                _em.bind(zero);
                _em.aluRR32(kXorLoad, RAX, RAX);
                _em.bind(done);
                addrClobbered = true;
            }
        } else { // shape 4: src = imm2
            if (basic) {
                _em.aluRI32(immNs[kind], RAX, op.imm2);
            } else if (shift) {
                _em.shiftRI32(shiftNs[kind - kShl], RAX,
                              static_cast<uint8_t>(op.imm2 & 31));
            } else if (kind == kMul) {
                _em.imulRRI32(RAX, RAX, op.imm2);
            } else { // Divu
                if (op.imm2 == 0) {
                    _em.aluRR32(kXorLoad, RAX, RAX);
                } else {
                    _em.movRI32(RCX, op.imm2);
                    _em.aluRR32(kXorLoad, RDX, RDX);
                    _em.divR32(RCX);
                    addrClobbered = true;
                }
            }
        }
        if (addrClobbered)
            emitAddr(op.a, op.imm); // div used edx; R(a) unchanged
        _em.movMR32(guestMemAtRdx(), RAX);
        return true;
    }

    switch (h) {
      case TraceH::MovRR:
        if (isAlloc(op.a) && isAlloc(op.b)) {
            _em.movRR32(host(op.a), host(op.b));
        } else if (isAlloc(op.a)) {
            _em.movRM32(host(op.a), home(op.b));
        } else if (isAlloc(op.b)) {
            _em.movMR32(home(op.a), host(op.b));
        } else {
            _em.movRM32(RAX, home(op.b));
            _em.movMR32(home(op.a), RAX);
        }
        return true;

      case TraceH::MovRI:
        writeRegImm(op.a, op.imm);
        return true;

      case TraceH::MovRM: {
        int retry = _em.newLabel();
        _em.bind(retry);
        int miss = missBlob(idx, retry);
        _eflagsLive = false;
        emitAddr(op.b, op.imm);
        emitHintCheck(idx, miss);
        if (isAlloc(op.a)) {
            _em.movRM32(host(op.a), guestMemAtRdx());
        } else {
            _em.movRM32(RAX, guestMemAtRdx());
            _em.movMR32(home(op.a), RAX);
        }
        return true;
      }

      case TraceH::MovMR: {
        int retry = _em.newLabel();
        _em.bind(retry);
        int miss = missBlob(idx, retry);
        _eflagsLive = false;
        emitAddr(op.a, op.imm);
        emitHintCheck(idx, miss);
        uint8_t src = readReg(op.b, RAX);
        _em.movMR32(guestMemAtRdx(), src);
        return true;
      }

      case TraceH::MovMI: {
        int retry = _em.newLabel();
        _em.bind(retry);
        int miss = missBlob(idx, retry);
        _eflagsLive = false;
        emitAddr(op.a, op.imm);
        emitHintCheck(idx, miss);
        _em.movMI32(guestMemAtRdx(), op.imm2);
        return true;
      }

      case TraceH::Lea:
        if (isAlloc(op.a)) {
            if (isAlloc(op.b)) {
                _em.leaRM32(host(op.a),
                            Mem(host(op.b),
                                static_cast<int32_t>(op.imm)));
            } else {
                _em.movRM32(host(op.a), home(op.b));
                if (op.imm != 0)
                    _em.leaRM32(host(op.a),
                                Mem(host(op.a),
                                    static_cast<int32_t>(op.imm)));
            }
        } else {
            uint8_t vb = readReg(op.b, RAX);
            if (op.imm != 0) {
                _em.leaRM32(RAX,
                            Mem(vb, static_cast<int32_t>(op.imm)));
                vb = RAX;
            }
            _em.movMR32(home(op.a), vb);
        }
        return true;

      case TraceH::MovHi:
        _eflagsLive = false;
        if (isAlloc(op.a)) {
            _em.aluRI32(kAndN, host(op.a), 0xffffu);
            _em.aluRI32(kOrN, host(op.a), op.imm << 16);
        } else {
            _em.aluMI32(kAndN, home(op.a), 0xffffu);
            _em.aluMI32(kOrN, home(op.a), op.imm << 16);
        }
        return true;

      case TraceH::CmpRR:
      case TraceH::TestRR: {
        uint8_t vb = readReg(op.b, RAX);
        if (h == TraceH::CmpRR) {
            if (isAlloc(op.c))
                _em.aluRR32(kCmpLoad, vb, host(op.c));
            else
                _em.aluRM32(kCmpLoad, vb, home(op.c));
        } else {
            if (isAlloc(op.c))
                _em.testRR32(vb, host(op.c));
            else
                _em.testRM32(vb, home(op.c));
        }
        materializeFlags();
        return true;
      }

      case TraceH::CmpRI:
      case TraceH::TestRI: {
        uint8_t vb = readReg(op.b, RAX);
        if (h == TraceH::CmpRI)
            _em.aluRI32(kCmpN, vb, op.imm2);
        else
            _em.testRI32(vb, op.imm2);
        materializeFlags();
        return true;
      }

      case TraceH::CmpRM:
      case TraceH::TestRM: {
        int retry = _em.newLabel();
        _em.bind(retry);
        int miss = missBlob(idx, retry);
        _eflagsLive = false;
        emitAddr(op.c, op.imm2);
        emitHintCheck(idx, miss);
        _em.movRM32(RCX, guestMemAtRdx()); // v
        uint8_t vb = readReg(op.b, RAX);
        if (h == TraceH::CmpRM)
            _em.aluRR32(kCmpLoad, vb, RCX);
        else
            _em.testRR32(vb, RCX);
        materializeFlags();
        return true;
      }

      case TraceH::CmpMR:
      case TraceH::CmpMI:
      case TraceH::TestMR:
      case TraceH::TestMI: {
        int retry = _em.newLabel();
        _em.bind(retry);
        int miss = missBlob(idx, retry);
        _eflagsLive = false;
        emitAddr(op.b, op.imm);
        emitHintCheck(idx, miss);
        _em.movRM32(RAX, guestMemAtRdx()); // v
        if (h == TraceH::CmpMR) {
            if (isAlloc(op.c))
                _em.aluRR32(kCmpLoad, RAX, host(op.c));
            else
                _em.aluRM32(kCmpLoad, RAX, home(op.c));
        } else if (h == TraceH::CmpMI) {
            _em.aluRI32(kCmpN, RAX, op.imm2);
        } else if (h == TraceH::TestMR) {
            if (isAlloc(op.c))
                _em.testRR32(RAX, host(op.c));
            else
                _em.testRM32(RAX, home(op.c));
        } else {
            _em.testRI32(RAX, op.imm2);
        }
        materializeFlags();
        return true;
      }

      case TraceH::PushR:
      case TraceH::PushI: {
        int retry = _em.newLabel();
        _em.bind(retry);
        int miss = missBlob(idx, retry);
        _eflagsLive = false;
        emitAddr(op.a, static_cast<uint32_t>(-4)); // sp - kWordSize
        emitHintCheck(idx, miss);
        if (h == TraceH::PushR) {
            uint8_t src = readReg(op.b, RAX);
            _em.movMR32(guestMemAtRdx(), src);
        } else {
            _em.movMI32(guestMemAtRdx(), op.imm);
        }
        writeReg(op.a, RDX); // sp commits only after the store
        return true;
      }

      case TraceH::PopR: {
        int retry = _em.newLabel();
        _em.bind(retry);
        int miss = missBlob(idx, retry);
        _eflagsLive = false;
        emitAddr(op.a, 0);
        emitHintCheck(idx, miss);
        _em.movRM32(RAX, guestMemAtRdx()); // v
        _em.leaRM32(RCX, Mem(RDX, 4));     // sp + kWordSize
        writeReg(op.a, RCX);
        writeReg(op.b, RAX); // b == a: the popped value wins
        return true;
      }

      case TraceH::Exec: {
        emitHelperCall(_lay.execHelper, idx);
        _em.jcc(Cc::E, _epilogue); // helper recorded the exit
        return true;
      }

      case TraceH::JccGuard: {
        // Taken => off-trace side exit; EFLAGS survive a not-taken
        // guard, so a following SegBranchCc can reuse them.
        int side = exitBlob(kExitSide, idx);
        emitCondJump(op.cond, side);
        return true;
      }

      case TraceH::SegBranchCc: {
        int side = exitBlob(kExitSide, idx);
        emitCondJump(condInvert(op.cond), side);
        [[fallthrough]];
      }
      case TraceH::SegBranch: {
        _eflagsLive = false;
        emitFold(op);
        _em.incM64(Mem(kStatsReg, _lay.statsTraceFollows));
        _em.movRM64(RAX, Mem(kStatsReg, _lay.statsGuestInsts));
        _em.cmpRM64(RAX, frameMem(_lay.frameBudget));
        _em.jcc(Cc::Ae, exitBlob(kExitBudget, idx));
        if (op.jumpTo != idx + 1)
            _em.jmp(_opLabel[op.jumpTo]);
        return true;
      }

      case TraceH::SegCall: {
        emitHelperCall(_lay.segCallHelper, idx);
        _em.jcc(Cc::E, _epilogue); // stop/abandon recorded
        if (op.jumpTo != idx + 1)
            _em.jmp(_opLabel[op.jumpTo]);
        return true;
      }

      case TraceH::TraceEnd: {
        _em.movMI32(frameMem(_lay.frameExitCode), kExitEnd);
        _em.movMI32(frameMem(_lay.frameExitOp), idx);
        _em.jmp(_epilogue);
        return true;
      }

      default:
        return false; // unknown handler: leave the trace interpreted
    }
}

void
TraceCompiler::emitTailBlobs()
{
    // Exit blobs: record (code, op) and unwind through the epilogue.
    for (const ExitBlob &b : _exitBlobs) {
        _em.bind(b.label);
        _em.movMI32(frameMem(_lay.frameExitCode), b.code);
        _em.movMI32(frameMem(_lay.frameExitOp), b.opIdx);
        _em.jmp(_epilogue);
    }
    // Hint-miss blobs: probe (refill or record fault), then retry.
    for (const MissBlob &b : _missBlobs) {
        _em.bind(b.label);
        _em.movRI32(RAX, b.opIdx);
        _em.callLabel(_sharedSlow);
        _em.jmp(b.retryLabel);
    }
    if (_needSlow) {
        // rsp is 8 (mod 16) here: entered by call from the body.
        _em.bind(_sharedSlow);
        flushRegs(); // probe computes addresses from state.regs
        _em.movRR64(RDI, kFrameReg);
        _em.movRR32(RSI, RAX);
        _em.subRsp8(8);
        _em.movRI64(RAX,
                    reinterpret_cast<uint64_t>(const_cast<void *>(
                        _lay.memProbeHelper)));
        _em.callR(RAX);
        _em.addRsp8(8);
        reloadRegs(); // the C call clobbered caller-saved hosts
        _em.testRR32(RAX, RAX);
        int unwind = _em.newLabel();
        _em.jcc(Cc::E, unwind);
        _em.ret(); // hint refilled: retry the op
        _em.bind(unwind);
        _em.addRsp8(8); // drop the retry return address
        _em.jmp(_epilogue);
    }
    // Epilogue: flush guest registers, restore, return.
    _em.bind(_epilogue);
    flushRegs();
    _em.addRsp8(8);
    _em.popR(R15);
    _em.popR(R14);
    _em.popR(R13);
    _em.popR(R12);
    _em.popR(RBP);
    _em.popR(RBX);
    _em.ret();
}

bool
TraceCompiler::compile()
{
    const size_t n = _tr.ops.size();
    if (n == 0 || n > 0xffffff)
        return false;
    for (const TraceOp &op : _tr.ops) {
        if (op.h >= TraceH::NumHandlers)
            return false;
        // addMI64 sign-extends its imm32: deltas must stay positive.
        if (op.guestD >= 0x80000000u || op.readsD >= 0x80000000u ||
            op.writesD >= 0x80000000u ||
            op.instIdx + 1 >= 0x80000000u) {
            return false;
        }
    }

    allocateRegisters();
    _epilogue = _em.newLabel();
    _sharedSlow = _em.newLabel();

    // Labels for every segment-edge target (and memory-op retries,
    // created inline).
    _opLabel.assign(n, -1);
    auto needLabel = [&](uint32_t t) {
        if (t < n && _opLabel[t] < 0)
            _opLabel[t] = _em.newLabel();
    };
    for (const TraceOp &op : _tr.ops) {
        if (op.h == TraceH::SegBranch || op.h == TraceH::SegBranchCc ||
            op.h == TraceH::SegCall) {
            if (op.jumpTo >= n)
                return false;
            needLabel(op.jumpTo);
        }
    }

    // Prologue: save callee-saved hosts, adopt the pinned registers,
    // load the allocated guest registers. rsp: entry 8 (mod 16),
    // +6 pushes, -8 => 0 (mod 16) throughout the body, as the
    // SysV ABI requires at helper call sites.
    _em.pushR(RBX);
    _em.pushR(RBP);
    _em.pushR(R12);
    _em.pushR(R13);
    _em.pushR(R14);
    _em.pushR(R15);
    _em.subRsp8(8);
    _em.movRR64(kFrameReg, RDI);
    _em.movRM64(kStatsReg, frameMem(_lay.frameStats));
    _em.movRM64(kMemReg, frameMem(_lay.frameMemBase));
    _em.movRM64(kRegsReg, frameMem(_lay.frameRegs));
    _em.movRM64(kHintReg, frameMem(_lay.frameOpHints));
    reloadRegs();

    for (uint32_t i = 0; i < n; ++i) {
        if (_opLabel[i] >= 0) {
            _em.bind(_opLabel[i]);
            // Jump targets merge control flow: EFLAGS unknown.
            _eflagsLive = false;
        }
        if (!compileOp(i, _tr.ops[i]))
            return false;
    }
    emitTailBlobs();
    _em.finalize();
    return true;
}

} // namespace

bool
compileTrace(const SuperTrace &tr, const CompileLayout &lay,
             Emitter &em)
{
    return TraceCompiler(tr, lay, em).compile();
}

} // namespace hipstr::jit
