/**
 * @file
 * Trace-JIT engine: owns the executable arena, compiles hot
 * superblock traces on first entry, and runs them with the exact
 * observable semantics of PsrVm::runTrace.
 *
 * Execution contract: compiled code receives one JitFrame and runs
 * under four pinned registers (r12 = &VmStats, r13 = frame,
 * r14 = guest-memory base, r15 = &state.regs[0]). Rare or complex
 * operations — span-hint misses, generic Exec fallbacks, SegCall
 * linkage — leave JIT code through extern "C" helpers that flush the
 * allocated guest registers to their MachineState homes first, so
 * C++ always sees (and may mutate) architectural state. On return
 * the frame's exitCode says which epilogue fired and run() finishes
 * the exit exactly as the threaded interpreter would: side exits
 * resume the owner block, faults fold the translate-time cumulative
 * counters, budget stops report StepLimit at the edge target.
 *
 * Invalidation composes with the code-cache flush protocol at two
 * generations: a trace retired by any cache flush simply never
 * reaches run() again (the block's strace pointer is gone), and the
 * arena's own generation stamp catches traces stranded by an
 * arena-capacity reset — ensureCompiled() recompiles them lazily at
 * the next entry, which is always a safe point (no JIT frame live).
 */

#ifndef HIPSTR_VM_JIT_ENGINE_HH
#define HIPSTR_VM_JIT_ENGINE_HH

#include <cstdint>

#include "isa/memory.hh"
#include "vm/jit/arena.hh"
#include "vm/superblock.hh"

namespace hipstr
{

class PsrVm;
struct VmRunResult;
struct VmStats;

namespace jit
{

/**
 * Per-entry execution frame. The leading members are read by
 * compiled code at fixed offsets (baked through CompileLayout); the
 * trailing pointers serve only the C++ helpers.
 *
 * opHints points at the trace's persistent per-op span-hint table
 * (SuperTrace::jit.hints, one SpanHint per TraceOp). Unlike the
 * interpreter's four per-run family hints — whose windows thrash
 * when a loop alternates between address-space spans — each memory
 * op owns its slot, so in steady state the window check never
 * misses. Persistence across entries is sound because hint state is
 * semantically invisible (a hit performs exactly the access the
 * interpreter's checked path would) and the engine clears the table
 * whenever Memory's span layout epoch moves (region changes happen
 * only between trace runs — syscalls end traces).
 */
struct JitFrame
{
    VmStats *stats = nullptr;
    uint8_t *memBase = nullptr;
    uint32_t *regs = nullptr;
    uint64_t guestBudget = 0;
    uint32_t exitCode = 0;
    uint32_t exitOp = 0;
    Memory::SpanHint *opHints = nullptr;
    /** Helper-only context (never touched by emitted code). @{ */
    PsrVm *vm = nullptr;
    SuperTrace *trace = nullptr;
    VmRunResult *stop = nullptr;
    TraceExit *exit = nullptr;
    /** @} */
};

/** Host-side observability counters (BENCH jit.* family). */
struct JitStats
{
    uint64_t compiledTraces = 0; ///< successful compilations
    uint64_t codeBytes = 0;      ///< total bytes of emitted code
    uint64_t executions = 0;     ///< compiled-trace entries
    uint64_t sideExits = 0;      ///< guard exits taken in JIT code
    uint64_t bailouts = 0;       ///< entries that fell back to the
                                 ///< interpreter (gating or compile
                                 ///< declined)
    uint64_t invalidated = 0;    ///< compiled traces retired by a
                                 ///< code-cache flush
};

/**
 * One trace JIT per VM. Compilation is lazy (first entry of each
 * trace) and the arena is mapped on first use, so VMs that never form
 * a hot trace pay nothing.
 */
class TraceJit
{
  public:
    JitStats stats;

    /**
     * Execute @p tr under the JIT if possible. Returns true with
     * @p tx (and possibly @p stop) filled exactly as runTrace would;
     * false when the trace cannot be jitted (caller interprets and
     * counts a bailout). Caller must have checked the per-entry
     * gates (controlTraceHook, journaling).
     */
    bool run(PsrVm &vm, SuperTrace *tr, uint64_t guest_budget,
             VmRunResult &stop, TraceExit &tx);

    /**
     * Whether this build/host can run the JIT at all. On false,
     * @p reason names the blocker (host ISA, sanitizer build).
     */
    static bool hostSupported(const char **reason);

    /** Arena occupancy, for tests. @{ */
    size_t arenaUsed() const { return _arena.used(); }
    size_t arenaCapacity() const { return _arena.capacity(); }
    uint64_t arenaGeneration() const { return _arena.generation(); }
    /** @} */

    /** extern "C" helper bodies (called from emitted code). @{ */
    static int memProbe(JitFrame *f, uint32_t op_idx);
    static int execOp(JitFrame *f, uint32_t op_idx);
    static int segCall(JitFrame *f, uint32_t op_idx);
    /** @} */

  private:
    ExecArena _arena;
    bool _arenaFailed = false;

    bool ensureCompiled(PsrVm &vm, SuperTrace *tr);
};

} // namespace jit
} // namespace hipstr

#endif // HIPSTR_VM_JIT_ENGINE_HH
