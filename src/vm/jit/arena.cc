#include "arena.hh"

#include "support/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define HIPSTR_JIT_HAVE_MMAP 1
#endif

namespace hipstr::jit
{

ExecArena::~ExecArena()
{
#if HIPSTR_JIT_HAVE_MMAP
    if (_base != nullptr)
        ::munmap(_base, _cap);
#endif
}

bool
ExecArena::init(size_t bytes)
{
#if HIPSTR_JIT_HAVE_MMAP
    const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
    _cap = (bytes + page - 1) & ~(page - 1);
    if (_cap < page)
        _cap = page;
    void *p = ::mmap(nullptr, _cap, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) {
        _cap = 0;
        return false;
    }
    _base = static_cast<uint8_t *>(p);
    _used = 0;
    _writable = true;
    return true;
#else
    (void)bytes;
    return false;
#endif
}

void
ExecArena::beginWrite()
{
#if HIPSTR_JIT_HAVE_MMAP
    hipstr_assert(_base != nullptr);
    if (_writable)
        return;
    if (::mprotect(_base, _cap, PROT_READ | PROT_WRITE) != 0)
        hipstr_fatal("jit arena: mprotect(RW) failed");
    _writable = true;
#endif
}

void
ExecArena::endWrite()
{
#if HIPSTR_JIT_HAVE_MMAP
    hipstr_assert(_base != nullptr);
    if (!_writable)
        return;
    if (::mprotect(_base, _cap, PROT_READ | PROT_EXEC) != 0)
        hipstr_fatal("jit arena: mprotect(RX) failed");
    _writable = false;
#endif
}

uint8_t *
ExecArena::alloc(size_t bytes)
{
    hipstr_assert(_base != nullptr && _writable);
    size_t aligned = (_used + 15) & ~size_t(15);
    if (aligned + bytes > _cap)
        return nullptr;
    _used = aligned + bytes;
    return _base + aligned;
}

void
ExecArena::reset()
{
    hipstr_assert(_base != nullptr && _writable);
    ++_gen;
    _used = 0;
}

} // namespace hipstr::jit
