#include "engine.hh"

#include <cstddef>
#include <cstring>

#include "isa/exec_inline.hh"
#include "support/logging.hh"
#include "vm/jit/compiler.hh"
#include "vm/psr_vm.hh"

/**
 * C ABI entry points for emitted code: the compiler embeds these
 * addresses as movabs+call. Each returns nonzero to continue the
 * trace, zero to unwind through the epilogue.
 */
extern "C" int
hipstrJitMemProbe(hipstr::jit::JitFrame *f, uint32_t op_idx)
{
    return hipstr::jit::TraceJit::memProbe(f, op_idx);
}

extern "C" int
hipstrJitExec(hipstr::jit::JitFrame *f, uint32_t op_idx)
{
    return hipstr::jit::TraceJit::execOp(f, op_idx);
}

extern "C" int
hipstrJitSegCall(hipstr::jit::JitFrame *f, uint32_t op_idx)
{
    return hipstr::jit::TraceJit::segCall(f, op_idx);
}

namespace hipstr::jit
{

namespace
{

using JitEntry = void (*)(JitFrame *);

const CompileLayout &
layout()
{
    static const CompileLayout l = [] {
        CompileLayout c;
        c.frameStats =
            static_cast<int32_t>(offsetof(JitFrame, stats));
        c.frameMemBase =
            static_cast<int32_t>(offsetof(JitFrame, memBase));
        c.frameRegs = static_cast<int32_t>(offsetof(JitFrame, regs));
        c.frameBudget =
            static_cast<int32_t>(offsetof(JitFrame, guestBudget));
        c.frameExitCode =
            static_cast<int32_t>(offsetof(JitFrame, exitCode));
        c.frameExitOp =
            static_cast<int32_t>(offsetof(JitFrame, exitOp));
        c.frameOpHints =
            static_cast<int32_t>(offsetof(JitFrame, opHints));
        c.flagsOffFromRegs = static_cast<int32_t>(
            offsetof(MachineState, flags) -
            offsetof(MachineState, regs));
        c.statsGuestInsts =
            static_cast<int32_t>(offsetof(VmStats, guestInsts));
        c.statsHostInsts =
            static_cast<int32_t>(offsetof(VmStats, hostInsts));
        c.statsMemReads =
            static_cast<int32_t>(offsetof(VmStats, memReads));
        c.statsMemWrites =
            static_cast<int32_t>(offsetof(VmStats, memWrites));
        c.statsTraceFollows =
            static_cast<int32_t>(offsetof(VmStats, traceFollows));
        c.memProbeHelper =
            reinterpret_cast<const void *>(&hipstrJitMemProbe);
        c.execHelper =
            reinterpret_cast<const void *>(&hipstrJitExec);
        c.segCallHelper =
            reinterpret_cast<const void *>(&hipstrJitSegCall);
        return c;
    }();
    return l;
}

/** Fold the faulting op's translate-time cumulative counters. */
void
foldFault(PsrVm &vm, const SuperTrace &tr, const TraceOp &op,
          VmRunResult &stop, TraceExit &tx)
{
    vm.stats.guestInsts += op.ti->guestCum;
    vm.stats.hostInsts += op.instIdx + 1;
    vm.stats.memReads += op.ti->memReadsCum;
    vm.stats.memWrites += op.ti->memWritesCum;
    const TraceSegment &sg = tr.segs[op.seg];
    vm.state.pc = sg.guestPc;
    stop.reason = VmStop::Fault;
    stop.stopPc = sg.guestPc;
    tx.kind = TraceExitKind::Stop;
}

/** Resume the baseline block loop at the op's owner instruction. */
void
resumeOwner(PsrVm &vm, const SuperTrace &tr, const TraceOp &op,
            TraceExit &tx)
{
    const TraceSegment &sg = tr.segs[op.seg];
    vm.state.pc = sg.guestPc;
    tx.kind = TraceExitKind::Resume;
    tx.blk = sg.blk;
    tx.instIdx = op.instIdx;
}

/** ALU handler shape, or -1 for non-ALU handlers. */
int
aluShape(TraceH h)
{
    if (h >= TraceH::AddRR && h < TraceH::Exec) {
        return (static_cast<int>(h) -
                static_cast<int>(TraceH::AddRR)) %
            5;
    }
    return -1;
}

} // namespace

bool
TraceJit::hostSupported(const char **reason)
{
#if !defined(__x86_64__)
    *reason = "host is not x86-64";
    return false;
#else
#if defined(__SANITIZE_ADDRESS__)
    *reason = "AddressSanitizer build";
    return false;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
    *reason = "AddressSanitizer build";
    return false;
#endif
#endif
#if defined(HIPSTR_UBSAN)
    *reason = "UndefinedBehaviorSanitizer build";
    return false;
#endif
    *reason = nullptr;
    return true;
#endif
}

int
TraceJit::memProbe(JitFrame *f, uint32_t op_idx)
{
    const TraceOp &op = f->trace->ops[op_idx];
    Memory &mem = f->vm->mem();
    const uint32_t *regs = f->regs;
    Memory::SpanHint &h = f->opHints[op_idx];
    bool ok;
    switch (const int shape = aluShape(op.h); op.h) {
      case TraceH::MovRM:
        ok = mem.probe32Span(h, regs[op.b] + op.imm, PermR);
        break;
      case TraceH::MovMR:
      case TraceH::MovMI:
        ok = mem.probe32Span(h, regs[op.a] + op.imm, PermW);
        break;
      case TraceH::CmpRM:
      case TraceH::TestRM:
        ok = mem.probe32Span(h, regs[op.c] + op.imm2, PermR);
        break;
      case TraceH::CmpMR:
      case TraceH::CmpMI:
      case TraceH::TestMR:
      case TraceH::TestMI:
        ok = mem.probe32Span(h, regs[op.b] + op.imm, PermR);
        break;
      case TraceH::PushR:
      case TraceH::PushI:
        ok = mem.probe32Span(h, regs[op.a] - kWordSize, PermW);
        break;
      case TraceH::PopR:
        ok = mem.probe32Span(h, regs[op.a], PermR);
        break;
      default:
        if (shape == 2) { // ALU RM: read [R(c)+imm2]
            ok = mem.probe32Span(h, regs[op.c] + op.imm2, PermR);
        } else if (shape == 3 || shape == 4) {
            // ALU MR/MI read-modify-write the slot at [R(a)+imm]:
            // permission spans are uniform, so one window verified
            // for both directions admits the whole RMW.
            const Addr slot = regs[op.a] + op.imm;
            ok = mem.probe32Span(h, slot, PermR) &&
                mem.probe32Span(h, slot, PermW);
        } else {
            hipstr_panic("jit memProbe: op %u is not a memory op",
                         static_cast<unsigned>(op.h));
        }
        break;
    }
    if (ok)
        return 1;
    f->exitCode = kJitExitFault;
    f->exitOp = op_idx;
    return 0;
}

int
TraceJit::execOp(JitFrame *f, uint32_t op_idx)
{
    PsrVm &vm = *f->vm;
    const TraceOp &op = f->trace->ops[op_idx];
    ExecStatus st =
        executeInstInline(op.ti->mi, vm.state, vm._mem, &vm._os);
    if (st == ExecStatus::Continue) [[likely]]
        return 1;
    if (st == ExecStatus::Halted) {
        vm.stats.guestInsts += op.ti->guestCum;
        vm.stats.hostInsts += op.instIdx + 1;
        vm.stats.memReads += op.ti->memReadsCum;
        vm.stats.memWrites += op.ti->memWritesCum;
        const TraceSegment &sg = f->trace->segs[op.seg];
        vm.state.pc = sg.guestPc;
        f->stop->reason = VmStop::Halted;
        f->stop->stopPc = sg.guestPc;
        f->exit->kind = TraceExitKind::Stop;
        f->exitCode = kJitExitHelper;
        return 0;
    }
    hipstr_assert(st == ExecStatus::Faulted);
    f->exitCode = kJitExitFault;
    f->exitOp = op_idx;
    return 0;
}

int
TraceJit::segCall(JitFrame *f, uint32_t op_idx)
{
    PsrVm &vm = *f->vm;
    SuperTrace *tr = f->trace;
    const TraceOp &op = tr->ops[op_idx];
    vm.stats.guestInsts += op.guestD;
    vm.stats.hostInsts += op.instIdx + 1;
    vm.stats.memReads += op.readsD;
    vm.stats.memWrites += op.writesD;
    // Linkage faults report the owner block's pc, like the block loop
    // (controlTraceHook is gated off before JIT entry).
    vm.state.pc = tr->segs[op.seg].guestPc;
    if (!vm.emitCallLinkage(op.imm2, *f->stop)) {
        f->exit->kind = TraceExitKind::Stop;
        f->exitCode = kJitExitHelper;
        return 0;
    }
    if (vm._cache.flushes() != tr->flushGen) [[unlikely]] {
        // The eager return-point translation capacity-flushed the
        // cache: abandon the trace and re-enter through the counting
        // dispatcher, exactly like the interpreter's SegCall.
        f->exit->kind = TraceExitKind::DispatchTo;
        f->exit->target = op.imm;
        f->exitCode = kJitExitHelper;
        return 0;
    }
    ++vm.stats.traceFollows;
    vm.state.pc = op.imm;
    if (vm.stats.guestInsts >= f->guestBudget) [[unlikely]] {
        f->stop->reason = VmStop::StepLimit;
        f->stop->stopPc = vm.state.pc;
        f->exit->kind = TraceExitKind::Stop;
        f->exitCode = kJitExitHelper;
        return 0;
    }
    return 1;
}

bool
TraceJit::ensureCompiled(PsrVm &vm, SuperTrace *tr)
{
    if (tr->jit.entry != nullptr &&
        tr->jit.gen == _arena.generation()) [[likely]] {
        return true;
    }
    if (tr->jit.failed || _arenaFailed)
        return false;

    // Safe point by construction: compilation happens only on trace
    // entry from the dispatch loop, never under a live JIT frame, so
    // the whole-arena W^X flip cannot pull code out from under an
    // executing trace.
    if (!_arena.valid()) {
        if (!_arena.init(vm.config().jitArenaBytes)) {
            _arenaFailed = true;
            hipstr_warn("trace JIT disabled: executable arena "
                        "allocation failed");
            return false;
        }
    } else {
        _arena.beginWrite();
    }

    Emitter em;
    if (!compileTrace(*tr, layout(), em)) {
        tr->jit.failed = true;
        _arena.endWrite();
        return false;
    }

    uint8_t *p = _arena.alloc(em.size());
    if (p == nullptr) {
        // Arena full: generational reclaim. Every compiled trace is
        // stranded (stale stamp) and lazily recompiled on its next
        // entry; nothing is executing out of the arena here.
        _arena.reset();
        p = _arena.alloc(em.size());
        if (p == nullptr) {
            tr->jit.failed = true; // larger than the whole arena
            _arena.endWrite();
            return false;
        }
    }
    std::memcpy(p, em.code.data(), em.size());
    _arena.endWrite();

    tr->jit.entry = p;
    tr->jit.gen = _arena.generation();
    ++stats.compiledTraces;
    stats.codeBytes += em.size();
    return true;
}

bool
TraceJit::run(PsrVm &vm, SuperTrace *tr, uint64_t guest_budget,
              VmRunResult &stop, TraceExit &tx)
{
    if (!ensureCompiled(vm, tr))
        return false;

    JitFrame f;
    f.stats = &vm.stats;
    f.memBase = vm._mem.jitBase();
    f.regs = vm.state.regs.data();
    f.guestBudget = guest_budget;
    f.vm = &vm;
    f.trace = tr;
    f.stop = &stop;
    f.exit = &tx;

    // Hand the compiled body its persistent per-op hint table. Slots
    // survive across entries (hint state is semantically invisible);
    // any region change bumps the layout epoch and empties them.
    const uint64_t epoch = vm._mem.layoutEpoch();
    if (tr->jit.hintEpoch != epoch ||
        tr->jit.hints.size() != tr->ops.size()) {
        tr->jit.hints.assign(tr->ops.size(), Memory::SpanHint{});
        tr->jit.hintEpoch = epoch;
    }
    f.opHints = tr->jit.hints.data();

    ++stats.executions;
    reinterpret_cast<JitEntry>(const_cast<void *>(tr->jit.entry))(&f);

    switch (f.exitCode) {
      case kJitExitHelper:
        // A helper (Exec stop, SegCall stop/abandon) already filled
        // stop and tx.
        return true;
      case kJitExitSide:
        ++vm._traces.stats.sideExits;
        ++stats.sideExits;
        resumeOwner(vm, *tr, tr->ops[f.exitOp], tx);
        return true;
      case kJitExitEnd:
        resumeOwner(vm, *tr, tr->ops[f.exitOp], tx);
        return true;
      case kJitExitFault:
        foldFault(vm, *tr, tr->ops[f.exitOp], stop, tx);
        return true;
      case kJitExitBudget: {
        // Counters were folded inline before the budget test; the
        // stop pc is the segment edge's target, like the interpreter.
        const TraceOp &op = tr->ops[f.exitOp];
        vm.state.pc = op.imm;
        stop.reason = VmStop::StepLimit;
        stop.stopPc = op.imm;
        tx.kind = TraceExitKind::Stop;
        return true;
      }
      default:
        hipstr_panic("trace JIT: bad exit code %u", f.exitCode);
    }
}

} // namespace hipstr::jit
