/**
 * @file
 * TraceOp -> x86-64 lowering for the trace JIT.
 *
 * compileTrace() turns one SuperblockTrace op stream into a
 * self-contained host function `void entry(JitFrame *)` following the
 * pinned-register convention described in engine.hh: r12 = &VmStats,
 * r13 = JitFrame, r14 = guest-memory base, r15 = &state.regs[0]; a
 * whole-trace register allocator maps the most-used guest registers
 * onto rbp/rsi/rdi/r8-r11 (rbx is pinned to the trace's span-hint
 * table), and every exit path (side exit, fault, budget stop, helper
 * unwind) flushes them back to their architectural MachineState
 * slots, which double as the spill homes.
 *
 * The emitted code preserves the interpreter's semantics exactly:
 * deterministic counters fold only at segment boundaries with the
 * same translate-time deltas, guest flags are materialized into
 * state.flags after every Cmp/Test via SETcc, and every memory
 * access is guarded by the same span-hint window check the
 * interpreter performs — but against a *per-op* hint slot that
 * persists across entries (see engine.hh), so a steady-state op
 * almost never leaves the two-compare fast path. Misses route to a
 * C++ probe that refills the slot or records the fault, then the op
 * retries inline.
 */

#ifndef HIPSTR_VM_JIT_COMPILER_HH
#define HIPSTR_VM_JIT_COMPILER_HH

#include <cstdint>

#include "vm/jit/emitter.hh"

namespace hipstr
{

struct SuperTrace;

namespace jit
{

/**
 * JitFrame::exitCode values — the contract between compiled code and
 * the engine's exit dispatch. kJitExitHelper means a C++ helper
 * already filled the TraceExit/VmRunResult; the others name which
 * epilogue path fired and leave exitOp pointing at the op.
 */
enum : uint32_t
{
    kJitExitHelper = 0, ///< helper filled stop/exit before unwinding
    kJitExitSide = 1,   ///< guard fired: side exit to the owner block
    kJitExitEnd = 2,    ///< TraceEnd: resume the owner at the boundary
    kJitExitFault = 3,  ///< memory fault recorded by the miss probe
    kJitExitBudget = 4, ///< guest budget reached at a segment edge
};

/**
 * Everything the compiler needs to know about the runtime layout,
 * resolved once by the engine via offsetof (the compiler itself
 * never includes the VM headers).
 */
struct CompileLayout
{
    /** JitFrame member offsets. @{ */
    int32_t frameStats = 0;
    int32_t frameMemBase = 0;
    int32_t frameRegs = 0;
    int32_t frameBudget = 0;
    int32_t frameExitCode = 0;
    int32_t frameExitOp = 0;
    int32_t frameOpHints = 0; ///< SpanHint* — one 8-byte slot per op
    /** @} */
    /** &state.flags - &state.regs[0] (flags bytes: zf sf cf of). */
    int32_t flagsOffFromRegs = 0;
    /** VmStats member offsets. @{ */
    int32_t statsGuestInsts = 0;
    int32_t statsHostInsts = 0;
    int32_t statsMemReads = 0;
    int32_t statsMemWrites = 0;
    int32_t statsTraceFollows = 0;
    /** @} */
    /** Out-of-line helpers (extern "C" in engine.cc). @{ */
    const void *memProbeHelper = nullptr;
    const void *execHelper = nullptr;
    const void *segCallHelper = nullptr;
    /** @} */
};

/**
 * Compile @p tr into @p em. Returns false when the trace uses a
 * construct the JIT cannot lower (the trace then stays interpreted);
 * on success em.code holds a complete position-independent function.
 */
bool compileTrace(const SuperTrace &tr, const CompileLayout &lay,
                  Emitter &em);

} // namespace jit
} // namespace hipstr

#endif // HIPSTR_VM_JIT_COMPILER_HH
