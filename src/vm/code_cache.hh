/**
 * @file
 * Code cache for one PSR virtual machine: owns a region of guest
 * memory, places translated units (with O1 loop-head alignment), and
 * flushes everything when capacity is exhausted — the classic DBT
 * policy whose re-translation cost Figure 13 measures against cache
 * size.
 */

#ifndef HIPSTR_VM_CODE_CACHE_HH
#define HIPSTR_VM_CODE_CACHE_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/translator.hh"
#include "isa/memory.hh"

namespace hipstr
{

class CodeCache
{
  public:
    /**
     * @param mem       guest memory (the cache region is mapped here)
     * @param isa       which VM this cache belongs to
     * @param capacity  bytes available for translated code
     * @param align_loop_heads O1 machine-block-placement switch
     */
    CodeCache(Memory &mem, IsaKind isa, uint32_t capacity,
              bool align_loop_heads);

    /**
     * Install @p block: assigns a cache address, copies its bytes
     * into guest memory, and indexes it by source address.
     * @returns the placed block (owned by the cache), so callers need
     *          no follow-up lookup() on the dispatch path;
     *          nullptr if capacity is exhausted even after a flush
     *          (the unit is larger than the whole cache).
     */
    TranslatedBlock *insert(std::unique_ptr<TranslatedBlock> block);

    /** Translation for source address @p src, or nullptr. */
    TranslatedBlock *lookup(Addr src);

    /** Drop every translation (capacity flush or re-randomization). */
    void flush();

    /** True if @p addr falls inside this cache's memory region. */
    bool contains(Addr addr) const;

    /** All resident blocks (JIT-ROP analysis scans these). @{ */
    const std::unordered_map<Addr, std::unique_ptr<TranslatedBlock>> &
    blocks() const
    {
        return _blocks;
    }
    /** @} */

    uint32_t capacity() const { return _capacity; }
    uint32_t used() const { return _cursor - _base; }
    uint64_t flushes() const { return _flushes; }
    uint64_t insertions() const { return _insertions; }
    Addr base() const { return _base; }

  private:
    Memory &_mem;
    IsaKind _isa;
    Addr _base;
    uint32_t _capacity;
    bool _alignLoopHeads;
    Addr _cursor;
    std::unordered_map<Addr, std::unique_ptr<TranslatedBlock>> _blocks;
    uint64_t _flushes = 0;
    uint64_t _insertions = 0;
};

} // namespace hipstr

#endif // HIPSTR_VM_CODE_CACHE_HH
