/**
 * @file
 * Code cache for one PSR virtual machine: owns a region of guest
 * memory, places translated units (with O1 loop-head alignment), and
 * flushes everything when capacity is exhausted — the classic DBT
 * policy whose re-translation cost Figure 13 measures against cache
 * size.
 *
 * The source-address index is a power-of-two open-addressed table
 * (linear probing, no tombstones: the only removal is a whole-cache
 * flush), so the VM's cold dispatch pays one multiplicative hash and
 * a short probe run instead of an unordered_map traversal. Blocks are
 * owned by a side vector, which is also what JIT-ROP analysis scans.
 */

#ifndef HIPSTR_VM_CODE_CACHE_HH
#define HIPSTR_VM_CODE_CACHE_HH

#include <memory>
#include <vector>

#include "core/translator.hh"
#include "isa/memory.hh"

namespace hipstr
{

class CodeCache
{
  public:
    /**
     * @param mem       guest memory (the cache region is mapped here)
     * @param isa       which VM this cache belongs to
     * @param capacity  bytes available for translated code
     * @param align_loop_heads O1 machine-block-placement switch
     */
    CodeCache(Memory &mem, IsaKind isa, uint32_t capacity,
              bool align_loop_heads);

    /**
     * Install @p block: assigns a cache address, copies its bytes
     * into guest memory, and indexes it by source address.
     * @returns the placed block (owned by the cache), so callers need
     *          no follow-up lookup() on the dispatch path;
     *          nullptr if capacity is exhausted even after a flush
     *          (the unit is larger than the whole cache).
     */
    TranslatedBlock *insert(std::unique_ptr<TranslatedBlock> block);

    /** Translation for source address @p src, or nullptr. */
    TranslatedBlock *lookup(Addr src)
    {
        size_t i = slotFor(src);
        for (;;) {
            const Slot &s = _index[i];
            if (s.block == nullptr)
                return nullptr;
            if (s.src == src)
                return s.block;
            i = (i + 1) & _mask;
        }
    }

    /** Drop every translation (capacity flush or re-randomization). */
    void flush();

    /** True if @p addr falls inside this cache's memory region. */
    bool contains(Addr addr) const
    {
        return addr >= _base && addr < _base + _capacity;
    }

    /** All resident blocks (JIT-ROP analysis scans these). */
    const std::vector<std::unique_ptr<TranslatedBlock>> &
    blocks() const
    {
        return _owned;
    }

    uint32_t capacity() const { return _capacity; }
    uint32_t used() const { return _cursor - _base; }
    uint64_t flushes() const { return _flushes; }
    uint64_t insertions() const { return _insertions; }
    Addr base() const { return _base; }

  private:
    /** One open-addressed index slot; block == nullptr marks empty. */
    struct Slot
    {
        Addr src = 0;
        TranslatedBlock *block = nullptr;
    };

    size_t slotFor(Addr src) const
    {
        // Fibonacci-style multiplicative hash: source addresses are
        // dense and word-aligned, the high product bits spread them.
        uint32_t h = src * 2654435761u;
        return (h >> 9) & _mask;
    }

    /** Insert into the index, growing it past 2/3 load. */
    void indexInsert(Addr src, TranslatedBlock *block);

    Memory &_mem;
    IsaKind _isa;
    Addr _base;
    uint32_t _capacity;
    bool _alignLoopHeads;
    Addr _cursor;
    std::vector<Slot> _index;
    size_t _mask;
    std::vector<std::unique_ptr<TranslatedBlock>> _owned;
    uint64_t _flushes = 0;
    uint64_t _insertions = 0;
};

} // namespace hipstr

#endif // HIPSTR_VM_CODE_CACHE_HH
