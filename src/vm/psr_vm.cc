#include "psr_vm.hh"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "binary/loader.hh"
#include "isa/interp.hh"
#include "isa/mem_traffic.hh"
#include "sim/core_config.hh"
#include "sim/timing.hh"
#include "support/env.hh"
#include "support/logging.hh"

namespace hipstr
{

namespace
{

/** HIPSTR_TRACE=0/off disables superblock traces; default on. */
bool
traceEnvEnabled()
{
    return envFlag("HIPSTR_TRACE", true);
}

bool
resolveTraceMode(const PsrConfig &cfg)
{
    switch (cfg.traceMode) {
      case PsrConfig::TraceMode::On: return true;
      case PsrConfig::TraceMode::Off: return false;
      case PsrConfig::TraceMode::FromEnv: break;
    }
    return traceEnvEnabled();
}

/** HIPSTR_JIT=0/off disables the trace JIT; default on. */
bool
jitEnvEnabled()
{
    return envFlag("HIPSTR_JIT", true);
}

/**
 * Resolve the trace-JIT switch: the config/env knob ANDed with host
 * support. When the knob asks for the JIT but the host or build
 * cannot run it (non-x86-64, sanitizers), log the reason once so a
 * silent 0 in the jit.* counters is explicable.
 */
bool
resolveJitMode(const PsrConfig &cfg)
{
    bool wanted;
    switch (cfg.jitMode) {
      case PsrConfig::JitMode::On: wanted = true; break;
      case PsrConfig::JitMode::Off: wanted = false; break;
      default: wanted = jitEnvEnabled(); break;
    }
    if (!wanted)
        return false;
    const char *reason = nullptr;
    if (!jit::TraceJit::hostSupported(&reason)) {
        static bool warned = false;
        if (!warned) {
            warned = true;
            hipstr_inform("trace JIT auto-disabled: %s", reason);
        }
        return false;
    }
    return true;
}

} // namespace

const char *
vmStopName(VmStop s)
{
    switch (s) {
      case VmStop::Exited: return "exited";
      case VmStop::Halted: return "halted";
      case VmStop::Fault: return "fault";
      case VmStop::BadInst: return "bad-instruction";
      case VmStop::SfiViolation: return "sfi-violation";
      case VmStop::StepLimit: return "step-limit";
      case VmStop::MigrationRequested: return "migration-requested";
    }
    return "?";
}

PsrVm::PsrVm(const FatBinary &bin, IsaKind isa, Memory &mem,
             GuestOs &os, const PsrConfig &cfg)
    : state(isa), _bin(bin), _isa(isa), _mem(mem), _os(os),
      _cfg(cfg), _randomizer(bin, isa, cfg),
      _translator(bin, isa, _randomizer, mem),
      _cache(mem, isa, cfg.codeCacheBytes, cfg.blockPlacement()),
      _rat(cfg.ratEntries)
{
    // Modeled translation cost per guest instruction on this core:
    // cycles / (GHz * 1000) = microseconds.
    _translateUsPerInst = TimingParams{}.translateCyclesPerGuestInst /
        (coreConfig(isa).freqGhz * 1000.0);
    // Trace formation needs chained exits, so it rides the same O1
    // switch as chaining itself.
    _traceOn = resolveTraceMode(cfg) && cfg.superblocks();
    // The JIT compiles formed traces, so it rides the trace switch.
    _jitOn = _traceOn && resolveJitMode(cfg);
}

void
PsrVm::publishTraceTelemetry(telemetry::MetricRegistry &reg) const
{
    reg.counter("trace.formed").set(_traces.stats.formed);
    reg.counter("trace.follows").set(stats.traceFollows);
    reg.counter("trace.invalidated").set(_traces.stats.invalidated);
    reg.counter("trace.sideExits").set(_traces.stats.sideExits);
}

void
PsrVm::publishJitTelemetry(telemetry::MetricRegistry &reg) const
{
    reg.counter("jit.compiledTraces").set(_jit.stats.compiledTraces);
    reg.counter("jit.codeBytes").set(_jit.stats.codeBytes);
    reg.counter("jit.executions").set(_jit.stats.executions);
    reg.counter("jit.sideExits").set(_jit.stats.sideExits);
    reg.counter("jit.bailouts").set(_jit.stats.bailouts);
    reg.counter("jit.invalidated").set(_jit.stats.invalidated);
}

double
PsrVm::traceTs() const
{
    return double(stats.guestInsts) /
        telemetry::cost::kGuestInstsPerMicro;
}

void
PsrVm::reset()
{
    initMachineState(state, _bin, _isa);
}

void
PsrVm::reRandomize()
{
    _randomizer.reRandomize();
    _cache.flush();
    _rat.flush();
    invalidateTraces();
    _vetted.clear();
    ++stats.cacheFlushes;
    if (trace && trace->enabled(telemetry::TraceCategory::Vm)) {
        trace->record(
            telemetry::traceInstant(telemetry::TraceCategory::Vm,
                                    "vm.rerandomize", traceTs(), 0,
                                    static_cast<uint32_t>(_isa))
                .arg("generation", _randomizer.generation()));
    }
}

void
PsrVm::flushTranslations()
{
    _cache.flush();
    _rat.flush();
    invalidateTraces();
    _vetted.clear();
    ++stats.cacheFlushes;
    if (trace && trace->enabled(telemetry::TraceCategory::Vm)) {
        trace->record(
            telemetry::traceInstant(telemetry::TraceCategory::Vm,
                                    "vm.fault_flush", traceTs(), 0,
                                    static_cast<uint32_t>(_isa)));
    }
}

void
PsrVm::saveState(ByteWriter &w) const
{
    // Architectural state.
    w.u8(uint8_t(state.isa));
    for (uint32_t r : state.regs)
        w.u32(r);
    w.boolean(state.flags.zf);
    w.boolean(state.flags.sf);
    w.boolean(state.flags.cf);
    w.boolean(state.flags.of);
    w.u32(state.pc);

    // Counters. traceFollows/chainFollows split legitimately varies
    // with HIPSTR_TRACE, but both are saved verbatim: a checkpoint is
    // restored under the same knob setting it was taken under.
    w.u64(stats.guestInsts);
    w.u64(stats.hostInsts);
    w.u64(stats.memReads);
    w.u64(stats.memWrites);
    w.u64(stats.dispatches);
    w.u64(stats.chainFollows);
    w.u64(stats.traceFollows);
    w.u64(stats.translations);
    w.u64(stats.translatedGuestInsts);
    w.u64(stats.ratHits);
    w.u64(stats.ratMisses);
    w.u64(stats.indirectTransfers);
    w.u64(stats.codeCacheMisses);
    w.u64(stats.securityEvents);
    w.u64(stats.migrationsRequested);
    w.u64(stats.cacheFlushes);
    w.u64(stats.syscalls);
    w.u64(stats.diversificationFlips);

    w.u64(translatePhase.invocations);
    w.u64(translatePhase.workUnits);
    w.f64(translatePhase.modeledMicros);

    w.boolean(_decodeFaultArmed);
    _randomizer.saveState(w);
    _rat.saveState(w);

    // Vetted addresses: everything currently cache-resident, plus
    // any not-yet-drained vetted addresses if this VM is itself a
    // restored one. Sorted for a byte-deterministic image.
    std::vector<Addr> vetted(_vetted.begin(), _vetted.end());
    for (const auto &blk : _cache.blocks())
        vetted.push_back(blk->srcStart);
    std::sort(vetted.begin(), vetted.end());
    vetted.erase(std::unique(vetted.begin(), vetted.end()),
                 vetted.end());
    w.u32(uint32_t(vetted.size()));
    for (Addr a : vetted)
        w.u32(a);
}

void
PsrVm::loadState(ByteReader &r)
{
    // Drop every derived structure first: translations, traces and
    // memoized pointers rebuild cold, exactly as after a flush —
    // but without counter side effects; the counters come from the
    // snapshot below.
    _cache.flush();
    _rat.flush();
    invalidateTraces();

    IsaKind isa = IsaKind(r.u8());
    if (isa != _isa)
        throw SerializeError(SerializeErrc::Corrupt,
                             "VM checkpoint ISA mismatch");
    state.isa = isa;
    for (uint32_t &reg : state.regs)
        reg = r.u32();
    state.flags.zf = r.boolean();
    state.flags.sf = r.boolean();
    state.flags.cf = r.boolean();
    state.flags.of = r.boolean();
    state.pc = r.u32();

    stats.guestInsts = r.u64();
    stats.hostInsts = r.u64();
    stats.memReads = r.u64();
    stats.memWrites = r.u64();
    stats.dispatches = r.u64();
    stats.chainFollows = r.u64();
    stats.traceFollows = r.u64();
    stats.translations = r.u64();
    stats.translatedGuestInsts = r.u64();
    stats.ratHits = r.u64();
    stats.ratMisses = r.u64();
    stats.indirectTransfers = r.u64();
    stats.codeCacheMisses = r.u64();
    stats.securityEvents = r.u64();
    stats.migrationsRequested = r.u64();
    stats.cacheFlushes = r.u64();
    stats.syscalls = r.u64();
    stats.diversificationFlips = r.u64();

    translatePhase.invocations = r.u64();
    translatePhase.workUnits = r.u64();
    translatePhase.modeledMicros = r.f64();

    _decodeFaultArmed = r.boolean();
    _randomizer.loadState(r);
    _rat.loadState(r);

    _vetted.clear();
    uint32_t vetted = r.u32();
    _vetted.reserve(vetted);
    for (uint32_t i = 0; i < vetted; ++i)
        _vetted.insert(r.u32());
}

TranslatedBlock *
PsrVm::fetchBlock(Addr src, VmRunResult &stop)
{
    TranslatedBlock *blk = _cache.lookup(src);
    if (blk != nullptr)
        return blk;

    TranslateError err;
    auto unit = _translator.translate(src, err);
    if (!unit) {
        stop.reason = VmStop::BadInst;
        stop.stopPc = src;
        return nullptr;
    }
    stats.translations++;
    stats.translatedGuestInsts += unit->guestInstCount;
    translatePhase.add(unit->guestInstCount,
                       double(unit->guestInstCount) *
                           _translateUsPerInst);
    if (trace && trace->enabled(telemetry::TraceCategory::Vm)) {
        trace->record(
            telemetry::traceInstant(telemetry::TraceCategory::Vm,
                                    "vm.translate", traceTs(), 0,
                                    static_cast<uint32_t>(_isa))
                .arg("guest_pc", src)
                .arg("guest_insts", unit->guestInstCount));
    }

    uint64_t flushes_before = _cache.flushes();
    TranslatedBlock *placed = _cache.insert(std::move(unit));
    if (placed == nullptr) {
        stop.reason = VmStop::BadInst;
        stop.stopPc = src;
        return nullptr;
    }
    if (_cache.flushes() != flushes_before) {
        // A capacity flush invalidates every RAT entry, chain, and
        // trace. Retired traces are only *freed* at safe points: this
        // can run mid-trace (call-linkage translation), and the
        // executing trace checks the flush generation before touching
        // another trace-held pointer.
        _rat.flush();
        invalidateTraces();
        // The uninterrupted run's cache is empty after this flush, so
        // restore-vetting (which models "would have hit the cache")
        // must not outlive it either.
        _vetted.clear();
        ++stats.cacheFlushes;
    }
    return placed;
}

void
PsrVm::traceData(const MachInst &mi)
{
    forEachMemAccess(mi, state, [&](Addr addr, bool write) {
        if (write)
            ++stats.memWrites;
        else
            ++stats.memReads;
        if (dataTraceHook)
            dataTraceHook(addr, write);
    });
}

VmRunResult
PsrVm::run(uint64_t max_guest_insts)
{
    if (_decodeFaultArmed) {
        // Injected decode fault (src/fault): the corrupted entry trips
        // the decoder before a single instruction retires.
        _decodeFaultArmed = false;
        VmRunResult res;
        res.reason = VmStop::BadInst;
        res.stopPc = state.pc;
        if (trace && trace->enabled(telemetry::TraceCategory::Vm)) {
            trace->record(telemetry::traceInstant(
                telemetry::TraceCategory::Vm, "vm.injected_decode_fault",
                traceTs(), 0, static_cast<uint32_t>(_isa)));
        }
        return res;
    }
    // Safe point: no trace is executing, so traces retired by an
    // earlier mid-trace flush can be freed.
    _traces.collectRetired();

    const bool spans =
        trace && trace->enabled(telemetry::TraceCategory::Vm);
    const double ts0 = spans ? traceTs() : 0;
    const uint64_t g0 = stats.guestInsts;

    VmRunResult res = (fetchTraceHook || dataTraceHook)
        ? runLoop<true>(max_guest_insts)
        : runLoop<false>(max_guest_insts);

    if (spans) {
        trace->record(
            telemetry::traceSpan(telemetry::TraceCategory::Vm,
                                 "vm.run", ts0, traceTs() - ts0, 0,
                                 static_cast<uint32_t>(_isa))
                .arg("ran", stats.guestInsts - g0)
                .arg("reason", static_cast<uint64_t>(res.reason)));
    }
    return res;
}

// Dispatch to a (possibly untranslated) guest target after an
// exit; returns nullptr when the run must stop.
TranslatedBlock *
PsrVm::dispatchTo(Addr target, VmRunResult &stop)
{
    state.pc = target;
    ++stats.dispatches; // every dispatcher entry costs a lookup
    TranslatedBlock *next = _cache.lookup(target);
    if (next != nullptr)
        return next;
    next = fetchBlock(target, stop);
    return next;
}

// Post-SFI tail of an indirect transfer: the code-cache-miss
// security policy of Section 3.5. Callers have already counted
// the transfer and run the SFI check.
TranslatedBlock *
PsrVm::indirectResolve(Addr target, VmRunResult &stop)
{
    state.pc = target;
    ++stats.dispatches;
    TranslatedBlock *next = _cache.lookup(target);
    if (next != nullptr)
        return next;
    if (!_vetted.empty() && consumeVetted(target))
        return fetchBlock(target, stop);
    // Indirect control transfer missing the code cache: the
    // PSR virtual machine suspects a security breach.
    ++stats.codeCacheMisses;
    ++stats.securityEvents;
    if (trace && trace->enabled(telemetry::TraceCategory::Vm)) {
        trace->record(telemetry::traceInstant(
                          telemetry::TraceCategory::Vm,
                          "vm.security_event", traceTs(), 0,
                          static_cast<uint32_t>(_isa))
                          .arg("target", target));
    }
    if (securityEventHook && securityEventHook(target)) {
        ++stats.migrationsRequested;
        stop.reason = VmStop::MigrationRequested;
        stop.stopPc = target;
        stop.migrationTarget = target;
        return nullptr;
    }
    next = fetchBlock(target, stop);
    return next;
}

// Handle an indirect transfer to @p target: SFI check, then the
// code-cache-miss security policy.
TranslatedBlock *
PsrVm::indirectDispatch(Addr target, VmRunResult &stop)
{
    ++stats.indirectTransfers;
    if (_cache.contains(target)) {
        stop.reason = VmStop::SfiViolation;
        stop.stopPc = target;
        return nullptr;
    }
    return indirectResolve(target, stop);
}

// Push/record a source return address for a call exit and make
// sure the RAT can translate it on return.
bool
PsrVm::emitCallLinkage(Addr source_ra, VmRunResult &stop)
{
    if (_isa == IsaKind::Cisc) {
        uint32_t sp = state.sp() - kWordSize;
        if (!_mem.tryWrite32(sp, source_ra)) {
            stop.reason = VmStop::Fault;
            stop.stopPc = state.pc;
            return false;
        }
        state.setSp(sp);
        ++stats.memWrites;
    } else {
        state.setReg(isaDescriptor(_isa).lrReg, source_ra);
    }
    // Eagerly translate the return point (the call macro-op
    // installs the RAT mapping, Section 5.1) and memoize the
    // resolved block so the matching return needs no hash lookup.
    VmRunResult scratch_stop;
    TranslatedBlock *ret_block = fetchBlock(source_ra, scratch_stop);
    if (ret_block != nullptr)
        _rat.insert(source_ra, source_ra, ret_block);
    return true;
}

template <bool Traced>
VmRunResult
PsrVm::runLoop(uint64_t max_guest_insts)
{
    VmRunResult stop;
    const uint64_t guest_budget = stats.guestInsts + max_guest_insts;

    TranslatedBlock *blk = fetchBlock(state.pc, stop);
    if (blk == nullptr)
        return stop;
    ++stats.dispatches;

    auto dispatch = [&](Addr target) -> TranslatedBlock * {
        return dispatchTo(target, stop);
    };
    auto indirect_dispatch = [&](Addr target) -> TranslatedBlock * {
        return indirectDispatch(target, stop);
    };
    auto emit_call_linkage = [&](Addr source_ra) -> bool {
        return emitCallLinkage(source_ra, stop);
    };
    auto indirect_resolve = [&](Addr target) -> TranslatedBlock * {
        return indirectResolve(target, stop);
    };

    // Block-loop entry state for trace side exits: resume_i is the
    // instruction index the next block iteration starts at (credited
    // stays 0 — traces never fold mid-segment), and from_resume
    // suppresses trace re-entry for that one iteration so the resumed
    // instruction is re-executed by the baseline machinery.
    size_t resume_i = 0;
    [[maybe_unused]] bool from_resume = false;

    while (true) {
        if constexpr (!Traced) {
            // Superblock traces live only on the untraced loop: the
            // fetch/data-hooked loop models per-instruction cache
            // behaviour and must keep the baseline dispatch shape.
            const bool entered_from_resume = from_resume;
            from_resume = false;
            if (_traceOn && !entered_from_resume) {
                if (SuperTrace *t = blk->strace; t != nullptr) {
                    // Compiled execution first; the threaded
                    // interpreter is the per-entry fallback when a
                    // gate is live (control-trace hook, journaling)
                    // or the trace cannot be compiled. Both paths
                    // produce identical TraceExits and identical
                    // deterministic counters.
                    TraceExit tx;
                    const bool jitted = _jitOn && !controlTraceHook &&
                        !_mem.journaling() &&
                        _jit.run(*this, t, guest_budget, stop, tx);
                    if (!jitted) {
                        if (_jitOn)
                            ++_jit.stats.bailouts;
                        tx = runTrace(t, guest_budget, stop);
                    }
                    if (tx.kind == TraceExitKind::Stop)
                        return stop;
                    if (tx.kind == TraceExitKind::DispatchTo) {
                        // Mid-trace capacity flush: re-enter through
                        // the ordinary counting dispatcher, exactly
                        // as the baseline's flush-dirtied chain does.
                        blk = dispatch(tx.target);
                        if (blk == nullptr)
                            return stop;
                        if (stats.guestInsts >= guest_budget) {
                            stop.reason = VmStop::StepLimit;
                            stop.stopPc = state.pc;
                            return stop;
                        }
                        continue;
                    }
                    blk = tx.blk;
                    resume_i = tx.instIdx;
                    from_resume = true;
                } else if (!blk->traceDead &&
                           ++blk->hotCount >= _cfg.traceHotThreshold) {
                    _traces.collectRetired();
                    if (_traces.tryForm(blk, _cfg,
                                        isaDescriptor(_isa).spReg,
                                        _cfg.isomeronMode,
                                        _cache.flushes()) == nullptr) {
                        if (++blk->traceFails >= 4)
                            blk->traceDead = true;
                        else
                            blk->hotCount = 0;
                    }
                    // A formed trace starts on the *next* entry; this
                    // iteration still runs the baseline block loop.
                }
            }
        }
        // Execute the block's translated instructions. The loop is a
        // single switch on the translate-time ExecClass; guest-inst
        // and data-traffic counters are folded in from the per-inst
        // running totals only at loop exits (credit_through), so the
        // straight-line path does no per-instruction accounting.
        const TInst *const insts = blk->insts.data();
        const size_t n = blk->insts.size();
        const Addr block_pc = state.pc; // VM owns the pc
        size_t i = resume_i;
        resume_i = 0;
        size_t credited = 0; ///< insts already folded into stats
        int taken_exit = -1;
        Addr ret_target = 0;
        bool is_ret = false;
        bool redirected = false;

        // Fold insts [credited, idx] into stats (cums are inclusive).
        // Called before anything that can observe the counters: exits,
        // syscalls, faults, and trace events (traceTs reads them).
        auto credit_through = [&](size_t idx) {
            const TInst &t = insts[idx];
            uint32_t g0 = 0, r0 = 0, w0 = 0;
            if (credited > 0) {
                const TInst &p = insts[credited - 1];
                g0 = p.guestCum;
                r0 = p.memReadsCum;
                w0 = p.memWritesCum;
            }
            stats.guestInsts += t.guestCum - g0;
            stats.hostInsts += (idx + 1) - credited;
            if constexpr (!Traced) {
                // Translate-time counts: no operand scanning, no
                // address formation on the untraced fast path. The
                // traced loop counts per access in traceData().
                stats.memReads += t.memReadsCum - r0;
                stats.memWrites += t.memWritesCum - w0;
            }
            credited = idx + 1;
        };

        while (i < n) {
            const TInst &ti = insts[i];
            if constexpr (Traced) {
                if (fetchTraceHook)
                    fetchTraceHook(blk->cacheAddr + ti.byteOff);
            }

            switch (ti.klass) {
              case ExecClass::Plain:
              case ExecClass::GuestStartPlain: {
                if constexpr (Traced)
                    traceData(ti.mi);
                ExecStatus st =
                    executeInstInline(ti.mi, state, _mem, &_os);
                state.pc = block_pc;
                if (st != ExecStatus::Continue) [[unlikely]] {
                    // The faulting instruction is still accounted,
                    // like the increment-at-top loop did.
                    credit_through(i);
                    if (st == ExecStatus::Faulted) {
                        stop.reason = VmStop::Fault;
                        stop.stopPc = blk->srcStart;
                        return stop;
                    }
                    if (st == ExecStatus::Halted) {
                        stop.reason = VmStop::Halted;
                        stop.stopPc = blk->srcStart;
                        return stop;
                    }
                }
                ++i;
                continue;
              }

              case ExecClass::Jcc:
                if (!condHolds(ti.mi.cond, state.flags)) {
                    ++i;
                    continue;
                }
                credit_through(i);
                taken_exit = ti.exitIdx;
                break;

              case ExecClass::VmExit:
                credit_through(i);
                taken_exit = ti.exitIdx >= 0
                    ? ti.exitIdx
                    : static_cast<int>(ti.mi.src1.disp);
                break;

              case ExecClass::Ret: {
                // Pop the source return address; translate through
                // the RAT below.
                credit_through(i);
                uint32_t sp = state.sp();
                if (!_mem.tryRead32(sp, ret_target)) {
                    stop.reason = VmStop::Fault;
                    stop.stopPc = blk->srcStart;
                    return stop;
                }
                ++stats.memReads;
                if constexpr (Traced) {
                    if (dataTraceHook)
                        dataTraceHook(sp, false);
                }
                state.setSp(sp + kWordSize);
                is_ret = true;
                break;
              }

              case ExecClass::Syscall: {
                credit_through(i);
                ++stats.syscalls;
                bool keep;
                try {
                    keep = _os.handleSyscall(state, _mem);
                } catch (const Memory::Fault &) {
                    stop.reason = VmStop::Fault;
                    stop.stopPc = blk->srcStart;
                    return stop;
                }
                if (!keep) {
                    stop.reason = VmStop::Exited;
                    stop.stopPc = blk->srcStart;
                    return stop;
                }
                if (_os.takeRedirect()) {
                    // Non-local transfer (longjmp): the OS rewrote
                    // pc to a source address. Dispatch it exactly
                    // like any other indirect control transfer —
                    // including the SFI check and the security
                    // policy (the paper forces migration on a
                    // longjmp whose setjmp ran on the other ISA).
                    if (controlTraceHook)
                        controlTraceHook(state.pc, 'J');
                    blk = indirect_dispatch(state.pc);
                    if (blk == nullptr)
                        return stop;
                    redirected = true;
                    break;
                }
                ++i;
                continue;
              }
            }
            break; // an exit class left the switch: block is done
        }

        if (redirected) {
            if (stats.guestInsts >= guest_budget) {
                stop.reason = VmStop::StepLimit;
                stop.stopPc = state.pc;
                return stop;
            }
            continue;
        }

        // ---- Return handling: RAT translation of the source RA. ----
        if (is_ret) {
            if (controlTraceHook)
                controlTraceHook(ret_target, 'R');
            if (_cfg.isomeronMode)
                ++stats.diversificationFlips;
            ++stats.indirectTransfers;
            if (_cache.contains(ret_target)) {
                stop.reason = VmStop::SfiViolation;
                stop.stopPc = ret_target;
                return stop;
            }
            Addr translated;
            TranslatedBlock *memo = nullptr;
            if (_rat.lookup(ret_target, translated, memo)) {
                ++stats.ratHits;
                state.pc = ret_target;
                if (memo != nullptr) {
                    // Memoized translation: one RAT probe, zero hash
                    // lookups. Valid because every code-cache flush
                    // also flushes the RAT.
                    blk = memo;
                } else {
                    blk = _cache.lookup(ret_target);
                    if (blk == nullptr) {
                        // Stale RAT entry (should not happen: flushes
                        // clear the RAT) — treat as a miss.
                        blk = fetchBlock(ret_target, stop);
                        if (blk == nullptr)
                            return stop;
                    }
                }
            } else {
                ++stats.ratMisses;
                // Trap into the translator.
                state.pc = ret_target;
                TranslatedBlock *next = _cache.lookup(ret_target);
                if (next == nullptr && !_vetted.empty() &&
                    consumeVetted(ret_target)) {
                    next = fetchBlock(ret_target, stop);
                    if (next == nullptr)
                        return stop;
                }
                if (next == nullptr) {
                    // Code cache miss on an indirect transfer.
                    ++stats.codeCacheMisses;
                    ++stats.securityEvents;
                    if (securityEventHook &&
                        securityEventHook(ret_target)) {
                        ++stats.migrationsRequested;
                        stop.reason = VmStop::MigrationRequested;
                        stop.stopPc = ret_target;
                        stop.migrationTarget = ret_target;
                        return stop;
                    }
                    next = fetchBlock(ret_target, stop);
                    if (next == nullptr)
                        return stop;
                }
                _rat.insert(ret_target, ret_target, next);
                ++stats.dispatches;
                blk = next;
            }
            if (stats.guestInsts >= guest_budget) {
                stop.reason = VmStop::StepLimit;
                stop.stopPc = state.pc;
                return stop;
            }
            continue;
        }

        hipstr_assert(taken_exit >= 0);
        const size_t exit_idx = static_cast<size_t>(taken_exit);
        const Addr owner_src = blk->srcStart;
        // Translating a target below can flush the code cache and
        // destroy the exit's owning block, so everything needed from
        // the exit is copied into locals up front and every pointer
        // taken from it is discarded when the flush generation moves.
        const uint64_t flushes_at_exit = _cache.flushes();
        BlockExit &exit_slot = blk->exits[exit_idx];
        if constexpr (!Traced) {
            // Edge profile for the superblock trace builder. The
            // traced loop never forms traces, so it skips the count.
            ++exit_slot.hitCount;
        }
        const BlockExit &exit = exit_slot;

        // Re-resolve the owner before writing a chain pointer: the
        // owner may have been destroyed by a capacity flush.
        auto patch_chain = [&](TranslatedBlock *next) {
            if (!_cfg.superblocks() || next == nullptr)
                return;
            TranslatedBlock *owner = _cache.lookup(owner_src);
            if (owner != nullptr && exit_idx < owner->exits.size())
                owner->exits[exit_idx].chained = next;
        };

        // Install an IBTC entry on the owner's live exit (re-resolved
        // like patch_chain): @p target already passed the full
        // indirect-dispatch security policy this transfer.
        auto update_ibtc = [&](Addr target, TranslatedBlock *next) {
            TranslatedBlock *owner = _cache.lookup(owner_src);
            if (owner != nullptr && exit_idx < owner->exits.size())
                owner->exits[exit_idx].ibtc.insert(target, next);
        };

        switch (exit.kind) {
          case BlockExit::Kind::Halt:
            stop.reason = VmStop::Halted;
            stop.stopPc = owner_src;
            return stop;

          case BlockExit::Kind::Branch: {
            const Addr target = exit.target;
            TranslatedBlock *chained = exit.chained;
            if (controlTraceHook)
                controlTraceHook(target, 'B');
            if (chained != nullptr) {
                ++stats.chainFollows;
                state.pc = target;
                blk = chained;
            } else {
                blk = dispatch(target);
                if (blk == nullptr)
                    return stop;
                patch_chain(blk);
            }
            break;
          }

          case BlockExit::Kind::Call: {
            const Addr target = exit.target;
            const Addr return_to = exit.returnTo;
            TranslatedBlock *chained = exit.chained;
            if (controlTraceHook)
                controlTraceHook(target, 'C');
            if (!emit_call_linkage(return_to))
                return stop;
            if (_cache.flushes() != flushes_at_exit) {
                // The eager return-point translation flushed the
                // cache: the chain pointer read above dangles.
                chained = nullptr;
            }
            if (_cfg.isomeronMode) {
                // The diversifier flips a coin and dispatches to the
                // chosen program variant — chaining is impossible.
                ++stats.diversificationFlips;
                blk = dispatch(target);
                if (blk == nullptr)
                    return stop;
                break;
            }
            if (chained != nullptr) {
                ++stats.chainFollows;
                state.pc = target;
                blk = chained;
            } else {
                blk = dispatch(target);
                if (blk == nullptr)
                    return stop;
                patch_chain(blk);
            }
            break;
          }

          case BlockExit::Kind::IndirectCall:
          case BlockExit::Kind::IndirectJump: {
            const bool is_call =
                exit.kind == BlockExit::Kind::IndirectCall;
            const Addr return_to = exit.returnTo;
            // Read the target from its (possibly relocated) home.
            uint32_t target;
            if (exit.targetOperand.isMem()) {
                Addr a = state.reg(exit.targetOperand.base) +
                    static_cast<uint32_t>(exit.targetOperand.disp);
                if (!_mem.tryRead32(a, target)) {
                    stop.reason = VmStop::Fault;
                    stop.stopPc = owner_src;
                    return stop;
                }
                ++stats.memReads;
            } else {
                target = state.reg(exit.targetOperand.reg);
            }
            // Consult the site's inline cache while the exit is
            // still guaranteed live (nothing has translated yet).
            TranslatedBlock *ibtc_hit = exit.ibtc.lookup(target);
            if (controlTraceHook)
                controlTraceHook(target, 'I');
            if (is_call) {
                if (!emit_call_linkage(return_to))
                    return stop;
                if (_cache.flushes() != flushes_at_exit) {
                    // Linkage translation flushed the cache; the
                    // cached block pointer is gone with it.
                    ibtc_hit = nullptr;
                }
            }
            ++stats.indirectTransfers;
            // SFI first, always — a cached target can never point
            // into the cache region, but the check is the security
            // boundary and stays in front unconditionally.
            if (_cache.contains(target)) {
                stop.reason = VmStop::SfiViolation;
                stop.stopPc = target;
                return stop;
            }
            if (ibtc_hit != nullptr) {
                // Inline-cache hit: this (site, target) pair passed
                // the full Section 3.5 policy before, and the block
                // survived (no flush since). Same counter semantics
                // as the lookup-hit dispatch it replaces.
                state.pc = target;
                ++stats.dispatches;
                blk = ibtc_hit;
            } else {
                blk = indirect_resolve(target);
                if (blk == nullptr)
                    return stop;
                update_ibtc(target, blk);
            }
            break;
          }
        }

        if (stats.guestInsts >= guest_budget) {
            stop.reason = VmStop::StepLimit;
            stop.stopPc = state.pc;
            return stop;
        }
    }
}

} // namespace hipstr
