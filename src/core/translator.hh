/**
 * @file
 * The PSR basic-block translator (Figure 2's "Translation Engine" +
 * "Disassembler"), performing the paper's Section 5.1 transformations:
 *
 *  - addressing-mode transformation (registers renamed and, on Cisc,
 *    relocated to stack slots; slot displacements re-colored),
 *  - procedure-call transformation (randomized argument/return
 *    registers, relocated return-address slot, expanded frames),
 *  - legalization with register temporaries when the ISA lacks the
 *    addressing mode a relocation demands,
 *  - branch inlining / superblock formation (O1),
 *
 * and producing translated units that are simultaneously executable
 * (as decoded instructions) and byte-faithful (their encodings are
 * what lives in the code cache and what a JIT-ROP attacker can
 * disclose).
 */

#ifndef HIPSTR_CORE_TRANSLATOR_HH
#define HIPSTR_CORE_TRANSLATOR_HH

#include <memory>
#include <vector>

#include "binary/fatbin.hh"
#include "core/relocation.hh"
#include "isa/instruction.hh"
#include "isa/memory.hh"

namespace hipstr
{

struct TranslatedBlock;
struct SuperTrace;

/**
 * Per-site indirect-branch inline cache (IBTC): a tiny direct map
 * from recently dispatched guest targets to their translated blocks,
 * embedded in the owning exit so it is destroyed together with every
 * pointer it caches when the code cache flushes. The VM consults it
 * only *after* the SFI check and populates it only with targets that
 * completed the full Section 3.5 indirect-dispatch policy, so hot
 * virtual-call sites skip the hash map without changing which
 * transfers raise security events.
 */
struct IndirectTargetCache
{
    static constexpr unsigned kWays = 4;

    Addr targets[kWays] = {};
    TranslatedBlock *blocks[kWays] = {};
    uint8_t nextVictim = 0;

    TranslatedBlock *lookup(Addr target) const
    {
        for (unsigned w = 0; w < kWays; ++w) {
            if (targets[w] == target && blocks[w] != nullptr)
                return blocks[w];
        }
        return nullptr;
    }

    void insert(Addr target, TranslatedBlock *block)
    {
        for (unsigned w = 0; w < kWays; ++w) {
            if (blocks[w] == nullptr || targets[w] == target) {
                targets[w] = target;
                blocks[w] = block;
                return;
            }
        }
        targets[nextVictim] = target;
        blocks[nextVictim] = block;
        nextVictim = static_cast<uint8_t>((nextVictim + 1) % kWays);
    }
};

/** How control leaves a translated unit. */
struct BlockExit
{
    enum class Kind : uint8_t
    {
        Branch,       ///< direct branch to a static guest target
        Call,         ///< direct call (pushes a *source* return addr)
        IndirectJump, ///< target read from @c targetOperand at exit
        IndirectCall, ///< indirect call through @c targetOperand
        Halt          ///< guest halt
    };

    Kind kind = Kind::Branch;
    Addr target = 0;        ///< guest target (Branch/Call)
    Addr returnTo = 0;      ///< guest return address (calls)
    /** Post-transformation location of the target value (Indirect*). */
    Operand targetOperand;
    /** Filled by the VM once the target is translated (chaining). */
    TranslatedBlock *chained = nullptr;
    /** Inline cache for IndirectJump/IndirectCall exits (VM-filled). */
    IndirectTargetCache ibtc;
    /**
     * Times the untraced dispatch loop took this exit — the edge
     * profile the superblock trace builder reads to pick a block's
     * dominant successor. Never exported; dies with the block.
     */
    uint64_t hitCount = 0;
};

/**
 * Dense execution class, assigned at translate time so the VM's inner
 * loop is one switch per instruction instead of an op-compare cascade.
 * GuestStartPlain and Plain execute identically; the split only keeps
 * guest-boundary information available without touching guestStart.
 */
enum class ExecClass : uint8_t
{
    Plain,           ///< straight-line instruction (executeInst)
    GuestStartPlain, ///< Plain that opens a new guest instruction
    Jcc,             ///< conditional branch wired to an exit
    Ret,             ///< return macro-op (RAT-translated)
    Syscall,         ///< OS entry (may redirect or exit)
    VmExit           ///< unit exit stub
};

/** One translated instruction; exitIdx links Jcc/VmExit to an exit. */
struct TInst
{
    MachInst mi;
    int exitIdx = -1;
    /** First translated instruction of a guest instruction (used for
     *  dynamic guest-instruction accounting). */
    bool guestStart = false;
    /** Data-memory accesses of mi, precomputed at translate time so
     *  the VM's untraced fast path never scans operands. @{ */
    uint8_t memReads = 0;
    uint8_t memWrites = 0;
    /** @} */
    /** Byte offset within the unit's encoding (I-fetch modelling). */
    uint16_t byteOff = 0;
    /** Dispatch class driving the VM's inner switch. */
    ExecClass klass = ExecClass::Plain;
    /**
     * Inclusive running totals over the unit's instruction list, so
     * the VM credits whole straight-line runs with two subtractions
     * at each loop exit instead of per-instruction increments:
     * guestCum counts guestStart markers through this instruction;
     * memReadsCum/memWritesCum sum the translate-time data-access
     * counts of the Plain instructions through this one (exit-class
     * instructions account for their own traffic in the VM). @{
     */
    uint32_t guestCum = 0;
    uint32_t memReadsCum = 0;
    uint32_t memWritesCum = 0;
    /** @} */
};

/** A translated unit (one or more guest blocks under superblocking). */
struct TranslatedBlock
{
    Addr srcStart = 0;           ///< guest entry address
    Addr srcEnd = 0;             ///< highest guest address decoded + 1
    uint32_t funcId = 0xffffffff; ///< containing function (or none)
    std::vector<TInst> insts;
    std::vector<BlockExit> exits;
    std::vector<uint8_t> bytes;  ///< position-independent encoding
    Addr cacheAddr = 0;          ///< assigned by the code cache
    uint64_t generation = 0;     ///< randomizer generation at creation
    unsigned guestInstCount = 0;
    unsigned guestBlocksInlined = 1;
    bool isLoopHead = false;     ///< entered from a backward branch

    /**
     * Superblock-trace bookkeeping (all VM-filled, none exported).
     * @c strace points at the trace headed by this block, owned by the
     * VM's TraceEngine; it is only ever set while the block is live
     * and every flush that destroys the block also invalidates the
     * trace. hotCount/traceFails drive formation; traceDead marks a
     * head the builder permanently gave up on. @{
     */
    SuperTrace *strace = nullptr;
    uint32_t hotCount = 0;
    uint8_t traceFails = 0;
    bool traceDead = false;
    /** @} */
};

/** Why a translation attempt failed. */
enum class TranslateError
{
    None,
    BadInstruction ///< guest bytes do not decode at the entry
};

/**
 * Translates guest code under a Randomizer's relocation maps. One
 * instance per (VM, ISA).
 */
class PsrTranslator
{
  public:
    PsrTranslator(const FatBinary &bin, IsaKind isa,
                  Randomizer &randomizer, Memory &mem);

    /**
     * Translate the unit starting at guest address @p guest_addr.
     * @returns nullptr (and sets @p err) if the entry does not decode.
     */
    std::unique_ptr<TranslatedBlock> translate(Addr guest_addr,
                                               TranslateError &err);

    /** Total units translated (for stats). */
    uint64_t unitsTranslated() const { return _unitsTranslated; }
    /** Total guest instructions processed (translation cost model). */
    uint64_t guestInstsTranslated() const
    {
        return _guestInstsTranslated;
    }

  private:
    friend class TranslationContext;

    const FatBinary &_bin;
    IsaKind _isa;
    Randomizer &_randomizer;
    Memory &_mem;
    uint64_t _unitsTranslated = 0;
    uint64_t _guestInstsTranslated = 0;
};

} // namespace hipstr

#endif // HIPSTR_CORE_TRANSLATOR_HH
