/**
 * @file
 * The PSR basic-block translator (Figure 2's "Translation Engine" +
 * "Disassembler"), performing the paper's Section 5.1 transformations:
 *
 *  - addressing-mode transformation (registers renamed and, on Cisc,
 *    relocated to stack slots; slot displacements re-colored),
 *  - procedure-call transformation (randomized argument/return
 *    registers, relocated return-address slot, expanded frames),
 *  - legalization with register temporaries when the ISA lacks the
 *    addressing mode a relocation demands,
 *  - branch inlining / superblock formation (O1),
 *
 * and producing translated units that are simultaneously executable
 * (as decoded instructions) and byte-faithful (their encodings are
 * what lives in the code cache and what a JIT-ROP attacker can
 * disclose).
 */

#ifndef HIPSTR_CORE_TRANSLATOR_HH
#define HIPSTR_CORE_TRANSLATOR_HH

#include <memory>
#include <vector>

#include "binary/fatbin.hh"
#include "core/relocation.hh"
#include "isa/instruction.hh"
#include "isa/memory.hh"

namespace hipstr
{

struct TranslatedBlock;

/** How control leaves a translated unit. */
struct BlockExit
{
    enum class Kind : uint8_t
    {
        Branch,       ///< direct branch to a static guest target
        Call,         ///< direct call (pushes a *source* return addr)
        IndirectJump, ///< target read from @c targetOperand at exit
        IndirectCall, ///< indirect call through @c targetOperand
        Halt          ///< guest halt
    };

    Kind kind = Kind::Branch;
    Addr target = 0;        ///< guest target (Branch/Call)
    Addr returnTo = 0;      ///< guest return address (calls)
    /** Post-transformation location of the target value (Indirect*). */
    Operand targetOperand;
    /** Filled by the VM once the target is translated (chaining). */
    TranslatedBlock *chained = nullptr;
};

/** One translated instruction; exitIdx links Jcc/VmExit to an exit. */
struct TInst
{
    MachInst mi;
    int exitIdx = -1;
    /** First translated instruction of a guest instruction (used for
     *  dynamic guest-instruction accounting). */
    bool guestStart = false;
    /** Data-memory accesses of mi, precomputed at translate time so
     *  the VM's untraced fast path never scans operands. @{ */
    uint8_t memReads = 0;
    uint8_t memWrites = 0;
    /** @} */
    /** Byte offset within the unit's encoding (I-fetch modelling). */
    uint16_t byteOff = 0;
};

/** A translated unit (one or more guest blocks under superblocking). */
struct TranslatedBlock
{
    Addr srcStart = 0;           ///< guest entry address
    Addr srcEnd = 0;             ///< highest guest address decoded + 1
    uint32_t funcId = 0xffffffff; ///< containing function (or none)
    std::vector<TInst> insts;
    std::vector<BlockExit> exits;
    std::vector<uint8_t> bytes;  ///< position-independent encoding
    Addr cacheAddr = 0;          ///< assigned by the code cache
    uint64_t generation = 0;     ///< randomizer generation at creation
    unsigned guestInstCount = 0;
    unsigned guestBlocksInlined = 1;
    bool isLoopHead = false;     ///< entered from a backward branch
};

/** Why a translation attempt failed. */
enum class TranslateError
{
    None,
    BadInstruction ///< guest bytes do not decode at the entry
};

/**
 * Translates guest code under a Randomizer's relocation maps. One
 * instance per (VM, ISA).
 */
class PsrTranslator
{
  public:
    PsrTranslator(const FatBinary &bin, IsaKind isa,
                  Randomizer &randomizer, Memory &mem);

    /**
     * Translate the unit starting at guest address @p guest_addr.
     * @returns nullptr (and sets @p err) if the entry does not decode.
     */
    std::unique_ptr<TranslatedBlock> translate(Addr guest_addr,
                                               TranslateError &err);

    /** Total units translated (for stats). */
    uint64_t unitsTranslated() const { return _unitsTranslated; }
    /** Total guest instructions processed (translation cost model). */
    uint64_t guestInstsTranslated() const
    {
        return _guestInstsTranslated;
    }

  private:
    friend class TranslationContext;

    const FatBinary &_bin;
    IsaKind _isa;
    Randomizer &_randomizer;
    Memory &_mem;
    uint64_t _unitsTranslated = 0;
    uint64_t _guestInstsTranslated = 0;
};

} // namespace hipstr

#endif // HIPSTR_CORE_TRANSLATOR_HH
