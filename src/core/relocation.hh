/**
 * @file
 * Relocation maps and the PSR randomizer (Figure 2's "Randomizer").
 *
 * A relocation map is generated per function the first time any block
 * of that function is translated, and specifies:
 *  - randomized calling conventions (argument/return registers),
 *  - randomized register allocation (a clobber-class-preserving
 *    register permutation, plus — on Cisc — relocation of registers
 *    to random stack slots),
 *  - randomized stack-slot coloring (every relocatable frame slot,
 *    including the return-address slot, moves to a random byte offset
 *    inside the frame grown by the randomization space).
 *
 * Register-to-memory relocation is implemented on Cisc only: the paper
 * built its complete PSR prototype on x86 and reports that ARM's
 * strict load/store encodings and lower register pressure make x86
 * both the more vulnerable and the more interesting target
 * (Section 5.5). On Risc we randomize with permutations and slot
 * coloring only, which also keeps the single translator scratch
 * register sufficient for legalization.
 */

#ifndef HIPSTR_CORE_RELOCATION_HH
#define HIPSTR_CORE_RELOCATION_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "binary/fatbin.hh"
#include "core/psr_config.hh"
#include "support/random.hh"
#include "support/serialize.hh"
#include "telemetry/phase.hh"

namespace hipstr
{

/** Marker for "register stays a register". */
constexpr int32_t kNotInMemory = -1;

/** The randomized relocation decisions for one function on one ISA. */
struct RelocationMap
{
    uint32_t funcId = 0;
    IsaKind isa = IsaKind::Cisc;

    /**
     * Register permutation. Identity for SP, the translator scratch,
     * and any register outside the caller/callee-saved pools. The
     * permutation maps caller-saved to caller-saved and callee-saved
     * to callee-saved so call-clobber semantics are preserved.
     */
    std::array<Reg, 16> regMap{};

    /**
     * Cisc full relocation: post-permutation register r additionally
     * lives at frame offset regToSlot[r] when != kNotInMemory.
     */
    std::array<int32_t, 16> regToSlot{};

    /** Old frame offset -> randomized frame offset. */
    std::unordered_map<uint32_t, uint32_t> slotMap;

    /** Randomization space added to the frame. */
    uint32_t extraSpace = 0;
    /** frameSize + extraSpace. */
    uint32_t newFrameSize = 0;

    /**
     * Randomized calling convention: where this function's arguments
     * arrive and where its return value leaves. Callers of this
     * function must be translated against these. Address-taken
     * functions and the entry function keep the default convention
     * (indirect call sites cannot know their callee at translation
     * time).
     */
    std::array<Reg, 4> argRegs{};
    Reg retReg = kNoReg;

    /** Entropy accounting for the security evaluation. @{ */
    unsigned randomizableParams = 0;
    double entropyBits = 0.0;
    /** Byte range slots are scattered over: [regionLo, regionLo+regionSize). */
    uint32_t regionLo = 0;
    uint32_t regionSize = 0;
    /** @} */

    /** Apply the register permutation. */
    Reg mapReg(Reg r) const { return regMap[r]; }
    /** New offset of old frame offset @p off (off if unmapped). */
    uint32_t
    mapSlot(uint32_t off) const
    {
        auto it = slotMap.find(off);
        return it == slotMap.end() ? off : it->second;
    }
};

/**
 * Generates relocation maps on demand and re-randomizes on respawn
 * (Section 5.3's crash/reboot behaviour: every respawn presents the
 * attacker with a fresh randomization).
 */
class Randomizer
{
  public:
    Randomizer(const FatBinary &bin, IsaKind isa,
               const PsrConfig &cfg);

    /** The map for @p func_id, generated on first request. */
    const RelocationMap &mapFor(uint32_t func_id);

    /** True if a map has already been generated for @p func_id. */
    bool hasMap(uint32_t func_id) const;

    /** Drop all maps and advance the seed (respawn re-randomization). */
    void reRandomize();

    /** Number of re-randomizations performed. */
    uint64_t generation() const { return _generation; }

    const PsrConfig &config() const { return _cfg; }

    /** True if @p func_id keeps the default calling convention. */
    bool usesDefaultConvention(uint32_t func_id) const;

    /**
     * Cumulative profiling of map generation, never reset (see
     * telemetry/phase.hh). Regalloc counts registers permuted or
     * relocated to memory; Relocation counts stack slots recolored,
     * plus one invocation per reRandomize() whole-map regeneration.
     * @{
     */
    telemetry::PhaseStats regallocPhase;
    telemetry::PhaseStats relocationPhase;
    /** @} */

    /**
     * Checkpoint the randomization state: generation counter, RNG
     * stream position, phase profiles, and every generated map
     * verbatim — a restored guest must see the exact frame layouts
     * its stack was built against, and future reRandomize() draws
     * must continue the recorded stream. _addressTaken is derived
     * from the binary in the constructor and is not serialized. @{
     */
    void saveState(ByteWriter &w) const;
    void loadState(ByteReader &r);
    /** @} */

  private:
    RelocationMap generate(uint32_t func_id, Rng &rng) const;

    const FatBinary &_bin;
    IsaKind _isa;
    PsrConfig _cfg;
    uint64_t _generation = 0;
    Rng _rng;
    std::unordered_map<uint32_t, RelocationMap> _maps;
    std::vector<bool> _addressTaken;
};

} // namespace hipstr

#endif // HIPSTR_CORE_RELOCATION_HH
